package cxlshm_test

// One benchmark per paper table/figure (regenerating its measurement at
// reduced scale) plus micro-benchmarks of the core operations and the
// ablations called out in DESIGN.md §5. For full-scale, human-readable
// regeneration use cmd/cxlbench.

import (
	"fmt"
	"testing"

	cxlshm "repro"
	"repro/internal/alloc"
	"repro/internal/bench"
	"repro/internal/kv"
	"repro/internal/layout"
	"repro/internal/lightning"
	"repro/internal/nativealloc"
	"repro/internal/pmem"
	"repro/internal/recovery"
	"repro/internal/shm"
)

var benchScale = bench.Scale{Factor: 0.1}

func benchPool(b *testing.B) *shm.Pool {
	b.Helper()
	p, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients: 8, NumSegments: 128, SegmentWords: 1 << 15, PageWords: 1 << 11,
	}})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// --- micro-benchmarks: the core operations ---

// BenchmarkMallocFree measures the §5.1 allocation fast path (one RootRef
// claim, link, advance, init, era bump) plus the matching release.
func BenchmarkMallocFree(b *testing.B) {
	for _, size := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			p := benchPool(b)
			c, err := p.Connect()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				root, _, err := c.Malloc(size, 0)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.ReleaseRoot(root); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAlloc measures the §5.1 allocation fast path alone: pure Malloc
// throughput, with accumulated objects released off the clock.
func BenchmarkAlloc(b *testing.B) {
	p := benchPool(b)
	c, err := p.Connect()
	if err != nil {
		b.Fatal(err)
	}
	roots := make([]layout.Addr, 0, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root, _, err := c.Malloc(64, 0)
		if err != nil {
			b.Fatal(err)
		}
		roots = append(roots, root)
		if len(roots) == cap(roots) {
			b.StopTimer()
			for _, r := range roots {
				if _, err := c.ReleaseRoot(r); err != nil {
					b.Fatal(err)
				}
			}
			roots = roots[:0]
			b.StartTimer()
		}
	}
}

// BenchmarkAttachRelease measures one full era transaction pair (Figure
// 4(c)): the cross-client reference count maintenance CXL-SHM is built on.
func BenchmarkAttachRelease(b *testing.B) {
	p := benchPool(b)
	a, _ := p.Connect()
	c, _ := p.Connect()
	_, block, err := a.Malloc(64, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root, err := c.AttachRoot(block)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.ReleaseRoot(root); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClone measures the thread-local clone (two-tier counting: no
// atomics, no flush).
func BenchmarkClone(b *testing.B) {
	p := benchPool(b)
	c, _ := p.Connect()
	root, _, err := c.Malloc(64, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.CloneRoot(root)
		if _, err := c.ReleaseRoot(root); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueueTransfer measures one §5.2 exactly-once reference transfer
// (send + receive + slot release).
func BenchmarkQueueTransfer(b *testing.B) {
	p := benchPool(b)
	s, _ := p.Connect()
	r, _ := p.Connect()
	_, q, err := s.CreateQueue(r.ID(), 16)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := r.OpenQueue(q); err != nil {
		b.Fatal(err)
	}
	_, obj, err := s.Malloc(64, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Send(q, obj); err != nil {
			b.Fatal(err)
		}
		root, _, err := r.Receive(q)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.ReleaseRoot(root); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueueBatch transfers references in batches of 32; ns/op is per
// reference, comparable to BenchmarkQueueTransfer's per-item cost.
func BenchmarkQueueBatch(b *testing.B) {
	const batch = 32
	p := benchPool(b)
	s, _ := p.Connect()
	r, _ := p.Connect()
	_, q, err := s.CreateQueue(r.ID(), batch)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := r.OpenQueue(q); err != nil {
		b.Fatal(err)
	}
	_, obj, err := s.Malloc(64, 0)
	if err != nil {
		b.Fatal(err)
	}
	targets := make([]layout.Addr, batch)
	for i := range targets {
		targets[i] = obj
	}
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		sent, err := s.SendBatch(q, targets)
		if err != nil || sent != batch {
			b.Fatalf("sent %d: %v", sent, err)
		}
		roots, _, err := r.ReceiveBatch(q, batch)
		if err != nil {
			b.Fatal(err)
		}
		for _, root := range roots {
			if _, err := r.ReleaseRoot(root); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Table 1 ---

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.RandMOPS, "rand-MOPS-"+short(r.Type))
			}
		}
	}
}

// --- Figure 6 ---

func BenchmarkFig6Threadtest(b *testing.B) {
	for _, mk := range fig6Allocators(b) {
		b.Run(mk.name, func(b *testing.B) {
			var last alloc.Result
			for i := 0; i < b.N; i++ {
				// Fresh allocator per iteration: each run connects its own
				// clients, and client slots live until recovery.
				b.StopTimer()
				a := mk.make(b)
				b.StartTimer()
				r, err := alloc.Threadtest(a, 4, 50, 64)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.MOPS(), "MOPS")
		})
	}
}

func BenchmarkFig6Shbench(b *testing.B) {
	for _, mk := range fig6Allocators(b) {
		b.Run(mk.name, func(b *testing.B) {
			var last alloc.Result
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				a := mk.make(b)
				b.StartTimer()
				r, err := alloc.Shbench(a, 4, 5000)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.MOPS(), "MOPS")
		})
	}
}

type namedAlloc struct {
	name string
	make func(b *testing.B) alloc.Allocator
}

func fig6Allocators(b *testing.B) []namedAlloc {
	return []namedAlloc{
		{"CXL-SHM", func(b *testing.B) alloc.Allocator { return &alloc.SHM{Pool: benchPool(b)} }},
		{"ralloc", func(b *testing.B) alloc.Allocator {
			h, err := pmem.NewHeap(64 << 20)
			if err != nil {
				b.Fatal(err)
			}
			h.SetPersistCost(150) // modelled pwb+pfence on Optane (DESIGN.md)
			return pmem.Bench{H: h}
		}},
		{"jemalloc", func(*testing.B) alloc.Allocator { return nativealloc.Plain{} }},
		{"mimalloc", func(*testing.B) alloc.Allocator { return &nativealloc.Pooled{} }},
	}
}

// --- Figure 7 ---

func BenchmarkFig7Breakdown(b *testing.B) {
	var rows []bench.Fig7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig7(benchScale, []int{4}, 400, 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		b.ReportMetric(rows[0].FlushPct, "flush-%")
		b.ReportMetric(rows[0].FencePct, "fence-%")
	}
}

// --- §6.2.1 recovery ---

func BenchmarkRecoveryCXLSHM(b *testing.B) {
	const n = 2000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := benchPool(b)
		victim, _ := p.Connect()
		for k := 0; k < n; k++ {
			if _, _, err := victim.Malloc(48, 0); err != nil {
				b.Fatal(err)
			}
		}
		svc, err := recovery.NewService(p)
		if err != nil {
			b.Fatal(err)
		}
		victim.Crash()
		b.StartTimer()
		if _, err := svc.RecoverClient(victim.ID()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "objs/recovery")
}

func BenchmarkRecoveryPmemGC(b *testing.B) {
	const n = 2000
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h, err := pmem.NewHeap(64 << 20)
		if err != nil {
			b.Fatal(err)
		}
		ctx, _ := h.NewThread()
		for k := 0; k < n; k++ {
			if _, err := ctx.Alloc(48); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		h.Recover()
	}
	b.ReportMetric(float64(n), "objs/recovery")
}

func BenchmarkSegmentScan(b *testing.B) {
	p := benchPool(b)
	c, _ := p.Connect()
	for i := 0; i < 2000; i++ {
		if _, _, err := c.Malloc(64, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ScanSegment(0, false)
	}
}

// --- Figure 8 ---

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig8Pairs(benchScale, []int{2})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.KOPS, "KOPS-"+short(r.System))
			}
		}
	}
}

func BenchmarkFig8PayloadSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig8Payload(benchScale, []int{64, 32768}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 9 ---

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig9(benchScale, []int{2}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 10 ---

func BenchmarkFig10a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig10a(benchScale, []int{4})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.MOPS, "MOPS-"+short(r.System))
			}
		}
	}
}

func BenchmarkFig10b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig10b(benchScale, 4, []float64{1, 0.5, 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig10c(benchScale, []int{4}, []float64{0, 0.99}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10d(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig10d(benchScale, []int{4}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations (DESIGN.md §5) ---

// BenchmarkAblationTwoTier quantifies the two-tier reference count: a
// thread-local clone/release against a full era-transaction attach/release
// on the shared header.
func BenchmarkAblationTwoTier(b *testing.B) {
	p := benchPool(b)
	c, _ := p.Connect()
	root, block, err := c.Malloc(64, 0)
	if err != nil {
		b.Fatal(err)
	}
	_ = root
	b.Run("local-clone", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.CloneRoot(root)
			if _, err := c.ReleaseRoot(root); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shared-attach", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r2, err := c.AttachRoot(block)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.ReleaseRoot(r2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationFlushCost isolates the Figure 7 flush/fence overhead by
// running the same allocation loop with and without charged flush costs.
func BenchmarkAblationFlushCost(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		flushNS int
	}{{"flush-free", 0}, {"flush-400ns", 400}} {
		b.Run(cfg.name, func(b *testing.B) {
			p, err := cxlshm.NewPool(cxlshm.Config{
				NumSegments: 128, FlushCostNS: cfg.flushNS,
			})
			if err != nil {
				b.Fatal(err)
			}
			c, err := p.Connect()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ref, err := c.Malloc(64, 0)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ref.Release(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLockBaseline contrasts CXL-KV's latch-free put with the
// lock-based Lightning put (the §4.2 straw-man architecture).
func BenchmarkAblationLockBaseline(b *testing.B) {
	val := make([]byte, 32)
	b.Run("cxl-kv", func(b *testing.B) {
		p := benchPool(b)
		c, _ := p.Connect()
		s, err := kv.Create(c, 0, 1024, 32, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Put(uint64(i%512), val); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lightning", func(b *testing.B) {
		st, err := lightning.NewStore(1<<22, 2048)
		if err != nil {
			b.Fatal(err)
		}
		c := st.Connect()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Put(uint64(i%512), val); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func short(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			out = append(out, r)
		}
	}
	return string(out)
}
