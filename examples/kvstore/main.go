// KV store: the shared-everything distributed key-value store of §6.4.
// Writers own disjoint partitions; readers read everything directly; a
// writer failure is healed by recovery plus a metadata-only partition
// takeover — no data moves.
package main

import (
	"fmt"
	"log"

	"repro/internal/kv"
	"repro/internal/recovery"
	"repro/internal/shm"
)

func main() {
	pool, err := shm.NewPool(shm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	svc, err := recovery.NewService(pool)
	if err != nil {
		log.Fatal(err)
	}

	// Writer 1 creates the store and publishes it at named root 0 so it
	// outlives any client.
	w1, err := pool.Connect()
	if err != nil {
		log.Fatal(err)
	}
	const buckets, writers = 1024, 2
	s1, err := kv.Create(w1, 0, buckets, 32, writers)
	if err != nil {
		log.Fatal(err)
	}
	s1.AcquirePartition(0, false)

	w2, err := pool.Connect()
	if err != nil {
		log.Fatal(err)
	}
	s2, err := kv.Open(w2, 0)
	if err != nil {
		log.Fatal(err)
	}
	s2.AcquirePartition(1, false)

	// Each writer fills its own partition (single-writer-multi-reader).
	loaded := map[int]int{}
	for k := uint64(0); k < 500; k++ {
		p := kv.Partition(k, buckets, writers)
		var err error
		if p == 0 {
			err = s1.Put(k, []byte{byte(k), 0xAA})
		} else {
			err = s2.Put(k, []byte{byte(k), 0xBB})
		}
		if err != nil {
			log.Fatal(err)
		}
		loaded[p]++
	}
	fmt.Printf("two writers loaded 500 keys (partition 0: %d, partition 1: %d)\n",
		loaded[0], loaded[1])

	// A reader — any client — scans the whole store directly.
	reader, err := pool.Connect()
	if err != nil {
		log.Fatal(err)
	}
	sr, err := kv.Open(reader, 0)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 32)
	found := 0
	for k := uint64(0); k < 500; k++ {
		if _, err := sr.Get(k, buf); err == nil {
			found++
		}
	}
	fmt.Printf("reader sees %d/500 keys with zero coordination\n", found)

	// Writer 1 dies. Its partition is taken over by a new client: recovery
	// reclaims its RootRefs; the store itself (held by the named root) and
	// every record stay exactly where they are.
	if err := w1.Crash(); err != nil {
		log.Fatal(err)
	}
	if _, err := svc.RecoverClient(w1.ID()); err != nil {
		log.Fatal(err)
	}
	w3, err := pool.Connect()
	if err != nil {
		log.Fatal(err)
	}
	s3, err := kv.Open(w3, 0)
	if err != nil {
		log.Fatal(err)
	}
	if !s3.AcquirePartition(0, true) {
		log.Fatal("takeover failed")
	}
	fmt.Printf("writer %d died; client %d took over partition 0 (metadata only)\n",
		w1.ID(), w3.ID())

	// All data intact; the new writer updates in place.
	found = 0
	for k := uint64(0); k < 500; k++ {
		if _, err := sr.Get(k, buf); err == nil {
			found++
		}
	}
	fmt.Printf("after failover the reader still sees %d/500 keys\n", found)
	if kv.Partition(7, buckets, writers) == 0 {
		if err := s3.Put(7, []byte{7, 0xCC}); err != nil {
			log.Fatal(err)
		}
		sr.Get(7, buf)
		fmt.Printf("new writer updated key 7 in place: value tag %#x\n", buf[1])
	}
	fmt.Println("done")
}
