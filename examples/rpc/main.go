// RPC: the pass-by-reference RPC framework of §6.3 in action. A caller
// builds its arguments directly in shared memory, the server works on them
// in place, and only references ever cross the client/server boundary —
// no serialization, no copies, no network stack.
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"repro/internal/layout"
	"repro/internal/rpc"
	"repro/internal/shm"
)

// Function IDs for our tiny service.
const (
	fnWordCount = 1
	fnReverse   = 2
)

func main() {
	pool, err := shm.NewPool(shm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	callerClient, err := pool.Connect()
	if err != nil {
		log.Fatal(err)
	}
	serverClient, err := pool.Connect()
	if err != nil {
		log.Fatal(err)
	}

	caller, err := rpc.NewCaller(callerClient, serverClient.ID(), 8)
	if err != nil {
		log.Fatal(err)
	}
	server, err := rpc.NewServer(serverClient, callerClient.ID())
	if err != nil {
		log.Fatal(err)
	}

	// Handlers read arguments and write results in place.
	server.Register(fnWordCount, func(c *shm.Client, args []layout.Addr, out layout.Addr) error {
		n := c.DataBytesOf(args[0])
		buf := make([]byte, n)
		c.ReadData(args[0], 0, buf)
		words, inWord := uint64(0), false
		for _, b := range buf {
			sp := b == ' ' || b == '\n' || b == 0
			if !sp && !inWord {
				words++
			}
			inWord = !sp
		}
		c.StoreWord(out, 0, words)
		return nil
	})
	server.Register(fnReverse, func(c *shm.Client, args []layout.Addr, out layout.Addr) error {
		n := c.DataBytesOf(args[0])
		buf := make([]byte, n)
		c.ReadData(args[0], 0, buf)
		for i, j := 0, len(buf)-1; i < j; i, j = i+1, j-1 {
			buf[i], buf[j] = buf[j], buf[i]
		}
		c.WriteData(out, 0, buf)
		return nil
	})

	var stop atomic.Bool
	done := make(chan error, 1)
	go func() { done <- server.Serve(stop.Load) }()

	// Call 1: word count. The argument is written once into shared memory;
	// the server reads it in place.
	text := "references move data stays put"
	argRoot, arg, err := caller.Arg([]byte(text))
	if err != nil {
		log.Fatal(err)
	}
	outRoot, out, err := caller.Call(fnWordCount, []layout.Addr{arg}, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wordcount(%q) = %d\n", text, callerClient.LoadWord(out, 0))
	callerClient.ReleaseRoot(outRoot)

	// Call 2: reuse the same argument object — zero-copy across calls too.
	outRoot, out, err = caller.Call(fnReverse, []layout.Addr{arg}, len(text))
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, len(text))
	callerClient.ReadData(out, 0, buf)
	fmt.Printf("reverse(...) = %q\n", buf)
	callerClient.ReleaseRoot(outRoot)
	callerClient.ReleaseRoot(argRoot)

	stop.Store(true)
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	if err := caller.Close(); err != nil {
		log.Fatal(err)
	}
	if err := server.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("done — two RPCs, zero serialization")
}
