// Failure: the paper's headline scenario (§1.2). A client allocates shared
// objects, passes a reference to another client, then dies without cleaning
// up. The monitor detects the death and the recovery service reclaims
// everything the dead client possessed — without blocking the survivor,
// whose reference stays valid throughout.
package main

import (
	"fmt"
	"log"
	"time"

	cxlshm "repro"
	"repro/internal/check"
)

func main() {
	pool, err := cxlshm.NewPool(cxlshm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	// Heartbeat monitor: clients silent for ~3×5ms are declared dead and
	// recovered asynchronously.
	pool.StartMonitor(5*time.Millisecond, 3)

	victim, err := pool.Connect()
	if err != nil {
		log.Fatal(err)
	}
	survivor, err := pool.Connect()
	if err != nil {
		log.Fatal(err)
	}

	// The victim allocates a pile of objects it will never release...
	for i := 0; i < 1000; i++ {
		if _, err := victim.Malloc(48, 0); err != nil {
			log.Fatal(err)
		}
	}
	// ...and shares one object with the survivor.
	shared, err := victim.Malloc(64, 0)
	if err != nil {
		log.Fatal(err)
	}
	shared.Write(0, []byte("I must survive the crash"))
	survivorRef, err := survivor.AttachAddr(shared.Addr())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim (client %d) holds 1001 objects; survivor shares one of them\n", victim.ID())

	// The victim dies: no releases, no goodbye. (Close marks it dead the
	// same way a heartbeat timeout would.)
	if err := victim.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("victim crashed without releasing anything")

	// The survivor keeps working while recovery happens in the background.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		survivor.Heartbeat()
		if pool.Internal().ClientStatus(victim.ID()) == 3 { // recovered
			break
		}
		// Business as usual, never blocked:
		tmp, err := survivor.Malloc(32, 0)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := tmp.Release(); err != nil {
			log.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Println("recovery completed asynchronously; survivor never blocked")

	// The shared object is intact — no double free, no wild pointer.
	buf := make([]byte, 24)
	survivorRef.Read(0, buf)
	fmt.Printf("survivor still reads: %q\n", buf)

	// The survivor's release is now the last one: the object is reclaimed.
	freed, err := survivorRef.Release()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("survivor released; freed=%v\n", freed)

	// Audit the pool: the victim's 1000 unshared objects were all reclaimed.
	pool.Close() // stop the monitor before validating
	pool.Maintain()
	res := check.Validate(pool.Internal())
	fmt.Printf("audit: %d live objects, %d issues\n", res.AllocatedObjects, len(res.Issues))
	if !res.Clean() || res.AllocatedObjects != 0 {
		log.Fatal("pool not clean after recovery")
	}
	fmt.Println("OK: partial failure fully recovered, nothing leaked")
}
