// Failure: the paper's headline scenario (§1.2). A client allocates shared
// objects, passes a reference to another client, then dies without cleaning
// up. The monitor detects the death and the recovery service reclaims
// everything the dead client possessed — without blocking the survivor,
// whose reference stays valid throughout.
//
// With -pool the scenario runs across two real OS processes on an mmap'd
// pool file — a genuine process death, not a simulated one:
//
//	failure -pool /tmp/demo.cxl    # run 1: victim allocates, publishes, dies
//	failure -pool /tmp/demo.cxl    # run 2: attach, recover, verify
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	cxlshm "repro"
	"repro/internal/check"
)

func main() {
	poolFile := flag.String("pool", "", "run the scenario across two processes on this mmap'd pool file")
	flag.Parse()
	if *poolFile != "" {
		if _, err := os.Stat(*poolFile); os.IsNotExist(err) {
			crossProcessVictim(*poolFile)
		} else {
			crossProcessRecover(*poolFile)
		}
		return
	}

	pool, err := cxlshm.NewPool(cxlshm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	// Heartbeat monitor: clients silent for ~3×5ms are declared dead and
	// recovered asynchronously.
	pool.StartMonitor(5*time.Millisecond, 3)

	victim, err := pool.Connect()
	if err != nil {
		log.Fatal(err)
	}
	survivor, err := pool.Connect()
	if err != nil {
		log.Fatal(err)
	}

	// The victim allocates a pile of objects it will never release...
	for i := 0; i < 1000; i++ {
		if _, err := victim.Malloc(48, 0); err != nil {
			log.Fatal(err)
		}
	}
	// ...and shares one object with the survivor.
	shared, err := victim.Malloc(64, 0)
	if err != nil {
		log.Fatal(err)
	}
	shared.Write(0, []byte("I must survive the crash"))
	survivorRef, err := survivor.AttachAddr(shared.Addr())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim (client %d) holds 1001 objects; survivor shares one of them\n", victim.ID())

	// The victim dies: no releases, no goodbye. (Close marks it dead the
	// same way a heartbeat timeout would.)
	if err := victim.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("victim crashed without releasing anything")

	// The survivor keeps working while recovery happens in the background.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		survivor.Heartbeat()
		if pool.Internal().ClientStatus(victim.ID()) == 3 { // recovered
			break
		}
		// Business as usual, never blocked:
		tmp, err := survivor.Malloc(32, 0)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := tmp.Release(); err != nil {
			log.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Println("recovery completed asynchronously; survivor never blocked")

	// The shared object is intact — no double free, no wild pointer.
	buf := make([]byte, 24)
	survivorRef.Read(0, buf)
	fmt.Printf("survivor still reads: %q\n", buf)

	// The survivor's release is now the last one: the object is reclaimed.
	freed, err := survivorRef.Release()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("survivor released; freed=%v\n", freed)

	// Audit the pool: the victim's 1000 unshared objects were all reclaimed.
	pool.Close() // stop the monitor before validating
	pool.Maintain()
	res := check.Validate(pool.Internal())
	fmt.Printf("audit: %d live objects, %d issues\n", res.AllocatedObjects, len(res.Issues))
	if !res.Clean() || res.AllocatedObjects != 0 {
		log.Fatal("pool not clean after recovery")
	}
	fmt.Println("OK: partial failure fully recovered, nothing leaked")
}

// crossProcessVictim is run 1 of the two-process scenario: create the pool
// on an mmap'd file, allocate a pile of objects, publish one at a named
// root, and exit without releasing anything — this process really dies.
func crossProcessVictim(path string) {
	pool, err := cxlshm.NewPool(cxlshm.Config{PoolFile: path})
	if err != nil {
		log.Fatal(err)
	}
	victim, err := pool.Connect()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := victim.Malloc(48, 0); err != nil {
			log.Fatal(err)
		}
	}
	shared, err := victim.Malloc(64, 0)
	if err != nil {
		log.Fatal(err)
	}
	shared.Write(0, []byte("I must survive the crash"))
	// Publish at a well-known root so the next process can find it; the
	// root's reference keeps it alive independent of the (dying) victim.
	if err := victim.PublishRoot(0, shared); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim (client %d, pid %d) holds 1001 objects in %s\n", victim.ID(), os.Getpid(), path)
	fmt.Println("victim process now dies without releasing anything — run again to recover")
	// No Close, no Release, no unmap-sync ceremony: the process just exits.
	// MAP_SHARED writes are already in the kernel's page cache; the pool
	// file holds everything, mid-mess, exactly as the device would.
}

// crossProcessRecover is run 2: a fresh process attaches the pool file
// alive (no copy), recovers the dead process's client, and verifies the
// published object survived while everything unreachable was reclaimed.
func crossProcessRecover(path string) {
	pool, err := cxlshm.Attach(path)
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	stale := pool.StaleClients()
	fmt.Printf("pid %d attached %s: %d stale client(s) from the dead process\n", os.Getpid(), path, len(stale))
	for _, cid := range stale {
		if err := pool.Recover(cid); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  recovered client %d\n", cid)
	}

	survivor, err := pool.Connect()
	if err != nil {
		log.Fatal(err)
	}
	ref, err := survivor.OpenRoot(0)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 24)
	ref.Read(0, buf)
	fmt.Printf("survivor (new process) reads: %q\n", buf)

	if _, err := ref.Release(); err != nil {
		log.Fatal(err)
	}
	if err := survivor.UnpublishRoot(0); err != nil {
		log.Fatal(err)
	}
	if err := survivor.Close(); err != nil {
		log.Fatal(err)
	}
	if err := pool.Recover(survivor.ID()); err != nil {
		log.Fatal(err)
	}
	pool.Maintain()
	res := check.Validate(pool.Internal())
	fmt.Printf("audit: %d live objects, %d issues\n", res.AllocatedObjects, len(res.Issues))
	if !res.Clean() || res.AllocatedObjects != 0 {
		log.Fatal("pool not clean after cross-process recovery")
	}
	fmt.Println("OK: the crash crossed a process boundary and nothing leaked")
}
