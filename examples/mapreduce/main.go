// MapReduce: CXL-MapReduce (§6.3.2) end to end — word count and kmeans over
// the shared pool, verified against the pass-by-value baseline and timed
// side by side (a miniature Figure 9).
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/layout"
	"repro/internal/mapreduce"
	"repro/internal/shm"
	"repro/internal/workload"
)

func main() {
	const executors = 4
	pool := mustPool(executors)

	// --- word count ---
	text := workload.Text(512*1024, 2000, 7)
	fmt.Printf("word count over %d KiB of zipf text, %d executors\n", len(text)/1024, executors)

	t0 := time.Now()
	cxlCounts, err := mapreduce.WordCountCXL(pool, text, executors)
	if err != nil {
		log.Fatal(err)
	}
	cxlTime := time.Since(t0)

	t0 = time.Now()
	valCounts := mapreduce.WordCountValue(text, executors)
	valTime := time.Since(t0)

	if len(cxlCounts) != len(valCounts) {
		log.Fatalf("result mismatch: %d vs %d distinct words", len(cxlCounts), len(valCounts))
	}
	var total int64
	for k, v := range valCounts {
		if cxlCounts[k] != v {
			log.Fatalf("count mismatch for word %d", k)
		}
		total += v
	}
	fmt.Printf("  %d words, %d distinct — results identical\n", total, len(cxlCounts))
	fmt.Printf("  pass-by-reference %v, pass-by-value %v\n", cxlTime.Round(time.Millisecond), valTime.Round(time.Millisecond))

	// --- kmeans ---
	const n, dim, k, iters = 10000, 8, 12, 4
	pts := workload.Points(n, dim, k, 7)
	fmt.Printf("kmeans: %d points, %d dims, %d clusters, %d iterations\n", n, dim, k, iters)

	pool = mustPool(executors) // fresh pool
	t0 = time.Now()
	cxlCenters, err := mapreduce.KMeansCXL(pool, pts, dim, k, iters, executors)
	if err != nil {
		log.Fatal(err)
	}
	cxlTime = time.Since(t0)

	t0 = time.Now()
	valCenters := mapreduce.KMeansValue(pts, dim, k, iters, executors)
	valTime = time.Since(t0)

	for i := range valCenters {
		if math.Abs(valCenters[i]-cxlCenters[i]) > 1e-6 {
			log.Fatalf("center %d diverged: %v vs %v", i, cxlCenters[i], valCenters[i])
		}
	}
	fmt.Printf("  centers identical to the baseline\n")
	fmt.Printf("  pass-by-reference %v, pass-by-value %v\n", cxlTime.Round(time.Millisecond), valTime.Round(time.Millisecond))
	fmt.Println("done — same answers, references instead of copies")
}

func mustPool(executors int) *shm.Pool {
	pool, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients:   executors + 6,
		NumSegments:  4*executors + 64,
		SegmentWords: 1 << 16,
		PageWords:    1 << 12,
		MaxQueues:    4*executors + 8,
	}})
	if err != nil {
		log.Fatal(err)
	}
	return pool
}
