// Quickstart: allocate a shared object, pass it by reference to another
// client through a shared queue, access it zero-copy, and release it — the
// §3.1 interface walkthrough of the paper on the public cxlshm API.
package main

import (
	"fmt"
	"log"

	cxlshm "repro"
)

func main() {
	// The pool models the CXL-attached memory device: its own failure
	// domain, shared by every client.
	pool, err := cxlshm.NewPool(cxlshm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	// Clients stand in for threads/processes/machines. One per goroutine.
	alice, err := pool.Connect()
	if err != nil {
		log.Fatal(err)
	}
	bob, err := pool.Connect()
	if err != nil {
		log.Fatal(err)
	}

	// 1. cxl_malloc: 64 bytes, no embedded references.
	ref, err := alice.Malloc(64, 0)
	if err != nil {
		log.Fatal(err)
	}
	ref.Write(0, []byte("hello through shared memory"))
	fmt.Printf("alice allocated object at machine-independent address %#x\n", ref.Addr())

	// 2. Clone in the same thread: cheap, no atomics (two-tier refcount).
	clone := ref.Clone()

	// 3/4. cxl_send_to / cxl_receive_from: ownership of the in-flight
	// reference moves atomically with the queue's tail pointer.
	q, err := alice.NewQueueTo(bob.ID(), 8)
	if err != nil {
		log.Fatal(err)
	}
	if err := alice.Send(q, ref); err != nil {
		log.Fatal(err)
	}
	// The sender may drop its references right away; the queue holds one.
	if _, err := ref.Release(); err != nil {
		log.Fatal(err)
	}
	if _, err := clone.Release(); err != nil {
		log.Fatal(err)
	}

	qb, err := bob.OpenQueueFrom(alice.ID())
	if err != nil {
		log.Fatal(err)
	}
	got, err := bob.Receive(qb)
	if err != nil {
		log.Fatal(err)
	}

	// 5/6. Direct, zero-copy access through the reference.
	buf := make([]byte, 28)
	got.Read(0, buf)
	fmt.Printf("bob reads in place: %q\n", buf)

	// Last reference out frees the object.
	freed, err := got.Release()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob released; object freed: %v\n", freed)

	if err := q.Close(); err != nil {
		log.Fatal(err)
	}
	if err := qb.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("done — no leak, no copy, no serialization")
}
