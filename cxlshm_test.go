package cxlshm_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	cxlshm "repro"
	"repro/internal/check"
)

func newPool(t *testing.T) *cxlshm.Pool {
	t.Helper()
	p, err := cxlshm.NewPool(cxlshm.Config{
		MaxClients:   16,
		NumSegments:  32,
		SegmentBytes: 64 * 1024,
		PageBytes:    4 * 1024,
		MaxQueues:    16,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func validateClean(t *testing.T, p *cxlshm.Pool, wantObjects int) {
	t.Helper()
	res := check.Validate(p.Internal())
	if !res.Clean() {
		for _, is := range res.Issues {
			t.Errorf("validate: %s", is)
		}
		t.FailNow()
	}
	if res.AllocatedObjects != wantObjects {
		t.Fatalf("allocated objects = %d, want %d", res.AllocatedObjects, wantObjects)
	}
}

func TestQuickstartFlow(t *testing.T) {
	p := newPool(t)
	a, err := p.Connect()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Connect()
	if err != nil {
		t.Fatal(err)
	}

	ref, err := a.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref.Write(0, []byte("hello"))

	q, err := a.NewQueueTo(b.ID(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(q, ref); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Release(); err != nil {
		t.Fatal(err)
	}

	qb, err := b.OpenQueueFrom(a.ID())
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Receive(qb)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	got.Read(0, buf)
	if string(buf) != "hello" {
		t.Fatalf("payload %q", buf)
	}
	if freed, err := got.Release(); err != nil || !freed {
		t.Fatalf("freed=%v err=%v", freed, err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if err := qb.Close(); err != nil {
		t.Fatal(err)
	}
	p.Maintain()
	validateClean(t, p, 0)
}

func TestReleasedRefIsInert(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	ref, err := c.Malloc(32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Release(); !errors.Is(err, cxlshm.ErrReleased) {
		t.Fatalf("double release: %v", err)
	}
	q, _ := c.NewQueueTo(c.ID(), 2)
	if err := c.Send(q, ref); !errors.Is(err, cxlshm.ErrReleased) {
		t.Fatalf("send of released ref: %v", err)
	}
}

func TestCloneSemantics(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	ref, _ := c.Malloc(32, 0)
	clone := ref.Clone()
	if clone.Addr() != ref.Addr() {
		t.Fatal("clone points elsewhere")
	}
	if freed, _ := ref.Release(); freed {
		t.Fatal("object freed while clone lives")
	}
	if freed, _ := clone.Release(); !freed {
		t.Fatal("last clone release must free")
	}
	validateClean(t, p, 0)
}

func TestEmbeddedListThroughPublicAPI(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	// Build a linked list: head -> n1 -> n2, each node = 1 embed + payload.
	n2, _ := c.Malloc(32, 1)
	n1, _ := c.Malloc(32, 1)
	head, _ := c.Malloc(32, 1)
	if err := n1.SetEmbed(0, n2); err != nil {
		t.Fatal(err)
	}
	if err := head.SetEmbed(0, n1); err != nil {
		t.Fatal(err)
	}
	// Drop the direct refs to the tail nodes: reachable via head only.
	n1.Release()
	n2.Release()
	validateClean(t, p, 3)
	// Traverse.
	a1, err := head.LoadEmbed(0)
	if err != nil || a1 == 0 {
		t.Fatalf("LoadEmbed: %v %v", a1, err)
	}
	// Releasing the head cascades through the whole list.
	if freed, _ := head.Release(); !freed {
		t.Fatal("head release must free")
	}
	validateClean(t, p, 0)
}

func TestConcurrentClientsStress(t *testing.T) {
	p := newPool(t)
	const clients = 6
	const opsPerClient = 400
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := p.Connect()
			if err != nil {
				errs <- err
				return
			}
			var held []*cxlshm.Ref
			for op := 0; op < opsPerClient; op++ {
				ref, err := c.Malloc(16+op%200, 0)
				if err != nil {
					errs <- err
					return
				}
				held = append(held, ref)
				if len(held) > 32 {
					victim := held[0]
					held = held[1:]
					if _, err := victim.Release(); err != nil {
						errs <- err
						return
					}
				}
			}
			for _, r := range held {
				if _, err := r.Release(); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	validateClean(t, p, 0)
}

func TestMonitorRecoversDeadClientEndToEnd(t *testing.T) {
	p := newPool(t)
	p.StartMonitor(2*time.Millisecond, 3)

	a, _ := p.Connect()
	b, _ := p.Connect()
	ref, err := a.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref.Write(0, []byte("shared!!"))
	shared, err := b.AttachAddr(ref.Addr())
	if err != nil {
		t.Fatal(err)
	}

	// a dies without releasing; b keeps heartbeating.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		b.Heartbeat()
		if p.Internal().ClientStatus(a.ID()) == 3 { // ClientRecovered
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	buf := make([]byte, 8)
	shared.Read(0, buf)
	if string(buf) != "shared!!" {
		t.Fatalf("shared object corrupted: %q", buf)
	}
	if freed, err := shared.Release(); err != nil || !freed {
		t.Fatalf("freed=%v err=%v", freed, err)
	}
	p.Close() // stop monitor before validating (quiescence)
	p.Maintain()
	validateClean(t, p, 0)
}

// TestLiveMonitorUnderChurn runs several clients doing real work under a
// running monitor while two of them die at different times; the monitor
// must recover both without disturbing the others, and the pool must end
// clean.
func TestLiveMonitorUnderChurn(t *testing.T) {
	p := newPool(t)
	p.StartMonitor(2*time.Millisecond, 3)

	const workers = 4
	type result struct {
		id   int
		err  error
		died bool
	}
	results := make(chan result, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			c, err := p.Connect()
			if err != nil {
				results <- result{w, err, false}
				return
			}
			var held []*cxlshm.Ref
			for op := 0; op < 600; op++ {
				c.Heartbeat()
				if w < 2 && op == 150+w*100 {
					// Workers 0 and 1 die at different moments, mid-stream,
					// holding references. They just stop heartbeating.
					results <- result{c.ID(), nil, true}
					return
				}
				ref, err := c.Malloc(16+op%100, 0)
				if err != nil {
					results <- result{c.ID(), err, false}
					return
				}
				held = append(held, ref)
				if len(held) > 16 {
					if _, err := held[0].Release(); err != nil {
						results <- result{c.ID(), err, false}
						return
					}
					held = held[1:]
				}
				time.Sleep(50 * time.Microsecond)
			}
			for _, r := range held {
				if _, err := r.Release(); err != nil {
					results <- result{c.ID(), err, false}
					return
				}
			}
			results <- result{c.ID(), nil, false}
		}(w)
	}
	var dead []int
	for i := 0; i < workers; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("worker %d: %v", r.id, r.err)
		}
		if r.died {
			dead = append(dead, r.id)
		}
	}
	if len(dead) != 2 {
		t.Fatalf("expected 2 deaths, got %v", dead)
	}
	// Wait for the monitor to recover both.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := 0
		for _, cid := range dead {
			if p.Internal().ClientStatus(cid) == 3 { // recovered
				done++
			}
		}
		if done == len(dead) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	p.Close() // stop the monitor, then validate quiescently
	p.Maintain()
	validateClean(t, p, 0)
}

func TestHazardReadsThroughPublicAPI(t *testing.T) {
	p := newPool(t)
	w, _ := p.Connect()
	r, _ := p.Connect()

	// head -> old; a reader stands on old while the writer swaps in new.
	old, _ := w.Malloc(32, 0)
	newer, _ := w.Malloc(32, 0)
	head, _ := w.Malloc(32, 1)
	if err := head.SetEmbed(0, old); err != nil {
		t.Fatal(err)
	}
	old.Release() // head now the only counted ref to old

	if e := r.EnterRead(); e == 0 {
		t.Fatal("era 0 published")
	}
	if err := head.ChangeEmbedRetire(0, newer); err != nil {
		t.Fatal(err)
	}
	if w.RetiredCount() != 1 {
		t.Fatalf("retired=%d", w.RetiredCount())
	}
	if freed := w.ReclaimRetired(); freed != 0 {
		t.Fatal("reclaimed under a live reader")
	}
	r.ExitRead()
	if freed := w.ReclaimRetired(); freed != 1 {
		t.Fatalf("freed=%d after reader exit", freed)
	}
	newer.Release()
	if freed, _ := head.Release(); !freed {
		t.Fatal("head not freed")
	}
	validateClean(t, p, 0)
}

func TestPoolUsageSnapshot(t *testing.T) {
	p := newPool(t)
	u0 := p.Usage()
	if u0.SegmentsActive != 0 || u0.TotalBytes <= 0 {
		t.Fatalf("fresh usage %+v", u0)
	}
	c, _ := p.Connect()
	ref, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	u1 := p.Usage()
	if u1.SegmentsActive != 1 || u1.ClientsAlive < 1 {
		t.Fatalf("usage after malloc %+v", u1)
	}
	if u1.SegmentsFree >= u0.SegmentsFree+1 {
		t.Fatalf("free segments did not shrink: %d -> %d", u0.SegmentsFree, u1.SegmentsFree)
	}
	ref.Release()
}

func TestPoolExhaustionSurfacesError(t *testing.T) {
	p, err := cxlshm.NewPool(cxlshm.Config{
		MaxClients: 2, NumSegments: 4, SegmentBytes: 32 * 1024, PageBytes: 4 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := p.Connect()
	var refs []*cxlshm.Ref
	for {
		ref, err := c.Malloc(1024, 0)
		if err != nil {
			if !errors.Is(err, cxlshm.ErrOutOfMemory) {
				t.Fatalf("want ErrOutOfMemory, got %v", err)
			}
			break
		}
		refs = append(refs, ref)
	}
	for _, r := range refs {
		r.Release()
	}
	if _, err := c.Malloc(1024, 0); err != nil {
		t.Fatalf("allocation after drain: %v", err)
	}
}

func TestLeaseThroughPublicAPI(t *testing.T) {
	p := newPool(t)
	c, err := p.Connect()
	if err != nil {
		t.Fatal(err)
	}

	ref, err := c.Malloc(256, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ref.Lease()
	if err != nil {
		if errors.Is(err, cxlshm.ErrNoDirectAccess) {
			t.Skip("backend has no direct byte access")
		}
		t.Fatal(err)
	}
	if len(l.Bytes()) < 256 {
		t.Fatalf("lease window %d bytes, want >= 256", len(l.Bytes()))
	}
	copy(l.Bytes(), "through the lease")

	// The lease aliases the device: Read must observe the write.
	got := make([]byte, 17)
	ref.Read(0, got)
	if string(got) != "through the lease" {
		t.Fatalf("Read after lease write = %q", got)
	}

	// One live lease per object.
	if _, err := ref.Lease(); !errors.Is(err, cxlshm.ErrLeaseAliased) {
		t.Fatalf("second lease: want ErrLeaseAliased, got %v", err)
	}
	l.Release()
	l.Release() // double release is a no-op

	l2, err := ref.Lease()
	if err != nil {
		t.Fatalf("re-lease after release: %v", err)
	}
	l2.Release()

	ref.Release()
	if _, err := ref.Lease(); !errors.Is(err, cxlshm.ErrReleased) {
		t.Fatalf("lease of released ref: want ErrReleased, got %v", err)
	}
	validateClean(t, p, 0)
}
