package cxlshm_test

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestStatsAfterCrashAndRecover is the observability acceptance check: after
// a crash-and-recover round trip, Pool.Stats() must report non-zero alloc,
// free, send, and receive counters, and Pool.TraceEvents() must carry the
// recovery lifecycle.
func TestStatsAfterCrashAndRecover(t *testing.T) {
	p := newPool(t)
	a, err := p.Connect()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Connect()
	if err != nil {
		t.Fatal(err)
	}

	// Normal traffic: allocate, transfer through a queue, release.
	q, err := a.NewQueueTo(b.ID(), 8)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := b.OpenQueueFrom(a.ID())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ref, err := a.Malloc(64, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Send(q, ref); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Release(); err != nil {
			t.Fatal(err)
		}
		got, err := b.Receive(qb)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := got.Release(); err != nil {
			t.Fatal(err)
		}
	}

	// Heartbeats publish each client's locally accumulated counters (the
	// hot paths only publish every few era bumps).
	a.Heartbeat()
	b.Heartbeat()

	// Client a dies holding live objects; the pool recovers it.
	for i := 0; i < 5; i++ {
		if _, err := a.Malloc(128, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Recover(a.ID()); err != nil {
		t.Fatal(err)
	}
	p.Maintain()

	st := p.Stats()
	for _, name := range []string{
		obs.CtrAlloc.Name(), obs.CtrFree.Name(),
		obs.CtrQueueSend.Name(), obs.CtrQueueReceive.Name(),
		obs.CtrClientFenced.Name(), obs.CtrRecoveryPass.Name(),
	} {
		if st.Counters[name] == 0 {
			t.Errorf("Stats counter %q is zero after crash-and-recover run", name)
		}
	}
	if st.Counters[obs.CtrQueueSend.Name()] < 10 || st.Counters[obs.CtrQueueReceive.Name()] < 10 {
		t.Errorf("queue counters below traffic: send=%d receive=%d",
			st.Counters[obs.CtrQueueSend.Name()], st.Counters[obs.CtrQueueReceive.Name()])
	}
	// b plus the recovery service's own client remain alive; a was fenced.
	if st.Usage.ClientsAlive != 2 {
		t.Errorf("usage in stats reports %d live clients, want 2", st.Usage.ClientsAlive)
	}

	events := p.TraceEvents()
	if len(events) == 0 {
		t.Fatal("TraceEvents empty after recovery")
	}
	var recovered bool
	for _, e := range events {
		if e.Type == obs.EvRecoveryFinished && e.Client == a.ID() {
			recovered = true
		}
	}
	if !recovered {
		t.Errorf("no recovery-finished trace event for client %d in %d events",
			a.ID(), len(events))
	}

	// Stats must marshal (the exporter path) and snapshots must be disjoint
	// per pool: a fresh pool starts from zero.
	if _, err := obs.MarshalIndentJSON(obs.Snapshot{Counters: st.Counters, Histograms: st.Histograms}, events); err != nil {
		t.Fatal(err)
	}
	fresh := newPool(t)
	if n := fresh.Stats().Counters[obs.CtrAlloc.Name()]; n != 0 {
		t.Errorf("fresh pool starts with alloc_ops=%d", n)
	}
}

// TestStatsCarriesMonitorRecoveries: once the monitor recovers a silent
// client, Pool.Stats() must surface the recovery record — including its
// detection-to-recovered duration — and LastRecovery must return it.
func TestStatsCarriesMonitorRecoveries(t *testing.T) {
	p := newPool(t)
	defer p.Close()
	victim, err := p.Connect()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Malloc(64, 0); err != nil {
		t.Fatal(err)
	}
	// The victim goes silent; the monitor must notice on its own.
	p.StartMonitor(2*time.Millisecond, 2)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := p.LastRecovery(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("monitor never recovered the silent client")
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := p.Stats()
	if len(st.Recoveries) == 0 {
		t.Fatal("Stats().Recoveries empty after a monitored recovery")
	}
	r := st.Recoveries[0]
	if r.Client != victim.ID() || r.Duration <= 0 {
		t.Errorf("recovery record = %+v, want client %d with positive duration", r, victim.ID())
	}
	if len(st.Fences) == 0 {
		t.Error("Stats().Fences empty after a monitored recovery")
	}
	last, ok := p.LastRecovery()
	if !ok || last.Client != r.Client {
		t.Errorf("LastRecovery = %+v/%v, want %+v", last, ok, r)
	}
}
