# Developer entry points. `make verify` is the full pre-merge gate:
# vet + build + tests, plus the race detector on the concurrency-heavy
# packages (allocator, recovery, metrics).

GO ?= go

.PHONY: all build test vet race verify bench bench-fastpath bench-compare \
	bench-smoke test-mmap sweep corrupt fsck-smoke top-smoke ci \
	bench-resilience bench-scale serving-smoke bench-serving serving-compare

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/shm ./internal/recovery ./internal/obs .

# bench-smoke runs the fast-path micro-benchmarks a handful of iterations
# under the race detector: not for numbers, but to drive the benchmark paths
# (shadow caches, batched transfer) through the race checker cheaply.
bench-smoke:
	$(GO) test -race -run xxx -bench 'BenchmarkAlloc$$|BenchmarkMallocFree|BenchmarkQueueTransfer|BenchmarkQueueBatch' -benchtime 10x .

verify: vet build test race bench-smoke

# test-mmap re-runs the core packages with every pool on the mmap'd-file
# backend (cxl.MapDevice over an unlinked temp file), the recovery crash
# matrix included, plus a short fault-injection campaign.
test-mmap:
	CXLSHM_BACKEND=mmap $(GO) test ./internal/shm ./internal/recovery ./internal/check ./internal/alloc .
	CXLSHM_BACKEND=mmap $(GO) test -run TestRecoverEveryCrashPoint ./internal/recovery
	$(GO) run ./cmd/faultsim -trials 50 -backend mmap

# sweep runs the bounded access-granular crash sweep on both backends:
# every scripted operation crashed at up to 40 of its device writes, each
# followed by recovery and a full-pool fsck, plus a phase-B pass that
# crashes the recovery executor itself. Violations print a minimal
# `faultsim -repro` line and fail the target.
sweep:
	$(GO) run ./cmd/faultsim -sweep -max-writes 40 -recovery-sweep
	$(GO) run ./cmd/faultsim -sweep -max-writes 40 -recovery-sweep -backend mmap

# corrupt runs the bounded corruption campaign on both backends: every
# fault class (bit flip, torn write, stuck CAS) against every targetable
# metadata region, each trial followed by the repairing fsck, a full
# revalidation, and a rerun of the scripted workload over the repaired
# pool. Violations print a `faultsim -corrupt` repro line and fail.
corrupt:
	$(GO) run ./cmd/faultsim -corrupt -resilience-out ""

# bench-resilience runs the same campaign and (re)writes
# BENCH_resilience.json in the repo root: repair success rate and
# blast-radius distribution per fault class, both backends.
bench-resilience:
	$(GO) run ./cmd/faultsim -corrupt

# fsck-smoke drives the operator-facing repair path end to end: build a
# pool file, check it clean, flip a superblock bit and repair it in the
# same invocation (a persisted superblock flip would brick the next
# attach — geometry is read from the superblock), then demand a clean
# re-check of the same file.
fsck-smoke:
	rm -f .ci-fsck.cxl
	$(GO) run ./cmd/cxlsnap -create .ci-fsck.cxl -mmap -keys 100
	$(GO) run ./cmd/cxlsnap -fsck .ci-fsck.cxl
	$(GO) run ./cmd/cxlsnap -fsck .ci-fsck.cxl -flip 2:4 -repair
	$(GO) run ./cmd/cxlsnap -fsck .ci-fsck.cxl
	rm -f .ci-fsck.cxl

# top-smoke drives the observer tooling end to end across processes: build
# a pool on an mmap'd file, crash its client, attach cxltop read-only for
# one JSON and one Prometheus snapshot, recover the pool, and pretty-print
# the crash-surviving telemetry (the dead client's final counters).
top-smoke:
	rm -f .ci-top.cxl
	$(GO) run ./cmd/cxlsnap -create .ci-top.cxl -mmap -keys 100
	$(GO) run ./cmd/cxltop -once -json .ci-top.cxl > /dev/null
	$(GO) run ./cmd/cxltop -once -prom .ci-top.cxl > /dev/null
	$(GO) run ./cmd/cxlsnap -open .ci-top.cxl
	$(GO) run ./cmd/cxlsnap -metrics .ci-top.cxl > /dev/null
	rm -f .ci-top.cxl

# ci is the continuous-integration gate (.github/workflows/ci.yml): vet,
# tier-1 build+test, a race pass over the fast-path and queue tests on both
# backends, the fast-path regression gate against the committed
# BENCH_fastpath.json, the mmap-backend suite, the bounded crash sweep (one
# leg with telemetry collection enabled), the cxltop/cxlsnap observer
# smoke, and the serving-tier chaos smoke on both worker backends.
ci: vet build test
	$(GO) test -race -run 'TestDeviceAccessBudget|TestQueue' ./internal/shm
	CXLSHM_BACKEND=mmap $(GO) test -race -run 'TestDeviceAccessBudget|TestQueue' ./internal/shm
	$(GO) test -race -run TestSlotChurn ./internal/shm
	CXLSHM_BACKEND=mmap $(GO) test -race -run TestSlotChurn ./internal/shm
	$(MAKE) bench-compare
	$(MAKE) test-mmap
	$(MAKE) sweep
	$(MAKE) corrupt
	$(GO) run ./cmd/faultsim -sweep -max-writes 8 -metrics
	$(GO) run ./cmd/faultsim -sweep -max-writes 6 -clients 64
	$(MAKE) top-smoke
	$(MAKE) fsck-smoke
	$(MAKE) serving-smoke

# serving-smoke drives the network-facing serving tier end to end on both
# worker backends: in-process workers on the heap pool, then real child OS
# processes attached to an mmap pool file — each run kills one worker
# mid-traffic, requires monitor-driven recovery plus metadata-only
# partition failover, and fails on any survivor error, lost write,
# corruption, or unclean fsck.
serving-smoke:
	$(GO) run ./cmd/cxlkv chaos -backend inproc -workers 3 -keys 20000 -conns 4 -ops 5000
	$(GO) run ./cmd/cxlkv chaos -backend proc -workers 3 -keys 20000 -conns 4 -ops 5000

# bench-serving runs the full serving chaos benchmark (child OS processes
# on an mmap pool file, zipfian traffic, one SIGKILL mid-stream) and
# (re)writes BENCH_serving.json in the repo root with provenance.
bench-serving:
	$(GO) run ./cmd/cxlkv chaos -backend proc -out BENCH_serving.json

# serving-compare re-runs the serving chaos benchmark and gates it against
# the committed BENCH_serving.json: the hard invariants (zero survivor
# errors, zero lost writes, zero corruptions, fsck clean) are absolute;
# latency and recovery-SLO gates allow 4x slack over the baseline because
# serving latencies are wall-clock and machine-local. After an intentional
# change, re-run `make bench-serving` and commit the new baseline.
serving-compare:
	$(GO) run ./cmd/cxlkv chaos -backend proc -compare BENCH_serving.json

bench:
	$(GO) test -run xxx -bench . -benchtime=1s .

# bench-fastpath measures ns/op and device loads/stores/CAS per fast-path
# operation and (re)writes BENCH_fastpath.json in the repo root, stamped
# with the build/geometry provenance that produced it.
bench-fastpath:
	$(GO) run ./cmd/cxlbench fastpath

# bench-scale measures the client-scaling curve (attach cost and per-client
# alloc/free device accesses at 1..256 attached clients) plus the 8-way
# concurrent-recovery comparison, and (re)writes BENCH_scale.json in the
# repo root with build/geometry provenance.
bench-scale:
	$(GO) run ./cmd/cxlbench scale

# bench-compare re-measures the fast paths and the client-scaling curve,
# failing when any operation's device accesses per op — or any per-client
# access count at any point of the scaling curve — regressed more than 10%
# against the committed BENCH_fastpath.json / BENCH_scale.json. Wall time
# is not compared (machine-local); the access counts are deterministic, so
# this is a sharp CI gate. After an intentional improvement, re-run
# `make bench-fastpath` / `make bench-scale` and commit the new baseline.
bench-compare:
	$(GO) run ./cmd/cxlbench fastpath-compare
	$(GO) run ./cmd/cxlbench scale-compare
	$(MAKE) serving-compare
