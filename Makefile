# Developer entry points. `make verify` is the full pre-merge gate:
# vet + build + tests, plus the race detector on the concurrency-heavy
# packages (allocator, recovery, metrics).

GO ?= go

.PHONY: all build test vet race verify bench

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/shm ./internal/recovery ./internal/obs .

verify: vet build test race

bench:
	$(GO) test -run xxx -bench . -benchtime=1s .
