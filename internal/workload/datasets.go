package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// Text synthesizes a word-count corpus of approximately bytes bytes drawn
// from a zipf-distributed vocabulary — the stand-in for the paper's 1 GB
// text dataset (Figure 9), scaled to laptop size. The zipf draw matches
// natural-language word frequencies closely enough that word-count hash
// tables see realistic collision/skew behaviour.
func Text(bytes int, vocab int, seed int64) string {
	if vocab < 2 {
		vocab = 2
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.3, 1, uint64(vocab-1))
	var b strings.Builder
	b.Grow(bytes + 16)
	for b.Len() < bytes {
		w := z.Uint64()
		fmt.Fprintf(&b, "w%d", w)
		if rng.Intn(12) == 0 {
			b.WriteByte('\n')
		} else {
			b.WriteByte(' ')
		}
	}
	return b.String()
}

// Points synthesizes a kmeans dataset: n points of dim dimensions drawn
// around k ground-truth cluster centers (the paper uses 500k 8-dimension
// points in 1k clusters; callers scale). Returned as a flat row-major
// float64 slice.
func Points(n, dim, k int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]float64, k*dim)
	for i := range centers {
		centers[i] = rng.Float64() * 1000
	}
	pts := make([]float64, n*dim)
	for p := 0; p < n; p++ {
		c := rng.Intn(k)
		for d := 0; d < dim; d++ {
			pts[p*dim+d] = centers[c*dim+d] + rng.NormFloat64()*5
		}
	}
	return pts
}
