package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Zipfian draws ranks 0..n-1 with P(rank i) ∝ 1/(i+1)^θ for the YCSB
// zipfian constant θ ∈ [0, 1) — rank 0 is the hottest key. This is the
// generator of Gray et al., "Quickly Generating Billion-Record Synthetic
// Databases" (SIGMOD '94), the one YCSB itself uses: draw u uniform,
// invert the zipfian CDF via the precomputed harmonic normalizer
// ζ(n,θ) = Σ_{i=1..n} 1/i^θ, with closed-form shortcuts for the first two
// ranks and the Gray approximation for the tail.
//
// The previous stand-in mapped θ to Go's rand.NewZipf(s=1/(1-θ)), whose
// distribution P(k) ∝ 1/(v+k)^s is a different family entirely: at θ=0.99
// it produced a head mass several times too hot and a far thinner tail
// than YCSB's, so skew sweeps (Figure 10c) were not measuring what the
// paper's axis claims. This generator pins the head-key mass exactly at
// 1/ζ(n,θ) (see TestZipfianHeadKeyMass).
//
// Determinism: draws consume exactly one rng.Float64() each, so a seeded
// stream replays identically — the property every driver and sweep relies
// on.
type Zipfian struct {
	rng   *rand.Rand
	n     uint64
	theta float64
	// Precomputed by NewZipfian (the only O(n) step):
	zetan float64 // ζ(n,θ)
	alpha float64 // 1/(1-θ)
	eta   float64 // Gray's tail interpolation constant
	p1    float64 // P(rank 0)   = 1/ζ(n,θ)
	p2    float64 // P(rank ≤ 1) = (1 + 2^-θ)/ζ(n,θ)
}

// NewZipfian builds a generator over n ranks with zipfian constant theta.
// theta = 0 is uniform; theta must be < 1 (the YCSB family; θ ≥ 1 has no
// finite uniform-sweep analogue on a bounded key space).
func NewZipfian(rng *rand.Rand, n uint64, theta float64) (*Zipfian, error) {
	if n == 0 {
		return nil, fmt.Errorf("workload: zipfian needs at least one rank")
	}
	if theta < 0 || theta >= 1 {
		return nil, fmt.Errorf("workload: zipfian constant %v out of [0,1)", theta)
	}
	z := &Zipfian{rng: rng, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	z.p1 = 1 / z.zetan
	z.p2 = (1 + math.Pow(0.5, theta)) / z.zetan
	return z, nil
}

// zeta computes the generalized harmonic number ζ(n,θ) = Σ_{i=1..n} 1/i^θ.
func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next rank. Exactly one rng.Float64() per call.
func (z *Zipfian) Next() uint64 {
	u := z.rng.Float64()
	if u < z.p1 {
		return 0
	}
	if u < z.p2 {
		return 1
	}
	k := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n { // floating-point edge at u→1
		k = z.n - 1
	}
	return k
}

// HeadMass returns the expected probability of the hottest rank, 1/ζ(n,θ)
// — the quantity the frequency tests pin.
func (z *Zipfian) HeadMass() float64 { return z.p1 }
