package workload

import (
	"math"
	"strings"
	"testing"
)

func TestKVStreamValidation(t *testing.T) {
	if _, err := NewKVStream(KVConfig{Keys: 0}); err == nil {
		t.Fatal("zero keys accepted")
	}
	if _, err := NewKVStream(KVConfig{Keys: 10, WriteRatio: 1.5}); err == nil {
		t.Fatal("bad write ratio accepted")
	}
}

func TestKVStreamWriteRatio(t *testing.T) {
	for _, ratio := range []float64{0, 0.1, 0.5, 1} {
		s, err := NewKVStream(KVConfig{Keys: 1000, WriteRatio: ratio, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		writes := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if s.Next().Kind == OpWrite {
				writes++
			}
		}
		got := float64(writes) / n
		if math.Abs(got-ratio) > 0.02 {
			t.Fatalf("ratio %v: measured %v", ratio, got)
		}
	}
}

func TestKVStreamKeysInRange(t *testing.T) {
	for _, zipf := range []float64{0, 0.5, 0.99} {
		s, err := NewKVStream(KVConfig{Keys: 100, Zipf: zipf, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10000; i++ {
			if k := s.Next().Key; k >= 100 {
				t.Fatalf("zipf %v: key %d out of range", zipf, k)
			}
		}
	}
}

func TestZipfSkewIncreasesHotness(t *testing.T) {
	hotShare := func(zipf float64) float64 {
		s, _ := NewKVStream(KVConfig{Keys: 10000, Zipf: zipf, Seed: 3})
		counts := map[uint64]int{}
		const n = 50000
		for i := 0; i < n; i++ {
			counts[s.Next().Key]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / n
	}
	uniform, skewed := hotShare(0), hotShare(0.99)
	if skewed < uniform*10 {
		t.Fatalf("zipf 0.99 hot share %v not ≫ uniform %v", skewed, uniform)
	}
}

func TestKVStreamDeterministic(t *testing.T) {
	mk := func() []Op {
		s, _ := NewKVStream(KVConfig{Keys: 100, WriteRatio: 0.3, Zipf: 0.9, Seed: 42})
		return s.Fill(100)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream not deterministic at %d", i)
		}
	}
}

func TestTATPMixAndOps(t *testing.T) {
	s, err := NewTATP(1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[TATPTxnKind]int{}
	reads, writes := 0, 0
	const n = 50000
	for i := 0; i < n; i++ {
		txn := s.Next()
		counts[txn.Kind]++
		ops := txn.Ops()
		if len(ops) == 0 {
			t.Fatalf("txn kind %d expands to no ops", txn.Kind)
		}
		for _, op := range ops {
			if op.Key >= 4000 {
				t.Fatalf("key %d outside subscriber rows", op.Key)
			}
			if op.Kind == OpRead {
				reads++
			} else {
				writes++
			}
		}
	}
	// The standard mix is 80% read-only transactions.
	ro := counts[TATPGetSubscriberData] + counts[TATPGetNewDestination] + counts[TATPGetAccessData]
	if share := float64(ro) / n; math.Abs(share-0.80) > 0.02 {
		t.Fatalf("read-only txn share %v, want ~0.80", share)
	}
	if writes == 0 || reads == 0 {
		t.Fatal("degenerate op mix")
	}
}

func TestSmallBankMixAndOps(t *testing.T) {
	s, err := NewSmallBank(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[SBTxnKind]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		txn := s.Next()
		counts[txn.Kind]++
		if txn.A == txn.B {
			t.Fatal("self-payment generated")
		}
		if len(txn.Ops()) == 0 {
			t.Fatalf("txn kind %d expands to no ops", txn.Kind)
		}
	}
	if share := float64(counts[SBBalance]) / n; math.Abs(share-0.25) > 0.02 {
		t.Fatalf("Balance share %v, want ~0.25", share)
	}
	if _, err := NewSmallBank(1, 0); err == nil {
		t.Fatal("single-account bank accepted")
	}
}

func TestTextCorpusShape(t *testing.T) {
	txt := Text(10000, 500, 9)
	if len(txt) < 10000 {
		t.Fatalf("corpus too short: %d", len(txt))
	}
	words := strings.Fields(txt)
	if len(words) < 1000 {
		t.Fatalf("too few words: %d", len(words))
	}
	freq := map[string]int{}
	for _, w := range words {
		freq[w]++
	}
	if len(freq) < 20 {
		t.Fatalf("vocabulary collapsed to %d words", len(freq))
	}
	// Zipf: the top word should dominate the median word.
	max := 0
	for _, c := range freq {
		if c > max {
			max = c
		}
	}
	if max < len(words)/20 {
		t.Fatalf("no head word: max freq %d of %d", max, len(words))
	}
}

func TestPointsClusterAroundCenters(t *testing.T) {
	const n, dim, k = 2000, 4, 8
	pts := Points(n, dim, k, 11)
	if len(pts) != n*dim {
		t.Fatalf("got %d floats", len(pts))
	}
	// With σ=5 around centers in [0,1000)^dim, points of the same cluster
	// are close; verify the data isn't uniform by checking nearest-neighbor
	// distances are much smaller than random expectation for many points.
	close := 0
	for p := 0; p < 200; p++ {
		best := math.MaxFloat64
		for q := 0; q < n; q++ {
			if q == p {
				continue
			}
			d := 0.0
			for c := 0; c < dim; c++ {
				diff := pts[p*dim+c] - pts[q*dim+c]
				d += diff * diff
			}
			if d < best {
				best = d
			}
		}
		if best < 400 { // within ~20 units
			close++
		}
	}
	if close < 150 {
		t.Fatalf("only %d/200 points have close neighbours; not clustered", close)
	}
}
