// Package workload generates the benchmark workloads of the paper's
// evaluation: YCSB-style key-value operation streams with configurable zipf
// skew (Figure 10c), the TATP and SmallBank transaction mixes (Figure 10d),
// write/read ratio mixes (Figure 10b), and the synthetic datasets for the
// MapReduce experiments (Figure 9): a text corpus for word count and a
// clustered point set for kmeans.
package workload

import (
	"fmt"
	"math/rand"
)

// OpKind is a key-value operation type.
type OpKind uint8

// Operation kinds.
const (
	OpRead OpKind = iota
	OpWrite
)

// Op is one key-value operation.
type Op struct {
	Kind OpKind
	Key  uint64
}

// KVConfig shapes a key-value operation stream.
type KVConfig struct {
	Keys int // key space size
	// WriteRatio in [0,1]: fraction of writes (paper's W:R 1:0 .. 1:9).
	WriteRatio float64
	// Zipf skew θ; 0 means uniform. The paper sweeps {0, .5, .9, .99}.
	Zipf float64
	Seed int64
}

// KVStream produces a deterministic operation stream.
type KVStream struct {
	cfg  KVConfig
	rng  *rand.Rand
	zipf *Zipfian
}

// NewKVStream validates cfg and builds a stream.
func NewKVStream(cfg KVConfig) (*KVStream, error) {
	if cfg.Keys <= 0 {
		return nil, fmt.Errorf("workload: Keys must be positive, got %d", cfg.Keys)
	}
	if cfg.WriteRatio < 0 || cfg.WriteRatio > 1 {
		return nil, fmt.Errorf("workload: WriteRatio %v out of [0,1]", cfg.WriteRatio)
	}
	s := &KVStream{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.Zipf > 0 {
		// The proper YCSB zipfian-constant generator (zipf.go), not the
		// former rand.NewZipf shape-wise approximation.
		z, err := NewZipfian(s.rng, uint64(cfg.Keys), cfg.Zipf)
		if err != nil {
			return nil, err
		}
		s.zipf = z
	}
	return s, nil
}

// Next returns the next operation.
func (s *KVStream) Next() Op {
	var key uint64
	if s.zipf != nil {
		key = s.zipf.Next()
	} else {
		key = uint64(s.rng.Intn(s.cfg.Keys))
	}
	kind := OpRead
	if s.rng.Float64() < s.cfg.WriteRatio {
		kind = OpWrite
	}
	return Op{Kind: kind, Key: key}
}

// Fill produces n operations.
func (s *KVStream) Fill(n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = s.Next()
	}
	return ops
}

// --- TATP (Telecom Application Transaction Processing) ---

// TATPTxnKind enumerates the TATP read-write mix used by the paper (only
// the read-write workload; CXL-KV has no transactions, so each "txn" is a
// fixed sequence of reads/writes on subscriber rows).
type TATPTxnKind uint8

// TATP transaction kinds with their standard mix percentages.
const (
	TATPGetSubscriberData TATPTxnKind = iota // 35%
	TATPGetNewDestination                    // 10%
	TATPGetAccessData                        // 35%
	TATPUpdateSubscriber                     // 2%
	TATPUpdateLocation                       // 14%
	TATPInsertCallForward                    // 2%  (modelled as write)
	TATPDeleteCallForward                    // 2%  (modelled as write)
)

// TATPTxn is one TATP transaction: a subscriber and the kind.
type TATPTxn struct {
	Kind       TATPTxnKind
	Subscriber uint64
}

// Ops expands the transaction into its key-value operations over the
// subscriber's four logical rows (subscriber, access-info, special-facility,
// call-forwarding), keyed as sub*4+row.
func (t TATPTxn) Ops() []Op {
	s := t.Subscriber * 4
	switch t.Kind {
	case TATPGetSubscriberData:
		return []Op{{OpRead, s}}
	case TATPGetNewDestination:
		return []Op{{OpRead, s + 2}, {OpRead, s + 3}}
	case TATPGetAccessData:
		return []Op{{OpRead, s + 1}}
	case TATPUpdateSubscriber:
		return []Op{{OpRead, s}, {OpWrite, s}, {OpWrite, s + 2}}
	case TATPUpdateLocation:
		return []Op{{OpRead, s}, {OpWrite, s}}
	case TATPInsertCallForward:
		return []Op{{OpRead, s}, {OpRead, s + 2}, {OpWrite, s + 3}}
	case TATPDeleteCallForward:
		return []Op{{OpRead, s}, {OpWrite, s + 3}}
	}
	return nil
}

// TATPStream generates the standard TATP mix over n subscribers.
type TATPStream struct {
	rng  *rand.Rand
	subs uint64
}

// NewTATP creates a TATP stream over subscribers many subscribers.
func NewTATP(subscribers int, seed int64) (*TATPStream, error) {
	if subscribers <= 0 {
		return nil, fmt.Errorf("workload: subscribers must be positive")
	}
	return &TATPStream{rng: rand.New(rand.NewSource(seed)), subs: uint64(subscribers)}, nil
}

// Next returns the next transaction following the standard mix.
func (t *TATPStream) Next() TATPTxn {
	p := t.rng.Intn(100)
	var kind TATPTxnKind
	switch {
	case p < 35:
		kind = TATPGetSubscriberData
	case p < 45:
		kind = TATPGetNewDestination
	case p < 80:
		kind = TATPGetAccessData
	case p < 82:
		kind = TATPUpdateSubscriber
	case p < 96:
		kind = TATPUpdateLocation
	case p < 98:
		kind = TATPInsertCallForward
	default:
		kind = TATPDeleteCallForward
	}
	// TATP's non-uniform subscriber selection.
	sub := uint64(t.rng.Int63n(int64(t.subs)))
	return TATPTxn{Kind: kind, Subscriber: sub}
}

// --- SmallBank ---

// SBTxnKind enumerates SmallBank transactions.
type SBTxnKind uint8

// SmallBank transaction kinds (standard mix: 15% each of the first five,
// 25% Balance).
const (
	SBAmalgamate SBTxnKind = iota
	SBDepositChecking
	SBSendPayment
	SBTransactSavings
	SBWriteCheck
	SBBalance
)

// SBTxn is one SmallBank transaction over one or two accounts.
type SBTxn struct {
	Kind SBTxnKind
	A, B uint64
}

// Ops expands the transaction to key-value operations: account a's checking
// row is key a*2, savings a*2+1.
func (t SBTxn) Ops() []Op {
	ca, sa := t.A*2, t.A*2+1
	cb := t.B * 2
	switch t.Kind {
	case SBAmalgamate:
		return []Op{{OpRead, ca}, {OpRead, sa}, {OpWrite, ca}, {OpWrite, sa}, {OpWrite, cb}}
	case SBDepositChecking:
		return []Op{{OpRead, ca}, {OpWrite, ca}}
	case SBSendPayment:
		return []Op{{OpRead, ca}, {OpRead, cb}, {OpWrite, ca}, {OpWrite, cb}}
	case SBTransactSavings:
		return []Op{{OpRead, sa}, {OpWrite, sa}}
	case SBWriteCheck:
		return []Op{{OpRead, ca}, {OpRead, sa}, {OpWrite, ca}}
	case SBBalance:
		return []Op{{OpRead, ca}, {OpRead, sa}}
	}
	return nil
}

// SBStream generates the SmallBank mix over n accounts.
type SBStream struct {
	rng      *rand.Rand
	accounts uint64
}

// NewSmallBank creates a SmallBank stream.
func NewSmallBank(accounts int, seed int64) (*SBStream, error) {
	if accounts <= 1 {
		return nil, fmt.Errorf("workload: need at least 2 accounts")
	}
	return &SBStream{rng: rand.New(rand.NewSource(seed)), accounts: uint64(accounts)}, nil
}

// Next returns the next transaction.
func (s *SBStream) Next() SBTxn {
	p := s.rng.Intn(100)
	var kind SBTxnKind
	switch {
	case p < 15:
		kind = SBAmalgamate
	case p < 30:
		kind = SBDepositChecking
	case p < 45:
		kind = SBSendPayment
	case p < 60:
		kind = SBTransactSavings
	case p < 75:
		kind = SBWriteCheck
	default:
		kind = SBBalance
	}
	a := uint64(s.rng.Int63n(int64(s.accounts)))
	b := uint64(s.rng.Int63n(int64(s.accounts)))
	for b == a {
		b = uint64(s.rng.Int63n(int64(s.accounts)))
	}
	return SBTxn{Kind: kind, A: a, B: b}
}
