package workload

import (
	"math"
	"math/rand"
	"testing"
)

// TestZipfianHeadKeyMass pins the distribution itself: for each paper θ,
// the empirical mass of the hottest key must match the analytic
// 1/ζ(n,θ) — the property the old rand.NewZipf(s=1/(1-θ)) approximation
// failed (its head mass at θ=0.99 was several times too large).
func TestZipfianHeadKeyMass(t *testing.T) {
	const n, draws = 10000, 400000
	for _, theta := range []float64{0.5, 0.9, 0.99} {
		z, err := NewZipfian(rand.New(rand.NewSource(42)), n, theta)
		if err != nil {
			t.Fatal(err)
		}
		head := 0
		for i := 0; i < draws; i++ {
			if z.Next() == 0 {
				head++
			}
		}
		got := float64(head) / draws
		want := z.HeadMass()
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("θ=%v: head-key mass %.5f, analytic 1/ζ(n,θ) = %.5f (off %+.1f%%)",
				theta, got, want, 100*(got/want-1))
		}
	}
}

// TestZipfianSecondRankRatio checks the shape one step further down: the
// rank-1/rank-0 frequency ratio must be 2^-θ.
func TestZipfianSecondRankRatio(t *testing.T) {
	const n, draws = 1000, 500000
	for _, theta := range []float64{0.5, 0.9, 0.99} {
		z, err := NewZipfian(rand.New(rand.NewSource(7)), n, theta)
		if err != nil {
			t.Fatal(err)
		}
		var c0, c1 int
		for i := 0; i < draws; i++ {
			switch z.Next() {
			case 0:
				c0++
			case 1:
				c1++
			}
		}
		got := float64(c1) / float64(c0)
		want := math.Pow(0.5, theta)
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("θ=%v: rank1/rank0 ratio %.4f, want 2^-θ = %.4f", theta, got, want)
		}
	}
}

// TestZipfianTailMass guards against the approximation's other failure
// mode — a starved tail: the bottom half of the key space must carry
// roughly its analytic share (ζ(n,θ)-ζ(n/2,θ))/ζ(n,θ) of the draws.
func TestZipfianTailMass(t *testing.T) {
	const n, draws = 10000, 400000
	for _, theta := range []float64{0.5, 0.9, 0.99} {
		z, err := NewZipfian(rand.New(rand.NewSource(9)), n, theta)
		if err != nil {
			t.Fatal(err)
		}
		tail := 0
		for i := 0; i < draws; i++ {
			if z.Next() >= n/2 {
				tail++
			}
		}
		got := float64(tail) / draws
		want := (zeta(n, theta) - zeta(n/2, theta)) / zeta(n, theta)
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("θ=%v: tail mass %.4f, analytic %.4f", theta, got, want)
		}
	}
}

// TestZipfianRangeAndDeterminism: every draw is in range, and a seeded
// stream replays identically.
func TestZipfianRangeAndDeterminism(t *testing.T) {
	mk := func() []uint64 {
		z, err := NewZipfian(rand.New(rand.NewSource(1234)), 777, 0.99)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, 5000)
		for i := range out {
			out[i] = z.Next()
			if out[i] >= 777 {
				t.Fatalf("draw %d out of range", out[i])
			}
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded stream diverged at draw %d", i)
		}
	}
}

// TestZipfianValidation: the YCSB family is θ ∈ [0,1) on n ≥ 1 ranks.
func TestZipfianValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewZipfian(rng, 0, 0.5); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := NewZipfian(rng, 10, 1.0); err == nil {
		t.Error("θ=1 accepted")
	}
	if _, err := NewZipfian(rng, 10, -0.1); err == nil {
		t.Error("negative θ accepted")
	}
	if _, err := NewKVStream(KVConfig{Keys: 10, Zipf: 1.5}); err == nil {
		t.Error("KVStream accepted θ=1.5")
	}
}
