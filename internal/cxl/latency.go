package cxl

import "time"

// Latency injects per-access delays so the relative performance of local
// NUMA, remote NUMA, and CXL-attached memory (paper Table 1) can be
// reproduced on commodity hardware. All values are nanoseconds; zero
// disables that component.
//
// The model is deliberately simple: each Handle keeps a small direct-mapped
// cache of recently touched 64-byte lines. A hit is free; a miss costs
// MissNS. CAS always pays CASNS and invalidates the line. Sequential scans
// therefore miss once per line (1/8 of word accesses) while random access
// misses almost always — which yields the seq≫rand≫CAS ordering and the
// local<remote<CXL latency ordering the paper measures, without pretending
// to model a real memory hierarchy.
type Latency struct {
	MissNS  int // line fill latency on a modelled cache miss
	CASNS   int // latency of an atomic RMW (coherence round trip)
	FlushNS int // latency charged by Handle.Flush (CLWB)
	FenceNS int // latency charged by Handle.SFence
	// Sleep charges delays with time.Sleep instead of busy-waiting. The
	// busy-wait default is faithful for the sub-microsecond latencies above
	// but cannot overlap across goroutines on a single core — every spin
	// occupies the CPU. Sleep trades per-access accuracy (scheduler
	// granularity puts a floor of tens of microseconds under each delay,
	// so it only makes sense with latencies at least that large) for true
	// overlap, which is what concurrency experiments measure.
	Sleep bool
}

func (l *Latency) enabled() bool { return l.MissNS > 0 || l.CASNS > 0 }

// Canonical profiles matching Table 1's three memory types. The absolute
// values are the paper's measured random-access latencies; what matters for
// the reproduction is their ordering and ratios.
var (
	// LatencyLocalNUMA models a local NUMA node (paper: 110 ns).
	LatencyLocalNUMA = Latency{MissNS: 110, CASNS: 300}
	// LatencyRemoteNUMA models a remote NUMA node (paper: 200 ns).
	LatencyRemoteNUMA = Latency{MissNS: 200, CASNS: 300}
	// LatencyCXL models CXL-attached memory (paper: 390 ns).
	LatencyCXL = Latency{MissNS: 390, CASNS: 300}
)

// spin busy-waits for approximately ns nanoseconds. It deliberately burns
// CPU instead of sleeping: the latencies being modelled (hundreds of ns) are
// far below scheduler granularity.
func spin(ns int) {
	if ns <= 0 {
		return
	}
	start := time.Now()
	target := time.Duration(ns)
	for time.Since(start) < target {
	}
}

// charge applies one delay of the model: a busy-wait by default, a sleep
// when the profile asks for overlap-friendly delays (Latency.Sleep).
func (l *Latency) charge(ns int) {
	if ns <= 0 {
		return
	}
	if l.Sleep {
		time.Sleep(time.Duration(ns))
		return
	}
	spin(ns)
}

// lineCache is a tiny direct-mapped cache of line addresses, used only by
// the latency model. 512 lines = 32 KiB modelled cache.
type lineCache struct {
	lines [512]Addr
	init  bool
}

// touch records an access to the line containing a and reports whether it
// was already cached.
func (c *lineCache) touch(a Addr) bool {
	line := a / LineWords
	slot := line % uint64(len(c.lines))
	if !c.init {
		// Lazily distinguish "empty slot" from "line 0": bias stored values
		// by +1 so zero means empty.
		c.init = true
	}
	if c.lines[slot] == line+1 {
		return true
	}
	c.lines[slot] = line + 1
	return false
}

// invalidate drops the line containing a from the cache.
func (c *lineCache) invalidate(a Addr) {
	line := a / LineWords
	slot := line % uint64(len(c.lines))
	if c.lines[slot] == line+1 {
		c.lines[slot] = 0
	}
}
