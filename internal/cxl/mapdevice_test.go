//go:build unix

package cxl

import (
	"os"
	"path/filepath"
	"testing"
)

func newTestMapDevice(t *testing.T, words int) *MapDevice {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pool.cxl")
	md, err := CreateMapDevice(path, Config{Words: words, MaxClients: 8, CountAccesses: true})
	if err != nil {
		t.Fatalf("CreateMapDevice: %v", err)
	}
	t.Cleanup(func() { md.Close() })
	return md
}

func TestMapDeviceRoundTrip(t *testing.T) {
	md := newTestMapDevice(t, 256)
	h := md.Open(1)
	for a := Addr(1); a < 256; a++ {
		h.Store(a, a*7+1)
	}
	for a := Addr(1); a < 256; a++ {
		if got := h.Load(a); got != a*7+1 {
			t.Fatalf("word %d: %d", a, got)
		}
	}
	if md.Words() != 256 || md.MaxClients() != 8 {
		t.Fatalf("geometry: %d words, %d clients", md.Words(), md.MaxClients())
	}
}

func TestMapDeviceReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pool.cxl")
	md, err := CreateMapDevice(path, Config{Words: 128, MaxClients: 4})
	if err != nil {
		t.Fatal(err)
	}
	md.Store(5, 12345)
	md.FenceClient(2)
	if err := md.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := md.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	md2, err := OpenMapDevice(path)
	if err != nil {
		t.Fatalf("OpenMapDevice: %v", err)
	}
	defer md2.Close()
	if md2.Words() != 128 || md2.MaxClients() != 4 {
		t.Fatalf("reopened geometry: %d words, %d clients", md2.Words(), md2.MaxClients())
	}
	if got := md2.Load(5); got != 12345 {
		t.Fatalf("word 5 after reopen: %d", got)
	}
	// RAS fence state lives in the file too: a fence set by the previous
	// owner survives into the next process.
	if !md2.ClientFenced(2) {
		t.Fatal("fence flag lost across reopen")
	}
}

// TestMapDeviceSharedMapping maps the same file twice — the in-process
// equivalent of two OS processes attaching one pool — and checks that
// stores and RAS fences through one mapping are visible through the other.
func TestMapDeviceSharedMapping(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pool.cxl")
	a, err := CreateMapDevice(path, Config{Words: 64, MaxClients: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenMapDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ha := a.Open(1)
	hb := b.Open(2)
	ha.Store(10, 77)
	if got := hb.Load(10); got != 77 {
		t.Fatalf("store via mapping A not visible via B: %d", got)
	}
	if !hb.CAS(10, 77, 88) {
		t.Fatal("CAS via mapping B on A's store")
	}
	if got := ha.Load(10); got != 88 {
		t.Fatalf("CAS via B not visible via A: %d", got)
	}

	// Mapping B fences client 1 (recovery in another process); client 1's
	// writes through mapping A must be dropped.
	b.FenceClient(1)
	ha.Store(10, 1000)
	if got := hb.Load(10); got != 88 {
		t.Fatalf("fenced cross-mapping store leaked: %d", got)
	}
	if ha.DroppedWrites() != 1 {
		t.Fatalf("dropped = %d, want 1", ha.DroppedWrites())
	}
}

func TestMapDeviceOpenErrors(t *testing.T) {
	dir := t.TempDir()

	if _, err := OpenMapDevice(filepath.Join(dir, "missing.cxl")); err == nil {
		t.Fatal("open of missing file must fail")
	}

	// Not a map file at all.
	junk := filepath.Join(dir, "junk.cxl")
	if err := os.WriteFile(junk, []byte("definitely not a pool file, but long enough to read"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapDevice(junk); err == nil {
		t.Fatal("open of junk file must fail")
	}

	// Truncated file: valid header, missing words.
	path := filepath.Join(dir, "trunc.cxl")
	md, err := CreateMapDevice(path, Config{Words: 1 << 12, MaxClients: 4})
	if err != nil {
		t.Fatal(err)
	}
	md.Close()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-4096); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapDevice(path); err == nil {
		t.Fatal("open of truncated file must fail")
	}

	// Creating over an existing file must fail (no silent clobber).
	if _, err := CreateMapDevice(junk, Config{Words: 64, MaxClients: 4}); err == nil {
		t.Fatal("create over existing file must fail")
	}
}

func TestAnonMapDevice(t *testing.T) {
	md, err := NewAnonMapDevice(Config{Words: 128, MaxClients: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer md.Close()
	h := md.Open(1)
	h.Store(3, 9)
	if h.Load(3) != 9 {
		t.Fatal("anon map device round trip")
	}
	// The backing temp file is already unlinked.
	if p := md.Path(); p != "" {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("anon backing file %s still linked", p)
		}
	}
}

func TestMapDeviceStats(t *testing.T) {
	md := newTestMapDevice(t, 64)
	md.ResetStats()
	h := md.Open(1)
	h.Store(1, 1)
	h.Load(1)
	h.CAS(1, 1, 2)
	s := md.Stats()
	if s.Stores != 1 || s.Loads != 1 || s.CASes != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMapDeviceSnapshot(t *testing.T) {
	md := newTestMapDevice(t, 64)
	md.Store(7, 42)
	img := md.Snapshot()
	md.Store(7, 0)
	if img[7] != 42 {
		t.Fatal("snapshot must copy, not alias, the mapping")
	}
	if len(img) != 64 {
		t.Fatalf("snapshot length %d", len(img))
	}
}
