package cxl

import "sync/atomic"

// Handle is one client's view of the device. It is the only path client code
// may use to access shared memory: RAS fencing and the latency model are
// applied here. A Handle is owned by a single goroutine and is not
// goroutine-safe (matching the paper's one-client-per-thread model); the
// Device underneath is fully concurrent.
type Handle struct {
	d   *Device
	cid int

	// cache models this client's CPU cache for the latency model: a small
	// direct-mapped set of recently touched line addresses. Only consulted
	// when the device latency model is enabled.
	cache lineCache

	// droppedWrites counts stores/CAS swallowed by the RAS fence.
	droppedWrites uint64
}

// Open creates a Handle for client cid. cid must be in [1, MaxClients].
func (d *Device) Open(cid int) *Handle {
	if cid <= 0 || cid >= len(d.fenced) {
		panic("cxl: Open with out-of-range client id")
	}
	return &Handle{d: d, cid: cid}
}

// ClientID returns the client ID this handle was opened for.
func (h *Handle) ClientID() int { return h.cid }

// Fenced reports whether this handle's client has been RAS-fenced.
func (h *Handle) Fenced() bool { return h.d.fenced[h.cid].Load() != 0 }

// DroppedWrites reports how many stores/CAS were swallowed by the fence.
func (h *Handle) DroppedWrites() uint64 { return h.droppedWrites }

// Load atomically reads the word at a.
func (h *Handle) Load(a Addr) uint64 {
	h.d.check(a)
	if h.d.countAccesses {
		h.d.loads.Add(1)
	}
	h.chargeAccess(a, false)
	return atomic.LoadUint64(&h.d.words[a])
}

// Store atomically writes v at a. If the client is fenced the write is
// silently dropped, exactly as a RAS-isolated node's writes never reach the
// device.
func (h *Handle) Store(a Addr, v uint64) {
	h.d.check(a)
	if h.Fenced() {
		h.droppedWrites++
		return
	}
	if h.d.countAccesses {
		h.d.stores.Add(1)
	}
	h.chargeAccess(a, false)
	atomic.StoreUint64(&h.d.words[a], v)
}

// CAS atomically compares-and-swaps the word at a. Returns false without
// touching memory if the client is fenced.
func (h *Handle) CAS(a Addr, old, new uint64) bool {
	h.d.check(a)
	if h.Fenced() {
		h.droppedWrites++
		return false
	}
	if h.d.countAccesses {
		h.d.cases.Add(1)
	}
	h.chargeAccess(a, true)
	return atomic.CompareAndSwapUint64(&h.d.words[a], old, new)
}

// SFence orders the client's preceding stores before its subsequent ones,
// modelling the sfence the paper inserts in the allocation fast path. With
// Go atomics every access is already sequentially consistent, so the fence
// only needs to be accounted (and optionally charged) for the Figure 7
// breakdown.
func (h *Handle) SFence() {
	h.d.fences.Add(1)
	if h.d.lat.FenceNS > 0 {
		spin(h.d.lat.FenceNS)
	}
}

// Flush models a CLWB of the cache line containing a, persisting it to the
// device (needed on the paper's CXL 2.0 platform; see §6.1). It is an
// accounting no-op plus optional latency.
func (h *Handle) Flush(a Addr) {
	h.d.flushes.Add(1)
	if h.d.lat.FlushNS > 0 {
		spin(h.d.lat.FlushNS)
	}
}

// chargeAccess applies the latency model for one word access.
func (h *Handle) chargeAccess(a Addr, cas bool) {
	lat := &h.d.lat
	if !lat.enabled() {
		return
	}
	if cas {
		if lat.CASNS > 0 {
			spin(lat.CASNS)
		}
		// CAS invalidates the line everywhere; drop it from our cache too.
		h.cache.invalidate(a)
		return
	}
	if h.cache.touch(a) {
		return // modelled cache hit: free
	}
	if lat.MissNS > 0 {
		spin(lat.MissNS)
	}
}

// ReadBytes copies n bytes starting at byte offset off within the object at
// word address a into p. Word loads are atomic; byte extraction is
// little-endian, matching how a real CXL device presents memory to x86
// hosts. Whole interior words are read with a single load.
func (h *Handle) ReadBytes(a Addr, off int, p []byte) {
	i := 0
	for i < len(p) {
		byteIdx := off + i
		wordOff := byteIdx % WordBytes
		wa := a + Addr(byteIdx/WordBytes)
		w := h.Load(wa)
		if wordOff == 0 && len(p)-i >= WordBytes {
			// Full-word fast path.
			for k := 0; k < WordBytes; k++ {
				p[i+k] = byte(w >> (8 * k))
			}
			i += WordBytes
			continue
		}
		n := WordBytes - wordOff
		if n > len(p)-i {
			n = len(p) - i
		}
		for k := 0; k < n; k++ {
			p[i+k] = byte(w >> (8 * (wordOff + k)))
		}
		i += n
	}
}

// WriteBytes stores p at byte offset off within the object at word address
// a. Whole interior words are written with single stores; partial edge words
// use read-modify-write (non-atomic with respect to concurrent writers of
// the same word, exactly like real shared memory).
func (h *Handle) WriteBytes(a Addr, off int, p []byte) {
	i := 0
	for i < len(p) {
		byteIdx := off + i
		wordOff := byteIdx % WordBytes
		wa := a + Addr(byteIdx/WordBytes)
		if wordOff == 0 && len(p)-i >= WordBytes {
			// Full-word fast path.
			var w uint64
			for k := 0; k < WordBytes; k++ {
				w |= uint64(p[i+k]) << (8 * k)
			}
			h.Store(wa, w)
			i += WordBytes
			continue
		}
		// Partial word: read-modify-write.
		w := h.Load(wa)
		n := WordBytes - wordOff
		if n > len(p)-i {
			n = len(p) - i
		}
		for k := 0; k < n; k++ {
			shift := 8 * (wordOff + k)
			w &^= uint64(0xff) << shift
			w |= uint64(p[i+k]) << shift
		}
		h.Store(wa, w)
		i += n
	}
}
