package cxl

import "sync/atomic"

// Handle is one client's view of a Memory. It is the only path client code
// may use to access shared memory: RAS fencing, the latency model, access
// hooks and per-client access counting are applied here. A Handle is owned
// by a single goroutine and is not goroutine-safe (matching the paper's
// one-client-per-thread model); the Memory underneath is fully concurrent.
//
// Dispatch is two-tier, so the heap fast path never pays interface calls:
// when the handle is opened directly on a *Device (or *MapDevice, or only
// handle-transparent middleware such as WithLatency is stacked above one),
// dev is set and Load/Store/CAS touch the word array with one bounds check
// and one sync/atomic op. Intercepting middleware (WithCounting,
// WithAccessHook) clears dev via retarget so every access flows through the
// interface path it observes.
type Handle struct {
	// mem is the full Memory stack accesses flow through when dev is nil.
	mem Memory
	// dev short-circuits to the concrete bottom device when no intercepting
	// middleware is stacked (devirtualized fast path).
	dev *Device
	cid int

	// fencedW points at this client's RAS fence word in the bottom device
	// (heap or mmap'd file). Fencing is device-authoritative, so the fast
	// check survives retargeting through middleware.
	fencedW *atomic.Uint32
	// ctr is this client's counter block in the bottom device, merged into
	// Stats on read. count gates load/store/CAS counting on the fast path;
	// on the interface path the bottom device counts for itself.
	ctr   *counters
	count bool

	// lat, when set, applies the latency model (see Latency); installed by
	// the WithLatency middleware. cache models this client's CPU cache: a
	// small direct-mapped set of recently touched line addresses, consulted
	// only when lat is set.
	lat   *Latency
	cache lineCache

	// hook, when set, observes every access before it executes (installed
	// by WithAccessHook); it may panic to simulate a crash mid-operation.
	hook AccessHook

	// droppedWrites counts stores/CAS swallowed by the RAS fence.
	droppedWrites uint64
}

// Open creates a Handle for client cid. cid must be in [1, MaxClients].
func (d *Device) Open(cid int) *Handle {
	if cid <= 0 || cid >= len(d.fenced) {
		panic("cxl: Open with out-of-range client id")
	}
	return &Handle{
		mem:     d,
		dev:     d,
		cid:     cid,
		fencedW: &d.fenced[cid],
		ctr:     &d.hctr[cid],
		count:   d.countAccesses,
	}
}

// retarget reroutes the handle's data path through m, an intercepting
// middleware layer: dev is cleared so every Load/Store/CAS goes through m.
// The fence word and counter block stay wired to the bottom device
// (fencing and Stats remain device-authoritative); fast-path counting is
// disabled because the bottom device now counts the interface-path calls
// itself. Any handle-level hook installed by a layer below m is cleared
// for the same reason: that layer now sees the retargeted traffic at the
// device plane, and keeping the handle hook too would fire it twice.
// Hook layers stacked above m set their hook after this runs and keep it.
func (h *Handle) retarget(m Memory) *Handle {
	h.mem = m
	h.dev = nil
	h.count = false
	h.hook = nil
	return h
}

// setLatency installs the latency profile (WithLatency middleware).
func (h *Handle) setLatency(l Latency) *Handle {
	if l != (Latency{}) {
		h.lat = &l
	}
	return h
}

// setHook installs an access hook (WithAccessHook middleware). Multiple
// hooks chain, innermost first.
func (h *Handle) setHook(hook AccessHook) *Handle {
	if prev := h.hook; prev != nil {
		h.hook = func(cid int, kind AccessKind, a Addr) {
			prev(cid, kind, a)
			hook(cid, kind, a)
		}
	} else {
		h.hook = hook
	}
	return h
}

// ClientID returns the client ID this handle was opened for.
func (h *Handle) ClientID() int { return h.cid }

// Fenced reports whether this handle's client has been RAS-fenced.
func (h *Handle) Fenced() bool {
	if w := h.fencedW; w != nil {
		return w.Load() != 0
	}
	return h.mem.ClientFenced(h.cid)
}

// DroppedWrites reports how many stores/CAS were swallowed by the fence.
func (h *Handle) DroppedWrites() uint64 { return h.droppedWrites }

// Load atomically reads the word at a.
func (h *Handle) Load(a Addr) uint64 {
	if h.hook != nil {
		h.hook(h.cid, OpLoad, a)
	}
	if h.lat != nil {
		h.chargeAccess(a, false)
	}
	if d := h.dev; d != nil {
		d.check(a)
		if h.count {
			h.ctr.loads.Add(1)
		}
		return atomic.LoadUint64(&d.words[a])
	}
	return h.mem.Load(a)
}

// Store atomically writes v at a. If the client is fenced the write is
// silently dropped, exactly as a RAS-isolated node's writes never reach the
// device.
func (h *Handle) Store(a Addr, v uint64) {
	d := h.dev
	if d != nil {
		d.check(a)
	}
	if h.Fenced() {
		h.droppedWrites++
		return
	}
	if h.hook != nil {
		h.hook(h.cid, OpStore, a)
	}
	if h.lat != nil {
		h.chargeAccess(a, false)
	}
	if d != nil {
		if h.count {
			h.ctr.stores.Add(1)
		}
		atomic.StoreUint64(&d.words[a], v)
		return
	}
	h.mem.Store(a, v)
}

// CAS atomically compares-and-swaps the word at a. Returns false without
// touching memory if the client is fenced.
func (h *Handle) CAS(a Addr, old, new uint64) bool {
	d := h.dev
	if d != nil {
		d.check(a)
	}
	if h.Fenced() {
		h.droppedWrites++
		return false
	}
	if h.hook != nil {
		h.hook(h.cid, OpCAS, a)
	}
	if h.lat != nil {
		h.chargeAccess(a, true)
	}
	if d != nil {
		if h.count {
			h.ctr.cases.Add(1)
		}
		return atomic.CompareAndSwapUint64(&d.words[a], old, new)
	}
	return h.mem.CAS(a, old, new)
}

// SFence orders the client's preceding stores before its subsequent ones,
// modelling the sfence the paper inserts in the allocation fast path. With
// Go atomics every access is already sequentially consistent, so the fence
// only needs to be accounted (and optionally charged) for the Figure 7
// breakdown.
func (h *Handle) SFence() {
	if h.hook != nil {
		h.hook(h.cid, OpFence, 0)
	}
	h.ctr.fences.Add(1)
	if h.lat != nil && h.lat.FenceNS > 0 {
		h.lat.charge(h.lat.FenceNS)
	}
	if h.dev == nil {
		h.mem.Fence()
	}
}

// Flush models a CLWB of the cache line containing a, persisting it to the
// device (needed on the paper's CXL 2.0 platform; see §6.1). It is an
// accounting no-op plus optional latency.
func (h *Handle) Flush(a Addr) {
	if h.hook != nil {
		h.hook(h.cid, OpFlush, a)
	}
	h.ctr.flushes.Add(1)
	if h.lat != nil && h.lat.FlushNS > 0 {
		h.lat.charge(h.lat.FlushNS)
	}
	if h.dev == nil {
		h.mem.Flush(a)
	}
}

// chargeAccess applies the latency model for one word access.
func (h *Handle) chargeAccess(a Addr, cas bool) {
	lat := h.lat
	if !lat.enabled() {
		return
	}
	if cas {
		if lat.CASNS > 0 {
			lat.charge(lat.CASNS)
		}
		// CAS invalidates the line everywhere; drop it from our cache too.
		h.cache.invalidate(a)
		return
	}
	if h.cache.touch(a) {
		return // modelled cache hit: free
	}
	if lat.MissNS > 0 {
		lat.charge(lat.MissNS)
	}
}

// ReadBytes copies n bytes starting at byte offset off within the object at
// word address a into p. Word loads are atomic; byte extraction is
// little-endian, matching how a real CXL device presents memory to x86
// hosts. Whole interior words are read with a single load.
func (h *Handle) ReadBytes(a Addr, off int, p []byte) {
	i := 0
	for i < len(p) {
		byteIdx := off + i
		wordOff := byteIdx % WordBytes
		wa := a + Addr(byteIdx/WordBytes)
		w := h.Load(wa)
		if wordOff == 0 && len(p)-i >= WordBytes {
			// Full-word fast path.
			for k := 0; k < WordBytes; k++ {
				p[i+k] = byte(w >> (8 * k))
			}
			i += WordBytes
			continue
		}
		n := WordBytes - wordOff
		if n > len(p)-i {
			n = len(p) - i
		}
		for k := 0; k < n; k++ {
			p[i+k] = byte(w >> (8 * (wordOff + k)))
		}
		i += n
	}
}

// WriteBytes stores p at byte offset off within the object at word address
// a. Whole interior words are written with single stores; partial edge words
// use read-modify-write (non-atomic with respect to concurrent writers of
// the same word, exactly like real shared memory).
func (h *Handle) WriteBytes(a Addr, off int, p []byte) {
	i := 0
	for i < len(p) {
		byteIdx := off + i
		wordOff := byteIdx % WordBytes
		wa := a + Addr(byteIdx/WordBytes)
		if wordOff == 0 && len(p)-i >= WordBytes {
			// Full-word fast path.
			var w uint64
			for k := 0; k < WordBytes; k++ {
				w |= uint64(p[i+k]) << (8 * k)
			}
			h.Store(wa, w)
			i += WordBytes
			continue
		}
		// Partial word: read-modify-write.
		w := h.Load(wa)
		n := WordBytes - wordOff
		if n > len(p)-i {
			n = len(p) - i
		}
		for k := 0; k < n; k++ {
			shift := 8 * (wordOff + k)
			w &^= uint64(0xff) << shift
			w |= uint64(p[i+k]) << shift
		}
		h.Store(wa, w)
		i += n
	}
}
