package cxl

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"unsafe"
)

// MapDevice is a shared memory pool whose word array, RAS fence flags and
// header live in an mmap'd file. This is the realistic software stand-in
// for CXL shared memory today (Xu et al.: mmap-based shared files are
// "barely distributed and almost persistent"): a pool created by one OS
// process can be reopened — alive, no copy — by another, because the
// device's failure domain is the file, not any process that maps it.
//
// MapDevice embeds Device, so the entire data path (atomic word access,
// RAS fencing, Handle fast path, access counting) is byte-for-byte the same
// code as the heap backend; only the storage the slices view differs. Two
// processes mapping the same file share one cache-coherent word array and
// one set of fence flags, so a recovery service in a fresh process can
// fence and recover the clients of a dead one.
//
// File layout (little-endian):
//
//	byte 0    magic "CXLMMAP1"
//	byte 8    file format version
//	byte 16   pool size in words
//	byte 24   device MaxClients
//	byte 32   header size in bytes
//	byte 64   RAS fence flags: (MaxClients+1) uint32 words
//	...       (header padded to a page multiple)
//	byte hdr  word array: words × 8 bytes
type MapDevice struct {
	Device
	data []byte
	path string
}

// MapDevice implements Memory.
var _ Memory = (*MapDevice)(nil)

const (
	mapMagic         = 0x3150414d4d4c5843 // "CXLMMAP1" little-endian
	mapFormatVersion = 1
	// mapFencedOff is the byte offset of the fence-flag array.
	mapFencedOff = 64
	// mapPage is the header alignment; mmap offsets are page-granular.
	mapPage = 4096
)

// Compile-time guarantees that the unsafe file views below are sound.
var (
	_ = [1]struct{}{}[unsafe.Sizeof(atomic.Uint32{})-4]
	_ = [1]struct{}{}[unsafe.Alignof(atomic.Uint32{})-4]
)

// mapHeaderBytes computes the (page-aligned) header size for a client count.
func mapHeaderBytes(maxClients int) int {
	n := mapFencedOff + 4*(maxClients+1)
	return (n + mapPage - 1) &^ (mapPage - 1)
}

// CreateMapDevice creates the file at path and formats it as an empty,
// all-zero pool of cfg.Words words. It fails if the file already exists:
// clobbering a live pool is never recoverable, so callers must remove an
// old pool explicitly.
func CreateMapDevice(path string, cfg Config) (*MapDevice, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cxl: create pool file: %w", err)
	}
	hdr := mapHeaderBytes(cfg.MaxClients)
	size := int64(hdr) + int64(cfg.Words)*WordBytes
	if err := f.Truncate(size); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("cxl: size pool file to %d bytes: %w", size, err)
	}
	data, err := mmapFile(f, int(size))
	// The mapping keeps the file contents reachable; the descriptor is not
	// needed past this point (msync works on the address range), and
	// holding it would leak descriptors in pool-per-trial campaigns.
	f.Close()
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	binary.LittleEndian.PutUint64(data[0:], mapMagic)
	binary.LittleEndian.PutUint64(data[8:], mapFormatVersion)
	binary.LittleEndian.PutUint64(data[16:], uint64(cfg.Words))
	binary.LittleEndian.PutUint64(data[24:], uint64(cfg.MaxClients))
	binary.LittleEndian.PutUint64(data[32:], uint64(hdr))
	return newMapDevice(path, data, cfg.Words, cfg.MaxClients, hdr, cfg.CountAccesses), nil
}

// OpenMapDevice maps an existing pool file. The pool comes back exactly as
// the last process left it — including fence flags and any clients that
// died holding references; attach it with shm.AttachMemory and run
// recovery on the stale clients.
func OpenMapDevice(path string) (*MapDevice, error) {
	return openMapDevice(path, false)
}

// OpenMapDeviceReadOnly maps an existing pool file PROT_READ and wraps it
// read-only: loads observe the live pool (other processes' stores included)
// but any store, CAS, fence or Handle open panics — and even a bug that
// bypassed the wrapper would take a SIGSEGV from the MMU, not corrupt the
// pool. This is the attach path for observers (cxltop, cxlsnap -metrics).
func OpenMapDeviceReadOnly(path string) (Memory, error) {
	md, err := openMapDevice(path, true)
	if err != nil {
		return nil, err
	}
	return &ReadOnlyDevice{md}, nil
}

func openMapDevice(path string, readOnly bool) (*MapDevice, error) {
	flag := os.O_RDWR
	if readOnly {
		flag = os.O_RDONLY
	}
	f, err := os.OpenFile(path, flag, 0)
	if err != nil {
		return nil, fmt.Errorf("cxl: open pool file: %w", err)
	}
	var hdrBuf [40]byte
	if _, err := f.ReadAt(hdrBuf[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("cxl: %s: read pool header: %w", path, err)
	}
	if got := binary.LittleEndian.Uint64(hdrBuf[0:]); got != mapMagic {
		f.Close()
		return nil, fmt.Errorf("cxl: %s is not a CXL-SHM pool file (magic %#x)", path, got)
	}
	if v := binary.LittleEndian.Uint64(hdrBuf[8:]); v != mapFormatVersion {
		f.Close()
		return nil, fmt.Errorf("cxl: %s: pool file format version %d, this build reads version %d",
			path, v, mapFormatVersion)
	}
	words := binary.LittleEndian.Uint64(hdrBuf[16:])
	maxClients := binary.LittleEndian.Uint64(hdrBuf[24:])
	hdr := binary.LittleEndian.Uint64(hdrBuf[32:])
	if words == 0 || words > 1<<40 || maxClients == 0 || maxClients > 1<<20 {
		f.Close()
		return nil, fmt.Errorf("cxl: %s: implausible pool header (words %d, clients %d)",
			path, words, maxClients)
	}
	if want := mapHeaderBytes(int(maxClients)); hdr != uint64(want) {
		f.Close()
		return nil, fmt.Errorf("cxl: %s: header size %d does not match %d clients (want %d)",
			path, hdr, maxClients, want)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := int64(hdr) + int64(words)*WordBytes
	if st.Size() != size {
		f.Close()
		return nil, fmt.Errorf("cxl: %s: file is %d bytes, header computes %d (truncated or corrupt)",
			path, st.Size(), size)
	}
	mapFn := mmapFile
	if readOnly {
		mapFn = mmapFileReadOnly
	}
	data, err := mapFn(f, int(size))
	f.Close()
	if err != nil {
		return nil, err
	}
	return newMapDevice(path, data, int(words), int(maxClients), int(hdr), false), nil
}

// NewAnonMapDevice creates a MapDevice backed by an unlinked temporary
// file: it behaves exactly like a named pool file (same mapping, same data
// path) but leaves nothing on disk once closed. Used to run the whole
// stack's test suite and fault campaigns over the mmap backend.
func NewAnonMapDevice(cfg Config) (*MapDevice, error) {
	dir := os.TempDir()
	f, err := os.CreateTemp(dir, "cxlshm-*.pool")
	if err != nil {
		return nil, err
	}
	path := f.Name()
	f.Close()
	os.Remove(path)
	md, err := CreateMapDevice(filepath.Join(dir, filepath.Base(path)), cfg)
	if err != nil {
		return nil, err
	}
	// Unlink immediately: the mapping keeps the storage alive.
	os.Remove(md.path)
	return md, nil
}

// newMapDevice builds the device views over the mapping.
func newMapDevice(path string, data []byte, words, maxClients, hdr int, count bool) *MapDevice {
	md := &MapDevice{data: data, path: path}
	w := unsafe.Slice((*uint64)(unsafe.Pointer(&data[hdr])), words)
	fenced := unsafe.Slice((*atomic.Uint32)(unsafe.Pointer(&data[mapFencedOff])), maxClients+1)
	md.init(w, fenced, count)
	return md
}

// Path returns the backing file's path.
func (m *MapDevice) Path() string { return m.path }

// Sync flushes dirty pages to the backing file (msync MS_SYNC). The OS
// writes dirty pages back eventually anyway; Sync is for tools that want a
// durability point before, say, copying the file.
func (m *MapDevice) Sync() error { return msync(m.data) }

// Close unmaps the pool. The pool itself lives on in the file — that is
// the point — but this mapping becomes invalid: any later access through
// this device faults, exactly like touching powered-off memory. Handles
// opened from it must not be used afterwards.
func (m *MapDevice) Close() error {
	if m.data == nil {
		return nil
	}
	err := munmap(m.data)
	m.data = nil
	m.words = nil
	m.fenced = nil
	return err
}
