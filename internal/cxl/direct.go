package cxl

import "unsafe"

// Direct data-plane access (paper §3.1: cxl_malloc returns an address and
// clients then use plain loads and stores on the mapped memory — the API is
// only the control plane). A byte window aliases the device's backing words
// with no copy, which is exactly what get_addr hands out on real hardware.
//
// Windows bypass the Handle path: no RAS fencing, no latency model, no
// access counters. That is the hardware-faithful semantics — a fenced
// client's cached mappings stay readable, and data-plane traffic does not
// go through the allocator — but it means windows must only ever cover DATA
// words of blocks the caller holds a reference to, never allocator
// metadata. The shm layer enforces that discipline (lease.go).

// DirectWords is implemented by backends whose word array lives in
// addressable memory (the heap Device and, via embedding, the mmap'd
// MapDevice). Middleware does not implement it; resolve through Bottom.
type DirectWords interface {
	DirectWords() []uint64
}

// DirectWords exposes the device's backing word array.
func (d *Device) DirectWords() []uint64 { return d.words }

// hostLittleEndian reports whether this machine lays out uint64s
// little-endian — the byte order ReadBytes/WriteBytes define for the
// device, "matching how a real CXL device presents memory to x86 hosts".
// On a big-endian host an aliased byte view would present words reversed,
// so direct windows are refused there and callers fall back to the copying
// accessors.
var hostLittleEndian = func() bool {
	x := uint64(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// DataWindow returns a []byte aliasing words [a, a+ceil(nbytes/8)) of the
// memory backing m, resolved through any middleware stack, or nil when no
// zero-copy view is possible (non-direct backend, big-endian host, or an
// out-of-range request). The window stays valid until the backing device is
// closed; writes through it are plain (non-atomic) byte stores, like real
// shared memory.
func DataWindow(m Memory, a Addr, nbytes int) []byte {
	if !hostLittleEndian || nbytes < 0 {
		return nil
	}
	dw, ok := Bottom(m).(DirectWords)
	if !ok {
		return nil
	}
	words := dw.DirectWords()
	nwords := (nbytes + WordBytes - 1) / WordBytes
	if a == 0 || int64(a)+int64(nwords) > int64(len(words)) {
		return nil
	}
	if nbytes == 0 {
		return []byte{}
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[a])), nbytes)
}
