package cxl

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTestDevice(t *testing.T, words int) *Device {
	t.Helper()
	d, err := NewDevice(Config{Words: words, MaxClients: 16, CountAccesses: true})
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return d
}

func TestNewDeviceRejectsBadConfig(t *testing.T) {
	if _, err := NewDevice(Config{Words: 0, MaxClients: 4}); err == nil {
		t.Fatal("expected error for zero-size pool")
	}
	if _, err := NewDevice(Config{Words: -5, MaxClients: 4}); err == nil {
		t.Fatal("expected error for negative pool")
	}
	if _, err := NewDevice(Config{Words: 64, MaxClients: 0}); err == nil {
		t.Fatal("expected error for zero MaxClients")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	d := newTestDevice(t, 128)
	h := d.Open(1)
	for a := Addr(1); a < 128; a++ {
		h.Store(a, a*3+7)
	}
	for a := Addr(1); a < 128; a++ {
		if got := h.Load(a); got != a*3+7 {
			t.Fatalf("word %d: got %d, want %d", a, got, a*3+7)
		}
	}
}

func TestNilAndOutOfRangePanics(t *testing.T) {
	d := newTestDevice(t, 16)
	h := d.Open(1)
	for _, a := range []Addr{0, 16, 1 << 40} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("access at %#x: expected panic", a)
				}
			}()
			h.Load(a)
		}()
	}
}

func TestCASSemantics(t *testing.T) {
	d := newTestDevice(t, 16)
	h := d.Open(1)
	h.Store(5, 10)
	if !h.CAS(5, 10, 20) {
		t.Fatal("CAS with matching old value should succeed")
	}
	if h.CAS(5, 10, 30) {
		t.Fatal("CAS with stale old value should fail")
	}
	if got := h.Load(5); got != 20 {
		t.Fatalf("after CAS: got %d, want 20", got)
	}
}

func TestRASFencingDropsWrites(t *testing.T) {
	d := newTestDevice(t, 16)
	h := d.Open(3)
	h.Store(4, 99)
	d.FenceClient(3)
	if !h.Fenced() {
		t.Fatal("handle should observe fence")
	}
	h.Store(4, 123)
	if h.CAS(4, 99, 7) {
		t.Fatal("fenced CAS must fail")
	}
	if got := h.Load(4); got != 99 {
		t.Fatalf("fenced store leaked: got %d, want 99", got)
	}
	if h.DroppedWrites() != 2 {
		t.Fatalf("dropped writes = %d, want 2", h.DroppedWrites())
	}
	// Another client is unaffected.
	h2 := d.Open(4)
	h2.Store(4, 55)
	if got := h.Load(4); got != 55 {
		t.Fatalf("unfenced client's store lost: got %d", got)
	}
	d.UnfenceClient(3)
	h.Store(4, 77)
	if got := h.Load(4); got != 77 {
		t.Fatalf("unfence did not restore writes: got %d", got)
	}
}

func TestFenceUnknownClientIsNoop(t *testing.T) {
	d := newTestDevice(t, 16)
	d.FenceClient(-1)
	d.FenceClient(0)
	d.FenceClient(1 << 20)
	if d.ClientFenced(0) || d.ClientFenced(-1) || d.ClientFenced(1<<20) {
		t.Fatal("out-of-range fence must not register")
	}
}

func TestConcurrentCASCounter(t *testing.T) {
	d := newTestDevice(t, 16)
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			h := d.Open(cid)
			for i := 0; i < perG; i++ {
				for {
					old := h.Load(1)
					if h.CAS(1, old, old+1) {
						break
					}
				}
			}
		}(g + 1)
	}
	wg.Wait()
	if got := d.Load(1); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestReadWriteBytesRoundTrip(t *testing.T) {
	d := newTestDevice(t, 64)
	h := d.Open(1)
	f := func(data []byte, off uint8) bool {
		if len(data) > 100 {
			data = data[:100]
		}
		o := int(off % 24)
		h.WriteBytes(8, o, data)
		got := make([]byte, len(data))
		h.ReadBytes(8, o, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBytesDoesNotClobberNeighbours(t *testing.T) {
	d := newTestDevice(t, 64)
	h := d.Open(1)
	h.Store(8, ^uint64(0))
	h.Store(9, ^uint64(0))
	h.Store(10, ^uint64(0))
	// Write 8 bytes starting at byte offset 4: spans words 8 and 9 partially.
	h.WriteBytes(8, 4, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	got := make([]byte, 24)
	h.ReadBytes(8, 0, got)
	want := []byte{
		0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4,
		5, 6, 7, 8, 0xff, 0xff, 0xff, 0xff,
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("neighbour bytes clobbered:\n got %v\nwant %v", got, want)
	}
}

func TestStatsAccounting(t *testing.T) {
	d := newTestDevice(t, 16)
	d.ResetStats()
	h := d.Open(1)
	h.Store(1, 1)
	h.Load(1)
	h.CAS(1, 1, 2)
	h.Flush(1)
	h.SFence()
	s := d.Stats()
	if s.Stores != 1 || s.Loads != 1 || s.CASes != 1 || s.Flushes != 1 || s.Fences != 1 {
		t.Fatalf("stats = %+v, want one of each", s)
	}
	d.ResetStats()
	if s := d.Stats(); s != (Stats{}) {
		t.Fatalf("after reset stats = %+v, want zero", s)
	}
}

func TestLineCacheHitsAndInvalidation(t *testing.T) {
	var c lineCache
	if c.touch(8) {
		t.Fatal("first touch should miss")
	}
	if !c.touch(9) {
		t.Fatal("same line should hit")
	}
	if !c.touch(15) {
		t.Fatal("word 15 shares the line starting at word 8")
	}
	if c.touch(16) {
		t.Fatal("next line should miss")
	}
	c.invalidate(8)
	if c.touch(8) {
		t.Fatal("invalidated line should miss")
	}
}

func TestLatencyModelChargesMisses(t *testing.T) {
	d, err := NewDevice(Config{Words: 1 << 14, MaxClients: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := Wrap(d, WithLatency(Latency{MissNS: 2000})).Open(1)
	// Repeated access to one line: first is a miss, the rest hit.
	t0 := time.Now()
	h.Load(8)
	firstAccess := time.Since(t0)
	t0 = time.Now()
	for i := 0; i < 100; i++ {
		h.Load(8)
	}
	perHit := time.Since(t0) / 100
	if firstAccess < 1500*time.Nanosecond {
		t.Fatalf("miss charged only %v, want ~2µs", firstAccess)
	}
	if perHit > firstAccess/2 {
		t.Fatalf("cache hits not cheaper than misses: hit %v vs miss %v", perHit, firstAccess)
	}
	// CAS invalidates the line: the next load misses again.
	h.CAS(8, h.Load(8), 1)
	t0 = time.Now()
	h.Load(8)
	if afterCAS := time.Since(t0); afterCAS < 1500*time.Nanosecond {
		t.Fatalf("post-CAS load charged only %v, want a miss", afterCAS)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	d := newTestDevice(t, 64)
	for a := Addr(1); a < 64; a++ {
		d.Store(a, a*a)
	}
	img := d.Snapshot()
	// Mutating the original must not affect the snapshot.
	d.Store(5, 999)
	d2, err := RestoreDevice(Config{MaxClients: 4}, img)
	if err != nil {
		t.Fatal(err)
	}
	for a := Addr(1); a < 64; a++ {
		if got := d2.Load(a); got != a*a {
			t.Fatalf("word %d: %d, want %d", a, got, a*a)
		}
	}
	if d2.Words() != 64 {
		t.Fatalf("restored size %d", d2.Words())
	}
}

func TestLatencyProfilesOrdering(t *testing.T) {
	if !(LatencyLocalNUMA.MissNS < LatencyRemoteNUMA.MissNS &&
		LatencyRemoteNUMA.MissNS < LatencyCXL.MissNS) {
		t.Fatal("latency profiles must order local < remote NUMA < CXL")
	}
}
