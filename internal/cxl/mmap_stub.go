//go:build !unix

package cxl

import (
	"errors"
	"os"
)

// The mmap backend needs a POSIX mmap; on other platforms the heap backend
// (and snapshot files) remain available.
var errNoMmap = errors.New("cxl: mmap pool files are not supported on this platform")

func mmapFile(f *os.File, size int) ([]byte, error) { return nil, errNoMmap }

func mmapFileReadOnly(f *os.File, size int) ([]byte, error) { return nil, errNoMmap }

func munmap(data []byte) error { return errNoMmap }

func msync(data []byte) error { return errNoMmap }
