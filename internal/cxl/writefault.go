package cxl

// Write-fault middleware: the mutating counterpart of WithAccessHook.
//
// WithAccessHook can observe (and crash at) any access but can never change
// what reaches the device — that is exactly right for fail-stop campaigns
// and exactly wrong for the messier CXL failure modes: a word corrupted in
// flight, a torn multi-word update, a CAS whose success is a lie. The
// write-fault layer puts a decision point on every mutating access:
//
//	store  WriteThrough        store v unchanged
//	       WriteMangle         store the hook's replacement value instead
//	       WriteDrop           swallow the store (the write never lands)
//	cas    WriteThrough        perform the CAS honestly
//	       WriteMangle         CAS with the hook's replacement new-value
//	       WriteDrop           report success WITHOUT touching the word
//	                           (the "stuck" word stays stale)
//	       WriteFailCAS        report failure without attempting
//
// Like WithCounting, the layer is intercepting: handles are retargeted onto
// the interface path so client traffic and management-plane traffic alike
// flow through the decision point. A nil/disarmed hook must make the layer
// behave exactly like the bare device — campaigns assert that with the
// fast-path access budgets.

// WriteFault is the hook's verdict for one mutating access.
type WriteFault uint8

// Write-fault verdicts.
const (
	// WriteThrough executes the access unchanged.
	WriteThrough WriteFault = iota
	// WriteMangle substitutes the hook's returned value for the written
	// (store) or swapped-in (CAS) value.
	WriteMangle
	// WriteDrop swallows the effect: a store never lands; a CAS reports
	// success while leaving the word untouched (success-lie).
	WriteDrop
	// WriteFailCAS makes a CAS report failure without attempting it.
	// Meaningless for stores (treated as WriteThrough).
	WriteFailCAS
)

// WriteFaultHook decides the fate of one mutating access before it executes.
// kind is OpStore or OpCAS; v is the value about to be written (the CAS
// new-value). The returned value is used only under WriteMangle. The hook
// may panic (e.g. with faultinject.Crash) to also bring the acting client
// down — a mangled store followed by a crash is a torn multi-word update.
type WriteFaultHook func(kind AccessKind, a Addr, v uint64) (uint64, WriteFault)

type writeFaultMem struct {
	passthrough
	hook WriteFaultHook
}

// WithWriteFaults stacks a write-fault decision point over the backend.
// Loads, fences and flushes pass through untouched; stores and CAS consult
// hook. Handles are retargeted so every writer — clients, recovery,
// validators — is subject to injection.
func WithWriteFaults(hook WriteFaultHook) Middleware {
	return func(m Memory) Memory {
		return &writeFaultMem{passthrough{m}, hook}
	}
}

func (w *writeFaultMem) Store(a Addr, v uint64) {
	if w.hook != nil {
		nv, f := w.hook(OpStore, a, v)
		switch f {
		case WriteMangle:
			v = nv
		case WriteDrop:
			return
		}
	}
	w.inner.Store(a, v)
}

func (w *writeFaultMem) CAS(a Addr, old, new uint64) bool {
	if w.hook != nil {
		nv, f := w.hook(OpCAS, a, new)
		switch f {
		case WriteMangle:
			new = nv
		case WriteDrop:
			return true // success-lie: the word stays stale
		case WriteFailCAS:
			return false
		}
	}
	return w.inner.CAS(a, old, new)
}

func (w *writeFaultMem) Open(cid int) *Handle {
	return w.inner.Open(cid).retarget(w)
}
