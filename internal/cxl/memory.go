package cxl

// Memory is the device abstraction every layer of the system programs
// against. The paper's central premise is that the memory device's failure
// domain is separate from its clients — the pool outlives any process that
// maps it (§2.1, Figure 1) — so the device must be a swappable boundary,
// not a concrete type. Three families implement it:
//
//   - *Device: the heap-backed simulated device (fast, in-process only).
//   - *MapDevice: an mmap'd shared file whose word array, RAS fence flags
//     and header live on disk, so a pool created by one OS process can be
//     reopened — alive, no copy — by another.
//   - middleware built with Wrap: stacking interceptors (latency model,
//     access counting, access hooks for fault campaigns) over any Memory.
//
// All word accesses are atomic and linearizable, exactly as CXL 3.0 memory
// sharing promises. Client code must not use a Memory directly: it opens a
// Handle (Open), the only path on which RAS fencing, the latency model and
// per-client access accounting apply. Direct Memory calls are the device
// management plane — pool formatting, the recovery service, validators —
// which the paper's model exempts from client fencing.
type Memory interface {
	// Words reports the pool size in 8-byte words.
	Words() int
	// Bytes reports the pool size in bytes.
	Bytes() int

	// Load atomically reads the word at a.
	Load(a Addr) uint64
	// Store atomically writes v at a, ignoring client fencing (management
	// plane: recovery and pool initialization).
	Store(a Addr, v uint64)
	// CAS atomically compares-and-swaps the word at a, ignoring fencing.
	CAS(a Addr, old, new uint64) bool

	// Fence orders preceding stores before subsequent ones. Go atomics are
	// sequentially consistent already, so backends treat this as an
	// accounting/interception point; Handle.SFence is the client-path
	// equivalent that also charges modelled latency.
	Fence()
	// Flush models a CLWB of the cache line containing a (CXL 2.0
	// persistence, paper §6.1). Like Fence it is an interception point;
	// Handle.Flush is the accounted client-path version.
	Flush(a Addr)

	// MaxClients bounds the client IDs that can be fenced or opened.
	MaxClients() int
	// FenceClient RAS-fences client cid: every subsequent store or CAS
	// issued through cid's Handle is silently dropped (paper §3.2).
	// Idempotent.
	FenceClient(cid int)
	// UnfenceClient lifts cid's RAS fence (slot reuse by a new client).
	UnfenceClient(cid int)
	// ClientFenced reports whether cid is currently fenced.
	ClientFenced(cid int) bool

	// Open creates the client access path for cid (1..MaxClients).
	Open(cid int) *Handle

	// Stats returns merged access counters: the backend's management-plane
	// accesses plus every Handle's local counters.
	Stats() Stats
	// ResetStats zeroes all access counters.
	ResetStats()

	// Snapshot copies the entire pool contents (snapshot-based tools; the
	// mmap backend makes most uses of this obsolete).
	Snapshot() []uint64

	// Close releases backend resources (unmaps files). The heap backend is
	// garbage-collected memory and Close is a no-op. Accessing a closed
	// mmap backend faults, exactly like touching powered-off memory.
	Close() error
}

// ReadBytesAt copies n bytes starting at byte offset off within the object
// at word address a into p, using atomic word loads on m. Byte order is
// little-endian, matching how a real CXL device presents memory to x86
// hosts. This is the management-plane twin of Handle.ReadBytes (no fencing,
// no latency model).
func ReadBytesAt(m Memory, a Addr, off int, p []byte) {
	i := 0
	for i < len(p) {
		byteIdx := off + i
		wordOff := byteIdx % WordBytes
		wa := a + Addr(byteIdx/WordBytes)
		w := m.Load(wa)
		n := WordBytes - wordOff
		if n > len(p)-i {
			n = len(p) - i
		}
		for k := 0; k < n; k++ {
			p[i+k] = byte(w >> (8 * (wordOff + k)))
		}
		i += n
	}
}

// WriteBytesAt stores p at byte offset off within the object at word
// address a, the management-plane twin of Handle.WriteBytes. Partial edge
// words use read-modify-write, non-atomic with respect to concurrent
// writers of the same word — exactly like real shared memory.
func WriteBytesAt(m Memory, a Addr, off int, p []byte) {
	i := 0
	for i < len(p) {
		byteIdx := off + i
		wordOff := byteIdx % WordBytes
		wa := a + Addr(byteIdx/WordBytes)
		if wordOff == 0 && len(p)-i >= WordBytes {
			var w uint64
			for k := 0; k < WordBytes; k++ {
				w |= uint64(p[i+k]) << (8 * k)
			}
			m.Store(wa, w)
			i += WordBytes
			continue
		}
		w := m.Load(wa)
		n := WordBytes - wordOff
		if n > len(p)-i {
			n = len(p) - i
		}
		for k := 0; k < n; k++ {
			shift := 8 * (wordOff + k)
			w &^= uint64(0xff) << shift
			w |= uint64(p[i+k]) << shift
		}
		m.Store(wa, w)
		i += n
	}
}
