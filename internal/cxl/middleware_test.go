package cxl

import (
	"testing"
	"time"
)

func TestWrapOrderAndBottom(t *testing.T) {
	d := newTestDevice(t, 64)
	var ctr AccessCounter
	m := Wrap(d, WithLatency(Latency{MissNS: 1}), WithCounting(&ctr))
	// Last middleware is outermost.
	if _, ok := m.(*countingMem); !ok {
		t.Fatalf("outermost layer is %T, want *countingMem", m)
	}
	if Bottom(m) != Memory(d) {
		t.Fatal("Bottom must unwrap to the backing device")
	}
	if Bottom(Memory(d)) != Memory(d) {
		t.Fatal("Bottom of a bare device is the device")
	}
	if m.Words() != 64 || m.MaxClients() != d.MaxClients() {
		t.Fatal("passthrough must preserve geometry")
	}
}

func TestWithCountingObservesEverything(t *testing.T) {
	d := newTestDevice(t, 64)
	var ctr AccessCounter
	m := Wrap(d, WithCounting(&ctr))

	// Management-plane accesses.
	m.Store(1, 7)
	if m.Load(1) != 7 {
		t.Fatal("load through counting layer")
	}
	m.CAS(1, 7, 9)
	m.Flush(1)
	m.Fence()

	// Client accesses: handles are retargeted onto the interface path.
	h := m.Open(1)
	h.Store(2, 1)
	h.Load(2)
	h.CAS(2, 1, 2)

	s := ctr.Snapshot()
	if s.Loads != 2 || s.Stores != 2 || s.CASes != 2 || s.Flushes != 1 || s.Fences != 1 {
		t.Fatalf("counter = %+v, want 2/2/2/1/1", s)
	}
	ctr.Reset()
	if s := ctr.Snapshot(); s != (Stats{}) {
		t.Fatalf("after reset = %+v", s)
	}
}

func TestWithCountingDoesNotDoubleCount(t *testing.T) {
	// The device's built-in counting counts interface-path calls itself;
	// a retargeted handle must not add its own handle-local count on top.
	d := newTestDevice(t, 64) // CountAccesses: true
	var ctr AccessCounter
	h := Wrap(d, WithCounting(&ctr)).Open(1)
	d.ResetStats()
	h.Store(3, 1)
	h.Load(3)
	s := d.Stats()
	if s.Stores != 1 || s.Loads != 1 {
		t.Fatalf("device stats = %+v, want exactly one store and one load", s)
	}
}

func TestWithCountingPreservesFencing(t *testing.T) {
	d := newTestDevice(t, 64)
	var ctr AccessCounter
	m := Wrap(d, WithCounting(&ctr))
	h := m.Open(3)
	h.Store(4, 42)
	m.FenceClient(3)
	if !h.Fenced() {
		t.Fatal("retargeted handle must observe the fence")
	}
	h.Store(4, 99)
	if h.CAS(4, 42, 99) {
		t.Fatal("fenced CAS must fail through the interface path")
	}
	if d.Load(4) != 42 {
		t.Fatalf("fenced store leaked: %d", d.Load(4))
	}
	if h.DroppedWrites() != 2 {
		t.Fatalf("dropped = %d, want 2", h.DroppedWrites())
	}
}

func TestWithLatencyIsHandleTransparent(t *testing.T) {
	d := newTestDevice(t, 1<<14)
	m := Wrap(d, WithLatency(Latency{MissNS: 2000}))
	// Management plane stays uncharged.
	t0 := time.Now()
	for i := 0; i < 64; i++ {
		m.Load(Addr(1 + i*8))
	}
	if el := time.Since(t0); el > 50*time.Microsecond {
		t.Fatalf("management-plane loads charged latency (%v)", el)
	}
	// Client path is charged.
	h := m.Open(1)
	t0 = time.Now()
	h.Load(8)
	if el := time.Since(t0); el < 1500*time.Nanosecond {
		t.Fatalf("client miss charged only %v, want ~2µs", el)
	}
	// Handle keeps the concrete fast path (no retarget).
	if h.dev == nil {
		t.Fatal("latency layer must not retarget the handle off the fast path")
	}
}

func TestWithAccessHookCarriesClientID(t *testing.T) {
	d := newTestDevice(t, 64)
	type access struct {
		cid  int
		kind AccessKind
		a    Addr
	}
	var got []access
	m := Wrap(d, WithAccessHook(func(cid int, kind AccessKind, a Addr) {
		got = append(got, access{cid, kind, a})
	}))

	m.Store(1, 5) // management plane: cid 0
	h := m.Open(7)
	h.Load(1)
	h.CAS(1, 5, 6)
	h.Flush(1)
	h.SFence()

	want := []access{
		{0, OpStore, 1},
		{7, OpLoad, 1},
		{7, OpCAS, 1},
		{7, OpFlush, 1},
		{7, OpFence, 0},
	}
	if len(got) != len(want) {
		t.Fatalf("hook fired %d times, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("access %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWithAccessHookCanCrash(t *testing.T) {
	d := newTestDevice(t, 64)
	type boom struct{}
	n := 0
	m := Wrap(d, WithAccessHook(func(cid int, kind AccessKind, a Addr) {
		n++
		if n == 3 {
			panic(boom{})
		}
	}))
	h := m.Open(1)
	func() {
		defer func() {
			if _, ok := recover().(boom); !ok {
				t.Fatal("expected the hook's panic to propagate")
			}
		}()
		for i := 0; i < 10; i++ {
			h.Store(Addr(1+i), 1)
		}
	}()
	// The crashed access must not have landed.
	if d.Load(3) != 0 {
		t.Fatal("access executed despite hook panic")
	}
	if d.Load(2) != 1 {
		t.Fatal("pre-crash accesses must have landed")
	}
}

func TestStackedMiddleware(t *testing.T) {
	d := newTestDevice(t, 1<<10)
	var ctr AccessCounter
	hooks := 0
	m := Wrap(d,
		WithAccessHook(func(int, AccessKind, Addr) { hooks++ }),
		WithCounting(&ctr),
	)
	h := m.Open(2)
	h.Store(5, 1)
	h.Load(5)
	if ctr.Snapshot().Stores != 1 || ctr.Snapshot().Loads != 1 {
		t.Fatalf("counting layer missed accesses: %+v", ctr.Snapshot())
	}
	if hooks != 2 {
		t.Fatalf("hook fired %d times, want 2", hooks)
	}
	if Bottom(m) != Memory(d) {
		t.Fatal("Bottom through two layers")
	}
}

func TestAccessKindString(t *testing.T) {
	for k, want := range map[AccessKind]string{
		OpLoad: "load", OpStore: "store", OpCAS: "cas",
		OpFlush: "flush", OpFence: "fence", AccessKind(99): "?",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
