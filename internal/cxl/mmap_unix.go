//go:build unix

package cxl

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// mmapFile maps size bytes of f read-write and shared: every process
// mapping the file sees one cache-coherent byte array — the software
// equivalent of multiple hosts mapping one CXL device.
func mmapFile(f *os.File, size int) ([]byte, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("cxl: mmap %s (%d bytes): %w", f.Name(), size, err)
	}
	return data, nil
}

// mmapFileReadOnly maps size bytes of f PROT_READ and shared: the mapping
// observes every other process's writes but the hardware (MMU) rejects any
// write through it — the software stand-in for an observer host given a
// read-only window onto the CXL device.
func mmapFileReadOnly(f *os.File, size int) ([]byte, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size,
		syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("cxl: mmap (read-only) %s (%d bytes): %w", f.Name(), size, err)
	}
	return data, nil
}

func munmap(data []byte) error {
	return syscall.Munmap(data)
}

// msync synchronously writes the mapping's dirty pages back to the file.
func msync(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafe.Pointer(&data[0])), uintptr(len(data)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return fmt.Errorf("cxl: msync: %w", errno)
	}
	return nil
}
