// Package cxl simulates a CXL-attached shared memory device.
//
// The paper's hardware platform maps one external CXL memory device into the
// physical address space of multiple compute nodes, forming a single cache
// coherency domain that supports plain loads/stores plus atomic
// compare-and-swap. This package models that device as a word-addressable
// pool backed by a []uint64. Every access goes through sync/atomic, so all
// clients (goroutines standing in for threads/processes/machines) observe a
// linearizable shared memory exactly as CXL 3.0 memory sharing promises.
//
// Addresses are 64-bit word offsets from the beginning of the pool
// (machine-independent pointers, like PMDK-style offsets). Address 0 is
// reserved as the nil pointer.
//
// The device also models two failure-related hardware features:
//
//   - RAS fencing: once a client ID is fenced (Device.FenceClient), stores
//     and CAS issued through that client's Handle are silently dropped,
//     modelling "the failed client cannot modify the shared memory pool
//     after its recovery has started" (paper §3.2).
//   - Flush/fence accounting: Handle.Flush and Handle.SFence count
//     invocations and optionally burn a configurable latency, so the
//     Figure 7 cost breakdown can be reproduced.
package cxl

import (
	"fmt"
	"sync/atomic"
)

// Addr is a machine-independent pointer: a word offset into the device.
// Addr 0 is the nil pointer.
type Addr = uint64

// WordBytes is the size of one device word.
const WordBytes = 8

// LineWords is the number of words per modelled cache line.
const LineWords = 8

// Device is a simulated CXL-attached shared memory pool.
//
// All word accesses are atomic. Concurrent use by any number of Handles is
// safe; the zero value is not usable, construct with NewDevice.
type Device struct {
	words []uint64
	// fenced[cid] is nonzero once client cid has been RAS-fenced.
	fenced []atomic.Uint32

	lat Latency

	// countAccesses enables the per-access statistics counters. Off by
	// default: a shared atomic counter on every load would serialize the
	// very accesses whose scalability the benchmarks measure.
	countAccesses bool

	flushes atomic.Uint64
	fences  atomic.Uint64
	loads   atomic.Uint64
	stores  atomic.Uint64
	cases   atomic.Uint64
}

// Config configures a Device.
type Config struct {
	// Words is the pool size in 8-byte words. Must be > 0.
	Words int
	// MaxClients bounds the client IDs that can be fenced. Must be > 0.
	MaxClients int
	// Latency optionally injects per-access latency (see Latency).
	Latency Latency
	// CountAccesses enables load/store/CAS statistics (adds a shared atomic
	// increment to every access; keep off for benchmarks).
	CountAccesses bool
}

// NewDevice creates a device of cfg.Words words, all zero.
func NewDevice(cfg Config) (*Device, error) {
	if cfg.Words <= 0 {
		return nil, fmt.Errorf("cxl: pool size must be positive, got %d words", cfg.Words)
	}
	if cfg.MaxClients <= 0 {
		return nil, fmt.Errorf("cxl: MaxClients must be positive, got %d", cfg.MaxClients)
	}
	d := &Device{
		words:         make([]uint64, cfg.Words),
		fenced:        make([]atomic.Uint32, cfg.MaxClients+1),
		lat:           cfg.Latency,
		countAccesses: cfg.CountAccesses,
	}
	return d, nil
}

// Words reports the size of the pool in words.
func (d *Device) Words() int { return len(d.words) }

// Bytes reports the size of the pool in bytes.
func (d *Device) Bytes() int { return len(d.words) * WordBytes }

// check panics on an out-of-range address. A real device would machine-check;
// in the simulation an out-of-range access is always an implementation bug,
// never a recoverable condition, so panicking is the correct response.
func (d *Device) check(a Addr) {
	if a == 0 || a >= uint64(len(d.words)) {
		panic(fmt.Sprintf("cxl: wild device access at word %#x (pool %d words)", a, len(d.words)))
	}
}

// Load atomically reads the word at a.
func (d *Device) Load(a Addr) uint64 {
	d.check(a)
	if d.countAccesses {
		d.loads.Add(1)
	}
	return atomic.LoadUint64(&d.words[a])
}

// Store atomically writes v to the word at a, ignoring fencing. It is used
// by the recovery service and by pool initialization. Client code must go
// through a Handle so RAS fencing applies.
func (d *Device) Store(a Addr, v uint64) {
	d.check(a)
	if d.countAccesses {
		d.stores.Add(1)
	}
	atomic.StoreUint64(&d.words[a], v)
}

// CAS atomically compares-and-swaps the word at a, ignoring fencing.
func (d *Device) CAS(a Addr, old, new uint64) bool {
	d.check(a)
	if d.countAccesses {
		d.cases.Add(1)
	}
	return atomic.CompareAndSwapUint64(&d.words[a], old, new)
}

// FenceClient RAS-fences client cid: all subsequent stores and CAS issued
// through a Handle opened for cid are dropped. Idempotent.
func (d *Device) FenceClient(cid int) {
	if cid <= 0 || cid >= len(d.fenced) {
		return
	}
	d.fenced[cid].Store(1)
}

// UnfenceClient lifts the RAS fence for cid (used when a recovered client
// slot is handed to a fresh client).
func (d *Device) UnfenceClient(cid int) {
	if cid <= 0 || cid >= len(d.fenced) {
		return
	}
	d.fenced[cid].Store(0)
}

// ClientFenced reports whether cid is currently fenced.
func (d *Device) ClientFenced(cid int) bool {
	if cid <= 0 || cid >= len(d.fenced) {
		return false
	}
	return d.fenced[cid].Load() != 0
}

// Snapshot copies the entire pool contents — the moral equivalent of the
// CXL device keeping its memory across compute-node reboots (it has its own
// PSU, paper §2.1/Figure 1). Use RestoreDevice to bring it back.
func (d *Device) Snapshot() []uint64 {
	out := make([]uint64, len(d.words))
	for i := range d.words {
		out[i] = atomic.LoadUint64(&d.words[i])
	}
	return out
}

// RestoreDevice creates a device initialized from a snapshot. The snapshot
// length fixes the pool size; cfg.Words is ignored.
func RestoreDevice(cfg Config, snapshot []uint64) (*Device, error) {
	cfg.Words = len(snapshot)
	d, err := NewDevice(cfg)
	if err != nil {
		return nil, err
	}
	copy(d.words, snapshot)
	return d, nil
}

// Stats is a snapshot of device access counters.
type Stats struct {
	Loads, Stores, CASes, Flushes, Fences uint64
}

// Stats returns a snapshot of the access counters.
func (d *Device) Stats() Stats {
	return Stats{
		Loads:   d.loads.Load(),
		Stores:  d.stores.Load(),
		CASes:   d.cases.Load(),
		Flushes: d.flushes.Load(),
		Fences:  d.fences.Load(),
	}
}

// ResetStats zeroes the access counters.
func (d *Device) ResetStats() {
	d.loads.Store(0)
	d.stores.Store(0)
	d.cases.Store(0)
	d.flushes.Store(0)
	d.fences.Store(0)
}
