// Package cxl simulates a CXL-attached shared memory device.
//
// The paper's hardware platform maps one external CXL memory device into the
// physical address space of multiple compute nodes, forming a single cache
// coherency domain that supports plain loads/stores plus atomic
// compare-and-swap. This package models that device behind the Memory
// interface as a word-addressable pool. Every access goes through
// sync/atomic, so all clients (goroutines standing in for threads/processes/
// machines) observe a linearizable shared memory exactly as CXL 3.0 memory
// sharing promises. Two backends implement Memory — the heap-backed Device
// here and the mmap'd-file MapDevice — plus arbitrary middleware stacks
// built with Wrap.
//
// Addresses are 64-bit word offsets from the beginning of the pool
// (machine-independent pointers, like PMDK-style offsets). Address 0 is
// reserved as the nil pointer.
//
// The device also models two failure-related hardware features:
//
//   - RAS fencing: once a client ID is fenced (Memory.FenceClient), stores
//     and CAS issued through that client's Handle are silently dropped,
//     modelling "the failed client cannot modify the shared memory pool
//     after its recovery has started" (paper §3.2).
//   - Flush/fence accounting: Handle.Flush and Handle.SFence count
//     invocations and optionally burn a configurable latency, so the
//     Figure 7 cost breakdown can be reproduced.
package cxl

import (
	"fmt"
	"sync/atomic"
)

// Addr is a machine-independent pointer: a word offset into the device.
// Addr 0 is the nil pointer.
type Addr = uint64

// WordBytes is the size of one device word.
const WordBytes = 8

// LineWords is the number of words per modelled cache line.
const LineWords = 8

// counters is one access-counter block. The device keeps one for its own
// management-plane accesses and one per client ID for Handle accesses, so
// concurrent clients never share a counter cache line: enabling access
// counting must not serialize the very accesses whose scalability the
// benchmarks measure. Stats merges all blocks on read.
type counters struct {
	loads, stores, cases, flushes, fences atomic.Uint64
	_                                     [24]byte // pad to a cache line
}

func (c *counters) reset() {
	c.loads.Store(0)
	c.stores.Store(0)
	c.cases.Store(0)
	c.flushes.Store(0)
	c.fences.Store(0)
}

// Device is the heap-backed simulated CXL shared memory pool. MapDevice
// embeds it to reuse the entire data path over an mmap'd file.
//
// All word accesses are atomic. Concurrent use by any number of Handles is
// safe; the zero value is not usable, construct with NewDevice.
type Device struct {
	words []uint64
	// fenced[cid] is nonzero once client cid has been RAS-fenced. For a
	// MapDevice this slice views the shared file, so a recovery service in
	// another process can fence this process's clients.
	fenced []atomic.Uint32

	// countAccesses enables the per-access load/store/CAS counters. Off by
	// default; when on, counting is handle-local (see counters).
	countAccesses bool

	// devCtr counts management-plane accesses (direct Memory calls: pool
	// formatting, recovery, validators).
	devCtr counters
	// hctr[cid] is the counter block Handles opened for cid use. Handle
	// incarnations for the same client ID share a block, so totals stay
	// monotonic across slot reuse.
	hctr []counters
}

// Device implements Memory.
var _ Memory = (*Device)(nil)

// Config configures a Device.
type Config struct {
	// Words is the pool size in 8-byte words. Must be > 0.
	Words int
	// MaxClients bounds the client IDs that can be fenced. Must be > 0.
	MaxClients int
	// CountAccesses enables load/store/CAS statistics. Counting is
	// handle-local and merged on read, so it perturbs concurrent
	// benchmarks far less than a shared counter would; still, keep it off
	// for pure throughput runs.
	CountAccesses bool
}

// NewDevice creates a heap-backed device of cfg.Words words, all zero.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &Device{}
	d.init(make([]uint64, cfg.Words), make([]atomic.Uint32, cfg.MaxClients+1), cfg.CountAccesses)
	return d, nil
}

func (cfg Config) validate() error {
	if cfg.Words <= 0 {
		return fmt.Errorf("cxl: pool size must be positive, got %d words", cfg.Words)
	}
	if cfg.MaxClients <= 0 {
		return fmt.Errorf("cxl: MaxClients must be positive, got %d", cfg.MaxClients)
	}
	return nil
}

// init wires the device core around the given storage. words and fenced may
// live on the Go heap (NewDevice) or inside an mmap'd file (MapDevice).
func (d *Device) init(words []uint64, fenced []atomic.Uint32, countAccesses bool) {
	d.words = words
	d.fenced = fenced
	d.countAccesses = countAccesses
	d.hctr = make([]counters, len(fenced))
}

// Words reports the size of the pool in words.
func (d *Device) Words() int { return len(d.words) }

// Bytes reports the size of the pool in bytes.
func (d *Device) Bytes() int { return len(d.words) * WordBytes }

// MaxClients reports the highest client ID that can be fenced or opened.
func (d *Device) MaxClients() int { return len(d.fenced) - 1 }

// SetAccessCounting switches load/store/CAS counting on or off. Call before
// the device is shared (handles snapshot the flag at Open); intended for
// instrumenting a freshly opened MapDevice.
func (d *Device) SetAccessCounting(on bool) { d.countAccesses = on }

// check panics on an out-of-range address. A real device would machine-check;
// in the simulation an out-of-range access is always an implementation bug,
// never a recoverable condition, so panicking is the correct response.
func (d *Device) check(a Addr) {
	if a == 0 || a >= uint64(len(d.words)) {
		panic(fmt.Sprintf("cxl: wild device access at word %#x (pool %d words)", a, len(d.words)))
	}
}

// Load atomically reads the word at a.
func (d *Device) Load(a Addr) uint64 {
	d.check(a)
	if d.countAccesses {
		d.devCtr.loads.Add(1)
	}
	return atomic.LoadUint64(&d.words[a])
}

// Store atomically writes v to the word at a, ignoring fencing. It is used
// by the recovery service and by pool initialization. Client code must go
// through a Handle so RAS fencing applies.
func (d *Device) Store(a Addr, v uint64) {
	d.check(a)
	if d.countAccesses {
		d.devCtr.stores.Add(1)
	}
	atomic.StoreUint64(&d.words[a], v)
}

// CAS atomically compares-and-swaps the word at a, ignoring fencing.
func (d *Device) CAS(a Addr, old, new uint64) bool {
	d.check(a)
	if d.countAccesses {
		d.devCtr.cases.Add(1)
	}
	return atomic.CompareAndSwapUint64(&d.words[a], old, new)
}

// Fence is a management-plane ordering point. Go atomics are sequentially
// consistent, so nothing to do; Handle.SFence carries the accounting.
func (d *Device) Fence() {}

// Flush is a management-plane CLWB point; Handle.Flush carries the
// accounting and latency.
func (d *Device) Flush(a Addr) {}

// FenceClient RAS-fences client cid: all subsequent stores and CAS issued
// through a Handle opened for cid are dropped. Idempotent.
func (d *Device) FenceClient(cid int) {
	if cid <= 0 || cid >= len(d.fenced) {
		return
	}
	d.fenced[cid].Store(1)
}

// UnfenceClient lifts the RAS fence for cid (used when a recovered client
// slot is handed to a fresh client).
func (d *Device) UnfenceClient(cid int) {
	if cid <= 0 || cid >= len(d.fenced) {
		return
	}
	d.fenced[cid].Store(0)
}

// ClientFenced reports whether cid is currently fenced.
func (d *Device) ClientFenced(cid int) bool {
	if cid <= 0 || cid >= len(d.fenced) {
		return false
	}
	return d.fenced[cid].Load() != 0
}

// Close releases backend resources: nothing, for the heap backend.
func (d *Device) Close() error { return nil }

// Snapshot copies the entire pool contents — the moral equivalent of the
// CXL device keeping its memory across compute-node reboots (it has its own
// PSU, paper §2.1/Figure 1). Use RestoreDevice to bring it back, or prefer
// MapDevice, which keeps the pool alive in a file with no copy at all.
func (d *Device) Snapshot() []uint64 {
	out := make([]uint64, len(d.words))
	for i := range d.words {
		out[i] = atomic.LoadUint64(&d.words[i])
	}
	return out
}

// RestoreDevice creates a heap device initialized from a snapshot. The
// snapshot length fixes the pool size; cfg.Words is ignored.
func RestoreDevice(cfg Config, snapshot []uint64) (*Device, error) {
	cfg.Words = len(snapshot)
	d, err := NewDevice(cfg)
	if err != nil {
		return nil, err
	}
	copy(d.words, snapshot)
	return d, nil
}

// Stats is a snapshot of device access counters.
type Stats struct {
	Loads, Stores, CASes, Flushes, Fences uint64
}

// Stats merges the management-plane counters and every client's handle
// counters into one snapshot.
func (d *Device) Stats() Stats {
	s := Stats{
		Loads:   d.devCtr.loads.Load(),
		Stores:  d.devCtr.stores.Load(),
		CASes:   d.devCtr.cases.Load(),
		Flushes: d.devCtr.flushes.Load(),
		Fences:  d.devCtr.fences.Load(),
	}
	for i := range d.hctr {
		c := &d.hctr[i]
		s.Loads += c.loads.Load()
		s.Stores += c.stores.Load()
		s.CASes += c.cases.Load()
		s.Flushes += c.flushes.Load()
		s.Fences += c.fences.Load()
	}
	return s
}

// ResetStats zeroes all access counters, including every handle's.
func (d *Device) ResetStats() {
	d.devCtr.reset()
	for i := range d.hctr {
		d.hctr[i].reset()
	}
}
