package cxl

import "fmt"

// ReadOnlyDevice wraps a Memory whose storage must not be mutated through
// this mapping (an observer's PROT_READ view of a live pool file). Loads,
// fence queries, stats and snapshots pass through; every mutating
// operation panics with a message naming the operation, because a tool
// that attached read-only and then tries to write is always a bug — and
// better caught here, by name, than as a SIGSEGV from the MMU.
type ReadOnlyDevice struct {
	Memory
}

// ReadOnlyDevice implements Memory.
var _ Memory = (*ReadOnlyDevice)(nil)

// Unwrap exposes the underlying mapping (Bottom, backend identification).
func (r *ReadOnlyDevice) Unwrap() Memory { return r.Memory }

func (r *ReadOnlyDevice) deny(op string) {
	panic(fmt.Sprintf("cxl: %s on a read-only pool mapping (attached with OpenMapDeviceReadOnly; reopen read-write to mutate)", op))
}

// Store panics: the mapping is read-only.
func (r *ReadOnlyDevice) Store(a Addr, v uint64) { r.deny(fmt.Sprintf("Store(%#x)", a)) }

// CAS panics: the mapping is read-only.
func (r *ReadOnlyDevice) CAS(a Addr, old, new uint64) bool {
	r.deny(fmt.Sprintf("CAS(%#x)", a))
	return false
}

// FenceClient panics: fence flags live in the mapped file.
func (r *ReadOnlyDevice) FenceClient(cid int) { r.deny("FenceClient") }

// UnfenceClient panics: fence flags live in the mapped file.
func (r *ReadOnlyDevice) UnfenceClient(cid int) { r.deny("UnfenceClient") }

// Open panics: a Handle is a write path; observers read the pool directly.
func (r *ReadOnlyDevice) Open(cid int) *Handle {
	r.deny("Open")
	return nil
}
