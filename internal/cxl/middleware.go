package cxl

import "sync/atomic"

// Middleware is a composable Memory interceptor. Wrap stacks middleware
// over a backend, re-homing what used to be baked-in device internals —
// the Table 1 latency model, access counting, crash-point hooks for fault
// campaigns — as configuration:
//
//	mem := cxl.Wrap(dev,
//	    cxl.WithLatency(cxl.LatencyCXL),
//	    cxl.WithCounting(&ctr),
//	    cxl.WithAccessHook(hook))
//
// Two kinds of layers exist. Handle-transparent layers (WithLatency)
// configure the client path at Open time and keep the devirtualized
// concrete fast path to the bottom device. Intercepting layers
// (WithCounting, WithAccessHook at the device plane) retarget handles onto
// the interface path so they observe every access, including the
// management-plane accesses of recovery and validators.
type Middleware func(Memory) Memory

// Wrap applies middleware to m innermost-first: the last element of mws
// becomes the outermost layer.
func Wrap(m Memory, mws ...Middleware) Memory {
	for _, mw := range mws {
		m = mw(m)
	}
	return m
}

// Unwrapper is implemented by middleware layers; Bottom uses it to find the
// backing device.
type Unwrapper interface {
	Unwrap() Memory
}

// Bottom walks the middleware stack to the backing Memory (the heap Device
// or MapDevice at the bottom).
func Bottom(m Memory) Memory {
	for {
		u, ok := m.(Unwrapper)
		if !ok {
			return m
		}
		m = u.Unwrap()
	}
}

// passthrough delegates the full Memory surface to an inner layer;
// middleware embeds it and overrides what it intercepts.
type passthrough struct {
	inner Memory
}

func (p *passthrough) Words() int             { return p.inner.Words() }
func (p *passthrough) Bytes() int             { return p.inner.Bytes() }
func (p *passthrough) Load(a Addr) uint64     { return p.inner.Load(a) }
func (p *passthrough) Store(a Addr, v uint64) { p.inner.Store(a, v) }
func (p *passthrough) CAS(a Addr, old, new uint64) bool {
	return p.inner.CAS(a, old, new)
}
func (p *passthrough) Fence()                    { p.inner.Fence() }
func (p *passthrough) Flush(a Addr)              { p.inner.Flush(a) }
func (p *passthrough) MaxClients() int           { return p.inner.MaxClients() }
func (p *passthrough) FenceClient(cid int)       { p.inner.FenceClient(cid) }
func (p *passthrough) UnfenceClient(cid int)     { p.inner.UnfenceClient(cid) }
func (p *passthrough) ClientFenced(cid int) bool { return p.inner.ClientFenced(cid) }
func (p *passthrough) Open(cid int) *Handle      { return p.inner.Open(cid) }
func (p *passthrough) Stats() Stats              { return p.inner.Stats() }
func (p *passthrough) ResetStats()               { p.inner.ResetStats() }
func (p *passthrough) Snapshot() []uint64        { return p.inner.Snapshot() }
func (p *passthrough) Close() error              { return p.inner.Close() }
func (p *passthrough) Unwrap() Memory            { return p.inner }

// --- latency middleware ---

// latencyMem carries a Latency profile for the client path. It is
// handle-transparent: handles opened through it keep the concrete fast
// path, because the latency model has always charged only client (Handle)
// accesses — the management plane (recovery service, validators) is exempt,
// matching real hardware where latency lives in the client's interconnect
// path, not in the passive device.
type latencyMem struct {
	passthrough
	lat Latency
}

// WithLatency injects the Table 1 latency model into every Handle opened
// through the returned layer. See Latency for the model.
func WithLatency(lat Latency) Middleware {
	return func(m Memory) Memory {
		return &latencyMem{passthrough{m}, lat}
	}
}

func (l *latencyMem) Open(cid int) *Handle {
	return l.inner.Open(cid).setLatency(l.lat)
}

// LatencyProfile exposes the configured profile (tests, tools).
func (l *latencyMem) LatencyProfile() Latency { return l.lat }

// --- counting middleware ---

// AccessCounter aggregates every access flowing through a WithCounting
// layer. Unlike the backend's built-in handle-local counting, one counter
// observes the whole stack — client and management plane alike — at the
// cost of shared atomics; use it for campaigns and tools, not for
// fast-path benchmarks.
type AccessCounter struct {
	Loads, Stores, CASes, Flushes, Fences atomic.Uint64
}

// Snapshot returns the counter values as a Stats.
func (c *AccessCounter) Snapshot() Stats {
	return Stats{
		Loads:   c.Loads.Load(),
		Stores:  c.Stores.Load(),
		CASes:   c.CASes.Load(),
		Flushes: c.Flushes.Load(),
		Fences:  c.Fences.Load(),
	}
}

// Reset zeroes the counter.
func (c *AccessCounter) Reset() {
	c.Loads.Store(0)
	c.Stores.Store(0)
	c.CASes.Store(0)
	c.Flushes.Store(0)
	c.Fences.Store(0)
}

type countingMem struct {
	passthrough
	ctr *AccessCounter
}

// WithCounting counts every access through the layer into ctr. Handles are
// retargeted onto the interface path so client accesses are observed too.
func WithCounting(ctr *AccessCounter) Middleware {
	return func(m Memory) Memory {
		return &countingMem{passthrough{m}, ctr}
	}
}

func (c *countingMem) Load(a Addr) uint64 {
	c.ctr.Loads.Add(1)
	return c.inner.Load(a)
}

func (c *countingMem) Store(a Addr, v uint64) {
	c.ctr.Stores.Add(1)
	c.inner.Store(a, v)
}

func (c *countingMem) CAS(a Addr, old, new uint64) bool {
	c.ctr.CASes.Add(1)
	return c.inner.CAS(a, old, new)
}

func (c *countingMem) Fence() {
	c.ctr.Fences.Add(1)
	c.inner.Fence()
}

func (c *countingMem) Flush(a Addr) {
	c.ctr.Flushes.Add(1)
	c.inner.Flush(a)
}

func (c *countingMem) Open(cid int) *Handle {
	return c.inner.Open(cid).retarget(c)
}

// --- access-hook middleware ---

// AccessKind distinguishes the operations an AccessHook observes.
type AccessKind uint8

// Hooked operations.
const (
	OpLoad AccessKind = iota
	OpStore
	OpCAS
	OpFlush
	OpFence
)

func (k AccessKind) String() string {
	switch k {
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpCAS:
		return "cas"
	case OpFlush:
		return "flush"
	case OpFence:
		return "fence"
	}
	return "?"
}

// AccessHook observes one access before it executes. cid is the client the
// access is issued for, or 0 for management-plane accesses. A hook may
// panic (e.g. with faultinject.Crash) to bring down the current client at
// an exact device-access boundary — the access-granular generalization of
// the §6.2.2 crash points, as stack configuration instead of code edits.
type AccessHook func(cid int, kind AccessKind, a Addr)

type hookMem struct {
	passthrough
	hook AccessHook
}

// WithAccessHook invokes hook before every access through the layer:
// client accesses carry the issuing client's ID (hooked on the Handle),
// management-plane accesses carry cid 0. Stack it outside retargeting
// layers (WithCounting) to keep client IDs — a hook layer below one still
// observes every access, but at the device plane, as cid 0.
func WithAccessHook(hook AccessHook) Middleware {
	return func(m Memory) Memory {
		return &hookMem{passthrough{m}, hook}
	}
}

func (hm *hookMem) Load(a Addr) uint64 {
	hm.hook(0, OpLoad, a)
	return hm.inner.Load(a)
}

func (hm *hookMem) Store(a Addr, v uint64) {
	hm.hook(0, OpStore, a)
	hm.inner.Store(a, v)
}

func (hm *hookMem) CAS(a Addr, old, new uint64) bool {
	hm.hook(0, OpCAS, a)
	return hm.inner.CAS(a, old, new)
}

func (hm *hookMem) Fence() {
	hm.hook(0, OpFence, 0)
	hm.inner.Fence()
}

func (hm *hookMem) Flush(a Addr) {
	hm.hook(0, OpFlush, a)
	hm.inner.Flush(a)
}

func (hm *hookMem) Open(cid int) *Handle {
	// Hook at the handle (carries the client ID, keeps the concrete data
	// path underneath) instead of retargeting: the handle invokes the hook
	// itself, so the device-plane interception above never double-fires
	// for client accesses.
	return hm.inner.Open(cid).setHook(hm.hook)
}
