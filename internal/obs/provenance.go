package obs

import (
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// Provenance stamps an exported metrics file with where its numbers came
// from: the tool and build that produced them, the device backend, and the
// pool geometry they were measured on. Geometry fields are filled by the
// caller (obs cannot import layout); zero values are omitted for tools
// that run many geometries in one process.
type Provenance struct {
	Tool    string `json:"tool"`
	Time    string `json:"time"`
	Git     string `json:"git,omitempty"`
	Go      string `json:"go"`
	OS      string `json:"os"`
	Arch    string `json:"arch"`
	Backend string `json:"backend,omitempty"`

	LayoutVersion uint64 `json:"layout_version,omitempty"`
	MaxClients    int    `json:"max_clients,omitempty"`
	NumSegments   int    `json:"num_segments,omitempty"`
	SegmentWords  uint64 `json:"segment_words,omitempty"`
	PageWords     uint64 `json:"page_words,omitempty"`
	MaxQueues     int    `json:"max_queues,omitempty"`
}

// CollectProvenance fills the build/environment fields. backend may be
// empty (the tool's default); geometry fields are left for the caller.
func CollectProvenance(tool, backend string) *Provenance {
	return &Provenance{
		Tool:    tool,
		Time:    time.Now().UTC().Format(time.RFC3339),
		Git:     gitDescribe(),
		Go:      runtime.Version(),
		OS:      runtime.GOOS,
		Arch:    runtime.GOARCH,
		Backend: backend,
	}
}

// gitDescribe identifies the source revision: the build-info VCS stamp for
// installed binaries, falling back to asking git itself for `go run` builds
// (whose build info carries no VCS settings). Best-effort — an empty string
// means "unknown", never an error.
func gitDescribe() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			return rev + dirty
		}
	}
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
