package obs

import (
	"fmt"
	"sync"
	"time"
)

// EventType classifies one recovery lifecycle event.
type EventType uint8

// Recovery lifecycle events (paper §3.2, §5.3): the runtime record of the
// correctness story — who was fenced and why, which segments were marked
// POTENTIAL_LEAKING, what the segment-local scans found, and which
// interrupted transactions recovery replayed via Conditions 1/2.
const (
	EvClientFenced     EventType = iota + 1 // client RAS-fenced; A = FenceReason
	EvRecoveryStarted                       // RecoverClient began for Client
	EvRecoveryFinished                      // RecoverClient done; A = blocks reclaimed, B = roots swept
	EvSegmentFlagged                        // Segment newly marked POTENTIAL_LEAKING
	EvScanStarted                           // segment-local scan of Segment began
	EvScanFinished                          // scan done; A = reclaimed, B = relinked
	EvRedoReplayed                          // interrupted txn replayed; A = redo op, B = deciding condition (1/2)
	EvRecoveryFailed                        // RecoverClient errored; A = failed attempts so far for Client
	EvRepairApplied                         // fsck repaired the pool; A = issues found, B = actions applied
	EvRepairFailed                          // fsck/maintenance failed; A = failed attempts, Segment set for scan duty
)

var eventNames = map[EventType]string{
	EvClientFenced:     "client_fenced",
	EvRecoveryStarted:  "recovery_started",
	EvRecoveryFinished: "recovery_finished",
	EvSegmentFlagged:   "segment_flagged_leaking",
	EvScanStarted:      "scan_started",
	EvScanFinished:     "scan_finished",
	EvRedoReplayed:     "redo_replayed",
	EvRecoveryFailed:   "recovery_failed",
	EvRepairApplied:    "repair_applied",
	EvRepairFailed:     "repair_failed",
}

// String returns the event type's stable export name.
func (t EventType) String() string {
	if n, ok := eventNames[t]; ok {
		return n
	}
	return fmt.Sprintf("event_%d", uint8(t))
}

// MarshalJSON exports the type by name.
func (t EventType) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", t.String())), nil
}

// FenceReason says why a client was fenced (carried in EvClientFenced.A).
type FenceReason uint8

// Fence reasons.
const (
	FenceUnknown   FenceReason = iota
	FenceExplicit              // Pool.MarkClientDead / Pool.Recover / tests
	FenceClose                 // the client called Close itself
	FenceHeartbeat             // the monitor saw its heartbeat stall
)

// String names the reason.
func (r FenceReason) String() string {
	switch r {
	case FenceExplicit:
		return "explicit"
	case FenceClose:
		return "close"
	case FenceHeartbeat:
		return "heartbeat-timeout"
	}
	return "unknown"
}

// Event is one traced recovery lifecycle event. A and B carry per-type
// detail values (see the EventType constants).
type Event struct {
	Seq     uint64    `json:"seq"`
	Time    time.Time `json:"time"`
	Type    EventType `json:"type"`
	Client  int       `json:"client,omitempty"`
	Segment int       `json:"segment,omitempty"`
	A       uint64    `json:"a,omitempty"`
	B       uint64    `json:"b,omitempty"`
}

// String renders the event for humans.
func (e Event) String() string {
	switch e.Type {
	case EvClientFenced:
		return fmt.Sprintf("#%d %s client=%d reason=%s", e.Seq, e.Type, e.Client, FenceReason(e.A))
	case EvRecoveryFinished:
		return fmt.Sprintf("#%d %s client=%d reclaimed=%d roots_swept=%d", e.Seq, e.Type, e.Client, e.A, e.B)
	case EvScanFinished:
		return fmt.Sprintf("#%d %s seg=%d reclaimed=%d relinked=%d", e.Seq, e.Type, e.Segment, e.A, e.B)
	case EvRedoReplayed:
		return fmt.Sprintf("#%d %s client=%d op=%d condition=%d", e.Seq, e.Type, e.Client, e.A, e.B)
	case EvSegmentFlagged, EvScanStarted:
		return fmt.Sprintf("#%d %s seg=%d client=%d", e.Seq, e.Type, e.Segment, e.Client)
	}
	return fmt.Sprintf("#%d %s client=%d seg=%d", e.Seq, e.Type, e.Client, e.Segment)
}

// Tracer is a bounded ring buffer of Events. Recording never allocates and
// never grows the buffer; old events are overwritten. All methods are
// nil-safe and goroutine-safe (events are rare — a mutex is cheaper than
// cleverness here).
type Tracer struct {
	mu   sync.Mutex
	buf  []Event
	seq  uint64 // next sequence number == total events ever recorded
	next int    // next write position
}

// NewTracer creates a tracer keeping the most recent capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Record appends an event, stamping its sequence number and (if unset) its
// time.
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	t.mu.Lock()
	e.Seq = t.seq
	t.seq++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
	}
	t.next++
	if t.next == cap(t.buf) {
		t.next = 0
	}
	t.mu.Unlock()
}

// Events returns a copy of the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		out = append(out, t.buf...)
		return out
	}
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Total reports how many events have ever been recorded (including
// overwritten ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}
