package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Metrics bundles one pool's registry and tracer.
type Metrics struct {
	reg *Registry
	trc *Tracer

	mu   sync.Mutex
	sink EventSink
}

// EventSink receives every traced event after it enters the in-heap ring.
// shm.Pool installs one that mirrors recovery-lifecycle events into the
// pool's crash-surviving telemetry ring.
type EventSink func(Event)

// New creates a Metrics with nshards counter shards and a trace ring of
// traceCap events.
func New(nshards, traceCap int) *Metrics {
	return &Metrics{reg: NewRegistry(nshards), trc: NewTracer(traceCap)}
}

// Shard returns counter shard i (0 = pool shard, 1.. = per-client).
func (m *Metrics) Shard(i int) *Shard {
	if m == nil {
		return nil
	}
	return m.reg.Shard(i)
}

// Tracer returns the event tracer.
func (m *Metrics) Tracer() *Tracer {
	if m == nil {
		return nil
	}
	return m.trc
}

// SetEventSink installs (or, with nil, removes) the event mirror.
func (m *Metrics) SetEventSink(fn EventSink) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.sink = fn
	m.mu.Unlock()
}

// Trace records one lifecycle event.
func (m *Metrics) Trace(e Event) {
	if m == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	m.trc.Record(e)
	m.mu.Lock()
	sink := m.sink
	m.mu.Unlock()
	if sink != nil {
		sink(e)
	}
}

// Snapshot aggregates the registry into an exportable snapshot.
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	return snapshotOf(m.reg)
}

// HistogramSnapshot is one aggregated histogram. Buckets[i] counts
// observations below BucketUpper(i) and at or above BucketUpper(i-1);
// quantile bounds are bucket upper bounds (so they overestimate by at most
// 2x, the log2 bucket width).
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Buckets []uint64 `json:"buckets,omitempty"`
	P50NS   uint64   `json:"p50_ns,omitempty"`
	P99NS   uint64   `json:"p99_ns,omitempty"`
	MaxNS   uint64   `json:"max_ns,omitempty"`
}

// Quantile returns the upper bound of the bucket holding quantile q (0..1).
func (h HistogramSnapshot) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	want := uint64(q * float64(h.Count))
	if want >= h.Count {
		want = h.Count - 1
	}
	var seen uint64
	for i, c := range h.Buckets {
		seen += c
		if seen > want {
			return BucketUpper(i)
		}
	}
	return BucketUpper(len(h.Buckets) - 1)
}

// Snapshot is a point-in-time aggregate of every counter and histogram.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

func snapshotOf(r *Registry) Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64, NumCounters),
		Histograms: make(map[string]HistogramSnapshot, NumHistos),
	}
	ctrs := r.Counters()
	for c := Counter(0); c < NumCounters; c++ {
		s.Counters[c.Name()] = ctrs[c]
	}
	for h := Histo(0); h < NumHistos; h++ {
		s.Histograms[h.Name()] = finishHistogram(r.Histogram(h))
	}
	return s
}

// MakeHistogramSnapshot finishes a raw bucket vector into an exportable
// histogram (count, quantiles) — for readers that obtain bucket vectors
// from outside a Registry, e.g. the shared telemetry region.
func MakeHistogramSnapshot(buckets [HistBuckets]uint64) HistogramSnapshot {
	return finishHistogram(buckets)
}

func finishHistogram(buckets [HistBuckets]uint64) HistogramSnapshot {
	var hs HistogramSnapshot
	for i, c := range buckets {
		hs.Count += c
		if c > 0 {
			hs.MaxNS = BucketUpper(i)
		}
	}
	if hs.Count == 0 {
		return hs
	}
	hs.Buckets = append(hs.Buckets, buckets[:]...)
	hs.P50NS = hs.Quantile(0.50)
	hs.P99NS = hs.Quantile(0.99)
	return hs
}

// Sub returns the delta snapshot s - prev (counter-wise and bucket-wise),
// for reporting what one experiment contributed on top of a running total.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		d := v - prev.Counters[k]
		if d > v { // underflow: prev had more (disjoint snapshots); clamp
			d = 0
		}
		out.Counters[k] = d
	}
	for k, h := range s.Histograms {
		p := prev.Histograms[k]
		var dh HistogramSnapshot
		var buckets [HistBuckets]uint64
		for i := range h.Buckets {
			v := h.Buckets[i]
			if i < len(p.Buckets) {
				if d := v - p.Buckets[i]; d <= v {
					v = d
				} else {
					v = 0
				}
			}
			if i < HistBuckets {
				buckets[i] = v
			}
		}
		dh = finishHistogram(buckets)
		out.Histograms[k] = dh
	}
	return out
}

// WriteSummary renders the snapshot as a human-readable table: non-zero
// counters in declaration order, then histogram quantiles.
func (s Snapshot) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "%-26s %12s\n", "counter", "value")
	fmt.Fprintf(w, "%s\n", "---------------------------------------")
	for c := Counter(0); c < NumCounters; c++ {
		if v := s.Counters[c.Name()]; v != 0 {
			fmt.Fprintf(w, "%-26s %12d\n", c.Name(), v)
		}
	}
	for h := Histo(0); h < NumHistos; h++ {
		hs, ok := s.Histograms[h.Name()]
		if !ok || hs.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "%-26s count=%d p50<%dns p99<%dns max<%dns\n",
			h.Name(), hs.Count, hs.P50NS, hs.P99NS, hs.MaxNS)
	}
}

// MarshalIndentJSON renders the snapshot (plus optional events) as indented
// JSON, the exporter's file format.
func MarshalIndentJSON(s Snapshot, events []Event) ([]byte, error) {
	return MarshalReportJSON(s, events, nil)
}

// MarshalReportJSON is MarshalIndentJSON with a provenance stanza, so
// BENCH_*/FAULTSIM_* files carry enough context (build, backend, geometry)
// to be compared across runs and machines.
func MarshalReportJSON(s Snapshot, events []Event, prov *Provenance) ([]byte, error) {
	return json.MarshalIndent(struct {
		Provenance *Provenance `json:"provenance,omitempty"`
		Snapshot
		Events []Event `json:"events,omitempty"`
	}{prov, s, events}, "", "  ")
}

// --- process-global aggregation ---
//
// Benchmarks and the fault-injection campaign construct pools deep inside
// experiment harnesses, so the exporter binaries cannot reach each pool's
// Metrics directly. When global collection is enabled (exporters opt in
// before running), every Metrics created by shm.NewPool registers itself
// here and GlobalSnapshot aggregates across all of them. Off by default so
// ordinary tests don't accumulate registries.

var global struct {
	mu      sync.Mutex
	enabled bool
	ms      []*Metrics
}

// EnableGlobal turns on process-global metrics collection.
func EnableGlobal() {
	global.mu.Lock()
	global.enabled = true
	global.mu.Unlock()
}

// Register adds m to the global collection set (no-op unless enabled).
func Register(m *Metrics) {
	if m == nil {
		return
	}
	global.mu.Lock()
	if global.enabled {
		global.ms = append(global.ms, m)
	}
	global.mu.Unlock()
}

// GlobalSnapshot sums every registered pool's counters and histograms.
func GlobalSnapshot() Snapshot {
	global.mu.Lock()
	ms := append([]*Metrics(nil), global.ms...)
	global.mu.Unlock()

	var ctrs [NumCounters]uint64
	var hists [NumHistos][HistBuckets]uint64
	for _, m := range ms {
		c := m.reg.Counters()
		for i := Counter(0); i < NumCounters; i++ {
			ctrs[i] += c[i]
		}
		for h := Histo(0); h < NumHistos; h++ {
			b := m.reg.Histogram(h)
			for i := 0; i < HistBuckets; i++ {
				hists[h][i] += b[i]
			}
		}
	}
	s := Snapshot{
		Counters:   make(map[string]uint64, NumCounters),
		Histograms: make(map[string]HistogramSnapshot, NumHistos),
	}
	for c := Counter(0); c < NumCounters; c++ {
		s.Counters[c.Name()] = ctrs[c]
	}
	for h := Histo(0); h < NumHistos; h++ {
		s.Histograms[h.Name()] = finishHistogram(hists[h])
	}
	return s
}

// GlobalEvents returns every registered pool's retained trace events,
// ordered by time.
func GlobalEvents() []Event {
	global.mu.Lock()
	ms := append([]*Metrics(nil), global.ms...)
	global.mu.Unlock()
	var out []Event
	for _, m := range ms {
		out = append(out, m.trc.Events()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}
