// Package obs is the pool-wide observability layer: a zero-allocation,
// per-client-sharded metrics core (padded atomic counters plus log-scaled
// latency histograms, aggregated on read) and a bounded ring-buffer tracer
// for recovery lifecycle events.
//
// Design constraints, in order:
//
//   - The allocator / queue / refcount fast paths may only ever touch their
//     own client's shard, so shards never share cache lines. A single-writer
//     shard owner can go further and skip atomics entirely: accumulate in
//     plain local memory and publish running totals with SetCounters
//     periodically (what shm.Client does).
//   - Reading is done by aggregation: Snapshot sums every shard, so the hot
//     paths pay nothing for the existence of readers.
//   - Recovery lifecycle events (fences, POTENTIAL_LEAKING flags, scans,
//     redo replays) are rare; they go through a mutex-guarded ring buffer
//     that keeps the most recent events and never grows.
package obs

import (
	"math/bits"
	"sync/atomic"
)

// Counter identifies one pool-wide counter. Counters are accumulated in
// per-client shards and summed on read.
type Counter int

// Counters. The groups mirror the subsystems they observe: the allocation
// fast path (§5.1), the era-based reference count transactions (§4.3), the
// SPSC transfer queues (§5.2), and the reclamation/recovery machinery
// (§5.3, §3.2).
const (
	CtrAlloc      Counter = iota // successful Mallocs
	CtrAllocFail                 // Mallocs that returned an error
	CtrAllocHuge                 // successful huge (multi-segment) allocations
	CtrAllocNanos                // total ns spent in Malloc (timing-enabled clients only)
	CtrFree                      // blocks reclaimed (refcount hit zero and freed)
	CtrFreeHuge                  // huge objects returned to the segment pool
	CtrPublishBatch              // deferred-metadata publication bursts
	CtrPublishedFrees            // deferred frees published by bursts
	CtrFlush                     // cache-line flushes on the allocation path
	CtrFence                     // memory fences on the allocation path
	CtrSegClaim                  // segments claimed via the global allocation vector CAS

	CtrCASAttempt // header CAS attempts in era transactions
	CtrCASRetry   // header CAS attempts that lost the race and retried
	CtrEraBump    // era advances (one per committed transaction or init)

	CtrQueueSend    // successful queue sends
	CtrQueueReceive // successful queue receives
	CtrQueueFull    // sends rejected with ErrQueueFull
	CtrQueueEmpty   // receives rejected with ErrQueueEmpty
	// CtrQueueStaleSlot counts receives that stepped past a recovered
	// (already-released, zeroed) slot — crash debris, not real emptiness.
	CtrQueueStaleSlot

	CtrLeakFlag      // segments newly flagged POTENTIAL_LEAKING
	CtrScanPass      // segment-local scans executed
	CtrScanReclaimed // leaked blocks reclaimed by scans
	CtrScanRelinked  // lost free blocks re-inserted by scans
	CtrRootSwept     // dead-owner RootRef slots swept
	CtrClientFenced  // clients RAS-fenced (marked dead)
	CtrRecoveryPass  // client recoveries executed
	CtrRedoReplay    // interrupted transactions replayed via Conditions 1/2
	CtrMonitorTick   // monitor rounds

	CtrFsckPass     // repairing-fsck passes executed
	CtrFsckIssues   // issues found by fsck validation passes
	CtrRepairAction // individual repair actions applied (rewrites, rebuilds, reaps)
	CtrQuarantine   // blocks/pages written off as irreparable

	NumCounters // sentinel
)

// counterNames indexes Counter -> stable export name.
var counterNames = [NumCounters]string{
	CtrAlloc:          "alloc_ops",
	CtrAllocFail:      "alloc_fail",
	CtrAllocHuge:      "alloc_huge",
	CtrAllocNanos:     "alloc_nanos",
	CtrFree:           "free_ops",
	CtrFreeHuge:       "free_huge",
	CtrPublishBatch:   "publish_bursts",
	CtrPublishedFrees: "published_frees",
	CtrFlush:          "flush_ops",
	CtrFence:          "fence_ops",
	CtrSegClaim:       "segment_claims",
	CtrCASAttempt:     "refcnt_cas_attempts",
	CtrCASRetry:       "refcnt_cas_retries",
	CtrEraBump:        "era_bumps",
	CtrQueueSend:      "queue_send",
	CtrQueueReceive:   "queue_receive",
	CtrQueueFull:      "queue_full",
	CtrQueueEmpty:     "queue_empty",
	CtrQueueStaleSlot: "queue_stale_slot",
	CtrLeakFlag:       "segments_flagged_leaking",
	CtrScanPass:       "segment_scans",
	CtrScanReclaimed:  "scan_blocks_reclaimed",
	CtrScanRelinked:   "scan_blocks_relinked",
	CtrRootSwept:      "rootrefs_swept",
	CtrClientFenced:   "clients_fenced",
	CtrRecoveryPass:   "recovery_passes",
	CtrRedoReplay:     "redo_replays",
	CtrMonitorTick:    "monitor_ticks",
	CtrFsckPass:       "fsck_passes",
	CtrFsckIssues:     "fsck_issues_found",
	CtrRepairAction:   "repair_actions",
	CtrQuarantine:     "quarantines",
}

// Name returns the counter's stable export name.
func (c Counter) Name() string {
	if c < 0 || c >= NumCounters {
		return "unknown"
	}
	return counterNames[c]
}

// Histo identifies one latency histogram.
type Histo int

// Histograms. Alloc latency is sampled (1/64 of operations) so the fast
// path stays flat; scan and recovery latencies are recorded on every pass.
const (
	HistAllocNS    Histo = iota // Malloc wall time (sampled)
	HistScanNS                  // segment-local scan wall time
	HistRecoveryNS              // full client-recovery wall time
	// HistDetectRecoverNS is the recovery-time SLO: first missed heartbeat
	// (or fence, when no miss was observed) to RECOVERED published.
	HistDetectRecoverNS
	// HistPublishBatch is a size (not latency) histogram: deferred frees
	// published per publication burst, showing how well free-path stores
	// amortize.
	HistPublishBatch
	NumHistos // sentinel
)

var histoNames = [NumHistos]string{
	HistAllocNS:         "alloc_ns",
	HistScanNS:          "segment_scan_ns",
	HistRecoveryNS:      "recovery_ns",
	HistDetectRecoverNS: "detect_to_recovered_ns",
	HistPublishBatch:    "publish_batch_size",
}

// Name returns the histogram's stable export name.
func (h Histo) Name() string {
	if h < 0 || h >= NumHistos {
		return "unknown"
	}
	return histoNames[h]
}

// HistBuckets is the number of log2-scaled buckets per histogram. Bucket i
// counts observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i);
// the last bucket absorbs everything larger (≥ ~1s in nanoseconds).
const HistBuckets = 31

// bucketOf maps a non-negative observation to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// BucketUpper returns the exclusive upper bound of bucket i (the value all
// observations in the bucket are below), used when reporting quantiles.
func BucketUpper(i int) uint64 {
	if i >= 63 {
		return ^uint64(0)
	}
	return uint64(1) << uint(i)
}

// Shard is one client's private slice of the metrics core. All writes to a
// shard come from a single client (or, for the pool shard, through atomics
// only), and the trailing pad keeps adjacent shards off each other's cache
// lines.
type Shard struct {
	counters [NumCounters]atomic.Uint64
	histos   [NumHistos][HistBuckets]atomic.Uint64
	_        [64]byte
}

// Inc adds one to counter c. Safe for concurrent use; nil-safe so detached
// code paths (tests constructing bare clients) cost one predictable branch.
func (s *Shard) Inc(c Counter) {
	if s == nil {
		return
	}
	s.counters[c].Add(1)
}

// Add adds v to counter c.
func (s *Shard) Add(c Counter, v uint64) {
	if s == nil || v == 0 {
		return
	}
	s.counters[c].Add(v)
}

// Get reads counter c.
func (s *Shard) Get(c Counter) uint64 {
	if s == nil {
		return 0
	}
	return s.counters[c].Load()
}

// SetCounters publishes a full counter vector into the shard with atomic
// stores. It is the fast-path escape hatch for single-writer shards: the
// owner accumulates counts in plain local memory and publishes the running
// totals periodically, so the hot path pays plain increments instead of one
// atomic RMW per event. Only the shard's single writer may call it (it
// overwrites, not adds).
func (s *Shard) SetCounters(v *[NumCounters]uint64) {
	if s == nil {
		return
	}
	for i := range v {
		s.counters[i].Store(v[i])
	}
}

// Observe records one latency observation (in ns) into histogram h.
func (s *Shard) Observe(h Histo, ns int64) {
	if s == nil {
		return
	}
	s.histos[h][bucketOf(ns)].Add(1)
}

// Bucket reads one histogram bucket (telemetry publication reads the
// shard's vectors word by word).
func (s *Shard) Bucket(h Histo, i int) uint64 {
	if s == nil {
		return 0
	}
	return s.histos[h][i].Load()
}

// BucketOf exposes the bucket index for an observation, for writers that
// maintain histogram vectors outside a Shard (the shared pool block's
// CAS-added buckets).
func BucketOf(v int64) int { return bucketOf(v) }

// Registry is the sharded counter/histogram core for one pool: shard 0 is
// the pool/recovery-service shard, shards 1..n are per-client (indexed by
// client ID).
type Registry struct {
	shards []Shard
}

// NewRegistry creates a registry with nshards shards (minimum 1).
func NewRegistry(nshards int) *Registry {
	if nshards < 1 {
		nshards = 1
	}
	return &Registry{shards: make([]Shard, nshards)}
}

// Shard returns shard i, clamping out-of-range indices to the pool shard so
// callers never need bounds checks.
func (r *Registry) Shard(i int) *Shard {
	if r == nil {
		return nil
	}
	if i < 0 || i >= len(r.shards) {
		i = 0
	}
	return &r.shards[i]
}

// NumShards reports how many shards the registry holds.
func (r *Registry) NumShards() int {
	if r == nil {
		return 0
	}
	return len(r.shards)
}

// Counters sums every shard into one counter vector.
func (r *Registry) Counters() [NumCounters]uint64 {
	var out [NumCounters]uint64
	if r == nil {
		return out
	}
	for i := range r.shards {
		s := &r.shards[i]
		for c := Counter(0); c < NumCounters; c++ {
			out[c] += s.counters[c].Load()
		}
	}
	return out
}

// Histogram sums histogram h across every shard.
func (r *Registry) Histogram(h Histo) [HistBuckets]uint64 {
	var out [HistBuckets]uint64
	if r == nil {
		return out
	}
	for i := range r.shards {
		s := &r.shards[i]
		for b := 0; b < HistBuckets; b++ {
			out[b] += s.histos[h][b].Load()
		}
	}
	return out
}
