package obs_test

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestCountersConcurrent(t *testing.T) {
	const shards, perShard = 4, 10000
	m := obs.New(shards, 8)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := m.Shard(i)
			for j := 0; j < perShard; j++ {
				sh.Inc(obs.CtrAlloc)
				sh.Add(obs.CtrFree, 2)
				sh.Observe(obs.HistAllocNS, int64(j%4096)+1)
			}
		}(i)
	}
	wg.Wait()
	snap := m.Snapshot()
	if got := snap.Counters[obs.CtrAlloc.Name()]; got != shards*perShard {
		t.Fatalf("alloc_ops = %d, want %d", got, shards*perShard)
	}
	if got := snap.Counters[obs.CtrFree.Name()]; got != 2*shards*perShard {
		t.Fatalf("free_ops = %d, want %d", got, 2*shards*perShard)
	}
	h := snap.Histograms[obs.HistAllocNS.Name()]
	if h.Count != shards*perShard {
		t.Fatalf("histogram count = %d, want %d", h.Count, shards*perShard)
	}
	if h.P50NS == 0 || h.P99NS < h.P50NS || h.MaxNS < h.P99NS {
		t.Fatalf("nonsense quantiles: p50=%d p99=%d max=%d", h.P50NS, h.P99NS, h.MaxNS)
	}
	if h.MaxNS > 8192 {
		t.Fatalf("max %d exceeds bucket bound for observations <= 4096", h.MaxNS)
	}
}

// Snapshots taken while writers are running must be internally consistent:
// every counter monotonically non-decreasing across successive snapshots.
func TestSnapshotWhileWriting(t *testing.T) {
	m := obs.New(2, 8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sh := m.Shard(1)
		for {
			select {
			case <-stop:
				return
			default:
				sh.Inc(obs.CtrAlloc)
				sh.Inc(obs.CtrFree)
				sh.Observe(obs.HistScanNS, 100)
			}
		}
	}()
	var prev obs.Snapshot
	for i := 0; i < 200; i++ {
		snap := m.Snapshot()
		for name, v := range prev.Counters {
			if snap.Counters[name] < v {
				t.Fatalf("counter %s went backwards: %d -> %d", name, v, snap.Counters[name])
			}
		}
		ph := prev.Histograms[obs.HistScanNS.Name()]
		if h := snap.Histograms[obs.HistScanNS.Name()]; h.Count < ph.Count {
			t.Fatalf("histogram count went backwards: %d -> %d", ph.Count, h.Count)
		}
		prev = snap
	}
	close(stop)
	wg.Wait()
}

func TestNilShardSafe(t *testing.T) {
	var sh *obs.Shard
	sh.Inc(obs.CtrAlloc)
	sh.Add(obs.CtrFree, 3)
	sh.Observe(obs.HistAllocNS, 10)
	if sh.Get(obs.CtrAlloc) != 0 {
		t.Fatal("nil shard should read 0")
	}
	var m *obs.Metrics
	m.Trace(obs.Event{Type: obs.EvScanStarted})
	if m.Shard(0) != nil {
		t.Fatal("nil metrics should hand out nil shards")
	}
	if s := m.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil metrics snapshot should be empty")
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := obs.NewTracer(4)
	for i := 1; i <= 10; i++ {
		tr.Record(obs.Event{Type: obs.EvScanStarted, Segment: i})
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want ring capacity 4", len(evs))
	}
	for i, e := range evs {
		if want := 7 + i; e.Segment != want {
			t.Fatalf("event %d: segment %d, want %d (oldest-first order)", i, e.Segment, want)
		}
		if i > 0 && evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("sequence numbers not consecutive: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
		if e.Time.IsZero() {
			t.Fatalf("event %d: zero timestamp not stamped", i)
		}
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := obs.NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Record(obs.Event{Type: obs.EvRedoReplayed})
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 4000 {
		t.Fatalf("total = %d, want 4000", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 64 {
		t.Fatalf("retained = %d, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("retained window not contiguous at %d", i)
		}
	}
}

func TestSnapshotSub(t *testing.T) {
	m := obs.New(1, 8)
	sh := m.Shard(0)
	sh.Add(obs.CtrAlloc, 10)
	sh.Observe(obs.HistAllocNS, 50)
	before := m.Snapshot()
	sh.Add(obs.CtrAlloc, 7)
	sh.Observe(obs.HistAllocNS, 50)
	sh.Observe(obs.HistAllocNS, 70)
	d := m.Snapshot().Sub(before)
	if got := d.Counters[obs.CtrAlloc.Name()]; got != 7 {
		t.Fatalf("delta alloc = %d, want 7", got)
	}
	if h := d.Histograms[obs.HistAllocNS.Name()]; h.Count != 2 {
		t.Fatalf("delta histogram count = %d, want 2", h.Count)
	}
	// Subtracting a larger snapshot clamps at zero rather than wrapping.
	if d2 := before.Sub(m.Snapshot()); d2.Counters[obs.CtrAlloc.Name()] != 0 {
		t.Fatalf("underflow not clamped: %d", d2.Counters[obs.CtrAlloc.Name()])
	}
}

func TestEventJSONAndString(t *testing.T) {
	e := obs.Event{
		Seq: 3, Time: time.Unix(1, 0), Type: obs.EvClientFenced,
		Client: 2, A: uint64(obs.FenceHeartbeat),
	}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["type"] != obs.EvClientFenced.String() {
		t.Fatalf("type marshalled as %v, want %q", m["type"], obs.EvClientFenced.String())
	}
	if e.String() == "" || obs.FenceHeartbeat.String() != "heartbeat-timeout" {
		t.Fatal("string forms missing")
	}
}
