package faultinject

import (
	"fmt"

	"repro/internal/cxl"
)

// AccessSweeper generalizes the named crash points to every device write: a
// campaign first runs an operation once in counting mode to learn how many
// device stores/CAS attempts the victim issues, then re-runs it once per
// write index with the sweeper armed, crashing the victim exactly before
// that access executes (the hook fires pre-access, so "crash at write n"
// means writes 1..n-1 landed and write n did not).
//
// The sweeper's Hook method is a cxl.AccessHook; install it with
// cxl.WithAccessHook. Sweeps are single-goroutine by construction (one
// scripted operation at a time), so the state is plain fields.
type AccessSweeper struct {
	victim int // client ID whose writes are counted; -1 matches every ID
	mode   int
	writes int
	target int
}

const (
	swOff = iota
	swCount
	swArmed
)

// NewAccessSweeper returns an idle sweeper matching every client.
func NewAccessSweeper() *AccessSweeper {
	return &AccessSweeper{victim: -1}
}

// SetVictim restricts the sweeper to writes issued by client cid. Pass -1 to
// match every client, including the cid-0 management plane (used to sweep the
// recovery service's own writes).
func (s *AccessSweeper) SetVictim(cid int) { s.victim = cid }

// StartCounting begins a counting pass: matching writes are tallied, none
// crash.
func (s *AccessSweeper) StartCounting() {
	s.mode = swCount
	s.writes = 0
}

// StopCounting ends the counting pass and returns the tally.
func (s *AccessSweeper) StopCounting() int {
	s.mode = swOff
	return s.writes
}

// Arm prepares the sweeper to crash at the n-th (1-based) matching write.
func (s *AccessSweeper) Arm(n int) {
	s.mode = swArmed
	s.writes = 0
	s.target = n
}

// Disarm turns the sweeper off (epilogue, recovery, validation run clean).
func (s *AccessSweeper) Disarm() { s.mode = swOff }

// Writes returns the matching writes observed since the last Start/Arm.
func (s *AccessSweeper) Writes() int { return s.writes }

// SweepPoint names the synthetic crash point for write index n, so sweep
// crashes flow through the same Crash/Run machinery as the named points.
func SweepPoint(n int) Point {
	return Point(fmt.Sprintf("sweep/write-%d", n))
}

// Hook is the cxl.AccessHook. Only mutating accesses count: stores and CAS
// attempts (a failed CAS still counts — the attempt is a deterministic,
// device-visible event, and crashing on it exercises the retry paths).
func (s *AccessSweeper) Hook(cid int, kind cxl.AccessKind, _ cxl.Addr) {
	if s.mode == swOff {
		return
	}
	if kind != cxl.OpStore && kind != cxl.OpCAS {
		return
	}
	if s.victim >= 0 && cid != s.victim {
		return
	}
	s.writes++
	if s.mode == swArmed && s.writes == s.target {
		panic(Crash{Point: SweepPoint(s.target)})
	}
}
