package faultinject

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/cxl"
)

// Corruption model. The crash points and the access sweeper cover fail-stop:
// a client dies, the words it wrote stay exactly as written. This file covers
// the messier device-side faults ("Towards CXL Resilience to CPU Failures"):
//
//	bit-flip    one word has one bit inverted at rest
//	torn        a multi-word record was being rewritten when the writer died:
//	            a prefix of the record carries the new value, the tail is
//	            scribbled garbage
//	stuck-cas   a wedged agent: CAS against a word either reports success
//	            while leaving the word stale (success-lie), or fails
//	            persistently until the caller gives up (spin)
//
// Faults are targetable by pool region and deterministic from a seed: the
// Corruptor consumes randomness in a fixed order (index, then bit/cut/flavor,
// then garbage words), so the same (region, class, seed) triple over the same
// candidate addresses reproduces the identical fault sequence on any backend —
// the property `faultsim -repro` depends on.
//
// The package stays device-level: it knows addresses, not layout. Resolving a
// Region to its candidate addresses requires the pool geometry and live
// structures, so that mapping lives in the campaign driver (internal/sweep).

// Region names a targetable area of the pool for corruption injection.
type Region string

// Targetable regions.
const (
	RegionSuperblock  Region = "superblock"
	RegionSegmentMeta Region = "segment-meta"
	RegionBlockHeader Region = "block-header"
	RegionRedoLog     Region = "redo-log"
	RegionEraMatrix   Region = "era-matrix"
	RegionQueueSlot   Region = "queue-slot"
	RegionTelemetry   Region = "telemetry"
)

// AllRegions lists every targetable region, for systematic campaigns.
var AllRegions = []Region{
	RegionSuperblock, RegionSegmentMeta, RegionBlockHeader, RegionRedoLog,
	RegionEraMatrix, RegionQueueSlot, RegionTelemetry,
}

// ParseRegion resolves a region name.
func ParseRegion(s string) (Region, error) {
	for _, r := range AllRegions {
		if string(r) == s {
			return r, nil
		}
	}
	return "", fmt.Errorf("faultinject: unknown region %q (want one of %v)", s, AllRegions)
}

// Class names a corruption fault class.
type Class string

// Fault classes.
const (
	ClassBitFlip  Class = "bit-flip"
	ClassTorn     Class = "torn"
	ClassStuckCAS Class = "stuck-cas"
)

// AllClasses lists every fault class, for systematic campaigns.
var AllClasses = []Class{ClassBitFlip, ClassTorn, ClassStuckCAS}

// ParseClass resolves a fault-class name.
func ParseClass(s string) (Class, error) {
	for _, c := range AllClasses {
		if string(c) == s {
			return c, nil
		}
	}
	return "", fmt.Errorf("faultinject: unknown fault class %q (want one of %v)", s, AllClasses)
}

// StuckCASSpin is the synthetic crash point raised when a spin-flavored
// stuck CAS has failed enough times that the acting client counts as wedged;
// the harness converts the panic into a client death, modeling an agent that
// hung retrying and was fenced.
const StuckCASSpin Point = "corrupt/stuck-cas-spin"

// spinFailures is how many injected CAS failures a spin-flavored stuck CAS
// delivers before declaring the caller wedged.
const spinFailures = 4

// InjectedFault records one concrete fault the Corruptor delivered, in
// injection order. The sequence is the campaign's reproducibility contract:
// equal seeds and candidate sets must yield equal sequences.
type InjectedFault struct {
	Region Region
	Class  Class
	Addr   cxl.Addr
	// Bit is the flipped bit index (bit-flip only).
	Bit uint
	// Before and After are the word values around the fault. For a live
	// stuck CAS, Before is the stale value left in place and After the value
	// the caller believed it wrote (lie) or wanted to write (spin).
	Before, After uint64
	// Mode distinguishes how the fault landed: "at-rest" (word rewritten in
	// place), "live" (intercepted in flight), or "at-rest-fallback" (stuck
	// CAS armed but never exercised; staleness emulated at rest).
	Mode string
}

func (f InjectedFault) String() string {
	switch f.Class {
	case ClassBitFlip:
		return fmt.Sprintf("%s/%s @%d bit %d (%#x -> %#x)", f.Region, f.Class, f.Addr, f.Bit, f.Before, f.After)
	default:
		return fmt.Sprintf("%s/%s @%d %s (%#x -> %#x)", f.Region, f.Class, f.Addr, f.Mode, f.Before, f.After)
	}
}

// wordMem is the slice of cxl.Memory the at-rest injectors need.
type wordMem interface {
	Load(cxl.Addr) uint64
	Store(cxl.Addr, uint64)
}

// Corruptor plans and delivers the faults of one campaign trial. All
// randomness flows from the seed in a fixed consumption order, so a trial is
// replayable from (region, class, seed) alone. The zero Corruptor is not
// usable; construct with NewCorruptor.
//
// At-rest classes (bit-flip, torn) write the fault directly. Stuck CAS is
// live: Arm it over the region's words and install Hook via
// cxl.WithWriteFaults; if no CAS reaches the region before the trial ends,
// FallbackAtRest emulates the staleness after the fact so every trial
// injects something.
type Corruptor struct {
	region Region
	class  Class
	seed   int64
	rng    *rand.Rand

	mu      sync.Mutex
	faults  []InjectedFault
	armed   bool
	targets map[cxl.Addr]struct{}
	lie     bool // stuck-CAS flavor: success-lie vs spin-fail
	fails   int  // spin: injected failures so far
}

// NewCorruptor returns a corruptor for one (region, class, seed) trial.
func NewCorruptor(region Region, class Class, seed int64) *Corruptor {
	return &Corruptor{
		region: region,
		class:  class,
		seed:   seed,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Region returns the targeted region.
func (c *Corruptor) Region() Region { return c.region }

// Class returns the fault class.
func (c *Corruptor) Class() Class { return c.class }

// Seed returns the trial seed.
func (c *Corruptor) Seed() int64 { return c.seed }

// Faults returns the faults injected so far, in order.
func (c *Corruptor) Faults() []InjectedFault {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]InjectedFault(nil), c.faults...)
}

func (c *Corruptor) record(f InjectedFault) {
	c.mu.Lock()
	c.faults = append(c.faults, f)
	c.mu.Unlock()
}

// PickIndex deterministically selects one of n candidates (the campaign
// driver calls it to choose a word, record, or slot within the region).
func (c *Corruptor) PickIndex(n int) int {
	if n <= 1 {
		return 0
	}
	return c.rng.Intn(n)
}

// FlipBit injects a single-bit flip at a: one seeded bit of the word is
// inverted at rest.
func (c *Corruptor) FlipBit(m wordMem, a cxl.Addr) InjectedFault {
	bit := uint(c.rng.Intn(64))
	before := m.Load(a)
	after := before ^ (1 << bit)
	m.Store(a, after)
	f := InjectedFault{
		Region: c.region, Class: ClassBitFlip, Addr: a, Bit: bit,
		Before: before, After: after, Mode: "at-rest",
	}
	c.record(f)
	return f
}

// Tear injects a torn multi-word update over record: a seeded cut point
// k ∈ [1, len) is chosen, words before k are left as written (the prefix that
// landed), and words [k, len) are scribbled with seeded garbage (the tail the
// dying writer never completed, read back as whatever the line buffer held).
// Records shorter than two words degrade to a full-word scribble.
func (c *Corruptor) Tear(m wordMem, record []cxl.Addr) []InjectedFault {
	if len(record) == 0 {
		return nil
	}
	k := 0
	if len(record) > 1 {
		k = 1 + c.rng.Intn(len(record)-1)
	}
	var out []InjectedFault
	for _, a := range record[k:] {
		before := m.Load(a)
		after := c.rng.Uint64()
		m.Store(a, after)
		f := InjectedFault{
			Region: c.region, Class: ClassTorn, Addr: a,
			Before: before, After: after, Mode: "at-rest",
		}
		c.record(f)
		out = append(out, f)
	}
	return out
}

// Arm prepares live stuck-CAS injection over the given words: the next CAS
// any client issues against one of them misbehaves. The flavor — success-lie
// or spin-fail — is drawn from the seed. Install Hook via
// cxl.WithWriteFaults for the arming to take effect.
func (c *Corruptor) Arm(targets []cxl.Addr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.targets = make(map[cxl.Addr]struct{}, len(targets))
	for _, a := range targets {
		c.targets[a] = struct{}{}
	}
	c.lie = c.rng.Intn(2) == 0
	c.fails = 0
	c.armed = true
}

// Disarm stops live injection (recovery, repair and validation must run over
// an honest device).
func (c *Corruptor) Disarm() {
	c.mu.Lock()
	c.armed = false
	c.mu.Unlock()
}

// Armed reports whether live injection is active.
func (c *Corruptor) Armed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.armed
}

// Lie reports the drawn stuck-CAS flavor: true for success-lie, false for
// spin-fail. Only meaningful after Arm.
func (c *Corruptor) Lie() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lie
}

// Hook is the cxl.WriteFaultHook delivering live stuck-CAS faults. Stores
// always pass through; a CAS against an armed target either success-lies
// (the caller proceeds believing the word updated, but it is stale) or fails
// spinFailures times and then raises StuckCASSpin, wedging the caller.
func (c *Corruptor) Hook(kind cxl.AccessKind, a cxl.Addr, v uint64) (uint64, cxl.WriteFault) {
	if kind != cxl.OpCAS {
		return v, cxl.WriteThrough
	}
	c.mu.Lock()
	if !c.armed {
		c.mu.Unlock()
		return v, cxl.WriteThrough
	}
	if _, ok := c.targets[a]; !ok {
		c.mu.Unlock()
		return v, cxl.WriteThrough
	}
	if c.lie {
		c.armed = false // one lie per trial: exactly one word goes stale
		c.faults = append(c.faults, InjectedFault{
			Region: c.region, Class: ClassStuckCAS, Addr: a,
			After: v, Mode: "live",
		})
		c.mu.Unlock()
		return v, cxl.WriteDrop
	}
	c.fails++
	if c.fails >= spinFailures {
		c.armed = false
		c.faults = append(c.faults, InjectedFault{
			Region: c.region, Class: ClassStuckCAS, Addr: a,
			After: v, Mode: "live",
		})
		c.mu.Unlock()
		panic(Crash{Point: StuckCASSpin})
	}
	c.mu.Unlock()
	return v, cxl.WriteFailCAS
}

// Fired reports whether live injection already delivered its fault.
func (c *Corruptor) Fired() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, f := range c.faults {
		if f.Mode == "live" {
			return true
		}
	}
	return false
}

// FallbackAtRest emulates a stuck CAS at rest when the live hook was armed
// but no CAS reached the region before the trial ended: if the word moved
// since arming it is reverted to the arm-time snapshot (the staleness a
// success-lie would have left), otherwise its low bit is flipped (the
// divergence a lied-to caller believes it wrote). Call with the arm-time
// snapshot of the chosen word.
func (c *Corruptor) FallbackAtRest(m wordMem, a cxl.Addr, snapshot uint64) InjectedFault {
	before := m.Load(a)
	after := snapshot
	if before == snapshot {
		after = snapshot ^ 1
	}
	m.Store(a, after)
	f := InjectedFault{
		Region: c.region, Class: ClassStuckCAS, Addr: a,
		Before: before, After: after, Mode: "at-rest-fallback",
	}
	c.record(f)
	return f
}
