package faultinject

import (
	"reflect"
	"testing"

	"repro/internal/cxl"
)

// fakeMem is a tiny word store for exercising at-rest injection without a
// real device.
type fakeMem map[cxl.Addr]uint64

func (m fakeMem) Load(a cxl.Addr) uint64     { return m[a] }
func (m fakeMem) Store(a cxl.Addr, v uint64) { m[a] = v }

func seededMem() fakeMem {
	m := fakeMem{}
	for a := cxl.Addr(0); a < 64; a++ {
		m[a] = uint64(a) * 0x9e3779b97f4a7c15
	}
	return m
}

// TestCorruptorDeterministic is the -repro contract: the same (region,
// class, seed) over the same candidate addresses must yield the identical
// injected fault sequence, run after run.
func TestCorruptorDeterministic(t *testing.T) {
	candidates := []cxl.Addr{3, 7, 11, 15, 19, 23, 27, 31}
	for _, class := range AllClasses {
		for _, region := range AllRegions {
			var sequences [][]InjectedFault
			for run := 0; run < 2; run++ {
				m := seededMem()
				c := NewCorruptor(region, class, 42)
				i := c.PickIndex(len(candidates))
				switch class {
				case ClassBitFlip:
					c.FlipBit(m, candidates[i])
				case ClassTorn:
					c.Tear(m, candidates[i:])
				case ClassStuckCAS:
					snap := m.Load(candidates[i])
					c.Arm([]cxl.Addr{candidates[i]})
					// Model a trial where no CAS reached the region.
					c.Disarm()
					c.FallbackAtRest(m, candidates[i], snap)
				}
				sequences = append(sequences, c.Faults())
			}
			if len(sequences[0]) == 0 {
				t.Errorf("%s/%s: no faults injected", region, class)
			}
			if !reflect.DeepEqual(sequences[0], sequences[1]) {
				t.Errorf("%s/%s: fault sequences differ across runs:\n  %v\n  %v",
					region, class, sequences[0], sequences[1])
			}
		}
	}
}

// TestCorruptorSeedsDiverge guards against a degenerate planner that ignores
// the seed (which would silently shrink campaign coverage).
func TestCorruptorSeedsDiverge(t *testing.T) {
	candidates := []cxl.Addr{3, 7, 11, 15, 19, 23, 27, 31}
	diverged := false
	for seed := int64(0); seed < 8 && !diverged; seed++ {
		m1, m2 := seededMem(), seededMem()
		c1 := NewCorruptor(RegionBlockHeader, ClassBitFlip, seed)
		c2 := NewCorruptor(RegionBlockHeader, ClassBitFlip, seed+1)
		c1.FlipBit(m1, candidates[c1.PickIndex(len(candidates))])
		c2.FlipBit(m2, candidates[c2.PickIndex(len(candidates))])
		if !reflect.DeepEqual(c1.Faults(), c2.Faults()) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("eight consecutive seeds produced identical faults; planner ignores the seed")
	}
}

// TestCorruptorTearScribblesTail checks the torn-write shape: a cut point
// k ≥ 1, prefix untouched, every tail word rewritten.
func TestCorruptorTearScribblesTail(t *testing.T) {
	record := []cxl.Addr{10, 11, 12, 13, 14}
	m := seededMem()
	orig := map[cxl.Addr]uint64{}
	for _, a := range record {
		orig[a] = m.Load(a)
	}
	c := NewCorruptor(RegionRedoLog, ClassTorn, 7)
	faults := c.Tear(m, record)
	if len(faults) == 0 || len(faults) >= len(record) {
		t.Fatalf("tear rewrote %d of %d words; want at least 1 and at most %d",
			len(faults), len(record), len(record)-1)
	}
	k := len(record) - len(faults)
	for _, a := range record[:k] {
		if m.Load(a) != orig[a] {
			t.Errorf("prefix word %d changed: %#x -> %#x", a, orig[a], m.Load(a))
		}
	}
	for i, a := range record[k:] {
		if m.Load(a) != faults[i].After {
			t.Errorf("tail word %d: device holds %#x, fault record says %#x", a, m.Load(a), faults[i].After)
		}
	}
}

// TestCorruptorStuckCASLie drives the live hook end to end over a real
// device: a lying CAS reports success, leaves the word stale, and records
// exactly one live fault.
func TestCorruptorStuckCASLie(t *testing.T) {
	dev, err := cxl.NewDevice(cxl.Config{Words: 128, MaxClients: 4})
	if err != nil {
		t.Fatal(err)
	}
	const target = cxl.Addr(17)
	dev.Store(target, 5)

	// Find a seed drawing the lie flavor so the test is deterministic.
	var lier *Corruptor
	for seed := int64(0); seed < 32; seed++ {
		cand := NewCorruptor(RegionQueueSlot, ClassStuckCAS, seed)
		cand.Arm([]cxl.Addr{target})
		if cand.Lie() {
			lier = cand
			break
		}
	}
	if lier == nil {
		t.Fatal("no seed in [0,32) draws the success-lie flavor")
	}
	mem := cxl.Wrap(dev, cxl.WithWriteFaults(lier.Hook))
	if !mem.CAS(target, 5, 6) {
		t.Fatal("lying CAS reported failure; want success-lie")
	}
	if got := mem.Load(target); got != 5 {
		t.Fatalf("word moved to %d under a success-lie; want stale 5", got)
	}
	if !lier.Fired() {
		t.Fatal("live fault not recorded")
	}
	// The lie is one-shot: the next CAS is honest.
	if !mem.CAS(target, 5, 6) || mem.Load(target) != 6 {
		t.Fatal("hook did not return to honesty after the one-shot lie")
	}
}

// TestCorruptorStuckCASSpin drives the spin flavor: CAS fails spinFailures-1
// times and the next attempt wedges the caller with StuckCASSpin.
func TestCorruptorStuckCASSpin(t *testing.T) {
	var spinner *Corruptor
	for seed := int64(0); seed < 32; seed++ {
		cand := NewCorruptor(RegionEraMatrix, ClassStuckCAS, seed)
		cand.Arm([]cxl.Addr{cxl.Addr(9)})
		if !cand.Lie() {
			spinner = cand
			break
		}
	}
	if spinner == nil {
		t.Fatal("no seed in [0,32) draws the spin flavor")
	}
	dev, err := cxl.NewDevice(cxl.Config{Words: 64, MaxClients: 4})
	if err != nil {
		t.Fatal(err)
	}
	mem := cxl.Wrap(dev, cxl.WithWriteFaults(spinner.Hook))
	mem.Store(9, 1)
	crash := Run(func() {
		for i := 0; i < spinFailures+2; i++ {
			if mem.CAS(9, 1, 2) {
				t.Fatal("spinning CAS reported success")
			}
		}
	})
	if crash == nil || crash.Point != StuckCASSpin {
		t.Fatalf("spin did not wedge the caller: crash=%v", crash)
	}
	if got := mem.Load(9); got != 1 {
		t.Fatalf("word moved to %d under spin-fail; want stale 1", got)
	}
}
