package faultinject

import "testing"

func TestNilInjectorNeverCrashes(t *testing.T) {
	var in *Injector
	for _, p := range AllPoints {
		in.Hit(p) // must not panic
	}
	if in.Hits() != 0 {
		t.Fatal("nil injector counted hits")
	}
}

func TestAtCrashesOnNthOccurrence(t *testing.T) {
	in := At(AfterCommitCAS, 3)
	crash := Run(func() {
		for i := 0; i < 10; i++ {
			in.Hit(AfterRedoLog) // different point: ignored
			in.Hit(AfterCommitCAS)
		}
	})
	if crash == nil {
		t.Fatal("expected crash")
	}
	if crash.Point != AfterCommitCAS {
		t.Fatalf("crashed at %s", crash.Point)
	}
	if in.Hits() != 3 {
		t.Fatalf("hits = %d, want 3", in.Hits())
	}
}

func TestAtClampsZeroOccurrence(t *testing.T) {
	in := At(AfterLink, 0)
	crash := Run(func() { in.Hit(AfterLink) })
	if crash == nil {
		t.Fatal("occurrence 0 must clamp to 1 and crash on first hit")
	}
}

func TestRandomIsDeterministicPerSeed(t *testing.T) {
	// Count hits until the first crash; the schedule must replay per seed.
	hitsUntilCrash := func(seed int64) int {
		in := Random(seed, 0.05)
		crashed := Run(func() {
			for i := 0; i < 1_000_000; i++ {
				in.Hit(AfterRedoLog)
			}
		})
		if crashed == nil {
			t.Fatalf("seed %d never crashed in 1M hits at p=0.05", seed)
		}
		return in.Hits()
	}
	a, b := hitsUntilCrash(7), hitsUntilCrash(7)
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d hits until crash", a, b)
	}
	if a < 1 {
		t.Fatal("crash before any hit")
	}
}

func TestRunPropagatesForeignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic must propagate through Run")
		}
	}()
	Run(func() { panic("not a crash") })
}

func TestCrashErrorString(t *testing.T) {
	c := Crash{Point: AfterLink}
	if c.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestAllPointsAreDistinct(t *testing.T) {
	seen := map[Point]bool{}
	for _, p := range AllPoints {
		if seen[p] {
			t.Fatalf("duplicate point %s", p)
		}
		seen[p] = true
	}
	if len(seen) < 20 {
		t.Fatalf("only %d crash points registered", len(seen))
	}
}
