// Package faultinject provides crash-point injection for the
// crash-consistency validation campaign (paper §6.2.2). The paper compiles
// its test program with a flag that plants "randomly bring down the current
// client" snippets at every critical point of allocation, deallocation,
// reference count maintenance, and reference exchange; this package is the
// Go equivalent. Production code paths call Injector.Hit at each critical
// point; an armed injector panics with Crash, which the client harness
// catches and converts into a simulated client death (the client is
// RAS-fenced and left exactly as the crash found it).
package faultinject

import (
	"fmt"
	"math/rand"
)

// Point names one crash point in the CXL-SHM implementation.
type Point string

// Crash points, in rough code-path order. Each corresponds to a gap between
// two shared-memory effects whose interleaving with a failure the recovery
// protocol must tolerate.
const (
	// Allocation fast path (§5.1).
	AfterRootRefClaim   Point = "alloc/after-rootref-claim"   // RootRef in_use set, nothing linked
	AfterLink           Point = "alloc/after-link"            // RootRef.pptr written, free ptr not advanced
	AfterAdvance        Point = "alloc/after-advance"         // free ptr advanced, block meta not set
	AfterBlockMeta      Point = "alloc/after-block-meta"      // meta set, header (refcnt) not set
	AfterHeaderInit     Point = "alloc/after-header-init"     // header set, era not bumped
	AfterSegmentClaim   Point = "alloc/after-segment-claim"   // segment CAS'd, page not claimed
	AfterHugeClaim      Point = "alloc/after-huge-claim"      // some huge segments CAS'd mid-claim
	AfterRootRefAdvance Point = "alloc/after-rootref-advance" // RootRef freelist advanced, in_use not set

	// Era-based reference count transactions (§4.3, Figure 4(c)).
	AfterRedoLog   Point = "era/after-redo-log"   // entry valid, CAS not attempted
	AfterCommitCAS Point = "era/after-commit-cas" // ModifyRefCnt committed, ModifyRef pending
	AfterModifyRef Point = "era/after-modify-ref" // ref written, era not bumped
	AfterEraBump   Point = "era/after-era-bump"   // era bumped, redo entry not cleared

	// change (atomic re-point of an embedded reference, §5.4).
	AfterChangeDecCAS   Point = "change/after-dec-cas"   // A decremented, first era bump pending
	AfterChangeFirstEra Point = "change/after-first-era" // first era bump done, B not incremented
	AfterChangeIncCAS   Point = "change/after-inc-cas"   // B incremented, ModifyRef pending
	AfterChangeModify   Point = "change/after-modify"    // embed word written, second bump pending

	// Reclamation (§5.3).
	BeforeReclaim     Point = "free/before-reclaim"      // count hit zero, nothing reclaimed
	AfterLeakFlag     Point = "free/after-leak-flag"     // segment flagged, cascade pending
	MidCascade        Point = "free/mid-cascade"         // between child releases of a cascade
	AfterMetaFree     Point = "free/after-meta-free"     // meta marked free, not on any list
	AfterFreePush     Point = "free/after-free-push"     // block pushed, era bookkeeping pending
	AfterRootRefClear Point = "free/after-rootref-clear" // RootRef in_use cleared, not on freelist

	// Reference exchange over SPSC queues (§5.2).
	AfterSendAttach     Point = "queue/after-send-attach"     // slot holds ref, tail not advanced
	AfterReceiveAttach  Point = "queue/after-receive-attach"  // receiver holds ref, slot not released
	AfterReceiveRelease Point = "queue/after-receive-release" // slot released, head not advanced
)

// AllPoints lists every crash point, for systematic campaigns.
var AllPoints = []Point{
	AfterRootRefClaim, AfterLink, AfterAdvance, AfterBlockMeta, AfterHeaderInit,
	AfterSegmentClaim, AfterHugeClaim, AfterRootRefAdvance,
	AfterRedoLog, AfterCommitCAS, AfterModifyRef, AfterEraBump,
	AfterChangeDecCAS, AfterChangeFirstEra, AfterChangeIncCAS, AfterChangeModify,
	BeforeReclaim, AfterLeakFlag, MidCascade, AfterMetaFree, AfterFreePush, AfterRootRefClear,
	AfterSendAttach, AfterReceiveAttach, AfterReceiveRelease,
}

// Crash is the panic payload raised at an armed crash point. The client
// harness recovers it and simulates the client's death.
type Crash struct {
	Point Point
}

func (c Crash) Error() string { return fmt.Sprintf("faultinject: injected crash at %s", c.Point) }

// Injector decides whether a given Hit should crash. A nil *Injector never
// crashes, so production code can call Hit unconditionally.
type Injector struct {
	// target, when non-empty, restricts crashing to that point.
	target Point
	// countdown: crash on the n-th matching hit (1 = first).
	countdown int
	// rng, when set, crashes any matching hit with probability prob.
	rng  *rand.Rand
	prob float64

	hits int
}

// At returns an injector that crashes at the n-th occurrence (1-based) of
// point p.
func At(p Point, n int) *Injector {
	if n < 1 {
		n = 1
	}
	return &Injector{target: p, countdown: n}
}

// Random returns an injector that crashes at any crash point with the given
// probability, using the seeded source (deterministic campaigns need
// deterministic seeds).
func Random(seed int64, prob float64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), prob: prob}
}

// Hits reports how many matching crash points were encountered.
func (in *Injector) Hits() int {
	if in == nil {
		return 0
	}
	return in.hits
}

// Hit is called by production code at each crash point. It panics with
// Crash when the injector decides to fire.
func (in *Injector) Hit(p Point) {
	if in == nil {
		return
	}
	if in.rng != nil {
		in.hits++
		if in.rng.Float64() < in.prob {
			panic(Crash{Point: p})
		}
		return
	}
	if in.target != p {
		return
	}
	in.hits++
	if in.hits == in.countdown {
		panic(Crash{Point: p})
	}
}

// Run executes f, converting an injected Crash panic into a returned *Crash.
// Any other panic propagates. It returns nil if f completes normally.
func Run(f func()) (crashed *Crash) {
	defer func() {
		if r := recover(); r != nil {
			if c, ok := r.(Crash); ok {
				crashed = &c
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}
