package alloc

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/shm"
)

// SHM adapts a CXL-SHM pool to the Allocator benchmark interface: every
// thread is a full RDSM client and every benchmark object is a counted,
// shareable, failure-resilient distributed object — which is exactly the
// overhead Figure 6 quantifies against volatile allocators.
type SHM struct {
	Pool *shm.Pool
	// Breakdowns collects per-thread Figure 7 cost splits when non-nil
	// (indexed by creation order; not goroutine-safe during the run).
	Breakdowns []*shm.Breakdown
	// Instrument enables breakdown accounting on new threads.
	Instrument bool
}

// Name implements Allocator.
func (s *SHM) Name() string { return "CXL-SHM" }

// NewThread implements Allocator: each benchmark thread joins the pool as
// its own client (separate failure domain).
func (s *SHM) NewThread() (ThreadAllocator, error) {
	c, err := s.Pool.Connect()
	if err != nil {
		return nil, err
	}
	if s.Instrument {
		b := &shm.Breakdown{}
		c.SetBreakdown(b)
		s.Breakdowns = append(s.Breakdowns, b)
	}
	return shmThread{c}, nil
}

type shmThread struct{ c *shm.Client }

func (t shmThread) Alloc(size int) (Obj, error) {
	root, _, err := t.c.Malloc(size, 0)
	if err != nil {
		return nil, err
	}
	return root, nil
}

func (t shmThread) Free(o Obj) error {
	root, ok := o.(layout.Addr)
	if !ok {
		return fmt.Errorf("alloc: foreign object %T", o)
	}
	_, err := t.c.ReleaseRoot(root)
	return err
}
