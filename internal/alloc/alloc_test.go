package alloc_test

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/layout"
	"repro/internal/nativealloc"
	"repro/internal/pmem"
	"repro/internal/shm"
)

func allocators(t *testing.T) []alloc.Allocator {
	t.Helper()
	h, err := pmem.NewHeap(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients: 16, NumSegments: 64, SegmentWords: 1 << 14, PageWords: 1 << 10,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return []alloc.Allocator{
		nativealloc.Plain{},
		&nativealloc.Pooled{},
		pmem.Bench{H: h},
		&alloc.SHM{Pool: pool},
	}
}

func TestThreadtestAllAllocators(t *testing.T) {
	for _, a := range allocators(t) {
		res, err := alloc.Threadtest(a, 4, 50, 32)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		wantOps := int64(4 * 50 * 32 * 2)
		if res.Ops != wantOps {
			t.Fatalf("%s: ops=%d want %d", a.Name(), res.Ops, wantOps)
		}
		if res.MOPS() <= 0 {
			t.Fatalf("%s: nonpositive MOPS", a.Name())
		}
	}
}

func TestShbenchAllAllocators(t *testing.T) {
	for _, a := range allocators(t) {
		res, err := alloc.Shbench(a, 4, 2000)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		// Every alloc is eventually freed: ops must be even and ≥ 2×iters.
		if res.Ops < 2*4*2000 {
			t.Fatalf("%s: ops=%d too few", a.Name(), res.Ops)
		}
		if res.Ops%2 != 0 {
			t.Fatalf("%s: odd op count %d (unbalanced alloc/free)", a.Name(), res.Ops)
		}
	}
}

func TestSHMInstrumentationCollectsBreakdowns(t *testing.T) {
	pool, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients: 4, NumSegments: 16, SegmentWords: 1 << 13, PageWords: 1 << 9,
	}})
	if err != nil {
		t.Fatal(err)
	}
	s := &alloc.SHM{Pool: pool, Instrument: true}
	if _, err := alloc.Threadtest(s, 2, 20, 16); err != nil {
		t.Fatal(err)
	}
	if len(s.Breakdowns) != 2 {
		t.Fatalf("breakdowns = %d, want 2", len(s.Breakdowns))
	}
	for i, b := range s.Breakdowns {
		if b.Ops() == 0 || b.Total() <= 0 {
			t.Fatalf("breakdown %d empty: ops=%d total=%v", i, b.Ops(), b.Total())
		}
		if b.FlushOps() == 0 || b.FenceOps() == 0 {
			t.Fatalf("breakdown %d counted no flushes/fences: flush=%d fence=%d",
				i, b.FlushOps(), b.FenceOps())
		}
		f, fe, al := b.Shares(100, 20)
		if f <= 0 || fe <= 0 || al < 0 || f+fe+al > 100.001 {
			t.Fatalf("breakdown %d shares: %v %v %v", i, f, fe, al)
		}
	}
}

func TestResultString(t *testing.T) {
	r := alloc.Result{Allocator: "x", Workload: "y", Threads: 2, Ops: 1000}
	if r.MOPS() != 0 {
		t.Fatal("zero elapsed must give zero MOPS")
	}
	if r.String() == "" {
		t.Fatal("empty string")
	}
}
