// Package alloc defines the common allocator interface and the two
// micro-benchmark workloads the paper uses to compare CXL-SHM with
// state-of-the-art allocators (§6.1, Figure 6):
//
//   - Threadtest (from Hoard): each thread repeatedly allocates and then
//     deallocates batches of 64-byte objects, no sharing.
//   - Shbench (MicroQuill SmartHeap): a stress test of variable-size
//     (64–400 byte) allocation with an interleaved working set.
package alloc

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Obj is an opaque handle to an allocated object.
type Obj interface{}

// ThreadAllocator is one thread's allocation context. Implementations need
// not be goroutine-safe; the drivers use one per goroutine.
type ThreadAllocator interface {
	Alloc(size int) (Obj, error)
	Free(o Obj) error
}

// Allocator is a benchmarkable allocator.
type Allocator interface {
	Name() string
	// NewThread creates a per-thread context.
	NewThread() (ThreadAllocator, error)
}

// Result is one benchmark measurement.
type Result struct {
	Allocator string
	Workload  string
	Threads   int
	Ops       int64 // allocations + frees
	Elapsed   time.Duration
}

// MOPS returns millions of operations per second.
func (r Result) MOPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds() / 1e6
}

func (r Result) String() string {
	return fmt.Sprintf("%-12s %-10s threads=%-3d %8.2f MOPS", r.Allocator, r.Workload, r.Threads, r.MOPS())
}

// Threadtest runs the Hoard threadtest workload: iters rounds per thread,
// each allocating batch 64-byte objects then freeing them all.
func Threadtest(a Allocator, threads, iters, batch int) (Result, error) {
	run := func(ta ThreadAllocator) (int64, error) {
		objs := make([]Obj, batch)
		var ops int64
		for it := 0; it < iters; it++ {
			for i := 0; i < batch; i++ {
				o, err := ta.Alloc(64)
				if err != nil {
					return ops, err
				}
				objs[i] = o
			}
			for i := 0; i < batch; i++ {
				if err := ta.Free(objs[i]); err != nil {
					return ops, err
				}
				objs[i] = nil
			}
			ops += int64(2 * batch)
		}
		return ops, nil
	}
	return drive(a, "threadtest", threads, run)
}

// Shbench runs the MicroQuill-style stress test: variable 64–400 byte
// objects with a sliding working set, iters operations per thread.
func Shbench(a Allocator, threads, iters int) (Result, error) {
	run := func(ta ThreadAllocator) (int64, error) {
		const window = 64
		rng := rand.New(rand.NewSource(12345))
		held := make([]Obj, 0, window)
		var ops int64
		for i := 0; i < iters; i++ {
			size := 64 + rng.Intn(337) // 64..400 bytes
			o, err := ta.Alloc(size)
			if err != nil {
				return ops, err
			}
			ops++
			held = append(held, o)
			if len(held) >= window {
				victim := rng.Intn(len(held))
				if err := ta.Free(held[victim]); err != nil {
					return ops, err
				}
				ops++
				held[victim] = held[len(held)-1]
				held = held[:len(held)-1]
			}
		}
		for _, o := range held {
			if err := ta.Free(o); err != nil {
				return ops, err
			}
			ops++
		}
		return ops, nil
	}
	return drive(a, "shbench", threads, run)
}

func drive(a Allocator, workload string, threads int, run func(ThreadAllocator) (int64, error)) (Result, error) {
	if threads < 1 {
		threads = 1
	}
	tas := make([]ThreadAllocator, threads)
	for i := range tas {
		ta, err := a.NewThread()
		if err != nil {
			return Result{}, fmt.Errorf("alloc: NewThread %d: %w", i, err)
		}
		tas[i] = ta
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total int64
		first error
	)
	start := time.Now()
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(ta ThreadAllocator) {
			defer wg.Done()
			ops, err := run(ta)
			mu.Lock()
			total += ops
			if err != nil && first == nil {
				first = err
			}
			mu.Unlock()
		}(tas[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	if first != nil {
		return Result{}, first
	}
	return Result{
		Allocator: a.Name(), Workload: workload,
		Threads: threads, Ops: total, Elapsed: elapsed,
	}, nil
}
