package kv_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/kv"
	"repro/internal/shm"
)

// TestViewUpdateRoundTrip exercises the zero-copy paths against the
// copying ones: values written through Update must be what Get and View
// observe, and vice versa.
func TestViewUpdateRoundTrip(t *testing.T) {
	p := newPool(t)
	c := connect(t, p)
	s, err := kv.Create(c, 0, 64, 32, 1)
	if err != nil {
		t.Fatal(err)
	}

	if err := s.View(7, func([]byte) error { return nil }); err != kv.ErrNotFound {
		t.Fatalf("View of missing key: %v, want ErrNotFound", err)
	}
	if err := s.Update(7, func([]byte) error { return nil }); err != kv.ErrNotFound {
		t.Fatalf("Update of missing key: %v, want ErrNotFound", err)
	}

	if err := s.Put(7, []byte("seven")); err != nil {
		t.Fatal(err)
	}
	var seen []byte
	if err := s.View(7, func(val []byte) error {
		if got, want := len(val), s.ValueSize(); got != want {
			t.Errorf("view is %d bytes, want the fixed value size %d", got, want)
		}
		seen = append([]byte(nil), val...)
		return nil
	}); err != nil {
		t.Fatalf("View: %v", err)
	}
	if !bytes.Equal(seen[:5], []byte("seven")) {
		t.Fatalf("View saw %q, want %q", seen[:5], "seven")
	}

	// In-place mutation through Update, observed by Get.
	if err := s.Update(7, func(val []byte) error {
		copy(val, "SEVEN!")
		return nil
	}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	buf := make([]byte, s.ValueSize())
	if _, err := s.Get(7, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:6], []byte("SEVEN!")) {
		t.Fatalf("Get after Update: %q", buf[:6])
	}

	// f's error surfaces from both paths.
	boom := errors.New("boom")
	if err := s.View(7, func([]byte) error { return boom }); err != boom {
		t.Fatalf("View error passthrough: %v", err)
	}
	if err := s.Update(7, func([]byte) error { return boom }); err != boom {
		t.Fatalf("Update error passthrough: %v", err)
	}

	// A nested view of the same record is the one aliasing shape the lease
	// layer rejects.
	if err := s.View(7, func([]byte) error {
		return s.View(7, func([]byte) error { return nil })
	}); err != shm.ErrLeaseAliased {
		t.Fatalf("nested View: %v, want ErrLeaseAliased", err)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	mustClean(t, p)
}

// TestViewUpdateZeroAlloc pins the acceptance criterion: read and update
// served through the lease layer with zero Go-heap copies — and zero heap
// allocations of any kind per operation after warm-up.
func TestViewUpdateZeroAlloc(t *testing.T) {
	p := newPool(t)
	c := connect(t, p)
	s, err := kv.Create(c, 0, 64, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(42, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	view := func(val []byte) error {
		if val[0] == 0 {
			t.Error("empty view")
		}
		return nil
	}
	update := func(val []byte) error {
		val[1]++
		return nil
	}
	// Warm-up (first lease wrapper, map buckets).
	if err := s.View(42, view); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(42, update); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := s.View(42, view); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("View allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := s.Update(42, update); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Update allocates %.1f objects/op, want 0", n)
	}
}

// TestViewHazardStore runs the zero-copy read under the hazard-era
// protocol and across a concurrent-delete shape: a view taken before a
// delete must either see the value or report the key gone, never garbage.
func TestViewHazardStore(t *testing.T) {
	p := newPool(t)
	c := connect(t, p)
	s, err := kv.Create(c, 0, 32, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableHazardReads()
	for k := uint64(1); k <= 20; k++ {
		if err := s.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1); k <= 20; k++ {
		if err := s.View(k, func(val []byte) error {
			if val[0] != byte(k) {
				t.Errorf("key %d: view saw %d", k, val[0])
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete(k); err != nil {
			t.Fatal(err)
		}
		if err := s.View(k, func([]byte) error { return nil }); err != kv.ErrNotFound {
			t.Fatalf("View after delete: %v, want ErrNotFound", err)
		}
	}
	s.Maintain()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	mustClean(t, p)
}
