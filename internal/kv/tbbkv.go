package kv

import "sync"

// TBBKV is the single-process multi-thread baseline of Figure 10a: a
// sharded concurrent hash map on native memory, standing in for the Intel
// TBB concurrent_hash_map (documented substitution). It has no failure
// domains, no sharing across processes, and no reference counting — the
// volatile performance upper bound CXL-KV is measured against.
type TBBKV struct {
	shards []tbbShard
	mask   uint64
}

type tbbShard struct {
	mu sync.RWMutex
	m  map[uint64][]byte
}

// NewTBBKV creates a map with 2^n shards covering at least shards.
func NewTBBKV(shards int) *TBBKV {
	n := 1
	for n < shards {
		n <<= 1
	}
	t := &TBBKV{shards: make([]tbbShard, n), mask: uint64(n - 1)}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64][]byte)
	}
	return t
}

func (t *TBBKV) shard(key uint64) *tbbShard {
	return &t.shards[hash64(key)&t.mask]
}

// Put stores a copy of val under key.
func (t *TBBKV) Put(key uint64, val []byte) error {
	s := t.shard(key)
	s.mu.Lock()
	old, ok := s.m[key]
	if ok && len(old) >= len(val) {
		copy(old[:len(val)], val)
	} else {
		s.m[key] = append([]byte(nil), val...)
	}
	s.mu.Unlock()
	return nil
}

// Get copies key's value into buf, returning the byte count.
func (t *TBBKV) Get(key uint64, buf []byte) (int, error) {
	s := t.shard(key)
	s.mu.RLock()
	v, ok := s.m[key]
	if !ok {
		s.mu.RUnlock()
		return 0, ErrNotFound
	}
	n := copy(buf, v)
	s.mu.RUnlock()
	return n, nil
}

// Delete removes key.
func (t *TBBKV) Delete(key uint64) error {
	s := t.shard(key)
	s.mu.Lock()
	_, ok := s.m[key]
	delete(s.m, key)
	s.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	return nil
}

// Len counts entries.
func (t *TBBKV) Len() int {
	n := 0
	for i := range t.shards {
		t.shards[i].mu.RLock()
		n += len(t.shards[i].m)
		t.shards[i].mu.RUnlock()
	}
	return n
}
