// Package kv implements the paper's shared-everything distributed key-value
// store (CXL-KV, §6.4) and its baselines.
//
// CXL-KV is a fixed-size latch-free hash index whose buckets are embedded
// references to key-value records; collisions chain records through each
// record's embedded next pointer. The three CXL-SHM capabilities §6.4 lists
// make it possible: frequent fine-grained shareable allocation, atomic
// in-place updates, and machine-independent pointers embeddable in other
// objects.
//
// Concurrency model: single-writer-multi-reader per partition. Keys are
// partitioned across writers by hash; readers from any client read the
// entire index directly. Writer failover (takeover of a dead writer's
// partition) is pure metadata — no data movement (§6.4's repartitioning
// claim).
package kv

import (
	"errors"
	"fmt"

	"repro/internal/layout"
	"repro/internal/shm"
)

// Store errors.
var (
	ErrNotFound   = errors.New("kv: key not found")
	ErrValueSize  = errors.New("kv: value exceeds the store's fixed value size")
	ErrNotOwner   = errors.New("kv: client does not own this key's partition")
	ErrChainBroke = errors.New("kv: chain traversal aborted (concurrent reclaim)")
)

// Index object data layout (word offsets within the data area):
//
//	[0 .. buckets)              bucket heads (embedded references)
//	[buckets+0]                 bucket count
//	[buckets+1]                 fixed value size in bytes
//	[buckets+2]                 number of writer partitions
//	[buckets+3]                 flags (hazard-protected reads)
//	[buckets+4 .. +4+writers)   writer lease words (owner client ID)
//
// Record object layout:
//
//	embed[0] = next record      (embedded reference)
//	word 1   = key
//	word 2.. = value bytes
const (
	recNextIdx   = 0
	recKeyWord   = 1
	recValueWord = 2
)

// Store is one client's handle onto a shared CXL-KV index.
type Store struct {
	c       *shm.Client
	index   layout.Addr
	root    layout.Addr // this client's counted reference to the index
	buckets int
	valSize int
	writers int
	// hazard enables the §5.4 hazard-era read protocol: readers publish
	// eras around traversals and deletes retire nodes instead of freeing
	// them, making concurrent read-during-delete safe.
	hazard bool
	// scratch is the reusable copy buffer for the non-zero-copy fallback
	// paths of View/Update (backends without direct byte access).
	scratch []byte
}

// storeFlagHazard marks the index as hazard-protected.
const storeFlagHazard = 1 << 0

// Create allocates a new index and publishes it at named-root slot rootSlot.
func Create(c *shm.Client, rootSlot, buckets, valueSize, writers int) (*Store, error) {
	if buckets < 1 || valueSize < 1 || writers < 1 {
		return nil, fmt.Errorf("kv: bad parameters buckets=%d valueSize=%d writers=%d",
			buckets, valueSize, writers)
	}
	dataBytes := (buckets + 4 + writers) * layout.WordBytes
	root, index, err := c.Malloc(dataBytes, buckets)
	if err != nil {
		return nil, err
	}
	c.StoreWord(index, buckets+0, uint64(buckets))
	c.StoreWord(index, buckets+1, uint64(valueSize))
	c.StoreWord(index, buckets+2, uint64(writers))
	c.StoreWord(index, buckets+3, 0)
	if err := c.PublishRoot(rootSlot, index); err != nil {
		return nil, err
	}
	return &Store{c: c, index: index, root: root,
		buckets: buckets, valSize: valueSize, writers: writers}, nil
}

// Open attaches to the index published at named-root slot rootSlot.
func Open(c *shm.Client, rootSlot int) (*Store, error) {
	root, index, err := c.OpenRoot(rootSlot)
	if err != nil {
		return nil, err
	}
	s := &Store{c: c, index: index, root: root}
	// The bucket count lives right after the embed area, whose size equals
	// the bucket count — read it from the object's meta instead.
	m := c.MetaOf(index)
	s.buckets = int(m.EmbedCnt)
	s.valSize = int(c.LoadWord(index, s.buckets+1))
	s.writers = int(c.LoadWord(index, s.buckets+2))
	s.hazard = c.LoadWord(index, s.buckets+3)&storeFlagHazard != 0
	return s, nil
}

// EnableHazardReads switches the store (all handles that Open it afterwards,
// plus this one) to the hazard-era protocol: reads publish hazard eras and
// deletes retire nodes for deferred reclamation, making concurrent
// read-during-delete safe (§5.4). Call on the creator's handle before
// sharing the store.
func (s *Store) EnableHazardReads() {
	s.hazard = true
	s.c.StoreWord(s.index, s.buckets+3, storeFlagHazard)
}

// HazardReads reports whether the store uses the hazard-era protocol.
func (s *Store) HazardReads() bool { return s.hazard }

// Maintain reclaims retired nodes that no live reader can still hold.
// Writers on hazard-protected stores should call it periodically; it is a
// no-op otherwise. Returns how many nodes were reclaimed.
func (s *Store) Maintain() int {
	if !s.hazard {
		return 0
	}
	return s.c.ReclaimRetired()
}

// Close releases this client's reference to the index.
func (s *Store) Close() error {
	if s.root == 0 {
		return nil
	}
	_, err := s.c.ReleaseRoot(s.root)
	s.root = 0
	return err
}

// IndexAddr returns the shared index address (diagnostics).
func (s *Store) IndexAddr() layout.Addr { return s.index }

// ValueSize returns the store's fixed value size.
func (s *Store) ValueSize() int { return s.valSize }

// Writers returns the partition count.
func (s *Store) Writers() int { return s.writers }

func hash64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

func (s *Store) bucketOf(key uint64) int { return int(hash64(key) % uint64(s.buckets)) }

// Partition computes the writer partition for key given the store shape.
// Partitioning is by bucket so an entire collision chain — including the
// bucket head's embedded reference — has exactly one writer (the
// single-writer-multi-reader rule of §4.3 applies to every reference word).
func Partition(key uint64, buckets, writers int) int {
	return int(hash64(key)%uint64(buckets)) % writers
}

// PartitionOf returns which writer partition owns key.
func (s *Store) PartitionOf(key uint64) int {
	return Partition(key, s.buckets, s.writers)
}

// AcquirePartition records this client as partition p's writer (lease word).
// Returns false if another live writer holds it; pass steal to take over a
// dead writer's partition — the §6.4 metadata-only repartitioning.
func (s *Store) AcquirePartition(p int, steal bool) bool {
	if p < 0 || p >= s.writers {
		return false
	}
	leaseIdx := s.buckets + 4 + p
	// Bounded load+CAS retry: a concurrent acquirer (or a recovery pass
	// rewriting index words) between the load and the CAS is a reload, not
	// a refusal. Only a live competing writer (without steal) refuses.
	for attempt := 0; attempt < 8; attempt++ {
		cur := s.c.LoadWord(s.index, leaseIdx)
		if cur != 0 && !steal {
			return false
		}
		if s.c.CASWord(s.index, leaseIdx, cur, uint64(s.c.ID())) {
			return true
		}
	}
	return false
}

// PartitionOwner reads partition p's lease word.
func (s *Store) PartitionOwner(p int) int {
	return int(s.c.LoadWord(s.index, s.buckets+4+p))
}

// checkOwner enforces the single-writer rule when leases are in use: if the
// key's partition has a recorded writer and it is not this client, the
// mutation is refused. Partitions with no lease (0) are unenforced — small
// tests and single-writer tools need no lease ceremony.
func (s *Store) checkOwner(key uint64) error {
	owner := s.PartitionOwner(s.PartitionOf(key))
	if owner != 0 && owner != s.c.ID() {
		return ErrNotOwner
	}
	return nil
}

// Put inserts or updates key. Updates are in-place (one of the §6.4
// enablers); inserts allocate a record and head-link it with one embedded
// reference change. The caller must be the key's partition writer
// (single-writer rule); when partition leases are acquired, this is
// enforced.
func (s *Store) Put(key uint64, val []byte) error {
	if len(val) > s.valSize {
		return ErrValueSize
	}
	if err := s.checkOwner(key); err != nil {
		return err
	}
	b := s.bucketOf(key)
	// Walk the chain for an existing record.
	if rec := s.find(key, b); rec != 0 {
		s.c.WriteData(rec, (recValueWord)*layout.WordBytes, val)
		return nil
	}
	// Insert at head.
	recBytes := (recValueWord)*layout.WordBytes + s.valSize
	root, rec, err := s.c.Malloc(recBytes, 1)
	if err != nil {
		return err
	}
	s.c.StoreWord(rec, recKeyWord, key)
	s.c.WriteData(rec, recValueWord*layout.WordBytes, val)
	head, err := s.c.LoadEmbed(s.index, b)
	if err != nil {
		return err
	}
	if head != 0 {
		if err := s.c.SetEmbed(rec, recNextIdx, head); err != nil {
			return err
		}
	}
	if err := s.c.ChangeEmbed(s.index, b, rec); err != nil {
		return err
	}
	// The bucket now holds the counted reference; drop ours.
	_, err = s.c.ReleaseRoot(root)
	return err
}

// find walks bucket b for key, returning the record address or 0. Reads are
// raw loads (no reference counting — §5.2's "further reading ... does not
// need to modify the reference count").
func (s *Store) find(key uint64, b int) layout.Addr {
	rec, err := s.c.LoadEmbed(s.index, b)
	if err != nil {
		return 0
	}
	for hops := 0; rec != 0 && hops <= s.buckets+1024; hops++ {
		if s.c.LoadWord(rec, recKeyWord) == key {
			return rec
		}
		rec = s.c.LoadWord(rec, recNextIdx)
	}
	return 0
}

// Get copies key's value into buf (which must be at least ValueSize bytes)
// and returns the number of bytes copied. Readers run from any client with
// no locks; deleted records are protected by the store's single-writer rule
// plus the era-based reclamation (a reader racing a delete re-validates the
// key after the copy, the simplified stand-in for the paper's hazard-era
// read protocol).
func (s *Store) Get(key uint64, buf []byte) (int, error) {
	b := s.bucketOf(key)
	if s.hazard {
		s.c.EnterRead()
		defer s.c.ExitRead()
	}
	for attempt := 0; attempt < 3; attempt++ {
		rec := s.find(key, b)
		if rec == 0 {
			return 0, ErrNotFound
		}
		n := s.valSize
		if n > len(buf) {
			n = len(buf)
		}
		s.c.ReadData(rec, recValueWord*layout.WordBytes, buf[:n])
		// Validate: record still allocated and still ours.
		if s.c.MetaOf(rec).Allocated() && s.c.LoadWord(rec, recKeyWord) == key {
			return n, nil
		}
	}
	return 0, ErrChainBroke
}

// View calls f with a zero-copy read view of key's value bytes — the
// record's device words aliased directly, no Go-heap copy (paper §3.1:
// data-plane reads are plain loads on the mapped memory). The view is
// valid only inside f; f must not retain it, must not write through it,
// and — like any optimistic lock-free read — may run more than once or
// observe a value that a concurrent delete then invalidates, in which
// case its result is discarded and the read retried. On hazard-protected
// stores the whole view runs under a published hazard era. Backends
// without direct byte access fall back to a copy into a reused scratch
// buffer, same contract.
func (s *Store) View(key uint64, f func(val []byte) error) error {
	b := s.bucketOf(key)
	if s.hazard {
		s.c.EnterRead()
		defer s.c.ExitRead()
	}
	for attempt := 0; attempt < 3; attempt++ {
		rec := s.find(key, b)
		if rec == 0 {
			return ErrNotFound
		}
		l, err := s.c.AcquireLease(rec)
		switch err {
		case nil:
		case shm.ErrNoDirectAccess:
			return s.viewCopy(key, b, f)
		case shm.ErrStaleReference:
			continue // reclaimed between find and lease; retry the walk
		default:
			return err // ErrLeaseAliased: nested view of the same record
		}
		off := recValueWord * layout.WordBytes
		ferr := f(l.Bytes()[off : off+s.valSize])
		// Validate after, exactly like Get: still allocated, still this key.
		ok := s.c.MetaOf(rec).Allocated() && s.c.LoadWord(rec, recKeyWord) == key
		s.c.ReleaseLease(l)
		if ok {
			return ferr
		}
	}
	return ErrChainBroke
}

// Update calls f with a mutable zero-copy view of key's value bytes and
// applies whatever f writes in place — the §6.4 atomic in-place update
// served through the data plane with no copy in either direction. The
// caller must be the key's partition writer (enforced when leases are in
// use); the single-writer rule is what makes the record stable under f,
// so no validation or retry is needed. The view is valid only inside f.
func (s *Store) Update(key uint64, f func(val []byte) error) error {
	if err := s.checkOwner(key); err != nil {
		return err
	}
	rec := s.find(key, s.bucketOf(key))
	if rec == 0 {
		return ErrNotFound
	}
	l, err := s.c.AcquireLease(rec)
	switch err {
	case nil:
	case shm.ErrNoDirectAccess:
		return s.updateCopy(rec, f)
	default:
		return err
	}
	defer s.c.ReleaseLease(l)
	off := recValueWord * layout.WordBytes
	return f(l.Bytes()[off : off+s.valSize])
}

// scratchBuf returns the store's reusable fallback copy buffer.
func (s *Store) scratchBuf() []byte {
	if s.scratch == nil {
		s.scratch = make([]byte, s.valSize)
	}
	return s.scratch
}

// viewCopy is View's fallback when the backend cannot alias memory: copy
// into the scratch buffer with Get's validate-after scheme, then call f.
// The caller already holds the hazard era when one is needed.
func (s *Store) viewCopy(key uint64, b int, f func(val []byte) error) error {
	buf := s.scratchBuf()
	for attempt := 0; attempt < 3; attempt++ {
		rec := s.find(key, b)
		if rec == 0 {
			return ErrNotFound
		}
		s.c.ReadData(rec, recValueWord*layout.WordBytes, buf)
		if s.c.MetaOf(rec).Allocated() && s.c.LoadWord(rec, recKeyWord) == key {
			return f(buf)
		}
	}
	return ErrChainBroke
}

// updateCopy is Update's fallback: read-modify-write through the scratch
// buffer. The single-writer rule keeps rec stable, as in Update.
func (s *Store) updateCopy(rec layout.Addr, f func(val []byte) error) error {
	buf := s.scratchBuf()
	s.c.ReadData(rec, recValueWord*layout.WordBytes, buf)
	if err := f(buf); err != nil {
		return err
	}
	s.c.WriteData(rec, recValueWord*layout.WordBytes, buf)
	return nil
}

// Delete removes key. Unlinking is one embedded-reference change on the
// predecessor (bucket head or previous record); the record's reference
// count reaching zero reclaims it and the cascade rebalances the successor
// count automatically.
func (s *Store) Delete(key uint64) error {
	if err := s.checkOwner(key); err != nil {
		return err
	}
	b := s.bucketOf(key)
	rec, err := s.c.LoadEmbed(s.index, b)
	if err != nil {
		return err
	}
	if rec == 0 {
		return ErrNotFound
	}
	if s.c.LoadWord(rec, recKeyWord) == key {
		return s.unlink(s.index, b, rec)
	}
	prev := rec
	rec = s.c.LoadWord(rec, recNextIdx)
	for hops := 0; rec != 0 && hops <= s.buckets+1024; hops++ {
		if s.c.LoadWord(rec, recKeyWord) == key {
			return s.unlink(prev, recNextIdx, rec)
		}
		prev = rec
		rec = s.c.LoadWord(rec, recNextIdx)
	}
	return ErrNotFound
}

// unlink removes rec, whose predecessor's embedded reference idx points at
// it. Hazard-protected stores retire the node (deferred reclamation, §5.4);
// otherwise it is reclaimed immediately.
func (s *Store) unlink(holder layout.Addr, idx int, rec layout.Addr) error {
	next := s.c.LoadWord(rec, recNextIdx)
	if s.hazard {
		if next == 0 {
			return s.c.RetireEmbed(holder, idx)
		}
		return s.c.ChangeEmbedRetire(holder, idx, next)
	}
	if next == 0 {
		return s.c.ClearEmbed(holder, idx)
	}
	return s.c.ChangeEmbed(holder, idx, next)
}

// Range calls f for every record (order unspecified) until f returns
// false. The value slice is reused between calls; copy it to keep it. Like
// Get, the walk is lock-free; on hazard-protected stores it runs under a
// published hazard era.
func (s *Store) Range(f func(key uint64, val []byte) bool) {
	if s.hazard {
		s.c.EnterRead()
		defer s.c.ExitRead()
	}
	buf := make([]byte, s.valSize)
	for b := 0; b < s.buckets; b++ {
		rec, _ := s.c.LoadEmbed(s.index, b)
		for hops := 0; rec != 0 && hops <= s.buckets+1024; hops++ {
			key := s.c.LoadWord(rec, recKeyWord)
			s.c.ReadData(rec, recValueWord*layout.WordBytes, buf)
			if s.c.MetaOf(rec).Allocated() { // validate before surfacing
				if !f(key, buf) {
					return
				}
			}
			rec = s.c.LoadWord(rec, recNextIdx)
		}
	}
}

// RangeBuckets walks the records of count consecutive buckets starting at
// bucket start (wrapping around the table), calling f until it returns
// false. It is the batch-scan primitive of the serving tier: a bounded
// window of the index walked lock-free, with the same validate-before-
// surfacing rule as Range. The value slice is reused between calls.
// Returns how many records f accepted.
func (s *Store) RangeBuckets(start, count int, f func(key uint64, val []byte) bool) int {
	if s.buckets == 0 || count <= 0 {
		return 0
	}
	if count > s.buckets {
		count = s.buckets
	}
	if s.hazard {
		s.c.EnterRead()
		defer s.c.ExitRead()
	}
	seen := 0
	buf := make([]byte, s.valSize)
	for i := 0; i < count; i++ {
		b := (start + i) % s.buckets
		rec, _ := s.c.LoadEmbed(s.index, b)
		for hops := 0; rec != 0 && hops <= s.buckets+1024; hops++ {
			key := s.c.LoadWord(rec, recKeyWord)
			s.c.ReadData(rec, recValueWord*layout.WordBytes, buf)
			if s.c.MetaOf(rec).Allocated() {
				if !f(key, buf) {
					return seen + 1
				}
				seen++
			}
			rec = s.c.LoadWord(rec, recNextIdx)
		}
	}
	return seen
}

// Buckets returns the index's bucket count (serving needs it to size scan
// windows and compute partitions on the driver side).
func (s *Store) Buckets() int { return s.buckets }

// Len counts records (diagnostic full walk).
func (s *Store) Len() int {
	n := 0
	for b := 0; b < s.buckets; b++ {
		rec, _ := s.c.LoadEmbed(s.index, b)
		for rec != 0 {
			n++
			rec = s.c.LoadWord(rec, recNextIdx)
		}
	}
	return n
}
