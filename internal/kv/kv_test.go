package kv_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/kv"
	"repro/internal/layout"
	"repro/internal/recovery"
	"repro/internal/shm"
)

func newPool(t *testing.T) *shm.Pool {
	t.Helper()
	p, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients: 8, NumSegments: 32, SegmentWords: 1 << 13, PageWords: 1 << 9,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func connect(t *testing.T, p *shm.Pool) *shm.Client {
	t.Helper()
	c, err := p.Connect()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustClean(t *testing.T, p *shm.Pool) *check.Result {
	t.Helper()
	res := check.Validate(p)
	if !res.Clean() {
		for _, is := range res.Issues {
			t.Errorf("validate: %s", is)
		}
		t.FailNow()
	}
	return res
}

func TestPutGetDeleteRoundTrip(t *testing.T) {
	p := newPool(t)
	c := connect(t, p)
	s, err := kv.Create(c, 0, 64, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)

	if _, err := s.Get(1, buf); err != kv.ErrNotFound {
		t.Fatalf("missing key: %v", err)
	}
	if err := s.Put(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	n, err := s.Get(1, buf)
	if err != nil || !bytes.Equal(buf[:3], []byte("one")) {
		t.Fatalf("get: %d %q %v", n, buf[:3], err)
	}
	// In-place update.
	if err := s.Put(1, []byte("ONE")); err != nil {
		t.Fatal(err)
	}
	s.Get(1, buf)
	if !bytes.Equal(buf[:3], []byte("ONE")) {
		t.Fatalf("update: %q", buf[:3])
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(1, buf); err != kv.ErrNotFound {
		t.Fatalf("after delete: %v", err)
	}
	if err := s.Delete(1); err != kv.ErrNotFound {
		t.Fatalf("double delete: %v", err)
	}
	mustClean(t, p)
}

func TestChainsAndCollisions(t *testing.T) {
	p := newPool(t)
	c := connect(t, p)
	// 4 buckets force heavy chaining with 200 keys.
	s, err := kv.Create(c, 0, 4, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 200; k++ {
		if err := s.Put(k, []byte(fmt.Sprintf("v%03d", k))); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	if s.Len() != 200 {
		t.Fatalf("len=%d, want 200", s.Len())
	}
	buf := make([]byte, 16)
	for k := uint64(0); k < 200; k++ {
		if _, err := s.Get(k, buf); err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
		if !bytes.Equal(buf[:4], []byte(fmt.Sprintf("v%03d", k))) {
			t.Fatalf("key %d: %q", k, buf[:4])
		}
	}
	// Delete every third key (head, middle, tail positions all occur).
	for k := uint64(0); k < 200; k += 3 {
		if err := s.Delete(k); err != nil {
			t.Fatalf("delete %d: %v", k, err)
		}
	}
	for k := uint64(0); k < 200; k++ {
		_, err := s.Get(k, buf)
		if k%3 == 0 && err != kv.ErrNotFound {
			t.Fatalf("deleted key %d still present: %v", k, err)
		}
		if k%3 != 0 && err != nil {
			t.Fatalf("surviving key %d lost: %v", k, err)
		}
	}
	mustClean(t, p)
}

func TestValueSizeEnforced(t *testing.T) {
	p := newPool(t)
	c := connect(t, p)
	s, _ := kv.Create(c, 0, 8, 8, 1)
	if err := s.Put(1, make([]byte, 9)); err != kv.ErrValueSize {
		t.Fatalf("oversize put: %v", err)
	}
}

func TestOpenSharesTheIndex(t *testing.T) {
	p := newPool(t)
	w := connect(t, p)
	r := connect(t, p)
	sw, err := kv.Create(w, 0, 32, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Put(7, []byte("from-w")); err != nil {
		t.Fatal(err)
	}
	sr, err := kv.Open(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sr.ValueSize() != 16 || sr.Writers() != 2 {
		t.Fatalf("opened store params: %d %d", sr.ValueSize(), sr.Writers())
	}
	buf := make([]byte, 16)
	if _, err := sr.Get(7, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:6], []byte("from-w")) {
		t.Fatalf("reader sees %q", buf[:6])
	}
	// Writer updates in place; reader observes without any coordination.
	if err := sw.Put(7, []byte("update")); err != nil {
		t.Fatal(err)
	}
	sr.Get(7, buf)
	if !bytes.Equal(buf[:6], []byte("update")) {
		t.Fatalf("reader sees stale %q", buf[:6])
	}
}

func TestStoreSurvivesAllClientsViaNamedRoot(t *testing.T) {
	p := newPool(t)
	svc, err := recovery.NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	w := connect(t, p)
	s, err := kv.Create(w, 3, 16, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(5, []byte("persist")); err != nil {
		t.Fatal(err)
	}
	// The creator dies; the named root must keep the whole store alive.
	if err := w.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RecoverClient(w.ID()); err != nil {
		t.Fatal(err)
	}
	res := check.Validate(p)
	if !res.Clean() {
		for _, is := range res.Issues {
			t.Errorf("validate: %s", is)
		}
		t.FailNow()
	}
	if res.AllocatedObjects != 2 { // index + 1 record
		t.Fatalf("allocated=%d, want index+record", res.AllocatedObjects)
	}
	// A fresh client re-opens the store and reads the data.
	c2 := connect(t, p)
	s2, err := kv.Open(c2, 3)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := s2.Get(5, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:7], []byte("persist")) {
		t.Fatalf("persisted value %q", buf[:7])
	}
	// Unpublish and close: everything reclaimed.
	if err := c2.UnpublishRoot(3); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	mon := recovery.NewMonitor(svc, recovery.MonitorConfig{})
	for i := 0; i < 3; i++ {
		mon.Tick()
	}
	res = mustClean(t, p)
	if res.AllocatedObjects != 0 {
		t.Fatalf("store leaked %d objects", res.AllocatedObjects)
	}
}

func TestWriterTakeoverIsMetadataOnly(t *testing.T) {
	p := newPool(t)
	svc, err := recovery.NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	w1 := connect(t, p)
	s1, err := kv.Create(w1, 0, 32, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.AcquirePartition(0, false) || !s1.AcquirePartition(1, false) {
		t.Fatal("creator could not acquire partitions")
	}
	for k := uint64(0); k < 50; k++ {
		if err := s1.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	// w1 dies; w2 takes over both partitions with no data movement.
	if err := w1.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RecoverClient(w1.ID()); err != nil {
		t.Fatal(err)
	}
	w2 := connect(t, p)
	s2, err := kv.Open(w2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2.AcquirePartition(0, false) {
		t.Fatal("lease of dead writer acquired without steal")
	}
	if !s2.AcquirePartition(0, true) || !s2.AcquirePartition(1, true) {
		t.Fatal("takeover failed")
	}
	if s2.PartitionOwner(0) != w2.ID() {
		t.Fatal("lease not transferred")
	}
	// All data still there; the new writer can update it.
	buf := make([]byte, 8)
	for k := uint64(0); k < 50; k++ {
		if _, err := s2.Get(k, buf); err != nil {
			t.Fatalf("get %d after takeover: %v", k, err)
		}
		if buf[0] != byte(k) {
			t.Fatalf("key %d corrupted", k)
		}
	}
	if err := s2.Put(7, []byte{200}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionLeaseEnforcesSingleWriter(t *testing.T) {
	p := newPool(t)
	w1 := connect(t, p)
	s1, err := kv.Create(w1, 0, 64, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Without leases, anyone may write (no enforcement ceremony).
	if err := s1.Put(1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	// w1 leases partition of key 1; a second writer must be refused there
	// but allowed on unleased partitions.
	p1 := s1.PartitionOf(1)
	if !s1.AcquirePartition(p1, false) {
		t.Fatal("lease failed")
	}
	w2 := connect(t, p)
	s2, err := kv.Open(w2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Put(1, []byte{2}); err != kv.ErrNotOwner {
		t.Fatalf("foreign write: %v, want ErrNotOwner", err)
	}
	if err := s2.Delete(1); err != kv.ErrNotOwner {
		t.Fatalf("foreign delete: %v, want ErrNotOwner", err)
	}
	// Find a key in the other (unleased) partition: allowed.
	other := uint64(0)
	for k := uint64(0); k < 1000; k++ {
		if s2.PartitionOf(k) != p1 {
			other = k
			break
		}
	}
	if err := s2.Put(other, []byte{3}); err != nil {
		t.Fatalf("write to unleased partition: %v", err)
	}
	// Takeover transfers write rights.
	if !s2.AcquirePartition(p1, true) {
		t.Fatal("steal failed")
	}
	if err := s2.Put(1, []byte{4}); err != nil {
		t.Fatalf("write after takeover: %v", err)
	}
	if err := s1.Put(1, []byte{5}); err != kv.ErrNotOwner {
		t.Fatalf("old owner write: %v, want ErrNotOwner", err)
	}
}

func TestRangeVisitsEverything(t *testing.T) {
	p := newPool(t)
	c := connect(t, p)
	s, err := kv.Create(c, 0, 8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]byte{}
	for k := uint64(0); k < 40; k++ {
		if err := s.Put(k, []byte{byte(k * 3)}); err != nil {
			t.Fatal(err)
		}
		want[k] = byte(k * 3)
	}
	got := map[uint64]byte{}
	s.Range(func(key uint64, val []byte) bool {
		got[key] = val[0]
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("range visited %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: %d, want %d", k, got[k], v)
		}
	}
	// Early termination.
	n := 0
	s.Range(func(uint64, []byte) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestTBBKVBasics(t *testing.T) {
	m := kv.NewTBBKV(8)
	if err := m.Put(1, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := m.Get(1, buf)
	if err != nil || n != 3 || !bytes.Equal(buf[:3], []byte("abc")) {
		t.Fatalf("get: %d %q %v", n, buf[:n], err)
	}
	if _, err := m.Get(2, buf); err != kv.ErrNotFound {
		t.Fatalf("missing: %v", err)
	}
	if err := m.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(1); err != kv.ErrNotFound {
		t.Fatalf("double delete: %v", err)
	}
	if m.Len() != 0 {
		t.Fatalf("len=%d", m.Len())
	}
}
