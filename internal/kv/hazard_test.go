package kv_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/kv"
)

func TestHazardFlagSharedThroughIndex(t *testing.T) {
	p := newPool(t)
	w := connect(t, p)
	s, err := kv.Create(w, 0, 64, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.HazardReads() {
		t.Fatal("hazard on by default")
	}
	s.EnableHazardReads()
	r := connect(t, p)
	sr, err := kv.Open(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sr.HazardReads() {
		t.Fatal("opened handle did not inherit the hazard flag")
	}
}

func TestHazardDeleteDefersAndMaintainReclaims(t *testing.T) {
	p := newPool(t)
	w := connect(t, p)
	s, err := kv.Create(w, 0, 16, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableHazardReads()
	for k := uint64(0); k < 50; k++ {
		if err := s.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	// A reader holds a hazard era across the deletes.
	r := connect(t, p)
	sr, err := kv.Open(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = sr
	r.EnterRead()
	for k := uint64(0); k < 50; k += 2 {
		if err := s.Delete(k); err != nil {
			t.Fatalf("delete %d: %v", k, err)
		}
	}
	if got := w.RetiredCount(); got != 25 {
		t.Fatalf("retired=%d, want 25", got)
	}
	if freed := s.Maintain(); freed != 0 {
		t.Fatalf("maintain reclaimed %d under a live reader", freed)
	}
	r.ExitRead()
	if freed := s.Maintain(); freed != 25 {
		t.Fatalf("maintain reclaimed %d after reader exit, want 25", freed)
	}
	// Deleted keys are gone; survivors intact.
	buf := make([]byte, 8)
	for k := uint64(0); k < 50; k++ {
		_, err := s.Get(k, buf)
		if k%2 == 0 && err != kv.ErrNotFound {
			t.Fatalf("deleted %d: %v", k, err)
		}
		if k%2 == 1 && (err != nil || buf[0] != byte(k)) {
			t.Fatalf("survivor %d: %v %v", k, buf[0], err)
		}
	}
	mustClean(t, p)
}

// TestHazardConcurrentReadDuringDelete hammers a hazard-protected store with
// concurrent readers while the writer deletes and reinserts: readers must
// never observe a record whose value contradicts its key (the use-after-free
// corruption hazard reads exist to prevent).
func TestHazardConcurrentReadDuringDelete(t *testing.T) {
	p := newPool(t)
	w := connect(t, p)
	s, err := kv.Create(w, 0, 32, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableHazardReads()
	const keys = 64
	for k := uint64(0); k < keys; k++ {
		if err := s.Put(k, []byte{byte(k), ^byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rc, err := p.Connect()
			if err != nil {
				errs <- err
				return
			}
			rs, err := kv.Open(rc, 0)
			if err != nil {
				errs <- err
				return
			}
			buf := make([]byte, 8)
			for i := uint64(0); !stop.Load(); i++ {
				k := (i*7 + uint64(g)) % keys
				n, err := rs.Get(k, buf)
				if err == kv.ErrNotFound || err == kv.ErrChainBroke {
					continue
				}
				if err != nil {
					errs <- err
					return
				}
				if n >= 2 && (buf[0] != byte(k) || buf[1] != ^byte(k)) {
					errs <- errValueCorruptf(k, buf[0], buf[1])
					return
				}
			}
			errs <- nil
		}(g)
	}
	// The single writer churns: delete + reinsert + periodic maintain.
	for round := 0; round < 300; round++ {
		k := uint64(round) % keys
		if err := s.Delete(k); err != nil && err != kv.ErrNotFound {
			t.Fatal(err)
		}
		if err := s.Put(k, []byte{byte(k), ^byte(k)}); err != nil {
			t.Fatal(err)
		}
		if round%20 == 0 {
			s.Maintain()
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Final maintain may still be gated by readers that exited without
	// ExitRead? No — readers never EnterRead explicitly here; Get pairs
	// Enter/Exit internally. Everything must reclaim.
	if freed := s.Maintain(); w.RetiredCount() != 0 && freed == 0 {
		t.Fatalf("retired nodes stuck: %d", w.RetiredCount())
	}
	mustClean(t, p)
}

type errValueCorrupt [3]byte

func (e errValueCorrupt) Error() string {
	return "kv: reader observed corrupt value"
}

func errValueCorruptf(k uint64, a, b byte) error { return errValueCorrupt{byte(k), a, b} }
