// Package rpc implements CXL-RPC, the paper's pass-by-reference RPC
// framework (§6.3): arguments and results live in the shared pool and only
// references move, through CXL-SHM transfer queues, eliminating
// serialization, copies, and the network stack.
//
// Protocol (§6.3.1): a call allocates an rpc_msg object with I+1 embedded
// references — the first I link the input arguments, the last links the
// output object — plus a function ID and a status word. The message
// reference is sent to the server, which accesses the arguments directly
// through the embedded references, writes the output in place, and flips
// the status word; the caller polls the status word (a remote memory load,
// the natural CXL completion mechanism).
package rpc

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/layout"
	"repro/internal/shm"
)

// Errors.
var (
	ErrNoHandler = errors.New("rpc: no handler registered for function")
	ErrClosed    = errors.New("rpc: endpoint closed")
	// ErrRemote reports that the handler (or dispatch) failed on the server;
	// the output object's contents are undefined.
	ErrRemote = errors.New("rpc: remote handler failed")
)

// Message data layout: words [0, argc] are the embedded references (argc
// args + 1 output), then function ID and status.
const (
	msgStatusPending = 0
	msgStatusDone    = 1
	msgStatusFailed  = 2 // handler error or unknown function
)

// Handler executes one function: args are the argument object addresses,
// out the output object address. It runs on the server's client, which it
// may use for direct data access.
type Handler func(c *shm.Client, args []layout.Addr, out layout.Addr) error

// Server serves calls from one peer over one queue (SPSC; use one Server
// per caller, as the paper's evaluation scales server/client pairs).
type Server struct {
	c        *shm.Client
	q        layout.Addr
	qRoot    layout.Addr
	handlers map[uint64]Handler
	closed   bool
}

// NewServer opens the queue from peer callerCID (which must have created it
// with NewCaller first).
func NewServer(c *shm.Client, callerCID int) (*Server, error) {
	block := c.FindQueueFrom(callerCID)
	if block == 0 {
		return nil, fmt.Errorf("rpc: no queue from caller %d", callerCID)
	}
	root, err := c.OpenQueue(block)
	if err != nil {
		return nil, err
	}
	return &Server{c: c, q: block, qRoot: root, handlers: map[uint64]Handler{}}, nil
}

// Register installs a handler for function id.
func (s *Server) Register(id uint64, h Handler) { s.handlers[id] = h }

// Poll processes at most one pending call; reports whether one was served.
func (s *Server) Poll() (bool, error) {
	if s.closed {
		return false, ErrClosed
	}
	msgRoot, msg, err := s.c.Receive(s.q)
	if err == shm.ErrQueueEmpty {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	m := s.c.MetaOf(msg)
	embeds := int(m.EmbedCnt) // argc + 1
	args := make([]layout.Addr, embeds-1)
	for i := range args {
		args[i], _ = s.c.LoadEmbed(msg, i)
	}
	out, _ := s.c.LoadEmbed(msg, embeds-1)
	fn := s.c.LoadWord(msg, embeds)

	h, ok := s.handlers[fn]
	if !ok {
		s.c.StoreWord(msg, embeds+1, msgStatusFailed) // unblock with an error
		if _, rerr := s.c.ReleaseRoot(msgRoot); rerr != nil {
			return true, rerr
		}
		return true, ErrNoHandler
	}
	herr := h(s.c, args, out)
	if herr != nil {
		s.c.StoreWord(msg, embeds+1, msgStatusFailed)
	} else {
		s.c.StoreWord(msg, embeds+1, msgStatusDone)
	}
	if _, err := s.c.ReleaseRoot(msgRoot); err != nil {
		return true, err
	}
	return true, herr
}

// Serve polls until stop returns true (busy polling, like the paper's
// server).
func (s *Server) Serve(stop func() bool) error {
	for !stop() {
		served, err := s.Poll()
		if err != nil {
			return err
		}
		if !served {
			runtime.Gosched()
		}
	}
	return nil
}

// Close releases the server's queue endpoint.
func (s *Server) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	_, err := s.c.ReleaseRoot(s.qRoot)
	return err
}

// Caller issues calls to one server.
type Caller struct {
	c      *shm.Client
	q      layout.Addr
	qRoot  layout.Addr
	closed bool
}

// NewCaller creates the call queue toward serverCID.
func NewCaller(c *shm.Client, serverCID, queueCap int) (*Caller, error) {
	root, block, err := c.CreateQueue(serverCID, queueCap)
	if err != nil {
		return nil, err
	}
	return &Caller{c: c, q: block, qRoot: root}, nil
}

// Arg allocates an argument object and fills it with data (zero-copy from
// the callee's perspective; the caller may also build arguments in place
// via the returned address and the client's data accessors).
func (cl *Caller) Arg(data []byte) (root, block layout.Addr, err error) {
	root, block, err = cl.c.Malloc(len(data), 0)
	if err != nil {
		return 0, 0, err
	}
	cl.c.WriteData(block, 0, data)
	return root, block, nil
}

// Call invokes function fn with the given argument objects, allocating an
// output object of outBytes. It blocks (polling) until the server completes
// and returns the output object's address along with the caller's counted
// reference to it; release the returned root when done with the output.
func (cl *Caller) Call(fn uint64, args []layout.Addr, outBytes int) (outRoot, out layout.Addr, err error) {
	if cl.closed {
		return 0, 0, ErrClosed
	}
	argc := len(args)
	// 1. allocate the message with argc+1 embedded references.
	msgBytes := (argc + 3) * layout.WordBytes
	msgRoot, msg, err := cl.c.Malloc(msgBytes, argc+1)
	if err != nil {
		return 0, 0, err
	}
	// 2. link the inputs.
	for i, a := range args {
		if err := cl.c.SetEmbed(msg, i, a); err != nil {
			return 0, 0, err
		}
	}
	// 3. allocate and link the output.
	outRoot, out, err = cl.c.Malloc(outBytes, 0)
	if err != nil {
		return 0, 0, err
	}
	if err := cl.c.SetEmbed(msg, argc, out); err != nil {
		return 0, 0, err
	}
	cl.c.StoreWord(msg, argc+1, fn)
	cl.c.StoreWord(msg, argc+2, msgStatusPending)
	// 4. send the message reference.
	for {
		err = cl.c.Send(cl.q, msg)
		if err != shm.ErrQueueFull {
			break
		}
		runtime.Gosched()
	}
	if err != nil {
		return 0, 0, err
	}
	// Completion: poll the status word in shared memory.
	var status uint64
	for {
		status = cl.c.LoadWord(msg, argc+2)
		if status != msgStatusPending {
			break
		}
		runtime.Gosched()
	}
	if _, err := cl.c.ReleaseRoot(msgRoot); err != nil {
		return 0, 0, err
	}
	if status == msgStatusFailed {
		// The caller still owns the (undefined) output object; release it.
		if _, err := cl.c.ReleaseRoot(outRoot); err != nil {
			return 0, 0, err
		}
		return 0, 0, ErrRemote
	}
	return outRoot, out, nil
}

// Pending is an in-flight asynchronous call (see CallStart).
type Pending struct {
	cl      *Caller
	msgRoot layout.Addr
	msg     layout.Addr
	outRoot layout.Addr
	out     layout.Addr
	argc    int
}

// CallStart issues a call without waiting for completion, enabling
// pipelining: several calls can be in flight up to the queue capacity.
// Complete each with Pending.Wait (in any order).
func (cl *Caller) CallStart(fn uint64, args []layout.Addr, outBytes int) (*Pending, error) {
	if cl.closed {
		return nil, ErrClosed
	}
	argc := len(args)
	msgBytes := (argc + 3) * layout.WordBytes
	msgRoot, msg, err := cl.c.Malloc(msgBytes, argc+1)
	if err != nil {
		return nil, err
	}
	for i, a := range args {
		if err := cl.c.SetEmbed(msg, i, a); err != nil {
			return nil, err
		}
	}
	outRoot, out, err := cl.c.Malloc(outBytes, 0)
	if err != nil {
		return nil, err
	}
	if err := cl.c.SetEmbed(msg, argc, out); err != nil {
		return nil, err
	}
	cl.c.StoreWord(msg, argc+1, fn)
	cl.c.StoreWord(msg, argc+2, msgStatusPending)
	for {
		err = cl.c.Send(cl.q, msg)
		if err != shm.ErrQueueFull {
			break
		}
		runtime.Gosched()
	}
	if err != nil {
		return nil, err
	}
	return &Pending{cl: cl, msgRoot: msgRoot, msg: msg, outRoot: outRoot, out: out, argc: argc}, nil
}

// Done reports (without blocking) whether the call has completed.
func (p *Pending) Done() bool {
	return p.cl.c.LoadWord(p.msg, p.argc+2) != msgStatusPending
}

// Wait blocks (polling) until the server completes, then returns the output
// object and the caller's counted reference to it. A handler failure
// surfaces as ErrRemote (the output is released).
func (p *Pending) Wait() (outRoot, out layout.Addr, err error) {
	for !p.Done() {
		runtime.Gosched()
	}
	status := p.cl.c.LoadWord(p.msg, p.argc+2)
	if _, err := p.cl.c.ReleaseRoot(p.msgRoot); err != nil {
		return 0, 0, err
	}
	if status == msgStatusFailed {
		if _, err := p.cl.c.ReleaseRoot(p.outRoot); err != nil {
			return 0, 0, err
		}
		return 0, 0, ErrRemote
	}
	return p.outRoot, p.out, nil
}

// Close releases the caller's queue endpoint.
func (cl *Caller) Close() error {
	if cl.closed {
		return nil
	}
	cl.closed = true
	_, err := cl.c.ReleaseRoot(cl.qRoot)
	return err
}
