package rpc_test

import (
	"bytes"
	"sync/atomic"
	"testing"

	"repro/internal/check"
	"repro/internal/layout"
	"repro/internal/rpc"
	"repro/internal/shm"
)

func newPool(t *testing.T) *shm.Pool {
	t.Helper()
	p, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients: 8, NumSegments: 32, SegmentWords: 1 << 13, PageWords: 1 << 9,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// echoUpper registers a handler that uppercases arg 0 into the output.
func echoUpper(c *shm.Client, args []layout.Addr, out layout.Addr) error {
	n := c.DataBytesOf(args[0])
	if m := c.DataBytesOf(out); m < n {
		n = m
	}
	buf := make([]byte, n)
	c.ReadData(args[0], 0, buf)
	for i, ch := range buf {
		if ch >= 'a' && ch <= 'z' {
			buf[i] = ch - 32
		}
	}
	c.WriteData(out, 0, buf)
	return nil
}

func TestCallRoundTrip(t *testing.T) {
	p := newPool(t)
	cc, _ := p.Connect()
	sc, _ := p.Connect()

	caller, err := rpc.NewCaller(cc, sc.ID(), 8)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := rpc.NewServer(sc, cc.ID())
	if err != nil {
		t.Fatal(err)
	}
	srv.Register(1, echoUpper)

	var stop atomic.Bool
	done := make(chan error, 1)
	go func() { done <- srv.Serve(stop.Load) }()

	argRoot, arg, err := caller.Arg([]byte("hello rdsm!!"))
	if err != nil {
		t.Fatal(err)
	}
	outRoot, out, err := caller.Call(1, []layout.Addr{arg}, 12)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 12)
	cc.ReadData(out, 0, got)
	if !bytes.Equal(got, []byte("HELLO RDSM!!")) {
		t.Fatalf("result %q", got)
	}

	stop.Store(true)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Cleanup: everything reclaimed.
	for _, r := range []layout.Addr{argRoot, outRoot} {
		if _, err := cc.ReleaseRoot(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := caller.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	p.SweepQueueRegistry()
	res := check.Validate(p)
	if !res.Clean() {
		for _, is := range res.Issues {
			t.Errorf("validate: %s", is)
		}
		t.FailNow()
	}
	if res.AllocatedObjects != 0 {
		t.Fatalf("RPC leaked %d objects", res.AllocatedObjects)
	}
}

func TestCallManySequential(t *testing.T) {
	p := newPool(t)
	cc, _ := p.Connect()
	sc, _ := p.Connect()
	caller, _ := rpc.NewCaller(cc, sc.ID(), 4)
	srv, _ := rpc.NewServer(sc, cc.ID())
	// sum: adds all bytes of arg 0 into out[0].
	srv.Register(2, func(c *shm.Client, args []layout.Addr, out layout.Addr) error {
		n := c.DataBytesOf(args[0])
		buf := make([]byte, n)
		c.ReadData(args[0], 0, buf)
		var sum byte
		for _, b := range buf {
			sum += b
		}
		c.WriteData(out, 0, []byte{sum})
		return nil
	})
	var stop atomic.Bool
	go srv.Serve(stop.Load)
	defer stop.Store(true)

	for i := 0; i < 100; i++ {
		argRoot, arg, err := caller.Arg([]byte{1, 2, 3, byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		outRoot, out, err := caller.Call(2, []layout.Addr{arg}, 1)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 1)
		cc.ReadData(out, 0, got)
		if got[0] != byte(6+i) {
			t.Fatalf("call %d: sum=%d", i, got[0])
		}
		cc.ReleaseRoot(argRoot)
		cc.ReleaseRoot(outRoot)
	}
}

func TestUnknownFunctionUnblocksCaller(t *testing.T) {
	p := newPool(t)
	cc, _ := p.Connect()
	sc, _ := p.Connect()
	caller, _ := rpc.NewCaller(cc, sc.ID(), 4)
	srv, _ := rpc.NewServer(sc, cc.ID())

	done := make(chan struct{})
	go func() {
		// The call must not hang even though no handler exists; it surfaces
		// the failure as ErrRemote.
		_, _, err := caller.Call(99, nil, 8)
		if err != rpc.ErrRemote {
			t.Errorf("call: %v, want ErrRemote", err)
		}
		close(done)
	}()
	for {
		served, err := srv.Poll()
		if served {
			if err != rpc.ErrNoHandler {
				t.Fatalf("poll err: %v", err)
			}
			break
		}
	}
	<-done
}

func TestHandlerErrorPropagatesToCaller(t *testing.T) {
	p := newPool(t)
	cc, _ := p.Connect()
	sc, _ := p.Connect()
	caller, _ := rpc.NewCaller(cc, sc.ID(), 4)
	srv, _ := rpc.NewServer(sc, cc.ID())
	srv.Register(5, func(c *shm.Client, args []layout.Addr, out layout.Addr) error {
		return rpc.ErrRemote // any handler failure
	})
	done := make(chan error, 1)
	go func() {
		_, _, err := caller.Call(5, nil, 8)
		done <- err
	}()
	for {
		served, _ := srv.Poll()
		if served {
			break
		}
	}
	if err := <-done; err != rpc.ErrRemote {
		t.Fatalf("caller got %v, want ErrRemote", err)
	}
	// No leaks: the failed call's message and output were released.
	caller.Close()
	srv.Close()
	p.SweepQueueRegistry()
	res := check.Validate(p)
	if res.AllocatedObjects != 0 {
		t.Fatalf("failed call leaked %d objects", res.AllocatedObjects)
	}
}

func TestPipelinedCalls(t *testing.T) {
	p := newPool(t)
	cc, _ := p.Connect()
	sc, _ := p.Connect()
	caller, _ := rpc.NewCaller(cc, sc.ID(), 8)
	srv, _ := rpc.NewServer(sc, cc.ID())
	srv.Register(3, func(c *shm.Client, args []layout.Addr, out layout.Addr) error {
		c.StoreWord(out, 0, c.LoadWord(args[0], 0)*2)
		return nil
	})
	var stop atomic.Bool
	go srv.Serve(stop.Load)
	defer stop.Store(true)

	// Issue 6 calls back-to-back, then collect out of order.
	const n = 6
	pend := make([]*rpc.Pending, n)
	argRoots := make([]layout.Addr, n)
	for i := 0; i < n; i++ {
		argRoot, arg, err := cc.Malloc(8, 0)
		if err != nil {
			t.Fatal(err)
		}
		cc.StoreWord(arg, 0, uint64(i+1))
		argRoots[i] = argRoot
		pend[i], err = caller.CallStart(3, []layout.Addr{arg}, 8)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := n - 1; i >= 0; i-- { // reverse completion order
		outRoot, out, err := pend[i].Wait()
		if err != nil {
			t.Fatal(err)
		}
		if got := cc.LoadWord(out, 0); got != uint64(2*(i+1)) {
			t.Fatalf("call %d: got %d", i, got)
		}
		cc.ReleaseRoot(outRoot)
		cc.ReleaseRoot(argRoots[i])
	}
	// Cleanup must leave nothing allocated.
	caller.Close()
	stop.Store(true)
	for {
		served, _ := srv.Poll()
		if !served {
			break
		}
	}
	srv.Close()
	p.SweepQueueRegistry()
	res := check.Validate(p)
	if res.AllocatedObjects != 0 {
		for _, is := range res.Issues {
			t.Logf("%s", is)
		}
		t.Fatalf("pipelined RPC leaked %d objects", res.AllocatedObjects)
	}
}

func TestSPSCRing(t *testing.T) {
	r := rpc.NewSPSCRing(4)
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty ring")
	}
	for i := uint64(1); i <= 4; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Push(5) {
		t.Fatal("push into full ring succeeded")
	}
	if r.Len() != 4 {
		t.Fatalf("len=%d", r.Len())
	}
	for i := uint64(1); i <= 4; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: %d %v", i, v, ok)
		}
	}
}

func TestSPSCRingConcurrent(t *testing.T) {
	r := rpc.NewSPSCRing(64)
	const n = 100000
	go func() {
		for i := uint64(1); i <= n; i++ {
			r.PushWait(i)
		}
	}()
	var prev uint64
	for i := 0; i < n; i++ {
		v := r.PopWait()
		if v != prev+1 {
			t.Fatalf("out of order: %d after %d", v, prev)
		}
		prev = v
	}
}
