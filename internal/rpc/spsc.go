package rpc

import (
	"runtime"
	"sync/atomic"
)

// SPSCRing is the lock-free single-producer-single-consumer ring used for
// the Figure 8 "pure SPSC reference exchange" upper bound: objects still
// come from the shared allocator, but ownership passes by convention (the
// producer keeps the counted reference and releases it after the consumer
// returns the token), so transfers carry none of CXL-SHM's reference-count
// maintenance cost. This is what CXL-RPC is reported to come within
// 46–53% of.
type SPSCRing struct {
	slots []atomic.Uint64
	mask  uint64
	head  atomic.Uint64 // consumer position
	tail  atomic.Uint64 // producer position
}

// NewSPSCRing creates a ring with capacity rounded up to a power of two.
func NewSPSCRing(capacity int) *SPSCRing {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &SPSCRing{slots: make([]atomic.Uint64, n), mask: uint64(n - 1)}
}

// Push enqueues v (must be nonzero); returns false when full.
func (r *SPSCRing) Push(v uint64) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() >= uint64(len(r.slots)) {
		return false
	}
	r.slots[tail&r.mask].Store(v)
	r.tail.Store(tail + 1)
	return true
}

// Pop dequeues; returns 0, false when empty.
func (r *SPSCRing) Pop() (uint64, bool) {
	head := r.head.Load()
	if head == r.tail.Load() {
		return 0, false
	}
	v := r.slots[head&r.mask].Load()
	r.head.Store(head + 1)
	return v, true
}

// PushWait spins until the push succeeds.
func (r *SPSCRing) PushWait(v uint64) {
	for !r.Push(v) {
		runtime.Gosched()
	}
}

// PopWait spins until a value arrives.
func (r *SPSCRing) PopWait() uint64 {
	for {
		if v, ok := r.Pop(); ok {
			return v
		}
		runtime.Gosched()
	}
}

// Len reports the queued element count.
func (r *SPSCRing) Len() int { return int(r.tail.Load() - r.head.Load()) }
