package recovery

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/layout"
	"repro/internal/obs"
)

// Monitor is the standalone failure detector (paper §3.2): it watches every
// client's heartbeat counter and, when one stalls, fences the client and
// runs recovery asynchronously — other clients never block on this. It also
// periodically rescans abandoned and POTENTIAL_LEAKING segments, reconciles
// the free-slot bitmap, and sweeps the queue registry.
//
// Heartbeat scanning is sharded: the device reads (status + beat per slot)
// run lock-free, split across goroutines for pools past 64 slots, and only
// the bookkeeping runs under the monitor lock. Recovery dispatch follows
// the service's executor pool: with one executor (the default) recoveries
// run inline on the monitor goroutine, exactly like the original shared
// goroutine; with more, each dead client is handed to its own goroutine
// (deduplicated while in flight) and up to Service.Workers() independent
// recoveries proceed concurrently. Dead-owner segment scans stay race-free
// either way — every one goes through the service's per-segment mutex (see
// internal/shm/scan.go's concurrency contract).
type Monitor struct {
	svc      *Service
	interval time.Duration
	// missed heartbeats (in intervals) before a client is declared dead.
	threshold int
	// execIDs marks the service's executor slots: skipped during heartbeat
	// scanning (idle pooled executors do not beat).
	execIDs map[int]bool

	mu       sync.Mutex
	lastBeat map[int]uint64
	seen     map[int]bool // cid has had lastBeat seeded this incarnation
	misses   map[int]int
	// firstMiss records when cid's heartbeat was first observed stalled
	// (unix ns) — the detection timepoint the recovery-time SLO is measured
	// from. Cleared when the beat advances.
	firstMiss  map[int]int64
	reports    []Report
	fences     []FenceRecord
	failures   []RecoveryFailure
	recoveries []RecoveryRecord
	// deadSeen marks dead clients whose fence has already been recorded, so
	// a client stuck in ClientDead (recovery erroring) yields one FenceRecord,
	// not one per tick. Cleared when the slot re-enters ClientAlive.
	deadSeen map[int]bool
	// backoff/nextTry implement exponential retry backoff (in ticks) for
	// clients whose recovery keeps failing.
	backoff map[int]int
	nextTry map[int]uint64
	// scanBackoff/scanNextTry do the same per segment for maintenance scans
	// that panic on damaged metadata: the scan is skipped until its retry
	// tick instead of panicking the monitor every interval.
	scanBackoff map[int]int
	scanNextTry map[int]uint64
	ticks       uint64
	// inflight marks clients whose recovery has been dispatched to a worker
	// goroutine and not yet recorded (concurrent dispatch mode only), so a
	// client is never recovered by two workers at once and ticks arriving
	// mid-recovery don't pile up duplicate dispatches.
	inflight map[int]bool
	// wg tracks dispatched recovery goroutines; Stop and Quiesce wait on it.
	wg sync.WaitGroup

	fsckEvery int
	fsckFn    func() (bool, error)

	// recoverFn performs one recovery attempt; defaults to the service's
	// RecoverClient. Tests override it to inject persistent failures.
	recoverFn func(cid int) (Report, error)

	stop chan struct{}
	done chan struct{}
}

// RecoveryFailure records one failed monitor duty — a recovery attempt, a
// maintenance scan, or an fsck pass; the monitor retries with exponential
// backoff and keeps every error here rather than swallowing it.
type RecoveryFailure struct {
	// Op names the duty that failed: "recovery", "scan", or "fsck".
	Op     string `json:"op"`
	Client int    `json:"client,omitempty"`
	// Segment is the scanned segment for Op=="scan" (-1 otherwise).
	Segment int       `json:"segment,omitempty"`
	Time    time.Time `json:"time"`
	Err     error     `json:"-"`
	Error   string    `json:"error"`
}

// FenceRecord describes one fencing decision the monitor acted on: who was
// fenced, when, why, and — for heartbeat timeouts — how many intervals the
// client had been silent.
type FenceRecord struct {
	Client int       `json:"client"`
	Time   time.Time `json:"time"`
	Reason string    `json:"reason"`
	Misses int       `json:"misses,omitempty"`
}

// RecoveryRecord describes one completed recovery: who was recovered, when
// it finished, and the detection-to-recovered duration (the SLO; zero when
// the death carried no detection stamp to measure from).
type RecoveryRecord struct {
	Client   int           `json:"client"`
	Time     time.Time     `json:"time"`
	Duration time.Duration `json:"detect_to_recovered_ns"`
}

// MonitorConfig tunes the monitor.
type MonitorConfig struct {
	// Interval between heartbeat checks (default 10ms).
	Interval time.Duration
	// Threshold is how many consecutive unchanged heartbeats declare a
	// client dead (default 3).
	Threshold int
	// FsckEvery, when positive, runs a repairing fsck every FsckEvery ticks
	// as a monitor duty (default 0: disabled — fsck stays an operator
	// action via cxlsnap/faultsim, and write counts stay deterministic).
	FsckEvery int
	// Fsck performs one fsck pass; required when FsckEvery > 0. It returns
	// whether the pool ended clean. Injected as a function so the recovery
	// package doesn't hard-depend on the checker (callers pass a closure
	// over check.Repair).
	Fsck func() (clean bool, err error)
}

// NewMonitor creates a monitor driving the given recovery service.
func NewMonitor(svc *Service, cfg MonitorConfig) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Millisecond
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	m := &Monitor{
		svc:         svc,
		interval:    cfg.Interval,
		threshold:   cfg.Threshold,
		lastBeat:    make(map[int]uint64),
		seen:        make(map[int]bool),
		misses:      make(map[int]int),
		firstMiss:   make(map[int]int64),
		deadSeen:    make(map[int]bool),
		backoff:     make(map[int]int),
		nextTry:     make(map[int]uint64),
		scanBackoff: make(map[int]int),
		scanNextTry: make(map[int]uint64),
		inflight:    make(map[int]bool),
		execIDs:     make(map[int]bool),
		fsckEvery:   cfg.FsckEvery,
		fsckFn:      cfg.Fsck,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	for _, id := range svc.ExecutorIDs() {
		m.execIDs[id] = true
	}
	m.recoverFn = func(cid int) (Report, error) { return svc.RecoverClient(cid) }
	return m
}

// Start launches the monitor goroutine.
func (m *Monitor) Start() {
	go m.run()
}

// Stop terminates the monitor and waits for it to finish, including any
// recovery workers still in flight.
func (m *Monitor) Stop() {
	close(m.stop)
	<-m.done
	m.wg.Wait()
}

// Quiesce waits for every dispatched recovery worker to finish and record
// its result. Tests driving Tick directly use it to observe a stable
// Recoveries()/Failures() state without stopping the monitor.
func (m *Monitor) Quiesce() { m.wg.Wait() }

// Reports returns the recoveries performed so far.
func (m *Monitor) Reports() []Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Report, len(m.reports))
	copy(out, m.reports)
	return out
}

// Fences returns every fencing decision the monitor has acted on, oldest
// first.
func (m *Monitor) Fences() []FenceRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]FenceRecord, len(m.fences))
	copy(out, m.fences)
	return out
}

// Failures returns every failed recovery attempt so far, oldest first.
func (m *Monitor) Failures() []RecoveryFailure {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]RecoveryFailure, len(m.failures))
	copy(out, m.failures)
	return out
}

// Recoveries returns every completed recovery so far, oldest first, each
// with its detection-to-recovered duration.
func (m *Monitor) Recoveries() []RecoveryRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]RecoveryRecord, len(m.recoveries))
	copy(out, m.recoveries)
	return out
}

// LastRecovery returns the most recent completed recovery, and false if
// none has completed yet.
func (m *Monitor) LastRecovery() (RecoveryRecord, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.recoveries) == 0 {
		return RecoveryRecord{}, false
	}
	return m.recoveries[len(m.recoveries)-1], true
}

// LastFence returns the most recent fence record, and false if no client has
// been fenced yet.
func (m *Monitor) LastFence() (FenceRecord, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.fences) == 0 {
		return FenceRecord{}, false
	}
	return m.fences[len(m.fences)-1], true
}

func (m *Monitor) run() {
	defer close(m.done)
	t := time.NewTicker(m.interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.Tick()
		}
	}
}

// beatObs is one slot's sharded-scan observation: status word, plus the
// heartbeat counter for live slots. cid 0 marks a skipped (executor) slot.
type beatObs struct {
	cid    int
	status uint64
	beat   uint64
}

// beatShard is the slot-range size one gather goroutine covers. Pools at
// or under one shard scan inline (no goroutines — keeps small-pool ticks
// deterministic and allocation-free); larger pools fan out.
const beatShard = 64

// gatherBeats reads every slot's status (and heartbeat, for live slots)
// without holding the monitor lock, sharded across goroutines for pools
// past beatShard slots. Device words are read once per tick; processing
// happens later under the lock against this stable snapshot.
func (m *Monitor) gatherBeats() []beatObs {
	p := m.svc.pool
	geo := p.Geometry()
	dev := p.Device()
	out := make([]beatObs, geo.MaxClients+1)
	scan := func(lo, hi int) {
		for cid := lo; cid <= hi; cid++ {
			if m.execIDs[cid] {
				continue
			}
			o := beatObs{cid: cid, status: p.ClientStatus(cid)}
			if o.status == layout.ClientAlive {
				o.beat = dev.Load(geo.ClientHeartbeatAddr(cid))
			}
			out[cid] = o
		}
	}
	if geo.MaxClients <= beatShard {
		scan(1, geo.MaxClients)
		return out
	}
	var wg sync.WaitGroup
	for lo := 1; lo <= geo.MaxClients; lo += beatShard {
		hi := lo + beatShard - 1
		if hi > geo.MaxClients {
			hi = geo.MaxClients
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			scan(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// Tick performs one round of failure detection and background maintenance.
// Exported so tests and benchmarks can drive the monitor deterministically.
func (m *Monitor) Tick() {
	p := m.svc.pool
	geo := p.Geometry()
	beats := m.gatherBeats()

	m.mu.Lock()
	defer m.mu.Unlock()

	p.Obs().Shard(0).Inc(obs.CtrMonitorTick)
	m.ticks++

	for _, o := range beats {
		if o.cid == 0 {
			continue
		}
		cid := o.cid
		switch o.status {
		case layout.ClientAlive:
			if m.deadSeen[cid] {
				// The slot was reused by a new incarnation; forget the old
				// one's fence and backoff bookkeeping.
				delete(m.deadSeen, cid)
				delete(m.backoff, cid)
				delete(m.nextTry, cid)
			}
			beat := o.beat
			if !m.seen[cid] {
				// First observation seeds the baseline without counting a
				// miss: a fresh client whose first beat happens to equal the
				// map's zero value must not accrue toward a spurious fence.
				m.seen[cid] = true
				m.lastBeat[cid] = beat
				m.misses[cid] = 0
				break
			}
			if beat == m.lastBeat[cid] {
				m.misses[cid]++
				if m.misses[cid] == 1 {
					m.firstMiss[cid] = time.Now().UnixNano()
				}
				if m.misses[cid] >= m.threshold {
					if err := p.MarkClientDeadDetected(cid, obs.FenceHeartbeat, m.firstMiss[cid]); err == nil {
						m.fences = append(m.fences, FenceRecord{
							Client: cid,
							Time:   time.Now(),
							Reason: obs.FenceHeartbeat.String(),
							Misses: m.misses[cid],
						})
						m.deadSeen[cid] = true
						m.recoverLocked(cid)
					}
				}
			} else {
				m.lastBeat[cid] = beat
				m.misses[cid] = 0
				delete(m.firstMiss, cid)
			}
		case layout.ClientDead:
			// Fenced elsewhere (explicit kill or clean close); the monitor
			// only owes it recovery. Record that it acted on the fence once —
			// a client stuck dead because recovery keeps failing must not
			// grow a fence record per tick.
			if !m.deadSeen[cid] {
				m.deadSeen[cid] = true
				m.fences = append(m.fences, FenceRecord{
					Client: cid,
					Time:   time.Now(),
					Reason: "found-dead",
				})
			}
			if m.ticks >= m.nextTry[cid] {
				m.recoverLocked(cid)
			}
		}
	}

	// Background maintenance: abandoned / flagged segments, dead huge
	// objects, stale queue registrations. Scans are panic-guarded: a scan
	// walking corrupted metadata surfaces as a RecoveryFailure with
	// per-segment backoff instead of killing the monitor goroutine.
	for seg := 0; seg < geo.NumSegments; seg++ {
		if m.ticks < m.scanNextTry[seg] {
			continue
		}
		st := p.SegState(seg)
		switch st.State {
		case layout.SegAbandoned:
			m.scanLocked(seg)
		case layout.SegHugeHead:
			if p.ClientDeadOrRecovered(int(st.CID)) {
				m.scanLocked(seg)
			}
		}
	}
	// Reconcile the free-slot bitmap with the authoritative status words:
	// heals the crash windows of half-finished claims and releases, so a
	// few ticks after any crash the bitmap is exact again.
	p.ReconcileSlotMap()
	p.SweepQueueRegistry()
	if m.fsckEvery > 0 && m.fsckFn != nil && m.ticks%uint64(m.fsckEvery) == 0 {
		m.fsckLocked()
	}
	// Heartbeat one executor so observers see the recovery plane alive;
	// borrowed, so an in-flight recovery worker never shares the client.
	exec := m.svc.borrowExec()
	exec.Heartbeat()
	m.svc.returnExec(exec)
}

// scanLocked runs one maintenance scan, converting a panic into a typed
// failure with exponential per-segment backoff and an EvRepairFailed trace.
// The scan borrows an executor (never sharing one with a recovery worker)
// and goes through the service's per-segment mutex.
func (m *Monitor) scanLocked(seg int) {
	exec := m.svc.borrowExec()
	defer m.svc.returnExec(exec)
	defer func() {
		pan := recover()
		if pan == nil {
			delete(m.scanBackoff, seg)
			delete(m.scanNextTry, seg)
			return
		}
		m.failures = append(m.failures, RecoveryFailure{
			Op: "scan", Segment: seg, Time: time.Now(),
			Error: fmt.Sprintf("scan of segment %d panicked: %v", seg, pan),
		})
		m.svc.pool.Obs().Trace(obs.Event{
			Type: obs.EvRepairFailed, Segment: seg, A: uint64(m.scanBackoff[seg]/2 + 1),
		})
		b := m.scanBackoff[seg] * 2
		if b == 0 {
			b = 2
		}
		if b > 64 {
			b = 64
		}
		m.scanBackoff[seg] = b
		m.scanNextTry[seg] = m.ticks + uint64(b)
	}()
	m.svc.scanSegment(exec, seg)
}

// fsckLocked runs the configured fsck duty, recording a panic or a dirty
// result as a typed failure.
func (m *Monitor) fsckLocked() {
	var clean bool
	var err error
	pan := func() (pan any) {
		defer func() { pan = recover() }()
		clean, err = m.fsckFn()
		return nil
	}()
	switch {
	case pan != nil:
		err = fmt.Errorf("fsck panicked: %v", pan)
	case err == nil && !clean:
		err = fmt.Errorf("fsck left the pool dirty")
	}
	if err == nil {
		return
	}
	m.failures = append(m.failures, RecoveryFailure{
		Op: "fsck", Segment: -1, Time: time.Now(), Err: err, Error: err.Error(),
	})
	m.svc.pool.Obs().Trace(obs.Event{Type: obs.EvRepairFailed, A: 1})
}

// recoverLocked runs (or dispatches) one recovery attempt. With a single
// executor it runs inline on the caller's goroutine, preserving the
// original deterministic tick behavior. With a pooled service, the attempt
// is handed to its own goroutine — bounded by the executor pool inside
// RecoverClient, deduplicated per client while in flight — and its result
// is recorded under the monitor lock when it lands, so Recoveries(),
// Failures(), and the backoff state stay coherent either way.
func (m *Monitor) recoverLocked(cid int) {
	if m.svc.Workers() > 1 {
		if m.inflight[cid] {
			return
		}
		m.inflight[cid] = true
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			r, err := m.recoverFn(cid)
			m.mu.Lock()
			defer m.mu.Unlock()
			delete(m.inflight, cid)
			m.recordLocked(cid, r, err)
		}()
		return
	}
	r, err := m.recoverFn(cid)
	m.recordLocked(cid, r, err)
}

// recordLocked books one finished recovery attempt; callers hold m.mu.
func (m *Monitor) recordLocked(cid int, r Report, err error) {
	if err != nil {
		m.failures = append(m.failures, RecoveryFailure{
			Op: "recovery", Client: cid, Segment: -1,
			Time: time.Now(), Err: err, Error: err.Error(),
		})
		n := 0
		for _, f := range m.failures {
			if f.Client == cid {
				n++
			}
		}
		m.svc.pool.Obs().Trace(obs.Event{
			Type: obs.EvRecoveryFailed, Client: cid, A: uint64(n),
		})
		b := m.backoff[cid] * 2
		if b == 0 {
			b = 2
		}
		if b > 64 {
			b = 64
		}
		m.backoff[cid] = b
		m.nextTry[cid] = m.ticks + uint64(b)
		return
	}
	m.reports = append(m.reports, r)
	m.recoveries = append(m.recoveries, RecoveryRecord{
		Client: cid, Time: time.Now(), Duration: r.Duration,
	})
	delete(m.lastBeat, cid)
	delete(m.seen, cid)
	delete(m.misses, cid)
	delete(m.firstMiss, cid)
	delete(m.backoff, cid)
	delete(m.nextTry, cid)
}
