package recovery

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/layout"
	"repro/internal/obs"
)

// Monitor is the standalone failure detector (paper §3.2): it watches every
// client's heartbeat counter and, when one stalls, fences the client and
// runs recovery asynchronously — other clients never block on this. It also
// periodically rescans abandoned and POTENTIAL_LEAKING segments and sweeps
// the queue registry.
//
// The monitor and the recovery service share one goroutine, which is what
// keeps scans of dead-owner segments race-free (see internal/shm/scan.go's
// concurrency contract).
type Monitor struct {
	svc      *Service
	interval time.Duration
	// missed heartbeats (in intervals) before a client is declared dead.
	threshold int

	mu       sync.Mutex
	lastBeat map[int]uint64
	seen     map[int]bool // cid has had lastBeat seeded this incarnation
	misses   map[int]int
	// firstMiss records when cid's heartbeat was first observed stalled
	// (unix ns) — the detection timepoint the recovery-time SLO is measured
	// from. Cleared when the beat advances.
	firstMiss  map[int]int64
	reports    []Report
	fences     []FenceRecord
	failures   []RecoveryFailure
	recoveries []RecoveryRecord
	// deadSeen marks dead clients whose fence has already been recorded, so
	// a client stuck in ClientDead (recovery erroring) yields one FenceRecord,
	// not one per tick. Cleared when the slot re-enters ClientAlive.
	deadSeen map[int]bool
	// backoff/nextTry implement exponential retry backoff (in ticks) for
	// clients whose recovery keeps failing.
	backoff map[int]int
	nextTry map[int]uint64
	// scanBackoff/scanNextTry do the same per segment for maintenance scans
	// that panic on damaged metadata: the scan is skipped until its retry
	// tick instead of panicking the monitor every interval.
	scanBackoff map[int]int
	scanNextTry map[int]uint64
	ticks       uint64

	fsckEvery int
	fsckFn    func() (bool, error)

	// recoverFn performs one recovery attempt; defaults to the service's
	// RecoverClient. Tests override it to inject persistent failures.
	recoverFn func(cid int) (Report, error)

	stop chan struct{}
	done chan struct{}
}

// RecoveryFailure records one failed monitor duty — a recovery attempt, a
// maintenance scan, or an fsck pass; the monitor retries with exponential
// backoff and keeps every error here rather than swallowing it.
type RecoveryFailure struct {
	// Op names the duty that failed: "recovery", "scan", or "fsck".
	Op     string `json:"op"`
	Client int    `json:"client,omitempty"`
	// Segment is the scanned segment for Op=="scan" (-1 otherwise).
	Segment int       `json:"segment,omitempty"`
	Time    time.Time `json:"time"`
	Err     error     `json:"-"`
	Error   string    `json:"error"`
}

// FenceRecord describes one fencing decision the monitor acted on: who was
// fenced, when, why, and — for heartbeat timeouts — how many intervals the
// client had been silent.
type FenceRecord struct {
	Client int       `json:"client"`
	Time   time.Time `json:"time"`
	Reason string    `json:"reason"`
	Misses int       `json:"misses,omitempty"`
}

// RecoveryRecord describes one completed recovery: who was recovered, when
// it finished, and the detection-to-recovered duration (the SLO; zero when
// the death carried no detection stamp to measure from).
type RecoveryRecord struct {
	Client   int           `json:"client"`
	Time     time.Time     `json:"time"`
	Duration time.Duration `json:"detect_to_recovered_ns"`
}

// MonitorConfig tunes the monitor.
type MonitorConfig struct {
	// Interval between heartbeat checks (default 10ms).
	Interval time.Duration
	// Threshold is how many consecutive unchanged heartbeats declare a
	// client dead (default 3).
	Threshold int
	// FsckEvery, when positive, runs a repairing fsck every FsckEvery ticks
	// as a monitor duty (default 0: disabled — fsck stays an operator
	// action via cxlsnap/faultsim, and write counts stay deterministic).
	FsckEvery int
	// Fsck performs one fsck pass; required when FsckEvery > 0. It returns
	// whether the pool ended clean. Injected as a function so the recovery
	// package doesn't hard-depend on the checker (callers pass a closure
	// over check.Repair).
	Fsck func() (clean bool, err error)
}

// NewMonitor creates a monitor driving the given recovery service.
func NewMonitor(svc *Service, cfg MonitorConfig) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Millisecond
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	m := &Monitor{
		svc:         svc,
		interval:    cfg.Interval,
		threshold:   cfg.Threshold,
		lastBeat:    make(map[int]uint64),
		seen:        make(map[int]bool),
		misses:      make(map[int]int),
		firstMiss:   make(map[int]int64),
		deadSeen:    make(map[int]bool),
		backoff:     make(map[int]int),
		nextTry:     make(map[int]uint64),
		scanBackoff: make(map[int]int),
		scanNextTry: make(map[int]uint64),
		fsckEvery:   cfg.FsckEvery,
		fsckFn:      cfg.Fsck,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	m.recoverFn = func(cid int) (Report, error) { return svc.RecoverClient(cid) }
	return m
}

// Start launches the monitor goroutine.
func (m *Monitor) Start() {
	go m.run()
}

// Stop terminates the monitor and waits for it to finish.
func (m *Monitor) Stop() {
	close(m.stop)
	<-m.done
}

// Reports returns the recoveries performed so far.
func (m *Monitor) Reports() []Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Report, len(m.reports))
	copy(out, m.reports)
	return out
}

// Fences returns every fencing decision the monitor has acted on, oldest
// first.
func (m *Monitor) Fences() []FenceRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]FenceRecord, len(m.fences))
	copy(out, m.fences)
	return out
}

// Failures returns every failed recovery attempt so far, oldest first.
func (m *Monitor) Failures() []RecoveryFailure {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]RecoveryFailure, len(m.failures))
	copy(out, m.failures)
	return out
}

// Recoveries returns every completed recovery so far, oldest first, each
// with its detection-to-recovered duration.
func (m *Monitor) Recoveries() []RecoveryRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]RecoveryRecord, len(m.recoveries))
	copy(out, m.recoveries)
	return out
}

// LastRecovery returns the most recent completed recovery, and false if
// none has completed yet.
func (m *Monitor) LastRecovery() (RecoveryRecord, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.recoveries) == 0 {
		return RecoveryRecord{}, false
	}
	return m.recoveries[len(m.recoveries)-1], true
}

// LastFence returns the most recent fence record, and false if no client has
// been fenced yet.
func (m *Monitor) LastFence() (FenceRecord, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.fences) == 0 {
		return FenceRecord{}, false
	}
	return m.fences[len(m.fences)-1], true
}

func (m *Monitor) run() {
	defer close(m.done)
	t := time.NewTicker(m.interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.Tick()
		}
	}
}

// Tick performs one round of failure detection and background maintenance.
// Exported so tests and benchmarks can drive the monitor deterministically.
func (m *Monitor) Tick() {
	p := m.svc.pool
	geo := p.Geometry()
	dev := p.Device()
	self := m.svc.exec.ID()

	m.mu.Lock()
	defer m.mu.Unlock()

	p.Obs().Shard(0).Inc(obs.CtrMonitorTick)
	m.ticks++

	for cid := 1; cid <= geo.MaxClients; cid++ {
		if cid == self {
			continue
		}
		status := p.ClientStatus(cid)
		switch status {
		case layout.ClientAlive:
			if m.deadSeen[cid] {
				// The slot was reused by a new incarnation; forget the old
				// one's fence and backoff bookkeeping.
				delete(m.deadSeen, cid)
				delete(m.backoff, cid)
				delete(m.nextTry, cid)
			}
			beat := dev.Load(geo.ClientHeartbeatAddr(cid))
			if !m.seen[cid] {
				// First observation seeds the baseline without counting a
				// miss: a fresh client whose first beat happens to equal the
				// map's zero value must not accrue toward a spurious fence.
				m.seen[cid] = true
				m.lastBeat[cid] = beat
				m.misses[cid] = 0
				break
			}
			if beat == m.lastBeat[cid] {
				m.misses[cid]++
				if m.misses[cid] == 1 {
					m.firstMiss[cid] = time.Now().UnixNano()
				}
				if m.misses[cid] >= m.threshold {
					if err := p.MarkClientDeadDetected(cid, obs.FenceHeartbeat, m.firstMiss[cid]); err == nil {
						m.fences = append(m.fences, FenceRecord{
							Client: cid,
							Time:   time.Now(),
							Reason: obs.FenceHeartbeat.String(),
							Misses: m.misses[cid],
						})
						m.deadSeen[cid] = true
						m.recoverLocked(cid)
					}
				}
			} else {
				m.lastBeat[cid] = beat
				m.misses[cid] = 0
				delete(m.firstMiss, cid)
			}
		case layout.ClientDead:
			// Fenced elsewhere (explicit kill or clean close); the monitor
			// only owes it recovery. Record that it acted on the fence once —
			// a client stuck dead because recovery keeps failing must not
			// grow a fence record per tick.
			if !m.deadSeen[cid] {
				m.deadSeen[cid] = true
				m.fences = append(m.fences, FenceRecord{
					Client: cid,
					Time:   time.Now(),
					Reason: "found-dead",
				})
			}
			if m.ticks >= m.nextTry[cid] {
				m.recoverLocked(cid)
			}
		}
	}

	// Background maintenance: abandoned / flagged segments, dead huge
	// objects, stale queue registrations. Scans are panic-guarded: a scan
	// walking corrupted metadata surfaces as a RecoveryFailure with
	// per-segment backoff instead of killing the monitor goroutine.
	for seg := 0; seg < geo.NumSegments; seg++ {
		if m.ticks < m.scanNextTry[seg] {
			continue
		}
		st := p.SegState(seg)
		switch st.State {
		case layout.SegAbandoned:
			m.scanLocked(seg)
		case layout.SegHugeHead:
			if p.ClientDeadOrRecovered(int(st.CID)) {
				m.scanLocked(seg)
			}
		}
	}
	p.SweepQueueRegistry()
	if m.fsckEvery > 0 && m.fsckFn != nil && m.ticks%uint64(m.fsckEvery) == 0 {
		m.fsckLocked()
	}
	m.svc.exec.Heartbeat()
}

// scanLocked runs one maintenance scan, converting a panic into a typed
// failure with exponential per-segment backoff and an EvRepairFailed trace.
func (m *Monitor) scanLocked(seg int) {
	defer func() {
		pan := recover()
		if pan == nil {
			delete(m.scanBackoff, seg)
			delete(m.scanNextTry, seg)
			return
		}
		m.failures = append(m.failures, RecoveryFailure{
			Op: "scan", Segment: seg, Time: time.Now(),
			Error: fmt.Sprintf("scan of segment %d panicked: %v", seg, pan),
		})
		m.svc.pool.Obs().Trace(obs.Event{
			Type: obs.EvRepairFailed, Segment: seg, A: uint64(m.scanBackoff[seg]/2 + 1),
		})
		b := m.scanBackoff[seg] * 2
		if b == 0 {
			b = 2
		}
		if b > 64 {
			b = 64
		}
		m.scanBackoff[seg] = b
		m.scanNextTry[seg] = m.ticks + uint64(b)
	}()
	m.svc.exec.ScanSegment(seg, true)
}

// fsckLocked runs the configured fsck duty, recording a panic or a dirty
// result as a typed failure.
func (m *Monitor) fsckLocked() {
	var clean bool
	var err error
	pan := func() (pan any) {
		defer func() { pan = recover() }()
		clean, err = m.fsckFn()
		return nil
	}()
	switch {
	case pan != nil:
		err = fmt.Errorf("fsck panicked: %v", pan)
	case err == nil && !clean:
		err = fmt.Errorf("fsck left the pool dirty")
	}
	if err == nil {
		return
	}
	m.failures = append(m.failures, RecoveryFailure{
		Op: "fsck", Segment: -1, Time: time.Now(), Err: err, Error: err.Error(),
	})
	m.svc.pool.Obs().Trace(obs.Event{Type: obs.EvRepairFailed, A: 1})
}

func (m *Monitor) recoverLocked(cid int) {
	r, err := m.recoverFn(cid)
	if err != nil {
		m.failures = append(m.failures, RecoveryFailure{
			Op: "recovery", Client: cid, Segment: -1,
			Time: time.Now(), Err: err, Error: err.Error(),
		})
		n := 0
		for _, f := range m.failures {
			if f.Client == cid {
				n++
			}
		}
		m.svc.pool.Obs().Trace(obs.Event{
			Type: obs.EvRecoveryFailed, Client: cid, A: uint64(n),
		})
		b := m.backoff[cid] * 2
		if b == 0 {
			b = 2
		}
		if b > 64 {
			b = 64
		}
		m.backoff[cid] = b
		m.nextTry[cid] = m.ticks + uint64(b)
		return
	}
	m.reports = append(m.reports, r)
	m.recoveries = append(m.recoveries, RecoveryRecord{
		Client: cid, Time: time.Now(), Duration: r.Duration,
	})
	delete(m.lastBeat, cid)
	delete(m.seen, cid)
	delete(m.misses, cid)
	delete(m.firstMiss, cid)
	delete(m.backoff, cid)
	delete(m.nextTry, cid)
}
