package recovery_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/shm"
)

func newTestPool(t *testing.T) *shm.Pool {
	t.Helper()
	p, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients:   8,
		NumSegments:  16,
		SegmentWords: 1 << 13,
		PageWords:    1 << 9,
		MaxQueues:    8,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func connect(t *testing.T, p *shm.Pool) *shm.Client {
	t.Helper()
	c, err := p.Connect()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustClean(t *testing.T, p *shm.Pool, context string) *check.Result {
	t.Helper()
	res := check.Validate(p)
	if !res.Clean() {
		for _, is := range res.Issues {
			t.Errorf("[%s] %s", context, is)
		}
		t.Fatalf("[%s] validation failed with %d issues", context, len(res.Issues))
	}
	return res
}

func TestRecoverIdleClient(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	svc, err := recovery.NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	r, err := svc.RecoverClient(c.ID())
	if err != nil {
		t.Fatal(err)
	}
	if r.SweptRoots != 0 || r.RedoNeeded {
		t.Fatalf("idle recovery report: %+v", r)
	}
	if p.ClientStatus(c.ID()) != layout.ClientRecovered {
		t.Fatal("client not marked recovered")
	}
	mustClean(t, p, "idle")
	// Slot must be reusable.
	c2 := connect(t, p)
	if _, _, err := c2.Malloc(64, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverClientHoldingObjects(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	svc, err := recovery.NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if _, _, err := c.Malloc(48, 0); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	r, err := svc.RecoverClient(c.ID())
	if err != nil {
		t.Fatal(err)
	}
	if r.SweptRoots != n {
		t.Fatalf("swept %d roots, want %d", r.SweptRoots, n)
	}
	res := mustClean(t, p, "holder")
	if res.AllocatedObjects != 0 {
		t.Fatalf("%d objects leaked", res.AllocatedObjects)
	}
	if res.SegmentsActive != 0 || res.SegmentsOther != 0 {
		t.Fatalf("segments not reclaimed: active=%d other=%d",
			res.SegmentsActive, res.SegmentsOther)
	}

	// The recovery lifecycle must show up in the pool's observability layer:
	// the fence, the recovery pass bracket, and the root sweeps.
	want := map[obs.EventType]bool{
		obs.EvClientFenced:     false,
		obs.EvRecoveryStarted:  false,
		obs.EvRecoveryFinished: false,
	}
	var finished obs.Event
	for _, e := range p.Obs().Tracer().Events() {
		if _, ok := want[e.Type]; ok && e.Client == c.ID() {
			want[e.Type] = true
			if e.Type == obs.EvRecoveryFinished {
				finished = e
			}
		}
	}
	for ty, seen := range want {
		if !seen {
			t.Errorf("no %v trace event for client %d", ty, c.ID())
		}
	}
	if finished.A != uint64(r.Reclaimed) || finished.B != uint64(r.SweptRoots) {
		t.Errorf("finish event payload (reclaimed=%d swept=%d) != report (%d, %d)",
			finished.A, finished.B, r.Reclaimed, r.SweptRoots)
	}
	snap := p.Obs().Snapshot()
	if got := snap.Counters[obs.CtrRootSwept.Name()]; got != n {
		t.Errorf("rootrefs_swept = %d, want %d", got, n)
	}
	if snap.Counters[obs.CtrRecoveryPass.Name()] == 0 ||
		snap.Counters[obs.CtrClientFenced.Name()] == 0 {
		t.Errorf("recovery/fence counters empty: %+v", snap.Counters)
	}
}

func TestSharedObjectSurvivesOwnerCrash(t *testing.T) {
	p := newTestPool(t)
	a := connect(t, p)
	b := connect(t, p)
	svc, err := recovery.NewService(p)
	if err != nil {
		t.Fatal(err)
	}

	// A allocates and transfers a reference to B via a queue.
	qRootA, q, err := a.CreateQueue(b.ID(), 4)
	if err != nil {
		t.Fatal(err)
	}
	qRootB, err := b.OpenQueue(q)
	if err != nil {
		t.Fatal(err)
	}
	rootA, obj, err := a.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	a.WriteData(obj, 0, []byte("survives"))
	if err := a.Send(q, obj); err != nil {
		t.Fatal(err)
	}
	rootB, got, err := b.Receive(q)
	if err != nil {
		t.Fatal(err)
	}
	_ = rootA
	_ = qRootA

	// A crashes without releasing anything.
	if err := a.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RecoverClient(a.ID()); err != nil {
		t.Fatal(err)
	}

	// B's reference must still be valid — no double free, no wild pointer.
	buf := make([]byte, 8)
	b.ReadData(got, 0, buf)
	if string(buf) != "survives" {
		t.Fatalf("object corrupted after owner crash: %q", buf)
	}
	if hdr := b.HeaderOf(got); hdr.RefCnt != 1 {
		t.Fatalf("ref_cnt=%d after recovery, want 1 (B only)", hdr.RefCnt)
	}
	// B releases: the object (in A's abandoned segment) must be reclaimed.
	if freed, err := b.ReleaseRoot(rootB); err != nil || !freed {
		t.Fatalf("B release: freed=%v err=%v", freed, err)
	}
	if _, err := b.ReleaseRoot(qRootB); err != nil {
		t.Fatal(err)
	}
	// Background maintenance reclaims A's abandoned segments.
	mon := recovery.NewMonitor(svc, recovery.MonitorConfig{})
	for i := 0; i < 3; i++ {
		mon.Tick()
	}
	res := mustClean(t, p, "survivor")
	if res.AllocatedObjects != 0 {
		t.Fatalf("%d objects leaked", res.AllocatedObjects)
	}
	if res.SegmentsOther != 0 {
		t.Fatalf("%d segments stuck outside free/active", res.SegmentsOther)
	}
}

// TestInFlightReferenceSurvivesSenderDeath is the §5.2 ambiguity the queue
// protocol resolves: the sender dies right after sending, recovery runs
// *before* the receiver receives — and the reference must still arrive
// intact, because the queue (not the sender) owns in-flight references.
func TestInFlightReferenceSurvivesSenderDeath(t *testing.T) {
	p := newTestPool(t)
	sender := connect(t, p)
	receiver := connect(t, p)
	svc, err := recovery.NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	_, q, err := sender.CreateQueue(receiver.ID(), 4)
	if err != nil {
		t.Fatal(err)
	}
	qRootB, err := receiver.OpenQueue(q)
	if err != nil {
		t.Fatal(err)
	}
	rootS, obj, err := sender.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	sender.WriteData(obj, 0, []byte("in-flight"))
	if err := sender.Send(q, obj); err != nil {
		t.Fatal(err)
	}
	// Sender dies immediately; recovery runs before any receive.
	if err := sender.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RecoverClient(sender.ID()); err != nil {
		t.Fatal(err)
	}
	// The receiver still gets the reference, exactly once.
	rootR, got, err := receiver.Receive(q)
	if err != nil {
		t.Fatalf("receive after sender recovery: %v", err)
	}
	buf := make([]byte, 9)
	receiver.ReadData(got, 0, buf)
	if string(buf) != "in-flight" {
		t.Fatalf("payload %q", buf)
	}
	if _, _, err := receiver.Receive(q); err != shm.ErrQueueEmpty {
		t.Fatalf("second receive: %v (exactly-once violated)", err)
	}
	_ = rootS
	if freed, err := receiver.ReleaseRoot(rootR); err != nil || !freed {
		t.Fatalf("freed=%v err=%v", freed, err)
	}
	if _, err := receiver.ReleaseRoot(qRootB); err != nil {
		t.Fatal(err)
	}
	mon := recovery.NewMonitor(svc, recovery.MonitorConfig{})
	for i := 0; i < 4; i++ {
		mon.Tick()
	}
	res := mustClean(t, p, "in-flight")
	if res.AllocatedObjects != 0 {
		t.Fatalf("%d objects leaked", res.AllocatedObjects)
	}
}

// scenario runs a deterministic workload in which `x` (the injected crasher)
// exercises every crash point: allocation (small, embedded, huge), clone and
// release, embedded-reference change, cascading frees, queue send and
// receive, and cross-client frees. Roots held by `o` (the survivor) are
// returned for cleanup.
func scenario(t *testing.T, x, o *shm.Client) (oRoots []layout.Addr) {
	t.Helper()
	must := func(err error) {
		if err != nil {
			t.Fatalf("scenario: %v", err)
		}
	}

	// Plain allocations, clone, release.
	r1, _, err := x.Malloc(64, 0)
	must(err)
	x.CloneRoot(r1)
	_, err = x.ReleaseRoot(r1)
	must(err)
	_, err = x.ReleaseRoot(r1)
	must(err)

	// Huge object.
	rh, _, err := x.Malloc(96*1024, 0) // 1.5 segments of 64 KiB
	must(err)
	_, err = x.ReleaseRoot(rh)
	must(err)

	// Embedded references with a deep cascade.
	rp, parent, err := x.Malloc(64, 2)
	must(err)
	rc1, ch1, err := x.Malloc(32, 0)
	must(err)
	must(x.SetEmbed(parent, 0, ch1))
	_, err = x.ReleaseRoot(rc1)
	must(err)
	rc2, ch2, err := x.Malloc(32, 1)
	must(err)
	rg, gch, err := x.Malloc(16, 0)
	must(err)
	must(x.SetEmbed(ch2, 0, gch))
	_, err = x.ReleaseRoot(rg)
	must(err)
	must(x.SetEmbed(parent, 1, ch2))
	_, err = x.ReleaseRoot(rc2)
	must(err)
	ry, y, err := x.Malloc(32, 0)
	must(err)
	must(x.ChangeEmbed(parent, 0, y)) // frees ch1 through the change path
	_, err = x.ReleaseRoot(ry)
	must(err)
	_, err = x.ReleaseRoot(rp) // cascade: parent -> {y, ch2 -> gch}
	must(err)

	// Queue, x as sender.
	qr, q, err := x.CreateQueue(o.ID(), 4)
	must(err)
	oq, err := o.OpenQueue(q)
	must(err)
	oRoots = append(oRoots, oq)
	ro1, o1, err := x.Malloc(64, 0)
	must(err)
	must(x.Send(q, o1))
	_, err = x.ReleaseRoot(ro1)
	must(err)
	ro2, o2, err := x.Malloc(64, 0)
	must(err)
	must(x.Send(q, o2))
	_, err = x.ReleaseRoot(ro2)
	must(err)
	rb, _, err := o.Receive(q)
	must(err)
	oRoots = append(oRoots, rb)

	// Batched send/receive on the same queue: the per-slot crash points fire
	// once per element, but head/tail publish only once per batch, so a crash
	// mid-batch strands a different prefix than the single-shot paths.
	var batch, batchRoots []layout.Addr
	for i := 0; i < 3; i++ {
		r, b, err := x.Malloc(64, 0)
		must(err)
		batch = append(batch, b)
		batchRoots = append(batchRoots, r)
	}
	n, err := x.SendBatch(q, batch)
	must(err)
	if n != len(batch) {
		t.Fatalf("scenario: short batch send %d of %d", n, len(batch))
	}
	for _, r := range batchRoots { // slots own the references now
		_, err = x.ReleaseRoot(r)
		must(err)
	}
	// o2 is still queued ahead of the batch; take three in batches (the
	// cached-tail shadow may serve a short first batch) so one batched
	// message stays in flight for recovery to deal with.
	for got := 0; got < 3; {
		broots, _, err := o.ReceiveBatch(q, 3-got)
		must(err)
		if len(broots) == 0 {
			t.Fatal("scenario: batch receive made no progress")
		}
		got += len(broots)
		oRoots = append(oRoots, broots...)
	}
	_, err = x.ReleaseRoot(qr) // x drops the queue; o2 still in flight
	must(err)

	// Queue, x as receiver.
	qr2, q2, err := o.CreateQueue(x.ID(), 4)
	must(err)
	oRoots = append(oRoots, qr2)
	xq, err := x.OpenQueue(q2)
	must(err)
	ro3, o3, err := o.Malloc(64, 0)
	must(err)
	must(o.Send(q2, o3))
	_, err = o.ReleaseRoot(ro3)
	must(err)
	rx, _, err := x.Receive(q2)
	must(err)
	_, err = x.ReleaseRoot(rx)
	must(err)
	_, err = x.ReleaseRoot(xq)
	must(err)

	// Cross-client free: x performs the last release of o's object.
	ro4, o4, err := o.Malloc(64, 0)
	must(err)
	xr4, err := x.OpenQueue(o4)
	must(err)
	_, err = o.ReleaseRoot(ro4)
	must(err)
	_, err = x.ReleaseRoot(xr4) // frees into o's segment: client_free path
	must(err)

	return oRoots
}

// finishAndValidate recovers the crashed client, lets the survivor drop its
// roots, runs background maintenance, and asserts the pool is completely
// clean: zero allocated objects, zero leaked segments.
func finishAndValidate(t *testing.T, p *shm.Pool, svc *recovery.Service,
	crashed *shm.Client, o *shm.Client, oRoots []layout.Addr, context string) {
	t.Helper()
	if err := p.MarkClientDead(crashed.ID()); err != nil {
		t.Fatalf("[%s] mark dead: %v", context, err)
	}
	if _, err := svc.RecoverClient(crashed.ID()); err != nil {
		t.Fatalf("[%s] recover: %v", context, err)
	}
	for _, r := range oRoots {
		if _, err := o.ReleaseRoot(r); err != nil {
			t.Fatalf("[%s] survivor release: %v", context, err)
		}
	}
	mon := recovery.NewMonitor(svc, recovery.MonitorConfig{})
	for i := 0; i < 4; i++ {
		mon.Tick()
	}
	res := mustClean(t, p, context)
	if res.AllocatedObjects != 0 {
		t.Fatalf("[%s] %d objects leaked", context, res.AllocatedObjects)
	}
	if res.SegmentsOther != 0 {
		t.Fatalf("[%s] %d segments stuck", context, res.SegmentsOther)
	}
}

// TestRecoverEveryCrashPoint is the systematic arm of the paper's §6.2.2
// fault-injection study: for every crash point, at every occurrence index,
// kill the client exactly there, recover, and verify the pool has no leak,
// no double free, and no wild pointer.
func TestRecoverEveryCrashPoint(t *testing.T) {
	for _, pt := range faultinject.AllPoints {
		pt := pt
		t.Run(string(pt), func(t *testing.T) {
			occurrence := 1
			for {
				p := newTestPool(t)
				x := connect(t, p)
				o := connect(t, p)
				svc, err := recovery.NewService(p)
				if err != nil {
					t.Fatal(err)
				}
				inj := faultinject.At(pt, occurrence)
				x.SetInjector(inj)
				var oRoots []layout.Addr
				crash := faultinject.Run(func() {
					oRoots = scenario(t, x, o)
				})
				if crash == nil {
					if occurrence == 1 && inj.Hits() == 0 {
						t.Fatalf("crash point %s never exercised by the scenario", pt)
					}
					// All occurrences covered.
					break
				}
				finishAndValidate(t, p, svc, x, o, oRoots, fmt.Sprintf("%s#%d", pt, occurrence))
				occurrence++
				if occurrence > 60 {
					t.Fatalf("crash point %s hit more than 60 times; scenario runaway?", pt)
				}
			}
		})
	}
}

// TestRandomFaultCampaign is the randomized arm: a seeded random injector
// crashes the client at arbitrary points across repeated runs.
func TestRandomFaultCampaign(t *testing.T) {
	trials := 150
	if testing.Short() {
		trials = 25
	}
	for seed := 0; seed < trials; seed++ {
		p := newTestPool(t)
		x := connect(t, p)
		o := connect(t, p)
		svc, err := recovery.NewService(p)
		if err != nil {
			t.Fatal(err)
		}
		x.SetInjector(faultinject.Random(int64(seed), 0.01))
		var oRoots []layout.Addr
		crash := faultinject.Run(func() {
			oRoots = scenario(t, x, o)
		})
		ctx := fmt.Sprintf("seed=%d crash=%v", seed, crash)
		if crash == nil {
			// No injection fired: release x's nothing (scenario released all
			// its roots) and just validate.
			for _, r := range oRoots {
				if _, err := o.ReleaseRoot(r); err != nil {
					t.Fatalf("[%s] release: %v", ctx, err)
				}
			}
			res := mustClean(t, p, ctx)
			if res.AllocatedObjects != 0 {
				t.Fatalf("[%s] %d objects leaked without any crash", ctx, res.AllocatedObjects)
			}
			continue
		}
		finishAndValidate(t, p, svc, x, o, oRoots, ctx)
	}
}

func TestMonitorDetectsStalledClient(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	if _, _, err := c.Malloc(64, 0); err != nil {
		t.Fatal(err)
	}
	svc, err := recovery.NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	mon := recovery.NewMonitor(svc, recovery.MonitorConfig{Threshold: 2})
	// The client stops heartbeating (we simply never call Heartbeat again).
	for i := 0; i < 5; i++ {
		mon.Tick()
	}
	if got := len(mon.Reports()); got != 1 {
		t.Fatalf("monitor performed %d recoveries, want 1", got)
	}
	if p.ClientStatus(c.ID()) != layout.ClientRecovered {
		t.Fatal("stalled client not recovered")
	}
	res := mustClean(t, p, "monitor")
	if res.AllocatedObjects != 0 {
		t.Fatal("stalled client's object leaked")
	}
	last, ok := mon.LastFence()
	if !ok {
		t.Fatal("monitor recorded no fence")
	}
	if last.Client != c.ID() || last.Reason != obs.FenceHeartbeat.String() {
		t.Fatalf("fence record %+v, want client %d for %q", last, c.ID(), obs.FenceHeartbeat)
	}
	if last.Misses < 2 || last.Time.IsZero() {
		t.Fatalf("fence record missing detail: %+v", last)
	}
	if got := len(mon.Fences()); got != 1 {
		t.Fatalf("monitor recorded %d fences, want 1", got)
	}
	if snap := p.Obs().Snapshot(); snap.Counters[obs.CtrMonitorTick.Name()] != 5 {
		t.Fatalf("monitor_ticks = %d, want 5", snap.Counters[obs.CtrMonitorTick.Name()])
	}
}

func TestMonitorSparesHealthyClients(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	svc, err := recovery.NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	mon := recovery.NewMonitor(svc, recovery.MonitorConfig{Threshold: 3})
	for i := 0; i < 10; i++ {
		c.Heartbeat()
		mon.Tick()
	}
	if got := len(mon.Reports()); got != 0 {
		t.Fatalf("monitor recovered a healthy client (%d reports)", got)
	}
	if p.ClientStatus(c.ID()) != layout.ClientAlive {
		t.Fatal("healthy client not alive")
	}
}

func TestRecoveryServiceIsRestartable(t *testing.T) {
	// The recovery service is stateless: killing it mid-recovery and running
	// a fresh one must converge. We simulate by recovering twice.
	p := newTestPool(t)
	c := connect(t, p)
	for i := 0; i < 50; i++ {
		if _, _, err := c.Malloc(64, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	svc1, err := recovery.NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc1.RecoverClient(c.ID()); err != nil {
		t.Fatal(err)
	}
	// First service "dies"; a second recovers the same (already recovered)
	// client — must be a no-op, not a double free.
	if err := svc1.Executor().Crash(); err != nil {
		t.Fatal(err)
	}
	svc2, err := recovery.NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc2.RecoverClient(svc1.Executor().ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := svc2.RecoverClient(c.ID()); err == nil {
		t.Fatal("re-recovering a recovered client should report an error")
	}
	res := mustClean(t, p, "restartable")
	if res.AllocatedObjects != 0 {
		t.Fatalf("%d objects leaked", res.AllocatedObjects)
	}
}
