package recovery_test

// Named-crash-point regression tests for the bugs the access-granular sweep
// (internal/sweep) shook out. Each test pins the exact crash position that
// exposed the bug and fails on pre-fix code.

import (
	"testing"

	"repro/internal/cxl"
	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/recovery"
	"repro/internal/shm"
)

// A sender that crashes between the slot attach and the tail publication
// leaves an orphaned reference at the (unmoved) tail position. The next
// sender reusing the ring must reclaim it; overwriting the slot word leaks
// the orphan's target permanently. Found by `faultsim -repro "op=send
// access=18"`.
func TestQueueOrphanSlotReuse(t *testing.T) {
	p := newTestPool(t)
	defer p.CloseDevice()
	x := connect(t, p)
	o := connect(t, p)
	svc, err := recovery.NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	_, q, err := x.CreateQueue(o.ID(), 4)
	if err != nil {
		t.Fatal(err)
	}
	oq, err := o.OpenQueue(q)
	if err != nil {
		t.Fatal(err)
	}

	x.SetInjector(faultinject.At(faultinject.AfterSendAttach, 1))
	crash := faultinject.Run(func() {
		_, b, err := x.Malloc(64, 0)
		if err != nil {
			t.Error(err)
			return
		}
		_ = x.Send(q, b)
	})
	if crash == nil {
		t.Fatal("expected crash at AfterSendAttach")
	}
	if err := p.MarkClientDead(x.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RecoverClient(x.ID()); err != nil {
		t.Fatal(err)
	}

	// A new sender incarnation fills the whole ring — its first send lands on
	// the orphaned slot — and the receiver drains it.
	n := connect(t, p)
	for i := 0; i < 4; i++ {
		r, b, err := n.Malloc(64, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Send(q, b); err != nil {
			t.Fatal(err)
		}
		if _, err := n.ReleaseRoot(r); err != nil {
			t.Fatal(err)
		}
	}
	for {
		roots, _, err := o.ReceiveBatch(q, 4)
		if err == shm.ErrQueueEmpty {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range roots {
			if _, err := o.ReleaseRoot(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := o.ReleaseRoot(oq); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	mon := recovery.NewMonitor(svc, recovery.MonitorConfig{})
	for i := 0; i < 6; i++ {
		mon.Tick()
	}
	res := mustClean(t, p, "orphan slot reuse")
	if res.AllocatedObjects != 0 {
		t.Fatalf("%d objects leaked (orphaned queue slot overwritten?)", res.AllocatedObjects)
	}
}

// Freed huge-object segments must have their base header/meta words zeroed:
// if old payload at a recycled segment's base spells out a plausible
// committed header, recovery of a client that crashed mid-claim would
// mistake the garbage for a live object. Found by extending the sweep
// workload with a payload-dirtying step.
func TestHugeRecycleGarbageHeader(t *testing.T) {
	p, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients: 4, NumSegments: 5, SegmentWords: 1 << 13, PageWords: 1 << 9, MaxQueues: 2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.CloseDevice()
	// Claim-cursor striping: x starts scans at seg 0, y at 1, z at 2.
	x := connect(t, p)
	y := connect(t, p)
	svc, err := recovery.NewService(p)
	if err != nil {
		t.Fatal(err)
	}

	// x's root page takes seg 0 and y's seg 1, so the huge object spans
	// segs 2-3: head 2, body 3.
	ry, _, err := y.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	const hugeSize = 65 * 1024
	rh, bh, err := x.Malloc(hugeSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Payload that happens to look like a committed allocated-huge header at
	// the body segment's base words. The head's base is scrubbed by the
	// ordinary free path; only recycled *body* bases can carry garbage.
	segWords := int(p.Geometry().SegmentWords)
	fakeHdr := layout.PackHeader(layout.Header{LCID: uint16(x.ID()), LEra: 1, RefCnt: 2})
	fakeMeta := layout.PackMeta(layout.Meta{
		Flags:      layout.MetaAllocated | layout.MetaHuge,
		BlockWords: uint64(hugeSize/layout.WordBytes + layout.BlockHeaderWords),
	})
	x.StoreWord(bh, segWords-layout.DataOff+layout.HeaderOff, fakeHdr)
	x.StoreWord(bh, segWords-layout.DataOff+layout.MetaOff, fakeMeta)
	if _, err := x.ReleaseRoot(rh); err != nil {
		t.Fatal(err)
	}

	// Occupy the freed head segment (2) so the next huge claim's head lands
	// on seg 3 — the dirtied former body base.
	z := connect(t, p)
	rz, _, err := z.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	x.SetInjector(faultinject.At(faultinject.AfterHugeClaim, 2))
	crash := faultinject.Run(func() { _, _, _ = x.Malloc(hugeSize, 0) })
	if crash == nil {
		t.Fatal("expected crash mid huge claim")
	}
	if err := p.MarkClientDead(x.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RecoverClient(x.ID()); err != nil {
		t.Fatal(err)
	}

	if _, err := y.ReleaseRoot(ry); err != nil {
		t.Fatal(err)
	}
	if _, err := z.ReleaseRoot(rz); err != nil {
		t.Fatal(err)
	}
	if err := y.Close(); err != nil {
		t.Fatal(err)
	}
	if err := z.Close(); err != nil {
		t.Fatal(err)
	}
	mon := recovery.NewMonitor(svc, recovery.MonitorConfig{})
	for i := 0; i < 6; i++ {
		mon.Tick()
	}
	res := mustClean(t, p, "huge recycle")
	if res.AllocatedObjects != 0 {
		t.Fatalf("%d objects kept alive by recycled garbage header", res.AllocatedObjects)
	}
}

// Recovery must invalidate the victim's redo entry before publishing
// RECOVERED: in the other order, a recovery pass that itself crashes between
// the two stores leaves a RECOVERED slot carrying a valid redo entry for the
// next incarnation to inherit. The test sweeps every device write of the
// recovery pass and asserts the poisonous intermediate state never exists.
func TestRecoveryClearsRedoBeforePublish(t *testing.T) {
	run := func(sw *faultinject.AccessSweeper) (*shm.Pool, *recovery.Service, int) {
		p, err := shm.NewPool(shm.Config{
			Geometry: layout.GeometryConfig{
				MaxClients: 8, NumSegments: 16, SegmentWords: 1 << 13, PageWords: 1 << 9, MaxQueues: 8,
			},
			Middleware: []cxl.Middleware{cxl.WithAccessHook(sw.Hook)},
		})
		if err != nil {
			t.Fatal(err)
		}
		x, err := p.Connect()
		if err != nil {
			t.Fatal(err)
		}
		svc, err := recovery.NewService(p)
		if err != nil {
			t.Fatal(err)
		}
		_, b, err := x.Malloc(64, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Crash with the redo entry committed but not replayed.
		x.SetInjector(faultinject.At(faultinject.AfterCommitCAS, 1))
		if crash := faultinject.Run(func() { _, _ = x.AttachRoot(b) }); crash == nil {
			t.Fatal("expected crash at AfterCommitCAS")
		}
		if err := p.MarkClientDead(x.ID()); err != nil {
			t.Fatal(err)
		}
		return p, svc, x.ID()
	}

	// Counting pass: how many writes does this recovery issue?
	sw := faultinject.NewAccessSweeper()
	p, svc, victim := run(sw)
	sw.StartCounting()
	if _, err := svc.RecoverClient(victim); err != nil {
		t.Fatal(err)
	}
	writes := sw.StopCounting()
	p.CloseDevice()
	if writes == 0 {
		t.Fatal("recovery issued no writes")
	}

	for r := 1; r <= writes; r++ {
		sw := faultinject.NewAccessSweeper()
		p, svc, victim := run(sw)
		sw.Arm(r)
		crash := faultinject.Run(func() { _, _ = svc.RecoverClient(victim) })
		sw.Disarm()
		if crash != nil {
			_, redoValid := p.ReadRedo(victim)
			if p.ClientStatus(victim) == layout.ClientRecovered && redoValid {
				t.Fatalf("recovery crash at write %d/%d left RECOVERED slot with valid redo entry", r, writes)
			}
		}
		p.CloseDevice()
	}
}

// SendBatch and ReceiveBatch must walk the same per-slot crash points as the
// single-shot paths — a batch of 3 hits each point 3 times. This pins the
// batched paths into every named-point campaign.
func TestBatchedQueuePointsCovered(t *testing.T) {
	p := newTestPool(t)
	defer p.CloseDevice()
	x := connect(t, p)
	o := connect(t, p)
	qr, q, err := x.CreateQueue(o.ID(), 4)
	if err != nil {
		t.Fatal(err)
	}
	oq, err := o.OpenQueue(q)
	if err != nil {
		t.Fatal(err)
	}

	var blocks []layout.Addr
	var roots []layout.Addr
	for i := 0; i < 3; i++ {
		r, b, err := x.Malloc(64, 0)
		if err != nil {
			t.Fatal(err)
		}
		roots = append(roots, r)
		blocks = append(blocks, b)
	}
	sendInj := faultinject.At(faultinject.AfterSendAttach, 1000) // count, never fire
	x.SetInjector(sendInj)
	n, err := x.SendBatch(q, blocks)
	if err != nil || n != 3 {
		t.Fatalf("SendBatch = %d, %v", n, err)
	}
	if got := sendInj.Hits(); got != 3 {
		t.Fatalf("AfterSendAttach hit %d times in a 3-batch, want 3", got)
	}
	for _, r := range roots {
		if _, err := x.ReleaseRoot(r); err != nil {
			t.Fatal(err)
		}
	}

	recvInj := faultinject.At(faultinject.AfterReceiveAttach, 1000)
	o.SetInjector(recvInj)
	rroots, _, err := o.ReceiveBatch(q, 4)
	if err != nil || len(rroots) != 3 {
		t.Fatalf("ReceiveBatch = %d, %v", len(rroots), err)
	}
	if got := recvInj.Hits(); got != 3 {
		t.Fatalf("AfterReceiveAttach hit %d times in a 3-batch, want 3", got)
	}
	for _, r := range rroots {
		if _, err := o.ReleaseRoot(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := x.ReleaseRoot(qr); err != nil {
		t.Fatal(err)
	}
	if _, err := o.ReleaseRoot(oq); err != nil {
		t.Fatal(err)
	}
	res := mustClean(t, p, "batched points")
	if res.AllocatedObjects != 0 {
		t.Fatalf("%d objects leaked", res.AllocatedObjects)
	}
}
