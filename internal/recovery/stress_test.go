package recovery_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/recovery"
	"repro/internal/shm"
)

// TestTwoClientsCrashTogether recovers two clients that died while holding
// references to each other's objects.
func TestTwoClientsCrashTogether(t *testing.T) {
	p := newTestPool(t)
	a := connect(t, p)
	b := connect(t, p)
	svc, err := recovery.NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-shared objects: a's object referenced by b and vice versa.
	_, objA, err := a.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, objB, err := b.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.AttachRoot(objA); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AttachRoot(objB); err != nil {
		t.Fatal(err)
	}
	// Plus a queue with an in-flight reference between them.
	_, q, err := a.CreateQueue(b.ID(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.OpenQueue(q); err != nil {
		t.Fatal(err)
	}
	rm, m, err := a.Malloc(32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(q, m); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReleaseRoot(rm); err != nil {
		t.Fatal(err)
	}

	if err := a.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := b.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RecoverClient(a.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RecoverClient(b.ID()); err != nil {
		t.Fatal(err)
	}
	mon := recovery.NewMonitor(svc, recovery.MonitorConfig{})
	for i := 0; i < 4; i++ {
		mon.Tick()
	}
	res := mustClean(t, p, "two-crash")
	if res.AllocatedObjects != 0 {
		t.Fatalf("%d objects leaked after double failure", res.AllocatedObjects)
	}
	if res.SegmentsOther != 0 {
		t.Fatalf("%d segments stuck", res.SegmentsOther)
	}
}

// TestRecoveryExecutorCrashesMidRecovery injects crashes into the recovery
// service's own client while it recovers a victim; a fresh service must
// converge — the recovery is fail-safe (§3.2).
func TestRecoveryExecutorCrashesMidRecovery(t *testing.T) {
	for seed := 0; seed < 30; seed++ {
		p := newTestPool(t)
		victim := connect(t, p)
		o := connect(t, p)
		// The victim dies holding a mix of plain, shared, embedded objects.
		var oRoots []layout.Addr
		crash := faultinject.Run(func() { oRoots = scenario(t, victim, o) })
		if crash != nil {
			t.Fatal("scenario must not crash without injector")
		}
		// Give the victim some unreleased objects too.
		for i := 0; i < 20; i++ {
			if _, _, err := victim.Malloc(48, 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := victim.Crash(); err != nil {
			t.Fatal(err)
		}

		// First recovery attempt: executor armed to die at a random point.
		svc1, err := recovery.NewService(p)
		if err != nil {
			t.Fatal(err)
		}
		svc1.Executor().SetInjector(faultinject.Random(int64(seed), 0.02))
		execCrash := faultinject.Run(func() {
			_, _ = svc1.RecoverClient(victim.ID())
		})
		if execCrash != nil {
			// The recovery service died mid-recovery. Fence it, recover it,
			// and run a fresh service for the original victim.
			if err := p.MarkClientDead(svc1.Executor().ID()); err != nil {
				t.Fatal(err)
			}
			svc2, err := recovery.NewService(p)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := svc2.RecoverClient(svc1.Executor().ID()); err != nil {
				t.Fatalf("seed %d: recover executor: %v", seed, err)
			}
			// The victim may be mid-recovered (status Dead still): re-run.
			if p.ClientStatus(victim.ID()) != layout.ClientRecovered {
				if _, err := svc2.RecoverClient(victim.ID()); err != nil {
					t.Fatalf("seed %d: re-recover victim: %v", seed, err)
				}
			}
			svc1 = svc2
		}
		for _, r := range oRoots {
			if _, err := o.ReleaseRoot(r); err != nil {
				t.Fatalf("seed %d: survivor release: %v", seed, err)
			}
		}
		mon := recovery.NewMonitor(svc1, recovery.MonitorConfig{})
		for i := 0; i < 5; i++ {
			mon.Tick()
		}
		res := mustClean(t, p, fmt.Sprintf("exec-crash seed=%d (crashed=%v)", seed, execCrash != nil))
		if res.AllocatedObjects != 0 {
			t.Fatalf("seed %d: %d objects leaked", seed, res.AllocatedObjects)
		}
	}
}

// TestConcurrentWorkloadWithCrash runs several clients doing random
// create/share/release concurrently while one of them dies, then validates.
func TestConcurrentWorkloadWithCrash(t *testing.T) {
	p, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients: 12, NumSegments: 64, SegmentWords: 1 << 13, PageWords: 1 << 9, MaxQueues: 32,
	}})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := recovery.NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 5
	type worker struct {
		c    *shm.Client
		done chan error
	}
	ws := make([]*worker, workers)
	for i := range ws {
		c, err := p.Connect()
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = &worker{c: c, done: make(chan error, 1)}
	}
	for i, w := range ws {
		go func(i int, w *worker) {
			rng := rand.New(rand.NewSource(int64(i)))
			var roots []layout.Addr
			for op := 0; op < 2000; op++ {
				if i == 0 && op == 1000 {
					// Worker 0 dies abruptly, mid-stream, holding roots.
					w.done <- nil
					return
				}
				switch rng.Intn(3) {
				case 0, 1:
					root, _, err := w.c.Malloc(16+rng.Intn(200), rng.Intn(2))
					if err != nil {
						w.done <- err
						return
					}
					roots = append(roots, root)
				case 2:
					if len(roots) > 0 {
						k := rng.Intn(len(roots))
						if _, err := w.c.ReleaseRoot(roots[k]); err != nil {
							w.done <- err
							return
						}
						roots[k] = roots[len(roots)-1]
						roots = roots[:len(roots)-1]
					}
				}
			}
			for _, r := range roots {
				if _, err := w.c.ReleaseRoot(r); err != nil {
					w.done <- err
					return
				}
			}
			w.done <- nil
		}(i, w)
	}
	for _, w := range ws {
		if err := <-w.done; err != nil {
			t.Fatal(err)
		}
	}
	// Worker 0 "died": fence and recover it while nothing else runs.
	if err := ws[0].c.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RecoverClient(ws[0].c.ID()); err != nil {
		t.Fatal(err)
	}
	mon := recovery.NewMonitor(svc, recovery.MonitorConfig{})
	for i := 0; i < 4; i++ {
		mon.Tick()
	}
	res := mustClean(t, p, "concurrent-crash")
	if res.AllocatedObjects != 0 {
		t.Fatalf("%d objects leaked", res.AllocatedObjects)
	}
}
