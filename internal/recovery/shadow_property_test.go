package recovery_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/recovery"
	"repro/internal/shm"
)

// Property test for the owner-local shadow cache (shadow.go): for randomized
// crash points injected into a victim running a mixed workload, recovery
// from the device words alone must leave the pool clean — in particular no
// free block lost off every list and none double-listed — the survivor's
// shadow must still match the device word-for-word, and a fresh incarnation
// must be able to rebuild its caches from the device and keep allocating.
// This is the safety half of the shadow-cache bargain: caches may die with
// their client, the device state must always be sufficient.
func TestShadowCrashRecoveryProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			p := newTestPool(t)
			survivor := connect(t, p)
			victim := connect(t, p)
			svc, err := recovery.NewService(p)
			if err != nil {
				t.Fatal(err)
			}

			// Queue A: victim sends to survivor. Queue B: survivor sends to
			// victim (pre-filled), so victim crashes can also land between a
			// Receive's slot release and its head advance — the stale-slot
			// window a successor must step past.
			qaRoot, qa, err := victim.CreateQueue(survivor.ID(), 8)
			if err != nil {
				t.Fatal(err)
			}
			saRoot, err := survivor.OpenQueue(qa)
			if err != nil {
				t.Fatal(err)
			}
			_ = qaRoot // dies with the victim; survivor's reference keeps qa alive
			qbRoot, qb, err := survivor.CreateQueue(victim.ID(), 8)
			if err != nil {
				t.Fatal(err)
			}
			var bFill []layout.Addr
			for i := 0; i < 6; i++ {
				root, block, err := survivor.Malloc(32, 0)
				if err != nil {
					t.Fatal(err)
				}
				if err := survivor.Send(qb, block); err != nil {
					t.Fatal(err)
				}
				bFill = append(bFill, root)
			}

			victim.SetInjector(faultinject.Random(seed, 0.015))
			rng := rand.New(rand.NewSource(seed))
			var roots []layout.Addr
			crash := faultinject.Run(func() {
				for op := 0; op < 400; op++ {
					switch rng.Intn(6) {
					case 0, 1:
						root, _, err := victim.Malloc(16+rng.Intn(240), rng.Intn(3))
						if err != nil {
							return
						}
						roots = append(roots, root)
					case 2:
						if len(roots) > 0 {
							k := rng.Intn(len(roots))
							if _, err := victim.ReleaseRoot(roots[k]); err != nil {
								return
							}
							roots[k] = roots[len(roots)-1]
							roots = roots[:len(roots)-1]
						}
					case 3:
						root, block, err := victim.Malloc(48, 0)
						if err != nil {
							return
						}
						if err := victim.Send(qa, block); err != nil && !errors.Is(err, shm.ErrQueueFull) {
							return
						}
						roots = append(roots, root)
					case 4:
						root, _, err := victim.Receive(qb)
						if err == nil {
							roots = append(roots, root)
						}
					case 5:
						// Parent with an embedded child, then a cascade release.
						proot, parent, err := victim.Malloc(64, 1)
						if err != nil {
							return
						}
						croot, child, err := victim.Malloc(24, 0)
						if err != nil {
							return
						}
						if err := victim.SetEmbed(parent, 0, child); err != nil {
							return
						}
						if _, err := victim.ReleaseRoot(croot); err != nil {
							return
						}
						roots = append(roots, proot)
					}
				}
			})
			if crash == nil {
				// No injection point fired this seed: the victim still dies,
				// holding whatever it holds (same recovery obligations).
				_ = crash
			}
			if err := p.MarkClientDead(victim.ID()); err != nil {
				t.Fatal(err)
			}
			if _, err := svc.RecoverClient(victim.ID()); err != nil {
				t.Fatalf("recover: %v", err)
			}
			// Keep the survivor heartbeating through the monitor ticks — a
			// silent live client would (correctly) be fenced and recovered
			// after MonitorConfig's miss threshold, which is monitor behavior
			// under test elsewhere, not here.
			mon := recovery.NewMonitor(svc, recovery.MonitorConfig{})
			for i := 0; i < 5; i++ {
				survivor.Heartbeat()
				mon.Tick()
			}

			// Survivor's shadow must have stayed exact through the crash and
			// recovery of its peer.
			if err := survivor.CheckShadow(); err != nil {
				t.Fatalf("survivor shadow: %v", err)
			}

			// Drain queue A (anything the victim published is survivor's to
			// take) and release everything the survivor holds.
			for i := 0; i < 10; i++ {
				root, _, err := survivor.Receive(qa)
				if err == nil {
					if _, err := survivor.ReleaseRoot(root); err != nil {
						t.Fatal(err)
					}
				}
			}

			// A fresh incarnation must rebuild purely from device words:
			// allocate and free across classes, take over queue B's receive
			// side (stepping past any stale slots the victim's crash left),
			// and end with an exact shadow.
			fresh := connect(t, p)
			var froots []layout.Addr
			for i := 0; i < 80; i++ {
				root, _, err := fresh.Malloc(16+(i%4)*90, 0)
				if err != nil {
					t.Fatalf("fresh malloc: %v", err)
				}
				froots = append(froots, root)
			}
			for _, r := range froots {
				if _, err := fresh.ReleaseRoot(r); err != nil {
					t.Fatal(err)
				}
			}
			fqbRoot, err := fresh.OpenQueue(qb)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				root, _, err := fresh.Receive(qb)
				if err == nil {
					if _, err := fresh.ReleaseRoot(root); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := fresh.CheckShadow(); err != nil {
				t.Fatalf("fresh shadow: %v", err)
			}

			for _, r := range append(bFill, saRoot, qbRoot) {
				if _, err := survivor.ReleaseRoot(r); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := fresh.ReleaseRoot(fqbRoot); err != nil {
				t.Fatal(err)
			}
			if err := survivor.CheckShadow(); err != nil {
				t.Fatalf("survivor shadow (final): %v", err)
			}
			for i := 0; i < 5; i++ {
				survivor.Heartbeat()
				fresh.Heartbeat()
				mon.Tick()
			}
			res := mustClean(t, p, fmt.Sprintf("shadow-property seed=%d crash=%v", seed, crash))
			if res.AllocatedObjects != 0 {
				t.Fatalf("seed %d: %d objects leaked", seed, res.AllocatedObjects)
			}
		})
	}
}
