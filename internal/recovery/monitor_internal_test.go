package recovery

import (
	"errors"
	"testing"

	"repro/internal/layout"
	"repro/internal/shm"
)

func newMonitorPool(t *testing.T) *shm.Pool {
	t.Helper()
	p, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients: 8, NumSegments: 16, SegmentWords: 1 << 13, PageWords: 1 << 9, MaxQueues: 8,
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.CloseDevice() })
	return p
}

// A client stuck in ClientDead because its recovery keeps failing must yield
// exactly one found-dead fence record, every error must surface through
// Failures(), and retries must back off instead of hammering every tick.
func TestMonitorRecordsFoundDeadOnce(t *testing.T) {
	p := newMonitorPool(t)
	x, err := p.Connect()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MarkClientDead(x.ID()); err != nil {
		t.Fatal(err)
	}

	m := NewMonitor(svc, MonitorConfig{})
	attempts := 0
	injected := errors.New("injected recovery failure")
	m.recoverFn = func(cid int) (Report, error) {
		attempts++
		return Report{}, injected
	}
	for i := 0; i < 6; i++ {
		m.Tick()
	}

	var fences int
	for _, f := range m.Fences() {
		if f.Client == x.ID() {
			fences++
			if f.Reason != "found-dead" {
				t.Errorf("fence reason = %q, want found-dead", f.Reason)
			}
		}
	}
	if fences != 1 {
		t.Fatalf("found-dead fences = %d, want exactly 1", fences)
	}
	// Backoff: attempt at tick 1, next at tick 3 (backoff 2), then not again
	// until tick 7 (backoff 4) — so 6 ticks give exactly 2 attempts.
	if attempts != 2 {
		t.Fatalf("recovery attempts in 6 ticks = %d, want 2 (exponential backoff)", attempts)
	}
	fails := m.Failures()
	if len(fails) != 2 {
		t.Fatalf("Failures() = %d records, want 2", len(fails))
	}
	for _, f := range fails {
		if f.Client != x.ID() || !errors.Is(f.Err, injected) || f.Error == "" {
			t.Fatalf("bad failure record: %+v", f)
		}
	}

	// Let recovery work again: the backoff window expires at tick 7 and the
	// client must actually be recovered, with the fence still recorded once.
	m.recoverFn = func(cid int) (Report, error) { return svc.RecoverClient(cid) }
	for i := 0; i < 2; i++ {
		m.Tick()
	}
	if got := p.ClientStatus(x.ID()); got != layout.ClientRecovered {
		t.Fatalf("client status after backoff expiry = %d, want recovered", got)
	}
	if len(m.Reports()) != 1 {
		t.Fatalf("reports = %d, want 1", len(m.Reports()))
	}
	for _, f := range m.Fences()[1:] {
		if f.Client == x.ID() {
			t.Fatalf("extra fence recorded after recovery: %+v", f)
		}
	}
}

// A freshly observed client whose heartbeat counter happens to equal the
// monitor's zero-valued baseline must not accrue spurious misses: the first
// observation seeds the baseline, and only later unchanged reads count.
func TestMonitorHeartbeatBootstrap(t *testing.T) {
	p := newMonitorPool(t)
	x, err := p.Connect()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	// Force the worst case: the first beat the monitor ever sees is 0, equal
	// to the untracked map's zero value.
	p.Device().Store(p.Geometry().ClientHeartbeatAddr(x.ID()), 0)

	m := NewMonitor(svc, MonitorConfig{Threshold: 3})
	for i := 0; i < 3; i++ {
		m.Tick()
	}
	// Tick 1 seeds, ticks 2-3 accrue misses 1-2: still below threshold.
	if f, ok := m.LastFence(); ok {
		t.Fatalf("client fenced after %d misses at tick 3: %+v (bootstrap counted as a miss)", f.Misses, f)
	}
	// The genuinely silent client is still fenced, one tick later.
	m.Tick()
	f, ok := m.LastFence()
	if !ok || f.Client != x.ID() {
		t.Fatalf("silent client not fenced by tick 4 (fence=%+v ok=%v)", f, ok)
	}
	if f.Misses != 3 {
		t.Fatalf("fence misses = %d, want 3", f.Misses)
	}
}

// A maintenance scan that panics on damaged metadata must not kill the
// monitor: it surfaces as an Op=="scan" failure with per-segment backoff,
// and the rest of the tick (heartbeats, other segments) keeps running.
func TestMonitorScanPanicBacksOff(t *testing.T) {
	p := newMonitorPool(t)
	x, err := p.Connect()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := x.Malloc(64, 0); err != nil {
		t.Fatal(err)
	}
	geo := p.Geometry()
	dev := p.Device()
	// Find the claimed segment, poison its page free-list head with a wild
	// pointer, and force it abandoned so maintenance tries to scan it.
	seg := -1
	for s := 0; s < geo.NumSegments; s++ {
		if p.SegState(s).CID == uint16(x.ID()) {
			seg = s
			break
		}
	}
	if seg < 0 {
		t.Fatal("no segment claimed")
	}
	dev.Store(geo.PageMetaAddr(seg, 1)+1, 1<<60)
	st := p.SegState(seg)
	st.State = layout.SegAbandoned
	dev.Store(geo.SegStateAddr(seg), layout.PackSegState(st))
	if err := p.MarkClientDead(x.ID()); err != nil {
		t.Fatal(err)
	}

	m := NewMonitor(svc, MonitorConfig{})
	m.recoverFn = func(cid int) (Report, error) { return Report{}, nil }
	for i := 0; i < 6; i++ {
		m.Tick()
	}
	scans := 0
	for _, f := range m.Failures() {
		if f.Op == "scan" {
			scans++
			if f.Segment != seg || f.Error == "" {
				t.Fatalf("bad scan failure record: %+v", f)
			}
		}
	}
	// Backoff: panic at tick 1, retry at tick 3, then tick 7 — 2 in 6 ticks.
	if scans != 2 {
		t.Fatalf("scan failures in 6 ticks = %d, want 2 (backoff)", scans)
	}
}

// The optional fsck duty reports a dirty or panicking pass through
// Failures() with Op=="fsck", without killing the monitor.
func TestMonitorFsckDutySurfacesFailures(t *testing.T) {
	p := newMonitorPool(t)
	if _, err := p.Connect(); err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	m := NewMonitor(svc, MonitorConfig{
		FsckEvery: 2,
		Fsck: func() (bool, error) {
			calls++
			if calls == 2 {
				panic("injected fsck panic")
			}
			return false, nil
		},
	})
	for i := 0; i < 4; i++ {
		m.Tick()
	}
	if calls != 2 {
		t.Fatalf("fsck calls in 4 ticks with FsckEvery=2: %d, want 2", calls)
	}
	var dirty, panicked int
	for _, f := range m.Failures() {
		if f.Op != "fsck" {
			continue
		}
		switch {
		case f.Error == "fsck left the pool dirty":
			dirty++
		default:
			panicked++
		}
	}
	if dirty != 1 || panicked != 1 {
		t.Fatalf("fsck failures: dirty=%d panicked=%d, want 1 and 1 (%+v)", dirty, panicked, m.Failures())
	}
}
