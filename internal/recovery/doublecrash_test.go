package recovery_test

// The strongest randomized campaign: two clients run symmetric random
// workloads (allocate, clone, link, change, release, exchange over queues)
// with *independent* crash injectors — either, both, or neither may die at
// arbitrary instructions. After recovering whoever died and releasing
// whatever the survivors still hold, the pool must validate with zero
// objects.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/recovery"
	"repro/internal/shm"
)

// randomActor performs random operations until its script ends or it
// crashes. All state it tracks is local (lost on crash, like a real
// process).
type randomActor struct {
	c     *shm.Client
	rng   *rand.Rand
	roots []layout.Addr
	// sendQ/recvQ are the actor's queue endpoints (block addresses).
	sendQ, recvQ layout.Addr
	crashed      bool
}

func (a *randomActor) step(t *testing.T) error {
	switch a.rng.Intn(10) {
	case 0, 1, 2: // allocate (sometimes with embeds)
		embeds := 0
		if a.rng.Intn(3) == 0 {
			embeds = 1 + a.rng.Intn(2)
		}
		root, _, err := a.c.Malloc(16+a.rng.Intn(120), embeds)
		if err != nil {
			return err
		}
		a.roots = append(a.roots, root)
	case 3, 4: // release something
		if len(a.roots) == 0 {
			return nil
		}
		k := a.rng.Intn(len(a.roots))
		root := a.roots[k]
		a.roots = append(a.roots[:k], a.roots[k+1:]...)
		if _, err := a.c.ReleaseRoot(root); err != nil {
			return err
		}
	case 5: // clone
		if len(a.roots) == 0 {
			return nil
		}
		root := a.roots[a.rng.Intn(len(a.roots))]
		a.c.CloneRoot(root)
		a.roots = append(a.roots, root)
	case 6: // link an embed of one held object to another held object
		if len(a.roots) < 2 {
			return nil
		}
		holder := a.c.RootTarget(a.roots[a.rng.Intn(len(a.roots))])
		target := a.c.RootTarget(a.roots[a.rng.Intn(len(a.roots))])
		if holder == 0 || target == 0 || holder == target {
			return nil
		}
		m := a.c.MetaOf(holder)
		if m.EmbedCnt == 0 {
			return nil
		}
		// Only link to leaf objects (no embeds of their own): reference
		// counting cannot reclaim cycles — the paper's RC limitation, not a
		// defect under test — so the random graph must stay acyclic.
		if a.c.MetaOf(target).EmbedCnt != 0 {
			return nil
		}
		idx := a.rng.Intn(int(m.EmbedCnt))
		if err := a.c.ChangeEmbed(holder, idx, target); err != nil && err != shm.ErrStaleReference {
			return err
		}
	case 7, 8: // send a held reference to the peer
		if a.sendQ == 0 || len(a.roots) == 0 {
			return nil
		}
		root := a.roots[a.rng.Intn(len(a.roots))]
		target := a.c.RootTarget(root)
		if target == 0 {
			return nil
		}
		if err := a.c.Send(a.sendQ, target); err != nil && err != shm.ErrQueueFull {
			return err
		}
	case 9: // receive from the peer
		if a.recvQ == 0 {
			return nil
		}
		root, _, err := a.c.Receive(a.recvQ)
		if err == shm.ErrQueueEmpty {
			return nil
		}
		if err != nil {
			return err
		}
		a.roots = append(a.roots, root)
	}
	return nil
}

// TestDoubleCrashCampaign runs many seeds; in each, both actors may crash.
func TestDoubleCrashCampaign(t *testing.T) {
	trials := 120
	if testing.Short() {
		trials = 20
	}
	for seed := 0; seed < trials; seed++ {
		runDoubleCrashTrial(t, int64(seed))
	}
}

func runDoubleCrashTrial(t *testing.T, seed int64) {
	t.Helper()
	p, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients: 8, NumSegments: 32, SegmentWords: 1 << 13, PageWords: 1 << 9, MaxQueues: 8,
	}})
	if err != nil {
		t.Fatal(err)
	}
	ca := connect(t, p)
	cb := connect(t, p)
	// Wire queues in both directions before arming injectors.
	_, qAB, err := ca.CreateQueue(cb.ID(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cb.OpenQueue(qAB); err != nil {
		t.Fatal(err)
	}
	_, qBA, err := cb.CreateQueue(ca.ID(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.OpenQueue(qBA); err != nil {
		t.Fatal(err)
	}

	actors := []*randomActor{
		{c: ca, rng: rand.New(rand.NewSource(seed * 2)), sendQ: qAB, recvQ: qBA},
		{c: cb, rng: rand.New(rand.NewSource(seed*2 + 1)), sendQ: qBA, recvQ: qAB},
	}
	ca.SetInjector(faultinject.Random(seed*3+10, 0.004))
	cb.SetInjector(faultinject.Random(seed*3+11, 0.004))

	// Interleave steps deterministically; a crash removes the actor.
	for step := 0; step < 150; step++ {
		for _, a := range actors {
			if a.crashed {
				continue
			}
			a := a
			crash := faultinject.Run(func() {
				if err := a.step(t); err != nil {
					t.Fatalf("seed %d: actor %d: %v", seed, a.c.ID(), err)
				}
			})
			if crash != nil {
				a.crashed = true
				if err := p.MarkClientDead(a.c.ID()); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		}
	}

	// Recover the dead; survivors drop everything (queues included — their
	// creation roots are in a.roots? No: queue roots were dropped above...
	// they weren't tracked; release them via the clients' own root pages by
	// just crashing the survivors too and recovering everyone).
	svc, err := recovery.NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range actors {
		if a.crashed {
			if _, err := svc.RecoverClient(a.c.ID()); err != nil {
				t.Fatalf("seed %d: recover %d: %v", seed, a.c.ID(), err)
			}
		}
	}
	// Survivors exit dirty on purpose: recovery must clean them too.
	for _, a := range actors {
		if !a.crashed {
			if err := a.c.Crash(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if _, err := svc.RecoverClient(a.c.ID()); err != nil {
				t.Fatalf("seed %d: recover survivor %d: %v", seed, a.c.ID(), err)
			}
		}
	}
	mon := recovery.NewMonitor(svc, recovery.MonitorConfig{})
	for i := 0; i < 5; i++ {
		mon.Tick()
	}
	res := check.Validate(p)
	if !res.Clean() || res.AllocatedObjects != 0 {
		for _, is := range res.Issues {
			t.Errorf("seed %d: %s", seed, is)
		}
		t.Fatalf("seed %d: %d objects leaked (crashed: a=%v b=%v)",
			seed, res.AllocatedObjects, actors[0].crashed, actors[1].crashed)
	}
	_ = fmt.Sprint
}
