// Package recovery implements CXL-SHM's asynchronous, stateless, fail-safe
// recovery service and the failure-detecting monitor (paper §3.2, §4.3,
// §5.3).
//
// Recovery of a failed client never blocks other clients: it consists of
// ordinary era transactions plus idempotent replays, executed by a recovery
// client that is itself just another client of the pool — if the recovery
// service dies, a new one can be started anywhere and simply runs again.
package recovery

import (
	"fmt"
	"time"

	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/shm"
)

// Service executes recoveries on behalf of a pool. It owns a client
// identity for the era transactions recovery must run (releasing the
// references a dead client possessed). A Service is single-goroutine.
type Service struct {
	pool *shm.Pool
	exec *shm.Client
}

// NewService connects a recovery client to the pool.
func NewService(pool *shm.Pool) (*Service, error) {
	exec, err := pool.Connect()
	if err != nil {
		return nil, fmt.Errorf("recovery: cannot connect executor: %w", err)
	}
	return &Service{pool: pool, exec: exec}, nil
}

// Executor exposes the service's client (tests, stats).
func (s *Service) Executor() *shm.Client { return s.exec }

// Report summarizes one client recovery.
type Report struct {
	Client     int
	RedoNeeded bool // the redo entry's ModifyRef was replayed
	SweptRoots int  // RootRef references released
	SegsFreed  int  // segments returned to the free pool
	SegsOrphan int  // segments left ABANDONED (still referenced by others)
	HugeFreed  int  // huge objects reclaimed
	Reclaimed  int  // leaked blocks reclaimed by the post-sweep scan
	// Duration is the detection-to-recovered SLO for this death: first
	// missed heartbeat (or the fence, when there was no detection phase) to
	// RECOVERED published. Zero when the timeline carried no detection stamp.
	Duration time.Duration
}

// RecoverClient recovers failed client cid:
//
//  1. fence the client (RAS) and publish its death,
//  2. decide and replay the interrupted transaction's ModifyRef using the
//     era matrix (Conditions 1 and 2),
//  3. sweep the dead client's RootRef pages — the content in and only in
//     those pages identifies every reference it possessed (§5.1),
//  4. scan and either free or abandon its segments,
//  5. mark the slot recovered.
//
// Everything here is idempotent or guarded, so a recovery that itself
// crashes can simply be re-run.
func (s *Service) RecoverClient(cid int) (Report, error) {
	r := Report{Client: cid}
	p := s.pool
	geo := p.Geometry()
	if cid < 1 || cid > geo.MaxClients {
		return r, fmt.Errorf("recovery: client id %d out of range", cid)
	}
	if status := p.ClientStatus(cid); status == layout.ClientAlive {
		if err := p.MarkClientDead(cid); err != nil {
			return r, err
		}
	} else if status != layout.ClientDead {
		return r, fmt.Errorf("recovery: client %d not dead (status %d)", cid, status)
	}
	p.Device().FenceClient(cid)
	t0 := time.Now()
	p.Obs().Trace(obs.Event{Type: obs.EvRecoveryStarted, Client: cid})
	p.Telemetry().StampRecoveryStart(cid, t0.UnixNano())

	// Step 2: redo decision and replay.
	r.RedoNeeded = s.replayRedo(cid)

	// Step 3+4: walk the Global Segment Allocation Vec for segments owned by
	// the dead client. RootRef pages are swept first (across all owned
	// segments) so that segment scans see the final reference counts.
	owned := s.ownedSegments(cid)
	for _, seg := range owned {
		st := p.SegState(seg)
		if st.State != layout.SegActive {
			continue
		}
		r.SweptRoots += s.sweepRootRefPages(seg)
	}

	// Huge objects: free heads whose count is zero (interrupted allocation
	// or interrupted free); keep live ones (others still reference them).
	freedHuge := s.sweepHugeOwned(cid, owned)
	r.HugeFreed += freedHuge

	// Normal segments: one scan; quiet ones are freed, the rest abandoned.
	for _, seg := range owned {
		st := p.SegState(seg)
		switch st.State {
		case layout.SegActive:
			rep := s.exec.ScanSegment(seg, true)
			r.Reclaimed += rep.Reclaimed
			r.SweptRoots += rep.SweptRoots
			if rep.Freed {
				r.SegsFreed++
			} else {
				s.abandonSegment(seg)
				r.SegsOrphan++
			}
		case layout.SegHugeBody:
			// Orphan body whose head was never written or already freed
			// (mid-claim crash): sweepHugeOwned left it untouched only if no
			// matching live head covers it.
			if !s.coveredByLiveHead(cid, seg) {
				s.freeSegment(seg)
				r.SegsFreed++
			}
		}
	}

	// Step 5: publish completion. The redo entry must be invalidated before
	// the slot is announced recovered: in the other order, a recovery pass
	// that itself crashes between the two stores leaves a RECOVERED slot
	// carrying a valid redo entry, which a later incarnation reusing the slot
	// would inherit. Clearing first keeps every intermediate state re-runnable
	// (DEAD + cleared redo just replays nothing).
	dev := p.Device()
	p.ClearRedo(cid)
	dev.Store(geo.ClientStatusAddr(cid), layout.ClientRecovered)

	// Publish the executor's scan/sweep counts before announcing the pass,
	// so a snapshot taken after the recovery sees exact totals.
	s.exec.FlushMetrics()
	sh := p.Obs().Shard(0)
	sh.Inc(obs.CtrRecoveryPass)
	sh.Observe(obs.HistRecoveryNS, time.Since(t0).Nanoseconds())
	// Close the crash-surviving timeline and extract the SLO: the duration
	// is measured from the detection stamp the fence recorded, so it spans
	// processes (the detector and the recoverer need not share one).
	tel := p.Telemetry()
	tel.PoolAdd(obs.CtrRecoveryPass, 1)
	tel.PoolObserve(obs.HistRecoveryNS, time.Since(t0).Nanoseconds())
	if dur := tel.StampRecovered(cid, r.Reclaimed, r.SweptRoots, time.Now().UnixNano()); dur > 0 {
		r.Duration = time.Duration(dur)
		sh.Observe(obs.HistDetectRecoverNS, dur)
		tel.PoolObserve(obs.HistDetectRecoverNS, dur)
	}
	p.Obs().Trace(obs.Event{
		Type: obs.EvRecoveryFinished, Client: cid,
		A: uint64(r.Reclaimed), B: uint64(r.SweptRoots),
	})
	return r, nil
}

// replayRedo implements the §4.3 recovery decision. Returns whether a
// ModifyRef replay (or change-completion) was needed.
//
// Redo entries are not cleared when their transaction closes (redo.go), so
// the decision is era-gated first: every commit CAS is followed by an era
// bump, which means an attach/release entry is in flight iff Era[cid][cid]
// still equals the logged era, and a change entry (two bumps, then a
// synchronous flag store) can need work only within two bumps of it. Acting
// on an entry the client's era has moved past would replay a long-closed
// transaction into possibly recycled words — the gate is what makes the
// deferred invalidation safe.
func (s *Service) replayRedo(cid int) bool {
	p := s.pool
	geo := p.Geometry()
	dev := p.Device()
	entry, ok := p.ReadRedo(cid)
	if !ok {
		return false
	}
	eraII := uint32(dev.Load(geo.EraAddr(cid, cid)))

	switch entry.Op {
	case shm.OpAttach:
		if eraII != entry.Era {
			return false // transaction closed; entry is stale
		}
		if ok, cond := s.committed(entry.Refed, cid, entry.Era, eraII); ok {
			dev.Store(entry.Ref, entry.Refed) // replay ModifyRef (idempotent)
			s.traceReplay(cid, entry.Op, cond)
			return true
		}
	case shm.OpRelease:
		if eraII != entry.Era {
			return false // closed: the inline reclaim (if any) completed too
		}
		// A release that hit zero may have been cut short anywhere in its
		// inline reclaim; flag the segment (sticky, checked by the scan) —
		// never redo the non-idempotent free (§5.3).
		if entry.SavedCnt == 1 {
			if seg := geo.SegmentIndexOf(entry.Refed); seg >= 0 {
				p.FlagSegmentLeaking(seg)
			}
		}
		if ok, cond := s.committed(entry.Refed, cid, entry.Era, eraII); ok {
			dev.Store(entry.Ref, 0) // replay ModifyRef (idempotent)
			s.traceReplay(cid, entry.Op, cond)
			return true
		}
	case shm.OpChange:
		return s.replayChange(cid, entry, eraII)
	case shm.OpMove:
		if eraII != entry.Era {
			return false
		}
		// A move has no ModifyRefCnt phase, so there is no commit evidence to
		// weigh: both of its stores are idempotent ModifyRefs, re-executed
		// wholesale. But batched moves share one era (moveRef), so the era
		// gate alone cannot reject an entry torn mid-logRedo: the stale commit
		// word of the previous move in the batch is byte-identical to the new
		// one, making a mix of old and new address words look valid. The
		// device state disambiguates — a move with work left always has its
		// source word still referencing the object (the source is cleared
		// last), while any torn mix names a source the previous move already
		// cleared, and a fully-executed move needs nothing replayed.
		if dev.Load(entry.Refed2) != entry.Refed {
			return false
		}
		dev.Store(entry.Ref, entry.Refed)
		dev.Store(entry.Refed2, 0)
		s.traceReplay(cid, entry.Op, 0)
		return true
	}
	return false
}

// traceReplay records one decided replay: counter plus a trace event noting
// which of the paper's two commit-evidence conditions justified it.
func (s *Service) traceReplay(cid int, op shm.Op, cond uint8) {
	o := s.pool.Obs()
	o.Shard(0).Inc(obs.CtrRedoReplay)
	tel := s.pool.Telemetry()
	tel.PoolAdd(obs.CtrRedoReplay, 1)
	tel.StampRedoReplay(cid)
	o.Trace(obs.Event{Type: obs.EvRedoReplayed, Client: cid, A: uint64(op), B: uint64(cond)})
}

// replayChange completes an interrupted two-phase change (§5.4): the era was
// bumped after each of the two CASes, so eraII tells which phase crashed.
func (s *Service) replayChange(cid int, e shm.RedoEntry, eraII uint32) bool {
	p := s.pool
	geo := p.Geometry()
	dev := p.Device()
	// Beyond era+2 the transaction closed and the POTENTIAL_LEAKING flag for
	// a zero-count A was already stored by the client (synchronously after
	// the second bump, before any later transaction could overwrite the
	// entry) — the entry is stale debris; touch nothing.
	if eraII > e.Era+2 {
		return false
	}
	// Phase 1's decrement may have dropped A to zero in any phase.
	if e.SavedCnt == 1 {
		if seg := geo.SegmentIndexOf(e.Refed); seg >= 0 {
			p.FlagSegmentLeaking(seg)
		}
	}
	switch eraII {
	case e.Era:
		// Crashed in phase 1. If the decrement of A committed, the client
		// was headed for "ref points at B": complete with a fresh attach
		// transaction (B was certainly not incremented yet — that CAS only
		// runs after the first era bump).
		if ok, cond := s.committed(e.Refed, cid, e.Era, eraII); ok {
			if err := s.exec.AttachReference(e.Ref, e.Refed2); err == nil {
				s.traceReplay(cid, e.Op, cond)
				return true
			}
		}
		// Decrement never committed: the change never happened; ref still
		// points at A. Nothing to do.
	case e.Era + 1:
		// Crashed in phase 2: A's decrement definitely committed. If B's
		// increment committed too, only the ModifyRef needs replaying;
		// otherwise run the attach for the client.
		if ok, cond := s.committed(e.Refed2, cid, e.Era+1, eraII); ok {
			dev.Store(e.Ref, e.Refed2)
			s.traceReplay(cid, e.Op, cond)
		} else if err := s.exec.AttachReference(e.Ref, e.Refed2); err != nil {
			return false
		} else {
			s.traceReplay(cid, e.Op, 0)
		}
		return true
	default:
		// Both bumps done: the change completed; only the A-reclaim flag
		// (set above) could still matter.
	}
	return false
}

// committed decides whether the dead client's CAS at era txnEra on object lo
// took effect: Condition 1 (the header still carries it) checked strictly
// before Condition 2 (some other client has seen that era). Published
// (cid, era) pairs are unique to one commit, so there are no false
// positives; the paper proves the two conditions sufficient. The second
// return value names the deciding condition (1 or 2; 0 when not committed),
// recorded in the recovery trace.
func (s *Service) committed(lo layout.Addr, cid int, txnEra, eraII uint32) (bool, uint8) {
	p := s.pool
	geo := p.Geometry()
	dev := p.Device()
	hdr := layout.UnpackHeader(dev.Load(lo + layout.HeaderOff))
	if int(hdr.LCID) == cid && hdr.LEra == txnEra {
		return true, 1 // Condition 1
	}
	// The device is sequentially consistent, which subsumes the memory
	// fence the paper requires between the two condition checks.
	var maxSeen uint32
	for j := 1; j <= geo.MaxClients; j++ {
		if j == cid {
			continue
		}
		if e := uint32(dev.Load(geo.EraAddr(j, cid))); e > maxSeen {
			maxSeen = e
		}
	}
	if txnEra <= maxSeen {
		return true, 2 // Condition 2
	}
	return false, 0
}

// ownedSegments lists segments whose state word carries the dead client's ID.
func (s *Service) ownedSegments(cid int) []int {
	p := s.pool
	var owned []int
	for i := 0; i < p.Geometry().NumSegments; i++ {
		st := p.SegState(i)
		if int(st.CID) != cid {
			continue
		}
		switch st.State {
		case layout.SegActive, layout.SegHugeHead, layout.SegHugeBody:
			owned = append(owned, i)
		}
	}
	return owned
}

// sweepRootRefPages releases every reference recorded in the dead client's
// RootRef pages within segment seg (paper §5.1: "use the content in and only
// in these pages").
func (s *Service) sweepRootRefPages(seg int) int {
	p := s.pool
	geo := p.Geometry()
	dev := p.Device()
	swept := 0
	numPages := int(dev.Load(geo.SegNextPageAddr(seg)))
	if numPages > geo.PagesPerSegment {
		numPages = geo.PagesPerSegment
	}
	for pg := 0; pg < numPages; pg++ {
		info := layout.UnpackPageMeta(dev.Load(geo.PageMetaAddr(seg, pg)))
		if info.Kind != layout.PageKindRootRef {
			continue
		}
		base := geo.PageBase(seg, pg)
		scanPos := dev.Load(geo.PageMetaAddr(seg, pg) + 2) // pmScan
		end := base + layout.Addr(geo.PageWords)
		if scanPos > end {
			scanPos = end
		}
		for slot := base; slot+layout.RootRefWords <= scanPos; slot += layout.RootRefWords {
			if s.exec.SweepRootRefSlot(slot) {
				swept++
			}
		}
	}
	return swept
}

// sweepHugeOwned frees the dead client's huge objects whose count is zero.
func (s *Service) sweepHugeOwned(cid int, owned []int) int {
	p := s.pool
	geo := p.Geometry()
	dev := p.Device()
	freed := 0
	for _, seg := range owned {
		st := p.SegState(seg)
		if st.State != layout.SegHugeHead {
			continue
		}
		block := geo.SegmentBase(seg)
		hdr := layout.UnpackHeader(dev.Load(block + layout.HeaderOff))
		if hdr.RefCnt > 0 {
			continue // live: other clients still hold references
		}
		rep := s.exec.ScanSegment(seg, true)
		if rep.Freed {
			freed++
		}
	}
	return freed
}

// coveredByLiveHead reports whether body segment seg belongs to a surviving
// huge object of the dead client.
func (s *Service) coveredByLiveHead(cid, seg int) bool {
	p := s.pool
	geo := p.Geometry()
	dev := p.Device()
	for head := seg - 1; head >= 0; head-- {
		st := p.SegState(head)
		if int(st.CID) != cid {
			return false // ownership chain broken
		}
		switch st.State {
		case layout.SegHugeBody:
			continue // keep walking toward the head
		case layout.SegHugeHead:
			block := geo.SegmentBase(head)
			m := layout.UnpackMeta(dev.Load(block + layout.MetaOff))
			span := int((m.BlockWords + geo.SegmentWords - 1) / geo.SegmentWords)
			hdr := layout.UnpackHeader(dev.Load(block + layout.HeaderOff))
			return hdr.RefCnt > 0 && seg < head+span
		default:
			return false
		}
	}
	return false
}

// abandonSegment transitions an owned segment to ABANDONED, preserving the
// POTENTIAL_LEAKING flag; the monitor rescans abandoned segments until quiet.
func (s *Service) abandonSegment(seg int) {
	p := s.pool
	a := p.Geometry().SegStateAddr(seg)
	dev := p.Device()
	for {
		w := dev.Load(a)
		st := layout.UnpackSegState(w)
		if st.State != layout.SegActive {
			return
		}
		st.State = layout.SegAbandoned
		if dev.CAS(a, w, layout.PackSegState(st)) {
			return
		}
	}
}

// freeSegment returns a segment to the pool, publishing the free-segment
// hint so the next claimer's scan starts here.
func (s *Service) freeSegment(seg int) {
	p := s.pool
	geo := p.Geometry()
	dev := p.Device()
	// Scrub the segment-base header/meta words before releasing: a huge
	// object's data lands on its body segments' bases, and whatever it wrote
	// there must not be mistaken for a block header by the next owner's
	// mid-claim recovery.
	base := geo.SegmentBase(seg)
	dev.Store(base+layout.HeaderOff, 0)
	dev.Store(base+layout.MetaOff, 0)
	a := geo.SegStateAddr(seg)
	st := layout.UnpackSegState(dev.Load(a))
	dev.Store(a, layout.PackSegState(layout.SegState{
		Version: st.Version + 1, State: layout.SegFree,
	}))
	dev.Store(geo.SegFreeHintAddr(), uint64(seg)+1)
}
