// Package recovery implements CXL-SHM's asynchronous, stateless, fail-safe
// recovery service and the failure-detecting monitor (paper §3.2, §4.3,
// §5.3).
//
// Recovery of a failed client never blocks other clients: it consists of
// ordinary era transactions plus idempotent replays, executed by a recovery
// client that is itself just another client of the pool — if the recovery
// service dies, a new one can be started anywhere and simply runs again.
package recovery

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/shm"
)

// Service executes recoveries on behalf of a pool. It owns one or more
// client identities ("executors") for the era transactions recovery must
// run (releasing the references a dead client possessed). With a single
// executor (NewService) it behaves like the original single-goroutine
// service; with more (NewServiceWorkers), recoveries of independent dead
// clients run concurrently — each pass borrows an executor from the pool
// for its duration, passes over the same client serialize on a per-client
// mutex, and all segment-granular work (scans, root sweeps, frees) goes
// through per-segment mutexes shared with the monitor's maintenance scans.
type Service struct {
	pool *shm.Pool
	// execs is the bounded executor pool: cap(execs) == worker count.
	execs    chan *shm.Client
	execList []*shm.Client
	// cidMu serializes recovery passes over the same dead client; a second
	// caller simply waits, then finds the slot RECOVERED and reports "not
	// dead", exactly like a re-run against the sequential service.
	cidMu []sync.Mutex
	// segMu serializes segment-granular work between concurrent passes and
	// the monitor's maintenance scans (scan.go's concurrency contract).
	segMu []sync.Mutex
}

// NewService connects a single-executor recovery service to the pool.
func NewService(pool *shm.Pool) (*Service, error) {
	return NewServiceWorkers(pool, 1)
}

// NewServiceWorkers connects a recovery service with `workers` executors:
// up to that many independent dead clients recover concurrently. Each
// executor occupies an ordinary client slot.
func NewServiceWorkers(pool *shm.Pool, workers int) (*Service, error) {
	if workers < 1 {
		workers = 1
	}
	geo := pool.Geometry()
	s := &Service{
		pool:  pool,
		execs: make(chan *shm.Client, workers),
		cidMu: make([]sync.Mutex, geo.MaxClients+1),
		segMu: make([]sync.Mutex, geo.NumSegments),
	}
	for i := 0; i < workers; i++ {
		exec, err := pool.Connect()
		if err != nil {
			return nil, fmt.Errorf("recovery: cannot connect executor %d of %d: %w", i+1, workers, err)
		}
		s.execList = append(s.execList, exec)
		s.execs <- exec
	}
	return s, nil
}

// Executor exposes the service's first executor client (tests, stats).
func (s *Service) Executor() *shm.Client { return s.execList[0] }

// Workers returns the executor-pool size (the recovery concurrency bound).
func (s *Service) Workers() int { return cap(s.execs) }

// ExecutorIDs lists the client IDs held by the service's executors; the
// monitor skips them during heartbeat scanning (idle pooled executors do
// not beat, and must not be fenced for it).
func (s *Service) ExecutorIDs() []int {
	ids := make([]int, len(s.execList))
	for i, e := range s.execList {
		ids[i] = e.ID()
	}
	return ids
}

// borrowExec checks an executor out of the pool; returnExec gives it back.
func (s *Service) borrowExec() *shm.Client  { return <-s.execs }
func (s *Service) returnExec(e *shm.Client) { s.execs <- e }

// scanSegment runs one dead-owner segment scan under the segment's mutex.
// Both recovery passes and the monitor's maintenance duties use it, so a
// segment is never scanned by two goroutines at once.
func (s *Service) scanSegment(exec *shm.Client, seg int) shm.ScanReport {
	s.segMu[seg].Lock()
	defer s.segMu[seg].Unlock()
	return exec.ScanSegment(seg, true)
}

// Report summarizes one client recovery.
type Report struct {
	Client     int
	RedoNeeded bool // the redo entry's ModifyRef was replayed
	SweptRoots int  // RootRef references released
	SegsFreed  int  // segments returned to the free pool
	SegsOrphan int  // segments left ABANDONED (still referenced by others)
	HugeFreed  int  // huge objects reclaimed
	Reclaimed  int  // leaked blocks reclaimed by the post-sweep scan
	// Duration is the detection-to-recovered SLO for this death: first
	// missed heartbeat (or the fence, when there was no detection phase) to
	// RECOVERED published. Zero when the timeline carried no detection stamp.
	Duration time.Duration
}

// RecoverClient recovers failed client cid:
//
//  1. fence the client (RAS) and publish its death,
//  2. decide and replay the interrupted transaction's ModifyRef using the
//     era matrix (Conditions 1 and 2),
//  3. sweep the dead client's RootRef pages — the content in and only in
//     those pages identifies every reference it possessed (§5.1),
//  4. scan and either free or abandon its segments,
//  5. release the slot lease: clear the redo entry, scrub the era row,
//     move the generation even, and mark the slot recovered.
//
// Everything here is idempotent or guarded, so a recovery that itself
// crashes can simply be re-run. Concurrent calls for independent clients
// proceed in parallel (bounded by the executor pool); calls for the same
// client serialize.
func (s *Service) RecoverClient(cid int) (Report, error) {
	if cid < 1 || cid > s.pool.Geometry().MaxClients {
		return Report{Client: cid}, fmt.Errorf("recovery: client id %d out of range", cid)
	}
	s.cidMu[cid].Lock()
	defer s.cidMu[cid].Unlock()
	exec := s.borrowExec()
	defer s.returnExec(exec)
	return s.recoverWith(exec, cid)
}

// recoverWith runs one recovery pass on the given executor. Callers hold
// cidMu[cid] and own exec for the duration.
func (s *Service) recoverWith(exec *shm.Client, cid int) (Report, error) {
	r := Report{Client: cid}
	p := s.pool
	// Only DEAD slots are recoverable. Fencing is the caller's decision
	// (MarkClientDead / the monitor's detection path) — auto-fencing an
	// ALIVE slot here would let a stale recover request kill an innocent
	// client, because with slot recycling the cid may have been re-leased
	// to a new incarnation since the request was formed.
	if status := p.ClientStatus(cid); status != layout.ClientDead {
		return r, fmt.Errorf("recovery: client %d not dead (status %d)", cid, status)
	}
	p.Device().FenceClient(cid)
	t0 := time.Now()
	p.Obs().Trace(obs.Event{Type: obs.EvRecoveryStarted, Client: cid})
	p.Telemetry().StampRecoveryStart(cid, t0.UnixNano())

	// Step 2: redo decision and replay.
	r.RedoNeeded = s.replayRedo(exec, cid)

	// Step 3+4: walk the Global Segment Allocation Vec for segments owned by
	// the dead client. RootRef pages are swept first (across all owned
	// segments) so that segment scans see the final reference counts.
	owned := s.ownedSegments(cid)
	for _, seg := range owned {
		st := p.SegState(seg)
		if st.State != layout.SegActive {
			continue
		}
		// Deferred unlock: the executor's stores can panic under fault
		// injection, and a mutex leaked on that unwind would deadlock every
		// later pass (and the monitor) touching this segment.
		func() {
			s.segMu[seg].Lock()
			defer s.segMu[seg].Unlock()
			r.SweptRoots += s.sweepRootRefPages(exec, seg)
		}()
	}

	// Huge objects: free heads whose count is zero (interrupted allocation
	// or interrupted free); keep live ones (others still reference them).
	freedHuge := s.sweepHugeOwned(exec, cid, owned)
	r.HugeFreed += freedHuge

	// Normal segments: one scan; quiet ones are freed, the rest abandoned.
	for _, seg := range owned {
		st := p.SegState(seg)
		switch st.State {
		case layout.SegActive:
			rep := s.scanSegment(exec, seg)
			r.Reclaimed += rep.Reclaimed
			r.SweptRoots += rep.SweptRoots
			if rep.Freed {
				r.SegsFreed++
			} else {
				s.abandonSegment(seg)
				r.SegsOrphan++
			}
		case layout.SegHugeBody:
			// Orphan body whose head was never written or already freed
			// (mid-claim crash): sweepHugeOwned left it untouched only if no
			// matching live head covers it.
			if !s.coveredByLiveHead(cid, seg) {
				func() {
					s.segMu[seg].Lock()
					defer s.segMu[seg].Unlock()
					s.freeSegment(seg)
				}()
				r.SegsFreed++
			}
		}
	}

	// Step 5: release the slot lease. Ordering is load-bearing twice over.
	// The redo entry is invalidated before the slot is announced recovered:
	// in the other order, a recovery pass that itself crashes between the
	// two stores leaves a RECOVERED slot carrying a valid redo entry, which
	// a later incarnation reusing the slot would inherit. The era row is
	// scrubbed of stale witnesses next (only entries provably useless to
	// any in-flight recovery — see Pool.ScrubEraRow), so the next lessee
	// inherits a near-empty row. FinishSlotLease then moves the lease
	// generation even *before* storing RECOVERED — a crash between the two
	// leaves DEAD+even, which the monitor simply recovers again, whereas
	// the opposite order could publish a claimable slot whose generation
	// still says "leased". Every intermediate state is re-runnable.
	p.ClearRedo(cid)
	p.ScrubEraRow(cid)
	p.FinishSlotLease(cid)

	// Publish the executor's scan/sweep counts before announcing the pass,
	// so a snapshot taken after the recovery sees exact totals.
	exec.FlushMetrics()
	sh := p.Obs().Shard(0)
	sh.Inc(obs.CtrRecoveryPass)
	sh.Observe(obs.HistRecoveryNS, time.Since(t0).Nanoseconds())
	// Close the crash-surviving timeline and extract the SLO: the duration
	// is measured from the detection stamp the fence recorded, so it spans
	// processes (the detector and the recoverer need not share one).
	tel := p.Telemetry()
	tel.PoolAdd(obs.CtrRecoveryPass, 1)
	tel.PoolObserve(obs.HistRecoveryNS, time.Since(t0).Nanoseconds())
	if dur := tel.StampRecovered(cid, r.Reclaimed, r.SweptRoots, time.Now().UnixNano()); dur > 0 {
		r.Duration = time.Duration(dur)
		sh.Observe(obs.HistDetectRecoverNS, dur)
		tel.PoolObserve(obs.HistDetectRecoverNS, dur)
	}
	p.Obs().Trace(obs.Event{
		Type: obs.EvRecoveryFinished, Client: cid,
		A: uint64(r.Reclaimed), B: uint64(r.SweptRoots),
	})
	return r, nil
}

// replayRedo implements the §4.3 recovery decision. Returns whether a
// ModifyRef replay (or change-completion) was needed.
//
// Redo entries are not cleared when their transaction closes (redo.go), so
// the decision is era-gated first: every commit CAS is followed by an era
// bump, which means an attach/release entry is in flight iff Era[cid][cid]
// still equals the logged era, and a change entry (two bumps, then a
// synchronous flag store) can need work only within two bumps of it. Acting
// on an entry the client's era has moved past would replay a long-closed
// transaction into possibly recycled words — the gate is what makes the
// deferred invalidation safe.
func (s *Service) replayRedo(exec *shm.Client, cid int) bool {
	p := s.pool
	geo := p.Geometry()
	dev := p.Device()
	entry, ok := p.ReadRedo(cid)
	if !ok {
		return false
	}
	eraII := uint32(dev.Load(geo.EraAddr(cid, cid)))

	switch entry.Op {
	case shm.OpAttach:
		if eraII != entry.Era {
			return false // transaction closed; entry is stale
		}
		if ok, cond := s.committed(entry.Refed, cid, entry.Era, eraII); ok {
			dev.Store(entry.Ref, entry.Refed) // replay ModifyRef (idempotent)
			s.traceReplay(cid, entry.Op, cond)
			return true
		}
	case shm.OpRelease:
		if eraII != entry.Era {
			return false // closed: the inline reclaim (if any) completed too
		}
		// A release that hit zero may have been cut short anywhere in its
		// inline reclaim; flag the segment (sticky, checked by the scan) —
		// never redo the non-idempotent free (§5.3).
		if entry.SavedCnt == 1 {
			if seg := geo.SegmentIndexOf(entry.Refed); seg >= 0 {
				p.FlagSegmentLeaking(seg)
			}
		}
		if ok, cond := s.committed(entry.Refed, cid, entry.Era, eraII); ok {
			dev.Store(entry.Ref, 0) // replay ModifyRef (idempotent)
			s.traceReplay(cid, entry.Op, cond)
			return true
		}
	case shm.OpChange:
		return s.replayChange(exec, cid, entry, eraII)
	case shm.OpMove:
		if eraII != entry.Era {
			return false
		}
		// A move has no ModifyRefCnt phase, so there is no commit evidence to
		// weigh: both of its stores are idempotent ModifyRefs, re-executed
		// wholesale. But batched moves share one era (moveRef), so the era
		// gate alone cannot reject an entry torn mid-logRedo: the stale commit
		// word of the previous move in the batch is byte-identical to the new
		// one, making a mix of old and new address words look valid. The
		// device state disambiguates — a move with work left always has its
		// source word still referencing the object (the source is cleared
		// last), while any torn mix names a source the previous move already
		// cleared, and a fully-executed move needs nothing replayed.
		if dev.Load(entry.Refed2) != entry.Refed {
			return false
		}
		dev.Store(entry.Ref, entry.Refed)
		dev.Store(entry.Refed2, 0)
		s.traceReplay(cid, entry.Op, 0)
		return true
	}
	return false
}

// traceReplay records one decided replay: counter plus a trace event noting
// which of the paper's two commit-evidence conditions justified it.
func (s *Service) traceReplay(cid int, op shm.Op, cond uint8) {
	o := s.pool.Obs()
	o.Shard(0).Inc(obs.CtrRedoReplay)
	tel := s.pool.Telemetry()
	tel.PoolAdd(obs.CtrRedoReplay, 1)
	tel.StampRedoReplay(cid)
	o.Trace(obs.Event{Type: obs.EvRedoReplayed, Client: cid, A: uint64(op), B: uint64(cond)})
}

// replayChange completes an interrupted two-phase change (§5.4): the era was
// bumped after each of the two CASes, so eraII tells which phase crashed.
func (s *Service) replayChange(exec *shm.Client, cid int, e shm.RedoEntry, eraII uint32) bool {
	p := s.pool
	geo := p.Geometry()
	dev := p.Device()
	// Beyond era+2 the transaction closed and the POTENTIAL_LEAKING flag for
	// a zero-count A was already stored by the client (synchronously after
	// the second bump, before any later transaction could overwrite the
	// entry) — the entry is stale debris; touch nothing.
	if eraII > e.Era+2 {
		return false
	}
	// Phase 1's decrement may have dropped A to zero in any phase.
	if e.SavedCnt == 1 {
		if seg := geo.SegmentIndexOf(e.Refed); seg >= 0 {
			p.FlagSegmentLeaking(seg)
		}
	}
	switch eraII {
	case e.Era:
		// Crashed in phase 1. If the decrement of A committed, the client
		// was headed for "ref points at B": complete with a fresh attach
		// transaction (B was certainly not incremented yet — that CAS only
		// runs after the first era bump).
		if ok, cond := s.committed(e.Refed, cid, e.Era, eraII); ok {
			if err := exec.AttachReference(e.Ref, e.Refed2); err == nil {
				s.traceReplay(cid, e.Op, cond)
				return true
			}
		}
		// Decrement never committed: the change never happened; ref still
		// points at A. Nothing to do.
	case e.Era + 1:
		// Crashed in phase 2: A's decrement definitely committed. If B's
		// increment committed too, only the ModifyRef needs replaying;
		// otherwise run the attach for the client.
		if ok, cond := s.committed(e.Refed2, cid, e.Era+1, eraII); ok {
			dev.Store(e.Ref, e.Refed2)
			s.traceReplay(cid, e.Op, cond)
		} else if err := exec.AttachReference(e.Ref, e.Refed2); err != nil {
			return false
		} else {
			s.traceReplay(cid, e.Op, 0)
		}
		return true
	default:
		// Both bumps done: the change completed; only the A-reclaim flag
		// (set above) could still matter.
	}
	return false
}

// committed decides whether the dead client's CAS at era txnEra on object lo
// took effect: Condition 1 (the header still carries it) checked strictly
// before Condition 2 (some other client has seen that era). Published
// (cid, era) pairs are unique to one commit, so there are no false
// positives; the paper proves the two conditions sufficient. The second
// return value names the deciding condition (1 or 2; 0 when not committed),
// recorded in the recovery trace.
func (s *Service) committed(lo layout.Addr, cid int, txnEra, eraII uint32) (bool, uint8) {
	p := s.pool
	geo := p.Geometry()
	dev := p.Device()
	hdr := layout.UnpackHeader(dev.Load(lo + layout.HeaderOff))
	if int(hdr.LCID) == cid && hdr.LEra == txnEra {
		return true, 1 // Condition 1
	}
	// The device is sequentially consistent, which subsumes the memory
	// fence the paper requires between the two condition checks.
	var maxSeen uint32
	for j := 1; j <= geo.MaxClients; j++ {
		if j == cid {
			continue
		}
		if e := uint32(dev.Load(geo.EraAddr(j, cid))); e > maxSeen {
			maxSeen = e
		}
	}
	if txnEra <= maxSeen {
		return true, 2 // Condition 2
	}
	return false, 0
}

// ownedSegments lists segments whose state word carries the dead client's ID.
func (s *Service) ownedSegments(cid int) []int {
	p := s.pool
	var owned []int
	for i := 0; i < p.Geometry().NumSegments; i++ {
		st := p.SegState(i)
		if int(st.CID) != cid {
			continue
		}
		switch st.State {
		case layout.SegActive, layout.SegHugeHead, layout.SegHugeBody:
			owned = append(owned, i)
		}
	}
	return owned
}

// sweepRootRefPages releases every reference recorded in the dead client's
// RootRef pages within segment seg (paper §5.1: "use the content in and only
// in these pages").
func (s *Service) sweepRootRefPages(exec *shm.Client, seg int) int {
	p := s.pool
	geo := p.Geometry()
	dev := p.Device()
	swept := 0
	numPages := int(dev.Load(geo.SegNextPageAddr(seg)))
	if numPages > geo.PagesPerSegment {
		numPages = geo.PagesPerSegment
	}
	for pg := 0; pg < numPages; pg++ {
		info := layout.UnpackPageMeta(dev.Load(geo.PageMetaAddr(seg, pg)))
		if info.Kind != layout.PageKindRootRef {
			continue
		}
		base := geo.PageBase(seg, pg)
		scanPos := dev.Load(geo.PageMetaAddr(seg, pg) + 2) // pmScan
		end := base + layout.Addr(geo.PageWords)
		if scanPos > end {
			scanPos = end
		}
		for slot := base; slot+layout.RootRefWords <= scanPos; slot += layout.RootRefWords {
			if exec.SweepRootRefSlot(slot) {
				swept++
			}
		}
	}
	return swept
}

// sweepHugeOwned frees the dead client's huge objects whose count is zero.
func (s *Service) sweepHugeOwned(exec *shm.Client, cid int, owned []int) int {
	p := s.pool
	geo := p.Geometry()
	dev := p.Device()
	freed := 0
	for _, seg := range owned {
		st := p.SegState(seg)
		if st.State != layout.SegHugeHead {
			continue
		}
		block := geo.SegmentBase(seg)
		hdr := layout.UnpackHeader(dev.Load(block + layout.HeaderOff))
		if hdr.RefCnt > 0 {
			continue // live: other clients still hold references
		}
		rep := s.scanSegment(exec, seg)
		if rep.Freed {
			freed++
		}
	}
	return freed
}

// coveredByLiveHead reports whether body segment seg belongs to a surviving
// huge object of the dead client.
func (s *Service) coveredByLiveHead(cid, seg int) bool {
	p := s.pool
	geo := p.Geometry()
	dev := p.Device()
	for head := seg - 1; head >= 0; head-- {
		st := p.SegState(head)
		if int(st.CID) != cid {
			return false // ownership chain broken
		}
		switch st.State {
		case layout.SegHugeBody:
			continue // keep walking toward the head
		case layout.SegHugeHead:
			block := geo.SegmentBase(head)
			m := layout.UnpackMeta(dev.Load(block + layout.MetaOff))
			span := int((m.BlockWords + geo.SegmentWords - 1) / geo.SegmentWords)
			hdr := layout.UnpackHeader(dev.Load(block + layout.HeaderOff))
			return hdr.RefCnt > 0 && seg < head+span
		default:
			return false
		}
	}
	return false
}

// abandonSegment transitions an owned segment to ABANDONED, preserving the
// POTENTIAL_LEAKING flag; the monitor rescans abandoned segments until quiet.
func (s *Service) abandonSegment(seg int) {
	p := s.pool
	a := p.Geometry().SegStateAddr(seg)
	dev := p.Device()
	for {
		w := dev.Load(a)
		st := layout.UnpackSegState(w)
		if st.State != layout.SegActive {
			return
		}
		st.State = layout.SegAbandoned
		if dev.CAS(a, w, layout.PackSegState(st)) {
			return
		}
	}
}

// freeSegment returns a segment to the pool, publishing the free-segment
// hint so the next claimer's scan starts here.
func (s *Service) freeSegment(seg int) {
	p := s.pool
	geo := p.Geometry()
	dev := p.Device()
	// Scrub the segment-base header/meta words before releasing: a huge
	// object's data lands on its body segments' bases, and whatever it wrote
	// there must not be mistaken for a block header by the next owner's
	// mid-claim recovery.
	base := geo.SegmentBase(seg)
	dev.Store(base+layout.HeaderOff, 0)
	dev.Store(base+layout.MetaOff, 0)
	a := geo.SegStateAddr(seg)
	st := layout.UnpackSegState(dev.Load(a))
	dev.Store(a, layout.PackSegState(layout.SegState{
		Version: st.Version + 1, State: layout.SegFree,
	}))
	dev.Store(geo.SegFreeHintAddr(), uint64(seg)+1)
}
