//go:build unix

package recovery_test

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/shm"
)

// childAllocs is the workload the helper process runs before parking in a
// heartbeat loop; the parent asserts this exact count survives the kill.
const childAllocs = 10

// TestKillChildCrossProcess is the full observability acceptance story
// across real OS processes: a child process joins a file-backed pool, does
// work, publishes its counters, and is killed with SIGKILL mid-heartbeat.
// The parent — a different process, a different mapping — must still read
// the child's final counter vector, watch the monitor detect and recover
// the death, and find a complete detection→fence→recovery→recovered
// timeline with a positive SLO duration in the pool itself.
func TestKillChildCrossProcess(t *testing.T) {
	if os.Getenv("CXLSHM_KILLCHILD_HELPER") == "1" {
		t.Skip("helper mode is driven by the parent test")
	}
	path := filepath.Join(t.TempDir(), "pool.cxl")
	p, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients: 8, NumSegments: 16, SegmentWords: 1 << 13, PageWords: 1 << 9, MaxQueues: 8,
	}, File: path})
	if err != nil {
		t.Fatal(err)
	}
	defer p.CloseDevice()

	cmd := exec.Command(os.Args[0], "-test.run", "^TestKillChildHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"CXLSHM_KILLCHILD_HELPER=1",
		"CXLSHM_KILLCHILD_POOL="+path,
	)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// Wait for the child to report it has connected and published.
	cid := 0
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if n, ok := strings.CutPrefix(line, "READY "); ok {
			cid, err = strconv.Atoi(n)
			if err != nil {
				t.Fatalf("helper READY line %q: %v", line, err)
			}
			break
		}
	}
	if cid == 0 {
		t.Fatalf("helper never reported READY (scan err %v)", sc.Err())
	}

	// Cross-process read of the live child's published vector.
	tel := p.Telemetry()
	deadline := time.Now().Add(10 * time.Second)
	var b shm.TelemetryBlock
	for {
		var ok bool
		if b, ok = tel.ReadBlock(cid); ok && b.Consistent && b.Counters[obs.CtrAlloc] >= childAllocs {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("child's published counters never became visible (block %+v)", b)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if b.Identity != uint64(cmd.Process.Pid) {
		t.Errorf("published identity = %d, want child pid %d", b.Identity, cmd.Process.Pid)
	}

	// kill -9: no defer runs in the child, no Close, no final publish.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// The monitor (in this process) must detect the stalled heartbeat,
	// fence, and recover — driven deterministically tick by tick.
	svc, err := recovery.NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	mon := recovery.NewMonitor(svc, recovery.MonitorConfig{Threshold: 2})
	recovered := false
	for i := 0; i < 500; i++ {
		mon.Tick()
		if p.ClientStatus(cid) == layout.ClientRecovered {
			recovered = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !recovered {
		t.Fatalf("monitor never recovered the killed child (status %d)", p.ClientStatus(cid))
	}

	// The dead child's final counter vector survives the kill.
	fin, ok := tel.ReadBlock(cid)
	if !ok || !fin.Consistent {
		t.Fatal("killed child's telemetry block unreadable after recovery")
	}
	if fin.Counters[obs.CtrAlloc] != b.Counters[obs.CtrAlloc] {
		t.Errorf("final alloc counter %d != last published %d", fin.Counters[obs.CtrAlloc], b.Counters[obs.CtrAlloc])
	}
	if fin.Counters[obs.CtrAlloc] < childAllocs {
		t.Errorf("final alloc counter %d, want >= %d", fin.Counters[obs.CtrAlloc], childAllocs)
	}

	// And the timeline tells the death's whole story.
	tl, ok := tel.ReadTimeline(cid)
	if !ok {
		t.Fatal("no recovery timeline for the killed child")
	}
	if tl.ReasonName != "heartbeat-timeout" {
		t.Errorf("fence reason = %q, want heartbeat-timeout", tl.ReasonName)
	}
	if tl.FirstMissNS <= 0 || tl.FencedNS < tl.FirstMissNS ||
		tl.AttemptNS < tl.FencedNS || tl.RecoveredNS < tl.AttemptNS {
		t.Errorf("timeline out of order: miss=%d fence=%d attempt=%d recovered=%d",
			tl.FirstMissNS, tl.FencedNS, tl.AttemptNS, tl.RecoveredNS)
	}
	if tl.DurationNS <= 0 {
		t.Errorf("detect-to-recovered duration %d, want > 0", tl.DurationNS)
	}
	if tl.SweptRoots == 0 {
		t.Error("child died holding roots but the timeline records none swept")
	}
	recs := mon.Recoveries()
	if len(recs) != 1 || recs[0].Client != cid || recs[0].Duration <= 0 {
		t.Errorf("Recoveries() = %+v, want one positive-duration record for client %d", recs, cid)
	}
}

// TestKillChildHelper is the child half of TestKillChildCrossProcess; it is
// skipped unless re-executed by the parent with the helper env set.
func TestKillChildHelper(t *testing.T) {
	if os.Getenv("CXLSHM_KILLCHILD_HELPER") != "1" {
		t.Skip("helper process for TestKillChildCrossProcess")
	}
	p, err := shm.OpenFile(os.Getenv("CXLSHM_KILLCHILD_POOL"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Connect()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < childAllocs; i++ {
		if _, _, err := c.Malloc(64, 0); err != nil {
			t.Fatal(err)
		}
	}
	c.FlushMetrics()
	fmt.Printf("READY %d\n", c.ID())
	// Beat until SIGKILLed; the deadline only guards an orphaned helper.
	for end := time.Now().Add(30 * time.Second); time.Now().Before(end); {
		c.Heartbeat()
		time.Sleep(2 * time.Millisecond)
	}
}
