package recovery_test

import (
	"testing"
	"time"

	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/recovery"
)

// TestMonitorRecoveryTimeline drives a heartbeat-loss death through the
// monitor and asserts the crash-surviving timeline records every stage in
// order — first miss, fence, recovery attempt, recovered — with a positive
// detection-to-recovered duration that also lands in the SLO histogram and
// in the monitor's recovery records.
func TestMonitorRecoveryTimeline(t *testing.T) {
	p := newTestPool(t)
	victim := connect(t, p)
	for i := 0; i < 5; i++ {
		if _, _, err := victim.Malloc(64, 0); err != nil {
			t.Fatal(err)
		}
	}
	cid := victim.ID()
	// The victim hangs: it never beats again, never closes.

	svc, err := recovery.NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	mon := recovery.NewMonitor(svc, recovery.MonitorConfig{Threshold: 2})
	// Tick 1 seeds the baseline, tick 2 counts the first miss (stamping
	// detection time), tick 3 crosses the threshold: fence + recover. The
	// sleeps keep the stamps strictly ordered on coarse clocks.
	for i := 0; i < 3; i++ {
		mon.Tick()
		time.Sleep(2 * time.Millisecond)
	}
	if st := p.ClientStatus(cid); st != layout.ClientRecovered {
		t.Fatalf("victim status = %d after 3 ticks, want recovered", st)
	}

	tl, ok := p.Telemetry().ReadTimeline(cid)
	if !ok {
		t.Fatal("no timeline for the recovered victim")
	}
	if tl.Deaths != 1 || tl.Completed != 1 {
		t.Errorf("deaths=%d completed=%d, want 1/1", tl.Deaths, tl.Completed)
	}
	if tl.ReasonName != "heartbeat-timeout" {
		t.Errorf("fence reason = %q, want heartbeat-timeout", tl.ReasonName)
	}
	if tl.FirstMissNS <= 0 {
		t.Fatalf("timeline carries no detection stamp (first miss %d)", tl.FirstMissNS)
	}
	if tl.FencedNS < tl.FirstMissNS {
		t.Errorf("fence (%d) precedes first miss (%d)", tl.FencedNS, tl.FirstMissNS)
	}
	if tl.AttemptNS < tl.FencedNS {
		t.Errorf("recovery attempt (%d) precedes fence (%d)", tl.AttemptNS, tl.FencedNS)
	}
	if tl.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", tl.Attempts)
	}
	if tl.RecoveredNS < tl.AttemptNS {
		t.Errorf("recovered (%d) precedes attempt (%d)", tl.RecoveredNS, tl.AttemptNS)
	}
	if tl.DurationNS <= 0 {
		t.Errorf("detect-to-recovered duration = %d, want > 0", tl.DurationNS)
	}
	if want := tl.RecoveredNS - tl.FirstMissNS; tl.DurationNS != want {
		t.Errorf("duration %d != recovered-firstmiss %d", tl.DurationNS, want)
	}
	if tl.SweptRoots == 0 {
		t.Error("victim died holding 5 roots but timeline records none swept")
	}

	// The monitor's in-heap record carries the same SLO value.
	recs := mon.Recoveries()
	if len(recs) != 1 || recs[0].Client != cid {
		t.Fatalf("Recoveries() = %+v, want one record for client %d", recs, cid)
	}
	if recs[0].Duration != time.Duration(tl.DurationNS) {
		t.Errorf("monitor duration %v != timeline duration %v", recs[0].Duration, time.Duration(tl.DurationNS))
	}
	last, ok := mon.LastRecovery()
	if !ok || last != recs[0] {
		t.Errorf("LastRecovery() = %+v/%v, want %+v", last, ok, recs[0])
	}

	// The duration lands in the SLO histogram both in-heap and in the
	// crash-surviving pool block.
	if hs := p.Obs().Snapshot().Histograms[obs.HistDetectRecoverNS.Name()]; hs.Count == 0 {
		t.Error("in-heap detect_to_recovered_ns histogram is empty")
	}
	pb, _ := p.Telemetry().ReadBlock(0)
	var slo uint64
	for _, c := range pb.Histos[obs.HistDetectRecoverNS] {
		slo += c
	}
	if slo == 0 {
		t.Error("pool-block detect_to_recovered_ns histogram is empty")
	}
	if pb.Counters[obs.CtrClientFenced] == 0 || pb.Counters[obs.CtrRecoveryPass] == 0 {
		t.Errorf("pool block fences=%d recoveries=%d, want both > 0",
			pb.Counters[obs.CtrClientFenced], pb.Counters[obs.CtrRecoveryPass])
	}
	mustClean(t, p, "after monitored recovery")
}

// TestTimelineExplicitFenceHasNoDetectionGap: an explicitly killed client
// has no heartbeat-miss stamp, so the SLO clock starts at the fence and the
// reason says explicit.
func TestTimelineExplicitFence(t *testing.T) {
	p := newTestPool(t)
	victim := connect(t, p)
	if _, _, err := victim.Malloc(64, 0); err != nil {
		t.Fatal(err)
	}
	svc, err := recovery.NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MarkClientDead(victim.ID()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)
	if _, err := svc.RecoverClient(victim.ID()); err != nil {
		t.Fatal(err)
	}
	tl, ok := p.Telemetry().ReadTimeline(victim.ID())
	if !ok {
		t.Fatal("no timeline after explicit fence + recovery")
	}
	if tl.FirstMissNS != 0 {
		t.Errorf("explicit fence has first-miss stamp %d, want none", tl.FirstMissNS)
	}
	if tl.ReasonName != "explicit" {
		t.Errorf("reason = %q, want explicit", tl.ReasonName)
	}
	if tl.DurationNS <= 0 || tl.DurationNS != tl.RecoveredNS-tl.FencedNS {
		t.Errorf("duration %d, want recovered-fenced = %d", tl.DurationNS, tl.RecoveredNS-tl.FencedNS)
	}
}
