// Package nativealloc provides the volatile-allocator baselines for the
// Figure 6 comparison. The paper compares against mimalloc and jemalloc;
// neither is linkable from pure Go, so two tunings of the Go runtime
// allocator stand in (documented substitution, DESIGN.md §2): both represent
// "a state-of-the-art volatile allocator with no sharing and no failure
// resilience", which is the role the paper's baselines play — roughly an
// order of magnitude faster than a failure-resilient shared-pool allocator.
package nativealloc

import (
	"fmt"
	"sync"

	"repro/internal/alloc"
)

// Plain is the jemalloc stand-in: straight Go heap allocations.
type Plain struct{}

// Name implements alloc.Allocator.
func (Plain) Name() string { return "jemalloc*" }

// NewThread implements alloc.Allocator.
func (Plain) NewThread() (alloc.ThreadAllocator, error) { return &plainThread{}, nil }

type plainThread struct{}

func (t *plainThread) Alloc(size int) (alloc.Obj, error) {
	if size <= 0 {
		return nil, fmt.Errorf("nativealloc: bad size %d", size)
	}
	b := make([]byte, size)
	return &b, nil
}

func (t *plainThread) Free(o alloc.Obj) error {
	if o == nil {
		return fmt.Errorf("nativealloc: free of nil object")
	}
	return nil // the Go GC reclaims it
}

// Pooled is the mimalloc stand-in: thread-local size-class caches backed by
// shared pools, mirroring mimalloc's local free lists with a shared slow
// path.
type Pooled struct {
	pools [numClasses]sync.Pool
	once  sync.Once
}

const (
	classGrain = 64
	numClasses = 8 // 64..512 bytes, covering both workloads
)

func classFor(size int) int {
	c := (size + classGrain - 1) / classGrain
	if c < 1 {
		c = 1
	}
	if c > numClasses {
		return -1
	}
	return c - 1
}

// Name implements alloc.Allocator.
func (p *Pooled) Name() string { return "mimalloc*" }

// NewThread implements alloc.Allocator.
func (p *Pooled) NewThread() (alloc.ThreadAllocator, error) {
	p.once.Do(func() {
		for c := 0; c < numClasses; c++ {
			size := (c + 1) * classGrain
			p.pools[c].New = func() interface{} {
				b := make([]byte, size)
				return &b
			}
		}
	})
	return &pooledThread{p: p}, nil
}

type pooledThread struct {
	p *Pooled
	// local is the thread-exclusive fast path cache (no synchronization),
	// like mimalloc's page-local free lists.
	local [numClasses][]*[]byte
}

const localCap = 32

type pooledObj struct {
	buf   *[]byte
	class int
}

func (t *pooledThread) Alloc(size int) (alloc.Obj, error) {
	c := classFor(size)
	if c < 0 {
		b := make([]byte, size)
		return pooledObj{buf: &b, class: -1}, nil
	}
	if n := len(t.local[c]); n > 0 {
		b := t.local[c][n-1]
		t.local[c] = t.local[c][:n-1]
		return pooledObj{buf: b, class: c}, nil
	}
	return pooledObj{buf: t.p.pools[c].Get().(*[]byte), class: c}, nil
}

func (t *pooledThread) Free(o alloc.Obj) error {
	po, ok := o.(pooledObj)
	if !ok {
		return fmt.Errorf("nativealloc: foreign object %T", o)
	}
	if po.class < 0 {
		return nil
	}
	if len(t.local[po.class]) < localCap {
		t.local[po.class] = append(t.local[po.class], po.buf)
		return nil
	}
	t.p.pools[po.class].Put(po.buf)
	return nil
}
