package nativealloc

import (
	"testing"

	"repro/internal/alloc"
)

func TestPlainAllocFree(t *testing.T) {
	var p Plain
	ta, err := p.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	o, err := ta.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	b := o.(*[]byte)
	if len(*b) != 64 {
		t.Fatalf("got %d bytes", len(*b))
	}
	if err := ta.Free(o); err != nil {
		t.Fatal(err)
	}
	if err := ta.Free(nil); err == nil {
		t.Fatal("free(nil) accepted")
	}
	if _, err := ta.Alloc(0); err == nil {
		t.Fatal("zero-size alloc accepted")
	}
	if p.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestPooledReusesBuffers(t *testing.T) {
	var p Pooled
	ta, err := p.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	o1, err := ta.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	buf1 := o1.(pooledObj).buf
	if err := ta.Free(o1); err != nil {
		t.Fatal(err)
	}
	o2, err := ta.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if o2.(pooledObj).buf != buf1 {
		t.Fatal("thread-local cache did not reuse the buffer")
	}
	// Oversize allocations bypass the classes but still work.
	big, err := ta.Alloc(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	if big.(pooledObj).class != -1 {
		t.Fatal("oversize allocation got a class")
	}
	if err := ta.Free(big); err != nil {
		t.Fatal(err)
	}
	// Foreign objects are rejected.
	if err := ta.Free("not-an-object"); err == nil {
		t.Fatal("foreign free accepted")
	}
}

func TestPooledClassBoundaries(t *testing.T) {
	for _, tc := range []struct {
		size, class int
	}{
		{1, 0}, {64, 0}, {65, 1}, {128, 1}, {512, 7}, {513, -1},
	} {
		if got := classFor(tc.size); got != tc.class {
			t.Fatalf("classFor(%d) = %d, want %d", tc.size, got, tc.class)
		}
	}
}

func TestAllocatorsSatisfyInterface(t *testing.T) {
	var _ alloc.Allocator = Plain{}
	var _ alloc.Allocator = &Pooled{}
}
