package lightning

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cxl"
)

// Store is the Lightning-style object store: a shared directory of objects
// guarded by per-bucket spinlocks, a lock-based buddy allocator, and a
// per-client undo log. Its recovery is blocking: detecting a dead client
// stops the world (a global write lock), rolls back the client's in-flight
// operation, and releases its locks — every other client waits.
type Store struct {
	// paused/active implement the blocking stop-the-world recovery: every
	// operation registers in active; recovery sets paused, waits for active
	// to drain, and only then repairs — exactly the behaviour the paper
	// contrasts with CXL-SHM's non-blocking recovery. A client spinning on
	// a dead client's bucket lock parks itself when paused so recovery can
	// break the lock.
	paused atomic.Bool
	active atomic.Int64

	b       *buddy
	buckets []bucket
	mask    uint64

	// dev holds the object payloads: like the real Lightning, values live
	// in shared memory (simulated device), so data accesses pay the same
	// per-word costs as CXL-SHM's.
	dev cxl.Memory

	clients   []*Client
	clientsMu sync.Mutex
}

// devBase offsets payload addresses so buddy offset 0 maps to a valid
// device word.
const devBase = cxl.Addr(8)

// devAddr converts a buddy byte offset to a device word address.
func devAddr(off uint32) cxl.Addr { return devBase + cxl.Addr(off)/cxl.WordBytes }

type bucket struct {
	// lock holds the owning client ID (0 = unlocked). A crashed client
	// leaves it set, blocking everyone who hashes there until recovery.
	lock atomic.Int32
	bucketData
}

// bucketData is the copyable directory payload (separated from the lock so
// the undo log can snapshot it).
type bucketData struct {
	key  uint64
	off  uint32
	size int32
	used bool
}

// Errors.
var (
	ErrCrashed  = errors.New("lightning: client has crashed")
	ErrNotFound = errors.New("lightning: key not found")
	ErrFull     = errors.New("lightning: directory full")
)

// NewStore creates a store with a 2^n-byte arena and the given directory
// capacity (rounded up to a power of two).
func NewStore(arenaBytes, capacity int) (*Store, error) {
	b, err := newBuddy(arenaBytes, 64)
	if err != nil {
		return nil, err
	}
	cap2 := 1
	for cap2 < capacity {
		cap2 <<= 1
	}
	dev, err := cxl.NewDevice(cxl.Config{
		Words:      arenaBytes/cxl.WordBytes + int(devBase) + 8,
		MaxClients: 4096,
	})
	if err != nil {
		return nil, err
	}
	return &Store{
		b:       b,
		buckets: make([]bucket, cap2),
		mask:    uint64(cap2 - 1),
		dev:     dev,
	}, nil
}

// Client is one process attached to the store.
type Client struct {
	s       *Store
	id      int32
	h       *cxl.Handle
	crashed atomic.Bool
	// undo is the client's single-entry undo log: enough for recovery to
	// roll back the operation in flight when the client died.
	undo undoEntry
}

type undoEntry struct {
	valid   bool
	bucket  int
	prev    bucketData // directory state to restore
	newOff  uint32     // allocation to roll back (0xFFFFFFFF = none)
	newUsed bool
}

const noAlloc = ^uint32(0)

// Connect attaches a new client.
func (s *Store) Connect() *Client {
	s.clientsMu.Lock()
	defer s.clientsMu.Unlock()
	c := &Client{s: s, id: int32(len(s.clients) + 1)}
	c.h = s.dev.Open(int(c.id))
	s.clients = append(s.clients, c)
	return c
}

func hash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return k
}

// begin registers an operation; it parks while a recovery is stopping the
// world.
func (c *Client) begin() {
	for {
		if !c.s.paused.Load() {
			c.s.active.Add(1)
			if !c.s.paused.Load() {
				return
			}
			c.s.active.Add(-1)
		}
		runtime.Gosched()
	}
}

func (c *Client) end() { c.s.active.Add(-1) }

// lockBucket spins until the bucket lock is acquired — indefinitely if a
// dead client holds it (the §4.2 problem); only a stop-the-world Recover
// breaks such locks, and the spinner parks while that recovery runs.
func (c *Client) lockBucket(i int) {
	for !c.s.buckets[i].lock.CompareAndSwap(0, c.id) {
		if c.s.paused.Load() {
			c.end()
			c.begin()
		}
		runtime.Gosched()
	}
}

func (c *Client) unlockBucket(i int) {
	c.s.buckets[i].lock.CompareAndSwap(c.id, 0)
}

// findBucket locates the bucket for key (linear probing), or a free one for
// insertion. Caller holds no locks; the probe is optimistic and re-checked
// under the bucket lock.
func (s *Store) findBucket(key uint64, forInsert bool) int {
	start := hash(key) & s.mask
	for d := uint64(0); d <= s.mask; d++ {
		i := int((start + d) & s.mask)
		bk := &s.buckets[i]
		if bk.used && bk.key == key {
			return i
		}
		if !bk.used && forInsert {
			return i
		}
	}
	return -1
}

// Put stores val under key (insert or overwrite).
func (c *Client) Put(key uint64, val []byte) error {
	if c.crashed.Load() {
		return ErrCrashed
	}
	c.begin()
	defer c.end()

	i := c.s.findBucket(key, true)
	if i < 0 {
		return ErrFull
	}
	c.lockBucket(i)
	defer c.unlockBucket(i)
	bk := &c.s.buckets[i]

	off, err := c.s.b.alloc(len(val))
	if err != nil {
		return err
	}
	// Log the in-flight operation before mutating the directory.
	c.undo = undoEntry{valid: true, bucket: i, prev: bk.bucketData, newOff: off, newUsed: true}

	c.h.WriteBytes(devAddr(off), 0, val)
	oldUsed, oldOff := bk.used, bk.off
	bk.key, bk.off, bk.size, bk.used = key, off, int32(len(val)), true
	if oldUsed {
		if err := c.s.b.freeBlock(oldOff); err != nil {
			return err
		}
	}
	c.undo.valid = false
	return nil
}

// Get returns a copy of the value under key.
func (c *Client) Get(key uint64) ([]byte, error) {
	if c.crashed.Load() {
		return nil, ErrCrashed
	}
	c.begin()
	defer c.end()
	i := c.s.findBucket(key, false)
	if i < 0 {
		return nil, ErrNotFound
	}
	c.lockBucket(i)
	defer c.unlockBucket(i)
	bk := &c.s.buckets[i]
	if !bk.used || bk.key != key {
		return nil, ErrNotFound
	}
	out := make([]byte, bk.size)
	c.h.ReadBytes(devAddr(bk.off), 0, out)
	return out, nil
}

// Delete removes key.
func (c *Client) Delete(key uint64) error {
	if c.crashed.Load() {
		return ErrCrashed
	}
	c.begin()
	defer c.end()
	i := c.s.findBucket(key, false)
	if i < 0 {
		return ErrNotFound
	}
	c.lockBucket(i)
	defer c.unlockBucket(i)
	bk := &c.s.buckets[i]
	if !bk.used || bk.key != key {
		return ErrNotFound
	}
	c.undo = undoEntry{valid: true, bucket: i, prev: bk.bucketData, newOff: noAlloc}
	off := bk.off
	bk.used = false
	if err := c.s.b.freeBlock(off); err != nil {
		return err
	}
	c.undo.valid = false
	return nil
}

// CrashHoldingLock simulates the failure mode the paper's §4.2 straw-man
// analysis dissects: the client acquires key's bucket lock, logs an
// operation, and dies. Every other client touching that bucket now spins
// until Recover releases the lock.
func (c *Client) CrashHoldingLock(key uint64) error {
	if c.crashed.Load() {
		return ErrCrashed
	}
	c.begin()
	i := c.s.findBucket(key, true)
	if i < 0 {
		c.end()
		return ErrFull
	}
	c.lockBucket(i)
	c.undo = undoEntry{valid: true, bucket: i, prev: c.s.buckets[i].bucketData, newOff: noAlloc}
	c.crashed.Store(true)
	c.end() // the goroutine is gone; the held bucket lock models the stuck state
	return nil
}

// Crash marks the client dead without holding any lock.
func (c *Client) Crash() { c.crashed.Store(true) }

// Recover performs Lightning's blocking recovery: stop the world, roll back
// every dead client's in-flight operation, release its locks. Returns how
// long the world was stopped.
func (s *Store) Recover() time.Duration {
	start := time.Now()
	// Stop the world: no new operations, wait for in-flight ones to drain.
	s.paused.Store(true)
	defer s.paused.Store(false)
	for s.active.Load() > 0 {
		runtime.Gosched()
	}

	s.clientsMu.Lock()
	clients := append([]*Client(nil), s.clients...)
	s.clientsMu.Unlock()

	for _, c := range clients {
		if !c.crashed.Load() {
			continue
		}
		if c.undo.valid {
			bk := &s.buckets[c.undo.bucket]
			bk.bucketData = c.undo.prev
			bk.lock.Store(0)
			if c.undo.newOff != noAlloc {
				// Allocation that never became visible: roll it back.
				_ = s.b.freeBlock(c.undo.newOff)
			}
			c.undo.valid = false
		}
		// Release every lock the dead client still holds.
		for i := range s.buckets {
			s.buckets[i].lock.CompareAndSwap(c.id, 0)
		}
	}
	return time.Since(start)
}

// Len counts stored objects (diagnostics).
func (s *Store) Len() int {
	n := 0
	for i := range s.buckets {
		if s.buckets[i].used {
			n++
		}
	}
	return n
}

// String describes the store.
func (s *Store) String() string {
	return fmt.Sprintf("lightning{objects=%d, free=%dB}", s.Len(), s.b.freeBytes())
}
