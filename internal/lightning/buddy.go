// Package lightning reimplements the architecture of Lightning (VLDB'22) as
// the paper's lock-based baseline: a shared-memory multi-process object
// store whose memory management is a simple lock-based buddy system and
// whose crash recovery is blocking — when one client dies, every client
// waits for the recovery to finish (paper §4.2 and §6.4 both call this out
// as the contrast with CXL-SHM's non-blocking era-based algorithm).
package lightning

import (
	"fmt"
	"sync"
)

// buddy is a classic binary-buddy allocator over a byte arena, protected by
// one global mutex — Lightning's "simple lock-based buddy system" whose
// serialization is a major source of its Figure 10a throughput gap.
type buddy struct {
	mu       sync.Mutex
	arena    []byte
	minOrder int // smallest block = 1<<minOrder bytes
	maxOrder int // whole arena = 1<<maxOrder bytes
	free     [][]uint32
	// orderOf tracks the order of each allocated block (indexed by
	// offset >> minOrder).
	orderOf []int8
}

func newBuddy(bytes, minBlock int) (*buddy, error) {
	maxOrder := 0
	for 1<<maxOrder < bytes {
		maxOrder++
	}
	if 1<<maxOrder != bytes {
		return nil, fmt.Errorf("lightning: arena size %d not a power of two", bytes)
	}
	minOrder := 0
	for 1<<minOrder < minBlock {
		minOrder++
	}
	if minOrder > maxOrder {
		return nil, fmt.Errorf("lightning: min block larger than arena")
	}
	b := &buddy{
		arena:    make([]byte, bytes),
		minOrder: minOrder,
		maxOrder: maxOrder,
		free:     make([][]uint32, maxOrder+1),
		orderOf:  make([]int8, (bytes>>minOrder)+1),
	}
	for i := range b.orderOf {
		b.orderOf[i] = -1
	}
	b.free[maxOrder] = append(b.free[maxOrder], 0)
	return b, nil
}

func (b *buddy) orderFor(size int) int {
	o := b.minOrder
	for 1<<o < size {
		o++
	}
	return o
}

// alloc returns the byte offset of a block holding size bytes.
func (b *buddy) alloc(size int) (uint32, error) {
	if size <= 0 {
		size = 1
	}
	want := b.orderFor(size)
	if want > b.maxOrder {
		return 0, fmt.Errorf("lightning: allocation of %d bytes exceeds arena", size)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Find the smallest order with a free block, splitting down.
	o := want
	for o <= b.maxOrder && len(b.free[o]) == 0 {
		o++
	}
	if o > b.maxOrder {
		return 0, fmt.Errorf("lightning: arena exhausted")
	}
	off := b.free[o][len(b.free[o])-1]
	b.free[o] = b.free[o][:len(b.free[o])-1]
	for o > want {
		o--
		b.free[o] = append(b.free[o], off+uint32(1<<o)) // right half back
	}
	b.orderOf[off>>b.minOrder] = int8(want)
	return off, nil
}

// freeBlock returns a block; buddies are coalesced.
func (b *buddy) freeBlock(off uint32) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	idx := off >> b.minOrder
	o := int(b.orderOf[idx])
	if o < 0 {
		return fmt.Errorf("lightning: double free at %#x", off)
	}
	b.orderOf[idx] = -1
	for o < b.maxOrder {
		buddyOff := off ^ uint32(1<<o)
		// Is the buddy free at the same order?
		found := -1
		for i, f := range b.free[o] {
			if f == buddyOff {
				found = i
				break
			}
		}
		if found < 0 {
			break
		}
		b.free[o][found] = b.free[o][len(b.free[o])-1]
		b.free[o] = b.free[o][:len(b.free[o])-1]
		if buddyOff < off {
			off = buddyOff
		}
		o++
	}
	b.free[o] = append(b.free[o], off)
	return nil
}

// data returns the block's bytes (size bytes from offset).
func (b *buddy) data(off uint32, size int) []byte {
	return b.arena[off : int(off)+size]
}

// freeBytes reports total free space (diagnostics).
func (b *buddy) freeBytes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := 0
	for o, list := range b.free {
		total += len(list) * (1 << o)
	}
	return total
}
