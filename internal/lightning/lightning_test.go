package lightning

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(1<<20, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuddySplitAndCoalesce(t *testing.T) {
	b, err := newBuddy(1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	if b.freeBytes() != 1024 {
		t.Fatalf("fresh arena free=%d", b.freeBytes())
	}
	a1, err := b.alloc(100) // order 128
	if err != nil {
		t.Fatal(err)
	}
	a2, err := b.alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if b.freeBytes() != 1024-128-64 {
		t.Fatalf("free=%d after two allocs", b.freeBytes())
	}
	if err := b.freeBlock(a1); err != nil {
		t.Fatal(err)
	}
	if err := b.freeBlock(a2); err != nil {
		t.Fatal(err)
	}
	if b.freeBytes() != 1024 {
		t.Fatalf("free=%d after frees; coalescing broken", b.freeBytes())
	}
	// After full coalescing a max-order alloc must succeed again.
	if _, err := b.alloc(1024); err != nil {
		t.Fatalf("arena did not coalesce to full: %v", err)
	}
}

func TestBuddyDoubleFree(t *testing.T) {
	b, _ := newBuddy(1024, 64)
	a, _ := b.alloc(64)
	if err := b.freeBlock(a); err != nil {
		t.Fatal(err)
	}
	if err := b.freeBlock(a); err == nil {
		t.Fatal("double free undetected")
	}
}

func TestPutGetDelete(t *testing.T) {
	s := newStore(t)
	c := s.Connect()
	if err := c.Put(42, []byte("value-42")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(42)
	if err != nil || string(got) != "value-42" {
		t.Fatalf("Get: %q %v", got, err)
	}
	if err := c.Put(42, []byte("updated")); err != nil {
		t.Fatal(err)
	}
	got, _ = c.Get(42)
	if string(got) != "updated" {
		t.Fatalf("overwrite: %q", got)
	}
	if err := c.Delete(42); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(42); err != ErrNotFound {
		t.Fatalf("after delete: %v", err)
	}
	if err := c.Delete(42); err != ErrNotFound {
		t.Fatalf("double delete: %v", err)
	}
}

func TestManyKeysSurviveChurn(t *testing.T) {
	s := newStore(t)
	c := s.Connect()
	for round := 0; round < 3; round++ {
		for k := uint64(0); k < 500; k++ {
			if err := c.Put(k, []byte(fmt.Sprintf("r%d-k%d", round, k))); err != nil {
				t.Fatalf("round %d put %d: %v", round, k, err)
			}
		}
		for k := uint64(0); k < 500; k++ {
			got, err := c.Get(k)
			if err != nil || string(got) != fmt.Sprintf("r%d-k%d", round, k) {
				t.Fatalf("round %d get %d: %q %v", round, k, got, err)
			}
		}
	}
	if s.Len() != 500 {
		t.Fatalf("store holds %d objects, want 500", s.Len())
	}
}

func TestConcurrentClients(t *testing.T) {
	s := newStore(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := s.Connect()
			base := uint64(g * 1000)
			for i := uint64(0); i < 200; i++ {
				if err := c.Put(base+i, []byte{byte(g), byte(i)}); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
			for i := uint64(0); i < 200; i++ {
				got, err := c.Get(base + i)
				if err != nil || got[0] != byte(g) {
					t.Errorf("get: %v %v", got, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCrashBlocksOthersUntilRecovery reproduces the paper's §4.2 point: a
// client dying with a lock held blocks others indefinitely; only the
// (blocking, stop-the-world) recovery unblocks them.
func TestCrashBlocksOthersUntilRecovery(t *testing.T) {
	s := newStore(t)
	victim := s.Connect()
	other := s.Connect()

	if err := victim.Put(7, []byte("before")); err != nil {
		t.Fatal(err)
	}
	if err := victim.CrashHoldingLock(7); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := other.Get(7) // spins on the dead client's bucket lock
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("Get completed while a dead client held the lock")
	case <-time.After(30 * time.Millisecond):
		// blocked, as expected
	}

	s.Recover()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Get after recovery: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recovery did not unblock the waiting client")
	}
	// The in-flight operation was rolled back: old value intact.
	got, err := other.Get(7)
	if err != nil || string(got) != "before" {
		t.Fatalf("rollback: %q %v", got, err)
	}
}

func TestRecoveryRollsBackAllocation(t *testing.T) {
	s := newStore(t)
	victim := s.Connect()
	free0 := s.b.freeBytes()
	if err := victim.CrashHoldingLock(99); err != nil {
		t.Fatal(err)
	}
	s.Recover()
	if got := s.b.freeBytes(); got != free0 {
		t.Fatalf("free bytes %d after recovery, want %d", got, free0)
	}
	if _, err := s.Connect().Get(99); err != ErrNotFound {
		t.Fatalf("phantom key after rollback: %v", err)
	}
}

func TestCrashedClientRefusesOps(t *testing.T) {
	s := newStore(t)
	c := s.Connect()
	c.Crash()
	if err := c.Put(1, []byte("x")); err != ErrCrashed {
		t.Fatalf("put after crash: %v", err)
	}
	if _, err := c.Get(1); err != ErrCrashed {
		t.Fatalf("get after crash: %v", err)
	}
}
