// Package mapreduce implements CXL-MapReduce, the paper's end-to-end
// pass-by-reference application (§6.3.2, Figure 9): a Phoenix-style
// shared-memory MapReduce where map and reduce phases share the same RDSM
// region — splits and intermediate results are shared objects and only
// references move between coordinator and executors.
//
// The baseline ("Phoenix*" in our benches, see DESIGN.md's substitution
// table) is the same topology with pass-by-value plumbing: every split and
// every intermediate result is copied between coordinator and executors,
// the cost structure of MapReduce without shared memory.
//
// Two workloads, as in the paper: word count and kmeans.
package mapreduce

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/layout"
	"repro/internal/shm"
)

// hashWord is the word identity both implementations share, so results are
// directly comparable.
func hashWord(w string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(w); i++ {
		h ^= uint64(w[i])
		h *= 1099511628211
	}
	return h
}

// countWords is the shared map function: word-frequency of a text chunk.
func countWords(chunk string) map[uint64]int64 {
	counts := make(map[uint64]int64, 256)
	start := -1
	for i := 0; i <= len(chunk); i++ {
		isSpace := i == len(chunk) || chunk[i] == ' ' || chunk[i] == '\n' || chunk[i] == '\t'
		if isSpace {
			if start >= 0 {
				counts[hashWord(chunk[start:i])]++
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return counts
}

// splitText cuts text into n word-aligned chunks.
func splitText(text string, n int) []string {
	if n < 1 {
		n = 1
	}
	var chunks []string
	step := len(text) / n
	if step < 1 {
		step = 1
	}
	for off := 0; off < len(text); {
		end := off + step
		if end >= len(text) {
			end = len(text)
		} else {
			for end < len(text) && text[end] != ' ' && text[end] != '\n' {
				end++
			}
		}
		chunks = append(chunks, text[off:end])
		off = end
	}
	return chunks
}

// mergeCounts folds src into dst.
func mergeCounts(dst, src map[uint64]int64) {
	for k, v := range src {
		dst[k] += v
	}
}

// --- pass-by-value baseline (Phoenix*) ---

// WordCountValue runs word count with executors workers, copying splits in
// and intermediate count tables out (pass-by-value).
func WordCountValue(text string, executors int) map[uint64]int64 {
	chunks := splitText(text, executors*4)
	in := make(chan []byte, len(chunks))
	out := make(chan map[uint64]int64, len(chunks))
	var wg sync.WaitGroup
	for e := 0; e < executors; e++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for chunk := range in {
				local := countWords(string(chunk)) // copy-in: []byte -> string
				// Copy-out: rebuild the table as a fresh value.
				res := make(map[uint64]int64, len(local))
				for k, v := range local {
					res[k] = v
				}
				out <- res
			}
		}()
	}
	for _, c := range chunks {
		in <- []byte(c) // the pass-by-value copy of the split
	}
	close(in)
	go func() { wg.Wait(); close(out) }()
	total := make(map[uint64]int64)
	for res := range out {
		mergeCounts(total, res)
	}
	return total
}

// --- pass-by-reference (CXL-MapReduce) ---

// wcResultEncode writes a count table into a shared object: word 0 = pair
// count, then (hash, count) pairs.
func wcResultEncode(c *shm.Client, counts map[uint64]int64) (root, block layout.Addr, err error) {
	n := len(counts)
	root, block, err = c.Malloc((1+2*n)*layout.WordBytes, 0)
	if err != nil {
		return 0, 0, err
	}
	c.StoreWord(block, 0, uint64(n))
	i := 1
	for k, v := range counts {
		c.StoreWord(block, i, k)
		c.StoreWord(block, i+1, uint64(v))
		i += 2
	}
	return root, block, nil
}

// wcResultMergeInPlace folds a shared result object into dst without
// copying the object (reads in place).
func wcResultMergeInPlace(c *shm.Client, block layout.Addr, dst map[uint64]int64) {
	n := int(c.LoadWord(block, 0))
	for i := 0; i < n; i++ {
		k := c.LoadWord(block, 1+2*i)
		v := int64(c.LoadWord(block, 2+2*i))
		dst[k] += v
	}
}

// WordCountCXL runs word count over the shared pool: the coordinator stores
// splits as shared objects and passes references to executor clients; each
// executor reads its split in place and returns its count table as a shared
// object reference.
func WordCountCXL(p *shm.Pool, text string, executors int) (map[uint64]int64, error) {
	coord, err := p.Connect()
	if err != nil {
		return nil, err
	}
	defer coord.Close()
	chunks := splitText(text, executors*4)

	// The coordinator creates and owns every queue (both directions), so no
	// endpoint's exit can reclaim a queue while the other side still uses it.
	type exec struct {
		c        *shm.Client
		workQ    layout.Addr // coordinator -> executor (splits)
		workRoot layout.Addr
		resQ     layout.Addr // executor -> coordinator (results)
		resRoot  layout.Addr
	}
	execs := make([]*exec, executors)
	var wg sync.WaitGroup
	errs := make(chan error, executors)

	for e := range execs {
		ec, err := p.Connect()
		if err != nil {
			return nil, fmt.Errorf("mapreduce: executor %d: %w", e, err)
		}
		workRoot, workQ, err := coord.CreateQueue(ec.ID(), 8)
		if err != nil {
			return nil, err
		}
		resRoot, resQ, err := coord.CreateQueueBetween(ec.ID(), coord.ID(), 8)
		if err != nil {
			return nil, err
		}
		execs[e] = &exec{c: ec, workQ: workQ, workRoot: workRoot, resQ: resQ, resRoot: resRoot}
	}
	for e := range execs {
		ex := execs[e]
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := ex.c
			defer c.Close()
			qRoot, err := c.OpenQueue(ex.workQ)
			if err != nil {
				errs <- err
				return
			}
			resRoot, err := c.OpenQueue(ex.resQ)
			if err != nil {
				errs <- err
				return
			}
			resQ := ex.resQ
			for {
				root, split, err := c.Receive(ex.workQ)
				if err == shm.ErrQueueEmpty {
					runtime.Gosched()
					continue
				}
				if err != nil {
					errs <- err
					return
				}
				nBytes := int(c.LoadWord(split, 0))
				if nBytes == 0 { // poison: done
					c.ReleaseRoot(root)
					break
				}
				// Map: read the split in place.
				buf := make([]byte, nBytes)
				c.ReadData(split, layout.WordBytes, buf)
				local := countWords(string(buf))
				c.ReleaseRoot(root)
				// Emit the intermediate result as a shared object.
				rroot, rblock, err := wcResultEncode(c, local)
				if err != nil {
					errs <- err
					return
				}
				if err := c.Send(resQ, rblock); err != nil {
					errs <- err
					return
				}
				c.ReleaseRoot(rroot)
			}
			// Signal completion with a poison result.
			proot, pblock, err := c.Malloc(layout.WordBytes, 0)
			if err != nil {
				errs <- err
				return
			}
			c.StoreWord(pblock, 0, ^uint64(0))
			if err := c.Send(resQ, pblock); err != nil {
				errs <- err
				return
			}
			c.ReleaseRoot(proot)
			c.ReleaseRoot(qRoot)
			c.ReleaseRoot(resRoot)
			errs <- nil
		}()
	}

	// Distribute splits round-robin as shared objects.
	for i, chunk := range chunks {
		ex := execs[i%executors]
		root, block, err := coord.Malloc(layout.WordBytes+len(chunk), 0)
		if err != nil {
			return nil, err
		}
		coord.StoreWord(block, 0, uint64(len(chunk)))
		coord.WriteData(block, layout.WordBytes, []byte(chunk))
		for {
			err = coord.Send(ex.workQ, block)
			if err != shm.ErrQueueFull {
				break
			}
			runtime.Gosched()
		}
		if err != nil {
			return nil, err
		}
		if _, err := coord.ReleaseRoot(root); err != nil {
			return nil, err
		}
	}
	// Poison each executor.
	for _, ex := range execs {
		root, block, err := coord.Malloc(layout.WordBytes, 0)
		if err != nil {
			return nil, err
		}
		coord.StoreWord(block, 0, 0)
		for {
			err = coord.Send(ex.workQ, block)
			if err != shm.ErrQueueFull {
				break
			}
			runtime.Gosched()
		}
		if err != nil {
			return nil, err
		}
		coord.ReleaseRoot(root)
	}

	// Reduce: merge result objects in place until every executor poisoned.
	total := make(map[uint64]int64)
	donePoisons := 0
	for donePoisons < executors {
		progressed := false
		for e := 0; e < executors; e++ {
			q := execs[e].resQ
			root, block, err := coord.Receive(q)
			if err == shm.ErrQueueEmpty {
				continue
			}
			if err != nil {
				return nil, err
			}
			progressed = true
			if coord.LoadWord(block, 0) == ^uint64(0) {
				donePoisons++
			} else {
				wcResultMergeInPlace(coord, block, total)
			}
			coord.ReleaseRoot(root)
		}
		if !progressed {
			runtime.Gosched()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Release coordinator's queue endpoints.
	for _, ex := range execs {
		if _, err := coord.ReleaseRoot(ex.workRoot); err != nil {
			return nil, err
		}
		if _, err := coord.ReleaseRoot(ex.resRoot); err != nil {
			return nil, err
		}
	}
	return total, nil
}

// --- kmeans ---

// KMeansValue runs iters Lloyd iterations with pass-by-value plumbing: each
// iteration copies every executor's point range and the centers in, and the
// partial sums out.
func KMeansValue(points []float64, dim, k, iters, executors int) []float64 {
	n := len(points) / dim
	centers := initialCenters(points, dim, k)
	for it := 0; it < iters; it++ {
		type partial struct {
			sums   []float64
			counts []int64
		}
		out := make(chan partial, executors)
		per := (n + executors - 1) / executors
		for e := 0; e < executors; e++ {
			lo, hi := e*per, (e+1)*per
			if hi > n {
				hi = n
			}
			if lo >= hi {
				out <- partial{make([]float64, k*dim), make([]int64, k)}
				continue
			}
			// Pass-by-value: copy the range and the centers.
			rangeCopy := append([]float64(nil), points[lo*dim:hi*dim]...)
			centersCopy := append([]float64(nil), centers...)
			go func() {
				sums := make([]float64, k*dim)
				counts := make([]int64, k)
				assignRange(rangeCopy, centersCopy, dim, k, sums, counts)
				// Copy-out of the partials.
				out <- partial{append([]float64(nil), sums...), append([]int64(nil), counts...)}
			}()
		}
		sums := make([]float64, k*dim)
		counts := make([]int64, k)
		for e := 0; e < executors; e++ {
			p := <-out
			for i := range sums {
				sums[i] += p.sums[i]
			}
			for i := range counts {
				counts[i] += p.counts[i]
			}
		}
		centers = newCenters(sums, counts, centers, dim, k)
	}
	return centers
}

func initialCenters(points []float64, dim, k int) []float64 {
	centers := make([]float64, k*dim)
	copy(centers, points[:min(len(points), k*dim)])
	return centers
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// assignRange accumulates cluster sums/counts for a point range.
func assignRange(pts, centers []float64, dim, k int, sums []float64, counts []int64) {
	n := len(pts) / dim
	for p := 0; p < n; p++ {
		best, bestD := 0, math.MaxFloat64
		for c := 0; c < k; c++ {
			d := 0.0
			for j := 0; j < dim; j++ {
				diff := pts[p*dim+j] - centers[c*dim+j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		for j := 0; j < dim; j++ {
			sums[best*dim+j] += pts[p*dim+j]
		}
		counts[best]++
	}
}

func newCenters(sums []float64, counts []int64, old []float64, dim, k int) []float64 {
	centers := make([]float64, k*dim)
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			copy(centers[c*dim:(c+1)*dim], old[c*dim:(c+1)*dim])
			continue
		}
		for j := 0; j < dim; j++ {
			centers[c*dim+j] = sums[c*dim+j] / float64(counts[c])
		}
	}
	return centers
}
