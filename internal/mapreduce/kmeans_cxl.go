package mapreduce

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/layout"
	"repro/internal/shm"
)

// KMeansCXL runs iters Lloyd iterations over the shared pool: each
// executor's point range is stored in shared memory once and read in place
// every iteration; only the (tiny) centers object and partial-sum object
// references move per iteration. This is the pass-by-reference advantage
// Figure 9 quantifies — the value baseline re-copies the ranges every
// iteration.
func KMeansCXL(p *shm.Pool, points []float64, dim, k, iters, executors int) ([]float64, error) {
	n := len(points) / dim
	coord, err := p.Connect()
	if err != nil {
		return nil, err
	}
	defer coord.Close()

	// Store each executor's range as a shared object: word 0 = point count,
	// then count*dim float64 bit patterns.
	per := (n + executors - 1) / executors
	type exec struct {
		c         *shm.Client
		rangeRoot layout.Addr
		rangeObj  layout.Addr
		workRoot  layout.Addr
		workQ     layout.Addr
		resRoot   layout.Addr
		resQ      layout.Addr
	}
	execs := make([]*exec, executors)
	for e := 0; e < executors; e++ {
		lo, hi := e*per, (e+1)*per
		if hi > n {
			hi = n
		}
		if lo > hi {
			lo = hi
		}
		cnt := hi - lo
		root, obj, err := coord.Malloc((1+cnt*dim)*layout.WordBytes, 0)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: range %d: %w", e, err)
		}
		coord.StoreWord(obj, 0, uint64(cnt))
		for i := 0; i < cnt*dim; i++ {
			coord.StoreWord(obj, 1+i, math.Float64bits(points[lo*dim+i]))
		}
		ec, err := p.Connect()
		if err != nil {
			return nil, err
		}
		workRoot, workQ, err := coord.CreateQueue(ec.ID(), 4)
		if err != nil {
			return nil, err
		}
		resRoot, resQ, err := coord.CreateQueueBetween(ec.ID(), coord.ID(), 4)
		if err != nil {
			return nil, err
		}
		execs[e] = &exec{c: ec, rangeRoot: root, rangeObj: obj,
			workRoot: workRoot, workQ: workQ, resRoot: resRoot, resQ: resQ}
	}

	var wg sync.WaitGroup
	errs := make(chan error, executors)
	for e := range execs {
		ex := execs[e]
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := ex.c
			defer c.Close()
			qRoot, err := c.OpenQueue(ex.workQ)
			if err != nil {
				errs <- err
				return
			}
			resRoot, err := c.OpenQueue(ex.resQ)
			if err != nil {
				errs <- err
				return
			}
			resQ := ex.resQ
			// Attach the range once; read it in place every iteration.
			rr, err := c.AttachRoot(ex.rangeObj)
			if err != nil {
				errs <- err
				return
			}
			cnt := int(c.LoadWord(ex.rangeObj, 0))
			pts := make([]float64, cnt*dim)
			for i := range pts {
				pts[i] = math.Float64frombits(c.LoadWord(ex.rangeObj, 1+i))
			}
			centers := make([]float64, k*dim)
			sums := make([]float64, k*dim)
			counts := make([]int64, k)
			for {
				root, centersObj, err := c.Receive(ex.workQ)
				if err == shm.ErrQueueEmpty {
					runtime.Gosched()
					continue
				}
				if err != nil {
					errs <- err
					return
				}
				if c.LoadWord(centersObj, 0) == ^uint64(0) { // poison
					c.ReleaseRoot(root)
					break
				}
				for i := range centers {
					centers[i] = math.Float64frombits(c.LoadWord(centersObj, 1+i))
				}
				c.ReleaseRoot(root)
				for i := range sums {
					sums[i] = 0
				}
				for i := range counts {
					counts[i] = 0
				}
				assignRange(pts, centers, dim, k, sums, counts)
				// Partial object: k*dim sums then k counts.
				proot, pobj, err := c.Malloc((k*dim+k)*layout.WordBytes, 0)
				if err != nil {
					errs <- err
					return
				}
				for i, s := range sums {
					c.StoreWord(pobj, i, math.Float64bits(s))
				}
				for i, cn := range counts {
					c.StoreWord(pobj, k*dim+i, uint64(cn))
				}
				if err := c.Send(resQ, pobj); err != nil {
					errs <- err
					return
				}
				c.ReleaseRoot(proot)
			}
			c.ReleaseRoot(rr)
			c.ReleaseRoot(qRoot)
			c.ReleaseRoot(resRoot)
			errs <- nil
		}()
	}

	centers := initialCenters(points, dim, k)
	for it := 0; it < iters; it++ {
		// Broadcast centers: one shared object per executor round (word 0 =
		// marker, then k*dim floats).
		for _, ex := range execs {
			root, obj, err := coord.Malloc((1+k*dim)*layout.WordBytes, 0)
			if err != nil {
				return nil, err
			}
			coord.StoreWord(obj, 0, uint64(it+1))
			for i, cv := range centers {
				coord.StoreWord(obj, 1+i, math.Float64bits(cv))
			}
			if err := sendWait(coord, ex.workQ, obj); err != nil {
				return nil, err
			}
			coord.ReleaseRoot(root)
		}
		// Gather partials.
		sums := make([]float64, k*dim)
		counts := make([]int64, k)
		got := 0
		for got < executors {
			progressed := false
			for e := range execs {
				root, pobj, err := coord.Receive(execs[e].resQ)
				if err == shm.ErrQueueEmpty {
					continue
				}
				if err != nil {
					return nil, err
				}
				progressed = true
				got++
				for i := range sums {
					sums[i] += math.Float64frombits(coord.LoadWord(pobj, i))
				}
				for i := range counts {
					counts[i] += int64(coord.LoadWord(pobj, k*dim+i))
				}
				coord.ReleaseRoot(root)
			}
			if !progressed {
				runtime.Gosched()
			}
		}
		centers = newCenters(sums, counts, centers, dim, k)
	}

	// Poison executors.
	for _, ex := range execs {
		root, obj, err := coord.Malloc(layout.WordBytes, 0)
		if err != nil {
			return nil, err
		}
		coord.StoreWord(obj, 0, ^uint64(0))
		if err := sendWait(coord, ex.workQ, obj); err != nil {
			return nil, err
		}
		coord.ReleaseRoot(root)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, ex := range execs {
		if _, err := coord.ReleaseRoot(ex.rangeRoot); err != nil {
			return nil, err
		}
		if _, err := coord.ReleaseRoot(ex.workRoot); err != nil {
			return nil, err
		}
		if _, err := coord.ReleaseRoot(ex.resRoot); err != nil {
			return nil, err
		}
	}
	return centers, nil
}

// sendWait retries a queue send until it is accepted.
func sendWait(c *shm.Client, q, block layout.Addr) error {
	for {
		err := c.Send(q, block)
		if err != shm.ErrQueueFull {
			return err
		}
		runtime.Gosched()
	}
}
