package mapreduce

import (
	"math"
	"testing"

	"repro/internal/check"
	"repro/internal/layout"
	"repro/internal/shm"
	"repro/internal/workload"
)

func newPool(t *testing.T) *shm.Pool {
	t.Helper()
	p, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients: 16, NumSegments: 64, SegmentWords: 1 << 14, PageWords: 1 << 10,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func referenceCounts(text string) map[uint64]int64 {
	return countWords(text)
}

func TestSplitTextPreservesWords(t *testing.T) {
	text := "alpha beta gamma delta epsilon zeta eta theta"
	for _, n := range []int{1, 2, 3, 8, 100} {
		chunks := splitText(text, n)
		joined := ""
		for i, c := range chunks {
			if i > 0 {
				joined += " "
			}
			joined += c
		}
		want := referenceCounts(text)
		got := referenceCounts(joined)
		if len(got) != len(want) {
			t.Fatalf("n=%d: vocabulary changed", n)
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("n=%d: count mismatch", n)
			}
		}
	}
}

func TestWordCountValueMatchesReference(t *testing.T) {
	text := workload.Text(20000, 200, 1)
	want := referenceCounts(text)
	got := WordCountValue(text, 4)
	if len(got) != len(want) {
		t.Fatalf("vocab %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count mismatch for %d: %d vs %d", k, got[k], v)
		}
	}
}

func TestWordCountCXLMatchesReference(t *testing.T) {
	p := newPool(t)
	text := workload.Text(20000, 200, 2)
	want := referenceCounts(text)
	got, err := WordCountCXL(p, text, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("vocab %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count mismatch for %d: %d vs %d", k, got[k], v)
		}
	}
	// No leaks: all splits, results, and queues reclaimed (executors closed;
	// run recovery-free validation after registry sweep).
	p.SweepQueueRegistry()
	res := check.Validate(p)
	// Executors exited via Close (marked dead) — their segments may be
	// awaiting recovery; allocated objects should nevertheless be zero
	// because the workload released everything explicitly.
	if res.AllocatedObjects != 0 {
		for _, is := range res.Issues {
			t.Logf("validate: %s", is)
		}
		t.Fatalf("wordcount leaked %d objects", res.AllocatedObjects)
	}
}

func TestKMeansValueConverges(t *testing.T) {
	pts := workload.Points(600, 4, 3, 7)
	centers := KMeansValue(pts, 4, 3, 10, 2)
	if len(centers) != 12 {
		t.Fatalf("centers len %d", len(centers))
	}
	assertLowInertia(t, pts, centers, 4, 3)
}

func TestKMeansCXLMatchesValueBaseline(t *testing.T) {
	p := newPool(t)
	pts := workload.Points(600, 4, 3, 7)
	want := KMeansValue(pts, 4, 3, 10, 2)
	got, err := KMeansCXL(p, pts, 4, 3, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-6 {
			t.Fatalf("center %d: %v vs %v", i, got[i], want[i])
		}
	}
	p.SweepQueueRegistry()
	res := check.Validate(p)
	if res.AllocatedObjects != 0 {
		for _, is := range res.Issues {
			t.Logf("validate: %s", is)
		}
		t.Fatalf("kmeans leaked %d objects", res.AllocatedObjects)
	}
}

func TestKMeansExecutorCountInvariance(t *testing.T) {
	pts := workload.Points(500, 3, 4, 9)
	a := KMeansValue(pts, 3, 4, 5, 1)
	b := KMeansValue(pts, 3, 4, 5, 4)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-6 {
			t.Fatalf("executor count changed the result at %d", i)
		}
	}
}

func assertLowInertia(t *testing.T, pts, centers []float64, dim, k int) {
	t.Helper()
	n := len(pts) / dim
	var inertia float64
	for p := 0; p < n; p++ {
		best := math.MaxFloat64
		for c := 0; c < k; c++ {
			d := 0.0
			for j := 0; j < dim; j++ {
				diff := pts[p*dim+j] - centers[c*dim+j]
				d += diff * diff
			}
			if d < best {
				best = d
			}
		}
		inertia += best
	}
	// Points are generated with σ=5 around true centers: per-point squared
	// distance should be around dim*25; allow generous slack for cluster
	// merges with k < true k.
	if avg := inertia / float64(n); avg > 50000 {
		t.Fatalf("kmeans did not converge: avg inertia %v", avg)
	}
}
