package shm

import (
	"fmt"

	"repro/internal/layout"
)

// Named roots (paper §6.4): well-known counted reference slots that keep
// objects alive independent of any client's lifetime — the equivalent of a
// pmem allocator's root objects. A named root holds one counted reference;
// it survives the publisher's death (deliberately: that is its purpose) and
// is dropped only by an explicit UnpublishRoot.
//
// Slots follow the single-writer rule: coordinate ownership of a slot index
// at the application level (e.g. the KV store's creator publishes slot 0).

// PublishRoot attaches named-root slot i to block. The slot must be empty.
func (c *Client) PublishRoot(i int, block layout.Addr) error {
	if i < 0 || i >= layout.MaxNamedRoots {
		return fmt.Errorf("shm: named root index %d out of range", i)
	}
	slot := c.geo.RootDirAddr(i)
	if c.h.Load(slot) != 0 {
		return fmt.Errorf("shm: named root %d already published", i)
	}
	return c.AttachReference(slot, block)
}

// NamedRoot reads named-root slot i (0 if empty).
func (c *Client) NamedRoot(i int) (layout.Addr, error) {
	if i < 0 || i >= layout.MaxNamedRoots {
		return 0, fmt.Errorf("shm: named root index %d out of range", i)
	}
	return c.h.Load(c.geo.RootDirAddr(i)), nil
}

// OpenRoot takes the caller's own counted reference to the object published
// at named-root slot i.
func (c *Client) OpenRoot(i int) (root, block layout.Addr, err error) {
	block, err = c.NamedRoot(i)
	if err != nil {
		return 0, 0, err
	}
	if block == 0 {
		return 0, 0, fmt.Errorf("shm: named root %d is empty", i)
	}
	root, err = c.AttachRoot(block)
	if err != nil {
		return 0, 0, err
	}
	return root, block, nil
}

// UnpublishRoot releases the reference held by named-root slot i.
func (c *Client) UnpublishRoot(i int) error {
	if i < 0 || i >= layout.MaxNamedRoots {
		return fmt.Errorf("shm: named root index %d out of range", i)
	}
	slot := c.geo.RootDirAddr(i)
	t := c.h.Load(slot)
	if t == 0 {
		return nil
	}
	_, err := c.ReleaseReference(slot, t)
	return err
}
