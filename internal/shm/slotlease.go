package shm

// Slot leases: the client-lifecycle refactor that decouples attach cost
// from MaxClients. A client slot is leased, not merely claimed: the
// free-slot bitmap (layout.SlotMapBase) lets Connect find a candidate in
// O(1) device reads instead of an O(M) status scan, and the per-slot
// generation word (layout.SlotGenBase) stamps each lease so stale handles,
// stale bitmap bits, and half-finished transitions are all detectable.
//
// Protocol invariants:
//
//   - The status word stays authoritative. The bitmap is an accelerator:
//     a set bit means "probably claimable"; the claim commit point is the
//     status CAS (FREE/RECOVERED → ALIVE), never the bitmap.
//   - Generation parity tracks the lease: odd while leased (ALIVE or DEAD),
//     even while claimable (FREE or RECOVERED). Claim bumps even→odd after
//     the status CAS; recovery bumps odd→even before publishing RECOVERED.
//     Both bumps are idempotent (a word already at the target parity is
//     left alone), so every crash window between the status word and the
//     generation word is closed by re-running the transition.
//   - Crash ordering: a claimer that dies between its status CAS and its
//     generation bump leaves ALIVE+even; the monitor fences it and recovery
//     (whose release bump is a no-op on even) publishes RECOVERED+even —
//     consistent. Recovery dying between its generation bump and the
//     RECOVERED store leaves DEAD+even, which the monitor simply recovers
//     again. A slot can therefore never get stuck with a parity its status
//     disallows; internal/check flags any such disagreement as a
//     stale-lease issue.

import (
	"fmt"
	"math/bits"

	"repro/internal/layout"
)

// SlotExhaustedError is the error Connect returns when no client slot is
// claimable, carrying the slot census so callers (and operators reading the
// message) can tell "pool is full of live clients" from "dead clients are
// piling up faster than recovery drains them". errors.Is(err,
// ErrTooManyClients) still matches it.
type SlotExhaustedError struct {
	Capacity int // MaxClients: total slots in the pool
	Alive    int // slots held by live clients
	Dead     int // slots held by dead clients awaiting recovery
}

func (e *SlotExhaustedError) Error() string {
	return fmt.Sprintf("shm: no free client slot (capacity %d: %d alive, %d dead awaiting recovery)",
		e.Capacity, e.Alive, e.Dead)
}

// Is keeps the sentinel contract: errors.Is(err, ErrTooManyClients).
func (e *SlotExhaustedError) Is(target error) bool { return target == ErrTooManyClients }

// SlotGeneration reads cid's lease-generation word.
func (p *Pool) SlotGeneration(cid int) uint64 {
	return p.dev.Load(p.geo.SlotGenAddr(cid))
}

// claimSlot finds and claims a claimable slot, returning its cid or 0 when
// the pool is exhausted. The bitmap walk costs O(M/64) loads and — when the
// bitmap is fresh — exactly one status CAS, independent of how many slots
// are occupied; each stale bit costs one extra CAS to self-heal.
func (p *Pool) claimSlot() int {
	geo := p.geo
	for w := 0; w < int(geo.SlotMapWords); w++ {
		a := geo.SlotMapAddr(w)
		for {
			bm := p.dev.Load(a)
			if bm == 0 {
				break
			}
			bit := bm & (^bm + 1) // lowest set bit
			cid := w*64 + bits.TrailingZeros64(bm) + 1
			if cid <= geo.MaxClients && p.tryClaimSlot(cid) {
				// Retire the bit (best effort: the monitor's reconcile duty
				// heals a lost race, and a stale set bit only costs the next
				// claimer one failed CAS).
				p.dev.CAS(a, bm, bm&^bit)
				return cid
			}
			// Stale bit — the slot is not claimable (lost race, or a bit
			// beyond MaxClients). Clear it so the next candidate surfaces.
			p.dev.CAS(a, bm, bm&^bit)
		}
	}
	// Fallback: crash windows can transiently hide a claimable slot from the
	// bitmap (claimer died before recovery republished the bit). The status
	// words are authoritative, so one O(M) scan settles exhaustion for real.
	for cid := 1; cid <= geo.MaxClients; cid++ {
		if p.tryClaimSlot(cid) {
			return cid
		}
	}
	return 0
}

// tryClaimSlot attempts the claim commit point on one slot: a status CAS
// from a claimable state to ALIVE.
func (p *Pool) tryClaimSlot(cid int) bool {
	if cid < 1 || cid > p.geo.MaxClients {
		return false
	}
	a := p.geo.ClientStatusAddr(cid)
	s := p.dev.Load(a)
	if s != layout.ClientSlotFree && s != layout.ClientRecovered {
		return false
	}
	return p.dev.CAS(a, s, layout.ClientAlive)
}

// stampLeaseGen moves a freshly claimed slot's generation to odd ("leased")
// and returns the lease generation. Idempotent: an already-odd word (a
// previous claimer died right after its own bump and the slot came back
// through recovery... impossible by the release ordering, but harmless)
// is returned unchanged.
func (p *Pool) stampLeaseGen(cid int) uint64 {
	a := p.geo.SlotGenAddr(cid)
	g := p.dev.Load(a)
	if g%2 == 0 {
		g++
		p.dev.Store(a, g)
	}
	return g
}

// FinishSlotLease completes a recovered client's lease release in the
// crash-safe order: generation to even first (a crash after it leaves a
// DEAD slot with an even generation, which the monitor simply recovers
// again — the bump back is a no-op), then the status word to RECOVERED
// (the commit point that makes the slot claimable), then the bitmap bit
// (accelerator only). Called by the recovery service as its final step.
func (p *Pool) FinishSlotLease(cid int) {
	ga := p.geo.SlotGenAddr(cid)
	if g := p.dev.Load(ga); g%2 == 1 {
		p.dev.Store(ga, g+1)
	}
	p.dev.Store(p.geo.ClientStatusAddr(cid), layout.ClientRecovered)
	p.publishSlotBit(cid)
}

// publishSlotBit sets cid's free-slot bitmap bit. Losing a CAS race to a
// concurrent claimer or reconciler is fine — the bit is an accelerator.
func (p *Pool) publishSlotBit(cid int) {
	a, bit := p.geo.SlotMapBit(cid)
	for {
		bm := p.dev.Load(a)
		if bm&bit != 0 || p.dev.CAS(a, bm, bm|bit) {
			return
		}
	}
}

// ReconcileSlotMap repairs the free-slot bitmap against the authoritative
// status words: claimable slots (FREE/RECOVERED) get their bit set, leased
// slots (ALIVE/DEAD) get it cleared. The monitor runs this every tick to
// heal the crash windows between a claim's status CAS and its bitmap
// update. Races with concurrent claims can re-stale a bit; the next
// reconcile (or the claimer's own self-heal) fixes it.
func (p *Pool) ReconcileSlotMap() {
	geo := p.geo
	for w := 0; w < int(geo.SlotMapWords); w++ {
		var want uint64
		for b := 0; b < 64; b++ {
			cid := w*64 + b + 1
			if cid > geo.MaxClients {
				break
			}
			switch p.ClientStatus(cid) {
			case layout.ClientSlotFree, layout.ClientRecovered:
				want |= 1 << uint(b)
			}
		}
		a := geo.SlotMapAddr(w)
		if cur := p.dev.Load(a); cur != want {
			p.dev.CAS(a, cur, want)
		}
	}
}

// ScrubEraRow zeroes the stale-evidence entries of dead client cid's era
// row so the slot's next lessee inherits a near-empty row instead of the
// previous incarnation's full witness history. An entry Era[cid][j] = e is
// a recovery witness only for transactions of j with era ≤ e, and the only
// redo entry of j that can still replay carries j's *current* era (older
// entries are era-gated stale, redo.go); so once e is at least two eras
// behind Era[j][j] — one era of margin for the bump-after-commit window —
// the entry can never again be the deciding witness and is safe to drop.
// Entries at or near j's current era are kept: they may be live evidence
// for a concurrent recovery of j. Called with cid fenced (no new writes to
// the row can race the scrub).
func (p *Pool) ScrubEraRow(cid int) {
	geo := p.geo
	for j := 1; j <= geo.MaxClients; j++ {
		if j == cid {
			continue
		}
		a := geo.EraAddr(cid, j)
		v := p.dev.Load(a)
		if v == 0 {
			continue
		}
		if v+2 < p.dev.Load(geo.EraAddr(j, j)) {
			p.dev.Store(a, 0)
		}
	}
}

// slotCensus counts leased slots for SlotExhaustedError and Usage.
func (p *Pool) slotCensus() (alive, dead int) {
	for cid := 1; cid <= p.geo.MaxClients; cid++ {
		switch p.ClientStatus(cid) {
		case layout.ClientAlive:
			alive++
		case layout.ClientDead:
			dead++
		}
	}
	return alive, dead
}
