package shm

import (
	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/obs"
)

// Reference transfer over shared single-producer-single-consumer queues
// (paper §5.2, Figure 5).
//
// A queue is an ordinary CXLObj whose embedded references are its slots, so
// in-flight references are owned by the queue object itself: if sender,
// receiver, or both die, the queue's reference count eventually reaches zero
// and the standard embedded-reference cascade releases every in-flight
// reference — no ambiguity about the ownership of a reference "on the wire".
// Ownership of a sent reference transfers atomically at the store that
// advances the tail offset.
//
// Queue object data layout (embedded slots must come first, §5.4):
//
//	data[0 .. cap-1]  slots (embedded references)
//	data[cap+0]       info: sender cid | receiver cid << 16 | registry idx << 32
//	data[cap+1]       head (absolute receive counter)
//	data[cap+2]       tail (absolute send counter)
//
// Queues are registered in the pool's queue registry so the recovery
// service and late-joining receivers can discover them.

// queue data-area offsets relative to the block address.
func queueSlot(block layout.Addr, capacity int, i uint64) layout.Addr {
	return block + layout.DataOff + layout.Addr(i%uint64(capacity))
}
func queueInfoAddr(block layout.Addr, capacity int) layout.Addr {
	return block + layout.DataOff + layout.Addr(capacity)
}
func queueHeadAddr(block layout.Addr, capacity int) layout.Addr {
	return block + layout.DataOff + layout.Addr(capacity) + 1
}
func queueTailAddr(block layout.Addr, capacity int) layout.Addr {
	return block + layout.DataOff + layout.Addr(capacity) + 2
}

// QueueInfo describes a transfer queue's endpoints.
type QueueInfo struct {
	Sender   int
	Receiver int
	RegIdx   int
	Capacity int
}

func packQueueInfo(sender, receiver, reg int) uint64 {
	return uint64(uint16(sender)) | uint64(uint16(receiver))<<16 | uint64(uint32(reg))<<32
}

func unpackQueueInfo(w uint64) (sender, receiver, reg int) {
	return int(uint16(w)), int(uint16(w >> 16)), int(uint32(w >> 32))
}

// CreateQueue allocates and registers a transfer queue from this client to
// receiverCID. It returns the sender's RootRef for the queue object and the
// queue block address (which the receiver needs; discoverable through the
// registry as well).
func (c *Client) CreateQueue(receiverCID, capacity int) (root, block layout.Addr, err error) {
	return c.CreateQueueBetween(c.cid, receiverCID, capacity)
}

// CreateQueueBetween allocates and registers a transfer queue between two
// other clients (e.g. a coordinator wiring up its workers). The creator
// holds the returned RootRef and thereby owns the queue's lifetime; the
// endpoints typically OpenQueue their own references on top.
func (c *Client) CreateQueueBetween(senderCID, receiverCID, capacity int) (root, block layout.Addr, err error) {
	if capacity < 1 {
		capacity = 1
	}
	dataBytes := (capacity + 3) * layout.WordBytes
	root, block, err = c.Malloc(dataBytes, capacity)
	if err != nil {
		return 0, 0, err
	}
	// Mark the block as a queue before registering it: the registry sweep
	// clears entries pointing at non-queue blocks, so the other order would
	// race with the monitor.
	m := layout.UnpackMeta(c.h.Load(block + layout.MetaOff))
	m.Flags |= layout.MetaQueue
	c.h.Store(block+layout.MetaOff, layout.PackMeta(m))

	reg := -1
	for i := 0; i < c.geo.MaxQueues; i++ {
		a := c.geo.QueueRegAddr(i)
		if c.h.Load(a) == 0 && c.h.CAS(a, 0, block) {
			reg = i
			break
		}
	}
	if reg < 0 {
		if _, rerr := c.ReleaseRoot(root); rerr != nil {
			return 0, 0, rerr
		}
		return 0, 0, ErrNoQueueSlot
	}
	c.h.Store(queueInfoAddr(block, capacity), packQueueInfo(senderCID, receiverCID, reg))
	c.h.Store(queueHeadAddr(block, capacity), 0)
	c.h.Store(queueTailAddr(block, capacity), 0)
	return root, block, nil
}

// QueueInfoOf reads a queue block's endpoints and capacity.
func (c *Client) QueueInfoOf(block layout.Addr) QueueInfo {
	m := layout.UnpackMeta(c.h.Load(block + layout.MetaOff))
	capacity := int(m.EmbedCnt)
	s, r, reg := unpackQueueInfo(c.h.Load(queueInfoAddr(block, capacity)))
	return QueueInfo{Sender: s, Receiver: r, RegIdx: reg, Capacity: capacity}
}

// FindQueueFrom scans the registry for a queue whose sender is senderCID and
// whose receiver is this client. Returns the block address or 0.
func (c *Client) FindQueueFrom(senderCID int) layout.Addr {
	for i := 0; i < c.geo.MaxQueues; i++ {
		block := c.h.Load(c.geo.QueueRegAddr(i))
		if block == 0 {
			continue
		}
		m := layout.UnpackMeta(c.h.Load(block + layout.MetaOff))
		if !m.Allocated() || m.Flags&layout.MetaQueue == 0 {
			continue
		}
		qi := c.QueueInfoOf(block)
		if qi.Sender == senderCID && qi.Receiver == c.cid {
			return block
		}
	}
	return 0
}

// OpenQueue attaches this client's own counted reference (RootRef) to an
// existing queue block, so the queue object outlives either endpoint alone.
// Receivers must call this before their first Receive.
func (c *Client) OpenQueue(block layout.Addr) (root layout.Addr, err error) {
	return c.AttachRoot(block)
}

// Send transfers a counted reference to target through the queue (paper
// cxl_send_to): attach the queue slot to the object with the standard era
// transaction — incrementing its count — then advance the tail, which is the
// atomic ownership-transfer point.
func (c *Client) Send(block layout.Addr, target layout.Addr) error {
	m := layout.UnpackMeta(c.h.Load(block + layout.MetaOff))
	capacity := int(m.EmbedCnt)
	headA, tailA := queueHeadAddr(block, capacity), queueTailAddr(block, capacity)
	head, tail := c.h.Load(headA), c.h.Load(tailA)
	if tail-head >= uint64(capacity) {
		c.loc[obs.CtrQueueFull]++
		return ErrQueueFull
	}
	slot := queueSlot(block, capacity, tail)
	if err := c.AttachReference(slot, target); err != nil {
		return err
	}
	c.hit(faultinject.AfterSendAttach)
	c.h.Store(tailA, tail+1)
	c.loc[obs.CtrQueueSend]++
	return nil
}

// Receive takes the next reference from the queue (paper cxl_receive_from):
// attach a fresh RootRef to the object, release the queue slot's reference,
// advance the head. Returns the receiver's new RootRef and the object
// address, or ErrQueueEmpty.
func (c *Client) Receive(block layout.Addr) (root, target layout.Addr, err error) {
	m := layout.UnpackMeta(c.h.Load(block + layout.MetaOff))
	capacity := int(m.EmbedCnt)
	headA, tailA := queueHeadAddr(block, capacity), queueTailAddr(block, capacity)
	head, tail := c.h.Load(headA), c.h.Load(tailA)
	if head == tail {
		c.loc[obs.CtrQueueEmpty]++
		return 0, 0, ErrQueueEmpty
	}
	slot := queueSlot(block, capacity, head)
	target = c.h.Load(slot)
	if target == 0 {
		// The slot was already released (we died after releasing but before
		// advancing the head last time, and recovery replayed): just advance.
		c.h.Store(headA, head+1)
		c.loc[obs.CtrQueueEmpty]++
		return 0, 0, ErrQueueEmpty
	}
	root, err = c.allocRootRef()
	if err != nil {
		return 0, 0, err
	}
	if err := c.AttachReference(root+layout.RootRefPptrOff, target); err != nil {
		c.abortRootRef(root)
		return 0, 0, err
	}
	c.hit(faultinject.AfterReceiveAttach)
	if _, _, err := c.releaseTxn(slot, target); err != nil {
		return 0, 0, err
	}
	c.hit(faultinject.AfterReceiveRelease)
	c.h.Store(headA, head+1)
	c.loc[obs.CtrQueueReceive]++
	return root, target, nil
}

// QueueLen reports how many references are in flight in the queue.
func (c *Client) QueueLen(block layout.Addr) int {
	m := layout.UnpackMeta(c.h.Load(block + layout.MetaOff))
	capacity := int(m.EmbedCnt)
	head := c.h.Load(queueHeadAddr(block, capacity))
	tail := c.h.Load(queueTailAddr(block, capacity))
	return int(tail - head)
}

// SweepQueueRegistry clears registry entries whose block is no longer a
// live queue (freed after both endpoints released it). Run by the monitor.
func (p *Pool) SweepQueueRegistry() int {
	cleared := 0
	for i := 0; i < p.geo.MaxQueues; i++ {
		a := p.geo.QueueRegAddr(i)
		block := p.dev.Load(a)
		if block == 0 {
			continue
		}
		m := layout.UnpackMeta(p.dev.Load(block + layout.MetaOff))
		if m.Allocated() && m.Flags&layout.MetaQueue != 0 {
			continue
		}
		if p.dev.CAS(a, block, 0) {
			cleared++
		}
	}
	return cleared
}
