package shm

import (
	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/obs"
)

// Reference transfer over shared single-producer-single-consumer queues
// (paper §5.2, Figure 5).
//
// A queue is an ordinary CXLObj whose embedded references are its slots, so
// in-flight references are owned by the queue object itself: if sender,
// receiver, or both die, the queue's reference count eventually reaches zero
// and the standard embedded-reference cascade releases every in-flight
// reference — no ambiguity about the ownership of a reference "on the wire".
// Ownership of a sent reference transfers atomically at the store that
// advances the tail offset.
//
// Queue object data layout (embedded slots must come first, §5.4):
//
//	data[0 .. cap-1]  slots (embedded references)
//	data[cap+0]       info: sender cid | receiver cid << 16 | registry idx << 32
//	data[cap+1]       head (absolute receive counter)
//	data[cap+2]       tail (absolute send counter)
//
// Queues are registered in the pool's queue registry so the recovery
// service and late-joining receivers can discover them.

// queueShadow caches one queue's fixed geometry plus Vyukov-style cached
// indices. The client's own end (tail for the sender, head for the receiver)
// is exact — it is single-writer and written through on every advance. The
// opposite end may lag behind the device: it is re-read only when the cached
// values make the queue look full (sender) or empty (receiver). A stale-low
// opposite index can only cause a spurious full/empty verdict — never an
// out-of-window slot access — so the re-read-on-miss repair is sufficient.
// Device words stay authoritative; recovery reads only the device.
type queueShadow struct {
	capacity     int
	headA, tailA layout.Addr
	head, tail   uint64
	// knownClean: this client created the queue in this incarnation, so no
	// slot can hold an orphan from a crashed predecessor — the sender-side
	// orphan probe (one load per send) is skipped. Never true for a shadow
	// rebuilt after reconnect: the flag is set only by CreateQueue itself.
	knownClean bool
}

// queueShadowOf returns (building on first use) the shadow for a queue
// block. The indices are seeded from the device, so a reconnecting client
// resumes exactly where its previous incarnation published.
func (c *Client) queueShadowOf(block layout.Addr) *queueShadow {
	if qs := c.queues[block]; qs != nil {
		return qs
	}
	m := layout.UnpackMeta(c.h.Load(block + layout.MetaOff))
	capacity := int(m.EmbedCnt)
	qs := &queueShadow{
		capacity: capacity,
		headA:    queueHeadAddr(block, capacity),
		tailA:    queueTailAddr(block, capacity),
	}
	qs.head = c.h.Load(qs.headA)
	qs.tail = c.h.Load(qs.tailA)
	c.queues[block] = qs
	return qs
}

// dropQueueShadow forgets a cached queue at a legitimate lifecycle boundary
// (the block was just created or opened, so any old cache under the same
// address belongs to a freed, recycled queue).
func (c *Client) dropQueueShadow(block layout.Addr) {
	delete(c.queues, block)
}

// queue data-area offsets relative to the block address.
func queueSlot(block layout.Addr, capacity int, i uint64) layout.Addr {
	return block + layout.DataOff + layout.Addr(i%uint64(capacity))
}
func queueInfoAddr(block layout.Addr, capacity int) layout.Addr {
	return block + layout.DataOff + layout.Addr(capacity)
}
func queueHeadAddr(block layout.Addr, capacity int) layout.Addr {
	return block + layout.DataOff + layout.Addr(capacity) + 1
}
func queueTailAddr(block layout.Addr, capacity int) layout.Addr {
	return block + layout.DataOff + layout.Addr(capacity) + 2
}

// QueueInfo describes a transfer queue's endpoints.
type QueueInfo struct {
	Sender   int
	Receiver int
	RegIdx   int
	Capacity int
}

func packQueueInfo(sender, receiver, reg int) uint64 {
	return uint64(uint16(sender)) | uint64(uint16(receiver))<<16 | uint64(uint32(reg))<<32
}

func unpackQueueInfo(w uint64) (sender, receiver, reg int) {
	return int(uint16(w)), int(uint16(w >> 16)), int(uint32(w >> 32))
}

// CreateQueue allocates and registers a transfer queue from this client to
// receiverCID. It returns the sender's RootRef for the queue object and the
// queue block address (which the receiver needs; discoverable through the
// registry as well).
func (c *Client) CreateQueue(receiverCID, capacity int) (root, block layout.Addr, err error) {
	return c.CreateQueueBetween(c.cid, receiverCID, capacity)
}

// CreateQueueBetween allocates and registers a transfer queue between two
// other clients (e.g. a coordinator wiring up its workers). The creator
// holds the returned RootRef and thereby owns the queue's lifetime; the
// endpoints typically OpenQueue their own references on top.
func (c *Client) CreateQueueBetween(senderCID, receiverCID, capacity int) (root, block layout.Addr, err error) {
	if capacity < 1 {
		capacity = 1
	}
	dataBytes := (capacity + 3) * layout.WordBytes
	root, block, err = c.Malloc(dataBytes, capacity)
	if err != nil {
		return 0, 0, err
	}
	// Mark the block as a queue before registering it: the registry sweep
	// clears entries pointing at non-queue blocks, so the other order would
	// race with the monitor.
	m := layout.UnpackMeta(c.h.Load(block + layout.MetaOff))
	m.Flags |= layout.MetaQueue
	mw := layout.PackMeta(m)
	c.h.Store(block+layout.MetaOff, mw)
	c.noteMeta(block, mw)

	reg := -1
	for i := 0; i < c.geo.MaxQueues; i++ {
		a := c.geo.QueueRegAddr(i)
		if c.h.Load(a) == 0 && c.h.CAS(a, 0, block) {
			reg = i
			break
		}
	}
	if reg < 0 {
		if _, rerr := c.ReleaseRoot(root); rerr != nil {
			return 0, 0, rerr
		}
		return 0, 0, ErrNoQueueSlot
	}
	c.h.Store(queueInfoAddr(block, capacity), packQueueInfo(senderCID, receiverCID, reg))
	c.h.Store(queueHeadAddr(block, capacity), 0)
	c.h.Store(queueTailAddr(block, capacity), 0)
	c.dropQueueShadow(block)
	if senderCID == c.cid {
		// Creator is the sender: every slot starts zero and stays clean
		// within this incarnation (receives zero slots they consume), so
		// sends can skip the orphan probe.
		c.queueShadowOf(block).knownClean = true
	}
	return root, block, nil
}

// QueueInfoOf reads a queue block's endpoints and capacity.
func (c *Client) QueueInfoOf(block layout.Addr) QueueInfo {
	m := layout.UnpackMeta(c.h.Load(block + layout.MetaOff))
	capacity := int(m.EmbedCnt)
	s, r, reg := unpackQueueInfo(c.h.Load(queueInfoAddr(block, capacity)))
	return QueueInfo{Sender: s, Receiver: r, RegIdx: reg, Capacity: capacity}
}

// FindQueueFrom scans the registry for a queue whose sender is senderCID and
// whose receiver is this client. Returns the block address or 0.
func (c *Client) FindQueueFrom(senderCID int) layout.Addr {
	for i := 0; i < c.geo.MaxQueues; i++ {
		block := c.h.Load(c.geo.QueueRegAddr(i))
		if block == 0 {
			continue
		}
		m := layout.UnpackMeta(c.h.Load(block + layout.MetaOff))
		if !m.Allocated() || m.Flags&layout.MetaQueue == 0 {
			continue
		}
		qi := c.QueueInfoOf(block)
		if qi.Sender == senderCID && qi.Receiver == c.cid {
			return block
		}
	}
	return 0
}

// OpenQueue attaches this client's own counted reference (RootRef) to an
// existing queue block, so the queue object outlives either endpoint alone.
// Receivers must call this before their first Receive.
func (c *Client) OpenQueue(block layout.Addr) (root layout.Addr, err error) {
	c.dropQueueShadow(block)
	return c.AttachRoot(block)
}

// Send transfers a counted reference to target through the queue (paper
// cxl_send_to): attach the queue slot to the object with the standard era
// transaction — incrementing its count — then advance the tail, which is the
// atomic ownership-transfer point.
func (c *Client) Send(block layout.Addr, target layout.Addr) error {
	qs := c.queueShadowOf(block)
	if qs.tail-qs.head >= uint64(qs.capacity) {
		// Apparent full: re-read the receiver's head (the one word another
		// client advances) before giving up.
		qs.head = c.h.Load(qs.headA)
		if qs.tail-qs.head >= uint64(qs.capacity) {
			c.loc[obs.CtrQueueFull]++
			return ErrQueueFull
		}
	}
	slot := queueSlot(block, qs.capacity, qs.tail)
	if err := c.reclaimOrphanSlot(qs, slot); err != nil {
		return err
	}
	if err := c.AttachReference(slot, target); err != nil {
		return err
	}
	c.hit(faultinject.AfterSendAttach)
	qs.tail++
	c.h.Store(qs.tailA, qs.tail)
	c.loc[obs.CtrQueueSend]++
	return nil
}

// reclaimOrphanSlot drops the reference a crashed sender incarnation left in
// a queue slot it never published: its attach landed but the tail store did
// not, so ownership never transferred and, to the receiver, the send never
// happened. The slot is still at the sender's cursor position (the tail did
// not move), so the next send to it must release the orphan first —
// overwriting the slot word would leave the target's count holding a
// reference no slot records, a permanent leak.
func (c *Client) reclaimOrphanSlot(qs *queueShadow, slot layout.Addr) error {
	if qs.knownClean {
		return nil
	}
	old := c.h.Load(slot)
	if old == 0 {
		return nil
	}
	c.loc[obs.CtrQueueStaleSlot]++
	if _, err := c.ReleaseReference(slot, old); err != nil {
		if err == ErrStaleReference {
			// The target was reclaimed under the orphan (dead-owner scan);
			// just drop the dangling word.
			c.h.Store(slot, 0)
			return nil
		}
		return err
	}
	return nil
}

// SendBatch transfers up to len(targets) references, publishing the tail
// once for the whole batch instead of once per reference. It returns how
// many were sent: short counts mean the queue filled up (no error), so
// callers retry the remainder later. Crash semantics match single Send: a
// reference attached to a slot before the tail store is owned by the queue
// object and reclaimed through its embedded-reference cascade.
func (c *Client) SendBatch(block layout.Addr, targets []layout.Addr) (int, error) {
	if len(targets) == 0 {
		return 0, nil
	}
	qs := c.queueShadowOf(block)
	free := uint64(qs.capacity) - (qs.tail - qs.head)
	if free < uint64(len(targets)) {
		qs.head = c.h.Load(qs.headA)
		free = uint64(qs.capacity) - (qs.tail - qs.head)
	}
	n := len(targets)
	if uint64(n) > free {
		n = int(free)
	}
	if n == 0 {
		c.loc[obs.CtrQueueFull]++
		return 0, ErrQueueFull
	}
	publish := func(sent int) {
		if sent > 0 {
			qs.tail += uint64(sent)
			c.h.Store(qs.tailA, qs.tail)
			c.loc[obs.CtrQueueSend] += uint64(sent)
		}
	}
	for i := 0; i < n; i++ {
		slot := queueSlot(block, qs.capacity, qs.tail+uint64(i))
		if err := c.reclaimOrphanSlot(qs, slot); err != nil {
			publish(i)
			return i, err
		}
		if err := c.AttachReference(slot, targets[i]); err != nil {
			publish(i)
			return i, err
		}
		c.hit(faultinject.AfterSendAttach)
	}
	publish(n)
	return n, nil
}

// Receive takes the next reference from the queue (paper cxl_receive_from):
// move the slot's counted reference onto a fresh RootRef (one CAS-free era
// transaction — the object's count never changes, so the paper's
// attach-then-release pair collapses into two ModifyRef stores), then
// advance the head. Returns the receiver's new RootRef and the object
// address, or ErrQueueEmpty.
func (c *Client) Receive(block layout.Addr) (root, target layout.Addr, err error) {
	qs := c.queueShadowOf(block)
	if qs.head == qs.tail {
		// Apparent empty: re-read the sender's tail before giving up.
		qs.tail = c.h.Load(qs.tailA)
		if qs.head == qs.tail {
			c.loc[obs.CtrQueueEmpty]++
			return 0, 0, ErrQueueEmpty
		}
	}
	slot := queueSlot(block, qs.capacity, qs.head)
	target = c.h.Load(slot)
	if target == 0 {
		// The slot was already released (the previous incarnation died after
		// releasing but before advancing the head, and recovery replayed):
		// step past it. This is not emptiness — count it separately so
		// throughput accounting doesn't mistake recovery debris for an idle
		// queue.
		qs.head++
		c.h.Store(qs.headA, qs.head)
		c.loc[obs.CtrQueueStaleSlot]++
		return 0, 0, ErrQueueEmpty
	}
	root, err = c.allocRootRef()
	if err != nil {
		return 0, 0, err
	}
	if err := c.moveRef(root+layout.RootRefPptrOff, slot, target, true); err != nil {
		c.abortRootRef(root)
		return 0, 0, err
	}
	qs.head++
	c.h.Store(qs.headA, qs.head)
	c.loc[obs.CtrQueueReceive]++
	return root, target, nil
}

// ReceiveBatch takes up to max references from the queue, publishing the
// head once for the whole batch and closing all the per-slot move
// transactions under a single era bump (sound because a move never publishes
// (cid, era) into a header — see moveRef). A crash mid-batch leaves up to a
// batch of moved-but-unadvanced slots, which the next incarnation steps past
// exactly like single Receive's stale-slot case. Returns parallel
// roots/targets slices; ErrQueueEmpty only when nothing (real or stale)
// could be consumed.
func (c *Client) ReceiveBatch(block layout.Addr, max int) (roots, targets []layout.Addr, err error) {
	if max <= 0 {
		return nil, nil, nil
	}
	qs := c.queueShadowOf(block)
	avail := qs.tail - qs.head
	if avail == 0 {
		qs.tail = c.h.Load(qs.tailA)
		avail = qs.tail - qs.head
		if avail == 0 {
			c.loc[obs.CtrQueueEmpty]++
			return nil, nil, ErrQueueEmpty
		}
	}
	n := int(avail)
	if n > max {
		n = max
	}
	consumed, moved := 0, 0
	publish := func() {
		if moved > 0 {
			c.bumpEra() // closes the whole batch of moves
		}
		if consumed > 0 {
			qs.head += uint64(consumed)
			c.h.Store(qs.headA, qs.head)
		}
	}
	for consumed < n {
		slot := queueSlot(block, qs.capacity, qs.head+uint64(consumed))
		t := c.h.Load(slot)
		if t == 0 {
			consumed++
			c.loc[obs.CtrQueueStaleSlot]++
			continue
		}
		root, rerr := c.allocRootRef()
		if rerr != nil {
			publish()
			return roots, targets, rerr
		}
		if merr := c.moveRef(root+layout.RootRefPptrOff, slot, t, false); merr != nil {
			c.abortRootRef(root)
			publish()
			return roots, targets, merr
		}
		consumed++
		moved++
		roots = append(roots, root)
		targets = append(targets, t)
		c.loc[obs.CtrQueueReceive]++
	}
	publish()
	if len(roots) == 0 {
		return nil, nil, ErrQueueEmpty
	}
	return roots, targets, nil
}

// QueueLen reports how many references are in flight in the queue.
func (c *Client) QueueLen(block layout.Addr) int {
	m := layout.UnpackMeta(c.h.Load(block + layout.MetaOff))
	capacity := int(m.EmbedCnt)
	head := c.h.Load(queueHeadAddr(block, capacity))
	tail := c.h.Load(queueTailAddr(block, capacity))
	return int(tail - head)
}

// QueueDepth is one registered queue seen from the management plane:
// endpoints plus the live head/tail counters, read straight from the
// device with pure loads — so observers on a read-only mapping (cxltop)
// can watch other processes' queues fill and drain.
type QueueDepth struct {
	Block    layout.Addr `json:"block"`
	Sender   int         `json:"sender"`
	Receiver int         `json:"receiver"`
	Capacity int         `json:"capacity"`
	Head     uint64      `json:"head"`
	Tail     uint64      `json:"tail"`
}

// Depth is the number of references currently in flight.
func (q QueueDepth) Depth() int { return int(q.Tail - q.Head) }

// Queues lists every registered, still-live transfer queue with its
// current depth. Registry entries racing a free are skipped.
func (p *Pool) Queues() []QueueDepth {
	var out []QueueDepth
	for i := 0; i < p.geo.MaxQueues; i++ {
		block := p.dev.Load(p.geo.QueueRegAddr(i))
		if block == 0 {
			continue
		}
		m := layout.UnpackMeta(p.dev.Load(block + layout.MetaOff))
		if !m.Allocated() || m.Flags&layout.MetaQueue == 0 {
			continue
		}
		capacity := int(m.EmbedCnt)
		s, r, _ := unpackQueueInfo(p.dev.Load(queueInfoAddr(block, capacity)))
		out = append(out, QueueDepth{
			Block:    block,
			Sender:   s,
			Receiver: r,
			Capacity: capacity,
			Head:     p.dev.Load(queueHeadAddr(block, capacity)),
			Tail:     p.dev.Load(queueTailAddr(block, capacity)),
		})
	}
	return out
}

// SweepQueueRegistry clears registry entries whose block is no longer a
// live queue (freed after both endpoints released it). Run by the monitor.
func (p *Pool) SweepQueueRegistry() int {
	cleared := 0
	for i := 0; i < p.geo.MaxQueues; i++ {
		a := p.geo.QueueRegAddr(i)
		block := p.dev.Load(a)
		if block == 0 {
			continue
		}
		m := layout.UnpackMeta(p.dev.Load(block + layout.MetaOff))
		if m.Allocated() && m.Flags&layout.MetaQueue != 0 {
			continue
		}
		if p.dev.CAS(a, block, 0) {
			cleared++
		}
	}
	return cleared
}
