package shm

import "repro/internal/layout"

// Redo log (paper §3.3, §4.3). Each client owns a fixed redo area in its
// ClientLocalState holding at most one in-flight era transaction:
//
//	word 0: valid bit (63) | op
//	word 1: era at log time (== Era[cid][cid] while the txn is open)
//	word 2: ref   — address of the reference word (ModifyRef target)
//	word 3: refed — address of the object whose count is modified
//	                (for change: object A, the one being decremented)
//	word 4: saved reference count of refed at the last CAS attempt
//	word 5: refed2 — for change: object B, the one being incremented
//	word 6: saved reference count of refed2 at the last CAS attempt
//	word 7: reserved
//
// The entry is (re)written before every CAS attempt and cleared right after
// the era bump that closes the transaction. Only the owning client writes
// it; the recovery service reads it only after the owner is RAS-fenced.

// Op identifies the kind of an era transaction.
type Op uint8

// Transaction kinds recorded in the redo log.
const (
	OpNone    Op = 0
	OpAttach  Op = 1
	OpRelease Op = 2
	OpChange  Op = 3
)

const redoValidBit = uint64(1) << 63

// RedoEntry is the decoded form of a client's redo area.
type RedoEntry struct {
	Op        Op
	Era       uint32
	Ref       layout.Addr
	Refed     layout.Addr
	SavedCnt  uint16
	Refed2    layout.Addr
	SavedCnt2 uint16
}

// logRedo records the in-flight transaction (line 8 of Figure 4(c)). Field
// stores precede the valid-bit store so a torn entry is never observed as
// valid; all device accesses are sequentially consistent.
//
// Words 5 and 6 (refed2/saved2) carry the second object of a change
// transaction and are consumed by recovery's replay only when the entry's op
// is OpChange — so attach/release entries skip those two stores, and any
// stale words 5/6 left from an older change entry are dead data.
func (c *Client) logRedo(e RedoEntry) {
	base := c.geo.ClientRedoBase(c.cid)
	c.h.Store(base+1, uint64(e.Era))
	c.h.Store(base+2, e.Ref)
	c.h.Store(base+3, e.Refed)
	c.h.Store(base+4, uint64(e.SavedCnt))
	if e.Op == OpChange {
		c.h.Store(base+5, e.Refed2)
		c.h.Store(base+6, uint64(e.SavedCnt2))
	}
	c.h.Store(base, redoValidBit|uint64(e.Op))
}

// relogSavedCnt2 refreshes the phase-2 saved count of a change transaction
// on CAS retry, without touching the rest of the entry.
func (c *Client) relogSavedCnt2(cnt uint16) {
	c.h.Store(c.geo.ClientRedoBase(c.cid)+6, uint64(cnt))
}

// clearRedo invalidates the entry after the closing era bump.
func (c *Client) clearRedo() {
	c.h.Store(c.geo.ClientRedoBase(c.cid), 0)
}

// ReadRedo reads client cid's redo entry. ok is false when no transaction
// was in flight. Intended for the recovery service (after fencing cid) and
// for tests.
func (p *Pool) ReadRedo(cid int) (RedoEntry, bool) {
	base := p.geo.ClientRedoBase(cid)
	w0 := p.dev.Load(base)
	if w0&redoValidBit == 0 {
		return RedoEntry{}, false
	}
	return RedoEntry{
		Op:        Op(w0 &^ redoValidBit),
		Era:       uint32(p.dev.Load(base + 1)),
		Ref:       p.dev.Load(base + 2),
		Refed:     p.dev.Load(base + 3),
		SavedCnt:  uint16(p.dev.Load(base + 4)),
		Refed2:    p.dev.Load(base + 5),
		SavedCnt2: uint16(p.dev.Load(base + 6)),
	}, true
}

// ClearRedo invalidates cid's redo entry (recovery hygiene).
func (p *Pool) ClearRedo(cid int) {
	p.dev.Store(p.geo.ClientRedoBase(cid), 0)
}
