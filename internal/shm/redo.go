package shm

import "repro/internal/layout"

// Redo log (paper §3.3, §4.3). Each client owns a fixed redo area in its
// ClientLocalState holding at most one in-flight era transaction:
//
//	word 0: valid bit (63) | op (62:56) | era at log time (55:24)
//	        | saved reference count of refed (15:0)
//	word 1: ref   — address of the reference word (ModifyRef target)
//	word 2: refed — address of the object whose count is modified
//	                (for change: object A, the one being decremented)
//	word 3: refed2 — for change: object B, the one being incremented
//	word 4: saved reference count of refed2 at the last CAS attempt
//	word 5..7: reserved
//
// The entry is (re)written before every CAS attempt. Packing the op, the
// era, and the saved count into the commit word keeps an attach/release log
// at three stores, a move at four, and a change log at five, and — because
// the commit word is written last — a torn entry is never observed as valid
// with a mismatched era.
//
// Entries are NOT cleared when the transaction closes: the closing era bump
// makes Era[cid][cid] move past the logged era, so recovery can tell a
// stale entry (eraII has advanced past it — the transaction closed) from a
// live one (eraII still at the logged era, or within the bump distance of a
// change) without the extra invalidation store per transaction. Recovery
// still clears the entry before publishing RECOVERED, and Connect clears
// defensively, so an entry can never leak across incarnations. Only the
// owning client writes the area; the recovery service reads it only after
// the owner is RAS-fenced.

// Op identifies the kind of an era transaction.
type Op uint8

// Transaction kinds recorded in the redo log.
const (
	OpNone    Op = 0
	OpAttach  Op = 1
	OpRelease Op = 2
	OpChange  Op = 3
	// OpMove transfers a counted reference between two reference words owned
	// by this client (queue receive: slot → fresh RootRef pptr) without
	// touching the object's count — no ModifyRefCnt phase, only two
	// idempotent ModifyRef stores, re-executed wholesale by recovery while
	// the era gate holds. Ref is the destination word, Refed the object,
	// Refed2 the source word being cleared.
	OpMove Op = 4
)

const (
	redoValidBit = uint64(1) << 63
	redoOpShift  = 56
	redoOpMask   = uint64(0x7f)
	redoEraShift = 24
	redoCntMask  = uint64(0xffff)
)

// RedoEntry is the decoded form of a client's redo area.
type RedoEntry struct {
	Op        Op
	Era       uint32
	Ref       layout.Addr
	Refed     layout.Addr
	SavedCnt  uint16
	Refed2    layout.Addr
	SavedCnt2 uint16
}

// packRedoCommit packs the redo commit word (word 0).
func packRedoCommit(op Op, era uint32, savedCnt uint16) uint64 {
	return redoValidBit | uint64(op)<<redoOpShift | uint64(era)<<redoEraShift | uint64(savedCnt)
}

// logRedo records the in-flight transaction (line 8 of Figure 4(c)). The
// address stores precede the commit-word store, so the valid bit, the op,
// the era, and the saved count become visible atomically and last; all
// device accesses are sequentially consistent.
//
// Words 3 and 4 (refed2/saved2) carry the second object of a change
// transaction (for move: the source reference word) and are consumed by
// recovery's replay only when the entry's op says so — attach/release
// entries skip those stores, move entries skip the saved2 store, and any
// stale words left from an older entry are dead data.
func (c *Client) logRedo(e RedoEntry) {
	base := c.geo.ClientRedoBase(c.cid)
	c.h.Store(base+1, e.Ref)
	c.h.Store(base+2, e.Refed)
	if e.Op == OpChange || e.Op == OpMove {
		c.h.Store(base+3, e.Refed2)
	}
	if e.Op == OpChange {
		c.h.Store(base+4, uint64(e.SavedCnt2))
	}
	c.h.Store(base, packRedoCommit(e.Op, e.Era, e.SavedCnt))
}

// relogSavedCnt2 refreshes the phase-2 saved count of a change transaction
// on CAS retry, without touching the rest of the entry.
func (c *Client) relogSavedCnt2(cnt uint16) {
	c.h.Store(c.geo.ClientRedoBase(c.cid)+4, uint64(cnt))
}

// clearRedo invalidates the entry. Not part of any transaction close (the
// era distance does that job, see the file comment); called defensively by
// Connect and before publishing a page-burst-visible state change that the
// stale entry could be misread against.
func (c *Client) clearRedo() {
	c.h.Store(c.geo.ClientRedoBase(c.cid), 0)
}

// ReadRedo reads client cid's redo entry. ok is false when no transaction
// was ever logged (or the entry was cleared). Callers must still compare the
// entry's era against Era[cid][cid] to distinguish an in-flight transaction
// from a long-closed one. Intended for the recovery service (after fencing
// cid) and for tests.
func (p *Pool) ReadRedo(cid int) (RedoEntry, bool) {
	base := p.geo.ClientRedoBase(cid)
	w0 := p.dev.Load(base)
	if w0&redoValidBit == 0 {
		return RedoEntry{}, false
	}
	return RedoEntry{
		Op:        Op(w0 >> redoOpShift & redoOpMask),
		Era:       uint32(w0 >> redoEraShift),
		SavedCnt:  uint16(w0 & redoCntMask),
		Ref:       p.dev.Load(base + 1),
		Refed:     p.dev.Load(base + 2),
		Refed2:    p.dev.Load(base + 3),
		SavedCnt2: uint16(p.dev.Load(base + 4)),
	}, true
}

// ClearRedo invalidates cid's redo entry (recovery hygiene).
func (p *Pool) ClearRedo(cid int) {
	p.dev.Store(p.geo.ClientRedoBase(cid), 0)
}
