//go:build unix

package shm_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cxl"
	"repro/internal/layout"
	"repro/internal/recovery"
	"repro/internal/shm"
)

// These tests cover the cross-process story end to end: a pool created on
// an mmap'd file by one "process" (mapping) is reopened alive by another,
// the dead owner's clients are recovered, and the full pool validator comes
// back clean. Dual mappings of one file stand in for two OS processes —
// the data path is byte-identical.

var mapGeometry = layout.GeometryConfig{
	MaxClients:   8,
	NumSegments:  16,
	SegmentWords: 1 << 13,
	PageWords:    1 << 9,
	MaxQueues:    8,
}

func TestMapPoolCrashReopenRecover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pool.cxl")

	// Process 1: create a file-backed pool, allocate a mess, crash.
	p1, err := shm.NewPool(shm.Config{Geometry: mapGeometry, File: path})
	if err != nil {
		t.Fatal(err)
	}
	owner := connect(t, p1)
	var keeper layout.Addr
	for i := 0; i < 200; i++ {
		_, block, err := owner.Malloc(64, 0)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			keeper = block
			owner.WriteData(block, 0, []byte("survives the process"))
		}
	}
	ownerID := owner.ID()
	// The "process" dies: unmap without releasing anything.
	if err := p1.CloseDevice(); err != nil {
		t.Fatal(err)
	}

	// Process 2: reopen the file alive, no copy.
	p2, err := shm.OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer p2.CloseDevice()
	stale := p2.StaleClients()
	if len(stale) != 1 || stale[0] != ownerID {
		t.Fatalf("stale clients = %v, want [%d]", stale, ownerID)
	}

	// The data really is there before any recovery runs.
	reader := connect(t, p2)
	buf := make([]byte, 20)
	reader.ReadData(keeper, 0, buf)
	if string(buf) != "survives the process" {
		t.Fatalf("read %q across the reopen", buf)
	}

	// Recover the dead owner; everything it held is reclaimed.
	svc, err := recovery.NewService(p2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.MarkClientDead(ownerID); err != nil {
		t.Fatal(err)
	}
	rep, err := svc.RecoverClient(ownerID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SweptRoots != 200 {
		t.Fatalf("swept %d roots, want 200", rep.SweptRoots)
	}
	mon := recovery.NewMonitor(svc, recovery.MonitorConfig{})
	for i := 0; i < 4; i++ {
		mon.Tick()
	}
	res := mustValidate(t, p2)
	if res.AllocatedObjects != 0 {
		t.Fatalf("%d objects leaked across the process boundary", res.AllocatedObjects)
	}
}

func TestMapPoolQueueAcrossMappings(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pool.cxl")
	p1, err := shm.NewPool(shm.Config{Geometry: mapGeometry, File: path})
	if err != nil {
		t.Fatal(err)
	}
	defer p1.CloseDevice()
	snd := connect(t, p1)

	// The receiver lives on a second mapping of the same file.
	p2, err := shm.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.CloseDevice()
	rcv := connect(t, p2)

	qroot, q, err := snd.CreateQueue(rcv.ID(), 8)
	if err != nil {
		t.Fatal(err)
	}
	rq, err := rcv.OpenQueue(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		root, block, err := snd.Malloc(64, 0)
		if err != nil {
			t.Fatal(err)
		}
		snd.WriteData(block, 0, []byte{byte(i)})
		if err := snd.Send(q, block); err != nil {
			t.Fatal(err)
		}
		if _, err := snd.ReleaseRoot(root); err != nil {
			t.Fatal(err)
		}
		rroot, rblock, err := rcv.Receive(q)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 1)
		rcv.ReadData(rblock, 0, got)
		if got[0] != byte(i) {
			t.Fatalf("item %d read back %d through the other mapping", i, got[0])
		}
		if _, err := rcv.ReleaseRoot(rroot); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := snd.ReleaseRoot(qroot); err != nil {
		t.Fatal(err)
	}
	if _, err := rcv.ReleaseRoot(rq); err != nil {
		t.Fatal(err)
	}
	mustValidate(t, p1)
}

func TestOpenFileRejectsForeignPools(t *testing.T) {
	dir := t.TempDir()

	// A raw MapDevice that was never formatted as a pool.
	blank := filepath.Join(dir, "blank.cxl")
	md, err := cxl.CreateMapDevice(blank, cxl.Config{Words: 1 << 12, MaxClients: 4})
	if err != nil {
		t.Fatal(err)
	}
	md.Close()
	if _, err := shm.OpenFile(blank); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("unformatted pool file: %v", err)
	}

	// A formatted pool whose layout version is from a different build.
	vpath := filepath.Join(dir, "oldver.cxl")
	p, err := shm.NewPool(shm.Config{Geometry: mapGeometry, File: vpath})
	if err != nil {
		t.Fatal(err)
	}
	p.Device().Store(layout.SuperOffVersion, layout.LayoutVersion+7)
	if err := p.CloseDevice(); err != nil {
		t.Fatal(err)
	}
	_, err = shm.OpenFile(vpath)
	if err == nil || !strings.Contains(err.Error(), "layout version") {
		t.Fatalf("version mismatch: %v", err)
	}
}

func TestAttachSnapshotValidatesSuperblock(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	if _, _, err := c.Malloc(64, 0); err != nil {
		t.Fatal(err)
	}

	// A clean snapshot attaches fine.
	img := p.Snapshot()
	if _, err := shm.AttachSnapshot(img); err != nil {
		t.Fatalf("clean snapshot: %v", err)
	}

	// Wrong layout version.
	bad := append([]uint64(nil), img...)
	bad[layout.SuperOffVersion] = layout.LayoutVersion + 1
	if _, err := shm.AttachSnapshot(bad); err == nil || !strings.Contains(err.Error(), "layout version") {
		t.Fatalf("version mismatch: %v", err)
	}

	// Wrong magic.
	bad = append([]uint64(nil), img...)
	bad[layout.SuperOffMagic] = 1
	if _, err := shm.AttachSnapshot(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: %v", err)
	}

	// Truncated image.
	if _, err := shm.AttachSnapshot(img[:len(img)/2]); err == nil {
		t.Fatal("truncated image must be rejected")
	}
}

func TestAttachMemoryRejectsWrongSize(t *testing.T) {
	p := newTestPool(t)
	img := p.Snapshot()
	// Restore into an oversized device: superblock geometry won't match the
	// device size.
	dev, err := cxl.NewDevice(cxl.Config{Words: len(img) + 4096, MaxClients: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range img {
		if w != 0 {
			dev.Store(layout.Addr(i), w)
		}
	}
	if _, err := shm.AttachMemory(dev); err == nil || !strings.Contains(err.Error(), "words") {
		t.Fatalf("size mismatch: %v", err)
	}
}

func TestBackendSelection(t *testing.T) {
	// Explicit mmap backend via config.
	p, err := shm.NewPool(shm.Config{Geometry: mapGeometry, Backend: "mmap"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cxl.Bottom(p.Device()).(*cxl.MapDevice); !ok {
		t.Fatalf("Backend mmap built %T", cxl.Bottom(p.Device()))
	}
	c := connect(t, p)
	r, _, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReleaseRoot(r); err != nil {
		t.Fatal(err)
	}
	if err := p.CloseDevice(); err != nil {
		t.Fatal(err)
	}

	if _, err := shm.NewPool(shm.Config{Geometry: mapGeometry, Backend: "floppy"}); err == nil {
		t.Fatal("unknown backend must be rejected")
	}
}
