package shm_test

// Property test for the slot-lease protocol under concurrent churn: several
// goroutines race Connect / Close / kill-9 / recovery over a slot table
// smaller than the goroutine count would like, so claims constantly collide
// and recycle. Two invariants are asserted over every observed lease:
//
//   - generation monotonicity: successive leases of the same slot carry
//     strictly increasing (odd) generations;
//   - exclusivity: no two live handles ever share a client ID.
//
// The test runs on both backends and is part of the -race CI leg — the
// claim path is lock-free CAS code, so the race detector doing its worst is
// the point.

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/layout"
	"repro/internal/recovery"
	"repro/internal/shm"
)

func TestSlotChurnConcurrentHeap(t *testing.T) { runSlotChurn(t, "heap") }
func TestSlotChurnConcurrentMmap(t *testing.T) { runSlotChurn(t, "mmap") }

func runSlotChurn(t *testing.T, backend string) {
	p, err := shm.NewPool(shm.Config{
		Geometry: layout.GeometryConfig{
			MaxClients:   12,
			NumSegments:  32,
			SegmentWords: 1 << 13,
			PageWords:    1 << 9,
			MaxQueues:    8,
		},
		Backend: backend,
	})
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	defer p.CloseDevice()
	svc, err := recovery.NewServiceWorkers(p, 4)
	if err != nil {
		t.Fatalf("NewServiceWorkers: %v", err)
	}

	const (
		workers = 6
		iters   = 40
	)
	var (
		mu      sync.Mutex
		lastGen = map[int]uint64{}
		live    = map[int]bool{}
	)
	// claimCheck records a fresh lease under mu and asserts both invariants;
	// dropLive deregisters the handle BEFORE the slot can become claimable
	// again (Close/kill only park the slot at DEAD; it re-enters the bitmap
	// when our own RecoverClient call finishes, after which another worker
	// may legitimately hold the cid).
	claimCheck := func(cid int, gen uint64) {
		mu.Lock()
		defer mu.Unlock()
		if gen%2 != 1 {
			t.Errorf("live lease on slot %d has even generation %d", cid, gen)
		}
		if live[cid] {
			t.Errorf("two live handles share client ID %d", cid)
		}
		live[cid] = true
		if prev, ok := lastGen[cid]; ok && gen <= prev {
			t.Errorf("slot %d generation not monotonic: %d after %d", cid, gen, prev)
		}
		lastGen[cid] = gen
	}
	dropLive := func(cid int) {
		mu.Lock()
		delete(live, cid)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				c, err := p.Connect()
				if err != nil {
					var full *shm.SlotExhaustedError
					if errors.As(err, &full) {
						continue // every slot leased or awaiting recovery; retry
					}
					t.Errorf("connect: %v", err)
					return
				}
				cid := c.ID()
				claimCheck(cid, c.Generation())

				// Some real work so kill-9 leaves objects for recovery.
				var roots []layout.Addr
				for j := 0; j < 1+rng.Intn(3); j++ {
					r, _, err := c.Malloc(48, 0)
					if err != nil {
						t.Errorf("malloc: %v", err)
						return
					}
					roots = append(roots, r)
				}
				if rng.Intn(2) == 0 { // clean exit path: release, then Close
					for _, r := range roots {
						if _, err := c.ReleaseRoot(r); err != nil {
							t.Errorf("release: %v", err)
							return
						}
					}
					dropLive(cid)
					if err := c.Close(); err != nil {
						t.Errorf("close: %v", err)
						return
					}
				} else { // kill-9: abandon the handle with objects still rooted
					dropLive(cid)
					if err := p.MarkClientDead(cid); err != nil {
						t.Errorf("mark dead: %v", err)
						return
					}
				}
				if _, err := svc.RecoverClient(cid); err != nil {
					t.Errorf("recover %d: %v", cid, err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()

	// Settle and validate: every slot was released through recovery, so the
	// pool must be claimable end to end and fsck-clean with zero objects.
	p.ReconcileSlotMap()
	res := check.Validate(p)
	if !res.Clean() {
		t.Fatalf("pool not clean after churn: %v", res.Issues)
	}
	if res.AllocatedObjects != 0 {
		t.Fatalf("%d objects survived full churn", res.AllocatedObjects)
	}
}
