package shm

import (
	"time"

	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/obs"
)

// Allocation (paper §3.3 and §5.1).
//
// Fast path: each client owns segments exclusively (claimed with one CAS on
// the Global Segment Allocation Vec), carves pages per size class inside
// them, and allocates blocks from a page with no cross-client
// synchronization. To tolerate partial failure, cxl_malloc also allocates an
// implicit RootRef from dedicated RootRef-only pages and performs four
// carefully ordered steps:
//
//	1. claim a RootRef slot (in_use ← 1, pptr ← 0)
//	2. link: RootRef.pptr ← block          (block still counts as free)
//	3. advance the page free pointer        (now allocated, refcnt still 0)
//	4. init block meta + header (refcnt=1), then bump the era
//
// A fence orders 2 before 3 and a flush persists the RootRef. Recovery can
// then classify any crash point: pptr==free-pointer ⇒ the allocation never
// completed step 3, skip the release (§5.1); header refcnt==0 ⇒ step 4 never
// completed, free only the RootRef.
//
// All owner-exclusive metadata reads on this path come from the client's
// shadow cache (shadow.go); every write still lands on the device at the
// same program point, so the ordering recovery depends on is unchanged.

// blockSlot describes a block reserved (but not yet advanced past) in a page.
type blockSlot struct {
	op       *ownedPage
	addr     layout.Addr
	fromPend bool        // true: tail of the page's pending (unpublished) frees
	fromFree bool        // true: head of the page free list; false: bump region
	next     layout.Addr // new free-list head or new bump pointer
}

// freeNextOff is the block-relative word holding the intrusive free-list
// next pointer while the block is free. It lives in the data area so the
// header word of a free block can stay zero.
const freeNextOff = layout.DataOff

// Page meta word offsets within a page's meta area.
const (
	pmInfo = 0 // packed PageMeta (kind, used, size class)
	pmFree = 1 // free-list head
	pmScan = 2 // bump pointer into the never-allocated tail of the page
)

func (c *Client) pageMetaAddr(pr pageRef) layout.Addr { return c.geo.PageMetaAddr(pr.seg, pr.page) }

// allocSampleEvery is the Malloc latency sampling period: one call in this
// many feeds the alloc_ns histogram, keeping the fast path flat while the
// histogram still converges within any benchmark-scale run. Must be a power
// of two.
const allocSampleEvery = 64

// Malloc allocates dataBytes of shared memory with embedRefs embedded
// references at the start of the data area (paper §3.1: cxl_malloc). It
// returns the RootRef address (what a CXLRef points to) and the block
// address. The returned object has reference count 1, held by the RootRef.
func (c *Client) Malloc(dataBytes, embedRefs int) (root, block layout.Addr, err error) {
	timed := c.timing || c.allocSeq&(allocSampleEvery-1) == 0
	c.allocSeq++
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	root, block, err = c.malloc(dataBytes, embedRefs)
	if err != nil {
		c.loc[obs.CtrAllocFail]++
	} else {
		c.loc[obs.CtrAlloc]++
	}
	if timed {
		ns := time.Since(t0).Nanoseconds()
		c.mx.Observe(obs.HistAllocNS, ns)
		if c.timing {
			c.loc[obs.CtrAllocNanos] += uint64(ns)
		}
	}
	return root, block, err
}

func (c *Client) malloc(dataBytes, embedRefs int) (layout.Addr, layout.Addr, error) {
	if c.h.Fenced() {
		return 0, 0, ErrFenced
	}
	if dataBytes < 1 {
		dataBytes = 1
	}
	if embedRefs < 0 || embedRefs > layout.MaxEmbedRefs ||
		embedRefs*layout.WordBytes > dataBytes {
		return 0, 0, ErrBadEmbedIndex
	}
	// Step 1 (reordered, see allocRootRef): advance a RootRef page past one
	// free slot without claiming it. Until the claim lands the slot is in the
	// "lost slot" state the segment-local scan already re-links, so failing
	// out (or crashing) anywhere below leaks nothing.
	root, err := c.takeRootRefSlot()
	if err != nil {
		return 0, 0, err
	}
	ci := layout.ClassIndexFor(c.geo.Classes, dataBytes)
	if ci < 0 {
		// Huge objects keep the classic claim-first order: the multi-segment
		// claim loop can fail midway, and a committed in_use slot is what the
		// rollback/abort path expects to clear.
		c.h.Store(root+layout.RootRefPptrOff, 0)
		c.h.Store(root, layout.PackRootRef(true, 1))
		c.inflightRoot = 0
		c.noteRoot(root, 1, 0)
		c.hit(faultinject.AfterRootRefClaim)
		block, err := c.allocHuge(root, dataBytes, embedRefs)
		if err != nil {
			c.abortRootRef(root)
			return 0, 0, err
		}
		// Huge blocks are not block-shadowed: any client frees them straight
		// back to the segment vector, so there is no collection point at
		// which a stale entry would be dropped.
		c.noteRoot(root, 1, block)
		return root, block, nil
	}
	slot, err := c.findBlock(ci)
	if err != nil {
		c.abortRootRef(root)
		return 0, 0, err
	}

	// Step 2: link. The slot (still unclaimed) now points at a block that is
	// still, from the page's perspective, free.
	c.h.Store(root+layout.RootRefPptrOff, slot.addr)
	c.hit(faultinject.AfterLink)
	c.timedFence()

	// Claim the slot only after the link, so an in_use slot always carries a
	// valid pptr — and before the block is advanced past / initialized, so a
	// block with a published refcount always has its referencing slot
	// committed (the reverse order could leak a RefCnt=1 block permanently).
	// Folding the old pptr←0 store into the link saves one device store; the
	// crash states recovery can now see (free slot with stale pptr, in_use
	// slot over a still-free block) are ones the §5.1 sweep already resolves.
	c.h.Store(root, layout.PackRootRef(true, 1))
	c.inflightRoot = 0
	c.noteRoot(root, 1, slot.addr)
	c.hit(faultinject.AfterRootRefClaim)
	c.timedFence()
	c.timedFlush(root)

	// Step 3: advance the free pointer. Must strictly follow the link (the
	// paper's fence): advancing first could leak the block, linking first is
	// recovered by the pptr==free-pointer check.
	c.advanceSlot(slot)
	c.hit(faultinject.AfterAdvance)

	// Step 4: initialize the block. Embedded reference words must be zero
	// before the object becomes visible (recovery DFS walks them).
	for i := 0; i < embedRefs; i++ {
		c.h.Store(slot.addr+layout.DataOff+layout.Addr(i), 0)
	}
	cls := c.geo.Classes[ci]
	metaW := layout.PackMeta(layout.Meta{
		Flags:      layout.MetaAllocated,
		EmbedCnt:   uint16(embedRefs),
		BlockWords: cls.BlockWords,
	})
	c.h.Store(slot.addr+layout.MetaOff, metaW)
	c.hit(faultinject.AfterBlockMeta)
	headerW := layout.PackHeader(layout.Header{
		LCID:   uint16(c.cid),
		LEra:   c.era,
		RefCnt: 1,
	})
	c.h.Store(slot.addr+layout.HeaderOff, headerW)
	c.noteBlock(slot.addr, headerW, metaW)
	c.hit(faultinject.AfterHeaderInit)
	// Publishing a header at the current era is a commit-like event: bump so
	// every published (cid, era) pair stays unique (recovery Conditions 1/2
	// depend on it). This is the §5.1 "special algorithm for the
	// initialization of reference count".
	c.bumpEra()
	return root, slot.addr, nil
}

// findBlock reserves a block of class ci without advancing past it.
func (c *Client) findBlock(ci int) (blockSlot, error) {
	for {
		list := c.classPages[ci]
		for len(list) > 0 {
			op := list[len(list)-1]
			if s, ok := c.tryPage(op, ci); ok {
				return s, nil
			}
			op.onClassList = false
			list = list[:len(list)-1]
			c.classPages[ci] = list
		}
		if c.collectDeferredFrees(ci) {
			continue
		}
		op, err := c.claimPage(layout.PageKindNormal, ci)
		if err != nil {
			return blockSlot{}, err
		}
		op.onClassList = true
		c.classPages[ci] = append(c.classPages[ci], op)
	}
}

// tryPage reserves a block in op's page: first from the pending (unpublished)
// frees — zero device accesses, and the free/realloc pair never publishes —
// then from the page free list, then from the never-allocated bump region.
// The only device access is reading a published free block's next pointer —
// the page meta comes from the shadow.
func (c *Client) tryPage(op *ownedPage, ci int) (blockSlot, bool) {
	if n := len(op.pend); n > 0 {
		return blockSlot{op: op, addr: op.pend[n-1], fromPend: true}, true
	}
	if head := op.free; head != 0 {
		return blockSlot{
			op:       op,
			addr:     head,
			fromFree: true,
			next:     c.h.Load(head + freeNextOff),
		}, true
	}
	bw := c.geo.Classes[ci].BlockWords
	end := c.geo.PageBase(op.pr.seg, op.pr.page) + layout.Addr(c.geo.PageWords)
	if op.scan+bw <= end {
		return blockSlot{op: op, addr: op.scan, fromFree: false, next: op.scan + bw}, true
	}
	return blockSlot{}, false
}

// advanceSlot performs the §5.1 step 3: move the page free pointer past the
// reserved block. A pend-tier block needs no device store at all — it was
// never re-published, so popping it is pure shadow bookkeeping. The Used
// counter bump is deferred to the next publication burst in every case.
func (c *Client) advanceSlot(s blockSlot) {
	op := s.op
	switch {
	case s.fromPend:
		op.pend = op.pend[:len(op.pend)-1]
		c.pendCount--
	case s.fromFree:
		op.free = s.next
		c.h.Store(op.meta+pmFree, s.next)
	default:
		op.scan = s.next
		c.h.Store(op.meta+pmScan, s.next)
	}
	c.noteUsedDelta(op, 1)
}

// dfBatch groups one page's drained deferred frees during a collect pass.
type dfBatch struct {
	op     *ownedPage
	blocks []layout.Addr
}

// collectDeferredFrees drains the client_free lists of this client's
// segments (blocks freed by other clients, paper Figure 3), distributing
// blocks back to their pages' free lists. The distribution is batched per
// page: blocks are re-chained into one page-local list and each page gets a
// single free-head store and a single used-count store, instead of a
// load/store pair per block. Reports whether any block of class ci came back
// (so the caller retries before claiming fresh pages).
func (c *Client) collectDeferredFrees(ci int) bool {
	found := false
	var batches []dfBatch
	for _, os := range c.owned {
		cf := c.geo.SegClientFreeAddr(os.seg)
		var head layout.Addr
		for {
			head = c.h.Load(cf)
			if head == 0 {
				break
			}
			if c.h.CAS(cf, head, 0) {
				break
			}
			if c.h.Fenced() {
				return found
			}
		}
		if head == 0 {
			continue
		}
		batches = batches[:0]
		for head != 0 {
			next := c.h.Load(head + freeNextOff)
			c.dropBlock(head) // another client freed it; retire the stale shadow
			if op := c.ownedPageOf(os.seg, head); op != nil {
				i := 0
				for ; i < len(batches); i++ {
					if batches[i].op == op {
						break
					}
				}
				if i == len(batches) {
					batches = append(batches, dfBatch{op: op})
				}
				batches[i].blocks = append(batches[i].blocks, head)
			}
			head = next
		}
		for i := range batches {
			b := &batches[i]
			op := b.op
			// Rewrite the next pointers into one page-local chain ending at
			// the page's current free head, then publish the new head. A
			// crash mid-chain leaves free-marked blocks on no list — the
			// same lost-block state the segment-local scan already re-links.
			for j, blk := range b.blocks {
				nxt := op.free
				if j+1 < len(b.blocks) {
					nxt = b.blocks[j+1]
				}
				c.h.Store(blk+freeNextOff, nxt)
			}
			op.free = b.blocks[0]
			c.h.Store(op.meta+pmFree, op.free)
			// The list must be published here (the freeers are other clients:
			// only the head store makes their frees reachable again), but the
			// Used bookkeeping joins the deferred-publication burst.
			c.noteUsedDelta(op, -int32(len(b.blocks)))
			info := layout.UnpackPageMeta(op.info)
			if info.Kind == layout.PageKindNormal {
				c.readdClassPage(int(info.SizeClass), op)
				if int(info.SizeClass) == ci {
					found = true
				}
			}
		}
	}
	return found
}

// readdClassPage puts op back on its class page cache if absent — O(1) via
// the membership flag (the old linear scan grew with the page count).
func (c *Client) readdClassPage(ci int, op *ownedPage) {
	if op.onClassList {
		return
	}
	op.onClassList = true
	c.classPages[ci] = append(c.classPages[ci], op)
}

// claimPage takes the next unclaimed page in an owned segment (claiming a
// new segment if needed) and dedicates it to kind/class. Being the slow
// path, it also runs the paper's periodic duty (§5.3): scan any owned
// segment left in POTENTIAL_LEAKING state by an interrupted reclamation.
// It is also a publication epoch — needing a fresh page means the caches
// ran dry, a natural moment to land the deferred frees and counters.
func (c *Client) claimPage(kind uint8, ci int) (*ownedPage, error) {
	c.flushPending(EpochRefill)
	c.scanFlaggedOwned()
	for _, os := range c.owned {
		if op, ok := c.claimPageIn(os, kind, ci); ok {
			return op, nil
		}
	}
	os, err := c.claimSegment()
	if err != nil {
		return nil, err
	}
	if op, ok := c.claimPageIn(os, kind, ci); ok {
		return op, nil
	}
	return nil, ErrOutOfMemory
}

func (c *Client) claimPageIn(os *ownedSeg, kind uint8, ci int) (*ownedPage, bool) {
	n := os.nextPage
	if n >= c.geo.PagesPerSegment {
		return nil, false
	}
	op := &ownedPage{
		pr:   pageRef{seg: os.seg, page: n},
		meta: c.geo.PageMetaAddr(os.seg, n),
		scan: c.geo.PageBase(os.seg, n),
		info: layout.PackPageMeta(layout.PageMeta{
			Kind: kind, Used: 0, SizeClass: uint32(ci),
		}),
	}
	// Initialize the page meta before publishing it via the next-page
	// counter; the segment is exclusively ours so this is owner-local.
	c.h.Store(op.meta+pmInfo, op.info)
	c.h.Store(op.meta+pmFree, 0)
	c.h.Store(op.meta+pmScan, op.scan)
	os.nextPage = n + 1
	c.h.Store(c.geo.SegNextPageAddr(os.seg), uint64(n+1))
	os.pages[n] = op
	return op, true
}

// claimSegment CASes a free segment to exclusive ownership (the only
// cross-client synchronization in the allocation path). The scan starts at
// this client's striped cursor — not index 0 — so concurrent claimers spread
// across the vector, and consults the shared free-segment hint first.
func (c *Client) claimSegment() (*ownedSeg, error) {
	hintA := c.geo.SegFreeHintAddr()
	if h := c.h.Load(hintA); h != 0 {
		// Consume the hint (best-effort CAS so two claimers don't chase the
		// same index), then try the hinted segment directly.
		c.h.CAS(hintA, h, 0)
		if os, ok := c.tryClaimSegment(int(h) - 1); ok {
			return os, nil
		}
	}
	n := c.geo.NumSegments
	for k := 0; k < n; k++ {
		i := c.segCursor + k
		if i >= n {
			i -= n
		}
		if os, ok := c.tryClaimSegment(i); ok {
			c.segCursor = i + 1
			if c.segCursor == n {
				c.segCursor = 0
			}
			return os, nil
		}
	}
	if c.h.Fenced() {
		return nil, ErrFenced
	}
	return nil, ErrOutOfMemory
}

// tryClaimSegment attempts the ownership CAS on segment i, registering the
// segment's shadow on success.
func (c *Client) tryClaimSegment(i int) (*ownedSeg, bool) {
	if i < 0 || i >= c.geo.NumSegments {
		return nil, false
	}
	a := c.geo.SegStateAddr(i)
	w := c.h.Load(a)
	st := layout.UnpackSegState(w)
	if st.State != layout.SegFree {
		return nil, false
	}
	nw := layout.PackSegState(layout.SegState{
		CID: uint16(c.cid), Version: st.Version + 1, State: layout.SegActive,
	})
	if !c.h.CAS(a, w, nw) {
		return nil, false
	}
	// Reset the owner-local page counter; page metas are initialized
	// lazily at claimPageIn.
	c.h.Store(c.geo.SegNextPageAddr(i), 0)
	c.hit(faultinject.AfterSegmentClaim)
	c.loc[obs.CtrSegClaim]++
	os := &ownedSeg{seg: i, pages: make([]*ownedPage, c.geo.PagesPerSegment)}
	c.owned = append(c.owned, os)
	c.ownedBySeg[i] = os
	return os, true
}

// --- RootRef slots ---

// takeRootRefSlot advances a RootRef page past one free slot WITHOUT
// claiming it: word0 is left untouched. Until a later in_use store commits
// the slot, a crash leaves it in the lost-slot state (below the bump
// pointer, on no list, not in_use) that the segment-local scan already
// re-links once this client is dead — so callers may interleave arbitrary
// work between take and claim.
//
// The slot comes from the pending tier first (a slot this client freed but
// never re-published: zero device accesses), then the published free list
// (one load + one head store), then the bump region (one store). The page
// Used counter joins the next publication burst in every case.
func (c *Client) takeRootRefSlot() (layout.Addr, error) {
	for {
		for len(c.rootPages) > 0 {
			op := c.rootPages[len(c.rootPages)-1]
			if n := len(op.pend); n > 0 {
				slot := op.pend[n-1]
				op.pend = op.pend[:n-1]
				c.pendCount--
				c.noteUsedDelta(op, 1)
				c.inflightRoot = slot
				c.hit(faultinject.AfterRootRefAdvance)
				return slot, nil
			}
			if head := op.free; head != 0 {
				op.free = c.h.Load(head + layout.RootRefPptrOff)
				c.h.Store(op.meta+pmFree, op.free)
				c.noteUsedDelta(op, 1)
				c.inflightRoot = head
				c.hit(faultinject.AfterRootRefAdvance)
				return head, nil
			}
			end := c.geo.PageBase(op.pr.seg, op.pr.page) + layout.Addr(c.geo.PageWords)
			if op.scan+layout.RootRefWords <= end {
				slot := op.scan
				op.scan += layout.RootRefWords
				c.h.Store(op.meta+pmScan, op.scan)
				c.noteUsedDelta(op, 1)
				c.inflightRoot = slot
				c.hit(faultinject.AfterRootRefAdvance)
				return slot, nil
			}
			op.onClassList = false
			c.rootPages = c.rootPages[:len(c.rootPages)-1]
		}
		op, err := c.claimPage(layout.PageKindRootRef, 0)
		if err != nil {
			return 0, err
		}
		op.onClassList = true
		c.rootPages = append(c.rootPages, op)
	}
}

// allocRootRef claims one 2-word RootRef slot from a RootRef-only page, the
// classic §5.1 order: advance, zero pptr, set in_use. Used by the paths that
// need a committed (sweep-visible) slot before any further work — AttachRoot,
// queue receive, the huge-object branch. Malloc's small path instead takes
// the slot unclaimed and defers the in_use store past the link.
func (c *Client) allocRootRef() (layout.Addr, error) {
	slot, err := c.takeRootRefSlot()
	if err != nil {
		return 0, err
	}
	// pptr must be zeroed before in_use is set: recovery treats any
	// in_use slot's pptr as a live reference.
	c.h.Store(slot+layout.RootRefPptrOff, 0)
	c.h.Store(slot, layout.PackRootRef(true, 1))
	c.inflightRoot = 0
	c.noteRoot(slot, 1, 0)
	c.hit(faultinject.AfterRootRefClaim)
	return slot, nil
}

// abortRootRef returns a just-claimed, never-linked RootRef slot (block
// allocation failed after the claim).
func (c *Client) abortRootRef(slot layout.Addr) {
	c.freeRootRefSlot(slot)
}

// freeRootRefSlot clears a RootRef and parks it on its page's pending list
// (owner-local; RootRefs always live in their creator's pages). Ownership is
// decided by the shadow index — no device load — and the single device store
// (word0 ← 0) puts the slot in exactly the lost-slot state the segment scan
// re-links if this client dies before its next publication burst.
func (c *Client) freeRootRefSlot(slot layout.Addr) {
	if slot == c.inflightRoot {
		c.inflightRoot = 0
	}
	c.dropRoot(slot)
	c.h.Store(slot, 0)
	c.hit(faultinject.AfterRootRefClear)
	seg := c.geo.SegmentIndexOf(slot)
	op := c.ownedPageOf(seg, slot)
	if op == nil {
		// Not ours (recovery executor freeing a dead client's RootRef): the
		// slot is in an abandoned page, just leave it cleared — the segment
		// scan reclaims the page wholesale.
		return
	}
	c.deferFree(op, slot)
}

// --- huge objects ---

// allocHuge claims enough contiguous whole segments for an object larger
// than the biggest size class, with the paper's retry-and-rollback method.
func (c *Client) allocHuge(root layout.Addr, dataBytes, embedRefs int) (layout.Addr, error) {
	totalWords := uint64(layout.BlockHeaderWords) + uint64((dataBytes+layout.WordBytes-1)/layout.WordBytes)
	k := int((totalWords + c.geo.SegmentWords - 1) / c.geo.SegmentWords)
	if k > c.geo.NumSegments {
		return 0, ErrTooLarge
	}
	start := c.claimHugeRun(k)
	if start < 0 {
		if c.h.Fenced() {
			return 0, ErrFenced
		}
		return 0, ErrOutOfMemory
	}
	block := c.geo.SegmentBase(start)

	// Same ordering discipline as the small path: link, fence, init.
	// Claiming the segments plays the role of advancing the free pointer —
	// on a crash the run is owned by the dead client and reclaimed with it.
	c.h.Store(root+layout.RootRefPptrOff, block)
	c.hit(faultinject.AfterLink)
	c.timedFence()
	c.timedFlush(root)
	for i := 0; i < embedRefs; i++ {
		c.h.Store(block+layout.DataOff+layout.Addr(i), 0)
	}
	c.h.Store(block+layout.MetaOff, layout.PackMeta(layout.Meta{
		Flags:      layout.MetaAllocated | layout.MetaHuge,
		EmbedCnt:   uint16(embedRefs),
		BlockWords: totalWords,
	}))
	c.hit(faultinject.AfterBlockMeta)
	c.h.Store(block+layout.HeaderOff, layout.PackHeader(layout.Header{
		LCID: uint16(c.cid), LEra: c.era, RefCnt: 1,
	}))
	c.hit(faultinject.AfterHeaderInit)
	c.bumpEra()
	c.loc[obs.CtrAllocHuge]++
	return block, nil
}

// claimHugeRun claims k contiguous free segments, rolling back on conflict.
// Returns the first segment index or -1. Like claimSegment, the scan starts
// at a striped per-client cursor and wraps once.
func (c *Client) claimHugeRun(k int) int {
	limit := c.geo.NumSegments - k
	if limit < 0 {
		return -1
	}
	if c.hugeCursor > limit {
		c.hugeCursor = 0
	}
	if s := c.hugeRunScan(c.hugeCursor, limit, k); s >= 0 {
		c.hugeCursor = s + k
		return s
	}
	if s := c.hugeRunScan(0, c.hugeCursor-1, k); s >= 0 {
		c.hugeCursor = s + k
		return s
	}
	return -1
}

// hugeRunScan tries k-segment windows starting in [lo, hi]. A window that
// conflicts at offset j proves every start in [start, start+j] would include
// the same busy segment, so the scan resumes at start+j+1 — skipping past
// the conflict instead of re-CASing segments just seen busy (the old
// start+1 retry cost O(N·k) under fragmentation).
func (c *Client) hugeRunScan(lo, hi, k int) int {
	start := lo
	for start <= hi {
		claimed := 0
		conflict := 0
		ok := true
		for j := 0; j < k; j++ {
			a := c.geo.SegStateAddr(start + j)
			w := c.h.Load(a)
			st := layout.UnpackSegState(w)
			if st.State != layout.SegFree {
				ok, conflict = false, j
				break
			}
			state := uint8(layout.SegHugeBody)
			if j == 0 {
				state = layout.SegHugeHead
			}
			nw := layout.PackSegState(layout.SegState{
				CID: uint16(c.cid), Version: st.Version + 1, State: state,
			})
			if !c.h.CAS(a, w, nw) {
				ok, conflict = false, j
				break
			}
			claimed++
			c.hit(faultinject.AfterHugeClaim)
		}
		if ok {
			return start
		}
		// Rollback: release the prefix we claimed, then skip past the
		// conflicting index.
		for j := 0; j < claimed; j++ {
			c.releaseSegment(start + j)
		}
		start += conflict + 1
	}
	return -1
}

// releaseSegment returns an owned segment to the free pool, bumping the
// version to defeat ABA on future claims, and publishes the free-segment
// hint so the next claimer skips its scan. Live clients never release their
// active (shadowed) segments — this runs on huge-run rollbacks, huge frees,
// and dead owners' segments — so no shadow needs invalidating.
// Before the state flips to FREE, the segment-base header/meta words are
// scrubbed: a huge object's payload covers its body segments' bases, and a
// recycled segment whose base still spells out a plausible header would
// derail the next owner's mid-claim recovery (sweepHugeOwned trusts the head
// header it reads there).
func (c *Client) releaseSegment(i int) {
	base := c.geo.SegmentBase(i)
	c.h.Store(base+layout.HeaderOff, 0)
	c.h.Store(base+layout.MetaOff, 0)
	a := c.geo.SegStateAddr(i)
	st := layout.UnpackSegState(c.h.Load(a))
	c.h.Store(a, layout.PackSegState(layout.SegState{
		Version: st.Version + 1, State: layout.SegFree,
	}))
	c.h.Store(c.geo.SegFreeHintAddr(), uint64(i)+1)
}
