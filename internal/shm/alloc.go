package shm

import (
	"time"

	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/obs"
)

// Allocation (paper §3.3 and §5.1).
//
// Fast path: each client owns segments exclusively (claimed with one CAS on
// the Global Segment Allocation Vec), carves pages per size class inside
// them, and allocates blocks from a page with no cross-client
// synchronization. To tolerate partial failure, cxl_malloc also allocates an
// implicit RootRef from dedicated RootRef-only pages and performs four
// carefully ordered steps:
//
//	1. claim a RootRef slot (in_use ← 1, pptr ← 0)
//	2. link: RootRef.pptr ← block          (block still counts as free)
//	3. advance the page free pointer        (now allocated, refcnt still 0)
//	4. init block meta + header (refcnt=1), then bump the era
//
// A fence orders 2 before 3 and a flush persists the RootRef. Recovery can
// then classify any crash point: pptr==free-pointer ⇒ the allocation never
// completed step 3, skip the release (§5.1); header refcnt==0 ⇒ step 4 never
// completed, free only the RootRef.

// blockSlot describes a block reserved (but not yet advanced past) in a page.
type blockSlot struct {
	pr       pageRef
	addr     layout.Addr
	fromFree bool        // true: head of the page free list; false: bump region
	next     layout.Addr // new free-list head or new bump pointer
}

// freeNextOff is the block-relative word holding the intrusive free-list
// next pointer while the block is free. It lives in the data area so the
// header word of a free block can stay zero.
const freeNextOff = layout.DataOff

// Page meta word offsets within a page's meta area.
const (
	pmInfo = 0 // packed PageMeta (kind, used, size class)
	pmFree = 1 // free-list head
	pmScan = 2 // bump pointer into the never-allocated tail of the page
)

func (c *Client) pageMetaAddr(pr pageRef) layout.Addr { return c.geo.PageMetaAddr(pr.seg, pr.page) }

// allocSampleEvery is the Malloc latency sampling period: one call in this
// many feeds the alloc_ns histogram, keeping the fast path flat while the
// histogram still converges within any benchmark-scale run. Must be a power
// of two.
const allocSampleEvery = 64

// Malloc allocates dataBytes of shared memory with embedRefs embedded
// references at the start of the data area (paper §3.1: cxl_malloc). It
// returns the RootRef address (what a CXLRef points to) and the block
// address. The returned object has reference count 1, held by the RootRef.
func (c *Client) Malloc(dataBytes, embedRefs int) (root, block layout.Addr, err error) {
	timed := c.timing || c.allocSeq&(allocSampleEvery-1) == 0
	c.allocSeq++
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	root, block, err = c.malloc(dataBytes, embedRefs)
	if err != nil {
		c.loc[obs.CtrAllocFail]++
	} else {
		c.loc[obs.CtrAlloc]++
	}
	if timed {
		ns := time.Since(t0).Nanoseconds()
		c.mx.Observe(obs.HistAllocNS, ns)
		if c.timing {
			c.loc[obs.CtrAllocNanos] += uint64(ns)
		}
	}
	return root, block, err
}

func (c *Client) malloc(dataBytes, embedRefs int) (layout.Addr, layout.Addr, error) {
	if c.h.Fenced() {
		return 0, 0, ErrFenced
	}
	if dataBytes < 1 {
		dataBytes = 1
	}
	if embedRefs < 0 || embedRefs > layout.MaxEmbedRefs ||
		embedRefs*layout.WordBytes > dataBytes {
		return 0, 0, ErrBadEmbedIndex
	}
	root, err := c.allocRootRef()
	if err != nil {
		return 0, 0, err
	}
	ci := layout.ClassIndexFor(c.geo.Classes, dataBytes)
	if ci < 0 {
		block, err := c.allocHuge(root, dataBytes, embedRefs)
		if err != nil {
			c.abortRootRef(root)
			return 0, 0, err
		}
		return root, block, nil
	}
	slot, err := c.findBlock(ci)
	if err != nil {
		c.abortRootRef(root)
		return 0, 0, err
	}

	// Step 2: link. The RootRef now points at a block that is still, from
	// the page's perspective, free.
	c.h.Store(root+layout.RootRefPptrOff, slot.addr)
	c.hit(faultinject.AfterLink)
	c.timedFence()

	// Step 3: advance the free pointer. Must strictly follow the link (the
	// paper's fence): advancing first could leak the block, linking first is
	// recovered by the pptr==free-pointer check.
	c.advanceSlot(slot)
	c.hit(faultinject.AfterAdvance)
	c.timedFence()
	c.timedFlush(root)

	// Step 4: initialize the block. Embedded reference words must be zero
	// before the object becomes visible (recovery DFS walks them).
	for i := 0; i < embedRefs; i++ {
		c.h.Store(slot.addr+layout.DataOff+layout.Addr(i), 0)
	}
	cls := c.geo.Classes[ci]
	c.h.Store(slot.addr+layout.MetaOff, layout.PackMeta(layout.Meta{
		Flags:      layout.MetaAllocated,
		EmbedCnt:   uint16(embedRefs),
		BlockWords: cls.BlockWords,
	}))
	c.hit(faultinject.AfterBlockMeta)
	c.h.Store(slot.addr+layout.HeaderOff, layout.PackHeader(layout.Header{
		LCID:   uint16(c.cid),
		LEra:   c.era,
		RefCnt: 1,
	}))
	c.hit(faultinject.AfterHeaderInit)
	// Publishing a header at the current era is a commit-like event: bump so
	// every published (cid, era) pair stays unique (recovery Conditions 1/2
	// depend on it). This is the §5.1 "special algorithm for the
	// initialization of reference count".
	c.bumpEra()
	return root, slot.addr, nil
}

// findBlock reserves a block of class ci without advancing past it.
func (c *Client) findBlock(ci int) (blockSlot, error) {
	for {
		list := c.classPages[ci]
		for len(list) > 0 {
			pr := list[len(list)-1]
			if s, ok := c.tryPage(pr, ci); ok {
				return s, nil
			}
			list = list[:len(list)-1]
			c.classPages[ci] = list
		}
		if c.collectDeferredFrees(ci) {
			continue
		}
		pr, err := c.claimPage(layout.PageKindNormal, ci)
		if err != nil {
			return blockSlot{}, err
		}
		c.classPages[ci] = append(c.classPages[ci], pr)
	}
}

// tryPage reserves a block in pr: first from the page free list, then from
// the never-allocated bump region.
func (c *Client) tryPage(pr pageRef, ci int) (blockSlot, bool) {
	meta := c.pageMetaAddr(pr)
	if head := c.h.Load(meta + pmFree); head != 0 {
		return blockSlot{
			pr:       pr,
			addr:     head,
			fromFree: true,
			next:     c.h.Load(head + freeNextOff),
		}, true
	}
	scan := c.h.Load(meta + pmScan)
	bw := c.geo.Classes[ci].BlockWords
	end := c.geo.PageBase(pr.seg, pr.page) + layout.Addr(c.geo.PageWords)
	if scan+bw <= end {
		return blockSlot{pr: pr, addr: scan, fromFree: false, next: scan + bw}, true
	}
	return blockSlot{}, false
}

// advanceSlot performs the §5.1 step 3: move the page free pointer past the
// reserved block, and bump the page's used count.
func (c *Client) advanceSlot(s blockSlot) {
	meta := c.pageMetaAddr(s.pr)
	if s.fromFree {
		c.h.Store(meta+pmFree, s.next)
	} else {
		c.h.Store(meta+pmScan, s.next)
	}
	info := layout.UnpackPageMeta(c.h.Load(meta + pmInfo))
	info.Used++
	c.h.Store(meta+pmInfo, layout.PackPageMeta(info))
}

// collectDeferredFrees drains the client_free lists of this client's
// segments (blocks freed by other clients, paper Figure 3), distributing
// blocks back to their pages' free lists. Reports whether any block of class
// ci came back (so the caller retries before claiming fresh pages).
func (c *Client) collectDeferredFrees(ci int) bool {
	found := false
	for _, seg := range c.segments {
		cf := c.geo.SegClientFreeAddr(seg)
		var head layout.Addr
		for {
			head = c.h.Load(cf)
			if head == 0 {
				break
			}
			if c.h.CAS(cf, head, 0) {
				break
			}
		}
		for head != 0 {
			next := c.h.Load(head + freeNextOff)
			pr := pageRef{seg: seg, page: c.geo.PageIndexOf(seg, head)}
			meta := c.pageMetaAddr(pr)
			info := layout.UnpackPageMeta(c.h.Load(meta + pmInfo))
			c.h.Store(head+freeNextOff, c.h.Load(meta+pmFree))
			c.h.Store(meta+pmFree, head)
			if info.Used > 0 {
				info.Used--
			}
			c.h.Store(meta+pmInfo, layout.PackPageMeta(info))
			if int(info.SizeClass) == ci && info.Kind == layout.PageKindNormal {
				found = true
				c.readdClassPage(ci, pr)
			}
			head = next
		}
	}
	return found
}

// readdClassPage puts pr back on the class page cache if absent.
func (c *Client) readdClassPage(ci int, pr pageRef) {
	for _, p := range c.classPages[ci] {
		if p == pr {
			return
		}
	}
	c.classPages[ci] = append(c.classPages[ci], pr)
}

// claimPage takes the next unclaimed page in an owned segment (claiming a
// new segment if needed) and dedicates it to kind/class. Being the slow
// path, it also runs the paper's periodic duty (§5.3): scan any owned
// segment left in POTENTIAL_LEAKING state by an interrupted reclamation.
func (c *Client) claimPage(kind uint8, ci int) (pageRef, error) {
	c.scanFlaggedOwned()
	for _, seg := range c.segments {
		if pr, ok := c.claimPageIn(seg, kind, ci); ok {
			return pr, nil
		}
	}
	seg, err := c.claimSegment()
	if err != nil {
		return pageRef{}, err
	}
	if pr, ok := c.claimPageIn(seg, kind, ci); ok {
		return pr, nil
	}
	return pageRef{}, ErrOutOfMemory
}

func (c *Client) claimPageIn(seg int, kind uint8, ci int) (pageRef, bool) {
	npAddr := c.geo.SegNextPageAddr(seg)
	n := int(c.h.Load(npAddr))
	if n >= c.geo.PagesPerSegment {
		return pageRef{}, false
	}
	pr := pageRef{seg: seg, page: n}
	meta := c.pageMetaAddr(pr)
	// Initialize the page meta before publishing it via the next-page
	// counter; the segment is exclusively ours so this is owner-local.
	c.h.Store(meta+pmInfo, layout.PackPageMeta(layout.PageMeta{
		Kind: kind, Used: 0, SizeClass: uint32(ci),
	}))
	c.h.Store(meta+pmFree, 0)
	c.h.Store(meta+pmScan, c.geo.PageBase(seg, n))
	c.h.Store(npAddr, uint64(n+1))
	return pr, true
}

// claimSegment CASes a free segment to exclusive ownership (the only
// cross-client synchronization in the allocation path).
func (c *Client) claimSegment() (int, error) {
	for i := 0; i < c.geo.NumSegments; i++ {
		a := c.geo.SegStateAddr(i)
		w := c.h.Load(a)
		st := layout.UnpackSegState(w)
		if st.State != layout.SegFree {
			continue
		}
		nw := layout.PackSegState(layout.SegState{
			CID: uint16(c.cid), Version: st.Version + 1, State: layout.SegActive,
		})
		if !c.h.CAS(a, w, nw) {
			continue
		}
		// Reset the owner-local page counter; page metas are initialized
		// lazily at claimPageIn.
		c.h.Store(c.geo.SegNextPageAddr(i), 0)
		c.hit(faultinject.AfterSegmentClaim)
		c.loc[obs.CtrSegClaim]++
		c.segments = append(c.segments, i)
		return i, nil
	}
	if c.h.Fenced() {
		return 0, ErrFenced
	}
	return 0, ErrOutOfMemory
}

// --- RootRef slots ---

// allocRootRef claims one 2-word RootRef slot from a RootRef-only page.
// Unlike data blocks, the advance happens before the claim: a slot's
// liveness marker is its own in_use bit, so the crash window leaves either a
// lost free slot (re-found by the segment-local scan) or an in_use slot with
// pptr==0 (freed by recovery).
func (c *Client) allocRootRef() (layout.Addr, error) {
	for {
		for len(c.rootPages) > 0 {
			pr := c.rootPages[len(c.rootPages)-1]
			meta := c.pageMetaAddr(pr)
			var slot layout.Addr
			if head := c.h.Load(meta + pmFree); head != 0 {
				slot = head
				c.h.Store(meta+pmFree, c.h.Load(head+layout.RootRefPptrOff))
			} else {
				scan := c.h.Load(meta + pmScan)
				end := c.geo.PageBase(pr.seg, pr.page) + layout.Addr(c.geo.PageWords)
				if scan+layout.RootRefWords > end {
					c.rootPages = c.rootPages[:len(c.rootPages)-1]
					continue
				}
				slot = scan
				c.h.Store(meta+pmScan, scan+layout.RootRefWords)
			}
			c.hit(faultinject.AfterRootRefAdvance)
			// pptr must be zeroed before in_use is set: recovery treats any
			// in_use slot's pptr as a live reference.
			c.h.Store(slot+layout.RootRefPptrOff, 0)
			c.h.Store(slot, layout.PackRootRef(true, 1))
			c.hit(faultinject.AfterRootRefClaim)
			info := layout.UnpackPageMeta(c.h.Load(meta + pmInfo))
			info.Used++
			c.h.Store(meta+pmInfo, layout.PackPageMeta(info))
			return slot, nil
		}
		pr, err := c.claimPage(layout.PageKindRootRef, 0)
		if err != nil {
			return 0, err
		}
		c.rootPages = append(c.rootPages, pr)
	}
}

// abortRootRef returns a just-claimed, never-linked RootRef slot (block
// allocation failed after the claim).
func (c *Client) abortRootRef(slot layout.Addr) {
	c.freeRootRefSlot(slot)
}

// freeRootRefSlot clears a RootRef and pushes it back to its page free list
// (owner-local; RootRefs always live in their creator's pages).
func (c *Client) freeRootRefSlot(slot layout.Addr) {
	c.h.Store(slot, 0)
	c.hit(faultinject.AfterRootRefClear)
	seg := c.geo.SegmentIndexOf(slot)
	pr := pageRef{seg: seg, page: c.geo.PageIndexOf(seg, slot)}
	st := layout.UnpackSegState(c.h.Load(c.geo.SegStateAddr(seg)))
	if int(st.CID) != c.cid || st.State != layout.SegActive {
		// Not ours (recovery executor freeing a dead client's RootRef): the
		// slot is in an abandoned page, just leave it cleared — the segment
		// scan reclaims the page wholesale.
		return
	}
	meta := c.pageMetaAddr(pr)
	c.h.Store(slot+layout.RootRefPptrOff, c.h.Load(meta+pmFree))
	c.h.Store(meta+pmFree, slot)
	info := layout.UnpackPageMeta(c.h.Load(meta + pmInfo))
	if info.Used > 0 {
		info.Used--
	}
	c.h.Store(meta+pmInfo, layout.PackPageMeta(info))
}

// --- huge objects ---

// allocHuge claims enough contiguous whole segments for an object larger
// than the biggest size class, with the paper's retry-and-rollback method.
func (c *Client) allocHuge(root layout.Addr, dataBytes, embedRefs int) (layout.Addr, error) {
	totalWords := uint64(layout.BlockHeaderWords) + uint64((dataBytes+layout.WordBytes-1)/layout.WordBytes)
	k := int((totalWords + c.geo.SegmentWords - 1) / c.geo.SegmentWords)
	if k > c.geo.NumSegments {
		return 0, ErrTooLarge
	}
	start := c.claimHugeRun(k)
	if start < 0 {
		if c.h.Fenced() {
			return 0, ErrFenced
		}
		return 0, ErrOutOfMemory
	}
	block := c.geo.SegmentBase(start)

	// Same ordering discipline as the small path: link, fence, init.
	// Claiming the segments plays the role of advancing the free pointer —
	// on a crash the run is owned by the dead client and reclaimed with it.
	c.h.Store(root+layout.RootRefPptrOff, block)
	c.hit(faultinject.AfterLink)
	c.timedFence()
	c.timedFlush(root)
	for i := 0; i < embedRefs; i++ {
		c.h.Store(block+layout.DataOff+layout.Addr(i), 0)
	}
	c.h.Store(block+layout.MetaOff, layout.PackMeta(layout.Meta{
		Flags:      layout.MetaAllocated | layout.MetaHuge,
		EmbedCnt:   uint16(embedRefs),
		BlockWords: totalWords,
	}))
	c.hit(faultinject.AfterBlockMeta)
	c.h.Store(block+layout.HeaderOff, layout.PackHeader(layout.Header{
		LCID: uint16(c.cid), LEra: c.era, RefCnt: 1,
	}))
	c.hit(faultinject.AfterHeaderInit)
	c.bumpEra()
	c.loc[obs.CtrAllocHuge]++
	return block, nil
}

// claimHugeRun claims k contiguous free segments, rolling back on conflict.
// Returns the first segment index or -1.
func (c *Client) claimHugeRun(k int) int {
	for start := 0; start+k <= c.geo.NumSegments; start++ {
		claimed := 0
		ok := true
		for j := 0; j < k; j++ {
			a := c.geo.SegStateAddr(start + j)
			w := c.h.Load(a)
			st := layout.UnpackSegState(w)
			if st.State != layout.SegFree {
				ok = false
				break
			}
			state := uint8(layout.SegHugeBody)
			if j == 0 {
				state = layout.SegHugeHead
			}
			nw := layout.PackSegState(layout.SegState{
				CID: uint16(c.cid), Version: st.Version + 1, State: state,
			})
			if !c.h.CAS(a, w, nw) {
				ok = false
				break
			}
			claimed++
			c.hit(faultinject.AfterHugeClaim)
		}
		if ok {
			return start
		}
		// Rollback: release the prefix we claimed.
		for j := 0; j < claimed; j++ {
			c.releaseSegment(start + j)
		}
	}
	return -1
}

// releaseSegment returns an owned segment to the free pool, bumping the
// version to defeat ABA on future claims.
func (c *Client) releaseSegment(i int) {
	a := c.geo.SegStateAddr(i)
	st := layout.UnpackSegState(c.h.Load(a))
	c.h.Store(a, layout.PackSegState(layout.SegState{
		Version: st.Version + 1, State: layout.SegFree,
	}))
}
