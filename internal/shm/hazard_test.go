package shm_test

import (
	"testing"

	"repro/internal/layout"
	"repro/internal/recovery"
	"repro/internal/shm"
)

// recoverAll recovers the given dead clients and runs background
// maintenance until abandoned segments drain.
func recoverAll(t *testing.T, p *shm.Pool, cids ...int) {
	t.Helper()
	svc, err := recovery.NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, cid := range cids {
		// Fence first: RecoverClient refuses ALIVE slots (a stale request
		// must never fence a recycled lease), and stale snapshot clients
		// are still ALIVE on the device.
		if err := p.MarkClientDead(cid); err != nil {
			t.Fatalf("fence %d: %v", cid, err)
		}
		if _, err := svc.RecoverClient(cid); err != nil {
			t.Fatalf("recover %d: %v", cid, err)
		}
	}
	mon := recovery.NewMonitor(svc, recovery.MonitorConfig{})
	for i := 0; i < 4; i++ {
		mon.Tick()
	}
}

// buildList creates head -> n1 -> n2 (each node: 1 embed + payload) and
// returns the head's root plus the node addresses. Only the head is
// directly rooted; n1 and n2 live via the chain.
func buildList(t *testing.T, c *shm.Client) (headRoot, head, n1, n2 layout.Addr) {
	t.Helper()
	r2, n2, err := c.Malloc(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	r1, n1, err := c.Malloc(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	headRoot, head, err = c.Malloc(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetEmbed(n1, 0, n2); err != nil {
		t.Fatal(err)
	}
	if err := c.SetEmbed(head, 0, n1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReleaseRoot(r1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReleaseRoot(r2); err != nil {
		t.Fatal(err)
	}
	return headRoot, head, n1, n2
}

func TestRetireDefersReclamationWhileReaderActive(t *testing.T) {
	p := newTestPool(t)
	w := connect(t, p) // the single writer
	r := connect(t, p) // a concurrent reader

	headRoot, head, n1, n2 := buildList(t, w)

	// The reader announces a traversal.
	era := r.EnterRead()
	if era == 0 {
		t.Fatal("EnterRead returned era 0")
	}

	// The writer unlinks n1 (re-points head's next to n2) with deferred
	// reclamation: n1's count drops to zero but its memory must survive —
	// the reader may be standing on it.
	if err := w.ChangeEmbedRetire(head, 0, n2); err != nil {
		t.Fatal(err)
	}
	if got := w.RetiredCount(); got != 1 {
		t.Fatalf("retired count = %d, want 1", got)
	}
	if hdr := w.HeaderOf(n1); hdr.RefCnt != 0 {
		t.Fatalf("n1 ref_cnt = %d, want 0 (unlinked)", hdr.RefCnt)
	}
	if !w.MetaOf(n1).Allocated() {
		t.Fatal("n1 was freed while a reader was active")
	}
	// The retired node's own links are intact: a reader standing on n1 can
	// still reach n2.
	if next, _ := w.LoadEmbed(n1, 0); next != n2 {
		t.Fatalf("retired node's next = %#x, want %#x", next, n2)
	}

	// Reclamation must refuse while the reader's hazard era is published.
	if freed := w.ReclaimRetired(); freed != 0 {
		t.Fatalf("reclaimed %d nodes under an active reader", freed)
	}
	if !w.MetaOf(n1).Allocated() {
		t.Fatal("n1 freed despite active hazard")
	}

	// Reader leaves; now the node is reclaimable (and its reference to n2
	// is cascaded properly).
	r.ExitRead()
	if freed := w.ReclaimRetired(); freed != 1 {
		t.Fatalf("reclaimed %d nodes after reader exit, want 1", freed)
	}
	if w.MetaOf(n1).Allocated() {
		t.Fatal("n1 still allocated after reclamation")
	}
	if hdr := w.HeaderOf(n2); hdr.RefCnt != 1 {
		t.Fatalf("n2 ref_cnt = %d after cascade, want 1 (head only)", hdr.RefCnt)
	}

	if _, err := w.ReleaseRoot(headRoot); err != nil {
		t.Fatal(err)
	}
	res := mustValidate(t, p)
	if res.AllocatedObjects != 0 {
		t.Fatalf("%d objects leaked", res.AllocatedObjects)
	}
}

func TestDeadReaderDoesNotBlockReclamation(t *testing.T) {
	p := newTestPool(t)
	w := connect(t, p)
	r := connect(t, p)

	headRoot, head, _, n2 := buildList(t, w)
	r.EnterRead() // reader publishes a hazard era...
	if err := w.ChangeEmbedRetire(head, 0, n2); err != nil {
		t.Fatal(err)
	}
	if freed := w.ReclaimRetired(); freed != 0 {
		t.Fatal("reclaimed under a live reader")
	}
	// ...and then dies without ever calling ExitRead.
	if err := r.Crash(); err != nil {
		t.Fatal(err)
	}
	// Liveness comes from the client status word, so the stale hazard no
	// longer gates reclamation.
	if freed := w.ReclaimRetired(); freed != 1 {
		t.Fatalf("dead reader blocked reclamation (freed=%d)", freed)
	}
	if _, err := w.ReleaseRoot(headRoot); err != nil {
		t.Fatal(err)
	}
}

func TestRetireEmbedTailUnlink(t *testing.T) {
	p := newTestPool(t)
	w := connect(t, p)
	headRoot, head, n1, n2 := buildList(t, w)

	// Unlink the tail (n2) from n1 with deferred reclamation; no reader is
	// active, so reclamation succeeds immediately afterwards.
	if err := w.RetireEmbed(n1, 0); err != nil {
		t.Fatal(err)
	}
	if got, _ := w.LoadEmbed(n1, 0); got != 0 {
		t.Fatalf("n1.next = %#x after retire, want 0", got)
	}
	if w.RetiredCount() != 1 {
		t.Fatalf("retired=%d", w.RetiredCount())
	}
	if freed := w.ReclaimRetired(); freed != 1 {
		t.Fatalf("freed=%d", freed)
	}
	if w.MetaOf(n2).Allocated() {
		t.Fatal("n2 not reclaimed")
	}
	_ = head
	if _, err := w.ReleaseRoot(headRoot); err != nil {
		t.Fatal(err)
	}
	res := mustValidate(t, p)
	if res.AllocatedObjects != 0 {
		t.Fatalf("%d leaked", res.AllocatedObjects)
	}
}

func TestCrashWithParkedNodesIsRecovered(t *testing.T) {
	p := newTestPool(t)
	w := connect(t, p)
	r := connect(t, p)
	headRoot, head, _, n2 := buildList(t, w)
	_ = headRoot
	r.EnterRead()
	if err := w.ChangeEmbedRetire(head, 0, n2); err != nil {
		t.Fatal(err)
	}
	// The writer dies with a node parked on its (volatile) retire list; the
	// reader also exits. The parked node is a refcount-zero block in a
	// flagged segment — exactly what the segment scan reclaims.
	if err := w.Crash(); err != nil {
		t.Fatal(err)
	}
	r.ExitRead()
	if err := r.Crash(); err != nil {
		t.Fatal(err)
	}
	// Recovery + maintenance must converge to an empty pool.
	recoverAll(t, p, w.ID(), r.ID())
	res := mustValidate(t, p)
	if res.AllocatedObjects != 0 {
		t.Fatalf("parked node leaked: %d objects", res.AllocatedObjects)
	}
}

func TestGlobalEraAdvancesOnRetire(t *testing.T) {
	p := newTestPool(t)
	w := connect(t, p)
	e0 := p.GlobalEra()
	headRoot, head, _, n2 := buildList(t, w)
	if err := w.ChangeEmbedRetire(head, 0, n2); err != nil {
		t.Fatal(err)
	}
	if p.GlobalEra() <= e0 {
		t.Fatalf("global era %d did not advance past %d", p.GlobalEra(), e0)
	}
	w.ReclaimRetired()
	if _, err := w.ReleaseRoot(headRoot); err != nil {
		t.Fatal(err)
	}
}
