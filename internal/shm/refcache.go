package shm

import (
	"fmt"

	"repro/internal/layout"
)

// Reference shadow caches: the free-path counterpart of shadow.go.
//
// A free (ReleaseRoot of the last count) used to pay four device loads —
// the RootRef word, its pptr, the block header, and the block meta — before
// its first store. All four words are either owner-exclusive or were last
// written by this client on the overwhelmingly common path, so they are
// cached here:
//
//   - rootShadow mirrors a RootRef slot's thread-local count and pptr
//     target. Both words are single-writer (§5.2: CloneRoot/ReleaseRoot use
//     no atomics), and the segment scan never rewrites a live owner's
//     in_use slots, so the mirror is exact while the client lives. Entries
//     are created when the slot is claimed and deleted when it is freed.
//
//   - blockShadow carries a block's meta word (immutable from allocation
//     to free, single-writer exceptions routed through noteMeta) and the
//     last header word this client itself published. The header is shared
//     state (any client may CAS it), so the cached value is only ever a
//     CAS *guess*: the transaction loops in era.go seed their first
//     attempt from it and fall back to a device load when the guess loses
//     the CAS. A stale guess costs one extra CAS attempt; it can never
//     commit, because the commit is a full-word compare.
//
// Entries are created at Malloc, updated at every header publication by
// this client, and deleted when the block is freed — by this client
// (reclaimRaw) or, for blocks other clients freed into our segments'
// client_free lists, when the deferred frees are collected. Between a
// remote free and that collection an entry is stale but unreachable: no
// live reference to the block remains, so no transaction consults it.
// Like every shadow, these are read-elision only — recovery and validation
// never see them, and a crash loses nothing but cached copies of device
// words.

type rootShadow struct {
	cnt    uint32
	target layout.Addr
}

type blockShadow struct {
	header uint64 // last header word this client published (CAS guess only)
	meta   uint64 // packed meta word; immutable while allocated
}

// noteRoot records (or resets) the shadow of a just-claimed RootRef slot.
func (c *Client) noteRoot(root layout.Addr, cnt uint32, target layout.Addr) {
	c.roots[root] = &rootShadow{cnt: cnt, target: target}
}

// noteRootTarget records a new value of a reference word if — and only if —
// that word is the pptr of a shadowed RootRef. ref may just as well be an
// embedded reference or a queue slot: those live in normal pages, so
// ref-RootRefPptrOff can never collide with a RootRef slot address this
// client has shadowed, and the lookup simply misses.
func (c *Client) noteRootTarget(ref, target layout.Addr) {
	if ref < layout.RootRefPptrOff {
		return
	}
	if rs := c.roots[ref-layout.RootRefPptrOff]; rs != nil {
		rs.target = target
	}
}

func (c *Client) dropRoot(root layout.Addr) { delete(c.roots, root) }

// noteBlock records the shadow of a just-initialized block.
func (c *Client) noteBlock(block layout.Addr, header, meta uint64) {
	c.blocks[block] = &blockShadow{header: header, meta: meta}
}

// noteHeader updates the cached header after this client published a new
// header word (allocation init or a committed transaction CAS).
func (c *Client) noteHeader(block layout.Addr, w uint64) {
	if bs := c.blocks[block]; bs != nil {
		bs.header = w
	}
}

// noteMeta updates the cached meta word on the rare legitimate in-place
// meta rewrite (CreateQueue setting the queue flag).
func (c *Client) noteMeta(block layout.Addr, w uint64) {
	if bs := c.blocks[block]; bs != nil {
		bs.meta = w
	}
}

func (c *Client) dropBlock(block layout.Addr) { delete(c.blocks, block) }

// guessHeader returns a first CAS attempt value for block's header: the
// cached word when present (guessed=true), a device load otherwise.
func (c *Client) guessHeader(block layout.Addr) (w uint64, guessed bool) {
	if bs := c.blocks[block]; bs != nil {
		return bs.header, true
	}
	return c.h.Load(block + layout.HeaderOff), false
}

// metaOf reads a block's meta through the shadow when present.
func (c *Client) metaOf(block layout.Addr) layout.Meta {
	if bs := c.blocks[block]; bs != nil {
		return layout.UnpackMeta(bs.meta)
	}
	return layout.UnpackMeta(c.h.Load(block + layout.MetaOff))
}

// checkRefShadow verifies the reference caches against the device (the
// CheckShadow leg for this file). Root shadows must match exactly. Block
// shadows: a no-longer-allocated block is a pending remote free (dropped at
// the next client_free collection) and is skipped; otherwise the meta must
// match, and the header must match unless another client has published over
// it — detectable because a committed header always carries its writer's
// LCID.
func errShadow(format string, args ...any) error {
	return fmt.Errorf("shm: "+format, args...)
}

func (c *Client) checkRefShadow() error {
	for root, rs := range c.roots {
		inUse, cnt := layout.UnpackRootRef(c.h.Load(root))
		if !inUse || cnt != rs.cnt {
			return errShadow("RootRef %#x shadow cnt %d, device inUse=%v cnt=%d", root, rs.cnt, inUse, cnt)
		}
		if got := c.h.Load(root + layout.RootRefPptrOff); got != rs.target {
			return errShadow("RootRef %#x shadow target %#x, device %#x", root, rs.target, got)
		}
	}
	for block, bs := range c.blocks {
		mw := c.h.Load(block + layout.MetaOff)
		if !layout.UnpackMeta(mw).Allocated() {
			continue // freed by another client; entry dropped at collection
		}
		if mw != bs.meta {
			return errShadow("block %#x shadow meta %#x, device %#x", block, bs.meta, mw)
		}
		hw := c.h.Load(block + layout.HeaderOff)
		if hw != bs.header && layout.UnpackHeader(hw).LCID == uint16(c.cid) {
			return errShadow("block %#x shadow header %#x, device %#x (own LCID)", block, bs.header, hw)
		}
	}
	return nil
}
