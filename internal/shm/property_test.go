package shm_test

// Property-based testing of the era-based reference counting: random
// operation sequences are mirrored against a trivial in-Go reference model;
// after every sequence the device counts must equal the model's and the
// whole-pool validator must be clean.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/check"
	"repro/internal/layout"
)

// refModel tracks what the reference counts ought to be.
type refModel struct {
	// counts[block] = number of counted references the model expects.
	counts map[layout.Addr]int
}

func TestQuickRefcountModel(t *testing.T) {
	f := func(seed int64) bool {
		return runModelSequence(t, seed, 120)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// runModelSequence performs ops random operations and cross-checks.
func runModelSequence(t *testing.T, seed int64, ops int) bool {
	t.Helper()
	p := newTestPool(t)
	c := connect(t, p)
	rng := rand.New(rand.NewSource(seed))
	model := refModel{counts: map[layout.Addr]int{}}

	type obj struct {
		block layout.Addr
		roots []layout.Addr // counted references we hold (RootRefs)
	}
	var objs []*obj

	alive := func() []*obj {
		var out []*obj
		for _, o := range objs {
			if len(o.roots) > 0 {
				out = append(out, o)
			}
		}
		return out
	}

	for i := 0; i < ops; i++ {
		switch rng.Intn(4) {
		case 0, 1: // allocate
			root, block, err := c.Malloc(16+rng.Intn(100), 0)
			if err != nil {
				t.Logf("seed %d op %d: malloc: %v", seed, i, err)
				return false
			}
			objs = append(objs, &obj{block: block, roots: []layout.Addr{root}})
			model.counts[block] = 1
		case 2: // attach another counted reference to a live object
			live := alive()
			if len(live) == 0 {
				continue
			}
			o := live[rng.Intn(len(live))]
			root, err := c.AttachRoot(o.block)
			if err != nil {
				t.Logf("seed %d op %d: attach: %v", seed, i, err)
				return false
			}
			o.roots = append(o.roots, root)
			model.counts[o.block]++
		case 3: // release one reference
			live := alive()
			if len(live) == 0 {
				continue
			}
			o := live[rng.Intn(len(live))]
			k := rng.Intn(len(o.roots))
			root := o.roots[k]
			o.roots = append(o.roots[:k], o.roots[k+1:]...)
			freed, err := c.ReleaseRoot(root)
			if err != nil {
				t.Logf("seed %d op %d: release: %v", seed, i, err)
				return false
			}
			model.counts[o.block]--
			if (model.counts[o.block] == 0) != freed {
				t.Logf("seed %d op %d: freed=%v but model count=%d",
					seed, i, freed, model.counts[o.block])
				return false
			}
		}
	}

	// Cross-check every live object's device count against the model.
	for _, o := range objs {
		want := model.counts[o.block]
		if want == 0 {
			continue // freed; the block may be reused by now
		}
		if got := int(c.HeaderOf(o.block).RefCnt); got != want {
			t.Logf("seed %d: block %#x ref_cnt=%d, model=%d", seed, o.block, got, want)
			return false
		}
	}
	// Release the rest and demand a pristine pool.
	for _, o := range objs {
		for _, r := range o.roots {
			if _, err := c.ReleaseRoot(r); err != nil {
				t.Logf("seed %d: final release: %v", seed, err)
				return false
			}
		}
	}
	res := check.Validate(p)
	if !res.Clean() || res.AllocatedObjects != 0 {
		for _, is := range res.Issues {
			t.Logf("seed %d: %s", seed, is)
		}
		t.Logf("seed %d: %d objects left", seed, res.AllocatedObjects)
		return false
	}
	return true
}

// TestQuickEmbedGraphModel builds random forests with embedded references
// and verifies the cascade frees exactly the unreachable part.
func TestQuickEmbedGraphModel(t *testing.T) {
	f := func(seed int64) bool {
		p := newTestPool(t)
		c := connect(t, p)
		rng := rand.New(rand.NewSource(seed))

		// Build a random chain-forest: every node may link to one
		// previously created node (acyclic by construction).
		type node struct {
			block layout.Addr
			root  layout.Addr
		}
		var nodes []node
		for i := 0; i < 20; i++ {
			root, block, err := c.Malloc(24, 1)
			if err != nil {
				return false
			}
			if len(nodes) > 0 && rng.Intn(2) == 0 {
				target := nodes[rng.Intn(len(nodes))]
				if err := c.SetEmbed(block, 0, target.block); err != nil {
					return false
				}
			}
			nodes = append(nodes, node{block: block, root: root})
		}
		// Drop all direct roots in random order; cascades must reclaim
		// everything exactly once.
		perm := rng.Perm(len(nodes))
		for _, k := range perm {
			if _, err := c.ReleaseRoot(nodes[k].root); err != nil {
				return false
			}
		}
		res := check.Validate(p)
		if !res.Clean() || res.AllocatedObjects != 0 {
			for _, is := range res.Issues {
				t.Logf("seed %d: %s", seed, is)
			}
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestOwnerSlowPathClearsLeakFlag verifies the §5.3 periodic duty: a
// POTENTIAL_LEAKING flag on an owned segment is noticed and cleared by the
// owner's next allocation slow path.
func TestOwnerSlowPathClearsLeakFlag(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	// Claim a segment by allocating.
	if _, _, err := c.Malloc(64, 0); err != nil {
		t.Fatal(err)
	}
	p.FlagSegmentLeaking(0)
	if p.SegState(0).Flags&layout.SegFlagPotentialLeaking == 0 {
		t.Fatal("flag not set")
	}
	// Allocate enough variety to force the page-claim slow path.
	for _, sz := range []int{16, 100, 300, 700, 1500, 3000} {
		if _, _, err := c.Malloc(sz, 0); err != nil {
			t.Fatal(err)
		}
	}
	if p.SegState(0).Flags&layout.SegFlagPotentialLeaking != 0 {
		t.Fatal("owner's slow path did not clear the leak flag")
	}
}

// TestQueueWraparound cycles a small queue many times past its capacity to
// exercise the absolute head/tail counters and slot reuse.
func TestQueueWraparound(t *testing.T) {
	p := newTestPool(t)
	s := connect(t, p)
	r := connect(t, p)
	sRoot, q, err := s.CreateQueue(r.ID(), 3)
	if err != nil {
		t.Fatal(err)
	}
	rRoot, err := r.OpenQueue(q)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 50; round++ {
		// Fill partially, drain fully, at varying occupancy.
		n := 1 + round%3
		var roots []layout.Addr
		for i := 0; i < n; i++ {
			root, block, err := s.Malloc(16, 0)
			if err != nil {
				t.Fatal(err)
			}
			s.StoreWord(block, 0, uint64(round*10+i))
			if err := s.Send(q, block); err != nil {
				t.Fatalf("round %d send %d: %v", round, i, err)
			}
			roots = append(roots, root)
		}
		for i := 0; i < n; i++ {
			root, block, err := r.Receive(q)
			if err != nil {
				t.Fatalf("round %d recv %d: %v", round, i, err)
			}
			if got := r.LoadWord(block, 0); got != uint64(round*10+i) {
				t.Fatalf("round %d: payload %d, want %d", round, got, round*10+i)
			}
			if _, err := r.ReleaseRoot(root); err != nil {
				t.Fatal(err)
			}
		}
		for _, root := range roots {
			if _, err := s.ReleaseRoot(root); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := s.ReleaseRoot(sRoot); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReleaseRoot(rRoot); err != nil {
		t.Fatal(err)
	}
	p.SweepQueueRegistry()
	res := mustValidate(t, p)
	if res.AllocatedObjects != 0 {
		t.Fatalf("%d objects leaked across wraparound", res.AllocatedObjects)
	}
}
