package shm

import (
	"fmt"

	"repro/internal/layout"
)

// Direct data access (paper §3.1 step 5/6: get_addr + loads/stores/CAS).
// Every accessor is bounds-checked against the object's data area (writing
// past an object would clobber the next block's header). Offsets are
// relative to the whole data area, which *includes* the embedded-reference
// words at its start: callers that declared embedded references must not
// overwrite those words through these raw accessors — use the embed
// operations (SetEmbed/ChangeEmbed/...) which keep the counts right.

// DataBytesOf returns the usable data size of an allocated block.
func (c *Client) DataBytesOf(block layout.Addr) int {
	m := layout.UnpackMeta(c.h.Load(block + layout.MetaOff))
	if !m.Allocated() {
		return 0
	}
	return int(m.BlockWords-layout.BlockHeaderWords) * layout.WordBytes
}

// checkDataRange panics on an access past the object's data area. Writing
// past an object would clobber the neighbouring block's header — precisely
// the corruption class this system exists to prevent — so, like a wild
// device access, it is treated as a bug, not a recoverable error.
func (c *Client) checkDataRange(block layout.Addr, off, n int) {
	m := layout.UnpackMeta(c.h.Load(block + layout.MetaOff))
	limit := int(m.BlockWords-layout.BlockHeaderWords) * layout.WordBytes
	if off < 0 || n < 0 || off+n > limit {
		panic(fmt.Sprintf("shm: data access [%d,%d) outside object of %d bytes at %#x",
			off, off+n, limit, block))
	}
}

// ReadData copies n=len(p) bytes from the object's data area at byte offset
// off. Accesses outside the object panic.
func (c *Client) ReadData(block layout.Addr, off int, p []byte) {
	c.checkDataRange(block, off, len(p))
	c.h.ReadBytes(block+layout.DataOff, off, p)
}

// WriteData writes p into the object's data area at byte offset off.
// Accesses outside the object panic.
func (c *Client) WriteData(block layout.Addr, off int, p []byte) {
	c.checkDataRange(block, off, len(p))
	c.h.WriteBytes(block+layout.DataOff, off, p)
}

// LoadWord atomically reads data word i of the object.
func (c *Client) LoadWord(block layout.Addr, i int) uint64 {
	c.checkDataRange(block, i*layout.WordBytes, layout.WordBytes)
	return c.h.Load(block + layout.DataOff + layout.Addr(i))
}

// StoreWord atomically writes data word i of the object.
func (c *Client) StoreWord(block layout.Addr, i int, v uint64) {
	c.checkDataRange(block, i*layout.WordBytes, layout.WordBytes)
	c.h.Store(block+layout.DataOff+layout.Addr(i), v)
}

// CASWord atomically compares-and-swaps data word i of the object —
// the RDSM primitive that shared-everything data structures build on.
func (c *Client) CASWord(block layout.Addr, i int, old, new uint64) bool {
	c.checkDataRange(block, i*layout.WordBytes, layout.WordBytes)
	return c.h.CAS(block+layout.DataOff+layout.Addr(i), old, new)
}

// HeaderOf reads an object's header (for validation and tests).
func (c *Client) HeaderOf(block layout.Addr) layout.Header {
	return layout.UnpackHeader(c.h.Load(block + layout.HeaderOff))
}

// MetaOf reads an object's meta word (for validation and tests).
func (c *Client) MetaOf(block layout.Addr) layout.Meta {
	return layout.UnpackMeta(c.h.Load(block + layout.MetaOff))
}
