package shm_test

import (
	"bytes"
	"testing"

	"repro/internal/kv"
	"repro/internal/layout"
	"repro/internal/shm"
)

// TestSnapshotSurvivesTotalClientLoss models the paper's Figure 1 setup:
// the CXL device has its own PSU, so its contents outlive every compute
// node. All clients vanish (machine failure), the device image is attached
// by a fresh incarnation, the stale clients are recovered, and data held by
// named roots is still there.
func TestSnapshotSurvivesTotalClientLoss(t *testing.T) {
	// --- first incarnation ---
	p1 := newTestPool(t)
	w := connect(t, p1)
	s1, err := kv.Create(w, 0, 64, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 100; k++ {
		if err := s1.Put(k, []byte{byte(k), 0x5A}); err != nil {
			t.Fatal(err)
		}
	}
	// Another client holds an unshared object that must NOT survive (it has
	// no named root; its owner is gone for good).
	loner := connect(t, p1)
	if _, _, err := loner.Malloc(64, 0); err != nil {
		t.Fatal(err)
	}

	// Total loss: nobody exits cleanly; we only have the device image.
	img := p1.Snapshot()

	// --- second incarnation ---
	p2, err := shm.AttachSnapshot(img)
	if err != nil {
		t.Fatal(err)
	}
	stale := p2.StaleClients()
	if len(stale) != 2 {
		t.Fatalf("stale clients = %v, want 2", stale)
	}
	recoverAll(t, p2, stale...)

	// The KV store survives via its named root; the loner's object is gone.
	res := mustValidate(t, p2)
	if res.AllocatedObjects != 101 { // index + 100 records
		t.Fatalf("allocated=%d, want 101", res.AllocatedObjects)
	}
	c2 := connect(t, p2)
	s2, err := kv.Open(c2, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	for k := uint64(0); k < 100; k++ {
		if _, err := s2.Get(k, buf); err != nil {
			t.Fatalf("get %d after reincarnation: %v", k, err)
		}
		if !bytes.Equal(buf[:2], []byte{byte(k), 0x5A}) {
			t.Fatalf("key %d corrupted: %v", k, buf[:2])
		}
	}
	// The new incarnation is fully operational: write, delete, drop.
	if err := s2.Put(7, []byte{7, 0xEE}); err != nil {
		t.Fatal(err)
	}
	if err := c2.UnpublishRoot(0); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	recoverNothing := mustValidate(t, p2)
	if recoverNothing.AllocatedObjects != 0 {
		t.Fatalf("%d objects left after teardown", recoverNothing.AllocatedObjects)
	}
}

func TestAttachSnapshotRejectsGarbage(t *testing.T) {
	if _, err := shm.AttachSnapshot(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if _, err := shm.AttachSnapshot(make([]uint64, 64)); err == nil {
		t.Fatal("unformatted snapshot accepted")
	}
	// Truncated image: right magic, wrong size.
	p := newTestPool(t)
	img := p.Snapshot()
	if _, err := shm.AttachSnapshot(img[:len(img)/2]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestSnapshotPreservesEraMatrix(t *testing.T) {
	p1 := newTestPool(t)
	c := connect(t, p1)
	for i := 0; i < 10; i++ {
		root, _, err := c.Malloc(32, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.ReleaseRoot(root); err != nil {
			t.Fatal(err)
		}
	}
	eraBefore := c.Era()
	img := p1.Snapshot()
	p2, err := shm.AttachSnapshot(img)
	if err != nil {
		t.Fatal(err)
	}
	recoverAll(t, p2, p2.StaleClients()...)
	// A new client reusing the slot must continue the era sequence, never
	// restart it (committed-era uniqueness across incarnations).
	c2 := connect(t, p2)
	if c2.ID() == c.ID() && c2.Era() <= eraBefore {
		t.Fatalf("era restarted: %d after %d", c2.Era(), eraBefore)
	}
	_ = layout.MaxEra
}
