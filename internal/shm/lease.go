package shm

import "repro/internal/layout"

// Byte leases: zero-copy access to an object's data area (paper §3.1,
// step 5/6 — after get_addr, clients touch data with plain loads and
// stores; the allocator API is only the control plane).
//
// A Lease wraps a []byte that aliases the device words backing the
// object's data area directly — no copy in, no copy out. ReadData and
// WriteData stay the portable path; a lease is the fast path for
// payload-sized transfers (the kv store's View/Update, bulk codecs) where
// the copy itself dominates the operation.
//
// Safety contract, enforced where possible and documented where not:
//
//   - The caller must keep the block live for the lease's whole lifetime:
//     hold a counted reference (a RootRef or an embedded reference), or
//     run under an equivalent protocol — the kv store's readers lease
//     inside a published hazard era, or validate-after-and-retry like its
//     Get. The lease itself is NOT a reference: it pins nothing, and a
//     concurrent free would hand the bytes to the next allocation. This
//     mirrors the hardware reality — get_addr hands out a raw pointer and
//     the reference count is what keeps it meaningful.
//   - At most one live lease per block per client (ErrLeaseAliased):
//     two mutable byte views of the same object invite unordered
//     overlapping writes. Cross-client aliasing is the data structure's
//     concern, exactly as it is for StoreWord.
//   - The window covers the object's data area only — the same bounds
//     ReadData/WriteData enforce — so lease writes can never reach the
//     block's header/meta or a neighbour. Like the raw accessors, the
//     data area includes any declared embedded-reference words at its
//     start; leaseholders must not scribble on those (use SetEmbed).
//   - Lease traffic bypasses the Handle: no latency model, no access
//     counters, no RAS fence check. That is faithful (data-plane loads
//     and stores do not traverse the allocator on real hardware, and a
//     fenced client's cached mappings stay readable) but it means the
//     access-budget tests count a lease as zero device words.
//
// Acquire costs zero device accesses in the steady state: bounds come
// from the block-meta shadow (refcache.go) and the byte window is an
// unsafe view of the backing array (cxl.DataWindow). Wrappers are
// recycled through a freelist so acquire/release allocates nothing after
// warm-up — the property the kv store's zero-alloc read path pins.

// Lease is a live zero-copy byte view of one object's data area.
// It is owned by the acquiring client and is not safe for concurrent use.
type Lease struct {
	c     *Client
	block layout.Addr
	buf   []byte
}

// Bytes returns the leased window. The slice aliases device memory: it is
// valid only until Release, and only while the caller's counted reference
// to the block exists.
func (l *Lease) Bytes() []byte { return l.buf }

// Block returns the leased object's address.
func (l *Lease) Block() layout.Addr { return l.block }

// AcquireLease returns a zero-copy byte lease over the object's data
// area. The caller must hold a counted reference to block and must call
// ReleaseLease before dropping it. Fails with ErrLeaseAliased if this
// client already holds a live lease on the block, ErrStaleReference if
// the block is not allocated, and ErrNoDirectAccess if the backend cannot
// alias its memory (fall back to ReadData/WriteData).
func (c *Client) AcquireLease(block layout.Addr) (*Lease, error) {
	if _, live := c.leases[block]; live {
		return nil, ErrLeaseAliased
	}
	m := c.metaOf(block)
	if !m.Allocated() {
		return nil, ErrStaleReference
	}
	nbytes := int(m.BlockWords-layout.BlockHeaderWords) * layout.WordBytes
	buf := c.pool.DataWindow(block+layout.DataOff, nbytes)
	if buf == nil {
		return nil, ErrNoDirectAccess
	}
	var l *Lease
	if n := len(c.leasePool); n > 0 {
		l = c.leasePool[n-1]
		c.leasePool = c.leasePool[:n-1]
	} else {
		l = new(Lease)
	}
	l.c, l.block, l.buf = c, block, buf
	c.leases[block] = l
	return l, nil
}

// ReleaseLease ends the lease and invalidates its byte window. Releasing
// a lease this client does not hold (double release, or another client's
// lease) is a no-op.
func (c *Client) ReleaseLease(l *Lease) {
	if l == nil || l.c != c || c.leases[l.block] != l {
		return
	}
	delete(c.leases, l.block)
	l.c, l.block, l.buf = nil, 0, nil
	c.leasePool = append(c.leasePool, l)
}

// Leased reports whether this client holds a live lease on block (tests,
// assertions).
func (c *Client) Leased(block layout.Addr) bool {
	_, ok := c.leases[block]
	return ok
}
