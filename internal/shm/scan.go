package shm

import (
	"time"

	"repro/internal/layout"
	"repro/internal/obs"
)

// The asynchronous segment-local scan (paper §5.3).
//
// A segment needs a scan when a client died between two specific
// instructions of the reclamation path. The scan walks one segment's pages
// — never the whole pool — and:
//
//   - reclaims "leaked" blocks: allocated, reference count zero, last
//     touched (lcid) by a client that is no longer alive — completing the
//     interrupted reclamation, including the DFS release of any embedded
//     references the dead client hadn't released yet (§5.4);
//   - re-inserts "lost" free blocks: marked free but on no free list,
//     where the recorded freeer is dead (its RAS fence guarantees its own
//     pending push can never land);
//   - sweeps leftover in_use RootRef slots of dead owners;
//   - reports whether the segment is quiet (no live or pending block), at
//     which point an abandoned segment is returned to the free pool.
//
// Concurrency contract: a segment is scanned either by its live owner (its
// own slow path) or — for segments whose owner is dead — by the recovery
// service. Those sets are disjoint; and because the recovery service may
// now run passes for independent dead clients concurrently (plus the
// monitor's maintenance scans), every dead-owner scan goes through the
// service's per-segment mutex (recovery.Service.scanSegment), so scans of
// one segment still never race.

// ScanReport summarizes one segment-local scan.
type ScanReport struct {
	// Reclaimed counts leaked blocks whose reclamation the scan completed.
	Reclaimed int
	// Relinked counts lost free blocks re-inserted into a free list.
	Relinked int
	// SweptRoots counts dead-owner RootRef slots released.
	SweptRoots int
	// Live counts blocks still holding references (or owned by live work).
	Live int
	// Pending counts blocks some live client is mid-operation on (they
	// resolve on their own; rescan later).
	Pending int
	// Quiet reports that nothing in the segment is allocated or pending.
	Quiet bool
	// Freed reports that the scan returned the segment to the free pool.
	Freed bool
	// FlagCleared reports that the POTENTIAL_LEAKING flag was cleared.
	FlagCleared bool
}

// ScanSegment runs the segment-local scan of seg, executed by client c.
// ownerDead must be true when the segment's owner is known dead (abandoned
// segments, or active segments being recovered); it enables the RootRef
// sweep and segment reclamation.
//
// The scan runs in rounds: reclaiming a leaked block cascades frees that
// may land on this segment's lists after the membership snapshot, so lost
// free blocks are only re-linked in a round that reclaimed nothing (with a
// fresh snapshot).
func (c *Client) ScanSegment(seg int, ownerDead bool) ScanReport {
	if c.ownedBySeg[seg] != nil {
		// Scanning a segment we own is a publication epoch — mandatory, not
		// just convenient: our own deferred frees are in the lost-block state
		// (freeer == us), so the relink round would re-insert them and a later
		// publication burst would then insert them a second time.
		c.flushPending(EpochScan)
	}
	t0 := time.Now()
	c.pool.obs.Trace(obs.Event{Type: obs.EvScanStarted, Client: c.cid, Segment: seg})
	total := c.scanSegment(seg, ownerDead)
	c.loc[obs.CtrScanPass]++
	c.loc[obs.CtrScanReclaimed] += uint64(total.Reclaimed)
	c.loc[obs.CtrScanRelinked] += uint64(total.Relinked)
	c.mx.Observe(obs.HistScanNS, time.Since(t0).Nanoseconds())
	c.publishMetrics()
	c.pool.obs.Trace(obs.Event{
		Type: obs.EvScanFinished, Client: c.cid, Segment: seg,
		A: uint64(total.Reclaimed), B: uint64(total.Relinked),
	})
	return total
}

func (c *Client) scanSegment(seg int, ownerDead bool) ScanReport {
	var total ScanReport
	for {
		r := c.scanSegmentOnce(seg, ownerDead, false)
		total.Reclaimed += r.Reclaimed
		total.SweptRoots += r.SweptRoots
		if r.Reclaimed == 0 && r.SweptRoots == 0 {
			break
		}
		if r.Freed {
			total.Quiet, total.Freed = true, true
			return total
		}
	}
	r := c.scanSegmentOnce(seg, ownerDead, true)
	total.Reclaimed += r.Reclaimed
	total.SweptRoots += r.SweptRoots
	total.Relinked = r.Relinked
	total.Live = r.Live
	total.Pending = r.Pending
	total.Quiet = r.Quiet
	total.Freed = r.Freed
	total.FlagCleared = r.FlagCleared
	return total
}

func (c *Client) scanSegmentOnce(seg int, ownerDead, relink bool) ScanReport {
	var r ScanReport
	a := c.geo.SegStateAddr(seg)
	w := c.h.Load(a)
	st := layout.UnpackSegState(w)
	switch st.State {
	case layout.SegHugeHead:
		if layout.UnpackMeta(c.h.Load(c.geo.SegmentBase(seg) + layout.MetaOff)).Quarantined() {
			// Quarantined by the repairing fsck: never reclaimed, never
			// released — counting it live pins the whole run in place.
			r.Live++
			return r
		}
		hdr := layout.UnpackHeader(c.h.Load(c.geo.SegmentBase(seg) + layout.HeaderOff))
		if hdr.RefCnt > 0 {
			r.Live++
			return r
		}
		// Zero refcount: either a completed-then-interrupted free or an
		// interrupted allocation. Safe to reclaim when the owner is dead
		// (nobody can be mid-operation) — the scan's caller guarantees that
		// or is the owner itself.
		m := layout.UnpackMeta(c.h.Load(c.geo.SegmentBase(seg) + layout.MetaOff))
		if m.BlockWords == 0 {
			// Header/meta never initialized (mid-allocation crash): free the
			// head and let orphan bodies be swept by the caller.
			c.releaseSegment(seg)
		} else {
			c.cascadeFree(c.geo.SegmentBase(seg))
		}
		r.Reclaimed++
		r.Quiet, r.Freed = true, true
		return r
	case layout.SegActive, layout.SegAbandoned:
		// fall through to the page walk
	default:
		r.Quiet = true
		return r
	}

	numPages := int(c.h.Load(c.geo.SegNextPageAddr(seg)))
	if numPages > c.geo.PagesPerSegment {
		numPages = c.geo.PagesPerSegment
	}

	// Membership pass: every block currently reachable from a free list.
	onList := make(map[layout.Addr]struct{})
	for p := 0; p < numPages; p++ {
		meta := c.geo.PageMetaAddr(seg, p)
		info := layout.UnpackPageMeta(c.h.Load(meta + pmInfo))
		if info.Kind == layout.PageKindQuarantined {
			continue
		}
		nextOff := layout.Addr(freeNextOff)
		if info.Kind == layout.PageKindRootRef {
			nextOff = layout.RootRefPptrOff
		}
		// Bounded walk: this scan is recovery machinery and may run over a
		// damaged pool, where a free chain can contain a cycle (e.g. a
		// corruption-induced double insert). A repeat visit or an impossible
		// chain length ends the walk — every reachable block's membership is
		// already recorded by then, and the repairing fsck owns diagnosing
		// the broken chain itself.
		steps := 0
		for b := c.h.Load(meta + pmFree); b != 0; b = c.h.Load(b + nextOff) {
			if _, seen := onList[b]; seen {
				break
			}
			if steps++; steps > int(c.geo.PageWords) {
				break
			}
			onList[b] = struct{}{}
		}
	}
	cfSteps := 0
	for b := c.h.Load(c.geo.SegClientFreeAddr(seg)); b != 0; b = c.h.Load(b + freeNextOff) {
		if _, seen := onList[b]; seen {
			break
		}
		if cfSteps++; cfSteps > numPages*int(c.geo.PageWords) {
			break
		}
		onList[b] = struct{}{}
	}

	for p := 0; p < numPages; p++ {
		metaA := c.geo.PageMetaAddr(seg, p)
		info := layout.UnpackPageMeta(c.h.Load(metaA + pmInfo))
		base := c.geo.PageBase(seg, p)
		scanPos := c.h.Load(metaA + pmScan)
		end := base + layout.Addr(c.geo.PageWords)
		if scanPos > end {
			scanPos = end
		}
		switch info.Kind {
		case layout.PageKindQuarantined:
			// Written off by the repairing fsck: contents untouchable, and the
			// page pins its segment (a released segment would recycle it).
			r.Live++
			continue
		case layout.PageKindRootRef:
			for slot := base; slot+layout.RootRefWords <= scanPos; slot += layout.RootRefWords {
				if _, free := onList[slot]; free {
					continue
				}
				if slot == c.inflightRoot {
					// Taken by this client's own in-progress malloc but not
					// yet claimed in_use (we got here via the slow path's
					// scanFlaggedOwned): re-linking it would hand the slot
					// out twice.
					r.Live++
					continue
				}
				inUse, _ := layout.UnpackRootRef(c.h.Load(slot))
				if inUse {
					if ownerDead {
						if c.SweepRootRefSlot(slot) {
							r.SweptRoots++
						}
					} else {
						r.Live++
					}
					continue
				}
				// Lost free slot: cleared but never pushed. Only the owner
				// loses slots (RootRef frees are owner-local), so a dead
				// owner's fence makes the re-push safe; a live owner is the
				// scanner itself.
				if relink {
					c.h.Store(slot+layout.RootRefPptrOff, c.h.Load(metaA+pmFree))
					c.storePMFree(seg, metaA, slot)
					onList[slot] = struct{}{}
					r.Relinked++
				}
			}
		case layout.PageKindNormal:
			if int(info.SizeClass) >= len(c.geo.Classes) {
				continue
			}
			bw := layout.Addr(c.geo.Classes[info.SizeClass].BlockWords)
			for b := base; b+bw <= scanPos; b += bw {
				if _, free := onList[b]; free {
					continue
				}
				m := layout.UnpackMeta(c.h.Load(b + layout.MetaOff))
				if m.Quarantined() {
					r.Live++ // sticky: pins the segment, never reclaimed
					continue
				}
				if m.Allocated() {
					hdr := layout.UnpackHeader(c.h.Load(b + layout.HeaderOff))
					if hdr.RefCnt > 0 {
						r.Live++
						continue
					}
					// Zero refcount, still allocated: leaked if the last
					// toucher is dead; otherwise a live client is between
					// its commit CAS and the end of its reclaim.
					if c.pool.ClientDeadOrRecovered(int(hdr.LCID)) {
						c.cascadeFree(b)
						r.Reclaimed++
					} else {
						r.Pending++
					}
				} else {
					// Free-marked block not on any list: lost mid-free. The
					// freeer's ID was recorded in the meta embed field.
					freeer := int(m.EmbedCnt)
					switch {
					case !relink:
						// Membership snapshot may be stale in a reclaiming
						// round; the relink round handles lost blocks.
					case freeer == c.cid || c.pool.ClientDeadOrRecovered(freeer):
						c.h.Store(b+freeNextOff, c.h.Load(metaA+pmFree))
						c.storePMFree(seg, metaA, b)
						onList[b] = struct{}{}
						r.Relinked++
					default:
						r.Pending++ // live freeer will complete the push
					}
				}
			}
		}
	}

	r.Quiet = r.Live == 0 && r.Pending == 0
	if !relink {
		return r
	}
	if r.Quiet && ownerDead {
		// Return the whole segment to the pool (resets flags and
		// client_free; versions defeat ABA on reuse).
		c.h.Store(c.geo.SegClientFreeAddr(seg), 0)
		c.releaseSegment(seg)
		r.Freed = true
		return r
	}
	if r.Pending == 0 && st.Flags&layout.SegFlagPotentialLeaking != 0 {
		// Everything interrupted has been resolved; clear the sticky flag so
		// the segment isn't rescanned forever. Live blocks are fine — the
		// flag only means "a reclaim may have been cut short here".
		cur := c.h.Load(a)
		cst := layout.UnpackSegState(cur)
		if cst.Flags&layout.SegFlagPotentialLeaking != 0 {
			cst.Flags &^= layout.SegFlagPotentialLeaking
			if c.h.CAS(a, cur, layout.PackSegState(cst)) {
				r.FlagCleared = true
			}
		}
	}
	return r
}

// scanFlaggedOwned runs the owner's periodic duty (§5.3): a segment-local
// scan of any owned segment carrying the POTENTIAL_LEAKING flag. Called
// from the allocation slow path, so its cost amortizes exactly as the paper
// argues ("doesn't need to be performed more than once per second").
func (c *Client) scanFlaggedOwned() {
	for _, os := range c.owned {
		st := layout.UnpackSegState(c.h.Load(c.geo.SegStateAddr(os.seg)))
		if int(st.CID) == c.cid && st.State == layout.SegActive &&
			st.Flags&layout.SegFlagPotentialLeaking != 0 {
			c.ScanSegment(os.seg, false)
		}
	}
}

// SweepRootRefSlot releases whatever an in_use RootRef slot of a dead
// client still references, applying the §5.1 in-flight allocation checks:
//
//   - pptr == 0: the allocation never linked (or a release already
//     unlinked); just clear the slot.
//   - pptr equals the free pointer of the target's page (free-list head or
//     bump frontier): the allocation never advanced past the block; the
//     block is still free, so only the slot is cleared.
//   - target header refcount == 0: the allocation never initialized the
//     count; the block is reclaimed by the segment scan, clear the slot.
//   - otherwise: a normal era-based release of the reference.
//
// Returns true if the slot was in use. Must run after the dead client's
// redo entry has been replayed (recovery does; the segment scan only sees
// abandoned segments, which recovery produces after replay).
func (c *Client) SweepRootRefSlot(slot layout.Addr) bool {
	inUse, _ := layout.UnpackRootRef(c.h.Load(slot))
	if !inUse {
		return false
	}
	c.loc[obs.CtrRootSwept]++
	pptr := c.h.Load(slot + layout.RootRefPptrOff)
	if pptr == 0 {
		c.h.Store(slot, 0)
		return true
	}
	tseg := c.geo.SegmentIndexOf(pptr)
	if tseg >= 0 {
		tst := layout.UnpackSegState(c.h.Load(c.geo.SegStateAddr(tseg)))
		if tst.State == layout.SegActive || tst.State == layout.SegAbandoned {
			if tp := c.geo.PageIndexOf(tseg, pptr); tp >= 0 {
				tmeta := c.geo.PageMetaAddr(tseg, tp)
				if c.h.Load(tmeta+pmFree) == pptr || c.h.Load(tmeta+pmScan) == pptr {
					// In-flight allocation: the block never left the free
					// pointer, so releasing would double-free (§5.1).
					c.h.Store(slot, 0)
					return true
				}
			}
		}
	}
	hdr := layout.UnpackHeader(c.h.Load(pptr + layout.HeaderOff))
	if hdr.RefCnt == 0 {
		// Initialization never completed (or the object is already being
		// reclaimed); the segment scan finishes the block.
		c.h.Store(slot, 0)
		return true
	}
	if _, err := c.ReleaseReference(slot+layout.RootRefPptrOff, pptr); err != nil {
		return true
	}
	c.h.Store(slot, 0)
	return true
}
