// Package shm implements CXL-SHM, the paper's partial-failure-resilient
// memory management system, on top of the simulated CXL device.
//
// It contains the mimalloc-style shared-pool allocator (arena → segments →
// size-class pages → blocks, paper §3.3 and §5.1), the era-based
// non-blocking reference count maintenance algorithm (§4.3), RootRef
// bookkeeping, embedded references (§5.4), the reclamation protocol with
// POTENTIAL_LEAKING segments (§5.3), and the SPSC reference-transfer queues
// (§5.2). The asynchronous monitor and recovery service live in
// internal/recovery; the user-facing smart-pointer API in the root cxlshm
// package.
package shm

import "errors"

var (
	// ErrOutOfMemory is returned when no segment can satisfy an allocation.
	ErrOutOfMemory = errors.New("shm: shared pool exhausted")
	// ErrTooManyClients is returned by Connect when every client slot is taken.
	ErrTooManyClients = errors.New("shm: no free client slot")
	// ErrRefCountOverflow is returned when an object's reference count would
	// exceed the 16-bit header field.
	ErrRefCountOverflow = errors.New("shm: reference count overflow")
	// ErrStaleReference is returned when a transaction observes an object
	// whose reference count is already zero (the caller's reference is not
	// actually counted — a user bug the system detects instead of corrupting).
	ErrStaleReference = errors.New("shm: reference to object with zero reference count")
	// ErrFenced is returned when the calling client has been RAS-fenced
	// (declared failed); its writes no longer reach the pool.
	ErrFenced = errors.New("shm: client is fenced (declared failed)")
	// ErrTooLarge is returned for allocations exceeding the pool's huge
	// object limit.
	ErrTooLarge = errors.New("shm: allocation exceeds maximum object size")
	// ErrQueueFull is returned by Send on a full transfer queue.
	ErrQueueFull = errors.New("shm: transfer queue full")
	// ErrQueueEmpty is returned by Receive on an empty transfer queue.
	ErrQueueEmpty = errors.New("shm: transfer queue empty")
	// ErrNoQueueSlot is returned when the queue registry is full.
	ErrNoQueueSlot = errors.New("shm: queue registry full")
	// ErrBadEmbedIndex is returned for embedded-reference operations with an
	// index outside the object's declared embedded-reference area.
	ErrBadEmbedIndex = errors.New("shm: embedded reference index out of range")
	// ErrLeaseAliased is returned by AcquireLease when this client already
	// holds a live lease over the block: two mutable byte views of the same
	// object would alias each other with no ordering between their writes.
	ErrLeaseAliased = errors.New("shm: block already leased")
	// ErrNoDirectAccess is returned by AcquireLease when the backing memory
	// cannot hand out zero-copy byte windows (non-addressable backend or a
	// big-endian host); callers fall back to ReadData/WriteData.
	ErrNoDirectAccess = errors.New("shm: backend does not support direct byte access")
)
