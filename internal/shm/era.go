package shm

import (
	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/obs"
)

// The era-based non-blocking reference count maintenance algorithm
// (paper §4.3, Figure 4).
//
// A transaction has two phases: ModifyRefCnt — a single CAS on the object
// header {lcid, lera, ref_cnt}, not idempotent, never redone, the commit
// point — and ModifyRef — writing the reference word, idempotent under the
// single-writer-multi-reader rule, replayed by recovery when the client dies
// between the phases. The era matrix (each client's row in its
// ClientLocalState) provides the happens-before evidence recovery needs:
//
//	Condition 1: the last-touched object's header still carries
//	             (lcid==i, lera==Era[i][i]).
//	Condition 2: Era[i][i] <= max over j!=i of Era[j][i].
//
// Both conditions rely on every published (cid, era) pair being unique to a
// single commit, which is why allocation's header init and every commit CAS
// are followed by an era bump. The redo entry is NOT cleared when the
// transaction closes: the closing bump advances Era[cid][cid] past the
// entry's logged era, and recovery treats an entry whose era the client has
// moved past as closed (redo.go) — saving one device store per transaction.

// AttachReference attaches the reference at ref to the object at refed:
// refed.ref_cnt++ then *ref = refed (Figure 4(c) verbatim). ref must be a
// reference word owned (written) solely by this client: a RootRef pptr, an
// owned queue slot, or an embedded reference under the single-writer rule.
func (c *Client) AttachReference(ref, refed layout.Addr) error {
	// The first CAS attempt is seeded from the block shadow when this client
	// allocated refed (refcache.go): a stale guess cannot commit (the commit
	// is a full-word compare) and simply falls back to a device load.
	savedW, guessed := c.guessHeader(refed)
	for {
		saved := layout.UnpackHeader(savedW)
		if saved.RefCnt == 0 || saved.RefCnt == layout.MaxRefCount {
			if guessed {
				savedW, guessed = c.h.Load(refed+layout.HeaderOff), false
				continue
			}
			if saved.RefCnt == 0 {
				return ErrStaleReference
			}
			return ErrRefCountOverflow
		}
		c.observeEra(saved.LCID, saved.LEra) // lines 4-6
		c.logRedo(RedoEntry{
			Op: OpAttach, Era: c.era, Ref: ref, Refed: refed, SavedCnt: saved.RefCnt,
		})
		c.hit(faultinject.AfterRedoLog)
		newW := layout.PackHeader(layout.Header{
			LCID: uint16(c.cid), LEra: c.era, RefCnt: saved.RefCnt + 1,
		})
		c.loc[obs.CtrCASAttempt]++
		if c.h.CAS(refed+layout.HeaderOff, savedW, newW) {
			c.noteHeader(refed, newW)
			break
		}
		c.loc[obs.CtrCASRetry]++
		if c.h.Fenced() {
			return ErrFenced
		}
		savedW, guessed = c.h.Load(refed+layout.HeaderOff), false
	}
	c.hit(faultinject.AfterCommitCAS)
	c.h.Store(ref, refed) // ModifyRef
	c.noteRootTarget(ref, refed)
	c.hit(faultinject.AfterModifyRef)
	c.bumpEra() // closes the transaction; the redo entry is now stale by era
	c.hit(faultinject.AfterEraBump)
	return nil
}

// ReleaseReference releases the reference at ref to the object at refed:
// refed.ref_cnt-- then *ref = NULL, reclaiming the object if the count
// reached zero (§5.3). Reports whether this release freed the object.
func (c *Client) ReleaseReference(ref, refed layout.Addr) (freed bool, err error) {
	newCnt, pending, err := c.releaseTxn(ref, refed)
	if err != nil {
		return false, err
	}
	if pending {
		c.reclaim(refed)
	}
	return newCnt == 0, nil
}

// releaseTxn runs the decrement transaction and returns the new count.
//
// When the count reaches zero and the object is plain (no embedded
// references), it is reclaimed inline before the transaction closes: a crash
// mid-reclaim leaves the redo entry valid, and recovery — seeing a release
// that hit zero — flags the segment POTENTIAL_LEAKING instead of redoing the
// non-idempotent free (§5.3). When the object carries embedded references,
// the reclaim needs further transactions, so this transaction flags the
// segment itself before closing and the caller runs the cascade afterwards.
func (c *Client) releaseTxn(ref, refed layout.Addr) (newCnt uint16, pendingReclaim bool, err error) {
	return c.releaseTxnMode(ref, refed, false, false)
}

// releaseRetire is releaseTxn with deferred reclamation: a zero count flags
// the segment and reports pending, but nothing is freed (hazard.go parks
// the node instead).
func (c *Client) releaseRetire(ref, refed layout.Addr) (newCnt uint16, pendingReclaim bool, err error) {
	return c.releaseTxnMode(ref, refed, true, false)
}

func (c *Client) releaseTxnMode(ref, refed layout.Addr, deferReclaim, elideModify bool) (newCnt uint16, pendingReclaim bool, err error) {
	if c.h.Fenced() {
		return 0, false, ErrFenced
	}
	// First CAS attempt seeded from the block shadow (see AttachReference).
	savedW, guessed := c.guessHeader(refed)
	for {
		saved := layout.UnpackHeader(savedW)
		if saved.RefCnt == 0 {
			if guessed {
				savedW, guessed = c.h.Load(refed+layout.HeaderOff), false
				continue
			}
			return 0, false, ErrStaleReference
		}
		c.observeEra(saved.LCID, saved.LEra)
		c.logRedo(RedoEntry{
			Op: OpRelease, Era: c.era, Ref: ref, Refed: refed, SavedCnt: saved.RefCnt,
		})
		c.hit(faultinject.AfterRedoLog)
		newCnt = saved.RefCnt - 1
		newW := layout.PackHeader(layout.Header{
			LCID: uint16(c.cid), LEra: c.era, RefCnt: newCnt,
		})
		c.loc[obs.CtrCASAttempt]++
		if c.h.CAS(refed+layout.HeaderOff, savedW, newW) {
			c.noteHeader(refed, newW)
			break
		}
		c.loc[obs.CtrCASRetry]++
		if c.h.Fenced() {
			return 0, false, ErrFenced
		}
		savedW, guessed = c.h.Load(refed+layout.HeaderOff), false
	}
	c.hit(faultinject.AfterCommitCAS)
	if newCnt != 0 {
		c.h.Store(ref, 0) // ModifyRef
		c.noteRootTarget(ref, 0)
		c.hit(faultinject.AfterModifyRef)
		c.bumpEra() // closes the transaction; the redo entry is now stale by era
		c.hit(faultinject.AfterEraBump)
		return newCnt, false, nil
	}
	m := c.metaOf(refed)
	// ModifyRef elision (ReleaseRoot only): when the count hit zero, the
	// reference is a RootRef pptr the caller is about to free, and the block
	// reclaims into the owner's pending tier, the pptr store is dead — the
	// slot's word0←0 store makes it unreachable, and the publication burst
	// reuses the word as the free-chain next. Crash-wise nothing is new: a
	// crash before the slot clear leaves an in_use slot over a refcount-zero
	// block, which SweepRootRefSlot already resolves by clearing the slot,
	// and recovery's redo replay performs the elided store itself.
	elide := elideModify && !deferReclaim && m.EmbedCnt == 0 && m.Flags&layout.MetaHuge == 0
	if elide {
		seg := c.geo.SegmentIndexOf(refed)
		elide = seg >= 0 && c.ownedPageOf(seg, refed) != nil
	}
	if !elide {
		c.h.Store(ref, 0) // ModifyRef
		c.noteRootTarget(ref, 0)
	}
	c.hit(faultinject.AfterModifyRef)
	c.hit(faultinject.BeforeReclaim)
	switch {
	case deferReclaim:
		// Hazard-era retire: flag for the scan (covers our death) and
		// let the caller park the node; nothing is freed yet.
		c.flagSegmentLeaking(refed)
		pendingReclaim = true
	case m.EmbedCnt == 0:
		// Plain object: reclaim inside the transaction window. A crash
		// here is covered by the still-valid redo entry (recovery flags
		// the segment, §5.3).
		c.reclaimRaw(refed, m)
	default:
		// Embed-carrying object: the cascade needs its own transactions,
		// so flag the segment before this transaction closes; the caller
		// must run the cascade once we return.
		c.flagSegmentLeaking(refed)
		pendingReclaim = true
	}
	c.bumpEra() // closes the transaction; the redo entry is now stale by era
	c.hit(faultinject.AfterEraBump)
	return newCnt, pendingReclaim, nil
}

// moveRef transfers the counted reference held by the reference word at src
// to the reference word at dst: *dst = target, then *src = NULL, with
// target's reference count untouched — the count keeps counting the same one
// reference throughout. This fuses the attach+release pair of a queue
// receive into a single transaction with no ModifyRefCnt phase at all: no
// header load, no CAS, no saved count. Both stores are idempotent ModifyRefs,
// so recovery simply re-executes the whole move from the redo entry while
// the era gate holds (Era[cid][cid] still at the logged era).
//
// Liveness of target needs no header check: the caller owns the reference at
// src, and a word-owned reference keeps the count above zero until its owner
// clears it — exactly what this transaction does last.
//
// Because a move never publishes (cid, era) into any header, it does not
// consume era uniqueness: a caller batching moves may run several under one
// era and bump once at the end (closeTxn=false). The redo area then holds
// only the latest move, which is the only one that can be mid-flight — each
// earlier move completed both stores before the next was logged.
//
// The fault points keep the queue-sweep names: AfterReceiveAttach is the
// window where dst and src both reference target (count 1, two words — the
// replay re-executing both stores collapses it), AfterReceiveRelease where
// the move is done but not closed.
func (c *Client) moveRef(dst, src, target layout.Addr, closeTxn bool) error {
	if c.h.Fenced() {
		return ErrFenced
	}
	c.logRedo(RedoEntry{Op: OpMove, Era: c.era, Ref: dst, Refed: target, Refed2: src})
	c.hit(faultinject.AfterRedoLog)
	c.h.Store(dst, target) // ModifyRef (destination)
	c.noteRootTarget(dst, target)
	c.hit(faultinject.AfterReceiveAttach)
	c.h.Store(src, 0) // ModifyRef (source)
	c.hit(faultinject.AfterReceiveRelease)
	if closeTxn {
		c.bumpEra()
		c.hit(faultinject.AfterEraBump)
	}
	return nil
}

// ChangeReference atomically re-points the embedded reference at ref from
// object a to object b (§5.4): decrement a via CAS, bump the era, increment
// b via CAS, write the reference, bump the era again. The double bump lets
// recovery tell which of the two non-idempotent CASes committed.
func (c *Client) ChangeReference(ref, a, b layout.Addr) error {
	return c.changeTxn(ref, a, b, false)
}

func (c *Client) changeTxn(ref, a, b layout.Addr, deferReclaim bool) error {
	if c.h.Fenced() {
		return ErrFenced
	}
	// The caller must hold a counted reference to b for the duration of the
	// change (§5.2's rule: hold a reference until the remote attachment
	// exists). Verify before phase 1 so a user error is rejected before the
	// first — unrollable — CAS commits.
	if pre := layout.UnpackHeader(c.h.Load(b + layout.HeaderOff)); pre.RefCnt == 0 {
		return ErrStaleReference
	}
	// Phase 1: decrement a.
	var newCntA uint16
	for {
		savedW := c.h.Load(a + layout.HeaderOff)
		saved := layout.UnpackHeader(savedW)
		if saved.RefCnt == 0 {
			return ErrStaleReference
		}
		c.observeEra(saved.LCID, saved.LEra)
		c.logRedo(RedoEntry{
			Op: OpChange, Era: c.era, Ref: ref, Refed: a, SavedCnt: saved.RefCnt, Refed2: b,
		})
		c.hit(faultinject.AfterRedoLog)
		newCntA = saved.RefCnt - 1
		newW := layout.PackHeader(layout.Header{
			LCID: uint16(c.cid), LEra: c.era, RefCnt: newCntA,
		})
		c.loc[obs.CtrCASAttempt]++
		if c.h.CAS(a+layout.HeaderOff, savedW, newW) {
			c.noteHeader(a, newW)
			break
		}
		c.loc[obs.CtrCASRetry]++
		if c.h.Fenced() {
			return ErrFenced
		}
	}
	c.hit(faultinject.AfterChangeDecCAS)
	c.bumpEra()
	c.hit(faultinject.AfterChangeFirstEra)

	// Phase 2: increment b.
	for {
		savedW := c.h.Load(b + layout.HeaderOff)
		saved := layout.UnpackHeader(savedW)
		if saved.RefCnt == 0 {
			return ErrStaleReference
		}
		if saved.RefCnt == layout.MaxRefCount {
			return ErrRefCountOverflow
		}
		c.observeEra(saved.LCID, saved.LEra)
		c.relogSavedCnt2(saved.RefCnt)
		newW := layout.PackHeader(layout.Header{
			LCID: uint16(c.cid), LEra: c.era, RefCnt: saved.RefCnt + 1,
		})
		c.loc[obs.CtrCASAttempt]++
		if c.h.CAS(b+layout.HeaderOff, savedW, newW) {
			c.noteHeader(b, newW)
			break
		}
		c.loc[obs.CtrCASRetry]++
		if c.h.Fenced() {
			return ErrFenced
		}
	}
	c.hit(faultinject.AfterChangeIncCAS)
	c.h.Store(ref, b) // ModifyRef
	c.noteRootTarget(ref, b)
	c.hit(faultinject.AfterChangeModify)
	c.bumpEra()
	if newCntA == 0 {
		// Flag synchronously after the second bump: recovery era-gates a
		// change entry's flag replay to within two bumps of the logged era,
		// so by the time a later transaction could overwrite this entry the
		// flag must already be on the device.
		c.flagSegmentLeaking(a)
		if deferReclaim {
			c.park(a)
		} else {
			c.reclaim(a)
		}
	}
	return nil
}

// CloneRoot increments a RootRef's thread-local count (cloning a CXLRef in
// the same thread, §5.2): no atomic instruction, no flush, no era
// transaction — the slot is single-writer, so the shadow (when present)
// supplies the current count without a device load.
func (c *Client) CloneRoot(root layout.Addr) {
	if rs := c.roots[root]; rs != nil {
		rs.cnt++
		c.h.Store(root, layout.PackRootRef(true, rs.cnt))
		return
	}
	inUse, cnt := layout.UnpackRootRef(c.h.Load(root))
	if !inUse {
		panic("shm: CloneRoot on a free RootRef slot")
	}
	c.h.Store(root, layout.PackRootRef(true, cnt+1))
}

// ReleaseRoot decrements a RootRef's thread-local count; when it reaches
// zero the RootRef's counted reference on the object is released via the
// era transaction and the slot is freed. Reports whether the underlying
// object was freed. The count and target come from the root shadow when
// this client claimed the slot (the common case — RootRefs are
// owner-local), falling back to device loads for slots inherited from a
// previous incarnation.
func (c *Client) ReleaseRoot(root layout.Addr) (objectFreed bool, err error) {
	rs := c.roots[root]
	var cnt uint32
	var target layout.Addr
	if rs != nil {
		cnt, target = rs.cnt, rs.target
	} else {
		inUse, dcnt := layout.UnpackRootRef(c.h.Load(root))
		if !inUse {
			return false, ErrStaleReference
		}
		cnt, target = dcnt, c.h.Load(root+layout.RootRefPptrOff)
	}
	if cnt == 0 {
		return false, ErrStaleReference
	}
	if cnt > 1 {
		cnt--
		c.h.Store(root, layout.PackRootRef(true, cnt))
		if rs != nil {
			rs.cnt = cnt
		}
		return false, nil
	}
	if target != 0 {
		// The pptr store of the release is elided when the block reclaims
		// into the pending tier (releaseTxnMode): the slot clear right below
		// makes the word unreachable before anything can read it.
		newCnt, pending, rerr := c.releaseTxnMode(root+layout.RootRefPptrOff, target, false, true)
		if rerr != nil {
			return false, rerr
		}
		if pending {
			c.reclaim(target)
		}
		objectFreed = newCnt == 0
	}
	c.freeRootRefSlot(root)
	return objectFreed, nil
}

// AttachRoot takes a new counted reference to an existing object: it
// allocates a RootRef and attaches it with the standard era transaction.
// This is the core of cxl_receive_from and of any cross-client sharing.
func (c *Client) AttachRoot(block layout.Addr) (root layout.Addr, err error) {
	root, err = c.allocRootRef()
	if err != nil {
		return 0, err
	}
	if err := c.AttachReference(root+layout.RootRefPptrOff, block); err != nil {
		c.abortRootRef(root)
		return 0, err
	}
	return root, nil
}

// RootTarget reads the object address a RootRef points to (shadowed for
// slots this client claimed).
func (c *Client) RootTarget(root layout.Addr) layout.Addr {
	if rs := c.roots[root]; rs != nil {
		return rs.target
	}
	return c.h.Load(root + layout.RootRefPptrOff)
}

// --- embedded references (§5.4) ---

// embedAddr returns the address of embedded reference idx of block.
func (c *Client) embedAddr(block layout.Addr, idx int) (layout.Addr, error) {
	m := layout.UnpackMeta(c.h.Load(block + layout.MetaOff))
	if idx < 0 || idx >= int(m.EmbedCnt) {
		return 0, ErrBadEmbedIndex
	}
	return block + layout.DataOff + layout.Addr(idx), nil
}

// LoadEmbed reads embedded reference idx of block (0 if unset).
func (c *Client) LoadEmbed(block layout.Addr, idx int) (layout.Addr, error) {
	ea, err := c.embedAddr(block, idx)
	if err != nil {
		return 0, err
	}
	return c.h.Load(ea), nil
}

// SetEmbed links embedded reference idx of block to target (must currently
// be unset; use ChangeEmbed to re-point). Single-writer: only one client may
// ever modify a given embedded reference.
func (c *Client) SetEmbed(block layout.Addr, idx int, target layout.Addr) error {
	ea, err := c.embedAddr(block, idx)
	if err != nil {
		return err
	}
	if c.h.Load(ea) != 0 {
		return ErrBadEmbedIndex
	}
	return c.AttachReference(ea, target)
}

// ClearEmbed unlinks embedded reference idx of block, releasing the target.
func (c *Client) ClearEmbed(block layout.Addr, idx int) error {
	ea, err := c.embedAddr(block, idx)
	if err != nil {
		return err
	}
	t := c.h.Load(ea)
	if t == 0 {
		return nil
	}
	_, err = c.ReleaseReference(ea, t)
	return err
}

// ChangeEmbed atomically re-points embedded reference idx of block to
// target (§5.4's change function).
func (c *Client) ChangeEmbed(block layout.Addr, idx int, target layout.Addr) error {
	ea, err := c.embedAddr(block, idx)
	if err != nil {
		return err
	}
	cur := c.h.Load(ea)
	if cur == 0 {
		return c.AttachReference(ea, target)
	}
	if cur == target {
		return nil
	}
	return c.ChangeReference(ea, cur, target)
}
