package shm

import (
	"repro/internal/cxl"
	"repro/internal/faultinject"
	"repro/internal/layout"
)

// Client is one participant of the RDSM: a thread, process, or machine with
// its own failure domain. A Client is single-goroutine (the paper's model is
// one client per thread; CXLRef is explicitly not thread-safe, §3.1); the
// Pool underneath is fully concurrent.
type Client struct {
	pool *Pool
	geo  *layout.Geometry
	h    *cxl.Handle
	cid  int

	// era is the cached value of Era[cid][cid] (the device word is the
	// authoritative copy, written through on every bump).
	era uint32
	// eraRow caches Era[cid][j] for j != cid, avoiding a device load per
	// observation; also written through.
	eraRow []uint32

	// classPages[c] lists this client's pages of size class c that may have
	// free blocks. rootPages lists its RootRef pages. Local caches only:
	// recovery reconstructs everything from segment metadata.
	classPages [][]pageRef
	rootPages  []pageRef
	// segments lists owned segment indices (local cache).
	segments []int

	// fi is the crash injector (nil in production).
	fi *faultinject.Injector

	// breakdown, when non-nil, accumulates the Figure 7 cost split.
	breakdown *Breakdown

	// retiredList parks unlinked nodes awaiting hazard-era reclamation
	// (hazard.go). Local state: a crash abandons it, and the segment-local
	// scan reclaims the parked (refcount-zero, flagged) nodes instead.
	retiredList []retired

	closed bool
}

// pageRef locates one page.
type pageRef struct {
	seg, page int
}

// Connect claims a client slot and joins the pool. Slots of cleanly
// recovered clients are reused after free slots are exhausted; the new
// incarnation continues the slot's era sequence so committed-era uniqueness
// is preserved across reuse.
func (p *Pool) Connect() (*Client, error) {
	geo := p.geo
	claim := func(want uint64) int {
		for cid := 1; cid <= geo.MaxClients; cid++ {
			a := geo.ClientStatusAddr(cid)
			if p.dev.Load(a) == want && p.dev.CAS(a, want, layout.ClientAlive) {
				return cid
			}
		}
		return 0
	}
	cid := claim(layout.ClientSlotFree)
	if cid == 0 {
		cid = claim(layout.ClientRecovered)
	}
	if cid == 0 {
		return nil, ErrTooManyClients
	}
	p.dev.UnfenceClient(cid)
	c := &Client{
		pool:       p,
		geo:        geo,
		h:          p.dev.Open(cid),
		cid:        cid,
		eraRow:     make([]uint32, geo.MaxClients+1),
		classPages: make([][]pageRef, len(geo.Classes)),
	}
	// Continue the era sequence of the previous incarnation; start at 1 on a
	// fresh slot (era 0 never appears in a committed header, so the all-zero
	// matrix can't satisfy recovery's Condition 2 spuriously).
	prev := uint32(p.dev.Load(geo.EraAddr(cid, cid)))
	c.era = prev + 1
	c.h.Store(geo.EraAddr(cid, cid), uint64(c.era))
	for j := 1; j <= geo.MaxClients; j++ {
		if j != cid {
			c.eraRow[j] = uint32(p.dev.Load(geo.EraAddr(cid, j)))
		}
	}
	c.Heartbeat()
	return c, nil
}

// ID returns the client's ID (1-based).
func (c *Client) ID() int { return c.cid }

// Pool returns the pool this client is connected to.
func (c *Client) Pool() *Pool { return c.pool }

// Era returns the client's current era (Era[cid][cid]).
func (c *Client) Era() uint32 { return c.era }

// SetInjector arms a crash injector on this client (tests only).
func (c *Client) SetInjector(fi *faultinject.Injector) { c.fi = fi }

// SetBreakdown attaches a Figure 7 cost accumulator.
func (c *Client) SetBreakdown(b *Breakdown) { c.breakdown = b }

// Heartbeat advances the client's liveness counter; the monitor declares
// clients dead when the counter stops advancing.
func (c *Client) Heartbeat() {
	a := c.geo.ClientHeartbeatAddr(c.cid)
	c.h.Store(a, c.h.Load(a)+1)
}

// Fenced reports whether this client has been RAS-fenced.
func (c *Client) Fenced() bool { return c.h.Fenced() }

// Close marks the client dead so the recovery service reclaims everything
// it still possesses. A client that released all its references beforehand
// leaves nothing to reclaim; one that exits holding references relies on
// recovery, exactly like a crashed client (the paper draws no distinction:
// clients "are free to join, exit, and even fail", §1.2).
func (c *Client) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.pool.MarkClientDead(c.cid)
}

// Crash simulates an abrupt client death: identical to Close but named for
// test readability.
func (c *Client) Crash() error { return c.Close() }

// --- era matrix bookkeeping ---

// observeEra implements lines 4–6 of Figure 4(c): record the largest era of
// lcid this client has seen. Write-through with a local cache; row cid is
// single-writer (this client), so the cache is exact.
func (c *Client) observeEra(lcid uint16, lera uint32) {
	j := int(lcid)
	if j <= 0 || j > c.geo.MaxClients || j == c.cid {
		return
	}
	if c.eraRow[j] < lera {
		c.eraRow[j] = lera
		c.h.Store(c.geo.EraAddr(c.cid, j), uint64(lera))
	}
}

// bumpEra increments Era[cid][cid] after a committed header publication
// (line 12 of Figure 4(c); also after allocation's header init so every
// published (cid, era) pair is unique to one commit — recovery's Conditions
// 1 and 2 rely on that uniqueness).
func (c *Client) bumpEra() {
	c.era++
	c.h.Store(c.geo.EraAddr(c.cid, c.cid), uint64(c.era))
}

// hit triggers the crash injector at a named point.
func (c *Client) hit(p faultinject.Point) { c.fi.Hit(p) }
