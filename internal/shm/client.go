package shm

import (
	"os"
	"time"

	"repro/internal/cxl"
	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/obs"
)

// Client is one participant of the RDSM: a thread, process, or machine with
// its own failure domain. A Client is single-goroutine (the paper's model is
// one client per thread; CXLRef is explicitly not thread-safe, §3.1); the
// Pool underneath is fully concurrent.
type Client struct {
	pool *Pool
	geo  *layout.Geometry
	h    *cxl.Handle
	cid  int

	// gen is the slot lease generation stamped on this incarnation at
	// Connect (odd while leased; see slotlease.go).
	gen uint64

	// era is the cached value of Era[cid][cid] (the device word is the
	// authoritative copy, written through on every bump).
	era uint32
	// eraRow caches Era[cid][j] for j != cid, avoiding a device load per
	// observation; also written through. Populated lazily: eraKnown[j]
	// says whether entry j was seeded from the device yet, so Connect
	// costs O(1) device loads instead of M and a client only ever touches
	// the columns of peers it actually interacts with.
	eraRow   []uint32
	eraKnown []bool

	// classPages[c] lists this client's pages of size class c that may have
	// free blocks. rootPages lists its RootRef pages. Local caches only:
	// recovery reconstructs everything from segment metadata (shadow.go).
	classPages [][]*ownedPage
	rootPages  []*ownedPage
	// owned lists the shadows of owned segments in claim order; ownedBySeg
	// indexes them for the free path's ownership test (no device load).
	owned      []*ownedSeg
	ownedBySeg map[int]*ownedSeg
	// segCursor/hugeCursor stripe claim scans across clients so they do not
	// all CAS-contend on the lowest free segments (alloc.go).
	segCursor  int
	hugeCursor int
	// queues caches per-queue geometry and Vyukov-style head/tail indices
	// (queue.go); device words stay authoritative, rebuilt on reconnect.
	queues map[layout.Addr]*queueShadow

	// pendPages lists owned pages carrying deferred (unpublished) frees or
	// Used-counter deltas; pendCount totals the unpublished frees across
	// them (bounded by pendCap, shadow.go).
	pendPages []*ownedPage
	pendCount int
	// inflightRoot is the RootRef slot taken by the current malloc but not
	// yet claimed in_use (alloc.go). The window spans findBlock, which can
	// scan this client's own segments — the scan must count the slot live,
	// not re-link it as lost (scan.go).
	inflightRoot layout.Addr
	// roots/blocks shadow this client's RootRef slots and allocated blocks,
	// eliding the free path's device loads (refcache.go).
	roots  map[layout.Addr]*rootShadow
	blocks map[layout.Addr]*blockShadow

	// leases tracks this client's live byte leases by block, enforcing the
	// no-aliasing rule; leasePool recycles Lease wrappers so the steady-state
	// acquire/release cycle allocates nothing (lease.go).
	leases    map[layout.Addr]*Lease
	leasePool []*Lease

	// epochTrigger/epochSeq record the most recent publication epoch
	// (shadow.go): what fired it and how many have run. Diagnostics only —
	// the crash sweep names the trigger in its repro lines.
	epochTrigger string
	epochSeq     uint64

	// fi is the crash injector (nil in production).
	fi *faultinject.Injector

	// mx is this client's private metrics shard (pool.obs, shard cid):
	// single-writer, cache-line-isolated. Hot paths do not even pay its
	// atomics: they bump loc (plain, owner-only memory) and the running
	// totals are published into the shard with atomic stores every
	// pubEvery era bumps, on Heartbeat, on Close, and at scan/recovery
	// boundaries. A crashed client's unpublished tail (< pubEvery events)
	// is lost with it — metrics for the dead are best-effort; the recovery
	// service's own shard carries the authoritative recovery counts.
	mx  *obs.Shard
	loc [obs.NumCounters]uint64
	// pubTick counts era bumps since the last publish.
	pubTick uint32
	// timing, when set (SetBreakdown), charges full Malloc wall time into
	// the metrics for the Figure 7 breakdown. Latency histograms are
	// sampled regardless (1/allocSampleEvery).
	timing bool
	// allocSeq counts Malloc calls for latency sampling.
	allocSeq uint64

	// retiredList parks unlinked nodes awaiting hazard-era reclamation
	// (hazard.go). Local state: a crash abandons it, and the segment-local
	// scan reclaims the parked (refcount-zero, flagged) nodes instead.
	retiredList []retired

	closed bool
}

// pageRef locates one page.
type pageRef struct {
	seg, page int
}

// Connect leases a client slot and joins the pool. The claim is
// bitmap-guided (slotlease.go): O(1) device CASes regardless of MaxClients
// or how many slots are occupied, with a linear status scan only as the
// authoritative fallback. The lease is stamped with the slot's generation
// word (odd = leased), and the new incarnation continues the slot's era
// sequence so committed-era uniqueness is preserved across reuse. On
// exhaustion the returned error is a *SlotExhaustedError carrying the slot
// census; errors.Is(err, ErrTooManyClients) still matches it.
func (p *Pool) Connect() (*Client, error) {
	geo := p.geo
	cid := p.claimSlot()
	if cid == 0 {
		alive, dead := p.slotCensus()
		return nil, &SlotExhaustedError{Capacity: geo.MaxClients, Alive: alive, Dead: dead}
	}
	gen := p.stampLeaseGen(cid)
	p.dev.UnfenceClient(cid)
	c := &Client{
		pool:       p,
		geo:        geo,
		h:          p.dev.Open(cid),
		cid:        cid,
		gen:        gen,
		eraRow:     make([]uint32, geo.MaxClients+1),
		eraKnown:   make([]bool, geo.MaxClients+1),
		classPages: make([][]*ownedPage, len(geo.Classes)),
		ownedBySeg: make(map[int]*ownedSeg),
		queues:     make(map[layout.Addr]*queueShadow),
		roots:      make(map[layout.Addr]*rootShadow),
		blocks:     make(map[layout.Addr]*blockShadow),
		leases:     make(map[layout.Addr]*Lease),
		mx:         p.obs.Shard(cid),
	}
	// Stripe claim-scan start positions by client ID so concurrent claimers
	// spread across the Global Segment Allocation Vec instead of CAS-fighting
	// over its lowest entries.
	c.segCursor = ((cid - 1) * geo.NumSegments) / geo.MaxClients
	c.hugeCursor = c.segCursor
	// Continue the era sequence of the previous incarnation; start at 1 on a
	// fresh slot (era 0 never appears in a committed header, so the all-zero
	// matrix can't satisfy recovery's Condition 2 spuriously).
	prev := uint32(p.dev.Load(geo.EraAddr(cid, cid)))
	c.era = prev + 1
	c.h.Store(geo.EraAddr(cid, cid), uint64(c.era))
	// Continue the shard's published totals too: a reused slot publishes
	// cumulative counts, so pool-wide counters stay monotonic across client
	// incarnations.
	for i := range c.loc {
		c.loc[i] = c.mx.Get(obs.Counter(i))
	}
	// The era row is NOT loaded here: observeEra seeds each column from the
	// device on first touch (the row survives slot reuse, and its witness
	// entries must never travel backwards, so the first write still reads
	// the device). This keeps attach cost independent of MaxClients.
	// Defensive: a redo entry of a previous incarnation must never survive
	// into this one (recovery clears it before publishing RECOVERED, but the
	// slot may also be claimed straight from FREE after an external reset).
	c.clearRedo()
	// Scrub the previous lessee's telemetry block before stamping our own
	// identity: its final vector stays readable only while the slot is idle
	// (dead-client forensics), never once a new incarnation owns the block.
	p.tel.ScrubBlock(c.h, cid)
	p.tel.StampIdentity(c.h, cid, uint64(os.Getpid()))
	c.Heartbeat()
	return c, nil
}

// Generation returns the slot lease generation stamped on this client at
// Connect. Generations are monotonic per slot — every successful lease of
// a slot observes a strictly greater generation than the previous lease —
// so a (cid, generation) pair names one incarnation unambiguously.
func (c *Client) Generation() uint64 { return c.gen }

// ID returns the client's ID (1-based).
func (c *Client) ID() int { return c.cid }

// Pool returns the pool this client is connected to.
func (c *Client) Pool() *Pool { return c.pool }

// Era returns the client's current era (Era[cid][cid]).
func (c *Client) Era() uint32 { return c.era }

// SetInjector arms a crash injector on this client (tests only).
func (c *Client) SetInjector(fi *faultinject.Injector) { c.fi = fi }

// SetBreakdown binds a Figure 7 cost view to this client's metrics and
// enables full Malloc wall-time accounting.
func (c *Client) SetBreakdown(b *Breakdown) {
	b.attach(c)
	c.timing = true
}

// Metrics exposes the client's private metrics shard (tests, adapters),
// publishing any locally accumulated counts first.
func (c *Client) Metrics() *obs.Shard {
	c.publishMetrics()
	return c.mx
}

// FlushMetrics publishes the client's locally accumulated counters into its
// shard immediately, and the full vector into the pool's crash-surviving
// telemetry block. Only the client's own goroutine (or a caller that
// happens-after it, e.g. after a worker join) may call it.
func (c *Client) FlushMetrics() {
	c.publishMetrics()
	c.publishShared()
}

// pubEvery is the metrics publication period in era bumps: small enough
// that snapshots lag live clients by at most a few dozen operations, large
// enough that the per-counter atomic stores amortize to noise on the
// allocation fast path (which bumps the era twice per malloc/free cycle).
const pubEvery = 64

// publishMetrics stores the local counter totals into the shard. A fenced
// client stops publishing: its slot may already have a new incarnation
// owning the shard, and a stale overwrite would travel counts backwards.
func (c *Client) publishMetrics() {
	c.pubTick = 0
	if c.h.Fenced() {
		return
	}
	c.mx.SetCounters(&c.loc)
}

// Heartbeat advances the client's liveness counter; the monitor declares
// clients dead when the counter stops advancing. Heartbeating also
// publishes the client's metrics — in-heap and into the pool's shared
// telemetry block — so the same "I'm alive" cadence keeps the counters
// every process sees fresh, and a client that stops beating leaves behind
// a vector at most one heartbeat old.
func (c *Client) Heartbeat() {
	// Heartbeats are also a publication epoch: deferred frees and page
	// counters land on the device at the same "I'm alive" cadence, so the
	// pool image other processes see is at most one heartbeat stale.
	c.flushPending(EpochHeartbeat)
	a := c.geo.ClientHeartbeatAddr(c.cid)
	c.h.Store(a, c.h.Load(a)+1)
	c.publishMetrics()
	c.publishShared()
}

// publishShared publishes the client's counter totals and histogram
// vectors into its telemetry metric block in the pool words themselves.
// It goes through the client's RAS-fenceable handle: once the client is
// fenced, a straggling publication is dropped by the device, so it can
// never clobber the final pre-fence vector forensics read. Never called
// from the era-bump path — publication cost (a few hundred plain stores)
// stays off the allocation fast path and out of its access budgets.
func (c *Client) publishShared() {
	if c.h.Fenced() {
		return
	}
	c.pool.tel.PublishShard(c.h, c.cid, &c.loc, c.mx, time.Now().UnixNano())
}

// Fenced reports whether this client has been RAS-fenced.
func (c *Client) Fenced() bool { return c.h.Fenced() }

// Close marks the client dead so the recovery service reclaims everything
// it still possesses. A client that released all its references beforehand
// leaves nothing to reclaim; one that exits holding references relies on
// recovery, exactly like a crashed client (the paper draws no distinction:
// clients "are free to join, exit, and even fail", §1.2).
func (c *Client) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	// Publish deferred frees before the fence: after MarkClientDeadReason
	// the device drops this client's stores, and the pending blocks would
	// have to wait for a segment scan to be re-linked.
	c.flushPending(EpochDetach)
	c.publishMetrics()
	c.publishShared()
	return c.pool.MarkClientDeadReason(c.cid, obs.FenceClose)
}

// Crash simulates an abrupt client death: identical to Close but named for
// test readability.
func (c *Client) Crash() error { return c.Close() }

// --- era matrix bookkeeping ---

// observeEra implements lines 4–6 of Figure 4(c): record the largest era of
// lcid this client has seen. Write-through with a local cache; row cid is
// single-writer (this client), so the cache is exact.
func (c *Client) observeEra(lcid uint16, lera uint32) {
	j := int(lcid)
	if j <= 0 || j > c.geo.MaxClients || j == c.cid {
		return
	}
	if !c.eraKnown[j] {
		// Lazy first touch: the row survives slot reuse and may hold the
		// previous incarnation's witness entries, which must never travel
		// backwards — seed the cache from the device before comparing.
		c.eraRow[j] = uint32(c.h.Load(c.geo.EraAddr(c.cid, j)))
		c.eraKnown[j] = true
	}
	if c.eraRow[j] < lera {
		c.eraRow[j] = lera
		c.h.Store(c.geo.EraAddr(c.cid, j), uint64(lera))
	}
}

// bumpEra increments Era[cid][cid] after a committed header publication
// (line 12 of Figure 4(c); also after allocation's header init so every
// published (cid, era) pair is unique to one commit — recovery's Conditions
// 1 and 2 rely on that uniqueness).
func (c *Client) bumpEra() {
	c.era++
	c.h.Store(c.geo.EraAddr(c.cid, c.cid), uint64(c.era))
	c.loc[obs.CtrEraBump]++
	if c.pubTick++; c.pubTick >= pubEvery {
		c.publishMetrics()
	}
}

// hit triggers the crash injector at a named point.
func (c *Client) hit(p faultinject.Point) { c.fi.Hit(p) }
