package shm

import "time"

// Breakdown accumulates where allocation fast-path time goes, reproducing
// the paper's Figure 7 cost split: cache flush, memory fence, and the rest
// of the allocation work. It counts flush/fence invocations and the total
// wall time; shares are computed from the configured per-operation costs —
// timing each ~100ns flush individually would perturb the measurement more
// than the thing measured.
type Breakdown struct {
	FlushOps uint64
	FenceOps uint64
	Total    time.Duration
	Ops      uint64
}

// Shares returns the flush/fence/alloc split in percent, given the modelled
// per-operation costs in nanoseconds.
func (b *Breakdown) Shares(flushNS, fenceNS int) (flush, fence, alloc float64) {
	if b.Total <= 0 {
		return 0, 0, 0
	}
	t := float64(b.Total.Nanoseconds())
	flush = 100 * float64(b.FlushOps) * float64(flushNS) / t
	fence = 100 * float64(b.FenceOps) * float64(fenceNS) / t
	if flush > 100 {
		flush = 100
	}
	if flush+fence > 100 {
		fence = 100 - flush
	}
	alloc = 100 - flush - fence
	return
}

// timedFence performs an SFence, counting it if a breakdown is attached.
func (c *Client) timedFence() {
	c.h.SFence()
	if c.breakdown != nil {
		c.breakdown.FenceOps++
	}
}

// timedFlush performs a Flush, counting it if a breakdown is attached.
func (c *Client) timedFlush(a uint64) {
	c.h.Flush(a)
	if c.breakdown != nil {
		c.breakdown.FlushOps++
	}
}
