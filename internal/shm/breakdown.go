package shm

import (
	"time"

	"repro/internal/obs"
)

// Breakdown is the Figure 7 cost-split view: where allocation fast-path
// time goes between cache flush, memory fence, and the rest of the
// allocation work. It is a window onto the client's local counters — the
// counters themselves live in the client's obs accumulator, the one
// instrumentation mechanism — recording their state at attach time so
// several breakdowns (or reconnecting clients sharing a shard) stay
// independent. Like the client itself, a Breakdown may only be read by
// the client's goroutine or after a happens-before join with it.
//
// Shares are computed from the configured per-operation costs rather than
// timing each ~100ns flush individually, which would perturb the
// measurement more than the thing measured.
type Breakdown struct {
	c         *Client
	baseFlush uint64
	baseFence uint64
	baseOps   uint64
	baseNanos uint64
}

// attach binds the view to a client (Client.SetBreakdown).
func (b *Breakdown) attach(c *Client) {
	b.c = c
	b.baseFlush = c.loc[obs.CtrFlush]
	b.baseFence = c.loc[obs.CtrFence]
	b.baseOps = c.loc[obs.CtrAlloc] + c.loc[obs.CtrAllocFail]
	b.baseNanos = c.loc[obs.CtrAllocNanos]
}

// FlushOps returns the cache-line flushes performed since attach.
func (b *Breakdown) FlushOps() uint64 { return b.c.loc[obs.CtrFlush] - b.baseFlush }

// FenceOps returns the memory fences performed since attach.
func (b *Breakdown) FenceOps() uint64 { return b.c.loc[obs.CtrFence] - b.baseFence }

// Ops returns the Malloc calls made since attach.
func (b *Breakdown) Ops() uint64 {
	return b.c.loc[obs.CtrAlloc] + b.c.loc[obs.CtrAllocFail] - b.baseOps
}

// Total returns the wall time spent in Malloc since attach (requires the
// timing SetBreakdown enables).
func (b *Breakdown) Total() time.Duration {
	return time.Duration(b.c.loc[obs.CtrAllocNanos] - b.baseNanos)
}

// Shares returns the flush/fence/alloc split in percent, given the modelled
// per-operation costs in nanoseconds.
func (b *Breakdown) Shares(flushNS, fenceNS int) (flush, fence, alloc float64) {
	return BreakdownShares(b.FlushOps(), b.FenceOps(), b.Total(), flushNS, fenceNS)
}

// BreakdownShares computes the Figure 7 split from aggregated flush/fence
// counts and total allocation wall time (summed across threads).
func BreakdownShares(flushOps, fenceOps uint64, total time.Duration, flushNS, fenceNS int) (flush, fence, alloc float64) {
	if total <= 0 {
		return 0, 0, 0
	}
	t := float64(total.Nanoseconds())
	flush = 100 * float64(flushOps) * float64(flushNS) / t
	fence = 100 * float64(fenceOps) * float64(fenceNS) / t
	if flush > 100 {
		flush = 100
	}
	if flush+fence > 100 {
		fence = 100 - flush
	}
	alloc = 100 - flush - fence
	return
}

// timedFence performs an SFence, counting it.
func (c *Client) timedFence() {
	c.h.SFence()
	c.loc[obs.CtrFence]++
}

// timedFlush performs a Flush, counting it.
func (c *Client) timedFlush(a uint64) {
	c.h.Flush(a)
	c.loc[obs.CtrFlush]++
}
