package shm

import "repro/internal/layout"

// Hazard-era based deferred reclamation (paper §5.4).
//
// When readers traverse a linked structure concurrently with its single
// writer, freeing an unlinked node immediately invites the classical ABA /
// use-after-free problem. The paper notes this "can be solved with a
// standard Hazard era based reclamation, because the era is already
// maintained by our era based reference count algorithm". This file is that
// extension:
//
//   - a global reclamation era lives at a well-known pool word;
//   - readers publish the era they entered at (in their ClientLocalState's
//     hazard word) while traversing, and clear it when done;
//   - writers Retire instead of releasing: the unlink transaction commits
//     normally, but a node whose count hit zero is parked on the writer's
//     retire list, stamped with the current global era;
//   - ReclaimRetired frees parked nodes whose retire era is below every
//     *live* client's published hazard era — a dead reader cannot block
//     reclamation forever because liveness comes from the client status
//     word, which the monitor maintains (this is where the paper's failure
//     model meets the reclamation scheme).
//
// Crash safety needs no new machinery: a retired-but-unfreed node is a
// refcount-zero block in a POTENTIAL_LEAKING-flagged segment (the unlink
// transaction flags it), exactly the state the segment-local scan already
// reclaims once the retiring writer is dead.

// globalEraAddr is the pool word holding the global reclamation era
// (reserved word 7 of the pool header; initialized to 1 by format so the
// zero hazard word can mean "not reading").
const globalEraAddr = layout.Addr(7)

// hazardOff is the ClientLocalState word holding the client's published
// hazard era (the reserved slot).
const hazardOff = layout.ClientOffReserved

// retired is one parked node.
type retired struct {
	block layout.Addr
	era   uint64
}

// GlobalEra reads the global reclamation era.
func (p *Pool) GlobalEra() uint64 { return p.dev.Load(globalEraAddr) }

// EnterRead publishes the reader's hazard era and returns it. Pair with
// ExitRead. Nesting is not supported (one traversal at a time per client,
// consistent with the single-client-per-thread model).
func (c *Client) EnterRead() uint64 {
	my := c.geo.ClientStateBase(c.cid) + hazardOff
	for {
		e := c.h.Load(globalEraAddr)
		c.h.Store(my, e)
		// Re-check: if the era advanced between load and publish, a writer
		// may have missed our announcement; re-publish at the newer era.
		if c.h.Load(globalEraAddr) == e {
			return e
		}
	}
}

// ExitRead clears the published hazard era.
func (c *Client) ExitRead() {
	c.h.Store(c.geo.ClientStateBase(c.cid)+hazardOff, 0)
}

// RetireEmbed unlinks embedded reference idx of block like ClearEmbed, but
// defers the reclamation of the target if its count reaches zero: the node
// stays allocated (readers mid-traversal can still follow its pointers)
// until ReclaimRetired proves no reader can hold it.
func (c *Client) RetireEmbed(block layout.Addr, idx int) error {
	ea, err := c.embedAddr(block, idx)
	if err != nil {
		return err
	}
	t := c.h.Load(ea)
	if t == 0 {
		return nil
	}
	return c.retireRef(ea, t)
}

// ChangeEmbedRetire atomically re-points embedded reference idx to target
// (like ChangeEmbed) but defers reclamation of the old node.
func (c *Client) ChangeEmbedRetire(block layout.Addr, idx int, target layout.Addr) error {
	ea, err := c.embedAddr(block, idx)
	if err != nil {
		return err
	}
	cur := c.h.Load(ea)
	if cur == 0 {
		return c.AttachReference(ea, target)
	}
	if cur == target {
		return nil
	}
	// Phase the change manually: attach target first (the caller holds a
	// counted reference to it, so this is safe), then retire the old node.
	// Readers racing the swap see either the old or the new node, both
	// alive. This trades the §5.4 change function's single-transaction
	// recovery story for reader safety; the two unlink/link transactions
	// are individually crash-safe.
	if err := c.ChangeReferenceDeferred(ea, cur, target); err != nil {
		return err
	}
	return nil
}

// ChangeReferenceDeferred is ChangeReference with deferred reclamation of
// the decremented object.
func (c *Client) ChangeReferenceDeferred(ref, a, b layout.Addr) error {
	if err := c.changeTxn(ref, a, b, true); err != nil {
		return err
	}
	return nil
}

// retireRef runs the release transaction on (ref, target); if the count
// reaches zero the node is parked instead of reclaimed.
func (c *Client) retireRef(ref, t layout.Addr) error {
	newCnt, pending, err := c.releaseRetire(ref, t)
	if err != nil {
		return err
	}
	if newCnt == 0 || pending {
		c.park(t)
	}
	return nil
}

// park stamps the node with the current global era, advances the era, and
// queues the node for deferred reclamation.
func (c *Client) park(block layout.Addr) {
	e := c.h.Load(globalEraAddr)
	c.retiredList = append(c.retiredList, retired{block: block, era: e})
	// Advance the global era so future readers are distinguishable from
	// those that may still hold the node.
	c.h.CAS(globalEraAddr, e, e+1) // a lost race means someone else advanced: fine
}

// RetiredCount reports how many nodes are parked.
func (c *Client) RetiredCount() int { return len(c.retiredList) }

// ReclaimRetired frees every parked node whose retire era is strictly below
// the minimum hazard era published by any live client, cascading embedded
// references as usual. Returns how many nodes were freed.
func (c *Client) ReclaimRetired() int {
	if len(c.retiredList) == 0 {
		return 0
	}
	min := c.minLiveHazard()
	freed := 0
	kept := c.retiredList[:0]
	for _, r := range c.retiredList {
		if r.era < min {
			c.cascadeFree(r.block)
			freed++
		} else {
			kept = append(kept, r)
		}
	}
	c.retiredList = kept
	return freed
}

// minLiveHazard computes the smallest hazard era published by a live
// client, or the current global era + 1 if no one is reading. Dead clients'
// stale hazards are ignored — their liveness gate is the status word the
// monitor maintains, so a crashed reader cannot block reclamation.
func (c *Client) minLiveHazard() uint64 {
	min := c.h.Load(globalEraAddr) + 1
	for cid := 1; cid <= c.geo.MaxClients; cid++ {
		if c.pool.ClientStatus(cid) != layout.ClientAlive {
			continue
		}
		h := c.h.Load(c.geo.ClientStateBase(cid) + hazardOff)
		if h != 0 && h < min {
			min = h
		}
	}
	return min
}
