package shm_test

import (
	"bytes"
	"testing"

	"repro/internal/layout"
	"repro/internal/shm"
)

// TestLeaseWindowAliasesDevice verifies a lease's bytes and the copying
// accessors observe the same memory, both directions, and that the window
// covers exactly the data area.
func TestLeaseWindowAliasesDevice(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	root, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := c.AcquireLease(block)
	if err != nil {
		t.Fatalf("AcquireLease: %v", err)
	}
	if got, want := len(l.Bytes()), c.DataBytesOf(block); got != want {
		t.Fatalf("lease window %d bytes, data area %d", got, want)
	}
	if l.Block() != block {
		t.Fatalf("lease block %#x, want %#x", l.Block(), block)
	}

	// Write through the lease, read through the copying accessor.
	msg := []byte("zero-copy byte lease")
	copy(l.Bytes(), msg)
	got := make([]byte, len(msg))
	c.ReadData(block, 0, got)
	if !bytes.Equal(got, msg) {
		t.Fatalf("ReadData after lease write: %q, want %q", got, msg)
	}

	// Write through the copying accessor, read through the lease.
	c.WriteData(block, 8, []byte("PATCHED"))
	if want := []byte("zero-copPATCHEDlease"); !bytes.Equal(l.Bytes()[:len(want)], want) {
		t.Fatalf("lease after WriteData: %q, want %q", l.Bytes()[:len(want)], want)
	}

	// Word-granular accessor agrees too (little-endian byte packing).
	copy(l.Bytes()[:8], []byte{1, 2, 3, 4, 5, 6, 7, 8})
	if got := c.LoadWord(block, 0); got != 0x0807060504030201 {
		t.Fatalf("LoadWord over leased bytes: %#x", got)
	}

	c.ReleaseLease(l)
	if c.Leased(block) {
		t.Fatal("block still leased after release")
	}
	if _, err := c.ReleaseRoot(root); err != nil {
		t.Fatal(err)
	}
	mustValidate(t, p)
}

// TestLeaseAliasingAndLifecycle pins the error surface: double lease,
// release/re-acquire, double release, leasing a freed block, and the
// per-client scoping of the aliasing rule.
func TestLeaseAliasingAndLifecycle(t *testing.T) {
	p := newTestPool(t)
	a := connect(t, p)
	b := connect(t, p)
	root, block, err := a.Malloc(256, 0)
	if err != nil {
		t.Fatal(err)
	}

	l1, err := a.AcquireLease(block)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AcquireLease(block); err != shm.ErrLeaseAliased {
		t.Fatalf("second lease: %v, want ErrLeaseAliased", err)
	}
	// The aliasing rule is per client: another client holding its own
	// counted reference may lease the same block (cross-client write
	// ordering is the data structure's concern, as with StoreWord).
	broot, err := b.AttachRoot(block)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := b.AcquireLease(block)
	if err != nil {
		t.Fatalf("cross-client lease: %v", err)
	}
	b.ReleaseLease(bl)
	if _, err := b.ReleaseRoot(broot); err != nil {
		t.Fatal(err)
	}

	a.ReleaseLease(l1)
	a.ReleaseLease(l1) // double release: no-op
	l2, err := a.AcquireLease(block)
	if err != nil {
		t.Fatalf("re-acquire after release: %v", err)
	}
	a.ReleaseLease(l2)

	if _, err := a.ReleaseRoot(root); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AcquireLease(block); err != shm.ErrStaleReference {
		t.Fatalf("lease on freed block: %v, want ErrStaleReference", err)
	}
	mustValidate(t, p)
}

// TestLeaseZeroAlloc pins the freelist property: after warm-up, an
// acquire/release cycle allocates nothing on the Go heap.
func TestLeaseZeroAlloc(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	_, block, err := c.Malloc(128, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up: first acquire creates the wrapper and the map bucket.
	l, err := c.AcquireLease(block)
	if err != nil {
		t.Fatal(err)
	}
	c.ReleaseLease(l)
	if n := testing.AllocsPerRun(200, func() {
		l, err := c.AcquireLease(block)
		if err != nil {
			t.Fatal(err)
		}
		c.ReleaseLease(l)
	}); n != 0 {
		t.Errorf("acquire/release cycle allocates %.1f objects/op, want 0", n)
	}
}

// FuzzLeaseAliasing drives a random acquire/release/free/malloc schedule
// and checks the core invariant after every step: a client never holds
// two live leases over one block, and every live lease covers a block the
// model says is still allocated.
func FuzzLeaseAliasing(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 3, 1, 0, 0, 2, 1})
	f.Add([]byte{0, 0, 0, 1, 1, 1, 3, 3, 2, 2, 0, 1})
	f.Fuzz(func(t *testing.T, script []byte) {
		p := newTestPool(t)
		c := connect(t, p)
		type objState struct {
			root  layout.Addr
			block layout.Addr
			lease *shm.Lease
		}
		var objs []objState
		for _, op := range script {
			switch op % 4 {
			case 0: // malloc
				if len(objs) >= 32 {
					continue
				}
				root, block, err := c.Malloc(64, 0)
				if err != nil {
					t.Fatal(err)
				}
				objs = append(objs, objState{root: root, block: block})
			case 1: // acquire on a pseudo-random object
				if len(objs) == 0 {
					continue
				}
				o := &objs[int(op/4)%len(objs)]
				l, err := c.AcquireLease(o.block)
				switch {
				case o.lease != nil:
					if err != shm.ErrLeaseAliased {
						t.Fatalf("aliasing acquire: err=%v, want ErrLeaseAliased", err)
					}
				case err != nil:
					t.Fatalf("acquire: %v", err)
				default:
					o.lease = l
				}
			case 2: // release lease
				if len(objs) == 0 {
					continue
				}
				o := &objs[int(op/4)%len(objs)]
				c.ReleaseLease(o.lease) // nil-safe
				o.lease = nil
			case 3: // free the object (model requires lease released first)
				if len(objs) == 0 {
					continue
				}
				i := int(op/4) % len(objs)
				o := objs[i]
				if o.lease != nil {
					c.ReleaseLease(o.lease)
				}
				if _, err := c.ReleaseRoot(o.root); err != nil {
					t.Fatal(err)
				}
				objs = append(objs[:i], objs[i+1:]...)
			}
			// Invariants after every step.
			for i := range objs {
				o := &objs[i]
				if got := c.Leased(o.block); got != (o.lease != nil) {
					t.Fatalf("block %#x: Leased()=%v, model lease=%v", o.block, got, o.lease != nil)
				}
				if o.lease != nil && o.lease.Block() != o.block {
					t.Fatalf("lease points at %#x, model says %#x", o.lease.Block(), o.block)
				}
			}
		}
		for _, o := range objs {
			if o.lease != nil {
				c.ReleaseLease(o.lease)
			}
			if _, err := c.ReleaseRoot(o.root); err != nil {
				t.Fatal(err)
			}
		}
		mustValidate(t, p)
	})
}
