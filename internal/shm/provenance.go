package shm

import (
	"repro/internal/cxl"
	"repro/internal/layout"
	"repro/internal/obs"
)

// Provenance stamps an obs.Provenance with this pool's backend and
// geometry, so every exported metrics file says exactly what pool shape
// and data path produced its numbers.
func (p *Pool) Provenance(tool string) *obs.Provenance {
	prov := obs.CollectProvenance(tool, BackendName(p.dev))
	prov.LayoutVersion = layout.LayoutVersion
	prov.MaxClients = p.geo.MaxClients
	prov.NumSegments = p.geo.NumSegments
	prov.SegmentWords = p.geo.SegmentWords
	prov.PageWords = p.geo.PageWords
	prov.MaxQueues = p.geo.MaxQueues
	return prov
}

// BackendName identifies the device backend at the bottom of a (possibly
// middleware-wrapped) memory stack.
func BackendName(dev cxl.Memory) string {
	switch cxl.Bottom(dev).(type) {
	case *cxl.MapDevice:
		return "mmap"
	case *cxl.Device:
		return "heap"
	default:
		return "custom"
	}
}
