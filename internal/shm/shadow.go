package shm

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/obs"
)

// Owner-local metadata shadow cache.
//
// The paper's fast-path argument (§3.3, §5.1) is that allocation needs no
// cross-client synchronization because each client owns its segments
// exclusively. The original implementation still re-read the owner-exclusive
// words (page meta pmInfo/pmFree/pmScan, the segment next-page counter) from
// the device on every operation — round trips that CXL access latency makes
// expensive. This file adds a client-side shadow of exactly those words with
// a strict write-through discipline:
//
//   - The device words stay authoritative. Every mutation stores the new
//     value to the device at the same program point the old code did, so the
//     §5.1 ordering (link → fence → advance) is unchanged on the device.
//   - Only reads are elided: an owner-exclusive word is written by one
//     client only (deferred frees from other clients go through the
//     segment's client_free CAS list, never the page meta), so the shadow
//     can never go stale while the client lives.
//   - Recovery and validation never look at a shadow: a crash loses the
//     cache and recovery reconstructs everything from device words alone.
//     A RAS-fenced client's shadow may diverge (its stores are dropped),
//     which is harmless for the same reason — nothing it does is visible.
//
// The shadow also carries the O(1) page-membership flag (onClassList) that
// replaces readdClassPage's linear scan, and fixes a latent exhaustion bug:
// a temporarily-full page popped from the class/RootRef cache is now
// re-added the moment one of its blocks comes back.

// ownedPage is the client-side shadow of one owned page: the pageRef, the
// device address of its meta area, mirrors of the three meta words, and the
// class-cache membership flag.
type ownedPage struct {
	pr   pageRef
	meta layout.Addr // device address of the page's meta area
	info uint64      // shadow of meta+pmInfo (packed PageMeta)
	free uint64      // shadow of meta+pmFree (free-list head)
	scan uint64      // shadow of meta+pmScan (bump pointer)
	// onClassList marks the page as present in classPages[class] (normal
	// pages) or rootPages (RootRef pages), making re-adds O(1).
	onClassList bool

	// pend holds blocks (or RootRef slots) freed by this client but not yet
	// published to the page's device free list: each is free-marked on the
	// device (header zero, meta recording this client as freeer — exactly
	// the "lost block" state the segment-local scan re-links once the freeer
	// is dead), while the chain/head stores are batched into the next
	// publication burst. Allocation pops from here first, so a free/malloc
	// pair in the same epoch costs zero list publication stores.
	pend []layout.Addr
	// usedDelta accumulates unpublished changes to the page's Used counter
	// (pmInfo): +1 per allocation, -1 per deferred free. The device word
	// lags by at most one publication epoch; nothing in recovery or
	// validation reads Used (it is an owner-local occupancy hint).
	usedDelta int32
	// pendListed marks the page as present in the client's pendPages list.
	pendListed bool
}

// ownedSeg is the client-side shadow of one owned segment: the claimed-page
// counter and the pages claimed so far.
type ownedSeg struct {
	seg      int
	nextPage int          // shadow of the segment's next-page counter
	pages    []*ownedPage // indexed by page number; nil beyond nextPage
}

// ownedSegOf returns the shadow for seg if this client owns it, else nil.
// This replaces the SegState device load on the free fast path: a segment
// enters the map at claimSegment and never leaves while the client lives
// (live clients never release active segments).
func (c *Client) ownedSegOf(seg int) *ownedSeg {
	return c.ownedBySeg[seg]
}

// ownedPageOf returns the shadow for the page containing addr, or nil when
// the address is not in an owned, claimed page.
func (c *Client) ownedPageOf(seg int, addr layout.Addr) *ownedPage {
	os := c.ownedBySeg[seg]
	if os == nil {
		return nil
	}
	pg := c.geo.PageIndexOf(seg, addr)
	if pg < 0 || pg >= len(os.pages) {
		return nil
	}
	return os.pages[pg]
}

// storePMFree writes a page's free-list head word, keeping the shadow
// coherent when the page is owned. Cold paths that may touch either owned or
// foreign pages (the segment-local scan's relink rounds) must go through
// this instead of a raw store.
func (c *Client) storePMFree(seg int, metaA layout.Addr, v uint64) {
	c.h.Store(metaA+pmFree, v)
	if os := c.ownedBySeg[seg]; os != nil {
		// metaA identifies the page by its meta address, not a data address;
		// recover the page index from the meta-area offset.
		pg := int((metaA - c.geo.PageMetaAddr(seg, 0)) / layout.Addr(layout.PageMetaWords))
		if pg >= 0 && pg < len(os.pages) && os.pages[pg] != nil {
			os.pages[pg].free = v
		}
	}
}

// --- deferred metadata publication ---

// pendCap bounds the client-wide count of unpublished frees. Reaching it
// forces a publication burst, so the worst-case "lost block" exposure after
// a crash (all re-linked by the segment scan) stays bounded no matter how
// free-heavy the workload is.
const pendCap = 256

// notePendPage registers op as carrying unpublished state.
func (c *Client) notePendPage(op *ownedPage) {
	if !op.pendListed {
		op.pendListed = true
		c.pendPages = append(c.pendPages, op)
	}
}

// deferFree parks a freed block (already free-marked on the device) on the
// page's pending list instead of publishing it. Publication happens in a
// burst at the next epoch boundary (alloc refill, heartbeat, scan, close, or
// the pendCap backstop). The page is re-added to its allocation cache — the
// pending tier is the allocator's first stop, so the block is immediately
// reusable with zero further device stores.
func (c *Client) deferFree(op *ownedPage, block layout.Addr) {
	op.pend = append(op.pend, block)
	op.usedDelta--
	c.notePendPage(op)
	info := layout.UnpackPageMeta(op.info)
	switch info.Kind {
	case layout.PageKindNormal:
		c.readdClassPage(int(info.SizeClass), op)
	case layout.PageKindRootRef:
		if !op.onClassList {
			op.onClassList = true
			c.rootPages = append(c.rootPages, op)
		}
	}
	if c.pendCount++; c.pendCount >= pendCap {
		c.flushPending(EpochBackstop)
	}
}

// noteUsedDelta defers a page Used-counter change to the next publication
// burst.
func (c *Client) noteUsedDelta(op *ownedPage, d int32) {
	op.usedDelta += d
	c.notePendPage(op)
}

// publishPage performs one page's publication burst: chain every pending
// block into one intrusive list ending at the current published head, then
// publish the new head with a single pmFree store, then fold the deferred
// Used delta into one pmInfo store. A crash before the head store leaves the
// pending blocks exactly as they were — free-marked on no list, re-linked by
// the segment scan once this client is dead; a crash after it has published
// everything that matters (the Used counter is an occupancy hint).
func (c *Client) publishPage(op *ownedPage) {
	info := layout.UnpackPageMeta(op.info)
	if n := len(op.pend); n > 0 {
		nextOff := layout.Addr(freeNextOff)
		if info.Kind == layout.PageKindRootRef {
			nextOff = layout.RootRefPptrOff
		}
		for i, b := range op.pend {
			nxt := op.free
			if i+1 < n {
				nxt = op.pend[i+1]
			}
			c.h.Store(b+nextOff, nxt)
		}
		op.free = op.pend[0]
		c.h.Store(op.meta+pmFree, op.free)
		op.pend = op.pend[:0]
		// The page has published free space again: make sure the allocator
		// can find it (it may have been dropped from its cache while full).
		switch info.Kind {
		case layout.PageKindNormal:
			c.readdClassPage(int(info.SizeClass), op)
		case layout.PageKindRootRef:
			if !op.onClassList {
				op.onClassList = true
				c.rootPages = append(c.rootPages, op)
			}
		}
	}
	if op.usedDelta != 0 {
		if op.usedDelta > 0 {
			info.Used += uint32(op.usedDelta)
		} else if d := uint32(-op.usedDelta); info.Used > d {
			info.Used -= d
		} else {
			info.Used = 0
		}
		op.usedDelta = 0
		op.info = layout.PackPageMeta(info)
		c.h.Store(op.meta+pmInfo, op.info)
	}
}

// Publication-epoch triggers: what caused a flushPending burst. Recorded
// per client (LastPublishEpoch) so diagnostics — the crash sweep's repro
// lines in particular — can name the epoch a crash landed in.
const (
	EpochRefill    = "refill"    // allocation slow path claiming a fresh page
	EpochHeartbeat = "heartbeat" // periodic liveness beat
	EpochScan      = "scan"      // scan entry of an owned segment
	EpochDetach    = "detach"    // client Close
	EpochBackstop  = "backstop"  // pendCap reached
	EpochFlush     = "flush"     // explicit Flush call
)

// flushPending publishes every page's deferred frees and counter deltas in
// one coalesced burst. Called at the epoch boundaries (alloc refill,
// heartbeat, scan entry of an owned segment, close) and by the pendCap
// backstop. A fenced client skips both the stores (the device would drop
// them) and the shadow mutation, leaving the pending state for recovery's
// segment scan to re-link.
func (c *Client) flushPending(trigger string) {
	if len(c.pendPages) == 0 || c.h.Fenced() {
		return
	}
	c.epochTrigger, c.epochSeq = trigger, c.epochSeq+1
	published := c.pendCount
	for _, op := range c.pendPages {
		c.publishPage(op)
		op.pendListed = false
	}
	c.pendPages = c.pendPages[:0]
	c.pendCount = 0
	c.loc[obs.CtrPublishBatch]++
	if published > 0 {
		c.loc[obs.CtrPublishedFrees] += uint64(published)
		c.mx.Observe(obs.HistPublishBatch, int64(published))
	}
}

// Flush publishes all deferred owner-local metadata (pending frees, page
// used counters) to the device immediately. Applications that want a
// bounded-staleness device image (e.g. before handing the pool file to an
// external inspector) can call it at will; the allocator's own epoch
// triggers make it unnecessary otherwise.
func (c *Client) Flush() { c.flushPending(EpochFlush) }

// LastPublishEpoch reports the most recent publication epoch: its trigger
// and a per-client sequence number (0 = no epoch has run yet). The
// trigger is recorded before the epoch's first store, so it names even an
// epoch a crash cut short.
func (c *Client) LastPublishEpoch() (trigger string, seq uint64) {
	return c.epochTrigger, c.epochSeq
}

// CheckShadow verifies every cached word against the device, returning the
// first mismatch. The shadow is an optimization, never a source of truth;
// tests call this after workloads and crash-recovery drills to prove the
// write-through discipline holds. Must not be called on a fenced client
// (dropped stores make divergence expected and harmless there).
//
// Published mirrors (info/free/scan) must match the device exactly. Pending
// (deferred) frees are verified in place: each pending block must be
// free-marked on the device with this client recorded as the freeer, and
// must not be reachable from the page's published free list (it will only
// become reachable in a publication burst).
func (c *Client) CheckShadow() error {
	for _, os := range c.owned {
		np := int(c.h.Load(c.geo.SegNextPageAddr(os.seg)))
		if np != os.nextPage {
			return fmt.Errorf("shm: shadow seg %d next-page %d, device %d", os.seg, os.nextPage, np)
		}
		for pg, op := range os.pages {
			if op == nil {
				continue
			}
			if got := c.h.Load(op.meta + pmInfo); got != op.info {
				return fmt.Errorf("shm: shadow seg %d page %d info %#x, device %#x", os.seg, pg, op.info, got)
			}
			if got := c.h.Load(op.meta + pmFree); got != op.free {
				return fmt.Errorf("shm: shadow seg %d page %d free %#x, device %#x", os.seg, pg, op.free, got)
			}
			if got := c.h.Load(op.meta + pmScan); got != op.scan {
				return fmt.Errorf("shm: shadow seg %d page %d scan %#x, device %#x", os.seg, pg, op.scan, got)
			}
			if err := c.checkPendCoherent(os.seg, pg, op); err != nil {
				return err
			}
		}
	}
	if err := c.checkRefShadow(); err != nil {
		return err
	}
	for block, qs := range c.queues {
		// The client's own end is exact; the opposite end may lag (it is
		// re-read only on apparent full/empty), so cached <= device.
		if dev := c.h.Load(qs.headA); qs.head > dev {
			return fmt.Errorf("shm: queue %#x cached head %d ahead of device %d", block, qs.head, dev)
		}
		if dev := c.h.Load(qs.tailA); qs.tail > dev {
			return fmt.Errorf("shm: queue %#x cached tail %d ahead of device %d", block, qs.tail, dev)
		}
	}
	return nil
}

// checkPendCoherent verifies one page's deferred-publication state against
// the device (see CheckShadow).
func (c *Client) checkPendCoherent(seg, pg int, op *ownedPage) error {
	if len(op.pend) == 0 {
		return nil
	}
	info := layout.UnpackPageMeta(op.info)
	nextOff := layout.Addr(freeNextOff)
	if info.Kind == layout.PageKindRootRef {
		nextOff = layout.RootRefPptrOff
	}
	onList := make(map[layout.Addr]struct{})
	for b := op.free; b != 0; b = c.h.Load(b + nextOff) {
		onList[b] = struct{}{}
	}
	for _, b := range op.pend {
		if _, published := onList[b]; published {
			return fmt.Errorf("shm: seg %d page %d pending block %#x already on the published free list", seg, pg, b)
		}
		if info.Kind == layout.PageKindRootRef {
			if w := c.h.Load(b); w != 0 {
				return fmt.Errorf("shm: seg %d page %d pending RootRef slot %#x not cleared on device (%#x)", seg, pg, b, w)
			}
			continue
		}
		if w := c.h.Load(b + layout.HeaderOff); w != 0 {
			return fmt.Errorf("shm: seg %d page %d pending block %#x header not zero (%#x)", seg, pg, b, w)
		}
		m := layout.UnpackMeta(c.h.Load(b + layout.MetaOff))
		if m.Allocated() || int(m.EmbedCnt) != c.cid {
			return fmt.Errorf("shm: seg %d page %d pending block %#x not free-marked by this client (meta %+v)", seg, pg, b, m)
		}
	}
	return nil
}
