package shm

import (
	"fmt"

	"repro/internal/layout"
)

// Owner-local metadata shadow cache.
//
// The paper's fast-path argument (§3.3, §5.1) is that allocation needs no
// cross-client synchronization because each client owns its segments
// exclusively. The original implementation still re-read the owner-exclusive
// words (page meta pmInfo/pmFree/pmScan, the segment next-page counter) from
// the device on every operation — round trips that CXL access latency makes
// expensive. This file adds a client-side shadow of exactly those words with
// a strict write-through discipline:
//
//   - The device words stay authoritative. Every mutation stores the new
//     value to the device at the same program point the old code did, so the
//     §5.1 ordering (link → fence → advance) is unchanged on the device.
//   - Only reads are elided: an owner-exclusive word is written by one
//     client only (deferred frees from other clients go through the
//     segment's client_free CAS list, never the page meta), so the shadow
//     can never go stale while the client lives.
//   - Recovery and validation never look at a shadow: a crash loses the
//     cache and recovery reconstructs everything from device words alone.
//     A RAS-fenced client's shadow may diverge (its stores are dropped),
//     which is harmless for the same reason — nothing it does is visible.
//
// The shadow also carries the O(1) page-membership flag (onClassList) that
// replaces readdClassPage's linear scan, and fixes a latent exhaustion bug:
// a temporarily-full page popped from the class/RootRef cache is now
// re-added the moment one of its blocks comes back.

// ownedPage is the client-side shadow of one owned page: the pageRef, the
// device address of its meta area, mirrors of the three meta words, and the
// class-cache membership flag.
type ownedPage struct {
	pr   pageRef
	meta layout.Addr // device address of the page's meta area
	info uint64      // shadow of meta+pmInfo (packed PageMeta)
	free uint64      // shadow of meta+pmFree (free-list head)
	scan uint64      // shadow of meta+pmScan (bump pointer)
	// onClassList marks the page as present in classPages[class] (normal
	// pages) or rootPages (RootRef pages), making re-adds O(1).
	onClassList bool
}

// ownedSeg is the client-side shadow of one owned segment: the claimed-page
// counter and the pages claimed so far.
type ownedSeg struct {
	seg      int
	nextPage int          // shadow of the segment's next-page counter
	pages    []*ownedPage // indexed by page number; nil beyond nextPage
}

// ownedSegOf returns the shadow for seg if this client owns it, else nil.
// This replaces the SegState device load on the free fast path: a segment
// enters the map at claimSegment and never leaves while the client lives
// (live clients never release active segments).
func (c *Client) ownedSegOf(seg int) *ownedSeg {
	return c.ownedBySeg[seg]
}

// ownedPageOf returns the shadow for the page containing addr, or nil when
// the address is not in an owned, claimed page.
func (c *Client) ownedPageOf(seg int, addr layout.Addr) *ownedPage {
	os := c.ownedBySeg[seg]
	if os == nil {
		return nil
	}
	pg := c.geo.PageIndexOf(seg, addr)
	if pg < 0 || pg >= len(os.pages) {
		return nil
	}
	return os.pages[pg]
}

// storePMFree writes a page's free-list head word, keeping the shadow
// coherent when the page is owned. Cold paths that may touch either owned or
// foreign pages (the segment-local scan's relink rounds) must go through
// this instead of a raw store.
func (c *Client) storePMFree(seg int, metaA layout.Addr, v uint64) {
	c.h.Store(metaA+pmFree, v)
	if os := c.ownedBySeg[seg]; os != nil {
		// metaA identifies the page by its meta address, not a data address;
		// recover the page index from the meta-area offset.
		pg := int((metaA - c.geo.PageMetaAddr(seg, 0)) / layout.Addr(layout.PageMetaWords))
		if pg >= 0 && pg < len(os.pages) && os.pages[pg] != nil {
			os.pages[pg].free = v
		}
	}
}

// CheckShadow verifies every cached word against the device, returning the
// first mismatch. The shadow is an optimization, never a source of truth;
// tests call this after workloads and crash-recovery drills to prove the
// write-through discipline holds. Must not be called on a fenced client
// (dropped stores make divergence expected and harmless there).
func (c *Client) CheckShadow() error {
	for _, os := range c.owned {
		np := int(c.h.Load(c.geo.SegNextPageAddr(os.seg)))
		if np != os.nextPage {
			return fmt.Errorf("shm: shadow seg %d next-page %d, device %d", os.seg, os.nextPage, np)
		}
		for pg, op := range os.pages {
			if op == nil {
				continue
			}
			if got := c.h.Load(op.meta + pmInfo); got != op.info {
				return fmt.Errorf("shm: shadow seg %d page %d info %#x, device %#x", os.seg, pg, op.info, got)
			}
			if got := c.h.Load(op.meta + pmFree); got != op.free {
				return fmt.Errorf("shm: shadow seg %d page %d free %#x, device %#x", os.seg, pg, op.free, got)
			}
			if got := c.h.Load(op.meta + pmScan); got != op.scan {
				return fmt.Errorf("shm: shadow seg %d page %d scan %#x, device %#x", os.seg, pg, op.scan, got)
			}
		}
	}
	for block, qs := range c.queues {
		// The client's own end is exact; the opposite end may lag (it is
		// re-read only on apparent full/empty), so cached <= device.
		if dev := c.h.Load(qs.headA); qs.head > dev {
			return fmt.Errorf("shm: queue %#x cached head %d ahead of device %d", block, qs.head, dev)
		}
		if dev := c.h.Load(qs.tailA); qs.tail > dev {
			return fmt.Errorf("shm: queue %#x cached tail %d ahead of device %d", block, qs.tail, dev)
		}
	}
	return nil
}
