//go:build unix

package shm_test

import (
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/shm"
)

// TestTelemetryCrossMappingVisibility publishes through one mapping of a
// pool file and reads through a second, concurrently live mapping: the
// telemetry region rides in the pool words, so a publication is visible to
// every mapping the moment its commit word lands — no copies, no IPC.
func TestTelemetryCrossMappingVisibility(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pool.cxl")
	p1, err := shm.NewPool(shm.Config{Geometry: mapGeometry, File: path})
	if err != nil {
		t.Fatal(err)
	}
	defer p1.CloseDevice()
	c := connect(t, p1)
	for i := 0; i < 5; i++ {
		if _, _, err := c.Malloc(64, 0); err != nil {
			t.Fatal(err)
		}
	}
	c.FlushMetrics()

	p2, err := shm.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.CloseDevice()
	if err := p2.Telemetry().Validate(); err != nil {
		t.Fatal(err)
	}
	b, ok := p2.Telemetry().ReadBlock(c.ID())
	if !ok || !b.Consistent {
		t.Fatalf("second mapping cannot read client %d's block (ok=%v consistent=%v)", c.ID(), ok, b.Consistent)
	}
	if got := b.Counters[obs.CtrAlloc]; got != 5 {
		t.Errorf("second mapping sees alloc=%d, want 5", got)
	}

	// A later publication through mapping 1 is immediately visible in 2.
	if _, _, err := c.Malloc(64, 0); err != nil {
		t.Fatal(err)
	}
	c.FlushMetrics()
	b, _ = p2.Telemetry().ReadBlock(c.ID())
	if got := b.Counters[obs.CtrAlloc]; got != 6 {
		t.Errorf("second mapping sees alloc=%d after sixth malloc, want 6", got)
	}
}

// TestTelemetryReadOnlyAttach covers the observer attach path: a PROT_READ
// mapping reads every published vector of a pool it does not own, and any
// attempted mutation through it panics by name instead of corrupting the
// pool (or SIGSEGVing from the MMU).
func TestTelemetryReadOnlyAttach(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pool.cxl")
	p1, err := shm.NewPool(shm.Config{Geometry: mapGeometry, File: path})
	if err != nil {
		t.Fatal(err)
	}
	c := connect(t, p1)
	for i := 0; i < 3; i++ {
		if _, _, err := c.Malloc(64, 0); err != nil {
			t.Fatal(err)
		}
	}
	c.FlushMetrics()
	cid := c.ID()
	if err := p1.CloseDevice(); err != nil {
		t.Fatal(err)
	}

	ro, err := shm.OpenFileReadOnly(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.CloseDevice()
	if got := shm.BackendName(ro.Device()); got != "mmap" {
		t.Errorf("read-only attach backend = %q, want mmap (wrapper must unwrap)", got)
	}
	if err := ro.Telemetry().Validate(); err != nil {
		t.Fatal(err)
	}
	b, ok := ro.Telemetry().ReadBlock(cid)
	if !ok || b.Counters[obs.CtrAlloc] != 3 {
		t.Fatalf("read-only mapping: block ok=%v alloc=%d, want ok alloc=3", ok, b.Counters[obs.CtrAlloc])
	}
	snap := ro.Telemetry().Snapshot()
	if len(snap.Clients) != 1 {
		t.Errorf("read-only snapshot holds %d client blocks, want 1", len(snap.Clients))
	}

	// Any write path through the read-only mapping must panic, not store.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("store through read-only mapping did not panic")
			}
		}()
		ro.Device().Store(0, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("telemetry write through read-only mapping did not panic")
			}
		}()
		ro.Telemetry().PoolAdd(obs.CtrMonitorTick, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Connect on a read-only pool did not panic")
			}
		}()
		ro.Connect()
	}()
}
