package shm

import (
	"fmt"

	"repro/internal/cxl"
	"repro/internal/layout"
	"repro/internal/obs"
)

// Config configures a Pool.
type Config struct {
	// Geometry selects pool dimensions; zero fields take defaults.
	Geometry layout.GeometryConfig
	// Latency optionally enables the device latency model.
	Latency cxl.Latency
	// CountAccesses enables the device's per-access statistics (loads,
	// stores, CAS). Used by the fast-path benchmarks to count device-word
	// round trips per operation; keep off for throughput runs.
	CountAccesses bool
}

// Pool is a formatted CXL-SHM shared memory pool: the device plus its
// geometry. Clients Connect to a Pool; the recovery service operates on it
// directly.
type Pool struct {
	dev *cxl.Device
	geo *layout.Geometry
	obs *obs.Metrics
}

// traceRingCap bounds the recovery-event ring buffer per pool.
const traceRingCap = 512

// newMetrics builds the pool's observability core: shard 0 for pool-level
// and recovery-service accounting, shards 1..MaxClients per client ID.
func newMetrics(geo *layout.Geometry) *obs.Metrics {
	m := obs.New(geo.MaxClients+1, traceRingCap)
	obs.Register(m)
	return m
}

// NewPool creates and formats a shared pool.
func NewPool(cfg Config) (*Pool, error) {
	geo, err := layout.NewGeometry(cfg.Geometry)
	if err != nil {
		return nil, err
	}
	dev, err := cxl.NewDevice(cxl.Config{
		Words:         int(geo.TotalWords),
		MaxClients:    geo.MaxClients + 1, // +1: the recovery service connects as a client too
		Latency:       cfg.Latency,
		CountAccesses: cfg.CountAccesses,
	})
	if err != nil {
		return nil, err
	}
	p := &Pool{dev: dev, geo: geo, obs: newMetrics(geo)}
	p.format()
	return p, nil
}

// format writes the pool magic and geometry summary. Freshly created device
// words are zero, which is exactly the initial state everything else needs:
// segment entries read as {cid 0, version 0, SegFree}, client slots as
// ClientSlotFree, queue registry as empty.
func (p *Pool) format() {
	d := p.dev
	d.Store(1, layout.PoolMagic)
	d.Store(2, p.geo.SegmentWords)
	d.Store(3, p.geo.PageWords)
	d.Store(4, uint64(p.geo.NumSegments))
	d.Store(5, uint64(p.geo.MaxClients))
	d.Store(6, uint64(p.geo.MaxQueues))
	// Global reclamation era for hazard-era deferred reclamation: starts at
	// 1 so a zero hazard word always means "not reading".
	d.Store(7, 1)
}

// Snapshot captures the pool contents for later AttachSnapshot — the
// "everything survives because the device has its own power supply" story
// of the paper's Figure 1. Take it at a quiescent moment.
func (p *Pool) Snapshot() []uint64 { return p.dev.Snapshot() }

// AttachSnapshot reconstructs a Pool around a previously snapshotted device
// image. Clients recorded as alive in the image are from a previous
// incarnation (their processes are gone); list them with StaleClients and
// hand each to the recovery service before resuming normal operation.
func AttachSnapshot(snapshot []uint64) (*Pool, error) {
	// Rebuild geometry from the formatted header words.
	if len(snapshot) < 8 || snapshot[1] != layout.PoolMagic {
		return nil, fmt.Errorf("shm: snapshot is not a formatted CXL-SHM pool")
	}
	geo, err := layout.NewGeometry(layout.GeometryConfig{
		SegmentWords: snapshot[2],
		PageWords:    snapshot[3],
		NumSegments:  int(snapshot[4]),
		MaxClients:   int(snapshot[5]),
		MaxQueues:    int(snapshot[6]),
	})
	if err != nil {
		return nil, err
	}
	if geo.TotalWords != uint64(len(snapshot)) {
		return nil, fmt.Errorf("shm: snapshot has %d words, geometry computes %d",
			len(snapshot), geo.TotalWords)
	}
	dev, err := cxl.RestoreDevice(cxl.Config{MaxClients: geo.MaxClients + 1}, snapshot)
	if err != nil {
		return nil, err
	}
	return &Pool{dev: dev, geo: geo, obs: newMetrics(geo)}, nil
}

// StaleClients lists client slots whose previous incarnation never exited
// cleanly (status alive or dead in the attached image). Recover each before
// connecting new clients.
func (p *Pool) StaleClients() []int {
	var out []int
	for cid := 1; cid <= p.geo.MaxClients; cid++ {
		s := p.ClientStatus(cid)
		if s == layout.ClientAlive || s == layout.ClientDead {
			out = append(out, cid)
		}
	}
	return out
}

// Device exposes the underlying device (recovery, validation, benchmarks).
func (p *Pool) Device() *cxl.Device { return p.dev }

// Obs exposes the pool's observability core (metrics + recovery tracer).
func (p *Pool) Obs() *obs.Metrics { return p.obs }

// Geometry exposes the pool geometry.
func (p *Pool) Geometry() *layout.Geometry { return p.geo }

// SegState reads segment i's state word.
func (p *Pool) SegState(i int) layout.SegState {
	return layout.UnpackSegState(p.dev.Load(p.geo.SegStateAddr(i)))
}

// ClientStatus reads client cid's status word.
func (p *Pool) ClientStatus(cid int) uint64 {
	return p.dev.Load(p.geo.ClientStatusAddr(cid))
}

// MarkClientDead transitions cid from Alive to Dead (the monitor calls this
// when heartbeats stop; tests call it to simulate a detected failure). It
// also RAS-fences the client so no in-flight write can land after recovery
// starts (§3.2).
func (p *Pool) MarkClientDead(cid int) error {
	return p.MarkClientDeadReason(cid, obs.FenceExplicit)
}

// MarkClientDeadReason is MarkClientDead carrying why the client is being
// fenced, recorded in the recovery event trace (the monitor passes
// heartbeat-timeout; Client.Close passes close).
func (p *Pool) MarkClientDeadReason(cid int, reason obs.FenceReason) error {
	if cid < 1 || cid > p.geo.MaxClients {
		return fmt.Errorf("shm: client id %d out of range", cid)
	}
	a := p.geo.ClientStatusAddr(cid)
	for {
		cur := p.dev.Load(a)
		if cur != layout.ClientAlive && cur != layout.ClientDead {
			return fmt.Errorf("shm: client %d not alive (status %d)", cid, cur)
		}
		if cur == layout.ClientDead {
			// Already fenced: don't re-trace (recovery re-fences defensively).
			p.dev.FenceClient(cid)
			return nil
		}
		if p.dev.CAS(a, cur, layout.ClientDead) {
			break
		}
	}
	p.dev.FenceClient(cid)
	p.obs.Shard(0).Inc(obs.CtrClientFenced)
	p.obs.Trace(obs.Event{Type: obs.EvClientFenced, Client: cid, A: uint64(reason)})
	return nil
}

// Usage is a cheap occupancy snapshot (segment-vector walk; no page scans).
type Usage struct {
	SegmentsFree      int
	SegmentsActive    int
	SegmentsAbandoned int
	SegmentsHuge      int
	ClientsAlive      int
	TotalBytes        int
}

// Usage summarizes pool occupancy.
func (p *Pool) Usage() Usage {
	var u Usage
	for i := 0; i < p.geo.NumSegments; i++ {
		switch p.SegState(i).State {
		case layout.SegFree:
			u.SegmentsFree++
		case layout.SegActive:
			u.SegmentsActive++
		case layout.SegAbandoned:
			u.SegmentsAbandoned++
		case layout.SegHugeHead, layout.SegHugeBody:
			u.SegmentsHuge++
		}
	}
	for cid := 1; cid <= p.geo.MaxClients; cid++ {
		if p.ClientStatus(cid) == layout.ClientAlive {
			u.ClientsAlive++
		}
	}
	u.TotalBytes = int(p.geo.TotalWords) * layout.WordBytes
	return u
}

// ClientDeadOrRecovered reports whether cid's slot refers to a client that
// is no longer alive (used by the segment-local scans to decide whether a
// refcount-zero block can still be mid-release by a live client).
func (p *Pool) ClientDeadOrRecovered(cid int) bool {
	if cid < 1 || cid > p.geo.MaxClients {
		// cid 0 appears in never-initialized headers; treat as dead.
		return true
	}
	s := p.ClientStatus(cid)
	return s == layout.ClientDead || s == layout.ClientRecovered || s == layout.ClientSlotFree
}
