package shm

import (
	"fmt"
	"os"
	"time"

	"repro/internal/cxl"
	"repro/internal/layout"
	"repro/internal/obs"
)

// BackendEnv is the environment variable that selects the default device
// backend for pools that do not specify one ("heap" or "mmap"). It lets
// the entire test suite and fault campaigns run over the mmap backend
// without touching a single call site: CXLSHM_BACKEND=mmap go test ./...
const BackendEnv = "CXLSHM_BACKEND"

// Config configures a Pool.
type Config struct {
	// Geometry selects pool dimensions; zero fields take defaults.
	Geometry layout.GeometryConfig
	// Latency optionally enables the device latency model (stacked as
	// cxl.WithLatency middleware over the backend).
	Latency cxl.Latency
	// CountAccesses enables the device's per-access statistics (loads,
	// stores, CAS). Counting is handle-local and merged on read, so it no
	// longer serializes concurrent clients; still, keep it off for pure
	// throughput runs.
	CountAccesses bool

	// Backend selects the device backend: "heap" (default) keeps the pool
	// in process memory; "mmap" backs it with an unlinked temporary file
	// through cxl.MapDevice (same data path as File, nothing left on
	// disk). Empty consults BackendEnv, then defaults to "heap".
	Backend string
	// File, when set, backs the pool with the mmap'd file at this path
	// (created, must not exist — see cxl.CreateMapDevice). The pool then
	// outlives this process: reopen it with OpenFile.
	File string
	// Memory, when set, formats the pool onto this pre-built backend
	// (custom middleware stacks, an already-created MapDevice). Must be
	// sized for the geometry. Overrides Backend and File.
	Memory cxl.Memory
	// Middleware is stacked over the backend (innermost first) before any
	// client or the recovery service touches it.
	Middleware []cxl.Middleware
}

// Pool is a formatted CXL-SHM shared memory pool: a device backend plus its
// geometry. Clients Connect to a Pool; the recovery service operates on it
// directly.
type Pool struct {
	dev cxl.Memory
	geo *layout.Geometry
	obs *obs.Metrics
	tel *Telemetry
}

// newPoolAround assembles a Pool over an already-built (wrapped) device.
// mirror installs the event sink that copies recovery-lifecycle trace
// events into the pool's crash-surviving telemetry ring; read-only
// attaches leave it off (they never trace, and must never write).
func newPoolAround(dev cxl.Memory, geo *layout.Geometry, mirror bool) *Pool {
	p := &Pool{dev: dev, geo: geo, obs: newMetrics(geo), tel: NewTelemetry(dev, geo)}
	if mirror {
		p.obs.SetEventSink(p.tel.mirrorEvent)
	}
	return p
}

// traceRingCap bounds the recovery-event ring buffer per pool.
const traceRingCap = 512

// newMetrics builds the pool's observability core: shard 0 for pool-level
// and recovery-service accounting, shards 1..MaxClients per client ID.
func newMetrics(geo *layout.Geometry) *obs.Metrics {
	m := obs.New(geo.MaxClients+1, traceRingCap)
	obs.Register(m)
	return m
}

// newBackend builds the device backend cfg selects for geo.
func newBackend(cfg Config, geo *layout.Geometry) (cxl.Memory, error) {
	devCfg := cxl.Config{
		Words:         int(geo.TotalWords),
		MaxClients:    geo.MaxClients + 1, // +1: the recovery service connects as a client too
		CountAccesses: cfg.CountAccesses,
	}
	if cfg.File != "" {
		return cxl.CreateMapDevice(cfg.File, devCfg)
	}
	backend := cfg.Backend
	if backend == "" {
		backend = os.Getenv(BackendEnv)
	}
	switch backend {
	case "", "heap":
		return cxl.NewDevice(devCfg)
	case "mmap":
		return cxl.NewAnonMapDevice(devCfg)
	default:
		return nil, fmt.Errorf("shm: unknown device backend %q (want \"heap\" or \"mmap\")", backend)
	}
}

// wrap stacks the configured middleware (and latency profile) over mem.
func wrap(cfg Config, mem cxl.Memory) cxl.Memory {
	if cfg.Latency != (cxl.Latency{}) {
		mem = cxl.Wrap(mem, cxl.WithLatency(cfg.Latency))
	}
	return cxl.Wrap(mem, cfg.Middleware...)
}

// NewPool creates and formats a shared pool on the configured backend.
func NewPool(cfg Config) (*Pool, error) {
	geo, err := layout.NewGeometry(cfg.Geometry)
	if err != nil {
		return nil, err
	}
	mem := cfg.Memory
	if mem == nil {
		mem, err = newBackend(cfg, geo)
		if err != nil {
			return nil, err
		}
	} else if err := checkBackendFits(mem, geo); err != nil {
		return nil, err
	}
	p := newPoolAround(wrap(cfg, mem), geo, true)
	p.format()
	return p, nil
}

// checkBackendFits verifies a caller-supplied backend matches the geometry.
func checkBackendFits(mem cxl.Memory, geo *layout.Geometry) error {
	if got, want := mem.Words(), int(geo.TotalWords); got != want {
		return fmt.Errorf("shm: backend has %d words, geometry needs %d", got, want)
	}
	if got, want := mem.MaxClients(), geo.MaxClients+1; got < want {
		return fmt.Errorf("shm: backend supports %d client IDs, geometry needs %d", got, want)
	}
	return nil
}

// format writes the pool superblock and runtime words. Freshly created
// device words are zero, which is exactly the initial state everything else
// needs: segment entries read as {cid 0, version 0, SegFree}, client slots
// as ClientSlotFree, queue registry as empty.
func (p *Pool) format() {
	layout.WriteSuperblock(p.dev, p.geo)
	// Global reclamation era for hazard-era deferred reclamation: starts at
	// 1 so a zero hazard word always means "not reading".
	p.dev.Store(globalEraAddr, 1)
	// Every client slot starts claimable (generations are zero/even already).
	for w := 0; w < int(p.geo.SlotMapWords); w++ {
		n := p.geo.MaxClients - w*64
		if n >= 64 {
			p.dev.Store(p.geo.SlotMapAddr(w), ^uint64(0))
		} else {
			p.dev.Store(p.geo.SlotMapAddr(w), (uint64(1)<<uint(n))-1)
		}
	}
	p.tel.format()
}

// Snapshot captures the pool contents for later AttachSnapshot — the
// "everything survives because the device has its own power supply" story
// of the paper's Figure 1. Take it at a quiescent moment. Prefer a
// File-backed pool (cxl.MapDevice), which needs no copy at all.
func (p *Pool) Snapshot() []uint64 { return p.dev.Snapshot() }

// AttachSnapshot reconstructs a Pool around a previously snapshotted device
// image. Clients recorded as alive in the image are from a previous
// incarnation (their processes are gone); list them with StaleClients and
// hand each to the recovery service before resuming normal operation.
func AttachSnapshot(snapshot []uint64) (*Pool, error) {
	sb, err := layout.SuperblockFromWords(snapshot)
	if err != nil {
		return nil, fmt.Errorf("shm: %w", err)
	}
	geo, err := sb.Geometry()
	if err != nil {
		return nil, fmt.Errorf("shm: %w", err)
	}
	if geo.TotalWords != uint64(len(snapshot)) {
		return nil, fmt.Errorf("shm: snapshot has %d words, its superblock geometry computes %d (truncated or corrupt image)",
			len(snapshot), geo.TotalWords)
	}
	dev, err := cxl.RestoreDevice(cxl.Config{MaxClients: geo.MaxClients + 1}, snapshot)
	if err != nil {
		return nil, err
	}
	return newPoolAround(dev, geo, true), nil
}

// AttachMemory attaches a pool that already lives on mem — typically a
// cxl.MapDevice reopened by a fresh process. The superblock is validated
// (magic, layout version, geometry) before anything touches the pool; on
// mismatch the pool is left untouched and a descriptive error returned.
// Middleware, if any, is stacked over mem.
func AttachMemory(mem cxl.Memory, mws ...cxl.Middleware) (*Pool, error) {
	sb := layout.ReadSuperblock(mem)
	geo, err := sb.Geometry()
	if err != nil {
		return nil, fmt.Errorf("shm: %w", err)
	}
	if err := checkBackendFits(mem, geo); err != nil {
		return nil, err
	}
	return newPoolAround(cxl.Wrap(mem, mws...), geo, true), nil
}

// OpenFile maps the pool file at path (created by a NewPool with
// Config.File, possibly by another OS process) and attaches it — alive, no
// copy. The previous owner's clients come back exactly as they were;
// recover the stale ones before connecting new clients.
func OpenFile(path string, mws ...cxl.Middleware) (*Pool, error) {
	md, err := cxl.OpenMapDevice(path)
	if err != nil {
		return nil, err
	}
	p, err := AttachMemory(md, mws...)
	if err != nil {
		md.Close()
		return nil, err
	}
	return p, nil
}

// OpenFileReadOnly maps the pool file at path PROT_READ and attaches it
// as an observer: superblock validated, no event sink installed, and any
// write through the device panics with a clear message instead of
// corrupting the pool (the mapping itself is hardware-read-only). This is
// what cxltop and cxlsnap -metrics attach with: they can watch a live
// pool — other processes' heartbeats, counters, recoveries — while being
// physically unable to interfere.
func OpenFileReadOnly(path string) (*Pool, error) {
	mem, err := cxl.OpenMapDeviceReadOnly(path)
	if err != nil {
		return nil, err
	}
	sb := layout.ReadSuperblock(mem)
	geo, err := sb.Geometry()
	if err != nil {
		mem.Close()
		return nil, fmt.Errorf("shm: %w", err)
	}
	if err := checkBackendFits(mem, geo); err != nil {
		mem.Close()
		return nil, err
	}
	return newPoolAround(mem, geo, false), nil
}

// CloseDevice releases the device backend (unmaps a file-backed pool). For
// a file-backed pool the pool itself survives in the file; for the heap
// backend this is a no-op. Any Client or Handle of this pool must not be
// used afterwards.
func (p *Pool) CloseDevice() error { return p.dev.Close() }

// StaleClients lists client slots whose previous incarnation never exited
// cleanly (status alive or dead in the attached image). Recover each before
// connecting new clients.
func (p *Pool) StaleClients() []int {
	var out []int
	for cid := 1; cid <= p.geo.MaxClients; cid++ {
		s := p.ClientStatus(cid)
		if s == layout.ClientAlive || s == layout.ClientDead {
			out = append(out, cid)
		}
	}
	return out
}

// Device exposes the underlying device backend (recovery, validation,
// benchmarks).
func (p *Pool) Device() cxl.Memory { return p.dev }

// DataWindow returns a zero-copy byte view of nbytes starting at word a,
// or nil when the backend cannot alias its memory (see cxl.DataWindow).
// The shm-level discipline — data words of referenced blocks only — is
// enforced by the lease layer (lease.go), the only intended caller.
func (p *Pool) DataWindow(a layout.Addr, nbytes int) []byte {
	return cxl.DataWindow(p.dev, a, nbytes)
}

// Obs exposes the pool's observability core (metrics + recovery tracer).
func (p *Pool) Obs() *obs.Metrics { return p.obs }

// Telemetry exposes the pool's crash-surviving telemetry region.
func (p *Pool) Telemetry() *Telemetry { return p.tel }

// Geometry exposes the pool geometry.
func (p *Pool) Geometry() *layout.Geometry { return p.geo }

// SegState reads segment i's state word.
func (p *Pool) SegState(i int) layout.SegState {
	return layout.UnpackSegState(p.dev.Load(p.geo.SegStateAddr(i)))
}

// ClientStatus reads client cid's status word.
func (p *Pool) ClientStatus(cid int) uint64 {
	return p.dev.Load(p.geo.ClientStatusAddr(cid))
}

// MarkClientDead transitions cid from Alive to Dead (the monitor calls this
// when heartbeats stop; tests call it to simulate a detected failure). It
// also RAS-fences the client so no in-flight write can land after recovery
// starts (§3.2).
func (p *Pool) MarkClientDead(cid int) error {
	return p.MarkClientDeadReason(cid, obs.FenceExplicit)
}

// MarkClientDeadReason is MarkClientDead carrying why the client is being
// fenced, recorded in the recovery event trace (the monitor passes
// heartbeat-timeout; Client.Close passes close).
func (p *Pool) MarkClientDeadReason(cid int, reason obs.FenceReason) error {
	return p.MarkClientDeadDetected(cid, reason, 0)
}

// MarkClientDeadDetected is MarkClientDeadReason carrying when the failure
// was first suspected (the monitor's first missed heartbeat, unix ns; 0
// when there was no detection phase). The successful fence opens a new
// death on the client's crash-surviving recovery timeline, stamped with
// both timepoints — the base the recovery-time SLO is measured from.
func (p *Pool) MarkClientDeadDetected(cid int, reason obs.FenceReason, firstMissNS int64) error {
	if cid < 1 || cid > p.geo.MaxClients {
		return fmt.Errorf("shm: client id %d out of range", cid)
	}
	a := p.geo.ClientStatusAddr(cid)
	for {
		cur := p.dev.Load(a)
		if cur != layout.ClientAlive && cur != layout.ClientDead {
			return fmt.Errorf("shm: client %d not alive (status %d)", cid, cur)
		}
		if cur == layout.ClientDead {
			// Already fenced: don't re-trace (recovery re-fences defensively).
			p.dev.FenceClient(cid)
			return nil
		}
		if p.dev.CAS(a, cur, layout.ClientDead) {
			break
		}
	}
	p.dev.FenceClient(cid)
	p.tel.StampFence(cid, reason, firstMissNS, time.Now().UnixNano())
	p.tel.PoolAdd(obs.CtrClientFenced, 1)
	p.obs.Shard(0).Inc(obs.CtrClientFenced)
	p.obs.Trace(obs.Event{Type: obs.EvClientFenced, Client: cid, A: uint64(reason)})
	return nil
}

// Usage is a cheap occupancy snapshot (segment-vector walk; no page scans).
type Usage struct {
	SegmentsFree      int `json:"segments_free"`
	SegmentsActive    int `json:"segments_active"`
	SegmentsAbandoned int `json:"segments_abandoned"`
	SegmentsHuge      int `json:"segments_huge"`
	ClientsAlive      int `json:"clients_alive"`
	// ClientsDead counts dead clients awaiting recovery; ClientsMax is the
	// slot capacity (MaxClients). Together with ClientsAlive they are the
	// slot census cxltop's header and SlotExhaustedError report.
	ClientsDead int `json:"clients_dead"`
	ClientsMax  int `json:"clients_max"`
	TotalBytes  int `json:"total_bytes"`
}

// Usage summarizes pool occupancy.
func (p *Pool) Usage() Usage {
	var u Usage
	for i := 0; i < p.geo.NumSegments; i++ {
		switch p.SegState(i).State {
		case layout.SegFree:
			u.SegmentsFree++
		case layout.SegActive:
			u.SegmentsActive++
		case layout.SegAbandoned:
			u.SegmentsAbandoned++
		case layout.SegHugeHead, layout.SegHugeBody:
			u.SegmentsHuge++
		}
	}
	u.ClientsAlive, u.ClientsDead = p.slotCensus()
	u.ClientsMax = p.geo.MaxClients
	u.TotalBytes = int(p.geo.TotalWords) * layout.WordBytes
	return u
}

// ClientDeadOrRecovered reports whether cid's slot refers to a client that
// is no longer alive (used by the segment-local scans to decide whether a
// refcount-zero block can still be mid-release by a live client).
func (p *Pool) ClientDeadOrRecovered(cid int) bool {
	if cid < 1 || cid > p.geo.MaxClients {
		// cid 0 appears in never-initialized headers; treat as dead.
		return true
	}
	s := p.ClientStatus(cid)
	return s == layout.ClientDead || s == layout.ClientRecovered || s == layout.ClientSlotFree
}
