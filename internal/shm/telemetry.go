package shm

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/cxl"
	"repro/internal/layout"
	"repro/internal/obs"
)

// Telemetry is the pool's crash-surviving observability surface (layout
// telemetry region): per-client metric blocks published with a
// double-buffered seqlock, a CAS-added pool block, per-client recovery
// timelines, and a shared ring of recovery-lifecycle events. Everything
// lives in device words, so it shares the device's failure domain — a
// kill -9 of any process leaves the victim's last published vectors and
// the full record of its death readable by every surviving (or later, or
// read-only) mapping of the pool.
//
// Writer disciplines, by sub-area:
//
//   - Client metric blocks are single-writer by construction (the client
//     slot lease): only the slot's current incarnation publishes, through
//     its own RAS-fenceable handle, so a fenced client's stray publication
//     is dropped by the device itself.
//   - The pool block has concurrent writers in multiple processes; its
//     words are CAS-added individually and each is monotonic.
//   - Timelines are stamped by whoever fences/recovers the client; the
//     monitor+recovery service share a goroutine, making each stamp
//     sequence effectively single-writer per death.
//   - Ring records are claimed with a CAS fetch-add and made visible by
//     writing their commit word last.
type Telemetry struct {
	dev cxl.Memory
	geo *layout.Geometry
}

// NewTelemetry wraps a telemetry view over a device + geometry. Pools
// construct their own (Pool.Telemetry); tools attaching read-only use
// this directly.
func NewTelemetry(dev cxl.Memory, geo *layout.Geometry) *Telemetry {
	return &Telemetry{dev: dev, geo: geo}
}

// telWriter is the write plane a publication goes through: a client's
// RAS-fenceable Handle, or the management plane (cxl.Memory) for stamps
// by the monitor/recovery side.
type telWriter interface {
	Load(layout.Addr) uint64
	Store(layout.Addr, uint64)
}

// format writes the region header (pool formatting; all other words are
// the all-zero initial state the protocols expect).
func (t *Telemetry) format() {
	t.dev.Store(t.geo.TelHeaderAddr(layout.TelOffMagic), layout.TelMagic)
	t.dev.Store(t.geo.TelHeaderAddr(layout.TelOffNumCounters), uint64(obs.NumCounters))
	t.dev.Store(t.geo.TelHeaderAddr(layout.TelOffNumHistos), uint64(obs.NumHistos))
	t.dev.Store(t.geo.TelHeaderAddr(layout.TelOffHistBuckets), uint64(obs.HistBuckets))
	t.dev.Store(t.geo.TelHeaderAddr(layout.TelOffRingCap), layout.TelRingRecords)
	t.dev.Store(t.geo.TelHeaderAddr(layout.TelOffTimelineWords), layout.TelTimelineWords)
}

// Reformat rewrites the region header — the repairing fsck's remedy when a
// corruption trial damaged the magic or dimension words. Metric blocks,
// timelines and the ring are left as they are: their readers tolerate
// arbitrary garbage record by record, only the header is load-bearing.
func (t *Telemetry) Reformat() { t.format() }

// Validate checks the region header against this build's dimensions. The
// superblock's LayoutVersion gate already refuses incompatible pools;
// this is the defense-in-depth check for tools that bypass it.
func (t *Telemetry) Validate() error {
	if got := t.dev.Load(t.geo.TelHeaderAddr(layout.TelOffMagic)); got != layout.TelMagic {
		return fmt.Errorf("shm: pool has no telemetry region (magic %#x)", got)
	}
	if nc := t.dev.Load(t.geo.TelHeaderAddr(layout.TelOffNumCounters)); nc != uint64(obs.NumCounters) {
		return fmt.Errorf("shm: telemetry region has %d counters, this build has %d", nc, obs.NumCounters)
	}
	if nh := t.dev.Load(t.geo.TelHeaderAddr(layout.TelOffNumHistos)); nh != uint64(obs.NumHistos) {
		return fmt.Errorf("shm: telemetry region has %d histograms, this build has %d", nh, obs.NumHistos)
	}
	return nil
}

// --- client metric blocks (double-buffered seqlock) ---

// PublishShard writes a client's counter vector and its shard's histogram
// vectors into metric block idx through w. The inactive slot is filled
// first and the commit word flipped last, so a crash at any word leaves
// the previously committed slot untouched — readers never lose the last
// stable vector, and never see a torn one.
func (t *Telemetry) PublishShard(w telWriter, idx int, counters *[obs.NumCounters]uint64, sh *obs.Shard, now int64) {
	if idx < 1 || idx > t.geo.MaxClients {
		return
	}
	commit := t.geo.TelBlockBase(idx) + layout.TelBlockOffCommit
	c := w.Load(commit)
	next := 1 - int(c&1)
	a := t.geo.TelSlotBase(idx, next)
	w.Store(a+layout.TelSlotOffTime, uint64(now))
	a += layout.TelSlotOffCounters
	for i := range counters {
		w.Store(a, counters[i])
		a++
	}
	for h := obs.Histo(0); h < obs.NumHistos; h++ {
		for b := 0; b < obs.HistBuckets; b++ {
			w.Store(a, sh.Bucket(h, b))
			a++
		}
	}
	w.Store(commit, ((c>>1)+1)<<1|uint64(next))
}

// StampIdentity records the publishing process's identity (OS pid) in
// metric block idx's header.
func (t *Telemetry) StampIdentity(w telWriter, idx int, id uint64) {
	if idx < 1 || idx > t.geo.MaxClients {
		return
	}
	w.Store(t.geo.TelBlockBase(idx)+layout.TelBlockOffIdentity, id)
}

// ScrubBlock resets metric block idx to the never-published state (commit
// word 0 — ReadBlock reports ok=false) and clears its identity. Connect
// calls this when a slot is re-leased: the previous lessee's final vector
// stays readable while the slot is idle (dead-client forensics), but must
// never masquerade as the new incarnation's output. Goes through the new
// lessee's fenceable handle, like every block write.
func (t *Telemetry) ScrubBlock(w telWriter, idx int) {
	if idx < 1 || idx > t.geo.MaxClients {
		return
	}
	w.Store(t.geo.TelBlockBase(idx)+layout.TelBlockOffCommit, 0)
	w.Store(t.geo.TelBlockBase(idx)+layout.TelBlockOffIdentity, 0)
}

// --- pool block (multi-writer, CAS-added words) ---

// casAdd atomically adds v to the device word at a.
func (t *Telemetry) casAdd(a layout.Addr, v uint64) {
	for {
		cur := t.dev.Load(a)
		if t.dev.CAS(a, cur, cur+v) {
			return
		}
	}
}

// PoolAdd adds v to pool-block counter c (rare management-plane events:
// fences, recovery passes, redo replays — never on a client hot path).
func (t *Telemetry) PoolAdd(c obs.Counter, v uint64) {
	t.casAdd(t.geo.TelSlotBase(0, 0)+layout.TelSlotOffCounters+layout.Addr(c), v)
}

// PoolObserve records one observation into pool-block histogram h.
func (t *Telemetry) PoolObserve(h obs.Histo, ns int64) {
	a := t.geo.TelSlotBase(0, 0) + layout.TelSlotOffCounters + layout.Addr(obs.NumCounters) +
		layout.Addr(int(h)*obs.HistBuckets+obs.BucketOf(ns))
	t.casAdd(a, 1)
}

// --- recovery timelines ---

// StampFence opens a new death on cid's timeline: bump the death seqlock
// to odd, reset the per-death fields, stamp detection and fence times,
// and close the seqlock. firstMissNS is 0 when the fence was not
// preceded by an observed heartbeat miss (explicit kills, clean closes).
func (t *Telemetry) StampFence(cid int, reason obs.FenceReason, firstMissNS, now int64) {
	if cid < 1 || cid > t.geo.MaxClients {
		return
	}
	base := t.geo.TelTimelineBase(cid)
	s := t.dev.Load(base + layout.TlOffDeathSeq)
	s &^= 1 // a previous interrupted reset stays on the same death count
	t.dev.Store(base+layout.TlOffDeathSeq, s+1)
	t.dev.Store(base+layout.TlOffFirstMiss, uint64(firstMissNS))
	t.dev.Store(base+layout.TlOffFenced, uint64(now))
	t.dev.Store(base+layout.TlOffReason, uint64(reason))
	t.dev.Store(base+layout.TlOffAttempt, 0)
	t.dev.Store(base+layout.TlOffAttempts, 0)
	t.dev.Store(base+layout.TlOffReplays, 0)
	t.dev.Store(base+layout.TlOffRecovered, 0)
	t.dev.Store(base+layout.TlOffDuration, 0)
	t.dev.Store(base+layout.TlOffReclaimed, 0)
	t.dev.Store(base+layout.TlOffSwept, 0)
	t.dev.Store(base+layout.TlOffDeathSeq, s+2)
}

// StampRecoveryStart records one recovery attempt beginning for cid's
// current death.
func (t *Telemetry) StampRecoveryStart(cid int, now int64) {
	if cid < 1 || cid > t.geo.MaxClients {
		return
	}
	base := t.geo.TelTimelineBase(cid)
	t.dev.Store(base+layout.TlOffAttempt, uint64(now))
	t.casAdd(base+layout.TlOffAttempts, 1)
}

// StampRedoReplay counts one redo-log replay for cid's current death.
func (t *Telemetry) StampRedoReplay(cid int) {
	if cid < 1 || cid > t.geo.MaxClients {
		return
	}
	t.casAdd(t.geo.TelTimelineBase(cid)+layout.TlOffReplays, 1)
}

// StampRecovered closes cid's current death: recovery completed, with
// reclaimed/swept the pass's results. It computes and returns the
// detection-to-recovered duration (first miss when observed, else the
// fence) — the recovery-time SLO — or 0 when the timeline carries no
// detection stamp to measure from.
func (t *Telemetry) StampRecovered(cid, reclaimed, swept int, now int64) int64 {
	if cid < 1 || cid > t.geo.MaxClients {
		return 0
	}
	base := t.geo.TelTimelineBase(cid)
	detect := int64(t.dev.Load(base + layout.TlOffFirstMiss))
	if detect == 0 {
		detect = int64(t.dev.Load(base + layout.TlOffFenced))
	}
	var dur int64
	if detect > 0 && now > detect {
		dur = now - detect
	}
	t.dev.Store(base+layout.TlOffRecovered, uint64(now))
	t.dev.Store(base+layout.TlOffDuration, uint64(dur))
	t.dev.Store(base+layout.TlOffReclaimed, uint64(reclaimed))
	t.dev.Store(base+layout.TlOffSwept, uint64(swept))
	t.casAdd(base+layout.TlOffCompleted, 1)
	return dur
}

// --- shared event ring ---

// mirrorEvent is the obs.EventSink the pool installs: recovery-lifecycle
// events are appended to the shared ring so the forensic record survives
// the process that produced it. Scan events are excluded — they are
// client-context and frequent enough to flush real history out of the
// bounded ring.
func (t *Telemetry) mirrorEvent(e obs.Event) {
	switch e.Type {
	case obs.EvClientFenced, obs.EvRecoveryStarted, obs.EvRecoveryFinished,
		obs.EvRedoReplayed, obs.EvRecoveryFailed, obs.EvSegmentFlagged,
		obs.EvRepairApplied, obs.EvRepairFailed:
		t.AppendEvent(e)
	}
}

// AppendEvent claims the next ring record (CAS fetch-add on the sequence
// header word) and publishes e into it, commit word last. A writer that
// dies mid-record leaves it invalid (commit 0 or stale), which readers
// skip; the claimed sequence number is simply lost.
func (t *Telemetry) AppendEvent(e obs.Event) {
	seqA := t.geo.TelRingSeqAddr()
	var seq uint64
	for {
		cur := t.dev.Load(seqA)
		if t.dev.CAS(seqA, cur, cur+1) {
			seq = cur
			break
		}
	}
	rec := t.geo.TelRingRecordBase(int(seq % layout.TelRingRecords))
	t.dev.Store(rec+layout.TelRecOffCommit, 0)
	ns := e.Time.UnixNano()
	if e.Time.IsZero() {
		ns = time.Now().UnixNano()
	}
	t.dev.Store(rec+layout.TelRecOffTime, uint64(ns))
	t.dev.Store(rec+layout.TelRecOffType, uint64(e.Type))
	t.dev.Store(rec+layout.TelRecOffClient, uint64(e.Client))
	t.dev.Store(rec+layout.TelRecOffSegment, uint64(e.Segment))
	t.dev.Store(rec+layout.TelRecOffA, e.A)
	t.dev.Store(rec+layout.TelRecOffB, e.B)
	t.dev.Store(rec+layout.TelRecOffCommit, seq+1)
}

// --- read side ---

// TelemetryBlock is one decoded metric block: the last vectors a client
// (or the pool, index 0) published, surviving the publisher's death.
type TelemetryBlock struct {
	Index     int    `json:"index"`
	Publishes uint64 `json:"publishes"`
	Identity  uint64 `json:"pid,omitempty"`
	TimeNS    int64  `json:"time_ns,omitempty"`
	// Consistent is false when the seqlock never settled within the retry
	// budget (a pathological publish storm); the vectors are then the last
	// attempt's possibly-torn read.
	Consistent bool                                   `json:"consistent"`
	Counters   [obs.NumCounters]uint64                `json:"-"`
	Histos     [obs.NumHistos][obs.HistBuckets]uint64 `json:"-"`
}

// MarshalJSON renders the vectors under their stable export names (the
// raw arrays are positional and meaningless without this build's enums).
func (b TelemetryBlock) MarshalJSON() ([]byte, error) {
	type alias TelemetryBlock // avoid recursing into this method
	return json.Marshal(struct {
		alias
		Counters   map[string]uint64                `json:"counters"`
		Histograms map[string]obs.HistogramSnapshot `json:"histograms,omitempty"`
	}{alias(b), b.CounterMap(), b.HistogramMap()})
}

// CounterMap renders the block's counters under their stable export names.
func (b *TelemetryBlock) CounterMap() map[string]uint64 {
	out := make(map[string]uint64, obs.NumCounters)
	for c := obs.Counter(0); c < obs.NumCounters; c++ {
		out[c.Name()] = b.Counters[c]
	}
	return out
}

// HistogramMap finishes the block's histograms under their export names.
func (b *TelemetryBlock) HistogramMap() map[string]obs.HistogramSnapshot {
	out := make(map[string]obs.HistogramSnapshot, obs.NumHistos)
	for h := obs.Histo(0); h < obs.NumHistos; h++ {
		out[h.Name()] = obs.MakeHistogramSnapshot(b.Histos[h])
	}
	return out
}

// ReadBlock snapshots metric block idx. ok is false when the block was
// never published (client metric blocks; the pool block, index 0, always
// reads ok). Torn-free for client blocks via the seqlock; the pool
// block's words are individually monotonic instead.
func (t *Telemetry) ReadBlock(idx int) (b TelemetryBlock, ok bool) {
	b.Index = idx
	if idx < 0 || idx > t.geo.MaxClients {
		return b, false
	}
	if idx == 0 {
		b.Consistent = true
		t.readSlot(&b, t.geo.TelSlotBase(0, 0))
		return b, true
	}
	commit := t.geo.TelBlockBase(idx) + layout.TelBlockOffCommit
	for try := 0; try < 8; try++ {
		c1 := t.dev.Load(commit)
		if c1 == 0 {
			return b, false
		}
		t.readSlot(&b, t.geo.TelSlotBase(idx, int(c1&1)))
		if t.dev.Load(commit) == c1 {
			b.Publishes = c1 >> 1
			b.Consistent = true
			break
		}
	}
	b.Identity = t.dev.Load(t.geo.TelBlockBase(idx) + layout.TelBlockOffIdentity)
	return b, true
}

func (t *Telemetry) readSlot(b *TelemetryBlock, a layout.Addr) {
	b.TimeNS = int64(t.dev.Load(a + layout.TelSlotOffTime))
	a += layout.TelSlotOffCounters
	for i := range b.Counters {
		b.Counters[i] = t.dev.Load(a)
		a++
	}
	for h := 0; h < int(obs.NumHistos); h++ {
		for i := 0; i < obs.HistBuckets; i++ {
			b.Histos[h][i] = t.dev.Load(a)
			a++
		}
	}
}

// TelemetryTimeline is one decoded recovery timeline: the full record of
// a client slot's most recent death, from detection to recovered.
type TelemetryTimeline struct {
	Client      int             `json:"client"`
	Deaths      uint64          `json:"deaths"`
	FirstMissNS int64           `json:"first_miss_ns,omitempty"`
	FencedNS    int64           `json:"fenced_ns,omitempty"`
	Reason      obs.FenceReason `json:"-"`
	ReasonName  string          `json:"reason,omitempty"`
	AttemptNS   int64           `json:"attempt_ns,omitempty"`
	Attempts    uint64          `json:"attempts,omitempty"`
	RedoReplays uint64          `json:"redo_replays,omitempty"`
	RecoveredNS int64           `json:"recovered_ns,omitempty"`
	DurationNS  int64           `json:"detect_to_recovered_ns,omitempty"`
	Completed   uint64          `json:"completed_recoveries,omitempty"`
	Reclaimed   uint64          `json:"reclaimed,omitempty"`
	SweptRoots  uint64          `json:"roots_swept,omitempty"`
}

// ReadTimeline snapshots cid's recovery timeline; ok is false when the
// slot has never been fenced.
func (t *Telemetry) ReadTimeline(cid int) (tl TelemetryTimeline, ok bool) {
	tl.Client = cid
	if cid < 1 || cid > t.geo.MaxClients {
		return tl, false
	}
	base := t.geo.TelTimelineBase(cid)
	for try := 0; try < 8; try++ {
		s1 := t.dev.Load(base + layout.TlOffDeathSeq)
		if s1 == 0 {
			return tl, false
		}
		if s1&1 == 1 {
			continue // reset in progress (or its writer died mid-reset)
		}
		tl.FirstMissNS = int64(t.dev.Load(base + layout.TlOffFirstMiss))
		tl.FencedNS = int64(t.dev.Load(base + layout.TlOffFenced))
		tl.Reason = obs.FenceReason(t.dev.Load(base + layout.TlOffReason))
		tl.AttemptNS = int64(t.dev.Load(base + layout.TlOffAttempt))
		tl.Attempts = t.dev.Load(base + layout.TlOffAttempts)
		tl.RedoReplays = t.dev.Load(base + layout.TlOffReplays)
		tl.RecoveredNS = int64(t.dev.Load(base + layout.TlOffRecovered))
		tl.DurationNS = int64(t.dev.Load(base + layout.TlOffDuration))
		tl.Completed = t.dev.Load(base + layout.TlOffCompleted)
		tl.Reclaimed = t.dev.Load(base + layout.TlOffReclaimed)
		tl.SweptRoots = t.dev.Load(base + layout.TlOffSwept)
		if t.dev.Load(base+layout.TlOffDeathSeq) == s1 {
			tl.Deaths = s1 >> 1
			tl.ReasonName = tl.Reason.String()
			return tl, true
		}
	}
	return tl, false
}

// Events decodes the shared event ring, oldest first. Invalid records
// (never written, or their writer died mid-record) are skipped.
func (t *Telemetry) Events() []obs.Event {
	var out []obs.Event
	for i := 0; i < layout.TelRingRecords; i++ {
		rec := t.geo.TelRingRecordBase(i)
		c1 := t.dev.Load(rec + layout.TelRecOffCommit)
		if c1 == 0 {
			continue
		}
		e := obs.Event{
			Seq:     c1 - 1,
			Time:    time.Unix(0, int64(t.dev.Load(rec+layout.TelRecOffTime))),
			Type:    obs.EventType(t.dev.Load(rec + layout.TelRecOffType)),
			Client:  int(t.dev.Load(rec + layout.TelRecOffClient)),
			Segment: int(t.dev.Load(rec + layout.TelRecOffSegment)),
			A:       t.dev.Load(rec + layout.TelRecOffA),
			B:       t.dev.Load(rec + layout.TelRecOffB),
		}
		if t.dev.Load(rec+layout.TelRecOffCommit) != c1 {
			continue // overwritten mid-read; its replacement shows up next pass
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// TelemetrySnapshot is the whole region, decoded: what cxltop renders,
// cxlsnap -metrics prints, and the JSON/Prometheus exporters serialize.
type TelemetrySnapshot struct {
	TimeNS    int64               `json:"time_ns"`
	Pool      TelemetryBlock      `json:"pool"`
	Clients   []TelemetryBlock    `json:"clients,omitempty"`
	Timelines []TelemetryTimeline `json:"timelines,omitempty"`
	Events    []obs.Event         `json:"events,omitempty"`
}

// Snapshot decodes every published client block, every stamped timeline,
// the pool block, and the event ring.
func (t *Telemetry) Snapshot() TelemetrySnapshot {
	s := TelemetrySnapshot{TimeNS: time.Now().UnixNano()}
	s.Pool, _ = t.ReadBlock(0)
	for cid := 1; cid <= t.geo.MaxClients; cid++ {
		if b, ok := t.ReadBlock(cid); ok {
			s.Clients = append(s.Clients, b)
		}
		if tl, ok := t.ReadTimeline(cid); ok {
			s.Timelines = append(s.Timelines, tl)
		}
	}
	s.Events = t.Events()
	return s
}
