package shm_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/check"
	"repro/internal/layout"
	"repro/internal/shm"
)

func newTestPool(t *testing.T) *shm.Pool {
	t.Helper()
	p, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients:   8,
		NumSegments:  16,
		SegmentWords: 1 << 13, // 64 KiB segments
		PageWords:    1 << 9,  // 4 KiB pages
		MaxQueues:    8,
	}})
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	return p
}

func connect(t *testing.T, p *shm.Pool) *shm.Client {
	t.Helper()
	c, err := p.Connect()
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	return c
}

func mustValidate(t *testing.T, p *shm.Pool) *check.Result {
	t.Helper()
	res := check.Validate(p)
	if !res.Clean() {
		for _, is := range res.Issues {
			t.Errorf("validation: %s", is)
		}
		t.Fatalf("pool validation failed with %d issues", len(res.Issues))
	}
	return res
}

func TestConnectAssignsDistinctIDs(t *testing.T) {
	p := newTestPool(t)
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		c := connect(t, p)
		if seen[c.ID()] {
			t.Fatalf("duplicate client id %d", c.ID())
		}
		seen[c.ID()] = true
	}
	_, err := p.Connect()
	if !errors.Is(err, shm.ErrTooManyClients) {
		t.Fatalf("9th connect: err=%v, want ErrTooManyClients", err)
	}
	var full *shm.SlotExhaustedError
	if !errors.As(err, &full) {
		t.Fatalf("9th connect: err=%T, want *shm.SlotExhaustedError", err)
	}
	if full.Capacity != 8 || full.Alive != 8 || full.Dead != 0 {
		t.Fatalf("census = %+v, want capacity 8, 8 alive, 0 dead", full)
	}
}

func TestMallocReleaseRoundTrip(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	root, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatalf("Malloc: %v", err)
	}
	if hdr := c.HeaderOf(block); hdr.RefCnt != 1 || int(hdr.LCID) != c.ID() {
		t.Fatalf("fresh header = %+v", hdr)
	}
	if got := c.RootTarget(root); got != block {
		t.Fatalf("RootTarget = %#x, want %#x", got, block)
	}
	res := mustValidate(t, p)
	if res.AllocatedObjects != 1 || res.RootRefsInUse != 1 {
		t.Fatalf("validator sees %d objects, %d rootrefs; want 1, 1", res.AllocatedObjects, res.RootRefsInUse)
	}
	freed, err := c.ReleaseRoot(root)
	if err != nil {
		t.Fatalf("ReleaseRoot: %v", err)
	}
	if !freed {
		t.Fatal("releasing the only reference must free the object")
	}
	res = mustValidate(t, p)
	if res.AllocatedObjects != 0 || res.RootRefsInUse != 0 {
		t.Fatalf("after release: %d objects, %d rootrefs", res.AllocatedObjects, res.RootRefsInUse)
	}
}

func TestMallocDataRoundTrip(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	root, block, err := c.Malloc(200, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.DataBytesOf(block); got < 200 {
		t.Fatalf("DataBytesOf = %d, want >= 200", got)
	}
	msg := []byte("partial failure resilient memory management")
	c.WriteData(block, 17, msg)
	got := make([]byte, len(msg))
	c.ReadData(block, 17, got)
	if !bytes.Equal(got, msg) {
		t.Fatalf("data round trip: got %q", got)
	}
	if _, err := c.ReleaseRoot(root); err != nil {
		t.Fatal(err)
	}
}

func TestMallocManySizesAndReuse(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	sizes := []int{1, 16, 17, 64, 100, 256, 400, 1000, 3000}
	for round := 0; round < 3; round++ {
		var roots []layout.Addr
		for _, sz := range sizes {
			for i := 0; i < 10; i++ {
				root, block, err := c.Malloc(sz, 0)
				if err != nil {
					t.Fatalf("round %d size %d: %v", round, sz, err)
				}
				if c.DataBytesOf(block) < sz {
					t.Fatalf("size %d: block too small", sz)
				}
				roots = append(roots, root)
			}
		}
		mustValidate(t, p)
		for _, r := range roots {
			if _, err := c.ReleaseRoot(r); err != nil {
				t.Fatal(err)
			}
		}
		mustValidate(t, p)
	}
}

func TestCloneReleaseLocal(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	root, block, err := c.Malloc(32, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.CloneRoot(root)
	c.CloneRoot(root)
	// Local clones must not touch the shared header (two-tier counting).
	if hdr := c.HeaderOf(block); hdr.RefCnt != 1 {
		t.Fatalf("shared ref_cnt = %d after local clones, want 1", hdr.RefCnt)
	}
	for i := 0; i < 2; i++ {
		freed, err := c.ReleaseRoot(root)
		if err != nil {
			t.Fatal(err)
		}
		if freed {
			t.Fatalf("clone release %d freed the object", i)
		}
	}
	freed, err := c.ReleaseRoot(root)
	if err != nil {
		t.Fatal(err)
	}
	if !freed {
		t.Fatal("last release must free")
	}
	mustValidate(t, p)
}

func TestAttachReleaseAcrossClients(t *testing.T) {
	p := newTestPool(t)
	a := connect(t, p)
	b := connect(t, p)
	root, block, err := a.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	// B takes its own counted reference via a queue-free direct attach
	// (simulating what cxl_receive_from does internally).
	rootB, err := b.OpenQueue(block) // OpenQueue is just "attach my RootRef"
	if err != nil {
		t.Fatal(err)
	}
	if hdr := a.HeaderOf(block); hdr.RefCnt != 2 {
		t.Fatalf("ref_cnt = %d, want 2", hdr.RefCnt)
	}
	// A releases: object must survive (B still holds it).
	if freed, err := a.ReleaseRoot(root); err != nil || freed {
		t.Fatalf("A release: freed=%v err=%v", freed, err)
	}
	if hdr := b.HeaderOf(block); hdr.RefCnt != 1 {
		t.Fatalf("ref_cnt = %d after A's release, want 1", hdr.RefCnt)
	}
	mustValidate(t, p)
	if freed, err := b.ReleaseRoot(rootB); err != nil || !freed {
		t.Fatalf("B release: freed=%v err=%v", freed, err)
	}
	mustValidate(t, p)
}

func TestCrossClientFreeGoesToClientFreeList(t *testing.T) {
	p := newTestPool(t)
	a := connect(t, p)
	b := connect(t, p)
	root, block, err := a.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	rootB, err := b.OpenQueue(block)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReleaseRoot(root); err != nil {
		t.Fatal(err)
	}
	// B performs the final release: the block belongs to A's segment, so it
	// must take the deferred client_free path without corrupting anything.
	if freed, err := b.ReleaseRoot(rootB); err != nil || !freed {
		t.Fatalf("freed=%v err=%v", freed, err)
	}
	mustValidate(t, p)
	// A must be able to reuse the deferred block after collecting.
	var roots []layout.Addr
	for i := 0; i < 100; i++ {
		r, _, err := a.Malloc(64, 0)
		if err != nil {
			t.Fatal(err)
		}
		roots = append(roots, r)
	}
	for _, r := range roots {
		if _, err := a.ReleaseRoot(r); err != nil {
			t.Fatal(err)
		}
	}
	mustValidate(t, p)
}

func TestEmbeddedReferencesLifecycle(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	rootParent, parent, err := c.Malloc(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	rootX, x, err := c.Malloc(32, 0)
	if err != nil {
		t.Fatal(err)
	}
	rootY, y, err := c.Malloc(32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetEmbed(parent, 0, x); err != nil {
		t.Fatal(err)
	}
	if err := c.SetEmbed(parent, 1, y); err != nil {
		t.Fatal(err)
	}
	if hdr := c.HeaderOf(x); hdr.RefCnt != 2 {
		t.Fatalf("x ref_cnt = %d, want 2", hdr.RefCnt)
	}
	if got, _ := c.LoadEmbed(parent, 0); got != x {
		t.Fatalf("embed 0 = %#x, want %#x", got, x)
	}
	if err := c.SetEmbed(parent, 2, x); err != shm.ErrBadEmbedIndex {
		t.Fatalf("out-of-range embed: %v", err)
	}
	mustValidate(t, p)

	// Drop the local roots for x and y: they live on via the parent.
	if freed, _ := c.ReleaseRoot(rootX); freed {
		t.Fatal("x freed while parent still links it")
	}
	if freed, _ := c.ReleaseRoot(rootY); freed {
		t.Fatal("y freed while parent still links it")
	}
	mustValidate(t, p)

	// Releasing the parent must cascade and free x and y too.
	if freed, err := c.ReleaseRoot(rootParent); err != nil || !freed {
		t.Fatalf("parent release: freed=%v err=%v", freed, err)
	}
	res := mustValidate(t, p)
	if res.AllocatedObjects != 0 {
		t.Fatalf("cascade left %d objects allocated", res.AllocatedObjects)
	}
}

func TestChangeEmbedMovesReference(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	rootP, parent, _ := c.Malloc(64, 1)
	rootX, x, _ := c.Malloc(32, 0)
	rootY, y, _ := c.Malloc(32, 0)
	if err := c.SetEmbed(parent, 0, x); err != nil {
		t.Fatal(err)
	}
	if err := c.ChangeEmbed(parent, 0, y); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.LoadEmbed(parent, 0); got != y {
		t.Fatalf("embed = %#x, want y=%#x", got, y)
	}
	if hdr := c.HeaderOf(x); hdr.RefCnt != 1 {
		t.Fatalf("x ref_cnt = %d after change, want 1", hdr.RefCnt)
	}
	if hdr := c.HeaderOf(y); hdr.RefCnt != 2 {
		t.Fatalf("y ref_cnt = %d after change, want 2", hdr.RefCnt)
	}
	mustValidate(t, p)
	// Change where the old target's count drops to zero: x freed by change.
	if _, err := c.ReleaseRoot(rootX); err != nil {
		t.Fatal(err)
	}
	if err := c.ChangeEmbed(parent, 0, x); err != shm.ErrStaleReference {
		// x is gone; re-pointing to it must be refused.
		t.Fatalf("change to freed object: err=%v, want ErrStaleReference", err)
	}
	for _, r := range []layout.Addr{rootP, rootY} {
		if _, err := c.ReleaseRoot(r); err != nil {
			t.Fatal(err)
		}
	}
	res := mustValidate(t, p)
	if res.AllocatedObjects != 0 {
		t.Fatalf("%d objects left", res.AllocatedObjects)
	}
}

func TestChangeEmbedFreesOldTarget(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	rootP, parent, _ := c.Malloc(64, 1)
	_, x, _ := c.Malloc(32, 0)
	rootY, y, _ := c.Malloc(32, 0)
	if err := c.SetEmbed(parent, 0, x); err != nil {
		t.Fatal(err)
	}
	// Track x only through the parent now.
	xRootRefs := findRootsPointingAt(t, p, x)
	if xRootRefs != 1 {
		t.Fatalf("x has %d rootrefs, want 1 (its malloc root)", xRootRefs)
	}
	// Drop malloc root of x so the embed is its only reference.
	releaseAllRootsPointingAt(t, p, c, x)
	if hdr := c.HeaderOf(x); hdr.RefCnt != 1 {
		t.Fatalf("x ref_cnt = %d, want 1 (embed only)", hdr.RefCnt)
	}
	if err := c.ChangeEmbed(parent, 0, y); err != nil {
		t.Fatal(err)
	}
	// x's last reference is gone: it must have been reclaimed.
	res := mustValidate(t, p)
	if res.AllocatedObjects != 2 { // parent + y
		t.Fatalf("allocated = %d, want 2", res.AllocatedObjects)
	}
	for _, r := range []layout.Addr{rootP, rootY} {
		if _, err := c.ReleaseRoot(r); err != nil {
			t.Fatal(err)
		}
	}
	mustValidate(t, p)
}

func TestQueueTransferMovesOwnership(t *testing.T) {
	p := newTestPool(t)
	a := connect(t, p)
	b := connect(t, p)

	qRootA, q, err := a.CreateQueue(b.ID(), 4)
	if err != nil {
		t.Fatalf("CreateQueue: %v", err)
	}
	qRootB, err := b.OpenQueue(q)
	if err != nil {
		t.Fatal(err)
	}

	rootA, obj, err := a.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	a.WriteData(obj, 0, []byte("hello rdsm"))
	if err := a.Send(q, obj); err != nil {
		t.Fatal(err)
	}
	if n := a.QueueLen(q); n != 1 {
		t.Fatalf("queue len %d, want 1", n)
	}
	// Sender can drop its reference immediately after send: the queue slot
	// holds a counted reference.
	if freed, err := a.ReleaseRoot(rootA); err != nil || freed {
		t.Fatalf("sender release: freed=%v err=%v", freed, err)
	}
	mustValidate(t, p)

	rootB, got, err := b.Receive(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != obj {
		t.Fatalf("received %#x, want %#x", got, obj)
	}
	buf := make([]byte, 10)
	b.ReadData(got, 0, buf)
	if string(buf) != "hello rdsm" {
		t.Fatalf("payload %q", buf)
	}
	if n := b.QueueLen(q); n != 0 {
		t.Fatalf("queue len %d after receive, want 0", n)
	}
	if freed, err := b.ReleaseRoot(rootB); err != nil || !freed {
		t.Fatalf("receiver release: freed=%v err=%v", freed, err)
	}

	if _, _, err := b.Receive(q); err != shm.ErrQueueEmpty {
		t.Fatalf("empty receive: %v", err)
	}
	// Fill the queue to capacity.
	var roots []layout.Addr
	for i := 0; i < 4; i++ {
		r, o, err := a.Malloc(16, 0)
		if err != nil {
			t.Fatal(err)
		}
		roots = append(roots, r)
		if err := a.Send(q, o); err != nil {
			t.Fatal(err)
		}
	}
	if r, o, err := a.Malloc(16, 0); err != nil {
		t.Fatal(err)
	} else {
		if err := a.Send(q, o); err != shm.ErrQueueFull {
			t.Fatalf("full send: %v", err)
		}
		roots = append(roots, r)
	}
	for _, r := range roots {
		if _, err := a.ReleaseRoot(r); err != nil {
			t.Fatal(err)
		}
	}
	// Tear down the queue with references still in flight: the cascade must
	// release them.
	if _, err := a.ReleaseRoot(qRootA); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReleaseRoot(qRootB); err != nil {
		t.Fatal(err)
	}
	p.SweepQueueRegistry()
	res := mustValidate(t, p)
	if res.AllocatedObjects != 0 {
		t.Fatalf("queue teardown leaked %d objects", res.AllocatedObjects)
	}
}

func TestFindQueueFromRegistry(t *testing.T) {
	p := newTestPool(t)
	a := connect(t, p)
	b := connect(t, p)
	_, q, err := a.CreateQueue(b.ID(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.FindQueueFrom(a.ID()); got != q {
		t.Fatalf("FindQueueFrom = %#x, want %#x", got, q)
	}
	if got := a.FindQueueFrom(b.ID()); got != 0 {
		t.Fatalf("reverse direction must not match, got %#x", got)
	}
	qi := a.QueueInfoOf(q)
	if qi.Sender != a.ID() || qi.Receiver != b.ID() || qi.Capacity != 2 {
		t.Fatalf("QueueInfo = %+v", qi)
	}
}

func TestHugeObjectAllocateRelease(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	// Larger than the biggest size class (page is 4 KiB): spans segments.
	big := 3 * 64 * 1024 / 2 // 1.5 segments
	root, block, err := c.Malloc(big, 0)
	if err != nil {
		t.Fatalf("huge Malloc: %v", err)
	}
	if got := c.DataBytesOf(block); got < big {
		t.Fatalf("huge block %d bytes, want >= %d", got, big)
	}
	m := c.MetaOf(block)
	if m.Flags&layout.MetaHuge == 0 {
		t.Fatal("huge flag not set")
	}
	c.WriteData(block, big-8, []byte("tailmark"))
	buf := make([]byte, 8)
	c.ReadData(block, big-8, buf)
	if string(buf) != "tailmark" {
		t.Fatalf("huge data tail %q", buf)
	}
	mustValidate(t, p)
	if freed, err := c.ReleaseRoot(root); err != nil || !freed {
		t.Fatalf("huge release: freed=%v err=%v", freed, err)
	}
	res := mustValidate(t, p)
	if res.SegmentsOther != 0 {
		t.Fatalf("huge segments not returned: %d in other states", res.SegmentsOther)
	}
}

func TestHugeObjectWithEmbeddedReferences(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	// A huge object (spans segments) holding embedded references to two
	// small objects: releasing the huge object must cascade.
	big := 3 * 64 * 1024 / 2
	hugeRoot, huge, err := c.Malloc(big, 2)
	if err != nil {
		t.Fatal(err)
	}
	r1, o1, err := c.Malloc(32, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, o2, err := c.Malloc(32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetEmbed(huge, 0, o1); err != nil {
		t.Fatal(err)
	}
	if err := c.SetEmbed(huge, 1, o2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReleaseRoot(r1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReleaseRoot(r2); err != nil {
		t.Fatal(err)
	}
	mustValidate(t, p)
	if freed, err := c.ReleaseRoot(hugeRoot); err != nil || !freed {
		t.Fatalf("huge release: freed=%v err=%v", freed, err)
	}
	res := mustValidate(t, p)
	if res.AllocatedObjects != 0 {
		t.Fatalf("huge cascade leaked %d objects", res.AllocatedObjects)
	}
	if res.SegmentsOther != 0 {
		t.Fatalf("huge segments not reclaimed: %d", res.SegmentsOther)
	}
}

func TestSmallObjectEmbedsHugeObject(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	big := 3 * 64 * 1024 / 2
	hr, huge, err := c.Malloc(big, 0)
	if err != nil {
		t.Fatal(err)
	}
	pr, parent, err := c.Malloc(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetEmbed(parent, 0, huge); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReleaseRoot(hr); err != nil {
		t.Fatal(err)
	}
	// The huge object now lives only through the small parent's embed.
	mustValidate(t, p)
	if freed, err := c.ReleaseRoot(pr); err != nil || !freed {
		t.Fatalf("freed=%v err=%v", freed, err)
	}
	res := mustValidate(t, p)
	if res.AllocatedObjects != 0 || res.SegmentsOther != 0 {
		t.Fatalf("cascade into huge failed: %d objects, %d segments",
			res.AllocatedObjects, res.SegmentsOther)
	}
}

func TestHugeTooLarge(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	if _, _, err := c.Malloc(1<<30, 0); err == nil {
		t.Fatal("absurd allocation must fail")
	}
}

func TestOutOfMemoryIsReported(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	var roots []layout.Addr
	for {
		root, _, err := c.Malloc(3000, 0)
		if err == shm.ErrOutOfMemory {
			break
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		roots = append(roots, root)
		if len(roots) > 1<<16 {
			t.Fatal("pool never fills up")
		}
	}
	// Everything must still be releasable and the pool consistent.
	for _, r := range roots {
		if _, err := c.ReleaseRoot(r); err != nil {
			t.Fatal(err)
		}
	}
	mustValidate(t, p)
	// And allocatable again.
	if _, _, err := c.Malloc(3000, 0); err != nil {
		t.Fatalf("allocation after drain: %v", err)
	}
}

func TestRefCountOverflowRejected(t *testing.T) {
	p, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients: 4, NumSegments: 64, SegmentWords: 1 << 15, PageWords: 1 << 11,
	}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Connect()
	if err != nil {
		t.Fatal(err)
	}
	_, block, err := c.Malloc(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the count to the 16-bit ceiling; the next attach must fail
	// cleanly instead of wrapping.
	var roots []layout.Addr
	for i := 0; i < layout.MaxRefCount-1; i++ {
		root, err := c.AttachRoot(block)
		if err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
		roots = append(roots, root)
	}
	if hdr := c.HeaderOf(block); int(hdr.RefCnt) != layout.MaxRefCount {
		t.Fatalf("ref_cnt=%d, want %d", hdr.RefCnt, layout.MaxRefCount)
	}
	if _, err := c.AttachRoot(block); err != shm.ErrRefCountOverflow {
		t.Fatalf("overflow attach: %v", err)
	}
	// Everything still releasable.
	for _, r := range roots {
		if _, err := c.ReleaseRoot(r); err != nil {
			t.Fatal(err)
		}
	}
	if hdr := c.HeaderOf(block); hdr.RefCnt != 1 {
		t.Fatalf("ref_cnt=%d after drain, want 1", hdr.RefCnt)
	}
}

func TestEraAdvancesPerCommit(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	e0 := c.Era()
	root, _, err := c.Malloc(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Era() <= e0 {
		t.Fatalf("era %d not bumped by allocation (was %d)", c.Era(), e0)
	}
	e1 := c.Era()
	if _, err := c.ReleaseRoot(root); err != nil {
		t.Fatal(err)
	}
	if c.Era() <= e1 {
		t.Fatalf("era %d not bumped by release (was %d)", c.Era(), e1)
	}
}

func TestStaleReferenceDetected(t *testing.T) {
	p := newTestPool(t)
	a := connect(t, p)
	b := connect(t, p)
	root, block, _ := a.Malloc(32, 0)
	if _, err := a.ReleaseRoot(root); err != nil {
		t.Fatal(err)
	}
	// block is freed; attaching to it must be refused, not corrupt memory.
	if _, err := b.OpenQueue(block); err != shm.ErrStaleReference {
		t.Fatalf("attach to freed block: %v, want ErrStaleReference", err)
	}
	mustValidate(t, p)
}

func TestFencedClientOperationsFail(t *testing.T) {
	p := newTestPool(t)
	c := connect(t, p)
	root, block, _ := c.Malloc(32, 0)
	_ = block
	if err := p.MarkClientDead(c.ID()); err != nil {
		t.Fatal(err)
	}
	if !c.Fenced() {
		t.Fatal("client not fenced after MarkClientDead")
	}
	if _, _, err := c.Malloc(32, 0); err != shm.ErrFenced {
		t.Fatalf("fenced malloc: %v", err)
	}
	if _, err := c.ReleaseRoot(root); err != shm.ErrFenced {
		t.Fatalf("fenced release: %v", err)
	}
}

// --- helpers ---

func findRootsPointingAt(t *testing.T, p *shm.Pool, target layout.Addr) int {
	t.Helper()
	res := check.Validate(p)
	_ = res
	// Count through the validator-independent path: walk RootRef pages.
	geo := p.Geometry()
	dev := p.Device()
	n := 0
	for seg := 0; seg < geo.NumSegments; seg++ {
		st := p.SegState(seg)
		if st.State != layout.SegActive && st.State != layout.SegAbandoned {
			continue
		}
		numPages := int(dev.Load(geo.SegNextPageAddr(seg)))
		for pg := 0; pg < numPages && pg < geo.PagesPerSegment; pg++ {
			info := layout.UnpackPageMeta(dev.Load(geo.PageMetaAddr(seg, pg)))
			if info.Kind != layout.PageKindRootRef {
				continue
			}
			base := geo.PageBase(seg, pg)
			scanPos := dev.Load(geo.PageMetaAddr(seg, pg) + 2)
			for slot := base; slot+layout.RootRefWords <= layout.Addr(scanPos); slot += layout.RootRefWords {
				inUse, _ := layout.UnpackRootRef(dev.Load(slot))
				if inUse && dev.Load(slot+layout.RootRefPptrOff) == target {
					n++
				}
			}
		}
	}
	return n
}

func releaseAllRootsPointingAt(t *testing.T, p *shm.Pool, c *shm.Client, target layout.Addr) {
	t.Helper()
	geo := p.Geometry()
	dev := p.Device()
	for seg := 0; seg < geo.NumSegments; seg++ {
		st := p.SegState(seg)
		if st.State != layout.SegActive {
			continue
		}
		numPages := int(dev.Load(geo.SegNextPageAddr(seg)))
		for pg := 0; pg < numPages && pg < geo.PagesPerSegment; pg++ {
			info := layout.UnpackPageMeta(dev.Load(geo.PageMetaAddr(seg, pg)))
			if info.Kind != layout.PageKindRootRef {
				continue
			}
			base := geo.PageBase(seg, pg)
			scanPos := dev.Load(geo.PageMetaAddr(seg, pg) + 2)
			for slot := base; slot+layout.RootRefWords <= layout.Addr(scanPos); slot += layout.RootRefWords {
				inUse, _ := layout.UnpackRootRef(dev.Load(slot))
				if inUse && dev.Load(slot+layout.RootRefPptrOff) == target {
					if _, err := c.ReleaseRoot(slot); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
}
