package shm_test

import (
	"os"
	"sync"
	"testing"

	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/shm"
)

// haltingWriter is a telemetry write plane that simulates a power loss after
// a fixed number of stores: the publish protocol must leave the previously
// committed slot intact no matter where the budget runs out.
type haltingWriter struct {
	p    *shm.Pool
	left int
}

func (w *haltingWriter) Load(a layout.Addr) uint64 { return w.p.Device().Load(a) }

func (w *haltingWriter) Store(a layout.Addr, v uint64) {
	if w.left <= 0 {
		panic("power loss")
	}
	w.left--
	w.p.Device().Store(a, v)
}

func TestTelemetryPublishReadback(t *testing.T) {
	p := newTestPool(t)
	tel := p.Telemetry()
	if err := tel.Validate(); err != nil {
		t.Fatalf("Validate on a fresh pool: %v", err)
	}

	c := connect(t, p)
	const allocs = 7
	for i := 0; i < allocs; i++ {
		if _, _, err := c.Malloc(64, 0); err != nil {
			t.Fatal(err)
		}
	}
	c.FlushMetrics()

	b, ok := tel.ReadBlock(c.ID())
	if !ok {
		t.Fatalf("client %d published but ReadBlock says never", c.ID())
	}
	if !b.Consistent {
		t.Fatal("single-writer publish read back inconsistent")
	}
	if got := b.Counters[obs.CtrAlloc]; got != allocs {
		t.Errorf("telemetry alloc counter = %d, want %d", got, allocs)
	}
	if b.Publishes < 2 { // Connect heartbeats once, FlushMetrics publishes again
		t.Errorf("publish count = %d, want >= 2", b.Publishes)
	}
	if b.Identity != uint64(os.Getpid()) {
		t.Errorf("block identity = %d, want our pid %d", b.Identity, os.Getpid())
	}
	if b.TimeNS == 0 {
		t.Error("published block carries no timestamp")
	}

	// A slot that never connected has no published block.
	if _, ok := tel.ReadBlock(c.ID() + 1); ok {
		t.Error("ReadBlock returned ok for a never-published client slot")
	}
	// The pool block always reads (CAS-added words, commit protocol unused).
	if _, ok := tel.ReadBlock(0); !ok {
		t.Error("pool block must always read ok")
	}
}

// TestTelemetryCrashMidPublish kills a publication at every possible store
// position and verifies the previously committed vector survives each one:
// the double-buffered slot absorbs the torn write, the commit word is only
// flipped by a publish that ran to completion.
func TestTelemetryCrashMidPublish(t *testing.T) {
	p := newTestPool(t)
	tel := p.Telemetry()
	const cid = 3

	var committed [obs.NumCounters]uint64
	for i := range committed {
		committed[i] = 1000 + uint64(i)
	}
	sh := obs.NewRegistry(1).Shard(0)
	sh.Observe(obs.HistAllocNS, 100)
	tel.PublishShard(&haltingWriter{p: p, left: 1 << 20}, cid, &committed, sh, 42)

	var torn [obs.NumCounters]uint64
	for i := range torn {
		torn[i] = 7777
	}
	// Stores per publish: time + counters + histogram vectors + commit.
	total := 1 + int(obs.NumCounters) + int(obs.NumHistos)*obs.HistBuckets + 1
	for budget := 0; budget < total; budget++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("budget %d: publish finished under a smaller store budget than %d", budget, total)
				}
			}()
			tel.PublishShard(&haltingWriter{p: p, left: budget}, cid, &torn, sh, 43)
		}()
		b, ok := tel.ReadBlock(cid)
		if !ok || !b.Consistent {
			t.Fatalf("budget %d: committed block unreadable after torn publish", budget)
		}
		if b.Publishes != 1 || b.TimeNS != 42 {
			t.Fatalf("budget %d: torn publish became visible (publishes=%d time=%d)", budget, b.Publishes, b.TimeNS)
		}
		if b.Counters != committed {
			t.Fatalf("budget %d: committed vector corrupted: %v", budget, b.Counters)
		}
	}
	// Sanity: the full budget does commit.
	tel.PublishShard(&haltingWriter{p: p, left: total}, cid, &torn, sh, 43)
	if b, _ := tel.ReadBlock(cid); b.Publishes != 2 || b.Counters != torn {
		t.Fatalf("complete publish did not commit (publishes=%d)", b.Publishes)
	}
}

// TestTelemetrySeqlockNoTornReads is the torn-read property under the race
// detector: a writer publishes only uniform counter vectors (every counter
// equals the publication's timestamp), so any consistent read that is not
// uniform is a torn snapshot the seqlock failed to suppress.
func TestTelemetrySeqlockNoTornReads(t *testing.T) {
	p := newTestPool(t)
	tel := p.Telemetry()
	const cid = 5
	rounds := 3000
	if testing.Short() {
		rounds = 300
	}
	sh := obs.NewRegistry(1).Shard(0)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				b, ok := tel.ReadBlock(cid)
				if !ok || !b.Consistent {
					continue // not yet published, or retry budget exhausted
				}
				want := b.Counters[0]
				if uint64(b.TimeNS) != want {
					t.Errorf("torn read: time %d does not match counter %d", b.TimeNS, want)
					return
				}
				for i, v := range b.Counters {
					if v != want {
						t.Errorf("torn read: counter %d = %d, rest of vector = %d", i, v, want)
						return
					}
				}
			}
		}()
	}

	var ctrs [obs.NumCounters]uint64
	for k := 1; k <= rounds; k++ {
		for i := range ctrs {
			ctrs[i] = uint64(k)
		}
		tel.PublishShard(p.Device(), cid, &ctrs, sh, int64(k))
	}
	close(stop)
	wg.Wait()
}

func TestQueueDepths(t *testing.T) {
	p := newTestPool(t)
	a := connect(t, p)
	b := connect(t, p)

	if qs := p.Queues(); len(qs) != 0 {
		t.Fatalf("fresh pool reports %d queues", len(qs))
	}
	qr, q, err := a.CreateQueue(b.ID(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		r, blk, err := a.Malloc(64, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Send(q, blk); err != nil {
			t.Fatal(err)
		}
		a.ReleaseRoot(r)
	}
	qs := p.Queues()
	if len(qs) != 1 {
		t.Fatalf("Queues() found %d queues, want 1", len(qs))
	}
	d := qs[0]
	if d.Sender != a.ID() || d.Receiver != b.ID() || d.Capacity != 4 {
		t.Errorf("queue endpoints = %d->%d cap %d, want %d->%d cap 4", d.Sender, d.Receiver, d.Capacity, a.ID(), b.ID())
	}
	if d.Depth() != 2 {
		t.Errorf("queue depth = %d after 2 unreceived sends, want 2", d.Depth())
	}
	bq, err := b.OpenQueue(q)
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := b.Receive(q)
	if err != nil {
		t.Fatal(err)
	}
	b.ReleaseRoot(r)
	if qs := p.Queues(); qs[0].Depth() != 1 {
		t.Errorf("queue depth = %d after one receive, want 1", qs[0].Depth())
	}
	b.ReleaseRoot(bq)
	a.ReleaseRoot(qr)
}
