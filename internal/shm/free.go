package shm

import (
	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/obs"
)

// Reclamation (paper §5.3).
//
// Reclaiming space is the one non-idempotent step that can follow a
// release's commit point, so it is never redone. Two disciplines keep it
// safe across crashes:
//
//   - Plain objects (no embedded references) are reclaimed inline, inside
//     the still-open transaction window: if the client dies mid-reclaim its
//     redo entry is still valid and recovery marks the containing segment
//     POTENTIAL_LEAKING instead of redoing the free. The asynchronous
//     segment-local scan then either observes the free as completed or
//     completes it.
//
//   - Objects with embedded references need a cascade of further release
//     transactions (each reusing the single redo entry), so the parent's
//     transaction must close first. Before it closes, the parent's segment
//     is flagged POTENTIAL_LEAKING; a crash anywhere in the cascade leaves a
//     refcount-zero block in a flagged segment for the scan to finish
//     (recovery's DFS of embedded references, §5.4, runs there).

// flagSegmentLeaking sets the sticky POTENTIAL_LEAKING flag on the segment
// containing addr. Reclaiming a segment (re-claim CAS) clears it by packing
// a fresh state word.
func (c *Client) flagSegmentLeaking(addr layout.Addr) {
	seg := c.geo.SegmentIndexOf(addr)
	if seg < 0 {
		return
	}
	if c.pool.flagLeaking(seg) {
		c.loc[obs.CtrLeakFlag]++
	}
	c.hit(faultinject.AfterLeakFlag)
}

// FlagSegmentLeaking sets the POTENTIAL_LEAKING flag on segment seg (also
// used by the recovery service when replaying a release that hit zero).
func (p *Pool) FlagSegmentLeaking(seg int) {
	if p.flagLeaking(seg) {
		p.obs.Shard(0).Inc(obs.CtrLeakFlag)
	}
}

// flagLeaking sets the flag, reporting whether this call made the 0→1
// transition — only that transition is traced and worth counting (the flag
// is sticky until a scan clears it, so re-flags are routine noise).
func (p *Pool) flagLeaking(seg int) bool {
	a := p.geo.SegStateAddr(seg)
	for {
		w := p.dev.Load(a)
		st := layout.UnpackSegState(w)
		if st.Flags&layout.SegFlagPotentialLeaking != 0 {
			return false
		}
		st.Flags |= layout.SegFlagPotentialLeaking
		if p.dev.CAS(a, w, layout.PackSegState(st)) {
			p.obs.Trace(obs.Event{Type: obs.EvSegmentFlagged, Segment: seg})
			return true
		}
	}
}

// reclaim frees a refcount-zero object whose transaction already closed
// (embed-carrying or change-path objects). The segment is already flagged.
func (c *Client) reclaim(block layout.Addr) {
	c.cascadeFree(block)
}

// cascadeFree releases all embedded references reachable from start
// (iteratively — recovery must handle arbitrarily deep structures without
// growing the Go stack) and frees every object whose count reaches zero.
func (c *Client) cascadeFree(start layout.Addr) {
	stack := []layout.Addr{start}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		m := layout.UnpackMeta(c.h.Load(b + layout.MetaOff))
		for i := 0; i < int(m.EmbedCnt); i++ {
			ea := b + layout.DataOff + layout.Addr(i)
			t := c.h.Load(ea)
			if t == 0 {
				continue
			}
			_, pending, err := c.releaseTxn(ea, t)
			c.hit(faultinject.MidCascade)
			if err != nil {
				continue // stale/fenced: leave for the scan
			}
			if pending {
				// Embed-carrying child hit zero: releaseTxn flagged its
				// segment; finish its cascade from the explicit stack. Plain
				// children were inline-reclaimed by releaseTxn itself.
				stack = append(stack, t)
			}
		}
		c.reclaimRaw(b, m)
	}
}

// reclaimRaw frees one block whose reference count is zero and whose
// embedded references (if any) have been released. It marks the block free
// — recording the freeing client's ID in the meta word's embed field — and
// then either parks it on the owner's pending list (owner-local free:
// publication to the page free list is deferred to the next epoch burst,
// shadow.go) or pushes it onto the segment's client_free list (cross-client
// deferred free, paper Figure 3).
//
// Order matters: header zero, then meta free-mark. After the free-mark the
// block is in the "lost" state — free-marked, on no list — which is exactly
// what the owner-local deferral relies on: if the freeer crashes before its
// publication burst, the segment-local scan re-links the block once the
// recorded freeer is dead — at which point the freeer is RAS-fenced, so its
// own late publication can never land and double-insert the block.
// The caller passes the block's unpacked meta (it always has it in hand from
// the release transaction), saving the re-load here.
func (c *Client) reclaimRaw(block layout.Addr, m layout.Meta) {
	if m.Flags&layout.MetaHuge != 0 {
		c.freeHuge(block, m)
		return
	}
	seg := c.geo.SegmentIndexOf(block)
	if seg < 0 {
		return
	}
	c.loc[obs.CtrFree]++
	c.dropBlock(block)
	c.h.Store(block+layout.HeaderOff, 0)
	c.h.Store(block+layout.MetaOff, layout.PackMeta(layout.Meta{
		Flags: 0, EmbedCnt: uint16(c.cid), BlockWords: m.BlockWords,
	}))
	c.hit(faultinject.AfterMetaFree)

	if op := c.ownedPageOf(seg, block); op != nil {
		// Owner-local free: two device stores total. The list/counter
		// publication is deferred (shadow.go) — and skipped entirely if a
		// malloc reuses the block from the pending tier first.
		c.deferFree(op, block)
	} else {
		// Cross-client deferred free: push onto the segment's client_free
		// list; the owner collects in its slow path.
		cf := c.geo.SegClientFreeAddr(seg)
		for {
			old := c.h.Load(cf)
			c.h.Store(block+freeNextOff, old)
			if c.h.CAS(cf, old, block) {
				break
			}
			if c.h.Fenced() {
				return
			}
		}
	}
	c.hit(faultinject.AfterFreePush)
}

// freeHuge returns a huge object's segments to the free pool: bodies from
// last to first, the head last, so a partial free is re-runnable — the head
// segment's survival marks the free as incomplete, and already-freed (or
// re-claimed) segments are recognized by their changed state/cid and
// skipped.
func (c *Client) freeHuge(block layout.Addr, m layout.Meta) {
	head := c.geo.SegmentIndexOf(block)
	if head < 0 {
		return
	}
	headSt := layout.UnpackSegState(c.h.Load(c.geo.SegStateAddr(head)))
	if headSt.State != layout.SegHugeHead {
		return // already freed (idempotent re-run)
	}
	c.loc[obs.CtrFreeHuge]++
	owner := headSt.CID
	k := int((m.BlockWords + c.geo.SegmentWords - 1) / c.geo.SegmentWords)
	// Erase the object identity before releasing memory.
	c.h.Store(block+layout.HeaderOff, 0)
	c.h.Store(block+layout.MetaOff, 0)
	for j := k - 1; j >= 1; j-- {
		a := c.geo.SegStateAddr(head + j)
		st := layout.UnpackSegState(c.h.Load(a))
		if st.CID == owner && st.State == layout.SegHugeBody {
			// The object's payload covered this segment's base words; scrub
			// them so a future claimer's crash recovery never reads leftover
			// payload as a block header (see releaseSegment).
			bb := c.geo.SegmentBase(head + j)
			c.h.Store(bb+layout.HeaderOff, 0)
			c.h.Store(bb+layout.MetaOff, 0)
			c.h.Store(a, layout.PackSegState(layout.SegState{
				Version: st.Version + 1, State: layout.SegFree,
			}))
		}
	}
	c.releaseSegment(head)
}
