package shm_test

import (
	"math/rand"
	"testing"

	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/shm"
)

// Access-budget regression tests: the fast-path overhaul's gains are counted
// in device words touched per operation, so they are pinned here as budgets.
// The budgets carry a little slack over the measured steady state (malloc
// ≈7.2, free ≈10, send+receive+release 34, batched trio ≈23 at the time of
// writing — after deferred publication, the reference shadow caches, and the
// CAS-free receive move) to absorb incidental slow-path amortization, but
// sit far below the previous generation's costs (malloc ≈10.1, free 22,
// trio 57) — a regression that reintroduces per-op metadata traffic trips
// them immediately.

func newCountingPool(t *testing.T) *shm.Pool {
	t.Helper()
	p, err := shm.NewPool(shm.Config{
		Geometry: layout.GeometryConfig{
			MaxClients:   8,
			NumSegments:  128,
			SegmentWords: 1 << 15,
			PageWords:    1 << 11,
		},
		CountAccesses: true,
	})
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	return p
}

func TestDeviceAccessBudget(t *testing.T) {
	p := newCountingPool(t)
	c := connect(t, p)
	dev := p.Device()
	const n = 4000
	roots := make([]layout.Addr, 0, n)
	// Warm up so page claiming amortizes out of the measured window.
	for i := 0; i < 256; i++ {
		r, _, err := c.Malloc(64, 0)
		if err != nil {
			t.Fatal(err)
		}
		roots = append(roots, r)
	}
	for _, r := range roots {
		if _, err := c.ReleaseRoot(r); err != nil {
			t.Fatal(err)
		}
	}
	roots = roots[:0]

	perOp := func(f func()) float64 {
		dev.ResetStats()
		f()
		s := dev.Stats()
		return float64(s.Loads+s.Stores+s.CASes) / n
	}

	mallocCost := perOp(func() {
		for i := 0; i < n; i++ {
			r, _, err := c.Malloc(64, 0)
			if err != nil {
				t.Fatal(err)
			}
			roots = append(roots, r)
		}
	})
	freeCost := perOp(func() {
		for _, r := range roots {
			if _, err := c.ReleaseRoot(r); err != nil {
				t.Fatal(err)
			}
		}
	})
	if mallocCost > 10 {
		t.Errorf("malloc touches %.2f device words/op, budget 10", mallocCost)
	}
	if freeCost > 12 {
		t.Errorf("free touches %.2f device words/op, budget 12", freeCost)
	}
	if pair := mallocCost + freeCost; pair > 20 {
		t.Errorf("malloc+free pair touches %.2f device words, budget 20", pair)
	}

	snd := connect(t, p)
	rcv := connect(t, p)
	_, q, err := snd.CreateQueue(rcv.ID(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rcv.OpenQueue(q); err != nil {
		t.Fatal(err)
	}
	_, obj, err := snd.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	trioCost := perOp(func() {
		for i := 0; i < n; i++ {
			if err := snd.Send(q, obj); err != nil {
				t.Fatal(err)
			}
			root, _, err := rcv.Receive(q)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rcv.ReleaseRoot(root); err != nil {
				t.Fatal(err)
			}
		}
	})
	if trioCost > 38 {
		t.Errorf("send+receive+release touches %.2f device words, budget 38", trioCost)
	}

	// Batched trio (same shape as the benchmark's batch row): SendBatch and
	// ReceiveBatch amortize the tail/head stores across the batch, and the
	// batch's receive moves all close under one era bump.
	const batch = 40 // queue capacity is 64
	targets := make([]layout.Addr, batch)
	for i := range targets {
		targets[i] = obj
	}
	batchCost := perOp(func() {
		for i := 0; i < n/batch; i++ {
			if sent, err := snd.SendBatch(q, targets); err != nil || sent != batch {
				t.Fatalf("SendBatch: sent %d, err %v", sent, err)
			}
			broots, _, err := rcv.ReceiveBatch(q, batch)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range broots {
				if _, err := rcv.ReleaseRoot(r); err != nil {
					t.Fatal(err)
				}
			}
		}
	}) * float64(n) / float64(n/batch*batch) // perOp divides by n; renormalize to items
	if batchCost > 27 {
		t.Errorf("batched trio touches %.2f device words/item, budget 27", batchCost)
	}
}

// TestShadowCoherentAfterWorkload drives a mixed workload — allocation in
// several size classes, frees in shuffled order, cross-client frees through
// the deferred list, embedded attach/release, and queue traffic — then
// verifies every client's shadow word-for-word against the device.
func TestShadowCoherentAfterWorkload(t *testing.T) {
	p := newTestPool(t)
	a := connect(t, p)
	b := connect(t, p)
	rng := rand.New(rand.NewSource(7))

	type held struct{ root, block layout.Addr }
	var live []held
	for i := 0; i < 3000; i++ {
		switch {
		case len(live) == 0 || rng.Intn(3) != 0:
			size := []int{16, 64, 256, 900}[rng.Intn(4)]
			root, block, err := a.Malloc(size, 0)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, held{root, block})
		default:
			j := rng.Intn(len(live))
			h := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			if rng.Intn(2) == 0 {
				// Cross-client release path: b attaches, a drops its root,
				// then b's release defers the free onto a's client_free list.
				broot, err := b.AttachRoot(h.block)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := a.ReleaseRoot(h.root); err != nil {
					t.Fatal(err)
				}
				if _, err := b.ReleaseRoot(broot); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := a.ReleaseRoot(h.root); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Queue traffic between the two clients.
	_, q, err := a.CreateQueue(b.ID(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.OpenQueue(q); err != nil {
		t.Fatal(err)
	}
	_, obj, err := a.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := a.Send(q, obj); err != nil {
			t.Fatal(err)
		}
		root, _, err := b.Receive(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.ReleaseRoot(root); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range live {
		if _, err := a.ReleaseRoot(h.root); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.CheckShadow(); err != nil {
		t.Errorf("client a: %v", err)
	}
	if err := b.CheckShadow(); err != nil {
		t.Errorf("client b: %v", err)
	}
	mustValidate(t, p)
}

func TestQueueBatchRoundTrip(t *testing.T) {
	p := newTestPool(t)
	s := connect(t, p)
	r := connect(t, p)
	_, q, err := s.CreateQueue(r.ID(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.OpenQueue(q); err != nil {
		t.Fatal(err)
	}

	var targets []layout.Addr
	var sroots []layout.Addr
	for i := 0; i < 12; i++ {
		root, block, err := s.Malloc(64, 0)
		if err != nil {
			t.Fatal(err)
		}
		targets = append(targets, block)
		sroots = append(sroots, root)
	}

	// Capacity 8: a 12-target batch must send exactly 8, no error.
	sent, err := s.SendBatch(q, targets)
	if err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	if sent != 8 {
		t.Fatalf("sent %d, want 8 (capacity-limited)", sent)
	}
	if _, err := s.SendBatch(q, targets[sent:]); err != shm.ErrQueueFull {
		t.Fatalf("SendBatch on full queue: %v, want ErrQueueFull", err)
	}

	roots, got, err := r.ReceiveBatch(q, 16)
	if err != nil {
		t.Fatalf("ReceiveBatch: %v", err)
	}
	if len(got) != 8 {
		t.Fatalf("received %d, want 8", len(got))
	}
	for i, g := range got {
		if g != targets[i] {
			t.Fatalf("slot %d: got %#x, want %#x (FIFO order)", i, g, targets[i])
		}
	}
	if _, _, err := r.ReceiveBatch(q, 4); err != shm.ErrQueueEmpty {
		t.Fatalf("ReceiveBatch on empty queue: %v, want ErrQueueEmpty", err)
	}
	if n := r.Metrics().Get(obs.CtrQueueStaleSlot); n != 0 {
		t.Fatalf("clean run counted %d stale slots", n)
	}

	// The drained remainder goes through in a second batch.
	if sent, err = s.SendBatch(q, targets[8:]); err != nil || sent != 4 {
		t.Fatalf("second SendBatch: sent %d, err %v", sent, err)
	}
	roots2, got2, err := r.ReceiveBatch(q, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 4 || got2[0] != targets[8] {
		t.Fatalf("second batch: %d items, first %#x", len(got2), got2[0])
	}

	// Release receiver-side then sender-side roots; everything must come back.
	for _, root := range roots {
		if _, err := r.ReleaseRoot(root); err != nil {
			t.Fatal(err)
		}
	}
	for _, root := range roots2 {
		if _, err := r.ReleaseRoot(root); err != nil {
			t.Fatal(err)
		}
	}
	for _, root := range sroots {
		if _, err := s.ReleaseRoot(root); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CheckShadow(); err != nil {
		t.Errorf("sender shadow: %v", err)
	}
	if err := r.CheckShadow(); err != nil {
		t.Errorf("receiver shadow: %v", err)
	}
	mustValidate(t, p)
}
