package check_test

// The validator is the oracle of the fault-injection study, so it needs its
// own negative tests: deliberately corrupt a healthy pool in each of the
// ways the §6.2.2 study looks for and verify the corresponding issue is
// reported. A checker that can't see planted corruption proves nothing.

import (
	"testing"

	"repro/internal/check"
	"repro/internal/layout"
	"repro/internal/shm"
)

func newPool(t *testing.T) *shm.Pool {
	t.Helper()
	p, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients: 4, NumSegments: 8, SegmentWords: 1 << 13, PageWords: 1 << 9,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func hasIssue(res *check.Result, kind check.IssueKind) bool {
	for _, is := range res.Issues {
		if is.Kind == kind {
			return true
		}
	}
	return false
}

func TestCleanPoolValidates(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	root, _, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res := check.Validate(p); !res.Clean() {
		t.Fatalf("healthy pool reported issues: %v", res.Issues)
	}
	if _, err := c.ReleaseRoot(root); err != nil {
		t.Fatal(err)
	}
	if res := check.Validate(p); !res.Clean() {
		t.Fatalf("healthy pool reported issues after release: %v", res.Issues)
	}
}

func TestDetectsLeak(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	root, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: inflate the reference count without adding a reference.
	hdr := c.HeaderOf(block)
	hdr.RefCnt++
	p.Device().Store(block+layout.HeaderOff, layout.PackHeader(hdr))
	res := check.Validate(p)
	if !hasIssue(res, check.Leak) {
		t.Fatalf("inflated refcount not reported as leak: %v", res.Issues)
	}
	_ = root
}

func TestDetectsUnderCount(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	_, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: drop the count below the actual reference population.
	hdr := c.HeaderOf(block)
	hdr.RefCnt = 0
	p.Device().Store(block+layout.HeaderOff, layout.PackHeader(hdr))
	res := check.Validate(p)
	if !hasIssue(res, check.UnderCount) && !hasIssue(res, check.StuckReclaim) {
		t.Fatalf("under-counted object not reported: %v", res.Issues)
	}
}

func TestDetectsWildPointer(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	_, parent, err := c.Malloc(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	victimRoot, victim, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReleaseRoot(victimRoot); err != nil {
		t.Fatal(err)
	}
	// Corrupt: plant the freed block's address in an embedded reference
	// without attaching (no count, target already free).
	p.Device().Store(parent+layout.DataOff, victim)
	res := check.Validate(p)
	if !hasIssue(res, check.WildPointer) {
		t.Fatalf("dangling embedded reference not reported: %v", res.Issues)
	}
}

func TestDetectsStuckReclaim(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	root, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: zero the count AND null the RootRef without freeing the block
	// (a reclaim that never happened).
	hdr := c.HeaderOf(block)
	hdr.RefCnt = 0
	p.Device().Store(block+layout.HeaderOff, layout.PackHeader(hdr))
	p.Device().Store(root+layout.RootRefPptrOff, 0)
	res := check.Validate(p)
	if !hasIssue(res, check.StuckReclaim) {
		t.Fatalf("unreclaimed zero-count object not reported: %v", res.Issues)
	}
}

func TestDetectsDoubleFree(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	root, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReleaseRoot(root); err != nil {
		t.Fatal(err)
	}
	// Publish the deferred free so the block is on its page free list, then
	// corrupt: push it a second time through the segment's client_free list.
	c.Flush()
	geo := p.Geometry()
	seg := geo.SegmentIndexOf(block)
	cf := geo.SegClientFreeAddr(seg)
	p.Device().Store(block+layout.DataOff, p.Device().Load(cf))
	p.Device().Store(cf, block)
	res := check.Validate(p)
	if !hasIssue(res, check.DoubleFree) {
		t.Fatalf("double-listed block not reported: %v", res.Issues)
	}
}

func TestDetectsLostFreeBlock(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	root, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReleaseRoot(root); err != nil {
		t.Fatal(err)
	}
	// Corrupt: detach the freed block from its page free list.
	geo := p.Geometry()
	seg := geo.SegmentIndexOf(block)
	pg := geo.PageIndexOf(seg, block)
	metaA := geo.PageMetaAddr(seg, pg)
	if p.Device().Load(metaA+1) != block { // pmFree
		t.Skip("block not at free-list head; layout changed")
	}
	p.Device().Store(metaA+1, p.Device().Load(block+layout.DataOff))
	res := check.Validate(p)
	if !hasIssue(res, check.LostFreeBlock) {
		t.Fatalf("lost free block not reported: %v", res.Issues)
	}
}

func TestDetectsBadStructure(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	if _, _, err := c.Malloc(64, 0); err != nil {
		t.Fatal(err)
	}
	// Corrupt: claim more pages than a segment has.
	geo := p.Geometry()
	p.Device().Store(geo.SegNextPageAddr(0), uint64(geo.PagesPerSegment+5))
	res := check.Validate(p)
	if !hasIssue(res, check.BadStructure) {
		t.Fatalf("bad page counter not reported: %v", res.Issues)
	}
}

func TestNamedRootCountsAsReference(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	root, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PublishRoot(2, block); err != nil {
		t.Fatal(err)
	}
	if res := check.Validate(p); !res.Clean() {
		t.Fatalf("published root flagged: %v", res.Issues)
	}
	// Dropping the client's own ref leaves the named root holding the object.
	if freed, err := c.ReleaseRoot(root); err != nil || freed {
		t.Fatalf("freed=%v err=%v", freed, err)
	}
	if res := check.Validate(p); !res.Clean() || res.AllocatedObjects != 1 {
		t.Fatalf("named-root-held object flagged: %v", res.Issues)
	}
	if err := c.UnpublishRoot(2); err != nil {
		t.Fatal(err)
	}
	if res := check.Validate(p); !res.Clean() || res.AllocatedObjects != 0 {
		t.Fatalf("after unpublish: %d objects, %v", res.AllocatedObjects, res.Issues)
	}
}

// --- fsck extensions: queue, era-matrix, client-slot, redo, free-list ---

func newQueuePool(t *testing.T) *shm.Pool {
	t.Helper()
	p, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients: 4, NumSegments: 8, SegmentWords: 1 << 13, PageWords: 1 << 9, MaxQueues: 4,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDetectsQueueHeadAheadOfTail(t *testing.T) {
	p := newQueuePool(t)
	c, _ := p.Connect()
	o, _ := p.Connect()
	_, q, err := c.CreateQueue(o.ID(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: head index beyond the tail (a receive that never was sent).
	headA := q + layout.DataOff + 4 + 1
	p.Device().Store(headA, 5)
	res := check.Validate(p)
	if !hasIssue(res, check.QueueCorrupt) {
		t.Fatalf("head>tail queue not reported: %v", res.Issues)
	}
}

func TestDetectsQueueOverCapacity(t *testing.T) {
	p := newQueuePool(t)
	c, _ := p.Connect()
	o, _ := p.Connect()
	_, q, err := c.CreateQueue(o.ID(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: more in flight than the ring has slots.
	tailA := q + layout.DataOff + 4 + 2
	p.Device().Store(tailA, 9)
	res := check.Validate(p)
	if !hasIssue(res, check.QueueCorrupt) {
		t.Fatalf("over-capacity queue not reported: %v", res.Issues)
	}
}

func TestDetectsQueueRegistryMismatch(t *testing.T) {
	p := newQueuePool(t)
	c, _ := p.Connect()
	o, _ := p.Connect()
	_, q, err := c.CreateQueue(o.ID(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: the registry slot this queue claims no longer points back.
	info := c.QueueInfoOf(q)
	p.Device().Store(p.Geometry().QueueRegAddr(info.RegIdx), 0)
	res := check.Validate(p)
	if !hasIssue(res, check.QueueCorrupt) {
		t.Fatalf("broken registry backref not reported: %v", res.Issues)
	}
}

func TestDetectsEraMatrixViolation(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	if _, _, err := c.Malloc(64, 0); err != nil {
		t.Fatal(err)
	}
	// Corrupt: client 2 claims to have observed an era of client 1 far beyond
	// client 1's own era counter.
	geo := p.Geometry()
	p.Device().Store(geo.EraAddr(2, c.ID()), 1<<20)
	res := check.Validate(p)
	if !hasIssue(res, check.EraMatrix) {
		t.Fatalf("impossible observed era not reported: %v", res.Issues)
	}
}

func TestDetectsStaleRedo(t *testing.T) {
	p := newPool(t)
	// Corrupt: a valid redo entry on a client slot that is FREE — a recovery
	// pass must clear the entry before the slot can be handed out again.
	p.Device().Store(p.Geometry().ClientRedoBase(2), 1<<63)
	res := check.Validate(p)
	if !hasIssue(res, check.StaleRedo) {
		t.Fatalf("valid redo on free slot not reported: %v", res.Issues)
	}
}

func TestDetectsBadClientStatus(t *testing.T) {
	p := newPool(t)
	p.Device().Store(p.Geometry().ClientStatusAddr(1), 77)
	res := check.Validate(p)
	if !hasIssue(res, check.BadStructure) {
		t.Fatalf("garbage client status not reported: %v", res.Issues)
	}
}

func TestDetectsStaleLeaseGenParity(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	// Corrupt: an ALIVE client whose lease generation reads even — as if the
	// slot had already been released while the status word still says leased.
	geo := p.Geometry()
	p.Device().Store(geo.SlotGenAddr(c.ID()), p.SlotGeneration(c.ID())+1)
	res := check.Validate(p)
	if !hasIssue(res, check.StaleLease) {
		t.Fatalf("even lease generation on ALIVE slot not reported: %v", res.Issues)
	}
}

func TestDetectsStaleLeaseBitmap(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	// Corrupt: re-set the claimed client's free-slot bitmap bit, advertising a
	// leased slot as claimable.
	geo := p.Geometry()
	a, bit := geo.SlotMapBit(c.ID())
	p.Device().Store(a, p.Device().Load(a)|bit)
	res := check.Validate(p)
	if !hasIssue(res, check.StaleLease) {
		t.Fatalf("bitmap bit set on ALIVE slot not reported: %v", res.Issues)
	}
}

func TestDetectsFreeListEscape(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	root, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReleaseRoot(root); err != nil {
		t.Fatal(err)
	}
	// Corrupt: point the segment's client_free list at an address outside the
	// segment (a torn or wild pointer must not send the walker off-pool).
	seg := p.Geometry().SegmentIndexOf(block)
	p.Device().Store(p.Geometry().SegClientFreeAddr(seg), 3)
	res := check.Validate(p)
	if !hasIssue(res, check.BadStructure) {
		t.Fatalf("out-of-segment free node not reported: %v", res.Issues)
	}
}
