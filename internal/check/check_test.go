package check_test

// The validator is the oracle of the fault-injection study, so it needs its
// own negative tests: deliberately corrupt a healthy pool in each of the
// ways the §6.2.2 study looks for and verify the corresponding issue is
// reported. A checker that can't see planted corruption proves nothing.

import (
	"testing"

	"repro/internal/check"
	"repro/internal/layout"
	"repro/internal/shm"
)

func newPool(t *testing.T) *shm.Pool {
	t.Helper()
	p, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients: 4, NumSegments: 8, SegmentWords: 1 << 13, PageWords: 1 << 9,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func hasIssue(res *check.Result, kind check.IssueKind) bool {
	for _, is := range res.Issues {
		if is.Kind == kind {
			return true
		}
	}
	return false
}

func TestCleanPoolValidates(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	root, _, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res := check.Validate(p); !res.Clean() {
		t.Fatalf("healthy pool reported issues: %v", res.Issues)
	}
	if _, err := c.ReleaseRoot(root); err != nil {
		t.Fatal(err)
	}
	if res := check.Validate(p); !res.Clean() {
		t.Fatalf("healthy pool reported issues after release: %v", res.Issues)
	}
}

func TestDetectsLeak(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	root, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: inflate the reference count without adding a reference.
	hdr := c.HeaderOf(block)
	hdr.RefCnt++
	p.Device().Store(block+layout.HeaderOff, layout.PackHeader(hdr))
	res := check.Validate(p)
	if !hasIssue(res, check.Leak) {
		t.Fatalf("inflated refcount not reported as leak: %v", res.Issues)
	}
	_ = root
}

func TestDetectsUnderCount(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	_, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: drop the count below the actual reference population.
	hdr := c.HeaderOf(block)
	hdr.RefCnt = 0
	p.Device().Store(block+layout.HeaderOff, layout.PackHeader(hdr))
	res := check.Validate(p)
	if !hasIssue(res, check.UnderCount) && !hasIssue(res, check.StuckReclaim) {
		t.Fatalf("under-counted object not reported: %v", res.Issues)
	}
}

func TestDetectsWildPointer(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	_, parent, err := c.Malloc(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	victimRoot, victim, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReleaseRoot(victimRoot); err != nil {
		t.Fatal(err)
	}
	// Corrupt: plant the freed block's address in an embedded reference
	// without attaching (no count, target already free).
	p.Device().Store(parent+layout.DataOff, victim)
	res := check.Validate(p)
	if !hasIssue(res, check.WildPointer) {
		t.Fatalf("dangling embedded reference not reported: %v", res.Issues)
	}
}

func TestDetectsStuckReclaim(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	root, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: zero the count AND null the RootRef without freeing the block
	// (a reclaim that never happened).
	hdr := c.HeaderOf(block)
	hdr.RefCnt = 0
	p.Device().Store(block+layout.HeaderOff, layout.PackHeader(hdr))
	p.Device().Store(root+layout.RootRefPptrOff, 0)
	res := check.Validate(p)
	if !hasIssue(res, check.StuckReclaim) {
		t.Fatalf("unreclaimed zero-count object not reported: %v", res.Issues)
	}
}

func TestDetectsDoubleFree(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	root, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReleaseRoot(root); err != nil {
		t.Fatal(err)
	}
	// Corrupt: push the freed block onto its page free list a second time
	// through the segment's client_free list.
	geo := p.Geometry()
	seg := geo.SegmentIndexOf(block)
	cf := geo.SegClientFreeAddr(seg)
	p.Device().Store(block+layout.DataOff, p.Device().Load(cf))
	p.Device().Store(cf, block)
	res := check.Validate(p)
	if !hasIssue(res, check.DoubleFree) {
		t.Fatalf("double-listed block not reported: %v", res.Issues)
	}
}

func TestDetectsLostFreeBlock(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	root, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReleaseRoot(root); err != nil {
		t.Fatal(err)
	}
	// Corrupt: detach the freed block from its page free list.
	geo := p.Geometry()
	seg := geo.SegmentIndexOf(block)
	pg := geo.PageIndexOf(seg, block)
	metaA := geo.PageMetaAddr(seg, pg)
	if p.Device().Load(metaA+1) != block { // pmFree
		t.Skip("block not at free-list head; layout changed")
	}
	p.Device().Store(metaA+1, p.Device().Load(block+layout.DataOff))
	res := check.Validate(p)
	if !hasIssue(res, check.LostFreeBlock) {
		t.Fatalf("lost free block not reported: %v", res.Issues)
	}
}

func TestDetectsBadStructure(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	if _, _, err := c.Malloc(64, 0); err != nil {
		t.Fatal(err)
	}
	// Corrupt: claim more pages than a segment has.
	geo := p.Geometry()
	p.Device().Store(geo.SegNextPageAddr(0), uint64(geo.PagesPerSegment+5))
	res := check.Validate(p)
	if !hasIssue(res, check.BadStructure) {
		t.Fatalf("bad page counter not reported: %v", res.Issues)
	}
}

func TestNamedRootCountsAsReference(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	root, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PublishRoot(2, block); err != nil {
		t.Fatal(err)
	}
	if res := check.Validate(p); !res.Clean() {
		t.Fatalf("published root flagged: %v", res.Issues)
	}
	// Dropping the client's own ref leaves the named root holding the object.
	if freed, err := c.ReleaseRoot(root); err != nil || freed {
		t.Fatalf("freed=%v err=%v", freed, err)
	}
	if res := check.Validate(p); !res.Clean() || res.AllocatedObjects != 1 {
		t.Fatalf("named-root-held object flagged: %v", res.Issues)
	}
	if err := c.UnpublishRoot(2); err != nil {
		t.Fatal(err)
	}
	if res := check.Validate(p); !res.Clean() || res.AllocatedObjects != 0 {
		t.Fatalf("after unpublish: %d objects, %v", res.AllocatedObjects, res.Issues)
	}
}
