package check_test

// The repairing fsck gets the same treatment as the validator: corrupt a
// healthy pool in each fault class, run Repair, and demand either a clean
// revalidation or an explicit quarantine with accounted blast radius.
// A repair that silently accepts damage proves nothing.

import (
	"testing"

	"repro/internal/check"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/shm"
)

// repairClean runs Repair and fails the test unless the pool comes back
// validator-clean.
func repairClean(t *testing.T, p *shm.Pool) *check.RepairReport {
	t.Helper()
	rep := check.Repair(p, check.RepairConfig{Log: t.Logf})
	if rep.Pre == nil || rep.Post == nil {
		t.Fatal("repair report missing pre/post results")
	}
	if !rep.Repaired {
		t.Fatalf("pool not repaired after %d rounds, post issues: %v", rep.Rounds, rep.Post.Issues)
	}
	return rep
}

func TestRepairCleanPoolIsNoop(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	if _, _, err := c.Malloc(64, 0); err != nil {
		t.Fatal(err)
	}
	rep := repairClean(t, p)
	if len(rep.Actions) != 0 || rep.Blast.WordsRewritten != 0 {
		t.Fatalf("clean pool provoked repairs: %v", rep.Actions)
	}
}

func TestRepairInflatedRefCount(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	_, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	hdr := c.HeaderOf(block)
	hdr.RefCnt += 3
	p.Device().Store(block+layout.HeaderOff, layout.PackHeader(hdr))
	rep := repairClean(t, p)
	if rep.Blast.ObjectsRepaired == 0 {
		t.Fatal("leak repair not accounted as an object repair")
	}
	if got := c.HeaderOf(block); got.RefCnt != 1 {
		t.Fatalf("refcount not rewritten to truth: %d", got.RefCnt)
	}
}

func TestRepairLeakToZeroReclaims(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	root, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Orphan the object: null the RootRef without dropping the count.
	p.Device().Store(root+layout.RootRefPptrOff, 0)
	rep := repairClean(t, p)
	if rep.Post.AllocatedObjects != 0 {
		t.Fatalf("orphaned object not reclaimed: %d allocated", rep.Post.AllocatedObjects)
	}
	_ = block
}

func TestRepairStuckReclaim(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	root, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	hdr := c.HeaderOf(block)
	hdr.RefCnt = 0
	p.Device().Store(block+layout.HeaderOff, layout.PackHeader(hdr))
	p.Device().Store(root+layout.RootRefPptrOff, 0)
	rep := repairClean(t, p)
	if rep.Post.AllocatedObjects != 0 {
		t.Fatalf("stuck object not reclaimed: %d allocated", rep.Post.AllocatedObjects)
	}
}

func TestRepairWildPointerSevers(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	_, parent, err := c.Malloc(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	victimRoot, victim, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReleaseRoot(victimRoot); err != nil {
		t.Fatal(err)
	}
	p.Device().Store(parent+layout.DataOff, uint64(victim))
	rep := repairClean(t, p)
	if rep.Blast.RefsSevered != 1 || rep.Blast.ObjectsLost != 1 {
		t.Fatalf("sever not accounted: severed=%d lost=%d",
			rep.Blast.RefsSevered, rep.Blast.ObjectsLost)
	}
	if got := p.Device().Load(parent + layout.DataOff); got != 0 {
		t.Fatalf("dangling reference survived repair: %#x", got)
	}
}

func TestRepairWildPointerResurrects(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	_, parent, err := c.Malloc(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	victimRoot, victim, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReleaseRoot(victimRoot); err != nil {
		t.Fatal(err)
	}
	// The freed block's header still agrees with the one reference about to
	// point at it — the classic "free raced the attach" shape.
	p.Device().Store(parent+layout.DataOff, uint64(victim))
	p.Device().Store(victim+layout.HeaderOff,
		layout.PackHeader(layout.Header{LCID: uint16(c.ID()), RefCnt: 1}))
	rep := repairClean(t, p)
	if rep.Blast.RefsSevered != 0 {
		t.Fatal("matching reference severed instead of resurrected")
	}
	if rep.Blast.ObjectsRepaired == 0 {
		t.Fatal("resurrection not accounted")
	}
	if got := p.Device().Load(parent + layout.DataOff); got != uint64(victim) {
		t.Fatalf("reference lost during resurrection: %#x", got)
	}
}

func TestRepairDoubleFree(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	root, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReleaseRoot(root); err != nil {
		t.Fatal(err)
	}
	geo := p.Geometry()
	seg := geo.SegmentIndexOf(block)
	cf := geo.SegClientFreeAddr(seg)
	p.Device().Store(block+layout.DataOff, p.Device().Load(cf))
	p.Device().Store(cf, uint64(block))
	repairClean(t, p)
}

func TestRepairLostFreeBlock(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	root, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReleaseRoot(root); err != nil {
		t.Fatal(err)
	}
	geo := p.Geometry()
	seg := geo.SegmentIndexOf(block)
	pg := geo.PageIndexOf(seg, block)
	metaA := geo.PageMetaAddr(seg, pg)
	if p.Device().Load(metaA+1) != uint64(block) {
		t.Skip("block not at free-list head; layout changed")
	}
	p.Device().Store(metaA+1, p.Device().Load(block+layout.DataOff))
	repairClean(t, p)
}

func TestRepairSuperblock(t *testing.T) {
	p := newPool(t)
	p.Device().Store(layout.SuperOffSegWords, 12345)
	rep := repairClean(t, p)
	if got := p.Device().Load(layout.SuperOffSegWords); got != p.Geometry().SegmentWords {
		t.Fatalf("superblock word not restored: %d", got)
	}
	if len(rep.Actions) == 0 {
		t.Fatal("superblock rewrite not recorded")
	}
}

func TestRepairTelemetryHeader(t *testing.T) {
	p := newPool(t)
	p.Device().Store(p.Geometry().TelemetryBase, 0xdeadbeef)
	repairClean(t, p)
	if err := p.Telemetry().Validate(); err != nil {
		t.Fatalf("telemetry still refused after repair: %v", err)
	}
}

func TestRepairPageCounterOverclaim(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	if _, _, err := c.Malloc(64, 0); err != nil {
		t.Fatal(err)
	}
	geo := p.Geometry()
	p.Device().Store(geo.SegNextPageAddr(0), uint64(geo.PagesPerSegment+5))
	repairClean(t, p)
	if got := p.Device().Load(geo.SegNextPageAddr(0)); got > uint64(geo.PagesPerSegment) {
		t.Fatalf("page counter still over-claiming: %d", got)
	}
}

func TestRepairUnknownSegmentState(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	_, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	geo := p.Geometry()
	seg := geo.SegmentIndexOf(block)
	st := p.SegState(seg)
	st.State = 9
	p.Device().Store(geo.SegStateAddr(seg), layout.PackSegState(st))
	rep := repairClean(t, p)
	if rep.Post.AllocatedObjects != 1 {
		t.Fatalf("reconstruction lost the live object: %d allocated", rep.Post.AllocatedObjects)
	}
}

func TestRepairUnknownPageKindQuarantines(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	_, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	geo := p.Geometry()
	seg := geo.SegmentIndexOf(block)
	pg := geo.PageIndexOf(seg, block)
	metaA := geo.PageMetaAddr(seg, pg)
	info := layout.UnpackPageMeta(p.Device().Load(metaA))
	info.Kind = 9
	p.Device().Store(metaA, layout.PackPageMeta(info))
	rep := repairClean(t, p)
	if rep.Blast.PagesQuarantined == 0 || rep.Post.QuarantinedPages == 0 {
		t.Fatalf("unreconstructable page not quarantined: %+v", rep.Blast)
	}
}

func TestRepairBadSizeClassQuarantines(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	_, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	geo := p.Geometry()
	seg := geo.SegmentIndexOf(block)
	pg := geo.PageIndexOf(seg, block)
	metaA := geo.PageMetaAddr(seg, pg)
	info := layout.UnpackPageMeta(p.Device().Load(metaA))
	info.SizeClass = 99
	p.Device().Store(metaA, layout.PackPageMeta(info))
	rep := repairClean(t, p)
	if rep.Blast.PagesQuarantined == 0 {
		t.Fatalf("bad-class page not quarantined: %+v", rep.Blast)
	}
}

func TestRepairBumpPointerEscape(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	_, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	geo := p.Geometry()
	seg := geo.SegmentIndexOf(block)
	pg := geo.PageIndexOf(seg, block)
	metaA := geo.PageMetaAddr(seg, pg)
	p.Device().Store(metaA+2, uint64(geo.PageBase(seg, pg))+10*geo.PageWords)
	rep := repairClean(t, p)
	if rep.Post.AllocatedObjects != 1 {
		t.Fatalf("bump clamp lost the live object: %d allocated", rep.Post.AllocatedObjects)
	}
}

func TestRepairHugeSpan(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	geo := p.Geometry()
	// Big enough that no size class fits: forces the huge multi-segment path.
	_, block, err := c.Malloc(int(geo.SegmentWords)*8*2, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := layout.UnpackMeta(p.Device().Load(block + layout.MetaOff))
	m.BlockWords += 5 * geo.SegmentWords
	p.Device().Store(block+layout.MetaOff, layout.PackMeta(m))
	rep := repairClean(t, p)
	got := layout.UnpackMeta(p.Device().Load(block + layout.MetaOff))
	if got.BlockWords > m.BlockWords-5*geo.SegmentWords+geo.SegmentWords {
		t.Fatalf("huge span not reconstructed from run: %d words", got.BlockWords)
	}
	_ = rep
}

func TestRepairQueueWindow(t *testing.T) {
	p := newQueuePool(t)
	c, _ := p.Connect()
	o, _ := p.Connect()
	_, q, err := c.CreateQueue(o.ID(), 4)
	if err != nil {
		t.Fatal(err)
	}
	headA := q + layout.DataOff + 4 + 1
	p.Device().Store(headA, 5)
	rep := repairClean(t, p)
	if rep.Blast.ObjectsRepaired == 0 {
		t.Fatal("queue clamp not accounted")
	}
}

func TestRepairQueueRegistryBackref(t *testing.T) {
	p := newQueuePool(t)
	c, _ := p.Connect()
	o, _ := p.Connect()
	_, q, err := c.CreateQueue(o.ID(), 4)
	if err != nil {
		t.Fatal(err)
	}
	info := c.QueueInfoOf(q)
	p.Device().Store(p.Geometry().QueueRegAddr(info.RegIdx), 0)
	repairClean(t, p)
	if got := p.Device().Load(p.Geometry().QueueRegAddr(info.RegIdx)); got != uint64(q) {
		// Relinking may have chosen a different free slot; the queue's own
		// backref is the contract.
		infoW := p.Device().Load(q + layout.DataOff + 4)
		slot := int(uint32(infoW >> 32))
		if p.Device().Load(p.Geometry().QueueRegAddr(slot)) != uint64(q) {
			t.Fatalf("queue not re-registered anywhere")
		}
	}
}

func TestRepairQueueImpossibleCapacityQuarantines(t *testing.T) {
	p := newQueuePool(t)
	c, _ := p.Connect()
	o, _ := p.Connect()
	_, q, err := c.CreateQueue(o.ID(), 4)
	if err != nil {
		t.Fatal(err)
	}
	m := layout.UnpackMeta(p.Device().Load(q + layout.MetaOff))
	m.EmbedCnt = 0 // capacity impossible: slot array bounds unknowable
	p.Device().Store(q+layout.MetaOff, layout.PackMeta(m))
	rep := repairClean(t, p)
	if rep.Blast.ObjectsQuarantined == 0 {
		t.Fatalf("unfit queue not quarantined: %+v", rep.Blast)
	}
	for i := 0; i < p.Geometry().MaxQueues; i++ {
		if p.Device().Load(p.Geometry().QueueRegAddr(i)) == uint64(q) {
			t.Fatal("quarantined queue still registered")
		}
	}
}

func TestRepairEraMatrix(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	if _, _, err := c.Malloc(64, 0); err != nil {
		t.Fatal(err)
	}
	geo := p.Geometry()
	p.Device().Store(geo.EraAddr(2, c.ID()), 1<<20)
	rep := repairClean(t, p)
	if got := p.Device().Load(geo.EraAddr(c.ID(), c.ID())); got < 1<<20 {
		t.Fatalf("own era not raised past observation: %d", got)
	}
	if len(rep.Blast.ClientsAffected) == 0 {
		t.Fatal("era raise not accounted to a client")
	}
}

func TestRepairStaleRedo(t *testing.T) {
	p := newPool(t)
	p.Device().Store(p.Geometry().ClientRedoBase(2), 1<<63)
	repairClean(t, p)
	if _, ok := p.ReadRedo(2); ok {
		t.Fatal("stale redo entry survived repair")
	}
}

func TestRepairBadClientStatus(t *testing.T) {
	p := newPool(t)
	recovered := 0
	p.Device().Store(p.Geometry().ClientStatusAddr(3), 77)
	svc, err := recovery.NewService(p)
	if err != nil {
		t.Fatal(err)
	}
	rep := check.Repair(p, check.RepairConfig{
		Recover: func(cid int) error {
			recovered = cid
			_, err := svc.RecoverClient(cid)
			return err
		},
	})
	if !rep.Repaired {
		t.Fatalf("not repaired: %v", rep.Post.Issues)
	}
	if recovered != 3 {
		t.Fatalf("recovery hook not invoked for client 3 (got %d)", recovered)
	}
}

func TestRepairReapsLeakingSegments(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	_, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	seg := p.Geometry().SegmentIndexOf(block)
	// The owner dies; its segment is flagged POTENTIAL_LEAKING but never
	// scanned (the monitor that would have done it isn't running).
	if err := p.MarkClientDead(c.ID()); err != nil {
		t.Fatal(err)
	}
	p.Device().Store(p.Geometry().ClientStatusAddr(c.ID()), layout.ClientRecovered)
	p.FlagSegmentLeaking(seg)
	rep := repairClean(t, p)
	_ = rep
}

func TestRepairUpdatesCounters(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	_, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	hdr := c.HeaderOf(block)
	hdr.RefCnt += 1
	p.Device().Store(block+layout.HeaderOff, layout.PackHeader(hdr))
	repairClean(t, p)
	ctr := p.Obs().Shard(0)
	if ctr.Get(obs.CtrFsckPass) == 0 || ctr.Get(obs.CtrFsckIssues) == 0 ||
		ctr.Get(obs.CtrRepairAction) == 0 {
		t.Fatalf("fsck counters not advanced: pass=%d issues=%d actions=%d",
			ctr.Get(obs.CtrFsckPass), ctr.Get(obs.CtrFsckIssues), ctr.Get(obs.CtrRepairAction))
	}
	var applied bool
	for _, e := range p.Obs().Tracer().Events() {
		if e.Type == obs.EvRepairApplied {
			applied = true
		}
	}
	if !applied {
		t.Fatal("EvRepairApplied not traced")
	}
}

func TestRepairedPoolStillWorks(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	_, block, err := c.Malloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	hdr := c.HeaderOf(block)
	hdr.RefCnt += 2
	p.Device().Store(block+layout.HeaderOff, layout.PackHeader(hdr))
	repairClean(t, p)
	// The pool must remain a working allocator after surgery.
	root2, b2, err := c.Malloc(128, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.Device().Store(b2+layout.DataOff, uint64(block)) // fake attach without count
	p.Device().Store(b2+layout.DataOff, 0)
	if _, err := c.ReleaseRoot(root2); err != nil {
		t.Fatal(err)
	}
	if res := check.Validate(p); !res.Clean() {
		t.Fatalf("post-repair workload left issues: %v", res.Issues)
	}
}

func TestRepairStaleLeaseGen(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	geo := p.Geometry()
	// An ALIVE client with an even (released-looking) generation: repair must
	// move the generation forward to odd, never the status backwards.
	before := p.SlotGeneration(c.ID())
	p.Device().Store(geo.SlotGenAddr(c.ID()), before+1)
	rep := repairClean(t, p)
	after := p.SlotGeneration(c.ID())
	if after%2 != 1 {
		t.Fatalf("lease generation still even after repair: %d", after)
	}
	if after < before {
		t.Fatalf("repair rewound the lease generation: %d -> %d", before, after)
	}
	if len(rep.Blast.ClientsAffected) == 0 {
		t.Fatal("stale lease repair not attributed to a client")
	}
}

func TestRepairStaleLeaseBitmap(t *testing.T) {
	p := newPool(t)
	c, _ := p.Connect()
	geo := p.Geometry()
	a, bit := geo.SlotMapBit(c.ID())
	p.Device().Store(a, p.Device().Load(a)|bit)
	repairClean(t, p)
	if p.Device().Load(a)&bit != 0 {
		t.Fatal("leased slot still advertised in the free-slot bitmap after repair")
	}
}
