// repair.go grows the validator into a repairing fsck (the corruption
// campaign's second half): reconstruct what the geometry and surviving
// metadata prove, reap what recovery machinery can reclaim, and quarantine
// what nothing can prove — never abort, never leave an issue silently
// unaccounted.
//
// Repair is organised as rounds of validate-then-fix. Each round first
// applies the validator's typed structural hints (superblock rewrite,
// free-list rebuilds, metadata reconstruction...); structural fixes shift
// the ground under the reference crosscheck, so the pool is revalidated
// before any accounting repair runs. When a round finds issues but can
// apply neither a structural nor an accounting fix, the remaining damage
// is escalated: the containing block or page is quarantined, which removes
// it — and the references into it — from the invariant space at the cost
// of declaring its payload lost. The loop therefore converges: every round
// either shrinks the issue set, rewrites toward the geometry's fixed
// point, or quarantines something sticky.
package check

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/shm"
)

// maxRepairRounds bounds the validate/fix loop. Compound damage can need a
// few rounds (a resurrected block surfaces a double-free that needs a list
// rebuild that surfaces ...), but every round makes monotone progress, so
// a pool that is not clean by round 8 has damage the escalation path is
// failing to quarantine — better reported than spun on.
const maxRepairRounds = 8

// RepairConfig parameterises a repair pass.
type RepairConfig struct {
	// Exec is the client used for segment scans (reaping leaked blocks
	// rides the same scan machinery recovery uses). When nil, Repair
	// connects a client itself and closes it on return; if no client slot
	// is free, scan-based reaping degrades to quarantine.
	Exec *shm.Client
	// Recover, when set, is invoked for clients the fsck had to declare
	// dead (unknown status word), so full client recovery — redo replay,
	// RootRef sweep — runs instead of leaving the slot parked at DEAD.
	Recover func(cid int) error
	// Log, when set, receives human-readable progress lines.
	Log func(format string, args ...any)
}

// RepairAction is one mutation the fsck applied.
type RepairAction struct {
	Kind   string // e.g. "superblock-rewrite", "freelist-rebuild", "quarantine-block"
	Addr   layout.Addr
	Detail string
}

func (a RepairAction) String() string {
	return fmt.Sprintf("%s @%#x: %s", a.Kind, a.Addr, a.Detail)
}

// BlastRadius quantifies what one repair pass touched and what it could
// not save — the per-fault cost the resilience campaign aggregates.
type BlastRadius struct {
	// WordsRewritten counts device words the fsck stored.
	WordsRewritten int
	// ObjectsRepaired counts allocated objects whose metadata was
	// reconstructed in place (headers rewritten, resurrections, queue
	// windows clamped).
	ObjectsRepaired int
	// ObjectsQuarantined / PagesQuarantined count areas written off.
	ObjectsQuarantined int
	PagesQuarantined   int
	// ObjectsLost counts unreachable-damage casualties: objects whose
	// references had to be severed because nothing provable remained.
	ObjectsLost int
	// RefsSevered counts reference words zeroed while cutting objects loose.
	RefsSevered int
	// ClientsAffected lists client IDs whose slots the fsck touched
	// (cleared redo, forced status, raised eras).
	ClientsAffected []int
}

// RepairReport is the structured outcome of one Repair call.
type RepairReport struct {
	// Pre is the validation result that drove the repair; Post is the
	// state after the final round.
	Pre, Post *Result
	// Rounds counts validate/fix iterations executed.
	Rounds int
	// Actions lists every mutation, in application order.
	Actions []RepairAction
	// Blast aggregates the damage accounting.
	Blast BlastRadius
	// Repaired reports whether the pool validated clean (modulo
	// quarantined areas, which Post counts separately) after repair.
	Repaired bool
}

// Repair runs the repairing fsck over a quiescent pool: validate, apply
// structural then accounting fixes, escalate what resists to quarantine,
// until the pool is clean or the round budget is spent. It never panics on
// metadata damage and never returns nil.
func Repair(p *shm.Pool, cfg RepairConfig) *RepairReport {
	r := &repairer{p: p, geo: p.Geometry(), cfg: cfg, rep: &RepairReport{}}
	if cfg.Exec != nil {
		r.exec = cfg.Exec
	} else if c, err := p.Connect(); err == nil {
		r.exec = c
		defer c.Close()
	} else {
		r.logf("fsck: no exec client (%v): scan-based reaping degraded", err)
	}

	r.reapLeaking()

	clients := map[int]bool{}
	for round := 0; round < maxRepairRounds; round++ {
		res, v := validate(p)
		r.rep.Rounds++
		if round == 0 {
			r.rep.Pre = res
		}
		if res.Clean() {
			break
		}
		r.logf("fsck round %d: %d issue(s)", round, len(res.Issues))
		for _, c := range v.hints.staleRedo {
			clients[c] = true
		}
		for _, c := range v.hints.badStatus {
			clients[c] = true
		}
		for _, c := range v.hints.staleLease {
			clients[c] = true
		}
		for c := range v.hints.eraRaise {
			clients[c] = true
		}
		if n := r.applyHints(v); n > 0 {
			continue
		}
		if n := r.applyAccounting(v); n > 0 {
			continue
		}
		if n := r.escalate(v); n == 0 {
			break
		}
	}
	// With the metadata consistent again, finish what normal recovery
	// could not while it was damaged: clients still marked DEAD (their
	// recovery panicked or the monitor gave up mid-corruption) pin their
	// segments forever otherwise.
	if cfg.Recover != nil {
		for cid := 1; cid <= p.Geometry().MaxClients; cid++ {
			if p.ClientStatus(cid) != layout.ClientDead {
				continue
			}
			clients[cid] = true
			if err := cfg.Recover(cid); err != nil {
				r.logf("fsck: post-repair recovery of client %d: %v", cid, err)
				continue
			}
			r.act("client-recover", r.geo.ClientStatusAddr(cid),
				"client %d recovery completed post-repair", cid)
		}
	}
	// Segments reconstructed to ABANDONED+POTENTIAL_LEAKING during the
	// rounds still hold their blocks; reap them now so a repaired pool
	// hands its capacity back instead of pinning it until the next scan.
	r.reapLeaking()
	post, _ := validate(p)
	r.rep.Post = post
	r.rep.Repaired = post.Clean()
	for c := range clients {
		r.rep.Blast.ClientsAffected = append(r.rep.Blast.ClientsAffected, c)
	}

	issues := 0
	if r.rep.Pre != nil {
		issues = len(r.rep.Pre.Issues)
	}
	sh := p.Obs().Shard(0)
	tel := p.Telemetry()
	sh.Add(obs.CtrFsckPass, uint64(r.rep.Rounds+1))
	tel.PoolAdd(obs.CtrFsckPass, uint64(r.rep.Rounds+1))
	sh.Add(obs.CtrFsckIssues, uint64(issues))
	tel.PoolAdd(obs.CtrFsckIssues, uint64(issues))
	sh.Add(obs.CtrRepairAction, uint64(len(r.rep.Actions)))
	tel.PoolAdd(obs.CtrRepairAction, uint64(len(r.rep.Actions)))
	quar := uint64(r.rep.Blast.ObjectsQuarantined + r.rep.Blast.PagesQuarantined)
	sh.Add(obs.CtrQuarantine, quar)
	tel.PoolAdd(obs.CtrQuarantine, quar)
	if issues > 0 || len(r.rep.Actions) > 0 {
		p.Obs().Trace(obs.Event{
			Type: obs.EvRepairApplied,
			A:    uint64(issues),
			B:    uint64(len(r.rep.Actions)),
		})
	}
	return r.rep
}

type repairer struct {
	p    *shm.Pool
	geo  *layout.Geometry
	cfg  RepairConfig
	exec *shm.Client
	rep  *RepairReport
}

func (r *repairer) logf(format string, args ...any) {
	if r.cfg.Log != nil {
		r.cfg.Log(format, args...)
	}
}

// store is the accounted device write every repair goes through.
func (r *repairer) store(a layout.Addr, v uint64) {
	r.p.Device().Store(a, v)
	r.rep.Blast.WordsRewritten++
}

func (r *repairer) act(kind string, a layout.Addr, format string, args ...any) {
	r.rep.Actions = append(r.rep.Actions, RepairAction{kind, a, fmt.Sprintf(format, args...)})
}

// reapLeaking scans every POTENTIAL_LEAKING or abandoned segment through
// the regular recovery machinery before structural repair starts: blocks
// the owner's death leaked are reclaimed by the scan's own logic (which
// understands embeds, DFS release, huge runs) rather than brute-forced by
// the fsck.
func (r *repairer) reapLeaking() {
	if r.exec == nil {
		return
	}
	for seg := 0; seg < r.geo.NumSegments; seg++ {
		st := r.p.SegState(seg)
		leaking := st.Flags&layout.SegFlagPotentialLeaking != 0
		abandoned := st.State == layout.SegAbandoned
		if !leaking && !abandoned {
			continue
		}
		// Only a segment whose recorded owner is provably dead gets the
		// root-sweeping scan; CID 0 (lost to reconstruction) or a live
		// owner gets the conservative scan that honors live references.
		ownerDead := st.CID != 0 && r.p.ClientDeadOrRecovered(int(st.CID))
		rep := r.scanSegment(seg, ownerDead)
		if rep.Reclaimed+rep.Relinked+rep.SweptRoots > 0 {
			r.act("reap-segment", r.geo.SegStateAddr(seg),
				"segment %d: reclaimed %d, relinked %d, swept %d roots",
				seg, rep.Reclaimed, rep.Relinked, rep.SweptRoots)
		}
	}
}

// scanSegment runs a segment-local scan, absorbing panics: the scan is
// production code walking possibly still-damaged metadata, and a failed
// scan must degrade to "no progress", not kill the fsck.
func (r *repairer) scanSegment(seg int, ownerDead bool) (rep shm.ScanReport) {
	if r.exec == nil {
		return
	}
	defer func() {
		if p := recover(); p != nil {
			r.logf("fsck: scan of segment %d panicked: %v", seg, p)
			rep = shm.ScanReport{}
		}
	}()
	return r.exec.ScanSegment(seg, ownerDead)
}

// applyHints applies every typed structural hint from the last validation
// walk and reports how many actions it took. Order matters: metadata is
// fixed before the free lists that thread through it are rebuilt, so the
// rebuild reads repaired state off the device.
func (r *repairer) applyHints(v *validator) int {
	before := len(r.rep.Actions)
	h := &v.hints

	if h.superblock {
		layout.WriteSuperblock(r.p.Device(), r.geo)
		r.rep.Blast.WordsRewritten += 7 // the formatted superblock words
		r.act("superblock-rewrite", 0, "rewrote superblock from attached geometry")
	}
	if h.telemetry {
		r.p.Telemetry().Reformat()
		r.act("telemetry-reformat", r.geo.TelemetryBase, "reformatted telemetry region header")
	}
	for _, seg := range h.segUnknown {
		r.reconstructSegState(seg)
	}
	for _, seg := range h.numPages {
		r.store(r.geo.SegNextPageAddr(seg), uint64(r.geo.PagesPerSegment))
		r.act("numpages-clamp", r.geo.SegNextPageAddr(seg),
			"segment %d page counter clamped to %d", seg, r.geo.PagesPerSegment)
	}
	for _, hint := range h.blockMeta {
		r.store(hint.block+layout.MetaOff, layout.PackMeta(hint.meta))
		r.act("meta-rewrite", hint.block+layout.MetaOff,
			"meta reconstructed: flags=%#x embeds=%d words=%d",
			hint.meta.Flags, hint.meta.EmbedCnt, hint.meta.BlockWords)
		r.rep.Blast.ObjectsRepaired++
	}
	for _, hint := range h.hugeSpan {
		r.repairHugeSpan(hint)
	}
	for _, pg := range h.bumpPages {
		r.clampBumpPointer(pg.seg, pg.pg)
	}
	for _, pg := range h.pages {
		r.quarantinePage(pg.seg, pg.pg)
	}
	for _, q := range h.queues {
		r.repairQueue(q)
	}
	// Free-list rebuilds come last: they re-read page metadata, bump
	// pointers and block metas fresh, so they see this round's fixes.
	for seg := range h.freeLists {
		r.rebuildSegmentFreeLists(seg)
	}
	for _, hint := range h.lostFree {
		// Leave wild-pointer targets for the accounting pass: a referenced
		// "free" block is a resurrection candidate, and relinking it first
		// would hand live data to the allocator.
		if _, allocated := v.alloc[hint.block]; !allocated && v.expected[hint.block] > 0 {
			continue
		}
		if h.freeLists[hint.seg] {
			continue // the rebuild above already relinked the whole segment
		}
		r.relinkLostBlock(hint)
	}
	for cid, era := range h.eraRaise {
		r.store(r.geo.EraAddr(cid, cid), era)
		r.act("era-raise", r.geo.EraAddr(cid, cid),
			"client %d own era raised to %d (highest observation wins)", cid, era)
	}
	for _, cid := range h.staleRedo {
		r.p.ClearRedo(cid)
		r.act("redo-clear", r.geo.ClientRedoBase(cid), "client %d stale redo entry invalidated", cid)
	}
	for _, cid := range h.badStatus {
		r.store(r.geo.ClientStatusAddr(cid), layout.ClientDead)
		r.p.Device().FenceClient(cid)
		r.act("client-fence", r.geo.ClientStatusAddr(cid),
			"client %d status unrecognisable: fenced and declared dead", cid)
		if r.cfg.Recover != nil {
			if err := r.cfg.Recover(cid); err != nil {
				r.logf("fsck: recovery of client %d failed: %v", cid, err)
			}
		}
	}
	// Lease repairs run after the status repairs above so they read final
	// status words. The status word is authoritative, so the fix direction
	// is always gen/bitmap toward status — and the generation only ever
	// moves forward (+1 flips parity without rewinding the lease history).
	for _, cid := range h.staleLease {
		gen := r.p.Device().Load(r.geo.SlotGenAddr(cid))
		r.store(r.geo.SlotGenAddr(cid), gen+1)
		r.act("lease-gen-fix", r.geo.SlotGenAddr(cid),
			"client %d lease generation bumped %d -> %d to match status", cid, gen, gen+1)
	}
	if h.slotMap {
		for w := 0; w < int(r.geo.SlotMapWords); w++ {
			var want uint64
			for b := 0; b < 64; b++ {
				cid := w*64 + b + 1
				if cid > r.geo.MaxClients {
					break
				}
				s := r.p.ClientStatus(cid)
				if s == layout.ClientSlotFree || s == layout.ClientRecovered {
					want |= 1 << uint(b)
				}
			}
			if r.p.Device().Load(r.geo.SlotMapAddr(w)) != want {
				r.store(r.geo.SlotMapAddr(w), want)
			}
		}
		r.act("slot-map-rebuild", r.geo.SlotMapBase,
			"free-slot bitmap rebuilt from the status words")
	}
	return len(r.rep.Actions) - before
}

// reconstructSegState rebuilds an unrecognisable segment state word from
// what the segment's own contents prove: a huge-flagged allocated meta at
// the base says huge head, a plausible page counter says the segment held
// pages (conservatively abandoned + POTENTIAL_LEAKING, so the scan decides
// its fate), anything else reads as free. The version is bumped past the
// damaged word's so stale segment-claim CASes keep losing.
func (r *repairer) reconstructSegState(seg int) {
	a := r.geo.SegStateAddr(seg)
	old := layout.UnpackSegState(r.p.Device().Load(a))
	base := r.geo.SegmentBase(seg)
	m := layout.UnpackMeta(r.p.Device().Load(base + layout.MetaOff))
	pages := r.p.Device().Load(r.geo.SegNextPageAddr(seg))
	st := layout.SegState{Version: old.Version + 1, State: layout.SegFree}
	switch {
	case m.Allocated() && m.Flags&layout.MetaHuge != 0:
		st.State = layout.SegHugeHead
	case pages >= 1 && pages <= uint64(r.geo.PagesPerSegment):
		st.State = layout.SegAbandoned
		st.Flags = layout.SegFlagPotentialLeaking
	}
	// Keep the damaged word's owner when it still names a real client
	// slot: the reap pass uses it to decide whether root references may be
	// swept, and losing it would make a live owner's objects sweepable.
	if st.State != layout.SegFree && old.CID >= 1 && int(old.CID) <= r.geo.MaxClients {
		st.CID = old.CID
	}
	r.store(a, layout.PackSegState(st))
	r.act("segstate-reconstruct", a, "segment %d state %d -> %d", seg, old.State, st.State)
}

// repairHugeSpan rewrites a huge head's BlockWords from the span its
// segment run actually covers — the segment vector is the stronger
// witness (a bit flip in BlockWords damages one word; forging a run takes
// consistent damage across several).
func (r *repairer) repairHugeSpan(h hugeHint) {
	block := r.geo.SegmentBase(h.head)
	m := layout.UnpackMeta(r.p.Device().Load(block + layout.MetaOff))
	m.BlockWords = uint64(h.run) * r.geo.SegmentWords
	r.store(block+layout.MetaOff, layout.PackMeta(m))
	r.act("hugespan-rewrite", block+layout.MetaOff,
		"huge head %d span rewritten to %d words (%d-segment run)", h.head, m.BlockWords, h.run)
	r.rep.Blast.ObjectsRepaired++
}

// clampBumpPointer forces a page's scan position back inside the page.
// It clamps to the page end (aligned down to the block stride): the
// never-bumped tail reads as zeroed free blocks which the free-list
// rebuild adopts, whereas clamping to the base would erase every
// allocated block on the page from accounting.
func (r *repairer) clampBumpPointer(seg, pg int) {
	metaA := r.geo.PageMetaAddr(seg, pg)
	info := layout.UnpackPageMeta(r.p.Device().Load(metaA + pmInfo))
	base := r.geo.PageBase(seg, pg)
	pos := base
	switch info.Kind {
	case layout.PageKindNormal:
		if int(info.SizeClass) < len(r.geo.Classes) {
			stride := r.geo.Classes[info.SizeClass].BlockWords
			pos = base + layout.Addr(r.geo.PageWords/stride*stride)
		}
	case layout.PageKindRootRef:
		pos = base + layout.Addr(r.geo.PageWords/layout.RootRefWords*layout.RootRefWords)
	}
	r.store(metaA+pmScan, uint64(pos))
	r.act("bump-clamp", metaA+pmScan, "page %d/%d bump pointer clamped to %#x", seg, pg, pos)
}

// quarantinePage writes a page off: unreconstructable kind or size class
// means block boundaries inside it are unknowable, so nothing in it can be
// walked, freed, or handed out again.
func (r *repairer) quarantinePage(seg, pg int) {
	metaA := r.geo.PageMetaAddr(seg, pg)
	r.store(metaA+pmInfo, layout.PackPageMeta(layout.PageMeta{Kind: layout.PageKindQuarantined}))
	r.store(metaA+pmFree, 0)
	r.store(metaA+pmScan, uint64(r.geo.PageBase(seg, pg)))
	r.act("quarantine-page", metaA, "page %d/%d quarantined", seg, pg)
	r.rep.Blast.PagesQuarantined++
}

// quarantineBlock writes one block off: flagged allocated (so no free list
// ever hands it out) plus quarantined (so validators and scans exclude it).
// The queue flag is dropped — a quarantined queue must vanish from the
// registry sweep — and any registry slot still pointing at the block is
// cleared.
func (r *repairer) quarantineBlock(b layout.Addr) {
	m := layout.UnpackMeta(r.p.Device().Load(b + layout.MetaOff))
	wasQueue := m.Flags&layout.MetaQueue != 0
	m.Flags = (m.Flags | layout.MetaAllocated | layout.MetaQuarantined) &^ layout.MetaQueue
	r.store(b+layout.MetaOff, layout.PackMeta(m))
	if wasQueue {
		for i := 0; i < r.geo.MaxQueues; i++ {
			if r.p.Device().Load(r.geo.QueueRegAddr(i)) == uint64(b) {
				r.store(r.geo.QueueRegAddr(i), 0)
			}
		}
	}
	r.act("quarantine-block", b, "block quarantined (queue=%v)", wasQueue)
	r.rep.Blast.ObjectsQuarantined++
}

// repairQueue fixes a damaged transfer queue: impossible capacities
// quarantine the block (the slot array's bounds are unknowable), index
// windows are clamped to emptiness at the newest proven position, and
// broken registry backrefs are relinked to wherever the registry actually
// holds the queue (or a free slot, or — failing both — quarantine).
func (r *repairer) repairQueue(q queueHint) {
	if q.unfit {
		r.quarantineBlock(q.block)
		return
	}
	infoA := q.block + layout.DataOff + layout.Addr(q.capacity)
	if q.badWindow {
		head := r.p.Device().Load(infoA + 1)
		tail := r.p.Device().Load(infoA + 2)
		if head > tail {
			r.store(infoA+1, tail)
			r.act("queue-clamp", q.block, "head %d clamped back to tail %d", head, tail)
		} else {
			r.store(infoA+1, tail-uint64(q.capacity))
			r.act("queue-clamp", q.block,
				"window %d clamped to capacity %d", tail-head, q.capacity)
		}
		r.rep.Blast.ObjectsRepaired++
	}
	if q.badReg {
		info := r.p.Device().Load(infoA)
		slot := -1
		for i := 0; i < r.geo.MaxQueues; i++ {
			if r.p.Device().Load(r.geo.QueueRegAddr(i)) == uint64(q.block) {
				slot = i
				break
			}
		}
		if slot < 0 {
			for i := 0; i < r.geo.MaxQueues; i++ {
				if r.p.Device().Load(r.geo.QueueRegAddr(i)) == 0 {
					slot = i
					r.store(r.geo.QueueRegAddr(i), uint64(q.block))
					break
				}
			}
		}
		if slot < 0 {
			r.quarantineBlock(q.block)
			return
		}
		r.store(infoA, info&0xffffffff|uint64(slot)<<32)
		r.act("queue-relink", q.block, "registry backref repaired to slot %d", slot)
		r.rep.Blast.ObjectsRepaired++
	}
}

// rebuildSegmentFreeLists reconstructs every free list threading a paged
// segment from block metadata alone: the per-page lists are rebuilt by
// walking blocks in reverse (so the list reads in address order) and the
// segment's client_free overflow list — unreconstructable, its nodes are
// indistinguishable from page-list nodes — is cleared into the page lists.
func (r *repairer) rebuildSegmentFreeLists(seg int) {
	r.store(r.geo.SegClientFreeAddr(seg), 0)
	numPages := int(r.p.Device().Load(r.geo.SegNextPageAddr(seg)))
	if numPages > r.geo.PagesPerSegment {
		numPages = r.geo.PagesPerSegment
	}
	for pg := 0; pg < numPages; pg++ {
		metaA := r.geo.PageMetaAddr(seg, pg)
		info := layout.UnpackPageMeta(r.p.Device().Load(metaA + pmInfo))
		base := r.geo.PageBase(seg, pg)
		scanPos := layout.Addr(r.p.Device().Load(metaA + pmScan))
		end := base + layout.Addr(r.geo.PageWords)
		if scanPos < base || scanPos > end {
			continue // bump-clamp hint handles it; rebuild retries next round
		}
		var head uint64
		switch info.Kind {
		case layout.PageKindNormal:
			if int(info.SizeClass) >= len(r.geo.Classes) {
				continue
			}
			bw := layout.Addr(r.geo.Classes[info.SizeClass].BlockWords)
			n := (scanPos - base) / bw
			for i := int(n) - 1; i >= 0; i-- {
				b := base + layout.Addr(i)*bw
				m := layout.UnpackMeta(r.p.Device().Load(b + layout.MetaOff))
				if m.Allocated() || m.Quarantined() {
					continue
				}
				r.store(b+layout.DataOff, head)
				head = uint64(b)
			}
		case layout.PageKindRootRef:
			n := (scanPos - base) / layout.RootRefWords
			for i := int(n) - 1; i >= 0; i-- {
				slot := base + layout.Addr(i)*layout.RootRefWords
				if inUse, _ := layout.UnpackRootRef(r.p.Device().Load(slot)); inUse {
					continue
				}
				r.store(slot+layout.RootRefPptrOff, head)
				head = uint64(slot)
			}
		default:
			continue
		}
		r.store(metaA+pmFree, head)
	}
	r.act("freelist-rebuild", r.geo.SegClientFreeAddr(seg),
		"segment %d free lists rebuilt from block metadata", seg)
}

// relinkLostBlock pushes one orphaned free block (or RootRef slot) back
// onto its page's free list.
func (r *repairer) relinkLostBlock(h lostHint) {
	metaA := r.geo.PageMetaAddr(h.seg, h.pg)
	head := r.p.Device().Load(metaA + pmFree)
	if h.rootRef {
		r.store(h.block+layout.RootRefPptrOff, head)
	} else {
		r.store(h.block+layout.DataOff, head)
	}
	r.store(metaA+pmFree, uint64(h.block))
	r.act("relink-lost", h.block, "free block relinked onto page %d/%d list", h.seg, h.pg)
}

// applyAccounting fixes reference-count damage once the structure is
// sound: wild pointers are resolved by resurrection (when the orphaned
// block's own header still agrees with the references pointing at it) or
// severed; mismatched counts are rewritten to the recomputed truth; and
// count-zero objects are reaped through the scan machinery.
func (r *repairer) applyAccounting(v *validator) int {
	before := len(r.rep.Actions)
	rescan := map[int]bool{}

	for _, is := range v.res.Issues {
		switch is.Kind {
		case WildPointer:
			r.repairWild(v, is.Addr)
		case Leak, UnderCount:
			b := is.Addr
			hdr, ok := v.alloc[b]
			if !ok {
				continue
			}
			exp := v.expected[b]
			if exp > layout.MaxRefCount {
				exp = layout.MaxRefCount
			}
			if exp == 0 {
				// Nothing references it any more: zero the whole header so
				// the scan's dead-owner rule reclaims it properly (embeds,
				// DFS release, huge runs).
				r.store(b+layout.HeaderOff, 0)
				r.act("reclaim-mark", b, "ref_cnt %d -> 0, queued for scan reclaim", hdr.RefCnt)
				rescan[r.geo.SegmentIndexOf(b)] = true
			} else {
				hdr.RefCnt = uint16(exp)
				r.store(b+layout.HeaderOff, layout.PackHeader(hdr))
				r.act("refcnt-rewrite", b, "ref_cnt rewritten to %d recounted references", exp)
				r.rep.Blast.ObjectsRepaired++
			}
		case StuckReclaim:
			b := is.Addr
			r.store(b+layout.HeaderOff, 0)
			r.act("reclaim-mark", b, "count-zero object queued for scan reclaim")
			rescan[r.geo.SegmentIndexOf(b)] = true
		}
	}
	for seg := range rescan {
		if r.exec == nil {
			continue // headers are zeroed; escalation quarantines them if scans never run
		}
		r.scanSegment(seg, false)
	}
	return len(r.rep.Actions) - before
}

// repairWild resolves references to a non-allocated block. If the target
// still looks like the object its referrers believe in — block-aligned on
// a typed page, free meta, and a header refcount that equals the number of
// references found — the allocation flag is the only thing missing, and
// the block is resurrected. Anything weaker and the references are
// severed: a wild pointer left standing is the one failure class that
// corrupts *other* objects' data on reuse.
func (r *repairer) repairWild(v *validator, t layout.Addr) {
	if b, ok := r.resurrectable(v, t); ok {
		m := layout.UnpackMeta(r.p.Device().Load(t + layout.MetaOff))
		m.Flags |= layout.MetaAllocated
		m.EmbedCnt = 0
		m.BlockWords = b
		r.store(t+layout.MetaOff, layout.PackMeta(m))
		r.act("resurrect", t, "freed block still matches its %d references: reallocated", v.expected[t])
		r.rep.Blast.ObjectsRepaired++
		return
	}
	for _, site := range v.refs[t] {
		r.store(site, 0)
		r.rep.Blast.RefsSevered++
	}
	r.act("sever-refs", t, "%d dangling reference(s) zeroed", len(v.refs[t]))
	r.rep.Blast.ObjectsLost++
}

// resurrectable reports whether wild-pointer target t can be brought back,
// returning the class block size to restore into its meta.
func (r *repairer) resurrectable(v *validator, t layout.Addr) (uint64, bool) {
	seg := r.geo.SegmentIndexOf(t)
	if seg < 0 || seg >= r.geo.NumSegments {
		return 0, false
	}
	st := r.p.SegState(seg)
	if st.State != layout.SegActive && st.State != layout.SegAbandoned {
		return 0, false
	}
	pg := r.geo.PageIndexOf(seg, t)
	if pg < 0 {
		return 0, false
	}
	info := layout.UnpackPageMeta(r.p.Device().Load(r.geo.PageMetaAddr(seg, pg) + pmInfo))
	if info.Kind != layout.PageKindNormal || int(info.SizeClass) >= len(r.geo.Classes) {
		return 0, false
	}
	bw := r.geo.Classes[info.SizeClass].BlockWords
	base := r.geo.PageBase(seg, pg)
	if (uint64(t)-uint64(base))%bw != 0 {
		return 0, false
	}
	m := layout.UnpackMeta(r.p.Device().Load(t + layout.MetaOff))
	if m.Allocated() || m.Quarantined() {
		return 0, false
	}
	hdr := layout.UnpackHeader(r.p.Device().Load(t + layout.HeaderOff))
	n := len(v.refs[t])
	return bw, n > 0 && int(hdr.RefCnt) == n
}

// escalate quarantines whatever survived both repair passes: each
// remaining issue is mapped to its containing block or page and written
// off. Issues outside segment space (superblock, client slots, eras) have
// deterministic rewrites and should never reach here; when one does,
// escalation reports no progress and the loop gives up loudly rather than
// quarantine infrastructure that cannot be quarantined.
func (r *repairer) escalate(v *validator) int {
	before := len(r.rep.Actions)
	seen := map[layout.Addr]bool{}
	for _, is := range v.res.Issues {
		seg := r.geo.SegmentIndexOf(is.Addr)
		if seg < 0 || seg >= r.geo.NumSegments {
			continue
		}
		st := r.p.SegState(seg)
		switch st.State {
		case layout.SegHugeHead:
			b := r.geo.SegmentBase(seg)
			if !seen[b] {
				seen[b] = true
				r.quarantineBlock(b)
			}
		case layout.SegHugeBody:
			head := seg
			for head > 0 && r.p.SegState(head).State == layout.SegHugeBody {
				head--
			}
			b := r.geo.SegmentBase(head)
			if !seen[b] {
				seen[b] = true
				r.quarantineBlock(b)
			}
		case layout.SegActive, layout.SegAbandoned:
			pg := r.geo.PageIndexOf(seg, is.Addr)
			if pg < 0 {
				continue
			}
			info := layout.UnpackPageMeta(r.p.Device().Load(r.geo.PageMetaAddr(seg, pg) + pmInfo))
			if info.Kind == layout.PageKindNormal && int(info.SizeClass) < len(r.geo.Classes) {
				bw := r.geo.Classes[info.SizeClass].BlockWords
				base := r.geo.PageBase(seg, pg)
				b := base + layout.Addr((uint64(is.Addr)-uint64(base))/bw*bw)
				if !seen[b] {
					seen[b] = true
					r.quarantineBlock(b)
				}
			} else {
				key := r.geo.PageMetaAddr(seg, pg)
				if !seen[key] {
					seen[key] = true
					r.quarantinePage(seg, pg)
				}
			}
		}
	}
	return len(r.rep.Actions) - before
}
