// Package check validates a quiescent CXL-SHM pool against the three
// failure classes the paper's fault-injection study looks for (§6.2.2):
// leaked memory, double frees, and wild pointers.
//
// The validator recomputes every object's expected reference count from
// first principles — RootRef slots, embedded references (which include
// queue slots) — and compares it with the count stored in each header. It
// also audits allocator structures: free-list membership, page accounting,
// segment states.
//
// The pool must be quiescent (no client mid-operation, recovery completed);
// validation of a running pool reports spurious issues by design.
package check

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/shm"
)

// IssueKind classifies a validation failure.
type IssueKind string

// Issue kinds.
const (
	Leak          IssueKind = "leak"          // allocated object with more counted refs than actual references
	WildPointer   IssueKind = "wild-pointer"  // reference to a non-allocated block
	DoubleFree    IssueKind = "double-free"   // block present on multiple free lists
	UnderCount    IssueKind = "under-count"   // fewer counted refs than actual references
	StuckReclaim  IssueKind = "stuck-reclaim" // refcount-zero object never reclaimed
	LostFreeBlock IssueKind = "lost-free"     // free-marked block on no list
	BadStructure  IssueKind = "bad-structure" // corrupt allocator metadata
	QueueCorrupt  IssueKind = "queue-corrupt" // queue indices/registry inconsistent
	EraMatrix     IssueKind = "era-matrix"    // observed era exceeds the owner's own era
	StaleRedo     IssueKind = "stale-redo"    // valid redo entry on a recovered/free client slot
)

// Issue is one validation failure.
type Issue struct {
	Kind   IssueKind
	Addr   layout.Addr
	Detail string
}

func (i Issue) String() string { return fmt.Sprintf("%s @%#x: %s", i.Kind, i.Addr, i.Detail) }

// Result summarizes a validation pass.
type Result struct {
	Issues []Issue

	AllocatedObjects int
	FreeBlocks       int
	RootRefsInUse    int
	SegmentsActive   int
	SegmentsFree     int
	SegmentsOther    int
	Queues           int
}

// Clean reports whether validation found no issues.
func (r *Result) Clean() bool { return len(r.Issues) == 0 }

func (r *Result) add(kind IssueKind, addr layout.Addr, format string, args ...any) {
	r.Issues = append(r.Issues, Issue{Kind: kind, Addr: addr, Detail: fmt.Sprintf(format, args...)})
}

// Validate audits the whole pool.
func Validate(p *shm.Pool) *Result {
	v := &validator{
		p:        p,
		geo:      p.Geometry(),
		res:      &Result{},
		expected: make(map[layout.Addr]int),
		alloc:    make(map[layout.Addr]layout.Header),
		free:     make(map[layout.Addr]int),
	}
	v.walkNamedRoots()
	v.walkSegments()
	v.crossCheck()
	v.checkQueues()
	v.checkEraMatrix()
	v.checkClientSlots()
	return v.res
}

type validator struct {
	p   *shm.Pool
	geo *layout.Geometry
	res *Result

	// expected counts references found pointing at each block.
	expected map[layout.Addr]int
	// alloc maps allocated block -> header.
	alloc map[layout.Addr]layout.Header
	// free maps free block -> number of free-list memberships.
	free map[layout.Addr]int
	// queues lists allocated blocks flagged MetaQueue, for the queue fsck.
	queues []queueRec
}

type queueRec struct {
	block layout.Addr
	meta  layout.Meta
}

func (v *validator) load(a layout.Addr) uint64 { return v.p.Device().Load(a) }

func (v *validator) walkNamedRoots() {
	for i := 0; i < layout.MaxNamedRoots; i++ {
		if t := v.load(v.geo.RootDirAddr(i)); t != 0 {
			v.expected[t]++
		}
	}
}

func (v *validator) walkSegments() {
	for seg := 0; seg < v.geo.NumSegments; seg++ {
		st := layout.UnpackSegState(v.load(v.geo.SegStateAddr(seg)))
		switch st.State {
		case layout.SegFree:
			v.res.SegmentsFree++
		case layout.SegActive:
			v.res.SegmentsActive++
			v.walkPagedSegment(seg)
		case layout.SegAbandoned:
			v.res.SegmentsOther++
			v.walkPagedSegment(seg)
		case layout.SegHugeHead:
			v.res.SegmentsOther++
			v.walkHuge(seg, st)
		case layout.SegHugeBody:
			v.res.SegmentsOther++
		default:
			v.res.add(BadStructure, v.geo.SegStateAddr(seg),
				"segment %d in unknown state %d", seg, st.State)
		}
	}
}

func (v *validator) walkHuge(seg int, st layout.SegState) {
	block := v.geo.SegmentBase(seg)
	hdr := layout.UnpackHeader(v.load(block + layout.HeaderOff))
	m := layout.UnpackMeta(v.load(block + layout.MetaOff))
	if !m.Allocated() {
		v.res.add(BadStructure, block, "huge head segment %d without allocated meta", seg)
		return
	}
	v.alloc[block] = hdr
	v.res.AllocatedObjects++
	if m.Flags&layout.MetaQueue != 0 {
		v.queues = append(v.queues, queueRec{block, m})
	}
	v.recordEmbeds(block, m)
}

func (v *validator) walkPagedSegment(seg int) {
	numPages := int(v.load(v.geo.SegNextPageAddr(seg)))
	if numPages > v.geo.PagesPerSegment {
		v.res.add(BadStructure, v.geo.SegNextPageAddr(seg),
			"segment %d claims %d pages (max %d)", seg, numPages, v.geo.PagesPerSegment)
		numPages = v.geo.PagesPerSegment
	}

	// Free-list membership, per page and segment-wide client_free. Every
	// node must lie inside its page's bumped region and on a block boundary;
	// a wild node means the list itself is corrupt, so the walk stops there
	// rather than chase an arbitrary pointer chain through the pool.
	for pg := 0; pg < numPages; pg++ {
		metaA := v.geo.PageMetaAddr(seg, pg)
		info := layout.UnpackPageMeta(v.load(metaA + pmInfo))
		base := v.geo.PageBase(seg, pg)
		scanPos := layout.Addr(v.load(metaA + pmScan))
		stride := layout.Addr(layout.RootRefWords)
		if info.Kind == layout.PageKindNormal {
			if int(info.SizeClass) >= len(v.geo.Classes) {
				continue // reported by the block walk below
			}
			stride = layout.Addr(v.geo.Classes[info.SizeClass].BlockWords)
		}
		nextOff := layout.Addr(layout.DataOff)
		if info.Kind == layout.PageKindRootRef {
			nextOff = layout.RootRefPptrOff
		}
		seen := 0
		for b := v.load(metaA + pmFree); b != 0; b = v.load(b + nextOff) {
			if b < base || b >= scanPos || (b-base)%stride != 0 {
				v.res.add(BadStructure, layout.Addr(b),
					"free-list node of %d/%d outside page or misaligned", seg, pg)
				break
			}
			v.free[b]++
			seen++
			if seen > int(v.geo.PageWords) {
				v.res.add(BadStructure, metaA, "free list of %d/%d does not terminate", seg, pg)
				break
			}
		}
	}
	segBase := v.geo.SegmentBase(seg)
	segEnd := segBase + layout.Addr(v.geo.SegmentWords)
	seen := 0
	for b := v.load(v.geo.SegClientFreeAddr(seg)); b != 0; b = v.load(b + layout.DataOff) {
		if b < segBase || b >= segEnd {
			v.res.add(BadStructure, layout.Addr(b),
				"client_free node outside segment %d", seg)
			break
		}
		v.free[b]++
		seen++
		if seen > int(v.geo.SegmentWords) {
			v.res.add(BadStructure, v.geo.SegClientFreeAddr(seg),
				"client_free list of segment %d does not terminate", seg)
			break
		}
	}

	for pg := 0; pg < numPages; pg++ {
		metaA := v.geo.PageMetaAddr(seg, pg)
		info := layout.UnpackPageMeta(v.load(metaA + pmInfo))
		base := v.geo.PageBase(seg, pg)
		end := base + layout.Addr(v.geo.PageWords)
		scanPos := v.load(metaA + pmScan)
		if scanPos < uint64(base) || scanPos > uint64(end) {
			v.res.add(BadStructure, metaA, "page %d/%d bump pointer %#x outside page", seg, pg, scanPos)
			continue
		}
		switch info.Kind {
		case layout.PageKindRootRef:
			for slot := base; slot+layout.RootRefWords <= layout.Addr(scanPos); slot += layout.RootRefWords {
				inUse, _ := layout.UnpackRootRef(v.load(slot))
				if !inUse {
					if v.free[slot] == 0 {
						v.res.add(LostFreeBlock, slot, "free RootRef slot on no list (%d/%d)", seg, pg)
					}
					continue
				}
				v.res.RootRefsInUse++
				if v.free[slot] > 0 {
					v.res.add(DoubleFree, slot, "in-use RootRef slot also on a free list")
				}
				if pptr := v.load(slot + layout.RootRefPptrOff); pptr != 0 {
					v.expected[pptr]++
				}
			}
		case layout.PageKindNormal:
			if int(info.SizeClass) >= len(v.geo.Classes) {
				v.res.add(BadStructure, metaA, "page %d/%d has bad size class %d", seg, pg, info.SizeClass)
				continue
			}
			bw := layout.Addr(v.geo.Classes[info.SizeClass].BlockWords)
			for b := base; b+bw <= layout.Addr(scanPos); b += bw {
				m := layout.UnpackMeta(v.load(b + layout.MetaOff))
				if m.Allocated() {
					hdr := layout.UnpackHeader(v.load(b + layout.HeaderOff))
					v.alloc[b] = hdr
					v.res.AllocatedObjects++
					if v.free[b] > 0 {
						v.res.add(DoubleFree, b, "allocated block also on a free list")
					}
					if m.Flags&layout.MetaQueue != 0 {
						v.queues = append(v.queues, queueRec{b, m})
					}
					v.recordEmbeds(b, m)
				} else {
					v.res.FreeBlocks++
					switch v.free[b] {
					case 0:
						v.res.add(LostFreeBlock, b, "free block on no list (%d/%d)", seg, pg)
					case 1:
						// fine
					default:
						v.res.add(DoubleFree, b, "block on %d free lists", v.free[b])
					}
				}
			}
		}
	}
}

func (v *validator) recordEmbeds(b layout.Addr, m layout.Meta) {
	for i := 0; i < int(m.EmbedCnt); i++ {
		if t := v.load(b + layout.DataOff + layout.Addr(i)); t != 0 {
			v.expected[t]++
		}
	}
}

// crossCheck compares counted versus actual references.
func (v *validator) crossCheck() {
	for b, hdr := range v.alloc {
		exp := v.expected[b]
		switch {
		case int(hdr.RefCnt) == exp && exp == 0:
			v.res.add(StuckReclaim, b, "allocated with zero references and zero count (never reclaimed)")
		case int(hdr.RefCnt) > exp:
			v.res.add(Leak, b, "ref_cnt=%d but only %d references found", hdr.RefCnt, exp)
		case int(hdr.RefCnt) < exp:
			v.res.add(UnderCount, b, "ref_cnt=%d but %d references found", hdr.RefCnt, exp)
		}
	}
	// Every reference must point at an allocated block.
	for t, n := range v.expected {
		if _, ok := v.alloc[t]; !ok {
			v.res.add(WildPointer, t, "%d reference(s) to a non-allocated block", n)
		}
	}
}

// checkQueues audits every allocated block flagged as a transfer queue: the
// index words must describe a window no larger than the capacity, and the
// registry entry the queue claims must point back at it (§5.2 — the registry
// is how recovery and late receivers discover queues, so a broken backref
// orphans the queue from the sweep).
func (v *validator) checkQueues() {
	for _, q := range v.queues {
		v.res.Queues++
		capacity := int(q.meta.EmbedCnt)
		if capacity < 1 {
			v.res.add(QueueCorrupt, q.block, "queue with zero capacity")
			continue
		}
		infoA := q.block + layout.DataOff + layout.Addr(capacity)
		head := v.load(infoA + 1)
		tail := v.load(infoA + 2)
		if head > tail {
			v.res.add(QueueCorrupt, q.block, "head %d ahead of tail %d", head, tail)
		} else if tail-head > uint64(capacity) {
			v.res.add(QueueCorrupt, q.block,
				"%d in flight exceeds capacity %d", tail-head, capacity)
		}
		reg := int(uint32(v.load(infoA) >> 32))
		if reg < 0 || reg >= v.geo.MaxQueues {
			v.res.add(QueueCorrupt, q.block, "registry index %d out of range", reg)
		} else if got := v.load(v.geo.QueueRegAddr(reg)); got != uint64(q.block) {
			v.res.add(QueueCorrupt, q.block,
				"registry slot %d holds %#x, not this queue", reg, got)
		}
	}
}

// checkEraMatrix verifies the §4.3 observation invariant: no client can have
// seen an era of client i beyond the era client i itself has published
// (Era[j][i] <= Era[i][i]) — a violation would let recovery's Condition 2
// "prove" commits that never happened.
func (v *validator) checkEraMatrix() {
	for i := 1; i <= v.geo.MaxClients; i++ {
		own := v.load(v.geo.EraAddr(i, i))
		for j := 1; j <= v.geo.MaxClients; j++ {
			if j == i {
				continue
			}
			if seen := v.load(v.geo.EraAddr(j, i)); seen > own {
				v.res.add(EraMatrix, v.geo.EraAddr(j, i),
					"client %d saw era %d of client %d, who only published %d",
					j, seen, i, own)
			}
		}
	}
}

// checkClientSlots verifies client-slot hygiene: the status word holds a
// known state, and no recovered or free slot still carries a valid redo
// entry — recovery must invalidate the redo before announcing RECOVERED, or
// the slot's next incarnation inherits a transaction it never ran.
func (v *validator) checkClientSlots() {
	for cid := 1; cid <= v.geo.MaxClients; cid++ {
		a := v.geo.ClientStatusAddr(cid)
		status := v.load(a)
		switch status {
		case layout.ClientSlotFree, layout.ClientAlive, layout.ClientDead, layout.ClientRecovered:
		default:
			v.res.add(BadStructure, a, "client %d status word is %d", cid, status)
			continue
		}
		if _, ok := v.p.ReadRedo(cid); ok {
			if status == layout.ClientRecovered || status == layout.ClientSlotFree {
				v.res.add(StaleRedo, v.geo.ClientRedoBase(cid),
					"client %d is settled (status %d) but holds a valid redo entry", cid, status)
			}
		}
	}
}

// Page meta word offsets (mirrors internal/shm's layout of the 3-word page
// meta area).
const (
	pmInfo = 0
	pmFree = 1
	pmScan = 2
)
