// Package check validates a quiescent CXL-SHM pool against the three
// failure classes the paper's fault-injection study looks for (§6.2.2):
// leaked memory, double frees, and wild pointers — and, since the
// corruption campaign, repairs what it finds (repair.go).
//
// The validator recomputes every object's expected reference count from
// first principles — RootRef slots, embedded references (which include
// queue slots) — and compares it with the count stored in each header. It
// also audits allocator structures: free-list membership, page accounting,
// segment states, the superblock itself.
//
// The validator must survive arbitrary metadata damage: every load is
// bounds-checked (corrupt pointers and counts otherwise walk off the pool
// and panic the device), and blocks/pages the repairing fsck has
// quarantined are excluded from reference accounting instead of drowning
// the report in expected noise.
//
// The pool must be quiescent (no client mid-operation, recovery completed);
// validation of a running pool reports spurious issues by design.
package check

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/shm"
)

// IssueKind classifies a validation failure.
type IssueKind string

// Issue kinds.
const (
	Leak          IssueKind = "leak"           // allocated object with more counted refs than actual references
	WildPointer   IssueKind = "wild-pointer"   // reference to a non-allocated block
	DoubleFree    IssueKind = "double-free"    // block present on multiple free lists
	UnderCount    IssueKind = "under-count"    // fewer counted refs than actual references
	StuckReclaim  IssueKind = "stuck-reclaim"  // refcount-zero object never reclaimed
	LostFreeBlock IssueKind = "lost-free"      // free-marked block on no list
	BadStructure  IssueKind = "bad-structure"  // corrupt allocator metadata
	QueueCorrupt  IssueKind = "queue-corrupt"  // queue indices/registry inconsistent
	EraMatrix     IssueKind = "era-matrix"     // observed era exceeds the owner's own era
	StaleRedo     IssueKind = "stale-redo"     // valid redo entry on a recovered/free client slot
	StaleLease    IssueKind = "stale-lease"    // slot-lease generation or bitmap disagrees with the status word
	BadSuperblock IssueKind = "bad-superblock" // superblock word disagrees with the attached geometry
)

// Issue is one validation failure.
type Issue struct {
	Kind   IssueKind
	Addr   layout.Addr
	Detail string
}

func (i Issue) String() string { return fmt.Sprintf("%s @%#x: %s", i.Kind, i.Addr, i.Detail) }

// Result summarizes a validation pass.
type Result struct {
	Issues []Issue

	AllocatedObjects int
	FreeBlocks       int
	RootRefsInUse    int
	SegmentsActive   int
	SegmentsFree     int
	SegmentsOther    int
	Queues           int

	// QuarantinedBlocks/QuarantinedPages count areas the repairing fsck has
	// written off; they are excluded from AllocatedObjects and from the
	// reference crosscheck. RefsIntoQuarantine counts live references that
	// lead into quarantined territory (reported, not issues: the data behind
	// them is lost, the references themselves are not wild).
	QuarantinedBlocks  int
	QuarantinedPages   int
	RefsIntoQuarantine int
}

// Clean reports whether validation found no issues.
func (r *Result) Clean() bool { return len(r.Issues) == 0 }

func (r *Result) add(kind IssueKind, addr layout.Addr, format string, args ...any) {
	r.Issues = append(r.Issues, Issue{Kind: kind, Addr: addr, Detail: fmt.Sprintf(format, args...)})
}

// Validate audits the whole pool.
func Validate(p *shm.Pool) *Result {
	res, _ := validate(p)
	return res
}

// validate runs the audit and also returns the validator itself, whose
// walk state (expected counts, referrer sites, quarantine map) the repair
// pass reuses.
func validate(p *shm.Pool) (*Result, *validator) {
	v := &validator{
		p:        p,
		geo:      p.Geometry(),
		words:    p.Geometry().TotalWords,
		res:      &Result{},
		expected: make(map[layout.Addr]int),
		alloc:    make(map[layout.Addr]layout.Header),
		free:     make(map[layout.Addr]int),
		refs:     make(map[layout.Addr][]layout.Addr),
		quarB:    make(map[layout.Addr]bool),
	}
	v.hints.freeLists = make(map[int]bool)
	v.hints.eraRaise = make(map[int]uint64)
	v.checkSuperblock()
	v.checkTelemetry()
	v.walkNamedRoots()
	v.walkSegments()
	v.crossCheck()
	v.checkQueues()
	v.checkEraMatrix()
	v.checkClientSlots()
	v.checkSlotLeases()
	return v.res, v
}

type validator struct {
	p     *shm.Pool
	geo   *layout.Geometry
	words uint64
	res   *Result

	// expected counts references found pointing at each block.
	expected map[layout.Addr]int
	// alloc maps allocated block -> header.
	alloc map[layout.Addr]layout.Header
	// free maps free block -> number of free-list memberships.
	free map[layout.Addr]int
	// refs maps referenced block -> addresses of the words referencing it
	// (named-root slots, RootRef pptr words, embed words) — the sites the
	// repair pass severs when the target is unsalvageable.
	refs map[layout.Addr][]layout.Addr
	// queues lists allocated blocks flagged MetaQueue, for the queue fsck.
	queues []queueRec
	// quarB marks quarantined blocks; quarP holds quarantined page ranges.
	quarB map[layout.Addr]bool
	quarP []addrRange

	// hints are the typed counterparts of structural issues — what repair.go
	// acts on, so it never has to parse issue strings back apart.
	hints hints

	oob int // out-of-pool loads observed (reported once)
}

// hints records structural damage in machine-usable form, populated by the
// same walks that report the issues.
type hints struct {
	superblock bool           // superblock words disagree with the geometry
	telemetry  bool           // telemetry region header damaged
	segUnknown []int          // segments in an unknown state
	numPages   []int          // segments whose next-page counter over-claims
	freeLists  map[int]bool   // segments whose free lists need a rebuild
	pages      []pageHint     // pages with unrepairable-in-place metadata
	bumpPages  []pageHint     // pages whose bump pointer left the page
	blockMeta  []metaHint     // blocks whose meta word disagrees with its page
	hugeSpan   []hugeHint     // huge heads whose BlockWords disagrees with the run
	lostFree   []lostHint     // free blocks/slots on no list
	queues     []queueHint    // queue-specific damage
	eraRaise   map[int]uint64 // client -> highest era observed of it (on violation)
	staleRedo  []int          // settled clients with valid redo entries
	badStatus  []int          // clients with unknown status words
	staleLease []int          // clients whose lease generation parity disagrees with status
	slotMap    bool           // free-slot bitmap disagrees with the status words
}

type pageHint struct{ seg, pg int }

type metaHint struct {
	block layout.Addr
	meta  layout.Meta // the corrected meta word to write
}

type hugeHint struct {
	head int
	run  int // segments in the run the segment vector asserts
}

type lostHint struct {
	block   layout.Addr
	seg, pg int
	rootRef bool
}

type queueHint struct {
	block    layout.Addr
	capacity int
	// unfit: capacity impossible for the block (quarantine candidate);
	// badWindow: head/tail need clamping; badReg: registry backref broken.
	unfit, badWindow, badReg bool
}

type addrRange struct{ lo, hi layout.Addr }

type queueRec struct {
	block layout.Addr
	meta  layout.Meta
	// dataWords is the block's usable data area (class or huge-run size
	// minus the two metadata words); the queue needs capacity+3 of them.
	dataWords uint64
}

// load is the bounds-checked device read every walk goes through: corrupt
// metadata yields arbitrary addresses, and an unchecked load past the pool
// end panics the device. Out-of-pool reads return 0 and are reported once.
func (v *validator) load(a layout.Addr) uint64 {
	if uint64(a) >= v.words {
		if v.oob == 0 {
			v.res.add(BadStructure, a, "metadata led outside the pool (%d words)", v.words)
		}
		v.oob++
		return 0
	}
	return v.p.Device().Load(a)
}

// clientAlive reports whether cid names a currently-live client. Deferred
// metadata publication (the shm shadow's pending tier) makes free-marked
// blocks "on no list" the expected steady state while their freeer lives:
// the freeer either publishes them at its next epoch boundary, or dies — at
// which point its status leaves ClientAlive, the gate stops excusing, and
// the segment-local scan is responsible for re-linking them.
func (v *validator) clientAlive(cid int) bool {
	if cid < 1 || cid > v.geo.MaxClients {
		return false
	}
	return v.load(v.geo.ClientStatusAddr(cid)) == layout.ClientAlive
}

// segOwnerAlive reports whether seg is actively owned by a live client.
// RootRef frees are always owner-local, so a lost free slot in such a
// segment is a pending (unpublished) free of the live owner, not damage.
func (v *validator) segOwnerAlive(seg int) bool {
	st := layout.UnpackSegState(v.load(v.geo.SegStateAddr(seg)))
	return st.State == layout.SegActive && v.clientAlive(int(st.CID))
}

// inQuarantine reports whether a points at (or into) quarantined territory.
func (v *validator) inQuarantine(a layout.Addr) bool {
	if v.quarB[a] {
		return true
	}
	for _, r := range v.quarP {
		if a >= r.lo && a < r.hi {
			return true
		}
	}
	return false
}

// checkSuperblock audits the formatted superblock words against the
// geometry this pool was attached with. A live pool keeps working off its
// cached Geometry when these words are damaged — but the next attach would
// fail or, worse, mis-derive the layout, so damage here is a first-class
// issue (and trivially repairable: the attached geometry is the truth).
func (v *validator) checkSuperblock() {
	want := map[layout.Addr]uint64{
		layout.SuperOffMagic:      layout.PoolMagic,
		layout.SuperOffSegWords:   v.geo.SegmentWords,
		layout.SuperOffPageWords:  v.geo.PageWords,
		layout.SuperOffNumSegs:    uint64(v.geo.NumSegments),
		layout.SuperOffMaxClients: uint64(v.geo.MaxClients),
		layout.SuperOffMaxQueues:  uint64(v.geo.MaxQueues),
		layout.SuperOffVersion:    layout.LayoutVersion,
	}
	for a, w := range want {
		if got := v.load(a); got != w {
			v.res.add(BadSuperblock, a, "superblock word %d holds %#x, geometry says %#x", a, got, w)
			v.hints.superblock = true
		}
	}
}

// checkTelemetry audits the telemetry region header. Metric slots, timelines
// and ring records tolerate arbitrary garbage record-by-record, but a
// damaged header makes every reader refuse the whole region.
func (v *validator) checkTelemetry() {
	if err := v.p.Telemetry().Validate(); err != nil {
		v.res.add(BadStructure, v.geo.TelemetryBase, "telemetry region header: %v", err)
		v.hints.telemetry = true
	}
}

func (v *validator) walkNamedRoots() {
	for i := 0; i < layout.MaxNamedRoots; i++ {
		a := v.geo.RootDirAddr(i)
		if t := v.load(a); t != 0 {
			v.expected[t]++
			v.refs[t] = append(v.refs[t], a)
		}
	}
}

func (v *validator) walkSegments() {
	for seg := 0; seg < v.geo.NumSegments; seg++ {
		st := layout.UnpackSegState(v.load(v.geo.SegStateAddr(seg)))
		switch st.State {
		case layout.SegFree:
			v.res.SegmentsFree++
		case layout.SegActive:
			v.res.SegmentsActive++
			v.walkPagedSegment(seg)
		case layout.SegAbandoned:
			v.res.SegmentsOther++
			v.walkPagedSegment(seg)
		case layout.SegHugeHead:
			v.res.SegmentsOther++
			v.walkHuge(seg, st)
		case layout.SegHugeBody:
			v.res.SegmentsOther++
		default:
			v.res.add(BadStructure, v.geo.SegStateAddr(seg),
				"segment %d in unknown state %d", seg, st.State)
			v.hints.segUnknown = append(v.hints.segUnknown, seg)
		}
	}
}

// hugeRunSegments counts the head plus the consecutive body segments that
// follow it — the span the segment vector itself asserts for a huge object,
// against which the head's BlockWords is validated (and from which repair
// reconstructs it).
func (v *validator) hugeRunSegments(head int) int {
	n := 1
	for s := head + 1; s < v.geo.NumSegments; s++ {
		st := layout.UnpackSegState(v.load(v.geo.SegStateAddr(s)))
		if st.State != layout.SegHugeBody {
			break
		}
		n++
	}
	return n
}

func (v *validator) walkHuge(seg int, st layout.SegState) {
	block := v.geo.SegmentBase(seg)
	hdr := layout.UnpackHeader(v.load(block + layout.HeaderOff))
	m := layout.UnpackMeta(v.load(block + layout.MetaOff))
	if m.Quarantined() {
		v.res.QuarantinedBlocks++
		v.quarB[block] = true
		run := v.hugeRunSegments(seg)
		v.quarP = append(v.quarP, addrRange{block, v.geo.SegmentBase(seg) + layout.Addr(uint64(run)*v.geo.SegmentWords)})
		return
	}
	if !m.Allocated() {
		v.res.add(BadStructure, block, "huge head segment %d without allocated meta", seg)
		run := v.hugeRunSegments(seg)
		v.hints.blockMeta = append(v.hints.blockMeta, metaHint{
			block: block,
			meta:  layout.Meta{Flags: layout.MetaAllocated, BlockWords: uint64(run) * v.geo.SegmentWords},
		})
		return
	}
	run := v.hugeRunSegments(seg)
	span := uint64(run) * v.geo.SegmentWords
	if m.BlockWords > span || m.BlockWords <= span-v.geo.SegmentWords {
		v.res.add(BadStructure, block,
			"huge head segment %d claims %d words, its %d-segment run holds %d",
			seg, m.BlockWords, run, span)
		v.hints.hugeSpan = append(v.hints.hugeSpan, hugeHint{head: seg, run: run})
	}
	v.alloc[block] = hdr
	v.res.AllocatedObjects++
	dataWords := span - layout.BlockHeaderWords
	if m.Flags&layout.MetaQueue != 0 {
		v.queues = append(v.queues, queueRec{block, m, dataWords})
	}
	v.recordEmbeds(block, m, dataWords)
}

func (v *validator) walkPagedSegment(seg int) {
	numPages := int(v.load(v.geo.SegNextPageAddr(seg)))
	if numPages > v.geo.PagesPerSegment {
		v.res.add(BadStructure, v.geo.SegNextPageAddr(seg),
			"segment %d claims %d pages (max %d)", seg, numPages, v.geo.PagesPerSegment)
		v.hints.numPages = append(v.hints.numPages, seg)
		numPages = v.geo.PagesPerSegment
	}

	// Free-list membership, per page and segment-wide client_free. Every
	// node must lie inside its page's bumped region and on a block boundary;
	// a wild node means the list itself is corrupt, so the walk stops there
	// rather than chase an arbitrary pointer chain through the pool.
	for pg := 0; pg < numPages; pg++ {
		metaA := v.geo.PageMetaAddr(seg, pg)
		info := layout.UnpackPageMeta(v.load(metaA + pmInfo))
		if info.Kind == layout.PageKindQuarantined {
			continue
		}
		base := v.geo.PageBase(seg, pg)
		scanPos := layout.Addr(v.load(metaA + pmScan))
		stride := layout.Addr(layout.RootRefWords)
		if info.Kind == layout.PageKindNormal {
			if int(info.SizeClass) >= len(v.geo.Classes) {
				continue // reported by the block walk below
			}
			stride = layout.Addr(v.geo.Classes[info.SizeClass].BlockWords)
		}
		nextOff := layout.Addr(layout.DataOff)
		if info.Kind == layout.PageKindRootRef {
			nextOff = layout.RootRefPptrOff
		}
		seen := 0
		for b := v.load(metaA + pmFree); b != 0; b = v.load(b + nextOff) {
			if b < base || b >= scanPos || (b-base)%stride != 0 {
				v.res.add(BadStructure, layout.Addr(b),
					"free-list node of %d/%d outside page or misaligned", seg, pg)
				v.hints.freeLists[seg] = true
				break
			}
			v.free[b]++
			seen++
			if seen > int(v.geo.PageWords) {
				v.res.add(BadStructure, metaA, "free list of %d/%d does not terminate", seg, pg)
				v.hints.freeLists[seg] = true
				break
			}
		}
	}
	segBase := v.geo.SegmentBase(seg)
	segEnd := segBase + layout.Addr(v.geo.SegmentWords)
	seen := 0
	for b := v.load(v.geo.SegClientFreeAddr(seg)); b != 0; b = v.load(b + layout.DataOff) {
		if b < segBase || b >= segEnd {
			v.res.add(BadStructure, layout.Addr(b),
				"client_free node outside segment %d", seg)
			v.hints.freeLists[seg] = true
			break
		}
		v.free[b]++
		seen++
		if seen > int(v.geo.SegmentWords) {
			v.res.add(BadStructure, v.geo.SegClientFreeAddr(seg),
				"client_free list of segment %d does not terminate", seg)
			v.hints.freeLists[seg] = true
			break
		}
	}

	for pg := 0; pg < numPages; pg++ {
		metaA := v.geo.PageMetaAddr(seg, pg)
		info := layout.UnpackPageMeta(v.load(metaA + pmInfo))
		base := v.geo.PageBase(seg, pg)
		end := base + layout.Addr(v.geo.PageWords)
		scanPos := v.load(metaA + pmScan)
		if info.Kind == layout.PageKindQuarantined {
			v.res.QuarantinedPages++
			v.quarP = append(v.quarP, addrRange{base, end})
			continue
		}
		if scanPos < uint64(base) || scanPos > uint64(end) {
			v.res.add(BadStructure, metaA, "page %d/%d bump pointer %#x outside page", seg, pg, scanPos)
			v.hints.bumpPages = append(v.hints.bumpPages, pageHint{seg, pg})
			continue
		}
		switch info.Kind {
		case layout.PageKindUnused:
		case layout.PageKindRootRef:
			for slot := base; slot+layout.RootRefWords <= layout.Addr(scanPos); slot += layout.RootRefWords {
				inUse, _ := layout.UnpackRootRef(v.load(slot))
				if !inUse {
					if v.free[slot] == 0 && !v.segOwnerAlive(seg) {
						v.res.add(LostFreeBlock, slot, "free RootRef slot on no list (%d/%d)", seg, pg)
						v.hints.lostFree = append(v.hints.lostFree, lostHint{slot, seg, pg, true})
					}
					continue
				}
				v.res.RootRefsInUse++
				if v.free[slot] > 0 {
					v.res.add(DoubleFree, slot, "in-use RootRef slot also on a free list")
					v.hints.freeLists[seg] = true
				}
				if pptr := v.load(slot + layout.RootRefPptrOff); pptr != 0 {
					v.expected[pptr]++
					v.refs[pptr] = append(v.refs[pptr], slot+layout.RootRefPptrOff)
				}
			}
		case layout.PageKindNormal:
			if int(info.SizeClass) >= len(v.geo.Classes) {
				v.res.add(BadStructure, metaA, "page %d/%d has bad size class %d", seg, pg, info.SizeClass)
				v.hints.pages = append(v.hints.pages, pageHint{seg, pg})
				continue
			}
			bw := layout.Addr(v.geo.Classes[info.SizeClass].BlockWords)
			for b := base; b+bw <= layout.Addr(scanPos); b += bw {
				m := layout.UnpackMeta(v.load(b + layout.MetaOff))
				if m.Quarantined() {
					v.res.QuarantinedBlocks++
					v.quarB[b] = true
					if v.free[b] > 0 {
						v.res.add(BadStructure, b, "quarantined block reachable from a free list")
						v.hints.freeLists[seg] = true
					}
					continue
				}
				if m.Allocated() {
					hdr := layout.UnpackHeader(v.load(b + layout.HeaderOff))
					v.alloc[b] = hdr
					v.res.AllocatedObjects++
					if v.free[b] > 0 {
						v.res.add(DoubleFree, b, "allocated block also on a free list")
						v.hints.freeLists[seg] = true
					}
					if m.BlockWords != uint64(bw) {
						v.res.add(BadStructure, b+layout.MetaOff,
							"block claims %d words on a class-%d page (%d/%d, class holds %d)",
							m.BlockWords, info.SizeClass, seg, pg, bw)
						fixed := m
						fixed.BlockWords = uint64(bw)
						v.hints.blockMeta = append(v.hints.blockMeta, metaHint{b, fixed})
					}
					if m.Flags&layout.MetaQueue != 0 {
						v.queues = append(v.queues, queueRec{b, m, uint64(bw) - layout.BlockHeaderWords})
					}
					v.recordEmbeds(b, m, uint64(bw)-layout.BlockHeaderWords)
				} else {
					v.res.FreeBlocks++
					switch v.free[b] {
					case 0:
						// The meta embed field records the freeer; a live
						// freeer holds the block on its pending tier.
						if v.clientAlive(int(m.EmbedCnt)) {
							break
						}
						v.res.add(LostFreeBlock, b, "free block on no list (%d/%d)", seg, pg)
						v.hints.lostFree = append(v.hints.lostFree, lostHint{b, seg, pg, false})
					case 1:
						// fine
					default:
						v.res.add(DoubleFree, b, "block on %d free lists", v.free[b])
						v.hints.freeLists[seg] = true
					}
				}
			}
		default:
			v.res.add(BadStructure, metaA, "page %d/%d has unknown kind %d", seg, pg, info.Kind)
			v.hints.pages = append(v.hints.pages, pageHint{seg, pg})
		}
	}
}

// recordEmbeds counts the block's embedded references. dataWords bounds the
// walk: a corrupt EmbedCnt must not turn neighbouring blocks' data — or
// words past the pool end — into phantom references.
func (v *validator) recordEmbeds(b layout.Addr, m layout.Meta, dataWords uint64) {
	n := uint64(m.EmbedCnt)
	if n > dataWords {
		v.res.add(BadStructure, b+layout.MetaOff,
			"block claims %d embedded references in %d data words", n, dataWords)
		n = dataWords
		fixed := m
		fixed.EmbedCnt = uint16(n)
		v.hints.blockMeta = append(v.hints.blockMeta, metaHint{b, fixed})
	}
	for i := uint64(0); i < n; i++ {
		a := b + layout.DataOff + layout.Addr(i)
		if t := v.load(a); t != 0 {
			v.expected[t]++
			v.refs[t] = append(v.refs[t], a)
		}
	}
}

// crossCheck compares counted versus actual references.
func (v *validator) crossCheck() {
	for b, hdr := range v.alloc {
		exp := v.expected[b]
		switch {
		case int(hdr.RefCnt) == exp && exp == 0:
			v.res.add(StuckReclaim, b, "allocated with zero references and zero count (never reclaimed)")
		case int(hdr.RefCnt) > exp:
			v.res.add(Leak, b, "ref_cnt=%d but only %d references found", hdr.RefCnt, exp)
		case int(hdr.RefCnt) < exp:
			v.res.add(UnderCount, b, "ref_cnt=%d but %d references found", hdr.RefCnt, exp)
		}
	}
	// Every reference must point at an allocated block. References into
	// quarantined territory are a lost-data statistic, not wild pointers —
	// repair leaves them for the owners to discover.
	for t, n := range v.expected {
		if _, ok := v.alloc[t]; ok {
			continue
		}
		if v.inQuarantine(t) {
			v.res.RefsIntoQuarantine += n
			continue
		}
		v.res.add(WildPointer, t, "%d reference(s) to a non-allocated block", n)
	}
}

// checkQueues audits every allocated block flagged as a transfer queue: the
// declared capacity must fit the block, the index words must describe a
// window no larger than the capacity, and the registry entry the queue
// claims must point back at it (§5.2 — the registry is how recovery and
// late receivers discover queues, so a broken backref orphans the queue
// from the sweep).
func (v *validator) checkQueues() {
	for _, q := range v.queues {
		v.res.Queues++
		capacity := int(q.meta.EmbedCnt)
		if capacity < 1 {
			v.res.add(QueueCorrupt, q.block, "queue with zero capacity")
			v.hints.queues = append(v.hints.queues, queueHint{block: q.block, capacity: capacity, unfit: true})
			continue
		}
		if uint64(capacity)+3 > q.dataWords {
			v.res.add(QueueCorrupt, q.block,
				"queue capacity %d plus indices does not fit %d data words", capacity, q.dataWords)
			v.hints.queues = append(v.hints.queues, queueHint{block: q.block, capacity: capacity, unfit: true})
			continue
		}
		h := queueHint{block: q.block, capacity: capacity}
		infoA := q.block + layout.DataOff + layout.Addr(capacity)
		head := v.load(infoA + 1)
		tail := v.load(infoA + 2)
		if head > tail {
			v.res.add(QueueCorrupt, q.block, "head %d ahead of tail %d", head, tail)
			h.badWindow = true
		} else if tail-head > uint64(capacity) {
			v.res.add(QueueCorrupt, q.block,
				"%d in flight exceeds capacity %d", tail-head, capacity)
			h.badWindow = true
		}
		reg := int(uint32(v.load(infoA) >> 32))
		if reg < 0 || reg >= v.geo.MaxQueues {
			v.res.add(QueueCorrupt, q.block, "registry index %d out of range", reg)
			h.badReg = true
		} else if got := v.load(v.geo.QueueRegAddr(reg)); got != uint64(q.block) {
			v.res.add(QueueCorrupt, q.block,
				"registry slot %d holds %#x, not this queue", reg, got)
			h.badReg = true
		}
		if h.badWindow || h.badReg {
			v.hints.queues = append(v.hints.queues, h)
		}
	}
}

// checkEraMatrix verifies the §4.3 observation invariant: no client can have
// seen an era of client i beyond the era client i itself has published
// (Era[j][i] <= Era[i][i]) — a violation would let recovery's Condition 2
// "prove" commits that never happened.
func (v *validator) checkEraMatrix() {
	for i := 1; i <= v.geo.MaxClients; i++ {
		own := v.load(v.geo.EraAddr(i, i))
		for j := 1; j <= v.geo.MaxClients; j++ {
			if j == i {
				continue
			}
			if seen := v.load(v.geo.EraAddr(j, i)); seen > own {
				v.res.add(EraMatrix, v.geo.EraAddr(j, i),
					"client %d saw era %d of client %d, who only published %d",
					j, seen, i, own)
				if seen > v.hints.eraRaise[i] {
					v.hints.eraRaise[i] = seen
				}
			}
		}
	}
}

// checkClientSlots verifies client-slot hygiene: the status word holds a
// known state, and no recovered or free slot still carries a valid redo
// entry — recovery must invalidate the redo before announcing RECOVERED, or
// the slot's next incarnation inherits a transaction it never ran.
func (v *validator) checkClientSlots() {
	for cid := 1; cid <= v.geo.MaxClients; cid++ {
		a := v.geo.ClientStatusAddr(cid)
		status := v.load(a)
		switch status {
		case layout.ClientSlotFree, layout.ClientAlive, layout.ClientDead, layout.ClientRecovered:
		default:
			v.res.add(BadStructure, a, "client %d status word is %d", cid, status)
			v.hints.badStatus = append(v.hints.badStatus, cid)
			continue
		}
		if _, ok := v.p.ReadRedo(cid); ok {
			if status == layout.ClientRecovered || status == layout.ClientSlotFree {
				v.res.add(StaleRedo, v.geo.ClientRedoBase(cid),
					"client %d is settled (status %d) but holds a valid redo entry", cid, status)
				v.hints.staleRedo = append(v.hints.staleRedo, cid)
			}
		}
	}
}

// checkSlotLeases verifies the slot-lease invariants (internal/shm's
// slotlease.go): the per-slot generation word's parity matches the status
// word — ALIVE/DEAD carry an odd (leased) generation, FREE/RECOVERED an even
// (released) one — and the free-slot bitmap only advertises claimable slots.
// A stale lease is harmless to correctness on its own (the status word is
// authoritative) but it either hides a claimable slot from the O(1) claim
// path or sends claimers into guaranteed-failing CASes, so fsck surfaces
// and repairs it. Only valid against a quiescent pool: a Connect or a
// recovery in flight legitimately holds the intermediate states.
func (v *validator) checkSlotLeases() {
	for cid := 1; cid <= v.geo.MaxClients; cid++ {
		status := v.load(v.geo.ClientStatusAddr(cid))
		var wantOdd bool
		switch status {
		case layout.ClientAlive, layout.ClientDead:
			wantOdd = true
		case layout.ClientSlotFree, layout.ClientRecovered:
			wantOdd = false
		default:
			continue // unknown status already reported by checkClientSlots
		}
		if gen := v.load(v.geo.SlotGenAddr(cid)); (gen&1 == 1) != wantOdd {
			v.res.add(StaleLease, v.geo.SlotGenAddr(cid),
				"client %d lease generation %d (parity %d) disagrees with status %d",
				cid, gen, gen&1, status)
			v.hints.staleLease = append(v.hints.staleLease, cid)
		}
		bitAddr, bit := v.geo.SlotMapBit(cid)
		set := v.load(bitAddr)&bit != 0
		claimable := status == layout.ClientSlotFree || status == layout.ClientRecovered
		if set != claimable {
			v.res.add(StaleLease, bitAddr,
				"client %d free-slot bitmap bit is %v but status %d makes the slot claimable=%v",
				cid, set, status, claimable)
			v.hints.slotMap = true
		}
	}
}

// Page meta word offsets (mirrors internal/shm's layout of the 3-word page
// meta area).
const (
	pmInfo = 0
	pmFree = 1
	pmScan = 2
)
