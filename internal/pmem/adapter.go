package pmem

import (
	"fmt"

	"repro/internal/alloc"
)

// Bench adapts a Heap to the alloc.Allocator benchmark interface.
type Bench struct{ H *Heap }

// Name implements alloc.Allocator.
func (b Bench) Name() string { return b.H.Name() }

// NewThread implements alloc.Allocator.
func (b Bench) NewThread() (alloc.ThreadAllocator, error) {
	ctx, err := b.H.NewThread()
	if err != nil {
		return nil, err
	}
	return benchCtx{ctx}, nil
}

type benchCtx struct{ c *Ctx }

func (t benchCtx) Alloc(size int) (alloc.Obj, error) { return t.c.Alloc(size) }

func (t benchCtx) Free(o alloc.Obj) error {
	a, ok := o.(Addr)
	if !ok {
		return fmt.Errorf("pmem: foreign object %T", o)
	}
	return t.c.Free(a)
}
