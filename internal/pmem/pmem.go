// Package pmem implements a Ralloc-style persistent-memory allocator: the
// recovery baseline of the paper's §6.2.1 and one of the Figure 6
// comparison lines.
//
// Like Ralloc (Cai et al., ISMM'20), it keeps allocation metadata (free
// lists, thread caches) in volatile memory for speed; only block headers
// and a root table live in the "persistent" arena. After a crash, nothing
// about free space survives, so recovery is a stop-the-world conservative
// garbage collection: mark every block reachable from the roots (treating
// every word as a potential pointer), then sweep the entire heap to rebuild
// free lists. Recovery cost is therefore proportional to the heap size —
// the property CXL-SHM's per-object reference counting avoids (its recovery
// is proportional to the references the failed client held).
package pmem

import (
	"fmt"
	"sync"
	"time"
)

// spin busy-waits approximately ns nanoseconds (models pwb/pfence costs).
func spin(ns int) {
	if ns <= 0 {
		return
	}
	start := time.Now()
	for time.Since(start) < time.Duration(ns) {
	}
}

// Addr is a word offset into the heap arena; 0 is nil.
type Addr = uint64

const (
	hdrAllocBit = uint64(1) << 63
	hdrMarkBit  = uint64(1) << 62
	hdrSizeMask = uint64(1)<<40 - 1
	headerWords = 1
	// extentWords is how much a thread carves from the global frontier at a
	// time (slow path under the heap mutex).
	extentWords = 2048
	numClasses  = 16
	classGrain  = 8 // words
	// MaxRoots is the size of the persistent root table.
	MaxRoots = 64
)

// Heap is a simulated persistent heap.
type Heap struct {
	mu    sync.Mutex
	words []uint64
	// frontier is the bump pointer for carving fresh extents (word index).
	frontier uint64
	// roots is the persistent root table (region [1, 1+MaxRoots)).
	// persistNS models the pwb+pfence cost a real pmem allocator pays to
	// persist each header update (0 = free, as on DRAM).
	persistNS int
	// Volatile state (lost on crash, rebuilt by Recover):
	shared [numClasses][]Addr // overflow free lists
}

// NewHeap creates a heap of the given size in bytes.
func NewHeap(bytes int) (*Heap, error) {
	words := bytes / 8
	if words < extentWords*2 {
		return nil, fmt.Errorf("pmem: heap of %d bytes too small", bytes)
	}
	h := &Heap{words: make([]uint64, words)}
	h.frontier = 1 + MaxRoots // word 0 nil, then the root table
	return h, nil
}

// Name implements alloc.Allocator.
func (h *Heap) Name() string { return "ralloc*" }

// SetPersistCost charges ns nanoseconds per header persist on the alloc and
// free paths, modelling a real persistent-memory medium. Without it, a
// word-array free-list allocator on DRAM is unrealistically fast compared
// to the Ralloc-on-Optane baseline the paper measures against.
func (h *Heap) SetPersistCost(ns int) { h.persistNS = ns }

func classFor(dataWords uint64) int {
	c := int((dataWords + classGrain - 1) / classGrain)
	if c < 1 {
		c = 1
	}
	if c > numClasses {
		return -1
	}
	return c - 1
}

func classWords(c int) uint64 { return uint64(c+1) * classGrain }

// Ctx is a per-thread allocation context. Its free-list caches are
// volatile: a crash discards them and Recover rebuilds free space.
type Ctx struct {
	h     *Heap
	local [numClasses][]Addr
	// extent is the thread's private bump region [cur, end).
	cur, end uint64
}

// NewThread creates a thread context (alloc.Allocator interface; also
// usable directly).
func (h *Heap) NewThread() (*Ctx, error) { return &Ctx{h: h}, nil }

// header reads/writes use plain (non-atomic) access: the heap contract is
// single-writer per block plus a global mutex on the carve path, and
// recovery is stop-the-world — matching a real pmem allocator's memory
// model rather than the CXL coherence model.

// Alloc allocates size bytes and returns the block's address.
func (c *Ctx) Alloc(size int) (Addr, error) {
	if size <= 0 {
		size = 1
	}
	dataWords := uint64((size + 7) / 8)
	cl := classFor(dataWords)
	if cl < 0 {
		return 0, fmt.Errorf("pmem: object of %d bytes exceeds largest class", size)
	}
	bw := headerWords + classWords(cl)

	// Fast path: thread-local free list.
	if n := len(c.local[cl]); n > 0 {
		a := c.local[cl][n-1]
		c.local[cl] = c.local[cl][:n-1]
		c.h.words[a] = hdrAllocBit | bw
		spin(c.h.persistNS)
		return a, nil
	}
	// Shared free list.
	c.h.mu.Lock()
	if n := len(c.h.shared[cl]); n > 0 {
		a := c.h.shared[cl][n-1]
		c.h.shared[cl] = c.h.shared[cl][:n-1]
		c.h.mu.Unlock()
		c.h.words[a] = hdrAllocBit | bw
		return a, nil
	}
	c.h.mu.Unlock()
	// Bump path.
	if c.cur+bw > c.end {
		if err := c.carve(); err != nil {
			return 0, err
		}
		if c.cur+bw > c.end {
			return 0, fmt.Errorf("pmem: heap exhausted")
		}
	}
	a := c.cur
	c.cur += bw
	if c.cur < c.end {
		// Keep the heap linearly parsable: the remainder of the extent is a
		// free filler block.
		c.h.words[c.cur] = c.end - c.cur
	}
	c.h.words[a] = hdrAllocBit | bw
	spin(c.h.persistNS)
	return a, nil
}

// carve takes a fresh extent from the global frontier.
func (c *Ctx) carve() error {
	h := c.h
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.frontier+extentWords > uint64(len(h.words)) {
		return fmt.Errorf("pmem: heap exhausted")
	}
	c.cur = h.frontier
	c.end = h.frontier + extentWords
	h.frontier = c.end
	h.words[c.cur] = extentWords // filler header over the whole extent
	return nil
}

// Free returns a block to the thread's cache.
func (c *Ctx) Free(a Addr) error {
	hdr := c.h.words[a]
	if hdr&hdrAllocBit == 0 {
		return fmt.Errorf("pmem: double free at %#x", a)
	}
	bw := hdr & hdrSizeMask
	cl := classFor(bw - headerWords)
	if cl < 0 {
		return fmt.Errorf("pmem: corrupt header at %#x", a)
	}
	c.h.words[a] = bw // clear allocated bit, keep size
	spin(c.h.persistNS)
	c.local[cl] = append(c.local[cl], a)
	return nil
}

// Data returns the block's data words (for building linked structures whose
// pointers the conservative GC must trace).
func (h *Heap) Data(a Addr) []uint64 {
	bw := h.words[a] & hdrSizeMask
	return h.words[a+headerWords : a+bw]
}

// SetRoot records a root object in the persistent root table.
func (h *Heap) SetRoot(i int, a Addr) error {
	if i < 0 || i >= MaxRoots {
		return fmt.Errorf("pmem: root index %d out of range", i)
	}
	h.words[1+uint64(i)] = a
	return nil
}

// Root reads root i.
func (h *Heap) Root(i int) Addr { return h.words[1+uint64(i)] }

// RecoveryStats describes one stop-the-world recovery.
type RecoveryStats struct {
	Duration     time.Duration
	BlocksTotal  int // blocks walked (entire heap)
	BlocksLive   int // reachable from roots
	BlocksSwept  int // unreachable allocated blocks reclaimed
	WordsScanned int // words examined by the conservative mark phase
}

// Recover performs the crash-recovery garbage collection: a full
// stop-the-world conservative mark-sweep over the entire heap. All thread
// contexts must be discarded before calling (their caches are gone — that
// is the crash); new ones are created afterwards.
func (h *Heap) Recover() RecoveryStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	start := time.Now()
	var st RecoveryStats

	// Pass 1: index block starts and clear marks. The heap is linearly
	// parsable thanks to filler headers.
	starts := make(map[Addr]uint64) // block start -> size
	for a := uint64(1 + MaxRoots); a < h.frontier; {
		hdr := h.words[a]
		bw := hdr & hdrSizeMask
		if bw == 0 || a+bw > h.frontier {
			break // torn frontier block: everything past it is unreachable free space
		}
		h.words[a] = hdr &^ hdrMarkBit
		if hdr&hdrAllocBit != 0 {
			starts[a] = bw
		}
		st.BlocksTotal++
		a += bw
	}

	// Pass 2: conservative mark from the root table.
	var stack []Addr
	for i := 0; i < MaxRoots; i++ {
		if r := h.Root(i); r != 0 {
			if _, ok := starts[r]; ok {
				stack = append(stack, r)
			}
		}
	}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		hdr := h.words[a]
		if hdr&hdrMarkBit != 0 {
			continue
		}
		h.words[a] = hdr | hdrMarkBit
		st.BlocksLive++
		bw := hdr & hdrSizeMask
		for w := a + headerWords; w < a+bw; w++ {
			st.WordsScanned++
			v := h.words[w]
			if _, ok := starts[v]; ok {
				stack = append(stack, v)
			}
		}
	}

	// Pass 3: sweep — rebuild the shared free lists from scratch.
	for cl := range h.shared {
		h.shared[cl] = h.shared[cl][:0]
	}
	for a := uint64(1 + MaxRoots); a < h.frontier; {
		hdr := h.words[a]
		bw := hdr & hdrSizeMask
		if bw == 0 || a+bw > h.frontier {
			break
		}
		if hdr&hdrAllocBit != 0 && hdr&hdrMarkBit == 0 {
			if cl := classFor(bw - headerWords); cl >= 0 {
				h.words[a] = bw
				h.shared[cl] = append(h.shared[cl], a)
				st.BlocksSwept++
			}
		} else if hdr&hdrAllocBit != 0 {
			h.words[a] = hdr &^ hdrMarkBit // keep live, drop mark
		} else if cl := classFor(bw - headerWords); cl >= 0 && bw == headerWords+classWords(cl) {
			// A freed class block whose list entry was lost with the crash.
			h.shared[cl] = append(h.shared[cl], a)
		}
		a += bw
	}
	st.Duration = time.Since(start)
	return st
}

// HeapBytes reports the arena size.
func (h *Heap) HeapBytes() int { return len(h.words) * 8 }

// UsedWords reports the bump frontier (how much of the heap has ever been
// carved).
func (h *Heap) UsedWords() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.frontier
}
