package pmem

import (
	"testing"
)

func newHeap(t *testing.T) *Heap {
	t.Helper()
	h, err := NewHeap(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestAllocFreeReuse(t *testing.T) {
	h := newHeap(t)
	c, _ := h.NewThread()
	a1, err := c.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Free(a1); err != nil {
		t.Fatal(err)
	}
	a2, err := c.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a1 {
		t.Fatalf("freed block not reused: %#x then %#x", a1, a2)
	}
	if err := c.Free(a2); err != nil {
		t.Fatal(err)
	}
	if err := c.Free(a2); err == nil {
		t.Fatal("double free undetected")
	}
}

func TestDataIsolation(t *testing.T) {
	h := newHeap(t)
	c, _ := h.NewThread()
	a, _ := c.Alloc(64)
	b, _ := c.Alloc(64)
	da, db := h.Data(a), h.Data(b)
	for i := range da {
		da[i] = 0xAAAA
	}
	for i := range db {
		db[i] = 0xBBBB
	}
	for i := range da {
		if da[i] != 0xAAAA {
			t.Fatal("neighbour write leaked")
		}
	}
}

func TestRecoverReclaimsUnreachable(t *testing.T) {
	h := newHeap(t)
	c, _ := h.NewThread()

	// A reachable chain: root -> n1 -> n2.
	root, _ := c.Alloc(16)
	n1, _ := c.Alloc(16)
	n2, _ := c.Alloc(16)
	h.Data(root)[0] = n1
	h.Data(n1)[0] = n2
	if err := h.SetRoot(0, root); err != nil {
		t.Fatal(err)
	}
	// Garbage: allocated, never rooted.
	var garbage []Addr
	for i := 0; i < 100; i++ {
		g, err := c.Alloc(32)
		if err != nil {
			t.Fatal(err)
		}
		garbage = append(garbage, g)
	}

	// Crash: all volatile state gone.
	st := h.Recover()
	if st.BlocksLive != 3 {
		t.Fatalf("live = %d, want 3", st.BlocksLive)
	}
	if st.BlocksSwept != len(garbage) {
		t.Fatalf("swept = %d, want %d", st.BlocksSwept, len(garbage))
	}
	// The chain survives.
	if h.Data(root)[0] != n1 || h.Data(n1)[0] != n2 {
		t.Fatal("reachable chain corrupted by recovery")
	}
	// Swept space is allocatable again.
	c2, _ := h.NewThread()
	for i := 0; i < 100; i++ {
		if _, err := c2.Alloc(32); err != nil {
			t.Fatalf("alloc after recovery: %v", err)
		}
	}
}

func TestRecoverCostScalesWithHeap(t *testing.T) {
	// The defining §6.2.1 property: GC recovery walks everything, so words
	// scanned grows with live data.
	scan := func(n int) int {
		h, _ := NewHeap(8 << 20)
		c, _ := h.NewThread()
		prev := Addr(0)
		for i := 0; i < n; i++ {
			a, err := c.Alloc(64)
			if err != nil {
				t.Fatal(err)
			}
			h.Data(a)[0] = prev
			prev = a
		}
		h.SetRoot(0, prev)
		return h.Recover().WordsScanned
	}
	small, large := scan(100), scan(5000)
	if large < small*20 {
		t.Fatalf("recovery scan did not scale with heap: %d vs %d words", small, large)
	}
}

func TestRootTableBounds(t *testing.T) {
	h := newHeap(t)
	if err := h.SetRoot(-1, 5); err == nil {
		t.Fatal("negative root index accepted")
	}
	if err := h.SetRoot(MaxRoots, 5); err == nil {
		t.Fatal("out-of-range root index accepted")
	}
	if err := h.SetRoot(3, 42); err != nil {
		t.Fatal(err)
	}
	if h.Root(3) != 42 {
		t.Fatal("root round trip failed")
	}
}

func TestHeapExhaustion(t *testing.T) {
	h, err := NewHeap(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := h.NewThread()
	n := 0
	for {
		if _, err := c.Alloc(120); err != nil {
			break
		}
		n++
		if n > 1<<20 {
			t.Fatal("heap never exhausts")
		}
	}
	if n == 0 {
		t.Fatal("no allocation succeeded")
	}
}
