package sweep

import (
	"reflect"
	"testing"

	"repro/internal/faultinject"
)

// TestCorruptCampaignHeap runs the full fault-class × region matrix on the
// heap backend and demands zero violations: every trial must end repaired,
// quarantined, or provably benign.
func TestCorruptCampaignHeap(t *testing.T) {
	trials, vs, err := RunCorrupt(CorruptConfig{Backend: "heap", Seed: 1, Log: t.Logf})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if want := len(faultinject.AllRegions) * len(faultinject.AllClasses); len(trials) != want {
		t.Fatalf("got %d trials, want %d", len(trials), want)
	}
	for _, v := range vs {
		t.Errorf("violation: %s (%s)", v.Detail, v.Op)
	}
	for _, tr := range trials {
		if tr.Outcome == "violation" {
			t.Errorf("trial %s x %s: violation — repro: %s", tr.Class, tr.Region, tr.Repro())
		}
	}
}

// TestCorruptCampaignMmapSubset exercises the mmap (file-backed,
// cross-process layout) backend on a bounded slice of the matrix.
func TestCorruptCampaignMmapSubset(t *testing.T) {
	_, vs, err := RunCorrupt(CorruptConfig{
		Backend: "mmap",
		Seed:    1,
		Regions: []faultinject.Region{faultinject.RegionBlockHeader, faultinject.RegionQueueSlot},
		Log:     t.Logf,
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	for _, v := range vs {
		t.Errorf("violation: %s (%s)", v.Detail, v.Op)
	}
}

// TestCorruptDeterminismAcrossBackends: same seed + same target spec must
// yield an identical injected-fault sequence on both backends — the repro
// contract behind `faultsim -corrupt -seed`.
func TestCorruptDeterminismAcrossBackends(t *testing.T) {
	cases := []struct {
		region faultinject.Region
		class  faultinject.Class
	}{
		{faultinject.RegionSegmentMeta, faultinject.ClassBitFlip},
		{faultinject.RegionRedoLog, faultinject.ClassTorn},
		{faultinject.RegionBlockHeader, faultinject.ClassStuckCAS},
	}
	for _, c := range cases {
		var got [2][]faultinject.InjectedFault
		for i, backend := range []string{"heap", "mmap"} {
			trials, _, err := RunCorrupt(CorruptConfig{
				Backend: backend,
				Seed:    42,
				Regions: []faultinject.Region{c.region},
				Classes: []faultinject.Class{c.class},
			})
			if err != nil {
				t.Fatalf("%s/%s on %s: %v", c.class, c.region, backend, err)
			}
			if len(trials) != 1 {
				t.Fatalf("%s/%s on %s: %d trials", c.class, c.region, backend, len(trials))
			}
			got[i] = trials[0].Faults
		}
		if len(got[0]) == 0 {
			t.Errorf("%s/%s: no faults injected", c.class, c.region)
		}
		if !reflect.DeepEqual(got[0], got[1]) {
			t.Errorf("%s/%s: fault sequences diverge across backends:\nheap: %+v\nmmap: %+v",
				c.class, c.region, got[0], got[1])
		}
	}
}
