package sweep

import "testing"

func TestPositions(t *testing.T) {
	cases := []struct {
		w, cap int
		want   []int
	}{
		{0, 0, nil},
		{3, 0, []int{1, 2, 3}},
		{3, 5, []int{1, 2, 3}},
		{10, 4, []int{1, 4, 7, 10}},
		{7, 3, []int{1, 4, 7}},
		{100, 2, []int{1, 51, 100}},
	}
	for _, c := range cases {
		got := positions(c.w, c.cap)
		if len(got) != len(c.want) {
			t.Fatalf("positions(%d,%d) = %v, want %v", c.w, c.cap, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("positions(%d,%d) = %v, want %v", c.w, c.cap, got, c.want)
			}
		}
	}
}

// TestSweepBounded runs the full phase-A sweep with a tight position budget
// on the heap backend. This is the CI-sized version of `faultsim -sweep`;
// any violation is a real crash-consistency bug.
func TestSweepBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	vs, st, err := Run(Config{Backend: "heap", MaxWrites: 6})
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops == 0 || st.Positions == 0 {
		t.Fatalf("sweep ran nothing: %+v", st)
	}
	for _, v := range vs {
		t.Errorf("%s", v)
	}
}

// TestSweepRecoveryBounded spot-checks phase B (crashing the recovery pass
// itself) on a handful of representative operations.
func TestSweepRecoveryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	for _, opName := range []string{"malloc-small", "free-embed", "send"} {
		vs, _, err := Run(Config{Backend: "heap", MaxWrites: 4, RecoverySweep: true, Op: opName})
		if err != nil {
			t.Fatalf("%s: %v", opName, err)
		}
		for _, v := range vs {
			t.Errorf("%s", v)
		}
	}
}
