// Package sweep implements the exhaustive access-granular crash sweep: for
// every operation of a scripted two-client workload it first counts the
// operation's device writes (stores and CAS attempts), then re-runs the
// script once per write index, crashing the acting client exactly before
// that access. After every crash it runs recovery, drains and releases
// everything a survivor can reach, and fscks the whole pool — so each
// (operation, write index) pair is a complete crash-recover-validate story.
//
// Named crash points (internal/faultinject.AllPoints) cover the gaps the
// implementation knows about; the sweep covers the gaps it doesn't. Phase B
// extends the same idea to the recovery pass itself: crash the victim, then
// crash the recovery executor at every one of its writes, recover both, and
// validate.
package sweep

import (
	"fmt"
	"strings"

	"repro/internal/check"
	"repro/internal/cxl"
	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/recovery"
	"repro/internal/shm"
)

// Config tunes a sweep run.
type Config struct {
	// Backend is the device backend for every pool: "heap" (default) or
	// "mmap".
	Backend string
	// MaxWrites bounds crash positions per operation (0 = every write). When
	// an operation has more writes, positions are stride-sampled but always
	// include the first and last write.
	MaxWrites int
	// RecoverySweep enables phase B: for each operation, crash the victim at
	// its first write, then sweep every device write of the recovery pass.
	RecoverySweep bool
	// Op restricts the sweep to the named operation (repro mode).
	Op string
	// Access restricts to one crash position (requires Op).
	Access int
	// RecoveryAccess, with Op, reproduces one phase-B position: the victim
	// crashes at its first write, the recovery executor at this write.
	RecoveryAccess int
	// Clients sizes the pool's client-slot table (0 = the default 8). The
	// workload still drives the same scripted actors; a larger table checks
	// that slot claims, heartbeat scans, and era-row scrubs stay correct —
	// and crash positions reproducible — at attachment-scale geometry.
	Clients int
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

// Violation is one invariant failure found by the sweep, with enough
// coordinates to reproduce it deterministically.
type Violation struct {
	Op             string
	Access         int
	RecoveryAccess int // 0 for phase-A violations
	Backend        string
	// Epoch names the deferred-publication epoch trigger (refill,
	// heartbeat, scan, detach, ...) when one ran inside the crashed
	// operation — the crash then landed before, during, or after a
	// publication burst, which is the first thing to know when triaging.
	// Empty when the operation ran no epoch.
	Epoch  string
	Detail string
}

// Repro formats the minimal-repro faultsim invocation for this violation.
func (v Violation) Repro() string {
	s := fmt.Sprintf("faultsim -repro \"op=%s access=%d", v.Op, v.Access)
	if v.Epoch != "" {
		s += fmt.Sprintf(" epoch=%s", v.Epoch)
	}
	if v.RecoveryAccess > 0 {
		s += fmt.Sprintf(" recovery-access=%d", v.RecoveryAccess)
	}
	b := v.Backend
	if b == "" {
		b = "heap"
	}
	return s + fmt.Sprintf("\" -backend %s", b)
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s", v.Repro(), v.Detail)
}

// Stats summarizes a sweep.
type Stats struct {
	Ops               int // operations swept
	Positions         int // phase-A crash positions executed
	RecoveryPositions int // phase-B crash positions executed
}

// hugeBytes spans 8 of the 16 sweep segments, so the second huge allocation
// must recycle the first one's segments (the remaining free run is too
// short) — exercising recovery over recycled segment bases.
const hugeBytes = 500 * 1024

func geometry(clients int) layout.GeometryConfig {
	if clients <= 0 {
		clients = 8
	}
	return layout.GeometryConfig{
		MaxClients: clients, NumSegments: 16, SegmentWords: 1 << 13,
		PageWords: 1 << 9, MaxQueues: 8,
	}
}

// env is the per-run workload state: the pool, the two scripted clients, the
// recovery service, and the addresses the ops thread through. receipts is
// the exactly-once ledger: payload id -> times delivered.
type env struct {
	p   *shm.Pool
	x   *shm.Client // primary actor (allocations, sends)
	o   *shm.Client // peer (receives, queue end)
	svc *recovery.Service

	// extra is the slot-recycle leg's fourth client: attached, crashed,
	// reclaimed, and re-attached over the same slot. extraCID/extraGen
	// remember the first lease so the re-attach can assert slot identity and
	// generation monotonicity.
	extra    *shm.Client
	extraCID int
	extraGen uint64

	r1, b1     layout.Addr   // long-lived small object, published as named root 0
	rp, parent layout.Addr   // embed-carrying parent
	rh, rh2    layout.Addr   // huge-object roots
	bh         layout.Addr   // first huge object's block
	qr, q, oq  layout.Addr   // queue: x's root, block, o's root
	burst      []layout.Addr // roots of the deferred-free burst leg

	nextPayload uint64
	receipts    map[uint64]int
}

// op is one scripted step: who performs it and what it does.
type op struct {
	name  string
	actor func(*env) *shm.Client
	run   func(*env) error
}

func actorX(e *env) *shm.Client { return e.x }
func actorO(e *env) *shm.Client { return e.o }

func actorExtra(e *env) *shm.Client { return e.extra }

// mgmtOps names the operations swept with victim -1 instead of a scripted
// actor: their device writes come from the management plane (slot claim
// words, fences) and from a client that may not fully exist yet. A crash
// inside one simulates the attaching or recovering *process* dying, so the
// cleanup path (runPosition) treats the recovery executor as a casualty too.
var mgmtOps = map[string]bool{
	"connect-fresh":    true,
	"reclaim-extra":    true,
	"connect-recycled": true,
}

// sendFrom allocates a payload, stamps it with a fresh id, sends it, and
// drops the sender's root (the queue slot now owns the reference).
func sendFrom(e *env, c *shm.Client) error {
	id := e.nextPayload + 1
	r, b, err := c.Malloc(64, 0)
	if err != nil {
		return err
	}
	e.nextPayload = id
	c.StoreWord(b, 0, id)
	if err := c.Send(e.q, b); err != nil {
		return err
	}
	_, err = c.ReleaseRoot(r)
	return err
}

func sendOne(e *env) error { return sendFrom(e, e.x) }

// recordReceipt notes one delivery and releases the receiver's root.
func recordReceipt(e *env, c *shm.Client, root, target layout.Addr) error {
	e.receipts[c.LoadWord(target, 0)]++
	_, err := c.ReleaseRoot(root)
	return err
}

// script builds the operation list. Every run replays the same sequence, so
// write counts are reproducible position by position.
func script() []op {
	return []op{
		{"malloc-small", actorX, func(e *env) error {
			var err error
			e.r1, e.b1, err = e.x.Malloc(64, 0)
			return err
		}},
		{"clone-root", actorX, func(e *env) error {
			e.x.CloneRoot(e.r1)
			_, err := e.x.ReleaseRoot(e.r1)
			return err
		}},
		{"publish-root", actorX, func(e *env) error {
			return e.x.PublishRoot(0, e.b1)
		}},
		{"malloc-embed", actorX, func(e *env) error {
			var err error
			e.rp, e.parent, err = e.x.Malloc(64, 2)
			return err
		}},
		{"set-embed", actorX, func(e *env) error {
			rc, ch, err := e.x.Malloc(32, 0)
			if err != nil {
				return err
			}
			if err := e.x.SetEmbed(e.parent, 0, ch); err != nil {
				return err
			}
			_, err = e.x.ReleaseRoot(rc)
			return err
		}},
		{"change-embed", actorX, func(e *env) error {
			ry, y, err := e.x.Malloc(32, 1)
			if err != nil {
				return err
			}
			rg, g, err := e.x.Malloc(16, 0)
			if err != nil {
				return err
			}
			if err := e.x.SetEmbed(y, 0, g); err != nil {
				return err
			}
			if _, err := e.x.ReleaseRoot(rg); err != nil {
				return err
			}
			if err := e.x.ChangeEmbed(e.parent, 0, y); err != nil {
				return err
			}
			_, err = e.x.ReleaseRoot(ry)
			return err
		}},
		{"clear-embed", actorX, func(e *env) error {
			return e.x.ClearEmbed(e.parent, 0)
		}},
		{"free-embed", actorX, func(e *env) error {
			_, err := e.x.ReleaseRoot(e.rp)
			return err
		}},
		{"malloc-huge", actorX, func(e *env) error {
			var err error
			e.rh, e.bh, err = e.x.Malloc(hugeBytes, 0)
			return err
		}},
		{"dirty-huge", actorX, func(e *env) error {
			// Write payload that spells out a plausible allocated-huge
			// header/meta at each body segment's base words: after the free,
			// a recycled claim's crash recovery must not mistake the leftover
			// payload for a live object.
			geo := e.p.Geometry()
			segWords := int(geo.SegmentWords)
			dataWords := hugeBytes / layout.WordBytes
			span := (dataWords + layout.BlockHeaderWords + segWords - 1) / segWords
			fakeHdr := layout.PackHeader(layout.Header{
				LCID: uint16(e.x.ID()), LEra: 7, RefCnt: 2,
			})
			fakeMeta := layout.PackMeta(layout.Meta{
				Flags:      layout.MetaAllocated | layout.MetaHuge,
				BlockWords: uint64(dataWords + layout.BlockHeaderWords),
			})
			for j := 1; j < span; j++ {
				base := j*segWords - layout.DataOff
				e.x.StoreWord(e.bh, base+layout.HeaderOff, fakeHdr)
				e.x.StoreWord(e.bh, base+layout.MetaOff, fakeMeta)
			}
			return nil
		}},
		{"free-huge", actorX, func(e *env) error {
			_, err := e.x.ReleaseRoot(e.rh)
			return err
		}},
		{"malloc-huge-2", actorX, func(e *env) error {
			var err error
			e.rh2, _, err = e.x.Malloc(hugeBytes, 0)
			return err
		}},
		{"free-huge-2", actorX, func(e *env) error {
			_, err := e.x.ReleaseRoot(e.rh2)
			return err
		}},
		{"create-queue", actorX, func(e *env) error {
			var err error
			e.qr, e.q, err = e.x.CreateQueue(e.o.ID(), 4)
			return err
		}},
		{"open-queue", actorO, func(e *env) error {
			var err error
			e.oq, err = e.o.OpenQueue(e.q)
			return err
		}},
		{"send", actorX, sendOne},
		{"receive", actorO, func(e *env) error {
			root, target, err := e.o.Receive(e.q)
			if err != nil {
				return err
			}
			return recordReceipt(e, e.o, root, target)
		}},
		{"send-batch", actorX, func(e *env) error {
			var targets []layout.Addr
			var roots []layout.Addr
			for i := 0; i < 3; i++ {
				id := e.nextPayload + 1
				r, b, err := e.x.Malloc(64, 0)
				if err != nil {
					return err
				}
				e.nextPayload = id
				e.x.StoreWord(b, 0, id)
				roots = append(roots, r)
				targets = append(targets, b)
			}
			n, err := e.x.SendBatch(e.q, targets)
			if err != nil {
				return err
			}
			if n != len(targets) {
				return fmt.Errorf("send-batch sent %d of %d", n, len(targets))
			}
			for _, r := range roots {
				if _, err := e.x.ReleaseRoot(r); err != nil {
					return err
				}
			}
			return nil
		}},
		{"receive-batch", actorO, func(e *env) error {
			roots, targets, err := e.o.ReceiveBatch(e.q, 4)
			if err != nil {
				return err
			}
			for i := range roots {
				if err := recordReceipt(e, e.o, roots[i], targets[i]); err != nil {
					return err
				}
			}
			return nil
		}},
		// Deferred-publication legs: a burst of frees parks blocks in the
		// owner's pending tier (free-marked on the device but on no free
		// list), so crashes in free-burst land BEFORE the publication
		// epoch; the Heartbeat in publish-epoch then runs the epoch, and
		// crashes there land DURING the burst (chains part-linked, head
		// store pending or landed, Used fold pending) and AFTER it (the
		// heartbeat/metrics stores that follow). Recovery must re-link the
		// unpublished blocks via the segment scan in the first case and
		// must not double-insert them in the others.
		{"malloc-burst", actorX, func(e *env) error {
			e.burst = e.burst[:0]
			for i := 0; i < 24; i++ {
				r, b, err := e.x.Malloc(48, 0)
				if err != nil {
					return err
				}
				e.x.StoreWord(b, 0, uint64(0xb0000+i))
				e.burst = append(e.burst, r)
			}
			return nil
		}},
		{"free-burst", actorX, func(e *env) error {
			for _, r := range e.burst {
				if _, err := e.x.ReleaseRoot(r); err != nil {
					return err
				}
			}
			e.burst = e.burst[:0]
			return nil
		}},
		{"publish-epoch", actorX, func(e *env) error {
			e.x.Heartbeat()
			return nil
		}},
		// Slot-recycle legs: the client-slot lease lifecycle under crashes at
		// every write. A fourth client attaches (bitmap-guided claim, lease
		// generation stamp, era/redo/identity init), does real work, is
		// killed and reclaimed, and its slot is leased again — asserting the
		// recycled lease lands on the same slot with a strictly higher
		// generation. The mgmt ops (see mgmtOps) sweep all write sources;
		// crashes leave half-born or half-reclaimed slots for the fresh
		// service and the epilogue monitor to converge.
		{"connect-fresh", actorX, func(e *env) error {
			c, err := e.p.Connect()
			if err != nil {
				return err
			}
			e.extra, e.extraCID, e.extraGen = c, c.ID(), c.Generation()
			return nil
		}},
		{"churn-extra", actorExtra, func(e *env) error {
			r, b, err := e.extra.Malloc(64, 0)
			if err != nil {
				return err
			}
			e.extra.StoreWord(b, 0, 0xec0)
			_, err = e.extra.ReleaseRoot(r)
			return err
		}},
		{"reclaim-extra", actorX, func(e *env) error {
			cid := e.extra.ID()
			e.extra = nil
			if err := e.p.MarkClientDead(cid); err != nil {
				return err
			}
			_, err := e.svc.RecoverClient(cid)
			return err
		}},
		{"connect-recycled", actorX, func(e *env) error {
			c, err := e.p.Connect()
			if err != nil {
				return err
			}
			if c.ID() != e.extraCID {
				return fmt.Errorf("recycle claimed slot %d, want %d", c.ID(), e.extraCID)
			}
			if c.Generation() <= e.extraGen {
				return fmt.Errorf("recycled lease generation did not advance: %d -> %d",
					e.extraGen, c.Generation())
			}
			e.extra = c
			return nil
		}},
		// Byte-lease leg: a lease is client-local state over data words, so
		// a crash while one is live must leave recovery nothing to do. The
		// lease's own writes are data-plane (they bypass the device hook);
		// the StoreWord between acquire and release provides the counted
		// crash position inside the hold window.
		{"lease-hold", actorX, func(e *env) error {
			l, err := e.x.AcquireLease(e.b1)
			if err != nil {
				return err
			}
			copy(l.Bytes(), "leased bytes")
			e.x.StoreWord(e.b1, 2, 0xbeef)
			e.x.ReleaseLease(l)
			return nil
		}},
		{"scan", actorX, func(e *env) error {
			seg := e.p.Geometry().SegmentIndexOf(e.b1)
			e.x.ScanSegment(seg, false)
			return nil
		}},
		{"unpublish-root", actorX, func(e *env) error {
			return e.x.UnpublishRoot(0)
		}},
		{"release-root", actorX, func(e *env) error {
			_, err := e.x.ReleaseRoot(e.r1)
			return err
		}},
		{"release-queue", actorX, func(e *env) error {
			_, err := e.x.ReleaseRoot(e.qr)
			return err
		}},
		{"close-queue", actorO, func(e *env) error {
			_, err := e.o.ReleaseRoot(e.oq)
			return err
		}},
	}
}

// positions returns the crash positions for an operation with w writes,
// bounded by cap (0 = all). Sampling always keeps the first and last write:
// the edges are where ordering bugs live.
func positions(w, cap int) []int {
	if w <= 0 {
		return nil
	}
	if cap <= 0 || w <= cap {
		out := make([]int, 0, w)
		for j := 1; j <= w; j++ {
			out = append(out, j)
		}
		return out
	}
	stride := (w + cap - 1) / cap
	var out []int
	for j := 1; j <= w; j += stride {
		out = append(out, j)
	}
	if out[len(out)-1] != w {
		out = append(out, w)
	}
	return out
}

// setup builds a fresh pool with the sweeper hooked in, connects the two
// scripted clients and the recovery service, and returns the run env.
// Connection order is fixed (x=1, o=2, executor=3) so write counts are
// reproducible.
func setup(backend string, clients int, sw *faultinject.AccessSweeper) (*env, error) {
	return setupWith(backend, clients, []cxl.Middleware{cxl.WithAccessHook(sw.Hook)})
}

// setupWith is setup with an arbitrary middleware stack — the corruption
// campaign swaps the access sweeper for the write-fault corruptor.
func setupWith(backend string, clients int, mws []cxl.Middleware) (*env, error) {
	p, err := shm.NewPool(shm.Config{
		Geometry:   geometry(clients),
		Backend:    backend,
		Middleware: mws,
	})
	if err != nil {
		return nil, err
	}
	e := &env{p: p, receipts: make(map[uint64]int)}
	if e.x, err = p.Connect(); err != nil {
		p.CloseDevice()
		return nil, err
	}
	if e.o, err = p.Connect(); err != nil {
		p.CloseDevice()
		return nil, err
	}
	if e.svc, err = recovery.NewService(p); err != nil {
		p.CloseDevice()
		return nil, err
	}
	return e, nil
}

// replay runs ops[0:k] with the sweeper off; these must all succeed.
func replay(e *env, ops []op, k int) error {
	for i := 0; i < k; i++ {
		if err := ops[i].run(e); err != nil {
			return fmt.Errorf("replaying %s: %w", ops[i].name, err)
		}
	}
	return nil
}

// alive reports whether c's lease is still the current one on its slot. The
// status word alone is not enough: once slots recycle, a crashed client's
// slot can be reclaimed by a later Connect (the epilogue helper included),
// turning the slot ALIVE again under a handle whose lease has long been
// revoked. The generation word disambiguates — a stale handle's generation
// no longer matches the slot's.
func alive(e *env, c *shm.Client) bool {
	return c != nil && e.p.ClientStatus(c.ID()) == layout.ClientAlive &&
		e.p.SlotGeneration(c.ID()) == c.Generation()
}

// queueLive reports whether the scripted queue block still exists as a
// queue (it is freed once both roots are gone).
func queueLive(e *env) bool {
	if e.q == 0 {
		return false
	}
	m := layout.UnpackMeta(e.p.Device().Load(e.q + layout.MetaOff))
	return m.Allocated() && m.Flags&layout.MetaQueue != 0
}

// finish is the epilogue every run shares: drain the queue through a live
// client, drop the named root, close the survivors, run the monitor until
// the pool settles, and fsck. Any inconsistency (or a payload delivered
// twice) becomes a Violation with the run's coordinates.
func finish(e *env, svc *recovery.Service, v Violation) []Violation {
	var out []Violation
	bad := func(format string, args ...any) {
		v.Detail = fmt.Sprintf(format, args...)
		out = append(out, v)
	}

	// A helper client for epilogue work no scripted survivor can do.
	nc, err := e.p.Connect()
	if err != nil {
		bad("epilogue connect: %v", err)
		return out
	}

	drainer := nc
	if alive(e, e.o) {
		drainer = e.o
	}
	drain := func() {
		for queueLive(e) && drainer.QueueLen(e.q) > 0 {
			roots, targets, err := drainer.ReceiveBatch(e.q, 4)
			if err == shm.ErrQueueEmpty {
				continue // stale slots consumed; QueueLen re-checks progress
			}
			if err != nil {
				bad("drain: %v", err)
				return
			}
			for i := range roots {
				if rerr := recordReceipt(e, drainer, roots[i], targets[i]); rerr != nil {
					bad("drain release: %v", rerr)
				}
			}
		}
	}
	if queueLive(e) {
		drain()
		// Refill wave: a surviving sender keeps using the ring across the
		// crash, landing a send on every slot. A crashed send's orphan sits
		// exactly at the old tail, so the first new send must reclaim it —
		// overwriting it instead is a leak only this reuse exposes.
		sender := nc
		if alive(e, e.x) {
			sender = e.x
		}
		m := layout.UnpackMeta(e.p.Device().Load(e.q + layout.MetaOff))
		for i := 0; i < int(m.EmbedCnt); i++ {
			if err := sendFrom(e, sender); err != nil {
				bad("refill send %d/%d: %v", i+1, m.EmbedCnt, err)
				break
			}
		}
		drain()
	}

	// Drop the named root if still published.
	if e.p.Device().Load(e.p.Geometry().RootDirAddr(0)) != 0 {
		if err := nc.UnpublishRoot(0); err != nil {
			bad("unpublish: %v", err)
		}
	}

	// Survivors' caches must still agree with the device before they go.
	for _, c := range []*shm.Client{e.x, e.o, e.extra} {
		if alive(e, c) {
			if err := c.CheckShadow(); err != nil {
				bad("shadow incoherent on client %d: %v", c.ID(), err)
			}
		}
	}

	for _, c := range []*shm.Client{e.x, e.o, e.extra, nc} {
		if alive(e, c) {
			if err := c.Close(); err != nil {
				bad("close client %d: %v", c.ID(), err)
			}
		}
	}

	mon := recovery.NewMonitor(svc, recovery.MonitorConfig{})
	for i := 0; i < 8; i++ {
		mon.Tick()
	}
	if fails := mon.Failures(); len(fails) > 0 {
		bad("monitor recovery failure: client %d: %v", fails[0].Client, fails[0].Err)
	}

	res := check.Validate(e.p)
	if !res.Clean() {
		var lines []string
		for i, is := range res.Issues {
			if i == 3 {
				lines = append(lines, fmt.Sprintf("... %d more", len(res.Issues)-3))
				break
			}
			lines = append(lines, is.String())
		}
		bad("fsck: %s", strings.Join(lines, "; "))
	} else if res.AllocatedObjects != 0 {
		bad("fsck: %d objects survive a fully-released run", res.AllocatedObjects)
	}

	for id, n := range e.receipts {
		if n > 1 {
			bad("payload %d delivered %d times", id, n)
		}
	}
	return out
}

// Run executes the sweep and returns every violation found.
func Run(cfg Config) ([]Violation, Stats, error) {
	var vs []Violation
	var st Stats
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	ops := script()
	if cfg.Op != "" {
		found := false
		for _, o := range ops {
			if o.name == cfg.Op {
				found = true
			}
		}
		if !found {
			return nil, st, fmt.Errorf("sweep: unknown op %q", cfg.Op)
		}
	}

	// Baseline: the full script with no crash must validate clean, or every
	// position's verdict is meaningless.
	if cfg.Op == "" {
		sw := faultinject.NewAccessSweeper()
		e, err := setup(cfg.Backend, cfg.Clients, sw)
		if err != nil {
			return nil, st, err
		}
		berr := replay(e, ops, len(ops))
		v := Violation{Op: "baseline", Backend: cfg.Backend}
		if berr != nil {
			vs = append(vs, Violation{Op: "baseline", Backend: cfg.Backend, Detail: berr.Error()})
		} else {
			vs = append(vs, finish(e, e.svc, v)...)
		}
		e.p.CloseDevice()
		if len(vs) > 0 {
			return vs, st, nil
		}
	}

	for k, o := range ops {
		if cfg.Op != "" && o.name != cfg.Op {
			continue
		}
		st.Ops++

		// Counting pass: how many device writes does this op issue for its
		// actor?
		sw := faultinject.NewAccessSweeper()
		e, err := setup(cfg.Backend, cfg.Clients, sw)
		if err != nil {
			return vs, st, err
		}
		if err := replay(e, ops, k); err != nil {
			e.p.CloseDevice()
			return vs, st, err
		}
		if mgmtOps[o.name] {
			sw.SetVictim(-1)
		} else {
			sw.SetVictim(o.actor(e).ID())
		}
		sw.StartCounting()
		operr := o.run(e)
		writes := sw.StopCounting()
		e.p.CloseDevice()
		if operr != nil {
			return vs, st, fmt.Errorf("op %s failed uninjected: %w", o.name, operr)
		}

		if cfg.RecoveryAccess > 0 {
			// Repro of a phase-B position: skip phase A entirely.
			rv, err := runRecoveryPosition(cfg, ops, k, cfg.RecoveryAccess)
			if err != nil {
				return vs, st, err
			}
			st.RecoveryPositions++
			vs = append(vs, rv...)
			continue
		}

		pos := positions(writes, cfg.MaxWrites)
		if cfg.Access > 0 {
			pos = []int{cfg.Access}
		}
		logf("op %-14s writes=%-3d positions=%d", o.name, writes, len(pos))
		for _, j := range pos {
			rv, err := runPosition(cfg, ops, k, j)
			if err != nil {
				return vs, st, err
			}
			st.Positions++
			vs = append(vs, rv...)
		}

		// mgmt ops skip phase B: their bodies already are (or contain) the
		// recovery pass, so phase A sweeps those writes directly.
		if cfg.RecoverySweep && !mgmtOps[o.name] {
			rvs, n, err := sweepRecovery(cfg, ops, k, logf)
			if err != nil {
				return vs, st, err
			}
			st.RecoveryPositions += n
			vs = append(vs, rvs...)
		}
	}
	return vs, st, nil
}

// runPosition is one phase-A story: replay to op k, crash its actor at write
// j, recover, epilogue, fsck.
func runPosition(cfg Config, ops []op, k, j int) ([]Violation, error) {
	v := Violation{Op: ops[k].name, Access: j, Backend: cfg.Backend}
	sw := faultinject.NewAccessSweeper()
	e, err := setup(cfg.Backend, cfg.Clients, sw)
	if err != nil {
		return nil, err
	}
	defer e.p.CloseDevice()
	if err := replay(e, ops, k); err != nil {
		return nil, err
	}
	victim := ops[k].actor(e)
	_, seq0 := victim.LastPublishEpoch()
	if mgmtOps[ops[k].name] {
		sw.SetVictim(-1)
	} else {
		sw.SetVictim(victim.ID())
	}
	sw.Arm(j)
	var operr error
	crash := faultinject.Run(func() { operr = ops[k].run(e) })
	sw.Disarm()
	// If the op ran a publication epoch (completed or cut short by the
	// crash — the trigger is recorded before the epoch's first store),
	// name its trigger in any violation's repro line.
	if trig, seq := victim.LastPublishEpoch(); seq > seq0 {
		v.Epoch = trig
	}
	if crash == nil {
		if operr != nil {
			v.Detail = fmt.Sprintf("op error without crash: %v", operr)
			return []Violation{v}, nil
		}
		// The op finished before write j (count drift would be a harness
		// bug); validate the completed run anyway.
		return finish(e, e.svc, v), nil
	}
	if mgmtOps[ops[k].name] {
		// The crash hit the management plane or a half-born client — the
		// attaching/recovering process died. Its recovery executor cannot be
		// trusted mid-transaction, so it is declared dead too; a fresh
		// service recovers it and every slot the crash stranded at DEAD.
		// Half-claimed ALIVE slots (no heartbeat will ever come) are fenced
		// by the epilogue monitor.
		execID := e.svc.Executor().ID()
		if err := e.p.MarkClientDead(execID); err != nil {
			v.Detail = fmt.Sprintf("mark executor dead: %v", err)
			return []Violation{v}, nil
		}
		svc2, err := recovery.NewService(e.p)
		if err != nil {
			v.Detail = fmt.Sprintf("second service: %v", err)
			return []Violation{v}, nil
		}
		if _, err := svc2.RecoverClient(execID); err != nil {
			v.Detail = fmt.Sprintf("recover executor: %v", err)
			return []Violation{v}, nil
		}
		for cid := 1; cid <= e.p.Geometry().MaxClients; cid++ {
			if e.p.ClientStatus(cid) == layout.ClientDead {
				if _, err := svc2.RecoverClient(cid); err != nil {
					v.Detail = fmt.Sprintf("recover stranded client %d: %v", cid, err)
					return []Violation{v}, nil
				}
			}
		}
		return finish(e, svc2, v), nil
	}
	if err := e.p.MarkClientDead(victim.ID()); err != nil {
		v.Detail = fmt.Sprintf("mark dead: %v", err)
		return []Violation{v}, nil
	}
	if _, err := e.svc.RecoverClient(victim.ID()); err != nil {
		v.Detail = fmt.Sprintf("recover: %v", err)
		return []Violation{v}, nil
	}
	return finish(e, e.svc, v), nil
}

// sweepRecovery is phase B for op k: crash the victim at its first write,
// then crash the recovery pass at every one of its own device writes.
func sweepRecovery(cfg Config, ops []op, k int, logf func(string, ...any)) ([]Violation, int, error) {
	// Counting pass for the recovery writes.
	sw := faultinject.NewAccessSweeper()
	e, err := setup(cfg.Backend, cfg.Clients, sw)
	if err != nil {
		return nil, 0, err
	}
	if err := replay(e, ops, k); err != nil {
		e.p.CloseDevice()
		return nil, 0, err
	}
	victim := ops[k].actor(e)
	sw.SetVictim(victim.ID())
	sw.Arm(1)
	crash := faultinject.Run(func() { _ = ops[k].run(e) })
	sw.Disarm()
	if crash == nil {
		// The op issues no victim writes; nothing to sweep.
		e.p.CloseDevice()
		return nil, 0, nil
	}
	if err := e.p.MarkClientDead(victim.ID()); err != nil {
		e.p.CloseDevice()
		return nil, 0, err
	}
	sw.SetVictim(-1) // recovery writes: executor client + management plane
	sw.StartCounting()
	_, rerr := e.svc.RecoverClient(victim.ID())
	writes := sw.StopCounting()
	e.p.CloseDevice()
	if rerr != nil {
		return nil, 0, fmt.Errorf("recovery of %s crash failed uninjected: %w", ops[k].name, rerr)
	}

	var vs []Violation
	pos := positions(writes, cfg.MaxWrites)
	logf("op %-14s recovery writes=%-3d positions=%d", ops[k].name, writes, len(pos))
	for _, r := range pos {
		rv, err := runRecoveryPosition(cfg, ops, k, r)
		if err != nil {
			return vs, len(pos), err
		}
		vs = append(vs, rv...)
	}
	return vs, len(pos), nil
}

// runRecoveryPosition is one phase-B story: the victim crashes at its first
// write of op k, then the recovery pass crashes at its r-th write. A second
// service recovers the executor first (replaying its interrupted
// transactions), then the victim, then the usual epilogue and fsck.
func runRecoveryPosition(cfg Config, ops []op, k, r int) ([]Violation, error) {
	v := Violation{Op: ops[k].name, Access: 1, RecoveryAccess: r, Backend: cfg.Backend}
	sw := faultinject.NewAccessSweeper()
	e, err := setup(cfg.Backend, cfg.Clients, sw)
	if err != nil {
		return nil, err
	}
	defer e.p.CloseDevice()
	if err := replay(e, ops, k); err != nil {
		return nil, err
	}
	victim := ops[k].actor(e)
	sw.SetVictim(victim.ID())
	sw.Arm(1)
	if crash := faultinject.Run(func() { _ = ops[k].run(e) }); crash == nil {
		return nil, nil // op issues no victim writes
	}
	sw.Disarm()
	if err := e.p.MarkClientDead(victim.ID()); err != nil {
		return nil, err
	}
	sw.SetVictim(-1)
	sw.Arm(r)
	crash := faultinject.Run(func() { _, _ = e.svc.RecoverClient(victim.ID()) })
	sw.Disarm()
	svc := e.svc
	if crash != nil {
		// The recovery executor died mid-pass. Its own redo entry and
		// half-done sweeps are recovered by a fresh service — executor
		// first, then the still-dead victim.
		execID := e.svc.Executor().ID()
		if err := e.p.MarkClientDead(execID); err != nil {
			v.Detail = fmt.Sprintf("mark executor dead: %v", err)
			return []Violation{v}, nil
		}
		svc2, err := recovery.NewService(e.p)
		if err != nil {
			v.Detail = fmt.Sprintf("second service: %v", err)
			return []Violation{v}, nil
		}
		if _, err := svc2.RecoverClient(execID); err != nil {
			v.Detail = fmt.Sprintf("recover executor: %v", err)
			return []Violation{v}, nil
		}
		if e.p.ClientStatus(victim.ID()) == layout.ClientDead {
			if _, err := svc2.RecoverClient(victim.ID()); err != nil {
				v.Detail = fmt.Sprintf("re-recover victim: %v", err)
				return []Violation{v}, nil
			}
		}
		svc = svc2
	}
	return finish(e, svc, v), nil
}
