// corrupt.go is the corruption campaign: the crash sweep's sibling for
// beyond-fail-stop faults. For every (fault class × pool region) pair it
// replays the scripted workload to a rich mid-state, injects one seeded
// fault — a bit flip at rest, a torn multi-word record, or a live stuck
// CAS — lets the remaining operations run against the damaged pool, then
// settles, repairs, and demands one of exactly three verdicts: repaired
// (validator-clean, nothing written off), quarantined (clean modulo
// explicitly written-off blocks/pages with accounted blast radius), or
// benign (the fault landed in don't-care state and the validator proves
// it). Anything else — an fsck panic, surviving issues, damage absorbed
// without action — is a Violation. Each trial ends by re-running the full
// script over the repaired pool: surgery that leaves the allocator limping
// is a failure even when the validator is happy.
package sweep

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/cxl"
	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/recovery"
	"repro/internal/shm"
)

// corruptInjectAt is the script index faults land at: after send-batch the
// pool holds a published named root, a live queue with three in-flight
// payloads, recycled huge segments, and settled free lists — every region
// has meaningful state to damage.
const corruptInjectAt = 18

// CorruptConfig tunes a corruption campaign.
type CorruptConfig struct {
	// Backend is the device backend: "heap" (default) or "mmap".
	Backend string
	// Seed is the campaign base seed; trial t uses Seed+t so a campaign is
	// replayed exactly by base seed, and a single trial by its own seed.
	Seed int64
	// Regions/Classes restrict the sweep (nil = all).
	Regions []faultinject.Region
	Classes []faultinject.Class
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

// CorruptTrial is the structured outcome of one (region, class) trial.
type CorruptTrial struct {
	Region  string `json:"region"`
	Class   string `json:"class"`
	Backend string `json:"backend"`
	Seed    int64  `json:"seed"`
	// Outcome is "repaired", "quarantined", "benign", or "violation".
	Outcome string `json:"outcome"`
	// Faults is the injected fault sequence (the determinism contract).
	Faults []faultinject.InjectedFault `json:"faults"`
	// Crashed lists clients that died during the faulted window (stuck-CAS
	// spins, or operations walking damaged metadata).
	Crashed []int `json:"crashed,omitempty"`
	// PreIssues counts validator issues before repair; Rounds/Actions
	// summarize the repair pass; Blast is its damage accounting.
	PreIssues int               `json:"pre_issues"`
	Rounds    int               `json:"rounds"`
	Actions   int               `json:"actions"`
	Blast     check.BlastRadius `json:"blast"`
	// Violations carries this trial's failures (empty on success).
	Violations []Violation `json:"violations,omitempty"`
}

// Repro formats the faultsim invocation reproducing this trial.
func (t CorruptTrial) Repro() string {
	b := t.Backend
	if b == "" {
		b = "heap"
	}
	return fmt.Sprintf("faultsim -corrupt -region %s -class %s -seed %d -backend %s",
		t.Region, t.Class, t.Seed, b)
}

// regionTarget is a region resolved to concrete addresses: single words
// for bit flips and stuck-CAS arming, multi-word records for tears.
type regionTarget struct {
	words   []layout.Addr
	records [][]layout.Addr
}

// resolveRegion maps a Region to the live addresses backing it at the
// injection point. The mapping is deterministic given the fixed script, so
// seeded index picks land on the same words every run.
func resolveRegion(e *env, region faultinject.Region) regionTarget {
	geo := e.p.Geometry()
	var t regionTarget
	switch region {
	case faultinject.RegionSuperblock:
		rec := []layout.Addr{
			layout.SuperOffMagic, layout.SuperOffSegWords, layout.SuperOffPageWords,
			layout.SuperOffNumSegs, layout.SuperOffMaxClients, layout.SuperOffMaxQueues,
			layout.SuperOffVersion,
		}
		t.words = rec
		t.records = [][]layout.Addr{rec}
	case faultinject.RegionSegmentMeta:
		for seg := 0; seg < geo.NumSegments; seg++ {
			st := e.p.SegState(seg)
			if st.State == layout.SegFree {
				continue
			}
			rec := []layout.Addr{geo.SegStateAddr(seg), geo.SegClientFreeAddr(seg)}
			t.words = append(t.words, rec...)
			t.records = append(t.records, rec)
		}
		// The page-meta triple of the long-lived object's page: page kind,
		// free-list head and bump pointer are segment metadata too.
		seg := geo.SegmentIndexOf(e.b1)
		pg := geo.PageIndexOf(seg, e.b1)
		metaA := geo.PageMetaAddr(seg, pg)
		rec := []layout.Addr{metaA, metaA + 1, metaA + 2}
		t.words = append(t.words, rec...)
		t.records = append(t.records, rec)
	case faultinject.RegionBlockHeader:
		for _, b := range []layout.Addr{e.b1, e.q} {
			rec := []layout.Addr{b + layout.HeaderOff, b + layout.MetaOff}
			t.words = append(t.words, rec...)
			t.records = append(t.records, rec)
		}
	case faultinject.RegionRedoLog:
		for _, c := range []*shm.Client{e.x, e.o} {
			base := geo.ClientRedoBase(c.ID())
			var rec []layout.Addr
			for w := 0; w < geo.RedoWords; w++ {
				rec = append(rec, base+layout.Addr(w))
			}
			t.words = append(t.words, rec...)
			t.records = append(t.records, rec)
		}
	case faultinject.RegionEraMatrix:
		for i := 1; i <= 3; i++ {
			var rec []layout.Addr
			for j := 1; j <= 3; j++ {
				rec = append(rec, geo.EraAddr(i, j))
			}
			t.words = append(t.words, rec...)
			t.records = append(t.records, rec)
		}
	case faultinject.RegionQueueSlot:
		m := layout.UnpackMeta(e.p.Device().Load(e.q + layout.MetaOff))
		capacity := int(m.EmbedCnt)
		var slots []layout.Addr
		for i := 0; i < capacity; i++ {
			slots = append(slots, e.q+layout.DataOff+layout.Addr(i))
		}
		infoA := e.q + layout.DataOff + layout.Addr(capacity)
		idx := []layout.Addr{infoA, infoA + 1, infoA + 2}
		t.words = append(append(t.words, slots...), idx...)
		t.records = [][]layout.Addr{slots, idx}
	case faultinject.RegionTelemetry:
		var hdr []layout.Addr
		for w := 0; w < layout.TelHeaderWords; w++ {
			hdr = append(hdr, geo.TelemetryBase+layout.Addr(w))
		}
		t.words = hdr
		// Metric slots after the header: damage there is benign by design
		// (readers tolerate garbage record-by-record) — the campaign proves
		// the validator says so instead of crying wolf.
		blk := geo.TelBlockBase(0)
		t.words = append(t.words, blk, blk+1, blk+2)
		t.records = [][]layout.Addr{hdr}
	}
	return t
}

// guarded runs f, converting any panic (stuck-CAS spins, walks over
// corrupt metadata) into a returned value.
func guarded(f func()) (pan any) {
	defer func() { pan = recover() }()
	f()
	return nil
}

// RunCorrupt executes the corruption campaign: every configured fault
// class against every configured region, one seeded trial each.
func RunCorrupt(cfg CorruptConfig) ([]CorruptTrial, []Violation, error) {
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	regions := cfg.Regions
	if len(regions) == 0 {
		regions = faultinject.AllRegions
	}
	classes := cfg.Classes
	if len(classes) == 0 {
		classes = faultinject.AllClasses
	}

	var trials []CorruptTrial
	var vs []Violation
	t := int64(0)
	for _, class := range classes {
		for _, region := range regions {
			trial, err := runCorruptTrial(cfg, region, class, cfg.Seed+t)
			t++
			if err != nil {
				return trials, vs, err
			}
			logf("corrupt %-9s x %-13s seed=%-4d outcome=%-11s issues=%d actions=%d quarantined=%d",
				class, region, trial.Seed, trial.Outcome, trial.PreIssues, trial.Actions,
				trial.Blast.ObjectsQuarantined+trial.Blast.PagesQuarantined)
			trials = append(trials, trial)
			vs = append(vs, trial.Violations...)
		}
	}
	return trials, vs, nil
}

// runCorruptTrial is one complete story: replay, inject, let the workload
// stumble, settle, repair, verify, and re-run the full script on the
// repaired pool.
func runCorruptTrial(cfg CorruptConfig, region faultinject.Region, class faultinject.Class, seed int64) (CorruptTrial, error) {
	trial := CorruptTrial{
		Region: string(region), Class: string(class),
		Backend: cfg.Backend, Seed: seed,
	}
	v := Violation{Op: fmt.Sprintf("corrupt/%s/%s", class, region), Backend: cfg.Backend}
	bad := func(format string, args ...any) {
		v.Detail = fmt.Sprintf(format, args...)
		trial.Violations = append(trial.Violations, v)
	}

	corr := faultinject.NewCorruptor(region, class, seed)
	e, err := setupWith(cfg.Backend, 0, []cxl.Middleware{cxl.WithWriteFaults(corr.Hook)})
	if err != nil {
		return trial, err
	}
	defer e.p.CloseDevice()
	ops := script()
	if err := replay(e, ops, corruptInjectAt); err != nil {
		return trial, err
	}

	// Inject.
	dev := e.p.Device()
	tgt := resolveRegion(e, region)
	if len(tgt.words) == 0 {
		return trial, fmt.Errorf("corrupt: region %s resolved to no addresses", region)
	}
	var fbAddr layout.Addr
	var fbSnap uint64
	switch class {
	case faultinject.ClassBitFlip:
		corr.FlipBit(dev, tgt.words[corr.PickIndex(len(tgt.words))])
	case faultinject.ClassTorn:
		corr.Tear(dev, tgt.records[corr.PickIndex(len(tgt.records))])
	case faultinject.ClassStuckCAS:
		fbAddr = tgt.words[corr.PickIndex(len(tgt.words))]
		fbSnap = dev.Load(fbAddr)
		corr.Arm(tgt.words)
	}

	// Run the remaining script against the damaged pool. Operation errors
	// are expected (the fault is live); panics mean the acting client hit
	// wild metadata or a stuck-CAS spin and counts as crashed.
	crashed := map[int]bool{}
	for i := corruptInjectAt; i < len(ops); i++ {
		o := ops[i]
		actor := o.actor(e)
		if crashed[actor.ID()] {
			continue
		}
		if pan := guarded(func() { _ = o.run(e) }); pan != nil {
			crashed[actor.ID()] = true
		}
	}
	corr.Disarm()
	if class == faultinject.ClassStuckCAS && !corr.Fired() {
		corr.FallbackAtRest(dev, fbAddr, fbSnap)
	}
	trial.Faults = corr.Faults()
	for cid := range crashed {
		trial.Crashed = append(trial.Crashed, cid)
	}

	// Settle: fence and recover the crashed, close the survivors, let the
	// monitor sweep what normal recovery machinery can. All guarded — the
	// pool is damaged, and production paths are allowed to fail here; the
	// fsck below is the component under test.
	for cid := range crashed {
		guarded(func() { _ = e.p.MarkClientDead(cid) })
		guarded(func() { _, _ = e.svc.RecoverClient(cid) })
	}
	for _, c := range []*shm.Client{e.x, e.o} {
		if alive(e, c) && !crashed[c.ID()] {
			cl := c
			if pan := guarded(func() { _ = cl.Close() }); pan != nil {
				guarded(func() { _ = e.p.MarkClientDead(cl.ID()) })
			}
		}
	}
	mon := recovery.NewMonitor(e.svc, recovery.MonitorConfig{})
	for i := 0; i < 8; i++ {
		guarded(func() { mon.Tick() })
	}

	// Repair and verify. A panicking fsck is a first-class violation: the
	// whole point of the hardened validator/repair pass is surviving
	// arbitrary metadata damage.
	pre := check.Validate(e.p)
	trial.PreIssues = len(pre.Issues)
	var rep *check.RepairReport
	if pan := guarded(func() {
		rep = check.Repair(e.p, check.RepairConfig{
			Recover: func(cid int) error {
				var rerr error
				guarded(func() { _, rerr = e.svc.RecoverClient(cid) })
				return rerr
			},
		})
	}); pan != nil {
		bad("fsck panicked: %v", pan)
		trial.Outcome = "violation"
		return trial, nil
	}
	trial.Rounds = rep.Rounds
	trial.Actions = len(rep.Actions)
	trial.Blast = rep.Blast
	quarantined := rep.Blast.ObjectsQuarantined + rep.Blast.PagesQuarantined
	switch {
	case !rep.Repaired:
		bad("post-repair issues remain after %d rounds: %v", rep.Rounds, rep.Post.Issues)
	case trial.PreIssues > 0 && trial.Actions == 0 && quarantined == 0:
		bad("silent acceptance: %d issues vanished without repair actions", trial.PreIssues)
	}

	// Re-run the full script over the repaired pool with fresh clients: the
	// validator proving consistency is necessary, the allocator still doing
	// real work is sufficient.
	if len(trial.Violations) == 0 {
		trial.Violations = append(trial.Violations, rerunOverRepaired(e.p, v)...)
	}

	switch {
	case len(trial.Violations) > 0:
		trial.Outcome = "violation"
	case trial.PreIssues == 0:
		trial.Outcome = "benign"
	case quarantined > 0:
		trial.Outcome = "quarantined"
	default:
		trial.Outcome = "repaired"
	}
	return trial, nil
}

// rerunOverRepaired attaches fresh clients to the repaired pool and runs
// the whole scripted workload plus the standard epilogue. Leftover trial state
// the crashed script never released (the named root) is cleared first —
// through a client when the target is healthy, by direct management-plane
// store when it leads into quarantined territory.
func rerunOverRepaired(p *shm.Pool, v Violation) []Violation {
	var out []Violation
	bad := func(format string, args ...any) {
		v.Detail = fmt.Sprintf(format, args...)
		out = append(out, v)
	}
	e, err := attach(p)
	if err != nil {
		bad("rerun attach: %v", err)
		return out
	}
	geo := p.Geometry()
	if t := p.Device().Load(geo.RootDirAddr(0)); t != 0 {
		if quarantinedAt(p, layout.Addr(t)) {
			p.Device().Store(geo.RootDirAddr(0), 0)
		} else if pan := guarded(func() { _ = e.x.UnpublishRoot(0) }); pan != nil {
			bad("rerun unpublish leftover root: %v", pan)
			return out
		}
	}
	ops := script()
	for _, o := range ops {
		o := o
		var operr error
		if pan := guarded(func() { operr = o.run(e) }); pan != nil {
			bad("rerun op %s panicked: %v", o.name, pan)
			return out
		}
		if operr != nil {
			bad("rerun op %s: %v", o.name, operr)
			return out
		}
	}
	return append(out, finish(e, e.svc, v)...)
}

// quarantinedAt reports whether a points into territory the fsck wrote off.
func quarantinedAt(p *shm.Pool, a layout.Addr) bool {
	geo := p.Geometry()
	seg := geo.SegmentIndexOf(a)
	if seg < 0 || seg >= geo.NumSegments {
		return false
	}
	st := p.SegState(seg)
	switch st.State {
	case layout.SegHugeHead, layout.SegHugeBody:
		head := seg
		for head > 0 && p.SegState(head).State == layout.SegHugeBody {
			head--
		}
		m := layout.UnpackMeta(p.Device().Load(geo.SegmentBase(head) + layout.MetaOff))
		return m.Quarantined()
	case layout.SegActive, layout.SegAbandoned:
		pg := geo.PageIndexOf(seg, a)
		if pg < 0 {
			return false
		}
		info := layout.UnpackPageMeta(p.Device().Load(geo.PageMetaAddr(seg, pg)))
		if info.Kind == layout.PageKindQuarantined {
			return true
		}
		if info.Kind == layout.PageKindNormal && int(info.SizeClass) < len(geo.Classes) {
			bw := geo.Classes[info.SizeClass].BlockWords
			base := geo.PageBase(seg, pg)
			b := base + layout.Addr((uint64(a)-uint64(base))/bw*bw)
			m := layout.UnpackMeta(p.Device().Load(b + layout.MetaOff))
			return m.Quarantined()
		}
	}
	return false
}

// attach builds a run env over an existing pool (the rerun path), fixed
// connection order like setup.
func attach(p *shm.Pool) (*env, error) {
	e := &env{p: p, receipts: make(map[uint64]int)}
	var err error
	if e.x, err = p.Connect(); err != nil {
		return nil, err
	}
	if e.o, err = p.Connect(); err != nil {
		return nil, err
	}
	if e.svc, err = recovery.NewService(p); err != nil {
		return nil, err
	}
	return e, nil
}
