package netrpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func echo(fn uint64, payload []byte) ([]byte, error) {
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, nil
}

func TestCallRoundTrip(t *testing.T) {
	s, err := NewServer(echo)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, size := range []int{0, 1, 64, 4096, 1 << 16} {
		payload := bytes.Repeat([]byte{0xAB}, size)
		resp, err := c.Call(7, payload)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(resp, payload) {
			t.Fatalf("size %d: echo mismatch", size)
		}
	}
}

func TestManyClientsConcurrently(t *testing.T) {
	s, err := NewServer(func(fn uint64, p []byte) ([]byte, error) {
		out := make([]byte, 8)
		out[0] = byte(fn)
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for i := 0; i < 100; i++ {
				resp, err := c.Call(uint64(g), []byte("ping"))
				if err != nil || resp[0] != byte(g) {
					t.Errorf("call: %v %v", resp, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s, err := NewServer(echo)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(1, []byte("x")); err == nil {
		t.Fatal("call against closed server succeeded")
	}
	c.Close()
	// Double close is fine.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHostileFrameLengthRejected is the regression test for the unbounded
// server-side allocation: a peer whose length header claims an absurd
// payload must be refused before the allocation it sizes, with an error
// frame, and the server must keep serving other connections.
func TestHostileFrameLengthRejected(t *testing.T) {
	s, err := NewServerConfig(echo, Config{MaxPayload: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for _, hostile := range []uint32{1 << 17, 0xFFFFFFF0, errFlag | 4} {
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		var hdr [12]byte
		binary.LittleEndian.PutUint64(hdr[0:8], 1)
		binary.LittleEndian.PutUint32(hdr[8:12], hostile)
		if _, err := conn.Write(hdr[:]); err != nil {
			t.Fatal(err)
		}
		// The server answers with an error frame without waiting for the
		// claimed bytes (which will never come), then drops the connection.
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		var resp [12]byte
		if _, err := readFull(conn, resp[:]); err != nil {
			t.Fatalf("length %#x: no error frame: %v", hostile, err)
		}
		n := binary.LittleEndian.Uint32(resp[8:12])
		if n&errFlag == 0 {
			t.Fatalf("length %#x: response not flagged as error", hostile)
		}
		msg := make([]byte, n&^uint32(errFlag))
		if _, err := readFull(conn, msg); err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(msg, []byte("MaxPayload")) {
			t.Fatalf("error frame %q does not name the limit", msg)
		}
		conn.Close()
	}

	// The server survived the hostile peers: a well-behaved client works.
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if resp, err := c.Call(7, []byte("still alive")); err != nil || string(resp) != "still alive" {
		t.Fatalf("echo after hostile frames: %q, %v", resp, err)
	}
}

// TestClientRejectsOversizedResponse mirrors the bound on the client side.
func TestClientRejectsOversizedResponse(t *testing.T) {
	s, err := NewServer(func(fn uint64, p []byte) ([]byte, error) {
		return make([]byte, 1<<12), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := DialConfig(s.Addr(), Config{MaxPayload: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(1, nil); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("oversized response error = %v, want ErrPayloadTooLarge", err)
	}
	// And an oversized request is refused locally, before any I/O.
	if _, err := c.Call(1, make([]byte, 1<<11)); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("oversized request error = %v, want ErrPayloadTooLarge", err)
	}
}

// TestHandlerErrorSurfaces is the regression test for handler errors
// tearing down the connection: the client must see the handler's message
// as a *ServerError, not a bare io.EOF, and the same connection must keep
// working afterwards.
func TestHandlerErrorSurfaces(t *testing.T) {
	s, err := NewServer(func(fn uint64, p []byte) ([]byte, error) {
		if fn == 13 {
			return nil, fmt.Errorf("unlucky function %d", fn)
		}
		return echo(fn, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Call(13, []byte("boom"))
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("handler error came back as %T %v, want *ServerError", err, err)
	}
	if se.Msg != "unlucky function 13" {
		t.Fatalf("server error message %q lost the handler's text", se.Msg)
	}
	// The connection survived the failed call.
	if resp, err := c.Call(7, []byte("next call")); err != nil || string(resp) != "next call" {
		t.Fatalf("call after handler error: %q, %v", resp, err)
	}
}

// TestServerDeadlineDropsStalledPeer is the regression test for a hung
// peer pinning a handler goroutine: a connection that sends a header and
// then stalls mid-frame must be disconnected by the read deadline.
func TestServerDeadlineDropsStalledPeer(t *testing.T) {
	s, err := NewServerConfig(echo, Config{ReadTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], 1)
	binary.LittleEndian.PutUint32(hdr[8:12], 100) // promise 100 bytes...
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	// ...and never send them. The server must hang up on its own — a read
	// on our side observes the close well before any test timeout.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var b [1]byte
	if _, err := conn.Read(b[:]); err == nil {
		t.Fatal("server answered a half-frame instead of dropping the stalled peer")
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Fatal("server still holding the stalled connection after its read deadline")
	}
}

// TestServerIdleTimeout: with IdleTimeout set, a connection that goes
// quiet between requests is dropped; without it, idling is fine.
func TestServerIdleTimeout(t *testing.T) {
	s, err := NewServerConfig(echo, Config{IdleTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var b [1]byte
	if _, err := conn.Read(b[:]); err == nil {
		t.Fatal("idle connection not dropped")
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Fatal("server still holding the idle connection after IdleTimeout")
	}
}

// TestClientCallTimeout: a server that hangs mid-call must not block the
// caller forever — the client's ReadTimeout is the per-call ceiling.
func TestClientCallTimeout(t *testing.T) {
	block := make(chan struct{})
	s, err := NewServer(func(fn uint64, p []byte) ([]byte, error) {
		<-block // wedge the handler: the response never comes
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Release the wedged handler BEFORE s.Close runs (defers are LIFO), or
	// Close would wait forever on the handler goroutine.
	defer close(block)
	c, err := DialConfig(s.Addr(), Config{ReadTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Call(1, []byte("x"))
	if err == nil {
		t.Fatal("call against a wedged server succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("wedged-server error = %v, want a net timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("call took %v to time out", elapsed)
	}
}

// readFull is io.ReadFull without importing io into the test twice.
func readFull(conn net.Conn, b []byte) (int, error) {
	n := 0
	for n < len(b) {
		m, err := conn.Read(b[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
