package netrpc

import (
	"bytes"
	"sync"
	"testing"
)

func echo(fn uint64, payload []byte) ([]byte, error) {
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, nil
}

func TestCallRoundTrip(t *testing.T) {
	s, err := NewServer(echo)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, size := range []int{0, 1, 64, 4096, 1 << 16} {
		payload := bytes.Repeat([]byte{0xAB}, size)
		resp, err := c.Call(7, payload)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(resp, payload) {
			t.Fatalf("size %d: echo mismatch", size)
		}
	}
}

func TestManyClientsConcurrently(t *testing.T) {
	s, err := NewServer(func(fn uint64, p []byte) ([]byte, error) {
		out := make([]byte, 8)
		out[0] = byte(fn)
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for i := 0; i < 100; i++ {
				resp, err := c.Call(uint64(g), []byte("ping"))
				if err != nil || resp[0] != byte(g) {
					t.Errorf("call: %v %v", resp, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s, err := NewServer(echo)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(1, []byte("x")); err == nil {
		t.Fatal("call against closed server succeeded")
	}
	c.Close()
	// Double close is fine.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
