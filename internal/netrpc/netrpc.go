// Package netrpc is the pass-by-value RPC baseline of Figure 8 — a
// length-prefixed binary protocol over loopback TCP, standing in for the
// paper's RDMA-based RPC (Herd-style over ConnectX-5) — and the wire layer
// of the serving tier (internal/serving): worker processes serve GET/PUT/
// SCAN frames over it, so it is hardened against exactly the partial
// failures the paper argues a resilient system must absorb. A peer that
// lies in its length header is refused before any allocation, a peer that
// stalls mid-frame is disconnected by deadline instead of pinning a
// goroutine forever, and a handler error travels back as an error frame
// instead of silently tearing the connection down.
//
// Wire format, both directions:
//
//	[8B function id][4B payload length][payload bytes]
//
// The top bit of a response's length field is the error flag: when set,
// the payload is the handler's error message and Client.Call returns it as
// a *ServerError. Request lengths must have the top bit clear.
package netrpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// DefaultMaxPayload bounds a frame's payload when Config.MaxPayload is
// zero. Large enough for any serving batch, small enough that a hostile
// or corrupt length header cannot balloon the process.
const DefaultMaxPayload = 16 << 20

// errFlag marks a response payload as an error message. Request lengths
// must keep it clear, which also caps legal payloads below 2 GiB.
const errFlag = 1 << 31

// ServerError is a handler (or dispatch) failure reported by the server
// through an error frame. The connection stays up: the call failed, the
// transport did not.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "netrpc: server: " + e.Msg }

// ErrPayloadTooLarge reports a frame whose length header exceeds the
// configured MaxPayload (or has the error flag set on the request side).
var ErrPayloadTooLarge = errors.New("netrpc: frame payload exceeds MaxPayload")

// Config tunes a Server or Client. The zero value means: DefaultMaxPayload,
// no deadlines (every wait can block forever — tests and in-process
// baselines that want the old behavior get it by default).
type Config struct {
	// MaxPayload bounds the payload length this side will accept in one
	// frame, request or response. 0 means DefaultMaxPayload.
	MaxPayload uint32
	// ReadTimeout bounds how long one frame may take to arrive once its
	// header has been read (server), or how long a Call waits for its
	// response (client) — the per-call ceiling. 0 disables.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one frame. 0 disables.
	WriteTimeout time.Duration
	// IdleTimeout (server only) bounds how long a connection may sit
	// between requests before the server drops it. 0 disables: an idle
	// serving connection is normal, only mid-frame stalls are hostile.
	IdleTimeout time.Duration
}

func (c Config) maxPayload() uint32 {
	if c.MaxPayload == 0 {
		return DefaultMaxPayload
	}
	return c.MaxPayload
}

// Handler executes one function over the request payload, returning the
// response payload. A returned error travels to the caller as an error
// frame; the connection keeps serving.
type Handler func(fn uint64, payload []byte) ([]byte, error)

// Server serves pass-by-value calls on a loopback listener.
type Server struct {
	ln      net.Listener
	handler Handler
	cfg     Config
	wg      sync.WaitGroup
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
}

// NewServer starts a server on an ephemeral loopback port with the zero
// Config (no deadlines, DefaultMaxPayload).
func NewServer(handler Handler) (*Server, error) {
	return NewServerConfig(handler, Config{})
}

// NewServerConfig starts a server on an ephemeral loopback port.
func NewServerConfig(handler Handler, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, handler: handler, cfg: cfg, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's dial address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	maxPayload := s.cfg.maxPayload()
	var hdr [12]byte
	for {
		// Waiting for the next request is legitimate idleness, bounded
		// separately (if at all) from the mid-frame deadline below.
		if s.cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		} else {
			conn.SetReadDeadline(time.Time{})
		}
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		// The header has arrived: the rest of the frame must follow
		// promptly, or the peer is stalled and gets disconnected instead
		// of pinning this goroutine.
		if s.cfg.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		fn := binary.LittleEndian.Uint64(hdr[0:8])
		n := binary.LittleEndian.Uint32(hdr[8:12])
		// The length header is untrusted input: refuse it BEFORE the
		// allocation it sizes. Nothing after a hostile header can be
		// trusted to re-frame, so the connection is answered and dropped.
		if n&errFlag != 0 || n > maxPayload {
			s.writeResp(conn, w, fn, []byte(fmt.Sprintf(
				"frame payload %d exceeds MaxPayload %d", n&^uint32(errFlag), maxPayload)), true)
			return
		}
		payload := make([]byte, n) // the pass-by-value copy-in
		if _, err := io.ReadFull(r, payload); err != nil {
			return
		}
		resp, err := s.handler(fn, payload)
		if err != nil {
			// The handler failed, the transport did not: report the error
			// in-band and keep serving this connection.
			if !s.writeResp(conn, w, fn, []byte(err.Error()), true) {
				return
			}
			continue
		}
		if uint64(len(resp)) > uint64(maxPayload) {
			if !s.writeResp(conn, w, fn, []byte(fmt.Sprintf(
				"handler response %d exceeds MaxPayload %d", len(resp), maxPayload)), true) {
				return
			}
			continue
		}
		if !s.writeResp(conn, w, fn, resp, false) {
			return
		}
	}
}

// writeResp writes one response frame (the copy-out), reporting whether
// the connection is still usable.
func (s *Server) writeResp(conn net.Conn, w *bufio.Writer, fn uint64, payload []byte, isErr bool) bool {
	if s.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], fn)
	n := uint32(len(payload))
	if isErr {
		n |= errFlag
	}
	binary.LittleEndian.PutUint32(hdr[8:12], n)
	if _, err := w.Write(hdr[:]); err != nil {
		return false
	}
	if _, err := w.Write(payload); err != nil {
		return false
	}
	return w.Flush() == nil
}

// Close stops the server and waits for connections to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Client issues pass-by-value calls over one connection. Call is
// serialized internally, so a Client may be shared across goroutines —
// though each caller then waits its turn on the single in-flight frame.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	cfg  Config
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a server with the zero Config.
func Dial(addr string) (*Client, error) { return DialConfig(addr, Config{}) }

// DialConfig connects to a server. cfg.ReadTimeout is the per-call
// response ceiling: a server that hangs mid-call returns a timeout error
// instead of blocking the caller forever.
func DialConfig(addr string, cfg Config) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, cfg: cfg, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Call sends fn with payload and returns the response payload. Each call
// serializes, copies through the kernel, and deserializes — the baseline
// cost structure. A handler failure returns a *ServerError; transport
// errors (including deadline expiry) leave the connection unusable.
func (c *Client) Call(fn uint64, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	maxPayload := c.cfg.maxPayload()
	if uint64(len(payload)) > uint64(maxPayload) {
		return nil, fmt.Errorf("%w (%d > %d)", ErrPayloadTooLarge, len(payload), maxPayload)
	}
	if c.cfg.WriteTimeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], fn)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return nil, err
	}
	if _, err := c.w.Write(payload); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	if c.cfg.ReadTimeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout))
	} else {
		c.conn.SetReadDeadline(time.Time{})
	}
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[8:12])
	isErr := n&errFlag != 0
	n &^= uint32(errFlag)
	if n > maxPayload {
		return nil, fmt.Errorf("%w (response %d > %d)", ErrPayloadTooLarge, n, maxPayload)
	}
	resp := make([]byte, n)
	if _, err := io.ReadFull(c.r, resp); err != nil {
		return nil, err
	}
	if isErr {
		return nil, &ServerError{Msg: string(resp)}
	}
	return resp, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
