// Package netrpc is the pass-by-value RPC baseline of Figure 8: a
// length-prefixed binary protocol over loopback TCP, standing in for the
// paper's RDMA-based RPC (Herd-style over ConnectX-5). What matters for the
// comparison is the cost structure, which loopback TCP shares with any
// pass-by-value transport: the payload is serialized, copied through the
// kernel I/O stack, and deserialized — exactly the costs CXL-RPC's
// zero-copy reference exchange avoids.
//
// Wire format, both directions:
//
//	[8B function id][4B payload length][payload bytes]
package netrpc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// Handler executes one function over the request payload, returning the
// response payload.
type Handler func(fn uint64, payload []byte) ([]byte, error)

// Server serves pass-by-value calls on a loopback listener.
type Server struct {
	ln      net.Listener
	handler Handler
	wg      sync.WaitGroup
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
}

// NewServer starts a server on an ephemeral loopback port.
func NewServer(handler Handler) (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, handler: handler, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's dial address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	var hdr [12]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		fn := binary.LittleEndian.Uint64(hdr[0:8])
		n := binary.LittleEndian.Uint32(hdr[8:12])
		payload := make([]byte, n) // the pass-by-value copy-in
		if _, err := io.ReadFull(r, payload); err != nil {
			return
		}
		resp, err := s.handler(fn, payload)
		if err != nil {
			return
		}
		binary.LittleEndian.PutUint64(hdr[0:8], fn)
		binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(resp)))
		if _, err := w.Write(hdr[:]); err != nil {
			return
		}
		if _, err := w.Write(resp); err != nil { // the copy-out
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Close stops the server and waits for connections to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Client issues pass-by-value calls over one connection.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Call sends fn with payload and returns the response payload. Each call
// serializes, copies through the kernel, and deserializes — the baseline
// cost structure.
func (c *Client) Call(fn uint64, payload []byte) ([]byte, error) {
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], fn)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return nil, err
	}
	if _, err := c.w.Write(payload); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[8:12])
	if n > 1<<30 {
		return nil, fmt.Errorf("netrpc: absurd response length %d", n)
	}
	resp := make([]byte, n)
	if _, err := io.ReadFull(c.r, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
