package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/layout"
	"repro/internal/mapreduce"
	"repro/internal/shm"
	"repro/internal/workload"
)

// Fig9Row is one (system, workload, executors) point of Figure 9.
type Fig9Row struct {
	System    string // "CXL-MR" or "Phoenix*"
	Workload  string // "wordcount" or "kmeans"
	Executors int
	Elapsed   time.Duration
}

// Fig9 runs CXL-MapReduce against the pass-by-value baseline on word count
// and kmeans for each executor count (paper Figure 9).
func Fig9(scale Scale, executorCounts []int) ([]Fig9Row, error) {
	textBytes := scale.N(1 << 20) // paper: 1 GB; scaled
	text := workload.Text(textBytes, 5000, 42)
	nPoints := scale.N(20_000) // paper: 500k × 8-dim, 1k clusters; scaled
	const dim, k, iters = 8, 16, 3
	pts := workload.Points(nPoints, dim, k, 42)

	var rows []Fig9Row
	for _, ex := range executorCounts {
		pool, err := mrPool(ex)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := mapreduce.WordCountCXL(pool, text, ex); err != nil {
			return nil, err
		}
		rows = append(rows, Fig9Row{"CXL-MR", "wordcount", ex, time.Since(start)})

		start = time.Now()
		mapreduce.WordCountValue(text, ex)
		rows = append(rows, Fig9Row{"Phoenix*", "wordcount", ex, time.Since(start)})

		pool, err = mrPool(ex)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		if _, err := mapreduce.KMeansCXL(pool, pts, dim, k, iters, ex); err != nil {
			return nil, err
		}
		rows = append(rows, Fig9Row{"CXL-MR", "kmeans", ex, time.Since(start)})

		start = time.Now()
		mapreduce.KMeansValue(pts, dim, k, iters, ex)
		rows = append(rows, Fig9Row{"Phoenix*", "kmeans", ex, time.Since(start)})
	}
	return rows, nil
}

func mrPool(executors int) (*shm.Pool, error) {
	return shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients:   executors + 6,
		NumSegments:  4*executors + 64,
		SegmentWords: 1 << 16,
		PageWords:    1 << 12,
		MaxQueues:    4*executors + 8,
	}})
}

// PrintFig9 renders Figure 9 rows.
func PrintFig9(w io.Writer, rows []Fig9Row) {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Workload, fmt.Sprint(r.Executors), r.System,
			r.Elapsed.Round(time.Millisecond).String()}
	}
	PrintTable(w, []string{"Workload", "Executors", "System", "Time"}, out)
}
