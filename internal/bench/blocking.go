package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/kv"
	"repro/internal/lightning"
	"repro/internal/recovery"
)

// BlockingRow is one system's behaviour while a crashed peer is recovered —
// the paper's central §4.2/§6.4 contrast: in Lightning "all the clients must
// wait for the recovery even if only one client crashes", which CXL-SHM's
// era-based algorithm avoids entirely.
type BlockingRow struct {
	System string
	// VictimObjects the dead client held (recovery workload size).
	VictimObjects int
	// Recovery is how long the recovery itself took.
	Recovery time.Duration
	// SurvivorMaxOp is the worst single-operation latency a concurrently
	// running survivor observed while the failure was being handled. For a
	// blocking design this approaches (detection + recovery) time; for a
	// non-blocking one it stays at normal operation latency.
	SurvivorMaxOp time.Duration
	// SurvivorOps the survivor completed during the fixed measurement
	// window (crash + detection + recovery + aftermath). A blocked survivor
	// completes almost nothing; an unblocked one proceeds at full speed.
	SurvivorOps int
	// Window is the fixed measurement window both systems are given.
	Window time.Duration
}

// blockingWindow is the fixed survivor measurement window.
const blockingWindow = 10 * time.Millisecond

// BlockingBench crashes one client and measures what the other one feels.
func BlockingBench(scale Scale, victimObjects int) ([]BlockingRow, error) {
	victimObjects = scale.N(victimObjects)
	var rows []BlockingRow

	// --- Lightning: the victim dies holding a bucket lock the survivor
	// needs; the survivor blocks until the stop-the-world recovery runs. ---
	{
		store, err := lightning.NewStore(1<<22, 1<<15)
		if err != nil {
			return nil, err
		}
		victim := store.Connect()
		survivor := store.Connect()
		for k := 0; k < victimObjects; k++ {
			if err := victim.Put(uint64(k), []byte("payload-64-bytes")); err != nil {
				return nil, err
			}
		}
		const hotKey = 7
		if err := victim.CrashHoldingLock(hotKey); err != nil {
			return nil, err
		}

		var (
			maxOp time.Duration
			ops   int
			wg    sync.WaitGroup
		)
		windowEnd := time.Now().Add(blockingWindow)
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The survivor needs the locked key: its first Get blocks until
			// recovery breaks the dead client's lock.
			for time.Now().Before(windowEnd) {
				t0 := time.Now()
				if _, err := survivor.Get(hotKey); err != nil && err != lightning.ErrNotFound {
					return
				}
				if d := time.Since(t0); d > maxOp {
					maxOp = d
				}
				ops++
			}
		}()
		// Failure detection delay before recovery kicks in (modelled 2ms).
		time.Sleep(2 * time.Millisecond)
		rec := store.Recover()
		wg.Wait()
		rows = append(rows, BlockingRow{
			System: "Lightning*", VictimObjects: victimObjects,
			Recovery: rec, SurvivorMaxOp: maxOp, SurvivorOps: ops, Window: blockingWindow,
		})
	}

	// --- CXL-SHM: the victim dies holding references; the survivor keeps
	// reading the shared KV store while recovery runs concurrently. ---
	{
		pool, err := kvPool(4)
		if err != nil {
			return nil, err
		}
		creator, err := pool.Connect()
		if err != nil {
			return nil, err
		}
		if _, err := kv.Create(creator, 0, kvBenchBuckets, kvValueSize, 1); err != nil {
			return nil, err
		}
		victim, err := pool.Connect()
		if err != nil {
			return nil, err
		}
		vs, err := kv.Open(victim, 0)
		if err != nil {
			return nil, err
		}
		val := make([]byte, kvValueSize)
		for k := 0; k < victimObjects; k++ {
			if err := vs.Put(uint64(k), val); err != nil {
				return nil, err
			}
		}
		// Extra unshared references so recovery has real work.
		for i := 0; i < victimObjects; i++ {
			if _, _, err := victim.Malloc(48, 0); err != nil {
				return nil, err
			}
		}
		survivorC, err := pool.Connect()
		if err != nil {
			return nil, err
		}
		survivor, err := kv.Open(survivorC, 0)
		if err != nil {
			return nil, err
		}
		svc, err := recovery.NewService(pool)
		if err != nil {
			return nil, err
		}
		if err := victim.Crash(); err != nil {
			return nil, err
		}

		var (
			maxOp time.Duration
			ops   int
			rec   time.Duration
			wg    sync.WaitGroup
		)
		windowEnd := time.Now().Add(blockingWindow)
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, kvValueSize)
			for time.Now().Before(windowEnd) {
				t0 := time.Now()
				if _, err := survivor.Get(uint64(ops%victimObjects), buf); err != nil {
					return
				}
				if d := time.Since(t0); d > maxOp {
					maxOp = d
				}
				ops++
			}
		}()
		time.Sleep(2 * time.Millisecond) // same modelled detection delay
		t0 := time.Now()
		if _, err := svc.RecoverClient(victim.ID()); err != nil {
			return nil, err
		}
		rec = time.Since(t0)
		wg.Wait()
		rows = append(rows, BlockingRow{
			System: "CXL-SHM", VictimObjects: victimObjects,
			Recovery: rec, SurvivorMaxOp: maxOp, SurvivorOps: ops, Window: blockingWindow,
		})
	}
	return rows, nil
}

// PrintBlocking renders the comparison.
func PrintBlocking(w io.Writer, rows []BlockingRow) {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.System, fmt.Sprint(r.VictimObjects),
			r.Recovery.Round(time.Microsecond).String(),
			r.SurvivorMaxOp.Round(time.Microsecond).String(),
			fmt.Sprint(r.SurvivorOps)}
	}
	PrintTable(w, []string{"System", "VictimObjs", "Recovery", "SurvivorMaxOp", "SurvivorOps"}, out)
}
