package bench

import (
	"io"
	"math/rand"
	"time"

	"repro/internal/cxl"
)

// Table1Row is one memory type of paper Table 1.
type Table1Row struct {
	Type      string
	SeqMOPS   float64 // sequential 8-byte loads
	RandMOPS  float64 // random 8-byte loads
	CASMOPS   float64 // random CAS
	LatencyNS float64 // dependent-load (pointer chase) latency
}

// Table1 measures sequential, random, and CAS access rates plus dependent
// load latency for the three memory profiles the paper compares: local
// NUMA, remote NUMA, and CXL-attached. The simulated device charges the
// paper's measured latencies; what the experiment verifies is the *shape* —
// seq ≫ rand ≫ CAS within each type, local < remote < CXL latency, CAS flat
// across types.
func Table1(scale Scale) ([]Table1Row, error) {
	profiles := []struct {
		name string
		lat  cxl.Latency
	}{
		{"local NUMA", cxl.LatencyLocalNUMA},
		{"remote NUMA", cxl.LatencyRemoteNUMA},
		{"CXL", cxl.LatencyCXL},
	}
	const words = 1 << 16
	ops := scale.N(400_000)
	var rows []Table1Row
	for _, p := range profiles {
		dev, err := cxl.NewDevice(cxl.Config{Words: words + 16, MaxClients: 2})
		if err != nil {
			return nil, err
		}
		h := cxl.Wrap(dev, cxl.WithLatency(p.lat)).Open(1)
		rng := rand.New(rand.NewSource(7))

		// Every measurement takes the best of three runs: on a shared box the
		// minimum is the least scheduler-disturbed sample.

		// Sequential loads.
		seq := bestMOPS(3, ops, func() {
			for i := 0; i < ops; i++ {
				h.Load(cxl.Addr(1 + i%words))
			}
		})

		// Random loads (precomputed indices so RNG cost stays out).
		idx := make([]cxl.Addr, 4096)
		for i := range idx {
			idx[i] = cxl.Addr(1 + rng.Intn(words))
		}
		rnd := bestMOPS(3, ops, func() {
			for i := 0; i < ops; i++ {
				h.Load(idx[i&4095])
			}
		})

		// Random CAS.
		casOps := ops / 8
		cas := bestMOPS(3, casOps, func() {
			for i := 0; i < casOps; i++ {
				a := idx[i&4095]
				h.CAS(a, h.Load(a), uint64(i))
			}
		})

		// Dependent-load latency: pointer chase through a random cycle whose
		// nodes are spread over far more cache lines than the modelled cache
		// holds, so every hop is a miss.
		const nodes, stride = 4096, 16
		perm := rng.Perm(nodes)
		addrOf := func(i int) cxl.Addr { return cxl.Addr(1 + i*stride) }
		for i := 0; i < nodes; i++ {
			dev.Store(addrOf(perm[i]), uint64(addrOf(perm[(i+1)%nodes])))
		}
		cur := addrOf(perm[0])
		n := scale.N(100_000)
		if n < 20_000 {
			// The latency measurement needs enough hops to average out
			// scheduler noise regardless of the requested scale.
			n = 20_000
		}
		lat := 0.0
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			for i := 0; i < n; i++ {
				cur = cxl.Addr(h.Load(cur))
			}
			l := float64(time.Since(start).Nanoseconds()) / float64(n)
			if rep == 0 || l < lat {
				lat = l
			}
		}
		_ = cur

		rows = append(rows, Table1Row{
			Type: p.name, SeqMOPS: seq, RandMOPS: rnd, CASMOPS: cas, LatencyNS: lat,
		})
	}
	return rows, nil
}

// PrintTable1 renders Table 1.
func PrintTable1(w io.Writer, rows []Table1Row) {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Type, f2(r.SeqMOPS), f2(r.RandMOPS), f2(r.CASMOPS), f1(r.LatencyNS) + " ns"}
	}
	PrintTable(w, []string{"Type", "Seq MOPS", "Rand MOPS", "RandCAS MOPS", "Latency"}, out)
}

func mops(ops int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Seconds() / 1e6
}

// bestMOPS runs f reps times and returns the highest throughput observed.
func bestMOPS(reps, ops int, f func()) float64 {
	best := 0.0
	for r := 0; r < reps; r++ {
		start := time.Now()
		f()
		if m := mops(ops, time.Since(start)); m > best {
			best = m
		}
	}
	return best
}
