package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tiny keeps smoke tests fast; the real runs live in cmd/cxlbench and the
// repository-level bench_test.go.
var tiny = Scale{Factor: 0.02}

func TestScaleN(t *testing.T) {
	if (Scale{}).N(100) != 100 {
		t.Fatal("zero factor must keep base")
	}
	if (Scale{Factor: 0.001}).N(100) != 1 {
		t.Fatal("scaled count must clamp to 1")
	}
	if (Scale{Factor: 2}).N(100) != 200 {
		t.Fatal("factor 2 must double")
	}
}

func TestPrintTableAlignment(t *testing.T) {
	var b bytes.Buffer
	PrintTable(&b, []string{"A", "LongHeader"}, [][]string{{"xxxxx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if len(lines[2]) == 0 || lines[2][0] != 'x' {
		t.Fatalf("row misaligned: %q", lines[2])
	}
}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if !(r.SeqMOPS > r.RandMOPS && r.RandMOPS > r.CASMOPS) {
			t.Fatalf("%s: expected seq > rand > CAS, got %+v", r.Type, r)
		}
	}
	// Latency ordering: local < remote < CXL.
	if !(rows[0].LatencyNS < rows[1].LatencyNS && rows[1].LatencyNS < rows[2].LatencyNS) {
		t.Fatalf("latency ordering violated: %v %v %v",
			rows[0].LatencyNS, rows[1].LatencyNS, rows[2].LatencyNS)
	}
}

func TestFig6Smoke(t *testing.T) {
	rows, err := Fig6(tiny, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 4 allocators × 2 workloads
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		if r.MOPS <= 0 {
			t.Fatalf("%s/%s: nonpositive MOPS", r.Allocator, r.Workload)
		}
		if r.Workload == "threadtest" {
			byName[r.Allocator] = r.MOPS
		}
	}
	// The volatile allocators must beat the failure-resilient one.
	if byName["CXL-SHM"] >= byName["jemalloc*"] {
		t.Fatalf("CXL-SHM (%.2f) should be slower than jemalloc* (%.2f)",
			byName["CXL-SHM"], byName["jemalloc*"])
	}
}

func TestFig7Smoke(t *testing.T) {
	rows, err := Fig7(tiny, []int{2}, 400, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.FlushPct <= 0 {
			t.Fatalf("%+v: flush share must be positive with a 400ns flush", r)
		}
		if r.FlushPct+r.FencePct+r.AllocPct > 100.5 {
			t.Fatalf("%+v: shares exceed 100%%", r)
		}
	}
}

func TestRecoveryBenchShape(t *testing.T) {
	// CXL-SHM recovery cost ∝ victim's 500 refs; GC recovery walks the whole
	// heap, including the 30k live objects owned by others.
	rows, err := RecoveryBench(Scale{Factor: 1}, []int{500}, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	var cxlRate, gcRate float64
	for _, r := range rows {
		if r.ObjsPerSec <= 0 {
			t.Fatalf("%+v: nonpositive rate", r)
		}
		if r.System == "CXL-SHM" {
			cxlRate = r.ObjsPerSec
		} else {
			gcRate = r.ObjsPerSec
		}
	}
	// CXL-SHM recovery ∝ victim's refs; GC pays for the extra heap too.
	if cxlRate <= gcRate {
		t.Fatalf("CXL-SHM recovery (%.0f/s) should beat GC recovery (%.0f/s) with extra heap",
			cxlRate, gcRate)
	}
}

func TestSegmentScanBench(t *testing.T) {
	segBytes, per, err := SegmentScanBench(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if segBytes <= 0 || per <= 0 {
		t.Fatalf("segBytes=%d per=%v", segBytes, per)
	}
}

func TestBlockingBenchShape(t *testing.T) {
	// The §4.2 contrast: the blocking design stalls the survivor for the
	// whole detection+recovery window — deterministically, by protocol. The
	// non-blocking design's survivor is only subject to scheduler noise,
	// which on a one-CPU box can occasionally mimic a stall; take the best
	// of three runs for the CXL side (the protocol property is "CAN run",
	// which any single clean run demonstrates), and require the Lightning
	// stall in every run (it is unconditional).
	var bestCXL, worstLightning BlockingRow
	for attempt := 0; attempt < 3; attempt++ {
		rows, err := BlockingBench(Scale{Factor: 1}, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("got %d rows", len(rows))
		}
		for _, r := range rows {
			if r.System == "CXL-SHM" {
				if bestCXL.System == "" || r.SurvivorMaxOp < bestCXL.SurvivorMaxOp {
					bestCXL = r
				}
			} else {
				if r.SurvivorMaxOp < 1_500_000 { // ≥ modelled 2ms detection, minus noise
					t.Fatalf("Lightning survivor was not blocked: max op %v", r.SurvivorMaxOp)
				}
				worstLightning = r
			}
		}
		if bestCXL.SurvivorMaxOp < 1_000_000 {
			break // clean run observed
		}
	}
	if bestCXL.SurvivorMaxOp >= worstLightning.SurvivorMaxOp/2 {
		t.Fatalf("CXL-SHM survivor stalled %v vs Lightning %v — non-blocking property lost",
			bestCXL.SurvivorMaxOp, worstLightning.SurvivorMaxOp)
	}
	if bestCXL.SurvivorOps == 0 {
		t.Fatal("CXL-SHM survivor made no progress")
	}
}

func TestFig8Smoke(t *testing.T) {
	rows, err := Fig8Pairs(tiny, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.KOPS <= 0 {
			t.Fatalf("%+v: nonpositive throughput", r)
		}
	}
	prows, err := Fig8Payload(tiny, []int{64, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(prows) != 4 {
		t.Fatalf("payload rows: %d", len(prows))
	}
}

func TestFig9Smoke(t *testing.T) {
	rows, err := Fig9(tiny, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Elapsed <= 0 {
			t.Fatalf("%+v: nonpositive time", r)
		}
	}
}

func TestFig10Smoke(t *testing.T) {
	rows, err := Fig10a(tiny, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("10a rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.MOPS <= 0 {
			t.Fatalf("%+v nonpositive", r)
		}
	}
	if _, err := Fig10b(tiny, 2, []float64{1, 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig10c(tiny, []int{2}, []float64{0, 0.9}); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig10d(tiny, []int{2}); err != nil {
		t.Fatal(err)
	}
}
