package bench

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestClientScalingAttachIsO1 pins the tentpole claim directly: attaching
// the 256th client costs the same constant number of device CASes as
// attaching the 1st, and its total device accesses do not grow with the
// attached-client count (the bitmap claim is O(1) and the era row is seeded
// lazily, not with MaxClients eager loads).
func TestClientScalingAttachIsO1(t *testing.T) {
	rows, err := ClientScaling(tiny, []int{1, 64, 256})
	if err != nil {
		t.Fatal(err)
	}
	base := rows[0]
	for _, r := range rows[1:] {
		if r.LastConnectCAS != base.LastConnectCAS {
			t.Errorf("attach at %d clients took %.0f CASes, at 1 client %.0f — claim is not O(1)",
				r.Clients, r.LastConnectCAS, base.LastConnectCAS)
		}
		// The only tolerated growth is the bitmap scan skipping full words:
		// one extra load per 64 exhausted slots, nowhere near the 260-word
		// era row an eager attach would read.
		extra := r.LastConnectAccesses - base.LastConnectAccesses
		if allowed := float64(r.Clients)/64 + 2; extra > allowed {
			t.Errorf("attach at %d clients costs %.0f accesses vs %.0f at 1 client (+%.0f > %.0f allowed)",
				r.Clients, r.LastConnectAccesses, base.LastConnectAccesses, extra, allowed)
		}
	}
}

// TestConcurrentRecoverySpeedup pins the concurrent-recovery acceptance bar:
// with recovery latency-bound (sleep-modelled far-memory misses), 8 workers
// recovering 8 independent dead clients must finish in well under 0.6x the
// serial wall-clock.
func TestConcurrentRecoverySpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second latency-modelled recovery comparison")
	}
	rec, err := ConcurrentRecovery(Scale{Factor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rec.DeadClients != 8 || rec.Workers != 8 {
		t.Fatalf("comparison shape changed: %+v", rec)
	}
	if rec.ConcurrentNs >= 0.6*rec.SerialNs {
		t.Fatalf("8-worker recovery of 8 dead clients took %.1fms vs %.1fms serial (%.2fx): want < 0.6x",
			rec.ConcurrentNs/1e6, rec.SerialNs/1e6, rec.ConcurrentNs/rec.SerialNs)
	}
}

func TestScaleMarshalRoundTrip(t *testing.T) {
	rows := []ScaleRow{
		{Clients: 1, ConnectCAS: 2, ConnectAccesses: 204, AllocAccesses: 7.2},
		{Clients: 256, ConnectCAS: 2, ConnectAccesses: 206, AllocAccesses: 8.9},
	}
	rec := &ScaleRecovery{DeadClients: 8, Workers: 8, SerialNs: 8e9, ConcurrentNs: 1e9, Speedup: 8}
	prov := obs.CollectProvenance("test", "heap")
	data, err := MarshalScale(rows, rec, prov)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"provenance"`) {
		t.Fatal("document carries no provenance block")
	}
	got, gotRec, err := UnmarshalScale(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Clients != 256 || gotRec == nil || gotRec.Speedup != 8 {
		t.Fatalf("round trip mangled document: %+v %+v", got, gotRec)
	}
	if _, _, err := UnmarshalScale([]byte(`{"benchmark":"fastpath","rows":[]}`)); err == nil {
		t.Fatal("wrong benchmark name must be rejected")
	}
}

func TestCompareScale(t *testing.T) {
	committed := []ScaleRow{
		{Clients: 1, ConnectCAS: 2, ConnectAccesses: 200, LastConnectAccesses: 200, AllocAccesses: 7, FreeAccesses: 10},
		{Clients: 256, ConnectCAS: 2, ConnectAccesses: 206, LastConnectAccesses: 207, AllocAccesses: 9, FreeAccesses: 8},
	}
	fresh := []ScaleRow{
		{Clients: 1, ConnectCAS: 2.1, ConnectAccesses: 210, LastConnectAccesses: 205, AllocAccesses: 7.5, FreeAccesses: 10.5},
		{Clients: 256, ConnectCAS: 2, ConnectAccesses: 206, LastConnectAccesses: 207, AllocAccesses: 9, FreeAccesses: 8},
	}
	if regs := CompareScale(committed, fresh, 0.10); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	// One column over tolerance at one point, one point missing.
	fresh = []ScaleRow{
		{Clients: 1, ConnectCAS: 2, ConnectAccesses: 200, LastConnectAccesses: 200, AllocAccesses: 8.5, FreeAccesses: 10},
	}
	regs := CompareScale(committed, fresh, 0.10)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %v", regs)
	}
	if !strings.Contains(regs[0], "alloc") || !strings.Contains(regs[1], "missing") {
		t.Fatalf("regression messages: %v", regs)
	}
}
