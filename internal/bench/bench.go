// Package bench contains the experiment harnesses that regenerate every
// table and figure of the paper's evaluation (§6). Each experiment is a
// function returning structured rows; cmd/cxlbench prints them and the
// repository's bench_test.go wires them into `go test -bench`.
//
// Scale note: the paper runs on a dual-socket FPGA CXL platform; this
// reproduction runs wherever `go test` does. Absolute numbers differ; the
// experiments are parameterized so the *shape* — orderings, ratios,
// crossovers — can be compared against the paper (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/cxl"
)

// Scale selects experiment sizing.
type Scale struct {
	// Factor scales iteration counts; 1.0 is the quick default (seconds per
	// experiment on a laptop).
	Factor float64
}

// N scales a base iteration count.
func (s Scale) N(base int) int {
	if s.Factor <= 0 {
		return base
	}
	n := int(float64(base) * s.Factor)
	if n < 1 {
		n = 1
	}
	return n
}

// PrintTable renders rows of equal-length string slices as an aligned table.
func PrintTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		return b.String()
	}
	fmt.Fprintln(w, line(header))
	fmt.Fprintln(w, strings.Repeat("-", len(line(header))))
	for _, r := range rows {
		fmt.Fprintln(w, line(r))
	}
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// cxlLatency builds a latency model charging only flush/fence costs.
func cxlLatency(flushNS, fenceNS int) cxl.Latency {
	return cxl.Latency{FlushNS: flushNS, FenceNS: fenceNS}
}
