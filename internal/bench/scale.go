package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/cxl"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/shm"
)

// Client-scaling benchmark (the Fig. 6 axis the fast-path benchmark does not
// cover): how attachment and per-operation cost behave as the number of
// attached clients grows toward the slot-lease design target of 256. The
// load-bearing claim is that attach cost is independent of both the slot
// table size M and the number of already-attached clients N — the free-slot
// bitmap makes the claim O(1) device CASes and the era row is seeded lazily
// instead of with M eager loads.
//
// Like the fast-path rows, the gateable columns are deterministic device
// access counts; wall-clock throughput per client is recorded for humans but
// never compared across machines.

// ScaleRow is one client-count point of the scaling curve.
type ScaleRow struct {
	Clients int `json:"clients"`
	// ConnectCAS / ConnectAccesses are the mean device CAS attempts and total
	// accesses per Connect over all N attachments.
	ConnectCAS      float64 `json:"connect_cas_per_op"`
	ConnectAccesses float64 `json:"connect_accesses_per_op"`
	// LastConnectCAS / LastConnectAccesses isolate the N-th attachment — the
	// point where a scan-based claim or an eager era-row load would show its
	// O(N) or O(M) growth.
	LastConnectCAS      float64 `json:"last_connect_cas"`
	LastConnectAccesses float64 `json:"last_connect_accesses"`
	// AllocAccesses / FreeAccesses are device accesses per Malloc/ReleaseRoot
	// with all N clients attached and active.
	AllocAccesses float64 `json:"alloc_accesses_per_op"`
	FreeAccesses  float64 `json:"free_accesses_per_op"`
	// OpsPerSecPerClient is wall-clock alloc+free throughput divided by N:
	// machine-local, recorded for trend reading only.
	OpsPerSecPerClient float64 `json:"ops_per_sec_per_client"`
}

// ScaleRecovery summarizes the concurrent-recovery half of the benchmark:
// k independent dead clients recovered by a serial service versus a pooled
// one. Wall-clock, machine-local — the pinned regression test for the
// speedup lives in internal/recovery.
type ScaleRecovery struct {
	DeadClients  int     `json:"dead_clients"`
	Workers      int     `json:"workers"`
	SerialNs     float64 `json:"serial_ns"`
	ConcurrentNs float64 `json:"concurrent_ns"`
	Speedup      float64 `json:"speedup"`
}

// ScaleClientCounts is the committed curve's x axis.
var ScaleClientCounts = []int{1, 4, 16, 64, 128, 256}

// scaleGeometry holds every curve point: one slot table sized past the
// 256-client target so the M-dependence of attachment (if any) is visible at
// every N.
func scaleGeometry() layout.GeometryConfig {
	return layout.GeometryConfig{
		MaxClients:   260,
		NumSegments:  600,
		SegmentWords: 1 << 13,
		PageWords:    1 << 9,
		MaxQueues:    8,
	}
}

// ClientScaling measures one row per entry of counts (nil = the committed
// ScaleClientCounts curve).
func ClientScaling(scale Scale, counts []int) ([]ScaleRow, error) {
	if counts == nil {
		counts = ScaleClientCounts
	}
	var rows []ScaleRow
	for _, n := range counts {
		row, err := clientScalingPoint(scale, n)
		if err != nil {
			return nil, fmt.Errorf("scale point %d clients: %w", n, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func clientScalingPoint(scale Scale, n int) (ScaleRow, error) {
	row := ScaleRow{Clients: n}
	p, err := shm.NewPool(shm.Config{Geometry: scaleGeometry(), CountAccesses: true})
	if err != nil {
		return row, err
	}
	defer p.CloseDevice()
	dev := p.Device()

	clients := make([]*shm.Client, 0, n)
	dev.ResetStats()
	for i := 0; i < n-1; i++ {
		c, err := p.Connect()
		if err != nil {
			return row, err
		}
		clients = append(clients, c)
	}
	bulk := dev.Stats()
	dev.ResetStats()
	last, err := p.Connect()
	if err != nil {
		return row, err
	}
	clients = append(clients, last)
	lastStats := dev.Stats()

	row.LastConnectCAS = float64(lastStats.CASes)
	row.LastConnectAccesses = float64(lastStats.Loads + lastStats.Stores + lastStats.CASes)
	total := cxl.Stats{
		Loads:  bulk.Loads + lastStats.Loads,
		Stores: bulk.Stores + lastStats.Stores,
		CASes:  bulk.CASes + lastStats.CASes,
	}
	row.ConnectCAS = float64(total.CASes) / float64(n)
	row.ConnectAccesses = float64(total.Loads+total.Stores+total.CASes) / float64(n)

	// Steady-state operation cost with all N clients attached: every client
	// allocates and then frees its objects, round-robin so the device sees
	// interleaved owners. Ops per client shrink as N grows to keep points
	// comparably sized; the per-op averages are what the row records.
	opsPer := scale.N(2048) / n
	if opsPer < 4 {
		opsPer = 4
	}
	roots := make([][]layout.Addr, n)
	dev.ResetStats()
	t0 := time.Now()
	for i := 0; i < opsPer; i++ {
		for ci, c := range clients {
			r, _, err := c.Malloc(64, 0)
			if err != nil {
				return row, err
			}
			roots[ci] = append(roots[ci], r)
		}
	}
	s := dev.Stats()
	row.AllocAccesses = float64(s.Loads+s.Stores+s.CASes) / float64(n*opsPer)
	dev.ResetStats()
	for ci, c := range clients {
		for _, r := range roots[ci] {
			if _, err := c.ReleaseRoot(r); err != nil {
				return row, err
			}
		}
	}
	el := time.Since(t0)
	s = dev.Stats()
	row.FreeAccesses = float64(s.Loads+s.Stores+s.CASes) / float64(n*opsPer)
	row.OpsPerSecPerClient = rate(2*n*opsPer, el) / float64(n)
	return row, nil
}

// scaleRecoveryVictims is k: the independent dead clients the comparison
// recovers, matching the pooled service's worker count.
const scaleRecoveryVictims = 8

// ConcurrentRecovery times the recovery of k independent dead clients twice
// — through a single-executor service and through a service with k workers —
// on identically prepared pools. The latency middleware charges a large
// sleep-based cost per modelled cache miss, making recovery latency-bound
// the way it is on real far memory: sleeps overlap across worker
// goroutines even on a single-core host, so the measured speedup reflects
// the service's concurrency structure rather than local CPU count.
func ConcurrentRecovery(scale Scale) (*ScaleRecovery, error) {
	objs := scale.N(150)
	serial, err := timedRecovery(objs, 1)
	if err != nil {
		return nil, err
	}
	conc, err := timedRecovery(objs, scaleRecoveryVictims)
	if err != nil {
		return nil, err
	}
	rec := &ScaleRecovery{
		DeadClients:  scaleRecoveryVictims,
		Workers:      scaleRecoveryVictims,
		SerialNs:     float64(serial.Nanoseconds()),
		ConcurrentNs: float64(conc.Nanoseconds()),
	}
	if conc > 0 {
		rec.Speedup = float64(serial) / float64(conc)
	}
	return rec, nil
}

// timedRecovery builds a pool with k crashed clients (each owning objs
// objects in its own segments) and times recovering all of them through a
// service with the given worker count.
func timedRecovery(objs, workers int) (time.Duration, error) {
	p, err := shm.NewPool(shm.Config{
		Geometry: layout.GeometryConfig{
			MaxClients:   24,
			NumSegments:  64,
			SegmentWords: 1 << 13,
			PageWords:    1 << 9,
			MaxQueues:    8,
		},
		Middleware: []cxl.Middleware{cxl.WithLatency(cxl.Latency{MissNS: 40_000, Sleep: true})},
	})
	if err != nil {
		return 0, err
	}
	defer p.CloseDevice()

	victims := make([]*shm.Client, scaleRecoveryVictims)
	for i := range victims {
		if victims[i], err = p.Connect(); err != nil {
			return 0, err
		}
		for j := 0; j < objs; j++ {
			if _, _, err := victims[i].Malloc(48, 0); err != nil {
				return 0, err
			}
		}
	}
	for _, v := range victims {
		if err := v.Crash(); err != nil {
			return 0, err
		}
	}
	svc, err := recovery.NewServiceWorkers(p, workers)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, len(victims))
	for i, v := range victims {
		wg.Add(1)
		go func(i, cid int) {
			defer wg.Done()
			_, errs[i] = svc.RecoverClient(cid)
		}(i, v.ID())
	}
	wg.Wait()
	el := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return el, nil
}

// PrintScale renders the scaling curve and recovery comparison.
func PrintScale(w io.Writer, rows []ScaleRow, rec *ScaleRecovery) {
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			fmt.Sprint(r.Clients), f2(r.ConnectCAS), f2(r.ConnectAccesses),
			f2(r.LastConnectCAS), f2(r.LastConnectAccesses),
			f2(r.AllocAccesses), f2(r.FreeAccesses), f1(r.OpsPerSecPerClient),
		}
	}
	PrintTable(w, []string{
		"Clients", "conCAS/op", "conAcc/op", "lastCAS", "lastAcc",
		"allocAcc/op", "freeAcc/op", "ops/s/client",
	}, table)
	if rec != nil {
		fmt.Fprintf(w, "\nrecovery of %d dead clients: serial %.2fms, %d workers %.2fms (%.2fx)\n",
			rec.DeadClients, rec.SerialNs/1e6, rec.Workers, rec.ConcurrentNs/1e6, rec.Speedup)
	}
}

// scaleDoc is the BENCH_scale.json document shape.
type scaleDoc struct {
	Benchmark  string          `json:"benchmark"`
	Provenance *obs.Provenance `json:"provenance,omitempty"`
	Rows       []ScaleRow      `json:"rows"`
	Recovery   *ScaleRecovery  `json:"recovery,omitempty"`
}

// MarshalScale renders the BENCH_scale.json document. prov and rec may be
// nil (tests).
func MarshalScale(rows []ScaleRow, rec *ScaleRecovery, prov *obs.Provenance) ([]byte, error) {
	return json.MarshalIndent(scaleDoc{
		Benchmark: "scale", Provenance: prov, Rows: rows, Recovery: rec,
	}, "", "  ")
}

// UnmarshalScale parses a BENCH_scale.json document.
func UnmarshalScale(data []byte) ([]ScaleRow, *ScaleRecovery, error) {
	var doc scaleDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, nil, err
	}
	if doc.Benchmark != "scale" {
		return nil, nil, fmt.Errorf("not a scale document (benchmark %q)", doc.Benchmark)
	}
	return doc.Rows, doc.Recovery, nil
}

// CompareScale checks a fresh curve against the committed one, returning one
// message per regression: a client count whose per-client deterministic
// device cost (connect, alloc, or free accesses — throughput per client in
// the device-cycle model) grew more than tolerance over the committed value,
// or a missing point. Wall-clock columns are never compared.
func CompareScale(committed, fresh []ScaleRow, tolerance float64) []string {
	byN := make(map[int]ScaleRow, len(fresh))
	for _, r := range fresh {
		byN[r.Clients] = r
	}
	var regressions []string
	check := func(n int, col string, got, want float64) {
		if limit := want * (1 + tolerance); got > limit {
			regressions = append(regressions, fmt.Sprintf(
				"%d clients: %s %.2f, committed %.2f (+%.0f%% > %.0f%% tolerance)",
				n, col, got, want, (got/want-1)*100, tolerance*100))
		}
	}
	for _, want := range committed {
		got, ok := byN[want.Clients]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("%d clients: missing from fresh run", want.Clients))
			continue
		}
		check(want.Clients, "connect accesses/op", got.ConnectAccesses, want.ConnectAccesses)
		check(want.Clients, "connect CAS/op", got.ConnectCAS, want.ConnectCAS)
		check(want.Clients, "last-connect accesses", got.LastConnectAccesses, want.LastConnectAccesses)
		check(want.Clients, "alloc accesses/op", got.AllocAccesses, want.AllocAccesses)
		check(want.Clients, "free accesses/op", got.FreeAccesses, want.FreeAccesses)
	}
	return regressions
}
