package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/layout"
	"repro/internal/netrpc"
	"repro/internal/rpc"
	"repro/internal/shm"
)

// Fig8Row is one (system, pairs, payload) point of Figure 8.
type Fig8Row struct {
	System  string // "CXL-RPC", "SPSC", "RDMA*"
	Pairs   int
	Payload int
	KOPS    float64
}

// rpcPool sizes a pool for an RPC experiment.
func rpcPool(pairs int) (*shm.Pool, error) {
	return shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients:   2*pairs + 4,
		NumSegments:  4*pairs + 32,
		SegmentWords: 1 << 15,
		PageWords:    1 << 11,
		MaxQueues:    4*pairs + 8,
	}})
}

// Fig8Pairs sweeps client/server pair counts at a fixed 64-byte payload
// for CXL-RPC, the pure-SPSC upper bound, and the pass-by-value network
// baseline (paper Figure 8, left).
func Fig8Pairs(scale Scale, pairCounts []int) ([]Fig8Row, error) {
	const payload = 64
	var rows []Fig8Row
	for _, pairs := range pairCounts {
		calls := scale.N(2000)
		k, err := cxlRPCPairs(pairs, calls, payload)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{"CXL-RPC", pairs, payload, k})
		k, err = spscPairs(pairs, calls, payload)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{"SPSC", pairs, payload, k})
		k, err = netRPCPairs(pairs, calls, payload)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{"RDMA*", pairs, payload, k})
	}
	return rows, nil
}

// Fig8Payload sweeps payload sizes with a single pair (paper Figure 8,
// right): CXL-RPC moves only references, so it should be size-insensitive;
// the pass-by-value baseline copies the payload end to end.
func Fig8Payload(scale Scale, payloads []int) ([]Fig8Row, error) {
	var rows []Fig8Row
	for _, payload := range payloads {
		calls := scale.N(1000)
		k, err := cxlRPCPairs(1, calls, payload)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{"CXL-RPC", 1, payload, k})
		k, err = netRPCPairs(1, calls, payload)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{"RDMA*", 1, payload, k})
	}
	return rows, nil
}

// cxlRPCPairs runs `pairs` caller/server pairs, each issuing `calls` calls
// whose single argument has `payload` bytes; the handler touches only the
// head of the argument (references are what moves — §6.3.1).
func cxlRPCPairs(pairs, calls, payload int) (kops float64, err error) {
	pool, err := rpcPool(pairs)
	if err != nil {
		return 0, err
	}
	type pair struct {
		caller  *rpc.Caller
		server  *rpc.Server
		cc      *shm.Client
		argRoot layout.Addr
		arg     layout.Addr
	}
	ps := make([]*pair, pairs)
	for i := range ps {
		cc, err := pool.Connect()
		if err != nil {
			return 0, err
		}
		sc, err := pool.Connect()
		if err != nil {
			return 0, err
		}
		caller, err := rpc.NewCaller(cc, sc.ID(), 8)
		if err != nil {
			return 0, err
		}
		server, err := rpc.NewServer(sc, cc.ID())
		if err != nil {
			return 0, err
		}
		server.Register(1, func(c *shm.Client, args []layout.Addr, out layout.Addr) error {
			// Zero-copy: touch only the head of the argument.
			v := c.LoadWord(args[0], 0)
			c.StoreWord(out, 0, v+1)
			return nil
		})
		// The argument object is written into shared memory once, outside
		// the timed window — that is the pass-by-reference story: the data
		// is produced in place; calls move only references.
		argRoot, arg, err := caller.Arg(make([]byte, payload))
		if err != nil {
			return 0, err
		}
		ps[i] = &pair{caller: caller, server: server, cc: cc, argRoot: argRoot, arg: arg}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2*pairs)
	stopFlags := make([]chan struct{}, pairs)
	start := time.Now()
	for i, p := range ps {
		stop := make(chan struct{})
		stopFlags[i] = stop
		wg.Add(2)
		go func(p *pair) {
			defer wg.Done()
			errs <- p.server.Serve(func() bool {
				select {
				case <-stop:
					return true
				default:
					return false
				}
			})
		}(p)
		go func(p *pair, stop chan struct{}) {
			defer wg.Done()
			defer close(stop)
			// Pipeline calls (depth 4): throughput RPC keeps several
			// requests in flight, as any real RPC benchmark does.
			const depth = 4
			var window []*rpc.Pending
			drain := func(until int) error {
				for len(window) > until {
					outRoot, _, err := window[0].Wait()
					if err != nil {
						return err
					}
					if _, err := p.cc.ReleaseRoot(outRoot); err != nil {
						return err
					}
					window = window[1:]
				}
				return nil
			}
			for c := 0; c < calls; c++ {
				pd, err := p.caller.CallStart(1, []layout.Addr{p.arg}, 64)
				if err != nil {
					errs <- err
					return
				}
				window = append(window, pd)
				if err := drain(depth - 1); err != nil {
					errs <- err
					return
				}
			}
			if err := drain(0); err != nil {
				errs <- err
				return
			}
			if _, err := p.cc.ReleaseRoot(p.argRoot); err != nil {
				errs <- err
				return
			}
			errs <- nil
		}(p, stop)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return kcalls(pairs*calls, time.Since(start)), nil
}

// spscPairs is the Figure 8 upper bound: object allocation plus a raw SPSC
// token exchange, with none of the reference-count transfer machinery.
func spscPairs(pairs, msgs, payload int) (kops float64, err error) {
	pool, err := rpcPool(pairs)
	if err != nil {
		return 0, err
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2*pairs)
	start := time.Now()
	for i := 0; i < pairs; i++ {
		fwd := rpc.NewSPSCRing(64)
		back := rpc.NewSPSCRing(64)
		prod, err := pool.Connect()
		if err != nil {
			return 0, err
		}
		cons, err := pool.Connect()
		if err != nil {
			return 0, err
		}
		wg.Add(2)
		go func(c *shm.Client) { // producer: allocs and frees; ownership by convention
			defer wg.Done()
			for m := 0; m < msgs; m++ {
				root, block, err := c.Malloc(payload, 0)
				if err != nil {
					errs <- err
					return
				}
				c.StoreWord(block, 0, uint64(m))
				fwd.PushWait(block)
				back.PopWait() // token returned: consumer is done with it
				if _, err := c.ReleaseRoot(root); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(prod)
		go func(c *shm.Client) { // consumer: "executes the function"
			defer wg.Done()
			for m := 0; m < msgs; m++ {
				block := fwd.PopWait()
				_ = c.LoadWord(block, 0)
				back.PushWait(block)
			}
			errs <- nil
		}(cons)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return kcalls(pairs*msgs, time.Since(start)), nil
}

// netRPCPairs runs the pass-by-value baseline over loopback TCP.
func netRPCPairs(pairs, calls, payload int) (kops float64, err error) {
	srv, err := netrpc.NewServer(func(fn uint64, p []byte) ([]byte, error) {
		out := make([]byte, 64)
		if len(p) > 0 {
			out[0] = p[0] + 1
		}
		return out, nil
	})
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make(chan error, pairs)
	start := time.Now()
	for i := 0; i < pairs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := netrpc.Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			buf := make([]byte, payload)
			for c := 0; c < calls; c++ {
				if _, err := cl.Call(1, buf); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return kcalls(pairs*calls, time.Since(start)), nil
}

// PrintFig8 renders Figure 8 rows.
func PrintFig8(w io.Writer, rows []Fig8Row) {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.System, fmt.Sprint(r.Pairs), fmt.Sprint(r.Payload), f1(r.KOPS)}
	}
	PrintTable(w, []string{"System", "Pairs", "PayloadB", "KOPS"}, out)
}

func kcalls(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds() / 1e3
}
