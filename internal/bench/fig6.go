package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/alloc"
	"repro/internal/layout"
	"repro/internal/nativealloc"
	"repro/internal/pmem"
	"repro/internal/shm"
)

// Fig6Row is one (allocator, workload, threads) point of Figure 6.
type Fig6Row struct {
	Allocator string
	Workload  string
	Threads   int
	MOPS      float64
}

// allocPoolConfig sizes a CXL-SHM pool for the allocator benchmarks.
func allocPoolConfig(threads int) layout.GeometryConfig {
	return layout.GeometryConfig{
		MaxClients:   threads + 4,
		NumSegments:  threads*4 + 16,
		SegmentWords: 1 << 15, // 256 KiB
		PageWords:    1 << 11, // 16 KiB
	}
}

// newAllocators builds the Figure 6 contenders. The pmem heap and shm pool
// are sized from the thread count so no allocator hits capacity.
func newAllocators(threads int) ([]alloc.Allocator, error) {
	h, err := pmem.NewHeap(64 << 20)
	if err != nil {
		return nil, err
	}
	// Ralloc runs on Optane in its own evaluation; charge a modelled persist
	// (pwb+pfence) per header update so the DRAM-resident stand-in is not
	// unrealistically fast (DESIGN.md substitution table).
	h.SetPersistCost(150)
	pool, err := shm.NewPool(shm.Config{Geometry: allocPoolConfig(threads)})
	if err != nil {
		return nil, err
	}
	return []alloc.Allocator{
		&alloc.SHM{Pool: pool},
		pmem.Bench{H: h},
		nativealloc.Plain{},
		&nativealloc.Pooled{},
	}, nil
}

// Fig6 runs threadtest and shbench across all allocators for each thread
// count (paper Figure 6).
func Fig6(scale Scale, threadCounts []int) ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, threads := range threadCounts {
		iters := scale.N(200)
		batch := 64
		shIters := scale.N(20_000)

		allocs, err := newAllocators(threads)
		if err != nil {
			return nil, err
		}
		for _, a := range allocs {
			r, err := alloc.Threadtest(a, threads, iters, batch)
			if err != nil {
				return nil, fmt.Errorf("threadtest %s: %w", a.Name(), err)
			}
			rows = append(rows, Fig6Row{a.Name(), "threadtest", threads, r.MOPS()})
		}
		// Fresh allocators so shbench starts from clean heaps.
		allocs, err = newAllocators(threads)
		if err != nil {
			return nil, err
		}
		for _, a := range allocs {
			r, err := alloc.Shbench(a, threads, shIters)
			if err != nil {
				return nil, fmt.Errorf("shbench %s: %w", a.Name(), err)
			}
			rows = append(rows, Fig6Row{a.Name(), "shbench", threads, r.MOPS()})
		}
	}
	return rows, nil
}

// PrintFig6 renders Figure 6 rows.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Workload, fmt.Sprint(r.Threads), r.Allocator, f2(r.MOPS)}
	}
	PrintTable(w, []string{"Workload", "Threads", "Allocator", "MOPS"}, out)
}

// Fig7Row is one thread count's fast-path cost split (paper Figure 7).
type Fig7Row struct {
	Workload string
	Threads  int
	FlushPct float64
	FencePct float64
	AllocPct float64
}

// Fig7 measures where CXL-SHM's allocation fast path spends time, with the
// CLWB flush and sfence charged at the configured costs (the paper measures
// flush at 27–50% of the path and the fence below 5%).
func Fig7(scale Scale, threadCounts []int, flushNS, fenceNS int) ([]Fig7Row, error) {
	var rows []Fig7Row
	run := func(workload string, threads int) error {
		pool, err := shm.NewPool(shm.Config{
			Geometry: allocPoolConfig(threads),
			Latency:  cxlLatency(flushNS, fenceNS),
		})
		if err != nil {
			return err
		}
		s := &alloc.SHM{Pool: pool, Instrument: true}
		switch workload {
		case "threadtest":
			_, err = alloc.Threadtest(s, threads, scale.N(150), 64)
		default:
			_, err = alloc.Shbench(s, threads, scale.N(10_000))
		}
		if err != nil {
			return err
		}
		var flushOps, fenceOps uint64
		var total time.Duration
		for _, b := range s.Breakdowns {
			flushOps += b.FlushOps()
			fenceOps += b.FenceOps()
			total += b.Total()
		}
		fl, fe, al := shm.BreakdownShares(flushOps, fenceOps, total, flushNS, fenceNS)
		rows = append(rows, Fig7Row{workload, threads, fl, fe, al})
		return nil
	}
	for _, threads := range threadCounts {
		if err := run("threadtest", threads); err != nil {
			return nil, err
		}
		if err := run("shbench", threads); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// PrintFig7 renders Figure 7 rows.
func PrintFig7(w io.Writer, rows []Fig7Row) {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Workload, fmt.Sprint(r.Threads),
			f1(r.FlushPct) + "%", f1(r.FencePct) + "%", f1(r.AllocPct) + "%"}
	}
	PrintTable(w, []string{"Workload", "Threads", "Flush", "Fence", "Alloc"}, out)
}
