package bench

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestFastPathMarshalRoundTrip(t *testing.T) {
	rows := []FastPathRow{
		{Op: "malloc", NsPerOp: 500, Stores: 7, Accesses: 7.16},
		{Op: "free", NsPerOp: 480, Stores: 9, CASes: 1, Accesses: 10.04},
	}
	prov := obs.CollectProvenance("test", "heap")
	data, err := MarshalFastPath(rows, prov)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"provenance"`) {
		t.Fatal("document carries no provenance block")
	}
	got, err := UnmarshalFastPath(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Op != "malloc" || got[1].Accesses != 10.04 {
		t.Fatalf("round trip mangled rows: %+v", got)
	}
	if _, err := UnmarshalFastPath([]byte(`{"benchmark":"other","rows":[]}`)); err == nil {
		t.Fatal("wrong benchmark name must be rejected")
	}
}

func TestCompareFastPath(t *testing.T) {
	committed := []FastPathRow{
		{Op: "malloc", Accesses: 10},
		{Op: "free", Accesses: 20},
	}
	// Within tolerance (exactly +10% is allowed).
	fresh := []FastPathRow{
		{Op: "malloc", Accesses: 11},
		{Op: "free", Accesses: 19},
	}
	if regs := CompareFastPath(committed, fresh, 0.10); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	// One op over tolerance, one op missing.
	fresh = []FastPathRow{{Op: "malloc", Accesses: 11.5}}
	regs := CompareFastPath(committed, fresh, 0.10)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %v", regs)
	}
	if !strings.Contains(regs[0], "malloc") || !strings.Contains(regs[1], "missing") {
		t.Fatalf("regression messages: %v", regs)
	}
	// Improvements never flag.
	fresh = []FastPathRow{
		{Op: "malloc", Accesses: 5},
		{Op: "free", Accesses: 12},
	}
	if regs := CompareFastPath(committed, fresh, 0.10); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
}
