package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/layout"
	"repro/internal/pmem"
	"repro/internal/recovery"
	"repro/internal/shm"
)

// RecoveryRow is one point of the §6.2.1 recovery comparison.
type RecoveryRow struct {
	System     string // "CXL-SHM" or "ralloc* (GC)"
	Objects    int    // references/objects held by the failed client
	HeapExtra  int    // additional live objects owned by OTHER clients
	Duration   time.Duration
	ObjsPerSec float64
}

// RecoveryBench compares CXL-SHM's reference-count recovery with the
// pmem-style stop-the-world GC recovery (§6.2.1). The defining contrast:
// CXL-SHM's cost is proportional to the references the failed client held,
// while the GC walks the whole heap — so extra live data owned by *other*
// clients slows the GC but not CXL-SHM.
func RecoveryBench(scale Scale, objectCounts []int, heapExtra int) ([]RecoveryRow, error) {
	var rows []RecoveryRow
	for _, n := range objectCounts {
		n := scale.N(n)
		// --- CXL-SHM ---
		pool, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
			MaxClients:   4,
			NumSegments:  256,
			SegmentWords: 1 << 15,
			PageWords:    1 << 11,
		}})
		if err != nil {
			return nil, err
		}
		victim, err := pool.Connect()
		if err != nil {
			return nil, err
		}
		other, err := pool.Connect()
		if err != nil {
			return nil, err
		}
		for i := 0; i < heapExtra; i++ {
			if _, _, err := other.Malloc(48, 0); err != nil {
				return nil, fmt.Errorf("recovery bench: extra heap: %w", err)
			}
		}
		for i := 0; i < n; i++ {
			if _, _, err := victim.Malloc(48, 0); err != nil {
				return nil, fmt.Errorf("recovery bench: victim alloc %d: %w", i, err)
			}
		}
		svc, err := recovery.NewService(pool)
		if err != nil {
			return nil, err
		}
		if err := victim.Crash(); err != nil {
			return nil, err
		}
		start := time.Now()
		rep, err := svc.RecoverClient(victim.ID())
		if err != nil {
			return nil, err
		}
		d := time.Since(start)
		if rep.SweptRoots != n {
			return nil, fmt.Errorf("recovery bench: swept %d, want %d", rep.SweptRoots, n)
		}
		rows = append(rows, RecoveryRow{
			System: "CXL-SHM", Objects: n, HeapExtra: heapExtra,
			Duration: d, ObjsPerSec: rate(n, d),
		})

		// --- pmem GC recovery ---
		heap, err := pmem.NewHeap(128 << 20)
		if err != nil {
			return nil, err
		}
		ctx, err := heap.NewThread()
		if err != nil {
			return nil, err
		}
		// Extra live data reachable from a root (the GC must trace it).
		var prev pmem.Addr
		for i := 0; i < heapExtra; i++ {
			a, err := ctx.Alloc(48)
			if err != nil {
				return nil, err
			}
			heap.Data(a)[0] = prev
			prev = a
		}
		if prev != 0 {
			if err := heap.SetRoot(0, prev); err != nil {
				return nil, err
			}
		}
		// The victim's objects: unreachable after its crash.
		for i := 0; i < n; i++ {
			if _, err := ctx.Alloc(48); err != nil {
				return nil, err
			}
		}
		start = time.Now()
		st := heap.Recover()
		d = time.Since(start)
		if st.BlocksSwept < n {
			return nil, fmt.Errorf("pmem recovery swept %d, want >= %d", st.BlocksSwept, n)
		}
		rows = append(rows, RecoveryRow{
			System: "ralloc* (GC)", Objects: n, HeapExtra: heapExtra,
			Duration: d, ObjsPerSec: rate(n, d),
		})
	}
	return rows, nil
}

// SegmentScanBench times the §5.3 asynchronous segment-local scan on one
// full segment (the paper reports <20 µs per 64 MB segment; ours scales
// with the configured segment size).
func SegmentScanBench(scale Scale) (segBytes int, perScan time.Duration, err error) {
	pool, err := shm.NewPool(shm.Config{Geometry: layout.GeometryConfig{
		MaxClients:   4,
		NumSegments:  8,
		SegmentWords: 1 << 16, // 512 KiB segments
		PageWords:    1 << 12,
	}})
	if err != nil {
		return 0, 0, err
	}
	c, err := pool.Connect()
	if err != nil {
		return 0, 0, err
	}
	// Fill one segment's worth of live blocks.
	for i := 0; i < 3000; i++ {
		if _, _, err := c.Malloc(64, 0); err != nil {
			return 0, 0, err
		}
	}
	iters := scale.N(200)
	start := time.Now()
	for i := 0; i < iters; i++ {
		c.ScanSegment(0, false)
	}
	per := time.Since(start) / time.Duration(iters)
	return int(pool.Geometry().SegmentWords) * 8, per, nil
}

// PrintRecovery renders the recovery comparison.
func PrintRecovery(w io.Writer, rows []RecoveryRow) {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.System, fmt.Sprint(r.Objects), fmt.Sprint(r.HeapExtra),
			r.Duration.Round(time.Microsecond).String(), f2(r.ObjsPerSec / 1e6)}
	}
	PrintTable(w, []string{"System", "VictimObjs", "OtherObjs", "Recovery", "M objs/s"}, out)
}

func rate(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}
